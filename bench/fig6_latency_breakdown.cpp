// Figure 6: Heron's latency for single- and multi-partition requests
// with one client — breakdown into ordering / coordination / execution
// (left) and latency CDF (right).
//
// Paper reference points: TPCC NewOrder averages 35.4 us total
// (ordering ~18 us, execution ~16 us, coordination ~2 us); requests
// pinned to 1WH have no coordination; coordination never exceeds ~3 us
// even at 4 partitions (§V-D1).
//
// Flags:
//   --json <path>   machine-readable report: per-case latency summaries
//                   plus the stage-mean breakdown
//   --trace <path>  run the plain-TPCC case with tracing enabled and
//                   export the measurement window as a Chrome trace
//   --seed <n>      fabric/workload seed (default 99), echoed into the
//                   report so any run can be reproduced exactly
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/report.hpp"
#include "harness/runner.hpp"

using namespace heron;

namespace {

struct Options {
  std::string json_path;
  std::string trace_path;
  std::uint64_t seed = 99;
  std::uint32_t max_batch = 1;
  std::uint64_t batch_timeout_us = 0;
};

struct Row {
  const char* label;
  double ordering_us;
  double coord_us;
  double exec_us;
  double client_us;
};

Row run_case(const char* label, bool plain_tpcc, int span,
             harness::ReportWriter* report, const Options& opt) {
  const std::string& trace_path = opt.trace_path;
  tpcc::TpccScale scale{.factor = 0.02, .initial_orders_per_district = 10};
  amcast::Config acfg;
  acfg.max_batch = opt.max_batch;
  acfg.batch_timeout = sim::us(static_cast<double>(opt.batch_timeout_us));
  harness::TpccCluster cluster(/*partitions=*/4, /*replicas=*/3, scale, {},
                               acfg, opt.seed);

  tpcc::WorkloadConfig workload;
  workload.new_order_only = true;  // the paper's Fig. 6 uses NewOrder streams
  if (!plain_tpcc) {
    workload.force_partitions = span;  // NewOrder pinned to `span` parts
    if (span == 1) workload.local_only = true;
  }
  // Exactly one client, homed at partition 0 (closed loop, §V-B).
  cluster.add_client_at(0, workload);

  const bool traced = !trace_path.empty() && plain_tpcc;
  if (traced) cluster.telemetry().enable_all();

  auto result = cluster.run(sim::ms(10), sim::ms(120));

  if (traced) {
    if (cluster.telemetry().tracer.write_file(trace_path)) {
      std::printf("trace: %zu events -> %s\n",
                  cluster.telemetry().tracer.event_count(),
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace: cannot write %s\n", trace_path.c_str());
    }
  }

  // Replica-side stage means, averaged over partition 0's replicas (the
  // client's home; the paper breaks down the request path end to end).
  auto& rep = cluster.system().replica(0, 0);
  Row row{};
  row.label = label;
  row.ordering_us = rep.ordering_lat().mean() / 1000.0;
  row.coord_us = rep.coord_lat().empty() ? 0.0 : rep.coord_lat().mean() / 1000.0;
  row.exec_us = rep.exec_lat().mean() / 1000.0;
  row.client_us = result.latency.mean() / 1000.0;

  if (report != nullptr) {
    report->row(label, result, [&](telemetry::JsonWriter& w) {
      w.kv("ordering_us", row.ordering_us);
      w.kv("coordination_us", row.coord_us);
      w.kv("execution_us", row.exec_us);
      w.kv("seed", opt.seed);
      w.kv("max_batch", static_cast<std::uint64_t>(opt.max_batch));
    });
  }

  // CDF series (right-hand plot).
  std::printf("# CDF %s\n", label);
  auto& lat = result.latency;
  for (auto [ns, frac] : lat.cdf(20)) {
    std::printf("cdf %-10s %8.2f us  %5.2f\n", label, sim::to_us(ns), frac);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (a == "--trace" && i + 1 < argc) {
      opt.trace_path = argv[++i];
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--max-batch" && i + 1 < argc) {
      opt.max_batch = static_cast<std::uint32_t>(
          std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--batch-timeout-us" && i + 1 < argc) {
      opt.batch_timeout_us = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json <path>] [--trace <path>] [--seed <n>] "
                   "[--max-batch <n>] [--batch-timeout-us <n>]\n",
                   argv[0]);
      return 2;
    }
  }

  harness::ReportWriter report("fig6_latency_breakdown");
  harness::ReportWriter* rep = opt.json_path.empty() ? nullptr : &report;

  std::printf(
      "Figure 6: latency breakdown with 1 client (4 partitions, 3 replicas)\n"
      "paper: TPCC NewOrder ~35.4us total = ordering ~18 + execution ~16 + "
      "coordination ~2; coordination <= ~3us at 4WH\n\n");

  Row rows[] = {
      run_case("tpcc", true, 0, rep, opt), run_case("1WH", false, 1, rep, opt),
      run_case("2WH", false, 2, rep, opt), run_case("3WH", false, 3, rep, opt),
      run_case("4WH", false, 4, rep, opt),
  };

  std::printf("\n%-8s %12s %14s %12s %12s\n", "workload", "ordering(us)",
              "coordination(us)", "execution(us)", "client(us)");
  for (const auto& r : rows) {
    std::printf("%-8s %12.2f %14.2f %12.2f %12.2f\n", r.label, r.ordering_us,
                r.coord_us, r.exec_us, r.client_us);
  }

  if (rep != nullptr) {
    if (report.finish_to_file(opt.json_path)) {
      std::printf("report -> %s\n", opt.json_path.c_str());
    } else {
      std::fprintf(stderr, "report: cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
  }
  return 0;
}
