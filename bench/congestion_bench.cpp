// Congestion benchmark: ToR backpressure and graceful degradation.
//
// A 1x3 bank deployment whose three replicas fill one rack (rack_size =
// 3), with every client in a foreign rack, so all request/reply traffic
// crosses the leader rack's oversubscribed uplink. A faultlab incast
// storm floods that uplink mid-run. Clients pace successful work with
// think time but replace a timed-out attempt immediately, so the system
// is bistable: once sojourn time at the leader crosses the attempt
// timeout, the offered rate exceeds execution capacity and every
// admitted command is abandoned before it completes — sustained zero
// goodput. The storm pushes both arms into the timeout regime; what
// differs is the exit. The fixed admission window (64 deep = 3.2ms of
// queued execution, far past the timeout) keeps the leader in the bad
// equilibrium; the adaptive window is still tightened to its floor when
// the uplink drains (the backlog signal holds through the drain), sheds
// the abandoned-work burst as early BUSY, and re-enters the good
// equilibrium immediately, recovering with hysteresis afterwards.
//
// The sweep crosses oversubscription ratio x credit window x adaptive
// admission on/off. Goodput is the count of commands that completed OK
// within the p99 latency target during the measurement window. Gates
// (non-zero exit on failure):
//   * correctness: amcast properties, exactly-once, store convergence
//     and the tail-latency oracle (bounded p99, zero hung clients) hold
//     in every cell;
//   * degradation: in every congested pair (oversub >= 2) with credit
//     flow control on, the adaptive arm sustains at least 2x the in-SLO
//     goodput of the fixed arm.
//
// The credit_window = 0 rows are the no-flow-control ablation and are
// deliberately outside the gate: with open-loop injection the incast
// drives the uplink FIFO tens of milliseconds deep, every abandoned
// attempt is still delivered (in one burst at the drain horizon), and
// the timeout-synchronized client retries alone exceed exec capacity —
// classic congestion collapse that no admission policy at the leader
// can undo, because the wasted work (delivering requests whose clients
// gave up) already happened in the network. Credit windows prevent
// exactly that: senders self-clock to the uplink's service rate, the
// backlog pins at credits x message size, and abandoned attempts never
// monopolize the fabric.
//
//   congestion_bench [--quick] [--seed <s>] [--json <path>]
//                    (default BENCH_congestion.json)
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "faultlab/bank.hpp"
#include "faultlab/history.hpp"
#include "faultlab/injector.hpp"
#include "rdma/fabric.hpp"
#include "telemetry/json.hpp"

using namespace heron;

namespace {

struct Options {
  bool quick = false;
  std::uint64_t seed = 19;
  std::string json_path = "BENCH_congestion.json";
};

struct CellResult {
  std::uint64_t ok = 0;
  std::uint64_t in_slo = 0;  // ok completions within the p99 target
  std::uint64_t overloaded = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t shed_replies = 0;
  std::uint64_t hung = 0;
  std::uint64_t injected_ops = 0;
  std::uint64_t credit_stalls = 0;
  std::uint64_t uplink_queued = 0;
  std::uint64_t priority_ops = 0;
  std::uint64_t admission_tightened = 0;
  sim::Nanos p50 = 0;
  sim::Nanos p99 = 0;
  std::vector<faultlab::Violation> violations;
};

constexpr int kReplicas = 3;
constexpr std::uint64_t kAccounts = 8;
constexpr sim::Nanos kSloP99 = sim::ms(2);

/// Deposit stream until `until`, one fresh command per attempt (no
/// retries). Completed work paces itself (think time); a failed attempt
/// is replaced immediately — the upstream treats a timeout as work
/// still owed. That asymmetry is what makes the system bistable: at
/// baseline the offered load is think-limited and well under exec
/// capacity, but once sojourn time crosses the attempt timeout the
/// offered rate jumps to clients/timeout, which exceeds capacity — and
/// whether the leader escapes that regime is decided purely by how much
/// already-abandoned work its admission window lets in.
sim::Task<void> timed_loop(core::System& sys, core::Client& client,
                           std::uint64_t seed, sim::Nanos start,
                           sim::Nanos until) {
  sim::Rng rng(seed);
  auto& sim = sys.simulator();
  // Staggered start: a synchronized burst of 16 first attempts would
  // already exceed the attempt timeout and seed the collapse regime
  // before any fault fires.
  co_await sim.sleep(start);
  while (sim.now() < until) {
    faultlab::DepositReq req{rng.bounded(kAccounts), 1};
    const auto res = co_await client.submit(
        amcast::dst_of(0), faultlab::kDeposit, std::as_bytes(std::span(&req, 1)));
    if (res.status == core::SubmitStatus::kOk) {
      co_await sim.sleep(sim::us(1000));
    }
  }
}

CellResult run_cell(double oversub, std::uint32_t credits, bool adaptive,
                    const Options& opt) {
  // 16 clients with 1ms think offer ~13/ms against 20/ms exec capacity:
  // stable and timeout-free at baseline. In the timeout regime the same
  // clients offer 16 / 500us = 32/ms — over capacity — so a leader that
  // lets sojourn time cross the attempt timeout collapses and stays
  // collapsed.
  const int clients = 16;
  const sim::Nanos storm_len = opt.quick ? sim::ms(10) : sim::ms(25);

  sim::Simulator sim;
  rdma::LatencyModel model;
  model.rack_size = kReplicas;
  model.oversub_ratio = oversub;
  model.credit_window = credits;

  // Size the measurement window from the fabric math: the storm's excess
  // bytes take storm * (demand - capacity) / capacity to drain out of
  // the uplink FIFO after the phantoms stop (nothing crosses the uplink
  // until then, in either arm). The 12ms after that is the recovery
  // allowance the arms compete over: the adaptive leader (window
  // tightened while the drain keeps the backlog signal high) sheds the
  // zombie burst and serves fresh commands immediately; the fixed
  // leader re-fills its 64-deep queue with abandoned work and spends
  // the allowance executing it.
  const double demand = 8.0 * 16384.0 / 20000.0;  // incast f8 b16384 p20us
  const double capacity = model.uplink_bytes_per_ns();
  const double excess = demand > capacity ? (demand - capacity) / capacity : 0;
  const auto drain = static_cast<sim::Nanos>(
      static_cast<double>(storm_len) * excess);
  const sim::Nanos measure_end = sim::ms(5) + storm_len + drain + sim::ms(12);

  rdma::Fabric fabric(sim, model, opt.seed);
  fabric.telemetry().metrics.enable();  // admission/backpressure counters

  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  // Heavyweight application op: makes the cost of executing zombie
  // requests (vs shedding them at admission) visible in the tail.
  cfg.exec_dispatch_proc = sim::us(50);
  cfg.client_attempt_timeout = sim::us(500);
  cfg.client_max_retries = 0;
  amcast::Config acfg;
  // Both arms share the same configured ceiling; only adaptivity
  // differs. 64 is a reasonable static choice for this exec cost (it
  // never binds at steady state) but admits 3.2ms of zombie execution
  // per refill once clients start abandoning attempts.
  acfg.admission_window = 64;
  acfg.adaptive_admission = adaptive;
  acfg.admission_min_window = 2;
  acfg.max_batch = 8;
  core::System sys(
      fabric, /*partitions=*/1, kReplicas,
      [] { return std::make_unique<faultlab::BankApp>(1, kAccounts); }, cfg,
      acfg);
  faultlab::HistoryRecorder history;
  history.attach(sys);
  sys.start();

  for (int c = 0; c < clients; ++c) {
    sim.spawn(timed_loop(sys, sys.add_client(),
                         opt.seed * 1000 + static_cast<std::uint64_t>(c),
                         sim::us(60) * static_cast<sim::Nanos>(c + 1),
                         measure_end));
  }
  faultlab::Injector injector(sys);
  injector.run(faultlab::FaultPlan::parse(
      "incast", "incast g0.r0 f8 b16384 p20us @ 5ms for " +
                    std::to_string(sim::to_us(storm_len)) + "us"));
  sim.run_for(measure_end + sim::ms(20));

  CellResult out;
  sim::LatencyRecorder lat;
  for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
    auto& cl = sys.client(c);
    out.ok += cl.completed();
    out.overloaded += cl.overloaded();
    out.timeouts += cl.timeouts();
    if (cl.in_flight()) ++out.hung;
    for (const sim::Nanos v : cl.latencies().samples()) lat.record(v);
  }
  for (int r = 0; r < kReplicas; ++r) {
    out.shed_replies += sys.replica(0, r).shed_replies();
  }
  for (const sim::Nanos v : faultlab::command_latencies(history)) {
    if (v <= kSloP99) ++out.in_slo;
  }
  out.injected_ops = fabric.stats().injected_ops;
  out.credit_stalls = fabric.stats().credit_stalls;
  out.uplink_queued = fabric.stats().uplink_queued;
  out.priority_ops = fabric.stats().priority_ops;
  out.admission_tightened = static_cast<std::uint64_t>(
      fabric.telemetry().metrics.counter("amcast", "admission_tightened",
                                         "g0.r0")
          .value());
  out.p50 = lat.percentile(50);
  out.p99 = lat.percentile(99);

  out.violations =
      faultlab::check_amcast_properties(history, sys, injector.ever_crashed());
  faultlab::check_exactly_once(history, out.violations);
  faultlab::check_store_convergence(sys, out.violations);
  // Generous bound: even the fixed arm must not strand a completed
  // command past the post-storm drain; hung clients are a validity
  // violation already.
  faultlab::check_tail_latency(history, /*p99_bound=*/sim::ms(80),
                               out.violations);
  if (out.hung != 0) {
    out.violations.push_back(
        faultlab::Violation{"tail-latency", "clients still in flight"});
  }
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--seed <s>] [--json <path>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  const std::vector<double> oversubs =
      opt.quick ? std::vector<double>{2.0} : std::vector<double>{1.0, 2.0, 4.0};
  const std::vector<std::uint32_t> credit_windows =
      opt.quick ? std::vector<std::uint32_t>{16}
                : std::vector<std::uint32_t>{0, 16};

  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("bench", "congestion_bench");
  w.kv("quick", opt.quick);
  w.kv("seed", opt.seed);
  w.kv("slo_p99_ns", kSloP99);
  w.key("cells").begin_array();

  std::printf(
      "Congestion: 1x3 bank in one rack, leader incast via faultlab;\n"
      "goodput = ok completions within p99 target %.1fms\n\n",
      sim::to_us(kSloP99) / 1000.0);
  std::printf("%-8s %-8s %-9s %8s %8s %8s %8s %8s %10s %10s\n", "oversub",
              "credits", "adaptive", "ok", "in_slo", "busy", "timeout",
              "tighten", "p50_us", "p99_us");

  // (oversub, credits) -> in-SLO goodput of the fixed / adaptive arm.
  std::map<std::pair<double, std::uint32_t>,
           std::pair<std::uint64_t, std::uint64_t>>
      goodput;
  std::uint64_t total_violations = 0;

  for (const double oversub : oversubs) {
    for (const std::uint32_t credits : credit_windows) {
      for (const bool adaptive : {false, true}) {
        const CellResult r = run_cell(oversub, credits, adaptive, opt);
        total_violations += r.violations.size();
        if (adaptive) {
          goodput[{oversub, credits}].second = r.in_slo;
        } else {
          goodput[{oversub, credits}].first = r.in_slo;
        }

        w.begin_object();
        w.kv("oversub_ratio", oversub);
        w.kv("credit_window", static_cast<std::uint64_t>(credits));
        w.kv("adaptive", adaptive);
        w.kv("ok", r.ok);
        w.kv("in_slo", r.in_slo);
        w.kv("overloaded", r.overloaded);
        w.kv("timeouts", r.timeouts);
        w.kv("shed_replies", r.shed_replies);
        w.kv("hung_clients", r.hung);
        w.kv("injected_ops", r.injected_ops);
        w.kv("credit_stalls", r.credit_stalls);
        w.kv("uplink_queued", r.uplink_queued);
        w.kv("priority_ops", r.priority_ops);
        w.kv("admission_tightened", r.admission_tightened);
        w.kv("p50_ns", r.p50);
        w.kv("p99_ns", r.p99);
        w.kv("violations", static_cast<std::uint64_t>(r.violations.size()));
        w.kv("repro", std::string(argv[0]) + " --seed " +
                          std::to_string(opt.seed) +
                          (opt.quick ? " --quick" : ""));
        w.end_object();

        std::printf("%-8.1f %-8u %-9s %8llu %8llu %8llu %8llu %8llu %10.1f "
                    "%10.1f\n",
                    oversub, credits, adaptive ? "on" : "off",
                    static_cast<unsigned long long>(r.ok),
                    static_cast<unsigned long long>(r.in_slo),
                    static_cast<unsigned long long>(r.overloaded),
                    static_cast<unsigned long long>(r.timeouts),
                    static_cast<unsigned long long>(r.admission_tightened),
                    sim::to_us(r.p50), sim::to_us(r.p99));
        for (const auto& v : r.violations) {
          std::printf("  VIOLATION [%s] %s\n", v.oracle.c_str(),
                      v.detail.c_str());
        }
      }
    }
  }

  // Degradation gate: adaptive >= 2x fixed in-SLO goodput whenever the
  // uplink is genuinely oversubscribed and credit flow control is on.
  // credit_window = 0 cells are the no-flow-control ablation (see the
  // header comment): both arms collapse there by design, which is the
  // point of the ablation, not a gate failure.
  bool gate_ok = true;
  w.end_array();
  w.key("gates").begin_array();
  for (const auto& [key, arms] : goodput) {
    if (key.first < 2.0 || key.second == 0) continue;
    const auto [fixed, adaptive] = arms;
    const bool ok = adaptive >= 2 * fixed && adaptive > 0;
    gate_ok = gate_ok && ok;
    w.begin_object();
    w.kv("oversub_ratio", key.first);
    w.kv("credit_window", static_cast<std::uint64_t>(key.second));
    w.kv("fixed_in_slo", fixed);
    w.kv("adaptive_in_slo", adaptive);
    w.kv("pass", ok);
    w.end_object();
    std::printf("gate oversub=%.1f credits=%u: adaptive %llu vs fixed %llu "
                "-> %s\n",
                key.first, key.second,
                static_cast<unsigned long long>(adaptive),
                static_cast<unsigned long long>(fixed),
                ok ? "PASS" : "FAIL");
  }
  w.end_array();
  w.kv("total_violations", total_violations);
  w.kv("gate_ok", gate_ok);
  w.end_object();

  if (!opt.json_path.empty()) {
    FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 2;
    }
    std::fputs(w.str().c_str(), f);
    std::fclose(f);
    std::printf("report -> %s\n", opt.json_path.c_str());
  }

  if (total_violations != 0) {
    std::fprintf(stderr, "FAIL: %llu oracle violations\n",
                 static_cast<unsigned long long>(total_violations));
    return 1;
  }
  if (!gate_ok) {
    std::fprintf(stderr,
                 "FAIL: adaptive admission did not reach 2x fixed goodput\n");
    return 1;
  }
  return 0;
}
