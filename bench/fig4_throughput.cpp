// Figure 4: maximum throughput of (a) RamCast ordering only, (b) Heron
// with null requests, (c) Heron TPCC, (d) local-only TPCC, for 1..16
// warehouses (one warehouse per partition, 3 replicas each).
//
// Paper shape: RamCast scales close to linearly; null requests and TPCC
// hold flat from 1WH to 2WH (coordination appears), then scale by
// ~1.5x/3x/5x (null) and ~1.5x/2.7x/4x (TPCC) at 4/8/16 WH; local TPCC
// scales linearly.
//
// Flags:
//   --json <path>   write a machine-readable report (throughput and
//                   per-kind latency summaries for every cell)
//   --trace <path>  additionally run a small instrumented TPCC cluster
//                   and export a Chrome trace_event file (load it in
//                   chrome://tracing or https://ui.perfetto.dev)
//   --quick         short windows and fewer cells (CI smoke mode)
//   --seed <n>      fabric/workload seed (default 99), echoed into the
//                   report so any run can be reproduced exactly
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/report.hpp"
#include "harness/runner.hpp"

using namespace heron;

namespace {

struct Options {
  std::string json_path;
  std::string trace_path;
  bool quick = false;
  std::uint64_t seed = 99;
  std::uint32_t max_batch = 1;
  std::uint64_t batch_timeout_us = 0;
};

harness::RunResult run_config(core::Mode mode, bool local_only, int partitions,
                              int clients_per_partition, const Options& opt) {
  const bool quick = opt.quick;
  const std::uint64_t seed = opt.seed;
  tpcc::TpccScale scale{.factor = 0.02, .initial_orders_per_district = 10};
  core::HeronConfig cfg;
  cfg.mode = mode;
  amcast::Config acfg;
  acfg.max_batch = opt.max_batch;
  acfg.batch_timeout = sim::us(static_cast<double>(opt.batch_timeout_us));
  // Model the paper's testbed: above 40 nodes traffic crosses the ToR
  // switch (the 8WH->16WH step softens, §V-C1).
  rdma::LatencyModel fabric;
  fabric.oversub_nodes = 40;
  harness::TpccCluster cluster(partitions, 3, scale, cfg, acfg, seed, fabric);

  tpcc::WorkloadConfig workload;
  workload.local_only = local_only;
  cluster.add_clients(clients_per_partition, workload);

  return quick ? cluster.run(sim::ms(3), sim::ms(10))
               : cluster.run(sim::ms(15), sim::ms(60));
}

/// Dedicated traced run: a small TPCC cluster with full telemetry on, so
/// the exported trace stays readable (and the big throughput cells above
/// run uninstrumented, at full speed).
void export_trace(const std::string& path) {
  tpcc::TpccScale scale{.factor = 0.02, .initial_orders_per_district = 10};
  core::HeronConfig cfg;
  cfg.mode = core::Mode::kApp;
  harness::TpccCluster cluster(/*partitions=*/2, /*replicas=*/3, scale, cfg);

  cluster.telemetry().enable_all();
  cluster.telemetry().capture_logs();
  cluster.add_clients(2, tpcc::WorkloadConfig{});
  cluster.run(sim::ms(2), sim::ms(5));

  if (cluster.telemetry().tracer.write_file(path)) {
    std::printf("trace: %zu events -> %s\n",
                cluster.telemetry().tracer.event_count(), path.c_str());
  } else {
    std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
  }
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (a == "--trace" && i + 1 < argc) {
      opt.trace_path = argv[++i];
    } else if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--max-batch" && i + 1 < argc) {
      opt.max_batch = static_cast<std::uint32_t>(
          std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--batch-timeout-us" && i + 1 < argc) {
      opt.batch_timeout_us = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json <path>] [--trace <path>] [--quick] "
                   "[--seed <n>] [--max-batch <n>] [--batch-timeout-us <n>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  std::vector<int> warehouses = {1, 2, 4, 8, 16};
  if (opt.quick) warehouses = {1, 2};

  struct Set {
    const char* label;
    core::Mode mode;
    bool local_only;
    int clients;
  };
  const Set sets[] = {
      {"ramcast", core::Mode::kOrderOnly, false, 10},
      {"heron-null", core::Mode::kNull, false, 10},
      {"tpcc", core::Mode::kApp, false, 8},
      {"tpcc-local", core::Mode::kApp, true, 8},
  };

  harness::ReportWriter report("fig4_throughput");

  std::printf(
      "Figure 4: max throughput (tps) vs warehouses "
      "(1 warehouse/partition, 3 replicas)\n\n");
  std::printf("%-12s", "set");
  for (int wh : warehouses) std::printf(" %10dWH", wh);
  if (!opt.quick) std::printf("   scaling(4/8/16 vs 2WH)");
  std::printf("\n");

  for (const auto& set : sets) {
    std::vector<double> tput;
    for (int wh : warehouses) {
      harness::RunResult result =
          run_config(set.mode, set.local_only, wh, set.clients, opt);
      tput.push_back(result.throughput_tps);
      if (!opt.json_path.empty()) {
        report.row(std::string(set.label) + "/" + std::to_string(wh) + "wh",
                   result, [&](telemetry::JsonWriter& w) {
                     w.kv("set", set.label);
                     w.kv("warehouses", wh);
                     w.kv("seed", opt.seed);
                     w.kv("max_batch", static_cast<std::uint64_t>(opt.max_batch));
                   });
      }
    }
    std::printf("%-12s", set.label);
    for (double t : tput) std::printf(" %12.0f", t);
    if (!opt.quick) {
      std::printf("   %.2fx %.2fx %.2fx", tput[2] / tput[1], tput[3] / tput[1],
                  tput[4] / tput[1]);
    }
    std::printf("\n");
  }
  if (!opt.quick) {
    std::printf(
        "\npaper: null requests flat 1WH->2WH then 1.57x/2.98x/4.80x; "
        "TPCC flat then 1.52x/2.65x/3.98x; local TPCC ~linear\n");
  }

  if (!opt.json_path.empty()) {
    if (report.finish_to_file(opt.json_path)) {
      std::printf("report -> %s\n", opt.json_path.c_str());
    } else {
      std::fprintf(stderr, "report: cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
  }
  if (!opt.trace_path.empty()) export_trace(opt.trace_path);
  return 0;
}
