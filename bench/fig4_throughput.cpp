// Figure 4: maximum throughput of (a) RamCast ordering only, (b) Heron
// with null requests, (c) Heron TPCC, (d) local-only TPCC, for 1..16
// warehouses (one warehouse per partition, 3 replicas each).
//
// Paper shape: RamCast scales close to linearly; null requests and TPCC
// hold flat from 1WH to 2WH (coordination appears), then scale by
// ~1.5x/3x/5x (null) and ~1.5x/2.7x/4x (TPCC) at 4/8/16 WH; local TPCC
// scales linearly.
#include <cstdio>
#include <vector>

#include "harness/runner.hpp"

using namespace heron;

namespace {

double run_config(core::Mode mode, bool local_only, int partitions,
                  int clients_per_partition) {
  tpcc::TpccScale scale{.factor = 0.02, .initial_orders_per_district = 10};
  core::HeronConfig cfg;
  cfg.mode = mode;
  // Model the paper's testbed: above 40 nodes traffic crosses the ToR
  // switch (the 8WH->16WH step softens, §V-C1).
  rdma::LatencyModel fabric;
  fabric.oversub_nodes = 40;
  harness::TpccCluster cluster(partitions, 3, scale, cfg, {}, 99, fabric);

  tpcc::WorkloadConfig workload;
  workload.local_only = local_only;
  cluster.add_clients(clients_per_partition, workload);

  auto result = cluster.run(sim::ms(15), sim::ms(60));
  return result.throughput_tps;
}

}  // namespace

int main() {
  const int warehouses[] = {1, 2, 4, 8, 16};
  struct Set {
    const char* label;
    core::Mode mode;
    bool local_only;
    int clients;
  };
  const Set sets[] = {
      {"ramcast", core::Mode::kOrderOnly, false, 10},
      {"heron-null", core::Mode::kNull, false, 10},
      {"tpcc", core::Mode::kApp, false, 8},
      {"tpcc-local", core::Mode::kApp, true, 8},
  };

  std::printf(
      "Figure 4: max throughput (tps) vs warehouses "
      "(1 warehouse/partition, 3 replicas)\n\n");
  std::printf("%-12s", "set");
  for (int wh : warehouses) std::printf(" %10dWH", wh);
  std::printf("   scaling(4/8/16 vs 2WH)\n");

  for (const auto& set : sets) {
    std::vector<double> tput;
    for (int wh : warehouses) {
      tput.push_back(run_config(set.mode, set.local_only, wh, set.clients));
    }
    std::printf("%-12s", set.label);
    for (double t : tput) std::printf(" %12.0f", t);
    std::printf("   %.2fx %.2fx %.2fx\n", tput[2] / tput[1], tput[3] / tput[1],
                tput[4] / tput[1]);
  }
  std::printf(
      "\npaper: null requests flat 1WH->2WH then 1.57x/2.98x/4.80x; "
      "TPCC flat then 1.52x/2.65x/3.98x; local TPCC ~linear\n");
  return 0;
}
