// Substrate microbenchmarks (google-benchmark): simulated-RDMA verb
// latencies, atomic multicast delivery latency, and object-store
// operations. These document the calibrated cost model underlying every
// figure (values are *simulated* time per operation, reported as
// microseconds via the Lat counter; wall time measures simulator speed).
// Flags: --seed <n> sets the fabric seed used by the randomized cases
// (default 5); remaining flags go to google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "amcast/system.hpp"
#include "core/object_store.hpp"
#include "rdma/fabric.hpp"
#include "sim/simulator.hpp"

using namespace heron;

namespace {

std::uint64_t g_seed = 5;

void BM_RdmaReadLatency(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  rdma::Fabric fabric(sim);
  auto& a = fabric.add_node();
  auto& b = fabric.add_node();
  auto mr = b.register_region(bytes);
  sim::Nanos total = 0;
  std::uint64_t ops = 0;

  for (auto _ : state) {
    sim::Nanos t = 0;
    sim.spawn([](sim::Simulator& s, rdma::Fabric& f, rdma::Node& from,
                 rdma::Node& to, rdma::MrId m, std::size_t n,
                 sim::Nanos& out) -> sim::Task<void> {
      std::vector<std::byte> buf(n);
      const sim::Nanos start = s.now();
      co_await f.read(from.id(), rdma::RAddr{to.id(), m, 0}, buf);
      out = s.now() - start;
    }(sim, fabric, a, b, mr, bytes, t));
    sim.run();
    total += t;
    ++ops;
  }
  state.counters["sim_lat_us"] = sim::to_us(total / static_cast<sim::Nanos>(ops));
}
BENCHMARK(BM_RdmaReadLatency)->Arg(8)->Arg(1024)->Arg(32768);

void BM_RdmaWriteLatency(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  rdma::Fabric fabric(sim);
  auto& a = fabric.add_node();
  auto& b = fabric.add_node();
  auto mr = b.register_region(bytes);
  sim::Nanos total = 0;
  std::uint64_t ops = 0;

  for (auto _ : state) {
    sim::Nanos t = 0;
    sim.spawn([](sim::Simulator& s, rdma::Fabric& f, rdma::Node& from,
                 rdma::Node& to, rdma::MrId m, std::size_t n,
                 sim::Nanos& out) -> sim::Task<void> {
      std::vector<std::byte> buf(n, std::byte{1});
      const sim::Nanos start = s.now();
      co_await f.write(from.id(), rdma::RAddr{to.id(), m, 0}, buf);
      out = s.now() - start;
    }(sim, fabric, a, b, mr, bytes, t));
    sim.run();
    total += t;
    ++ops;
  }
  state.counters["sim_lat_us"] = sim::to_us(total / static_cast<sim::Nanos>(ops));
}
BENCHMARK(BM_RdmaWriteLatency)->Arg(8)->Arg(1024)->Arg(32768);

void BM_AmcastDelivery(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  sim::Nanos total = 0;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    rdma::Fabric fabric(sim, {}, g_seed);
    amcast::System sys(fabric, groups, 3);
    sys.start();
    auto& client = sys.add_client();
    amcast::DstMask dst = 0;
    for (int g = 0; g < groups; ++g) dst |= amcast::dst_of(g);
    sim::Nanos t = 0;
    sim.spawn([](sim::Simulator& s, amcast::System& system,
                 amcast::ClientEndpoint& cl, amcast::DstMask d,
                 sim::Nanos& out) -> sim::Task<void> {
      std::uint32_t v = 7;
      const sim::Nanos start = s.now();
      co_await cl.multicast(d, std::as_bytes(std::span(&v, 1)));
      while (system.endpoint(0, 0).delivered_count() == 0) {
        co_await s.sleep(sim::us(1));
      }
      out = s.now() - start;
    }(sim, sys, client, dst, t));
    sim.run_for(sim::ms(5));
    total += t;
    ++ops;
  }
  state.counters["sim_lat_us"] = sim::to_us(total / static_cast<sim::Nanos>(ops));
}
BENCHMARK(BM_AmcastDelivery)->Arg(1)->Arg(2)->Arg(4)->Iterations(20);

void BM_ObjectStoreSet(benchmark::State& state) {
  sim::Simulator sim;
  rdma::Fabric fabric(sim);
  auto& node = fabric.add_node();
  core::ObjectStore store(node, 1u << 20);
  std::vector<std::byte> value(640);
  store.create(1, value, true);
  core::Tmp tmp = 1;
  for (auto _ : state) {
    store.set(1, value, tmp++);
    benchmark::DoNotOptimize(store.get(1));
  }
}
BENCHMARK(BM_ObjectStoreSet);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  // Wall-clock events/second of the DES engine itself.
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule(i, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventThroughput);

}  // namespace

int main(int argc, char** argv) {
  // Strip --seed before google-benchmark sees the arguments.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      g_seed = std::strtoull(argv[++i], nullptr, 10);
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
