// Recovery benchmark: restart latency with checkpoints vs full state
// transfer, plus a crash-mid-checkpoint chaos smoke.
//
// Default mode sweeps replica state size on a 1x3 deployment of
// non-serialized 16 KB objects. For each size it measures the virtual
// time from restart_replica() until the rejoined replica has caught up
// with the survivors, under two arms:
//   * baseline    — durable subsystem off, volatile restart: the rejoin
//                   loses all watermarks and pulls everything over the
//                   network (donor serialize + wire + deserialize);
//   * checkpoint  — background checkpointing on; the rejoin restores the
//                   paged checkpoint from the local device and fetches
//                   only the O(delta) tail from a peer.
// The run fails (non-zero exit) if the checkpoint arm is not at least 5x
// faster at the largest swept size.
//
// --chaos runs two fault cells instead: a replica is crashed the moment
// the page device shows checkpoint writes in flight (and, in the second
// cell, with the next page write torn), then restarted mid-workload. The
// full oracle suite gates the run: atomic-multicast properties,
// exactly-once execution, store convergence and session convergence.
//
//   recovery_bench [--quick] [--chaos] [--seed <s>] [--json <path>]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "faultlab/bank.hpp"
#include "faultlab/history.hpp"
#include "harness/report.hpp"
#include "rdma/fabric.hpp"
#include "telemetry/json.hpp"

using namespace heron;

namespace {

struct Options {
  bool quick = false;
  bool chaos = false;
  std::uint64_t seed = 11;
  std::string json_path;
};

/// Synthetic application: `count` non-serialized objects of `size` bytes;
/// kind 1 rewrites every object (populating the update log).
class StateApp : public core::Application {
 public:
  StateApp(std::uint64_t count, std::uint32_t size)
      : count_(count), size_(size) {}

  [[nodiscard]] core::GroupId partition_of(core::Oid) const override {
    return 0;
  }
  [[nodiscard]] std::vector<core::Oid> read_set(const core::Request&,
                                                core::GroupId) const override {
    return {};
  }
  core::Reply execute(const core::Request& r,
                      core::ExecContext& ctx) override {
    if (r.header.kind == 1 /* touch */) {
      std::vector<std::byte> value(size_, std::byte{0x5a});
      for (std::uint64_t i = 0; i < count_; ++i) {
        ctx.write(i + 1, value);
      }
    }
    return core::Reply{};
  }
  void bootstrap(core::GroupId, core::ObjectStore& store) override {
    std::vector<std::byte> init(size_);
    for (std::uint64_t i = 0; i < count_; ++i) {
      store.create(i + 1, init, /*serialized=*/false);
    }
  }

 private:
  std::uint64_t count_;
  std::uint32_t size_;
};

struct RecoveryResult {
  double restart_us = 0.0;
  bool restored_from_checkpoint = false;
  std::uint64_t catchup_bytes = 0;      // applied during the rejoin
  std::uint64_t applied_full_bytes = 0; // full-transfer chunk bytes (total)
  std::uint64_t applied_delta_bytes = 0;
  std::uint64_t checkpoints = 0;
  bool hung = false;
};

/// One restart measurement of `total_bytes` of replica state.
RecoveryResult run_recovery(const Options& opt, std::uint64_t total_bytes,
                            bool checkpoints) {
  constexpr std::uint32_t kObjSize = 16u << 10;
  const std::uint64_t count = total_bytes / kObjSize;

  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, opt.seed);
  core::HeronConfig cfg;
  // Large transfers outlast the default handler-suspicion timeout; keep
  // backup candidates from starting duplicate transfers.
  cfg.statesync_timeout = sim::sec(2);
  cfg.object_region_bytes =
      static_cast<std::size_t>(count + 2) * (2 * kObjSize + 64) + (1u << 20);
  if (checkpoints) {
    cfg.durable.checkpoint_interval = sim::ms(10);
  } else {
    // Level the field: the baseline arm also loses its volatile watermarks
    // on restart, it just has no checkpoint to restore from.
    cfg.durable.volatile_restart = true;
  }
  core::System sys(
      fabric, /*partitions=*/1, /*replicas=*/3,
      [count, size = kObjSize] { return std::make_unique<StateApp>(count, size); },
      cfg);
  sys.start();
  auto& client = sys.add_client();

  RecoveryResult out;
  bool done = false;
  sim.spawn([](sim::Simulator& s, core::System& system, core::Client& cl,
               bool use_ckpt, RecoveryResult& res,
               bool& done_flag) -> sim::Task<void> {
    // Populate the state: several touch rounds so the update log and (in
    // the checkpoint arm) the incremental checkpoints see real churn.
    for (int round = 0; round < 3; ++round) {
      co_await cl.submit(amcast::dst_of(0), 1u, {});
      co_await s.sleep(sim::ms(1));
    }

    auto& victim = system.replica(0, 2);
    auto& survivor = system.replica(0, 0);
    if (use_ckpt) {
      // Let the background writer catch up to the applied watermark; the
      // device charges real (virtual) write time, so this can take a
      // while at the larger sizes.
      for (int i = 0; i < 60000 &&
                      victim.checkpoint_watermark() < survivor.last_executed();
           ++i) {
        co_await s.sleep(sim::ms(1));
      }
    }

    system.amcast().endpoint(0, 2).node().crash();
    co_await s.sleep(sim::ms(2));

    const core::Tmp target = survivor.last_executed();
    const sim::Nanos t0 = s.now();
    system.restart_replica(0, 2);
    int spins = 0;
    while ((victim.rejoining() || victim.last_executed() < target) &&
           ++spins < 4000000) {
      co_await s.sleep(sim::us(50));
    }
    res.hung = victim.rejoining() || victim.last_executed() < target;
    res.restart_us = static_cast<double>(s.now() - t0) / 1000.0;
    res.restored_from_checkpoint = victim.restored_from_checkpoint();
    res.catchup_bytes = victim.restart_catchup_bytes();
    res.applied_full_bytes = victim.xfer_applied_full_bytes();
    res.applied_delta_bytes = victim.xfer_applied_delta_bytes();
    res.checkpoints = victim.checkpoints_completed();
    done_flag = true;
  }(sim, sys, client, checkpoints, out, done));
  // Heartbeat loops run forever; advance time until the script finishes.
  while (!done) sim.run_for(sim::ms(20));
  return out;
}

// ---------------------------------------------------------------------
// Chaos mode: crash a replica mid-checkpoint under a retrying workload.
// ---------------------------------------------------------------------

struct ChaosResult {
  std::uint64_t ops_done = 0;
  std::uint64_t retries = 0;
  std::uint64_t stale_replies = 0;
  std::uint64_t pages_written = 0;
  std::uint64_t crc_failures = 0;
  bool crashed_mid_checkpoint = false;
  bool restored_from_checkpoint = false;
  std::uint64_t hung = 0;
  std::size_t violations = 0;
};

struct ChaosState {
  int remaining = 0;
  bool crashed = false;
};

sim::Task<void> deposit_loop(core::System& sys, core::Client& client,
                             ChaosState& state, std::uint64_t seed, int ops) {
  sim::Rng rng(seed);
  auto& sim = sys.simulator();
  for (int k = 0; k < ops; ++k) {
    faultlab::DepositReq req{rng.bounded(16), 5};
    co_await client.submit(amcast::dst_of(0), faultlab::kDeposit,
                           std::as_bytes(std::span(&req, 1)));
    co_await sim.sleep(sim::us(rng.bounded(30)));
  }
  --state.remaining;
}

/// Waits for checkpoint page writes to start on g0.r2, then crashes it
/// (optionally tearing the next page write first) and restarts it 2 ms
/// later.
sim::Task<void> crash_mid_checkpoint(core::System& sys, ChaosState& state,
                                     bool torn, ChaosResult& out) {
  auto& sim = sys.simulator();
  auto& victim = sys.replica(0, 2);
  auto* store = victim.durable_store();
  const std::uint64_t pw0 = store->device().pages_written();
  if (torn) store->device().tear_next_write();
  int spins = 0;
  while (store->device().pages_written() == pw0 && ++spins < 500000) {
    co_await sim.sleep(sim::us(20));
  }
  out.crashed_mid_checkpoint = store->device().pages_written() > pw0;
  sys.amcast().endpoint(0, 2).node().crash();
  state.crashed = true;
  co_await sim.sleep(sim::ms(2));
  sys.restart_replica(0, 2);
}

ChaosResult run_chaos(const Options& opt, bool torn) {
  const int clients = opt.quick ? 3 : 5;
  const int ops = opt.quick ? 40 : 120;

  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, opt.seed);
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  // Retries ride out the crash window; replicas dedup via sessions.
  cfg.client_attempt_timeout = sim::us(500);
  cfg.client_max_retries = 12;
  cfg.client_retry_backoff = sim::us(20);
  cfg.client_retry_backoff_max = sim::us(500);
  // Aggressive cadence so a checkpoint is in flight while load runs.
  cfg.durable.checkpoint_interval = sim::us(500);
  core::System sys(
      fabric, /*partitions=*/1, /*replicas=*/3,
      [] { return std::make_unique<faultlab::BankApp>(1, 16); }, cfg);
  faultlab::HistoryRecorder history;
  history.attach(sys);
  sys.start();

  ChaosResult out;
  ChaosState state;
  state.remaining = clients;
  for (int c = 0; c < clients; ++c) {
    sim.spawn(deposit_loop(sys, sys.add_client(), state,
                           opt.seed * 1000 + static_cast<std::uint64_t>(c),
                           ops));
  }
  sim.spawn(crash_mid_checkpoint(sys, state, torn, out));
  sim.run_for(sim::ms(400));
  // Let the restarted replica finish catching up before the digests.
  for (int i = 0; i < 2000 && (sys.replica(0, 2).rejoining() ||
                               sys.replica(0, 2).last_executed() <
                                   sys.replica(0, 0).last_executed());
       ++i) {
    sim.run_for(sim::us(100));
  }
  sim.run_for(sim::ms(5));

  for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
    auto& cl = sys.client(c);
    out.ops_done += cl.completed();
    out.retries += cl.retries();
    if (cl.in_flight()) ++out.hung;
  }
  auto& victim = sys.replica(0, 2);
  out.pages_written = victim.durable_store()->device().pages_written();
  out.crc_failures = victim.durable_store()->device().crc_failures();
  out.restored_from_checkpoint = victim.restored_from_checkpoint();
  for (int r = 0; r < 3; ++r) {
    out.stale_replies += sys.replica(0, r).stale_session_replies();
  }

  faultlab::CrashSet crashed;
  crashed.insert({0, 2});
  auto v = faultlab::check_amcast_properties(history, sys, crashed);
  faultlab::check_exactly_once(history, v);
  faultlab::check_store_convergence(sys, v);
  faultlab::check_session_convergence(sys, v);
  out.violations = v.size();
  for (const auto& viol : v) {
    std::fprintf(stderr, "VIOLATION [%s] %s\n", viol.oracle.c_str(),
                 viol.detail.c_str());
  }
  out.hung += static_cast<std::uint64_t>(state.remaining);
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--chaos") {
      opt.chaos = true;
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--chaos] [--seed <s>] [--json <path>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  harness::ReportWriter report(opt.chaos ? "recovery_bench_chaos"
                                         : "recovery_bench");
  int exit_code = 0;

  if (opt.chaos) {
    std::printf("recovery chaos: crash g0.r2 mid-checkpoint under retrying "
                "load, restart, full oracle suite\n\n");
    const char* names[] = {"crash-mid-checkpoint", "crash-torn-write"};
    for (int cell = 0; cell < 2; ++cell) {
      const ChaosResult r = run_chaos(opt, /*torn=*/cell == 1);
      std::printf(
          "%-22s ops=%llu retries=%llu pages=%llu crc_fail=%llu "
          "mid_ckpt=%d restored=%d hung=%llu violations=%zu\n",
          names[cell], static_cast<unsigned long long>(r.ops_done),
          static_cast<unsigned long long>(r.retries),
          static_cast<unsigned long long>(r.pages_written),
          static_cast<unsigned long long>(r.crc_failures),
          r.crashed_mid_checkpoint ? 1 : 0, r.restored_from_checkpoint ? 1 : 0,
          static_cast<unsigned long long>(r.hung), r.violations);
      if (r.violations != 0 || r.hung != 0) exit_code = 1;
      if (!opt.json_path.empty()) {
        harness::RunResult row;
        row.completed = r.ops_done;
        report.row(names[cell], row, [&](telemetry::JsonWriter& w) {
          w.kv("retries", r.retries);
          w.kv("stale_replies", r.stale_replies);
          w.kv("pages_written", r.pages_written);
          w.kv("crc_failures", r.crc_failures);
          w.kv("crashed_mid_checkpoint", r.crashed_mid_checkpoint);
          w.kv("restored_from_checkpoint", r.restored_from_checkpoint);
          w.kv("hung", r.hung);
          w.kv("violations", static_cast<std::uint64_t>(r.violations));
          w.kv("seed", opt.seed);
          w.kv("quick", opt.quick);
        });
      }
    }
  } else {
    std::printf(
        "recovery: restart latency, checkpoint restore + O(delta) catch-up "
        "vs full network transfer (16KB non-serialized objects, 1x3)\n\n");
    std::printf("%-8s %14s %14s %9s\n", "state", "baseline", "checkpoint",
                "speedup");

    std::vector<std::uint64_t> sizes;
    if (opt.quick) {
      sizes = {1u << 20, 4u << 20};
    } else {
      sizes = {4u << 20, 16u << 20, 64u << 20};
    }
    double last_speedup = 0.0;
    bool any_hung = false;
    for (const std::uint64_t bytes : sizes) {
      const RecoveryResult base = run_recovery(opt, bytes, false);
      const RecoveryResult ckpt = run_recovery(opt, bytes, true);
      const double speedup =
          ckpt.restart_us > 0.0 ? base.restart_us / ckpt.restart_us : 0.0;
      last_speedup = speedup;
      any_hung = any_hung || base.hung || ckpt.hung;
      const std::string label = std::to_string(bytes >> 20) + "MB";
      std::printf("%-8s %11.1f us %11.1f us %8.1fx%s%s\n", label.c_str(),
                  base.restart_us, ckpt.restart_us, speedup,
                  ckpt.restored_from_checkpoint ? "" : "  [no checkpoint!]",
                  (base.hung || ckpt.hung) ? "  [HUNG]" : "");
      if (!opt.json_path.empty()) {
        auto add_row = [&](const char* arm, const RecoveryResult& r,
                           double sp) {
          harness::RunResult row;
          row.completed = 1;
          report.row((label + "/" + arm).c_str(), row,
                     [&](telemetry::JsonWriter& w) {
                       w.kv("bytes", bytes);
                       w.kv("restart_us", r.restart_us);
                       w.kv("restored_from_checkpoint",
                            r.restored_from_checkpoint);
                       w.kv("catchup_bytes", r.catchup_bytes);
                       w.kv("applied_full_bytes", r.applied_full_bytes);
                       w.kv("applied_delta_bytes", r.applied_delta_bytes);
                       w.kv("checkpoints", r.checkpoints);
                       w.kv("speedup", sp);
                       w.kv("hung", r.hung);
                       w.kv("seed", opt.seed);
                       w.kv("quick", opt.quick);
                     });
        };
        add_row("baseline", base, 0.0);
        add_row("checkpoint", ckpt, speedup);
      }
    }
    // Acceptance gate: checkpoints must beat a full transfer by >= 5x at
    // the largest swept size (the paper's O(delta) restart claim).
    if (last_speedup < 5.0 || any_hung) {
      std::fprintf(stderr,
                   "FAIL: speedup %.1fx < 5x at largest size (or hang)\n",
                   last_speedup);
      exit_code = 1;
    }
  }

  if (!opt.json_path.empty()) {
    if (report.finish_to_file(opt.json_path)) {
      std::printf("report -> %s\n", opt.json_path.c_str());
    } else {
      std::fprintf(stderr, "report: cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
  }
  return exit_code;
}
