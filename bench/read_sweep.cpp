// Read-path sweep: lease-based one-sided fast reads vs the ordered path.
//
// Closed-loop mixed read/deposit clients on a 2x3 bank deployment, swept
// over read ratio x {leases off, leases on}. With leases off every read
// rides the multicast stream; with leases on a warm client answers reads
// with two one-sided READs (lease word, then object slot) and only falls
// back on torn slots, expired leases or remote failure. The run fails
// (non-zero exit) if the leased cell at 90% reads is not at least 2x the
// ordered cell's throughput, or if any client hangs.
//
// --chaos runs a single leased cell with a leader crash + restart mid-run
// and checks the full oracle suite (amcast properties, exactly-once,
// store convergence, read linearizability); violations fail the run.
//
//   read_sweep [--quick] [--chaos] [--seed <s>] [--json <path>]
//              (default BENCH_reads.json; --chaos default
//               BENCH_reads_chaos.json)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "faultlab/bank.hpp"
#include "faultlab/injector.hpp"
#include "faultlab/linear.hpp"
#include "faultlab/plan.hpp"
#include "rdma/fabric.hpp"
#include "telemetry/json.hpp"

using namespace heron;

namespace {

struct Options {
  bool quick = false;
  bool chaos = false;
  std::uint64_t seed = 99;
  std::string json_path;
};

struct CellResult {
  std::uint64_t ops_done = 0;  // completed submits + fast-read hits
  std::uint64_t fast_hits = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t torn_retries = 0;
  std::uint64_t lease_rejects = 0;
  std::uint64_t lease_grants = 0;
  std::uint64_t gate_waits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t hung = 0;
  sim::Nanos elapsed = 0;  // virtual time until the last loop finished
  sim::Nanos read_fast_p50 = 0;
  sim::Nanos read_ordered_p50 = 0;
  std::size_t violations = 0;
  double ops_per_sec = 0.0;
};

constexpr int kPartitions = 2;
constexpr int kReplicas = 3;
constexpr std::uint64_t kAccounts = 8;

struct LoopState {
  int remaining = 0;
  sim::Nanos finish = 0;
  sim::LatencyRecorder fast_reads;
  sim::LatencyRecorder ordered_reads;
};

sim::Task<void> mixed_loop(core::System& sys, core::Client& client,
                           faultlab::LinearChecker* lin, LoopState& state,
                           std::uint64_t seed, int ops, double read_ratio) {
  sim::Rng rng(seed);
  auto& sim = sys.simulator();
  const auto partitions = static_cast<std::uint64_t>(sys.partitions());
  const auto total = partitions * kAccounts;
  for (int k = 0; k < ops; ++k) {
    const core::Oid oid = rng.bounded(total);
    const auto home = static_cast<amcast::GroupId>(oid % partitions);
    if (rng.chance(read_ratio)) {
      const sim::Nanos t0 = sim.now();
      const auto res = co_await client.read(home, oid);
      if (res.submit_status == core::SubmitStatus::kOk && res.status == 0) {
        (res.fast ? state.fast_reads : state.ordered_reads).record(res.latency);
        if (lin != nullptr) {
          lin->note_read(oid, res.tmp, t0, sim.now(), res.fast);
        }
      }
    } else {
      faultlab::DepositReq req{oid, 5};
      const sim::Nanos t0 = sim.now();
      const auto res = co_await client.submit(
          amcast::dst_of(home), faultlab::kDeposit,
          std::as_bytes(std::span(&req, 1)));
      if (lin != nullptr) {
        lin->note_write(oid, client.id(), res.session_seq, t0, sim.now(),
                        res.status);
      }
    }
  }
  if (--state.remaining == 0) state.finish = sim.now();
}

CellResult run_cell(double read_ratio, sim::Nanos lease_duration,
                    const Options& opt, const std::string& plan_text = "") {
  const int clients = opt.quick ? 3 : 6;
  const int ops = opt.quick ? 30 : 80;

  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, opt.seed);
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  cfg.lease_duration = lease_duration;
  // Retries ride out the fault window in --chaos; in fault-free cells the
  // timeout never fires.
  cfg.client_attempt_timeout = sim::us(500);
  cfg.client_max_retries = 12;
  cfg.client_retry_backoff = sim::us(20);
  cfg.client_retry_backoff_max = sim::us(500);
  core::System sys(
      fabric, kPartitions, kReplicas,
      [] { return std::make_unique<faultlab::BankApp>(kPartitions, kAccounts); },
      cfg);
  faultlab::HistoryRecorder history;
  faultlab::LinearChecker lin;
  const bool chaos = !plan_text.empty();
  if (chaos) history.attach(sys);
  sys.start();

  LoopState state;
  state.remaining = clients;
  for (int c = 0; c < clients; ++c) {
    sim.spawn(mixed_loop(sys, sys.add_client(), chaos ? &lin : nullptr, state,
                         opt.seed * 1000 + static_cast<std::uint64_t>(c), ops,
                         read_ratio));
  }
  faultlab::Injector injector(sys);
  if (chaos) {
    injector.run(faultlab::FaultPlan::parse("read_sweep", plan_text));
  }
  sim.run_for(sim::ms(500));

  CellResult out;
  for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
    auto& cl = sys.client(c);
    out.ops_done += cl.completed() + cl.fastread_hits();
    out.fast_hits += cl.fastread_hits();
    out.fallbacks += cl.fastread_fallbacks();
    out.torn_retries += cl.fastread_torn_retries();
    out.lease_rejects += cl.fastread_lease_rejects();
    out.timeouts += cl.timeouts();
    if (cl.in_flight()) ++out.hung;
  }
  for (core::GroupId g = 0; g < kPartitions; ++g) {
    for (int r = 0; r < kReplicas; ++r) {
      out.lease_grants += sys.replica(g, r).lease_grants();
      out.gate_waits += sys.replica(g, r).gate_waits();
    }
  }
  out.elapsed = state.remaining == 0 ? state.finish : sim.now();
  out.read_fast_p50 = state.fast_reads.percentile(50);
  out.read_ordered_p50 = state.ordered_reads.percentile(50);
  if (out.elapsed > 0) {
    out.ops_per_sec = static_cast<double>(out.ops_done) * 1e9 /
                      static_cast<double>(out.elapsed);
  }
  if (chaos) {
    auto v = faultlab::check_amcast_properties(history, sys,
                                               injector.ever_crashed());
    faultlab::check_exactly_once(history, v);
    faultlab::check_store_convergence(sys, v);
    for (auto& lv : lin.check(history)) v.push_back(std::move(lv));
    out.violations = v.size();
    for (const auto& viol : v) {
      std::fprintf(stderr, "VIOLATION [%s] %s\n", viol.oracle.c_str(),
                   viol.detail.c_str());
    }
  }
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--chaos") {
      opt.chaos = true;
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--chaos] [--seed <s>] [--json <path>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (opt.json_path.empty()) {
    opt.json_path = opt.chaos ? "BENCH_reads_chaos.json" : "BENCH_reads.json";
  }
  return opt;
}

void emit_cell(telemetry::JsonWriter& w, double read_ratio, bool leases,
               const CellResult& r, const Options& opt, char* argv0,
               const std::string& plan_text) {
  w.begin_object();
  w.kv("read_ratio", read_ratio);
  w.kv("leases", leases);
  w.kv("ops_done", r.ops_done);
  w.kv("ops_per_sec", r.ops_per_sec);
  w.kv("elapsed_ns", r.elapsed);
  w.kv("fast_hits", r.fast_hits);
  w.kv("fallbacks", r.fallbacks);
  w.kv("torn_retries", r.torn_retries);
  w.kv("lease_rejects", r.lease_rejects);
  w.kv("lease_grants", r.lease_grants);
  w.kv("gate_waits", r.gate_waits);
  w.kv("timeouts", r.timeouts);
  w.kv("hung_clients", r.hung);
  w.kv("read_fast_p50_ns", r.read_fast_p50);
  w.kv("read_ordered_p50_ns", r.read_ordered_p50);
  if (!plan_text.empty()) {
    w.kv("plan", plan_text);
    w.kv("violations", static_cast<std::uint64_t>(r.violations));
  }
  w.kv("repro", std::string(argv0) + " --seed " + std::to_string(opt.seed) +
                    (opt.quick ? " --quick" : "") +
                    (opt.chaos ? " --chaos" : ""));
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("bench", "read_sweep");
  w.kv("quick", opt.quick);
  w.kv("chaos", opt.chaos);
  w.kv("seed", opt.seed);
  w.key("cells").begin_array();

  int exit_code = 0;
  double speedup = 0.0;

  if (opt.chaos) {
    // One leased cell with a partition-0 leader crash mid-run while the
    // group holds an open lease, then a restart; the oracle suite gates
    // the exit code.
    const std::string plan = "crash g0.r0 @ 500us; restart g0.r0 @ 5ms";
    std::printf("Read chaos smoke: 2x3 bank, 90%% reads, leases on, %s\n\n",
                plan.c_str());
    const CellResult r = run_cell(0.9, sim::ms(1), opt, plan);
    emit_cell(w, 0.9, true, r, opt, argv[0], plan);
    std::printf(
        "ops=%llu fast=%llu fallback=%llu timeouts=%llu violations=%zu%s\n",
        static_cast<unsigned long long>(r.ops_done),
        static_cast<unsigned long long>(r.fast_hits),
        static_cast<unsigned long long>(r.fallbacks),
        static_cast<unsigned long long>(r.timeouts), r.violations,
        r.hung != 0 ? "  HUNG CLIENTS" : "");
    if (r.violations != 0 || r.hung != 0) exit_code = 1;
  } else {
    std::printf("Read sweep: 2x3 bank, mixed closed-loop clients\n\n");
    std::printf("%-8s %-8s %10s %12s %8s %8s %10s %12s\n", "reads", "leases",
                "ops", "ops/s", "fast", "fallback", "fast_p50", "ordered_p50");

    const std::vector<double> ratios = {0.5, 0.9};
    double ordered_90 = 0.0;
    double leased_90 = 0.0;
    std::uint64_t total_hung = 0;
    for (const double ratio : ratios) {
      for (const bool leases : {false, true}) {
        const CellResult r =
            run_cell(ratio, leases ? sim::ms(1) : sim::Nanos{0}, opt);
        total_hung += r.hung;
        if (ratio == 0.9) (leases ? leased_90 : ordered_90) = r.ops_per_sec;
        emit_cell(w, ratio, leases, r, opt, argv[0], "");
        std::printf("%-8.2f %-8s %10llu %12.0f %8llu %8llu %9.1fus %11.1fus%s\n",
                    ratio, leases ? "on" : "off",
                    static_cast<unsigned long long>(r.ops_done), r.ops_per_sec,
                    static_cast<unsigned long long>(r.fast_hits),
                    static_cast<unsigned long long>(r.fallbacks),
                    sim::to_us(r.read_fast_p50), sim::to_us(r.read_ordered_p50),
                    r.hung != 0 ? "  HUNG CLIENTS" : "");
      }
    }

    speedup = ordered_90 > 0 ? leased_90 / ordered_90 : 0.0;
    std::printf("\n90%%-read speedup (leases on / off): %.2fx\n", speedup);
    // The 2x gate applies to the full sweep; --quick runs too few ops
    // per client to amortise the cold-cache seeding reads.
    if ((!opt.quick && speedup < 2.0) || total_hung != 0) {
      std::fprintf(stderr,
                   "FAIL: expected >= 2x at 90%% reads (got %.2fx, hung=%llu)\n",
                   speedup, static_cast<unsigned long long>(total_hung));
      exit_code = 1;
    }
  }

  w.end_array();
  if (!opt.chaos) w.kv("speedup_at_90_reads", speedup);
  w.end_object();

  if (!opt.json_path.empty()) {
    FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 2;
    }
    std::fputs(w.str().c_str(), f);
    std::fclose(f);
    std::printf("report -> %s\n", opt.json_path.c_str());
  }
  return exit_code;
}
