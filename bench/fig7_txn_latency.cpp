// Figure 7: average latency per TPC-C transaction type, one closed-loop
// client per run; single-partition vs multi-partition split for the types
// that can span partitions (NewOrder, Payment), plus the CDF.
//
// Paper reference points: OrderStatus 16.5 us, Delivery 17.6 us (light
// local transactions); StockLevel expensive (serialized Stock scans);
// NewOrder and Payment pay an extra multi-partition premium.
//
// Flags:
//   --json <path>   machine-readable report (one row per txn kind)
//   --seed <n>      fabric/workload seed (default 99), echoed into the
//                   report so any run can be reproduced exactly
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/report.hpp"
#include "harness/runner.hpp"

using namespace heron;

namespace {

struct Options {
  std::string json_path;
  std::uint64_t seed = 99;
};

struct KindCase {
  const char* label;
  std::uint32_t kind;
};

void run_kind(const KindCase& kc, harness::ReportWriter* report,
              const Options& opt) {
  tpcc::TpccScale scale{.factor = 0.02, .initial_orders_per_district = 10};
  harness::TpccCluster cluster(/*partitions=*/4, /*replicas=*/3, scale, {}, {},
                               opt.seed);

  tpcc::WorkloadConfig workload;
  workload.partitions = 4;
  workload.scale = scale;
  // Boost the remote probability a little so the multi-partition bar has
  // enough samples in a short run (the paper plots it separately anyway).
  workload.remote_customer_prob = 0.15;

  auto& client = cluster.system().add_client();
  auto gen = std::make_unique<tpcc::WorkloadGen>(workload, 0, opt.seed * 8 + 5);
  struct Loop {
    static sim::Task<void> run(core::Client& c, tpcc::WorkloadGen* g,
                               std::uint32_t kind,
                               sim::LatencyRecorder* single,
                               sim::LatencyRecorder* multi) {
      while (true) {
        tpcc::GeneratedRequest req;
        switch (kind) {
          case tpcc::kNewOrder: req = g->new_order(0); break;
          case tpcc::kPayment: req = g->payment(); break;
          case tpcc::kOrderStatus: req = g->order_status(); break;
          case tpcc::kDelivery: req = g->delivery(); break;
          default: req = g->stock_level(); break;
        }
        const bool is_multi = amcast::dst_count(req.dst) > 1;
        auto result = co_await c.submit(req.dst, req.kind, req.payload);
        (is_multi ? multi : single)->record(result.latency);
      }
    }
  };
  sim::LatencyRecorder single, multi;
  cluster.simulator().spawn(
      Loop::run(client, gen.get(), kc.kind, &single, &multi));
  cluster.simulator().run_for(sim::ms(150));

  std::printf("%-12s %10zu %12.1f %10zu %12.1f %12.1f\n", kc.label,
              single.count(), single.empty() ? 0.0 : single.mean() / 1000.0,
              multi.count(), multi.empty() ? 0.0 : multi.mean() / 1000.0,
              single.empty() ? 0.0
                             : static_cast<double>(single.percentile(99)) / 1000.0);

  // CDF over all samples of this type.
  sim::LatencyRecorder all;
  for (auto v : single.samples()) all.record(v);
  for (auto v : multi.samples()) all.record(v);
  for (auto [ns, frac] : all.cdf(10)) {
    std::printf("cdf %-12s %8.2f us %5.2f\n", kc.label, sim::to_us(ns), frac);
  }

  if (report != nullptr) {
    harness::RunResult result;
    result.window = sim::ms(150);
    result.completed = single.count() + multi.count();
    result.latency = all;
    result.latency_single = single;
    result.latency_multi = multi;
    report->row(kc.label, result, [&](telemetry::JsonWriter& w) {
      w.kv("kind", kc.label);
      w.kv("seed", opt.seed);
    });
  }
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--seed <n>]\n", argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  harness::ReportWriter report("fig7_txn_latency");
  harness::ReportWriter* rep = opt.json_path.empty() ? nullptr : &report;

  std::printf(
      "Figure 7: TPC-C per-transaction latency, 1 client, 4 partitions\n"
      "paper: OrderStatus 16.5us, Delivery 17.6us, StockLevel expensive "
      "(serialized scans); NewOrder/Payment pay a multi-partition "
      "premium\n\n");
  std::printf("%-12s %10s %12s %10s %12s %12s\n", "txn", "n(single)",
              "single(us)", "n(multi)", "multi(us)", "p99-single");
  const KindCase cases[] = {
      {"NewOrder", tpcc::kNewOrder},   {"Payment", tpcc::kPayment},
      {"OrderStatus", tpcc::kOrderStatus}, {"Delivery", tpcc::kDelivery},
      {"StockLevel", tpcc::kStockLevel},
  };
  for (const auto& kc : cases) run_kind(kc, rep, opt);

  if (rep != nullptr) {
    if (report.finish_to_file(opt.json_path)) {
      std::printf("report -> %s\n", opt.json_path.c_str());
    } else {
      std::fprintf(stderr, "report: cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
  }
  return 0;
}
