// Ablation (not a paper figure): the lagger-avoidance heuristic.
//
// §III-A: after coordinating with a majority, replicas tentatively wait a
// small extra delay for the remaining replicas so slow ones don't become
// laggers. This sweep varies the cutoff and reports lagger activity
// (state transfers + skipped requests) and the throughput cost.
// Flags: --seed <n> sets the fabric/workload seed (default 99).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/runner.hpp"

using namespace heron;

int main(int argc, char** argv) {
  std::uint64_t seed = 99;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--seed <n>]\n", argv[0]);
      return 2;
    }
  }
  std::printf(
      "Ablation: Phase-4 wait-for-all cutoff vs lagger rate "
      "(4 partitions, 3 replicas, all-multi-partition NewOrder, 1%% 150us stalls)\n\n");
  std::printf("%12s %12s %14s %16s %12s\n", "cutoff(us)", "tput(tps)",
              "latency(us)", "state transfers", "skipped");

  for (double cutoff_us : {0.0, 3.0, 10.0, 50.0, 150.0, 400.0}) {
    tpcc::TpccScale scale{.factor = 0.02, .initial_orders_per_district = 10};
    core::HeronConfig cfg;
    cfg.coord_extra_delay = sim::us(cutoff_us);
    // Inject occasional stalls (1% of requests stall 150us) so slow
    // replicas actually fall behind the fast majority.
    cfg.hiccup_prob = 0.01;
    harness::TpccCluster cluster(4, 3, scale, cfg, {}, seed);

    tpcc::WorkloadConfig workload;
    workload.force_partitions = 2;  // every request coordinates
    cluster.add_clients(/*per_partition=*/6, workload);
    auto result = cluster.run(sim::ms(15), sim::ms(80));

    std::uint64_t transfers = 0, skipped = 0;
    for (int p = 0; p < 4; ++p) {
      for (int r = 0; r < 3; ++r) {
        transfers += cluster.system().replica(p, r).state_transfers();
        skipped += cluster.system().replica(p, r).skipped_count();
      }
    }
    std::printf("%12.1f %12.0f %14.1f %16llu %12llu\n", cutoff_us,
                result.throughput_tps, result.latency.mean() / 1000.0,
                static_cast<unsigned long long>(transfers),
                static_cast<unsigned long long>(skipped));
  }
  std::printf(
      "\nexpected shape: a small cutoff (a fraction of request latency) "
      "suppresses laggers at negligible throughput cost\n");
  return 0;
}
