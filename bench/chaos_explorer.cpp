// Chaos explorer: fans out over seeds x cluster shapes x fault plans,
// runs the bank and TPC-C workloads under fault injection, checks the
// recorded histories against the atomic multicast + SMR oracles
// (src/faultlab/history.hpp) and emits a machine-readable report naming
// the exact (seed, plan) needed to reproduce any violation:
//
//   chaos_explorer [--quick] [--seed <s>] [--plan <name>]
//                  [--json <path>]          (default BENCH_chaos.json)
//                  [--timeout-us <t>] [--retries <n>] [--backoff-us <b>]
//                  [--deadline-us <d>] [--no-retry]
//                  [--rack-size <n>] [--oversub <x>] [--credit-window <n>]
//                  [--no-priority-lanes] [--adaptive-admission]
//
// Clients run the robust retry lifecycle by default (fresh-uid retries,
// session dedup at the replicas); --no-retry restores the legacy
// wait-forever client. The fabric flags select the congestion-capable
// topology (two-level ToR with per-QP credit windows) instead of the
// default flat fabric. All knobs are echoed in every cell's repro
// command so a violating cell replays under identical behaviour.
//
// Exit code is non-zero when any oracle reported a violation.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "faultlab/bank.hpp"
#include "faultlab/history.hpp"
#include "faultlab/injector.hpp"
#include "faultlab/plan.hpp"
#include "rdma/fabric.hpp"
#include "telemetry/json.hpp"
#include "tpcc/app.hpp"
#include "tpcc/gen.hpp"

using namespace heron;

namespace {

struct NamedPlan {
  const char* name;
  const char* text;
};

// Every plan targets g0 so it is valid for all shapes. The partition blip
// stays below the heartbeat suspicion window (4 x 50us) on purpose: cuts
// long enough to trigger a takeover are exercised by crash plans instead.
constexpr NamedPlan kPlans[] = {
    {"none", ""},
    {"crash-follower", "crash g0.r2 @ 2ms; restart g0.r2 @ 8ms"},
    {"crash-leader", "crash g0.r0 @ 2ms; restart g0.r0 @ 12ms"},
    {"latency-spike", "latency x8 @ 2ms for 3ms"},
    {"bandwidth-drop", "bandwidth x0.2 @ 2ms for 3ms"},
    {"partition-blip", "partition g0.r2 @ 2ms for 150us"},
    {"jitter-burst", "jitter p0.4 40us @ 2ms for 4ms"},
    {"double-fault",
     "crash g0.r1 @ 2ms; latency x4 @ 3ms for 2ms; restart g0.r1 @ 12ms"},
};

struct Shape {
  int partitions;
  int replicas;
};

struct Options {
  bool quick = false;
  std::uint64_t seed = 0;  // 0 = sweep the default seed list
  std::string plan;        // empty = all plans
  std::string json_path = "BENCH_chaos.json";
  // Client retry lifecycle (see core::HeronConfig). Defaults keep every
  // plan terminating well inside the per-cell sim budget.
  bool retry = true;
  std::uint64_t timeout_us = 2000;    // per-attempt timeout
  int retries = 10;                   // max retries (attempts - 1)
  std::uint64_t backoff_us = 50;      // initial backoff
  std::uint64_t deadline_us = 120000; // overall per-request deadline
  // Leader-side batching knobs (see amcast::Config). The CI smoke run
  // re-executes the sweep with --max-batch 8 so the oracles also cover
  // batched proposals under faults.
  std::uint32_t max_batch = 1;
  std::uint64_t batch_timeout_us = 0;
  // Fabric congestion knobs (see rdma::LatencyModel). rack_size 0 keeps
  // the default flat fabric; > 0 builds the two-level ToR topology.
  int rack_size = 0;
  double oversub = 1.0;
  std::uint32_t credit_window = 0;
  bool priority_lanes = true;
  bool adaptive_admission = false;
};

rdma::LatencyModel fabric_model(const Options& opt) {
  rdma::LatencyModel m;
  m.rack_size = opt.rack_size;
  m.oversub_ratio = opt.oversub;
  m.credit_window = opt.credit_window;
  m.priority_lanes = opt.priority_lanes;
  return m;
}

amcast::Config amcast_knobs(const Options& opt) {
  amcast::Config acfg;
  acfg.max_batch = opt.max_batch;
  acfg.batch_timeout = sim::us(static_cast<double>(opt.batch_timeout_us));
  acfg.adaptive_admission = opt.adaptive_admission;
  return acfg;
}

void apply_client_knobs(core::HeronConfig& cfg, const Options& opt) {
  if (!opt.retry) return;
  cfg.client_attempt_timeout = sim::us(static_cast<double>(opt.timeout_us));
  cfg.client_max_retries = opt.retries;
  cfg.client_retry_backoff = sim::us(static_cast<double>(opt.backoff_us));
  cfg.client_deadline = sim::us(static_cast<double>(opt.deadline_us));
}

/// Client-lifecycle + batching flags for a cell's repro command line.
std::string retry_flags(const Options& opt) {
  std::string flags;
  if (opt.retry) {
    flags = " --timeout-us " + std::to_string(opt.timeout_us) + " --retries " +
            std::to_string(opt.retries) + " --backoff-us " +
            std::to_string(opt.backoff_us) + " --deadline-us " +
            std::to_string(opt.deadline_us);
  } else {
    flags = " --no-retry";
  }
  if (opt.max_batch != 1) {
    flags += " --max-batch " + std::to_string(opt.max_batch);
    if (opt.batch_timeout_us != 0) {
      flags += " --batch-timeout-us " + std::to_string(opt.batch_timeout_us);
    }
  }
  if (opt.rack_size != 0) {
    flags += " --rack-size " + std::to_string(opt.rack_size) + " --oversub " +
             std::to_string(opt.oversub);
  }
  if (opt.credit_window != 0) {
    flags += " --credit-window " + std::to_string(opt.credit_window);
  }
  if (!opt.priority_lanes) flags += " --no-priority-lanes";
  if (opt.adaptive_admission) flags += " --adaptive-admission";
  return flags;
}

struct CellOutcome {
  std::uint64_t completed = 0;
  std::uint64_t expected = 0;
  std::uint64_t deliveries = 0;
  std::vector<faultlab::Violation> violations;
};

/// One bank cell: finite closed-loop transfer clients under the plan,
/// then the full oracle suite (history captured via system observers).
CellOutcome run_bank_cell(Shape shape, const faultlab::FaultPlan& plan,
                          std::uint64_t seed, const Options& opt) {
  constexpr std::uint64_t kAccounts = 8;
  constexpr int kClients = 3;
  constexpr int kOps = 40;

  sim::Simulator sim;
  rdma::Fabric fabric(sim, fabric_model(opt), seed);
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  apply_client_knobs(cfg, opt);
  core::System sys(
      fabric, shape.partitions, shape.replicas,
      [shape, accounts = kAccounts] {
        return std::make_unique<faultlab::BankApp>(shape.partitions, accounts);
      },
      cfg, amcast_knobs(opt));
  faultlab::HistoryRecorder history;
  history.attach(sys);
  sys.start();

  for (int c = 0; c < kClients; ++c) {
    sim.spawn(faultlab::bank_client_loop(
        sys, sys.add_client(),
        seed * 1000 + static_cast<std::uint64_t>(c), kOps, kAccounts));
  }
  faultlab::Injector injector(sys);
  injector.run(plan);

  // Generous cap: the workload quiesces long before this, leaving the
  // grace the followers need to finish their delivery tails.
  sim.run_for(sim::ms(500));

  CellOutcome out;
  out.expected = static_cast<std::uint64_t>(kClients) * kOps;
  out.completed = sys.total_completed();
  out.deliveries = history.deliveries().size();
  out.violations =
      check_amcast_properties(history, sys, injector.ever_crashed());
  faultlab::check_exactly_once(history, out.violations);
  faultlab::check_store_convergence(sys, out.violations);

  // Application-level oracle: transfers conserve the total balance.
  const std::int64_t want = static_cast<std::int64_t>(shape.partitions) *
                            static_cast<std::int64_t>(kAccounts) * 1000;
  for (int r = 0; r < shape.replicas; ++r) {
    if (!sys.replica(0, r).node().alive()) continue;
    const std::int64_t got = faultlab::bank_total(sys, r, kAccounts);
    if (got != want) {
      out.violations.push_back(faultlab::Violation{
          "conservation", "rank " + std::to_string(r) + " total " +
                              std::to_string(got) + " != " +
                              std::to_string(want)});
    }
  }
  return out;
}

sim::Task<void> tpcc_client_loop(core::Client& client,
                                 std::unique_ptr<tpcc::WorkloadGen> gen,
                                 int ops) {
  for (int k = 0; k < ops; ++k) {
    tpcc::GeneratedRequest req = gen->next();
    co_await client.submit(req.dst, req.kind, req.payload);
  }
}

/// One TPC-C cell: a small scale factor, one finite client per partition.
CellOutcome run_tpcc_cell(Shape shape, const faultlab::FaultPlan& plan,
                          std::uint64_t seed, const Options& opt) {
  constexpr int kOps = 25;
  const tpcc::TpccScale scale{.factor = 0.01, .initial_orders_per_district = 6};

  sim::Simulator sim;
  rdma::Fabric fabric(sim, fabric_model(opt), seed);
  core::HeronConfig cfg;
  cfg.object_region_bytes = scale.region_bytes(1.4) + (8u << 20);
  apply_client_knobs(cfg, opt);
  core::System sys(
      fabric, shape.partitions, shape.replicas,
      [shape, scale, seed] {
        return std::make_unique<tpcc::TpccApp>(shape.partitions, scale, seed);
      },
      cfg, amcast_knobs(opt));
  faultlab::HistoryRecorder history;
  history.attach(sys);
  sys.start();

  for (int p = 0; p < shape.partitions; ++p) {
    tpcc::WorkloadConfig wl;
    wl.partitions = shape.partitions;
    wl.scale = scale;
    auto gen = std::make_unique<tpcc::WorkloadGen>(
        wl, static_cast<std::uint32_t>(p),
        seed * 7919 + static_cast<std::uint64_t>(p) + 1);
    sim.spawn(tpcc_client_loop(sys.add_client(), std::move(gen), kOps));
  }
  faultlab::Injector injector(sys);
  injector.run(plan);

  sim.run_for(sim::ms(500));

  CellOutcome out;
  out.expected =
      static_cast<std::uint64_t>(shape.partitions) * kOps;
  out.completed = sys.total_completed();
  out.deliveries = history.deliveries().size();
  out.violations =
      check_amcast_properties(history, sys, injector.ever_crashed());
  faultlab::check_exactly_once(history, out.violations);
  faultlab::check_store_convergence(sys, out.violations);
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--plan" && i + 1 < argc) {
      opt.plan = argv[++i];
    } else if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (a == "--timeout-us" && i + 1 < argc) {
      opt.timeout_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--retries" && i + 1 < argc) {
      opt.retries = std::atoi(argv[++i]);
    } else if (a == "--backoff-us" && i + 1 < argc) {
      opt.backoff_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--deadline-us" && i + 1 < argc) {
      opt.deadline_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--no-retry") {
      opt.retry = false;
    } else if (a == "--max-batch" && i + 1 < argc) {
      opt.max_batch = static_cast<std::uint32_t>(
          std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--batch-timeout-us" && i + 1 < argc) {
      opt.batch_timeout_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--rack-size" && i + 1 < argc) {
      opt.rack_size = std::atoi(argv[++i]);
    } else if (a == "--oversub" && i + 1 < argc) {
      opt.oversub = std::strtod(argv[++i], nullptr);
    } else if (a == "--credit-window" && i + 1 < argc) {
      opt.credit_window = static_cast<std::uint32_t>(
          std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--no-priority-lanes") {
      opt.priority_lanes = false;
    } else if (a == "--adaptive-admission") {
      opt.adaptive_admission = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--seed <s>] [--plan <name>] "
                   "[--json <path>] [--timeout-us <t>] [--retries <n>] "
                   "[--backoff-us <b>] [--deadline-us <d>] [--no-retry] "
                   "[--max-batch <n>] [--batch-timeout-us <t>] "
                   "[--rack-size <n>] [--oversub <x>] [--credit-window <n>] "
                   "[--no-priority-lanes] [--adaptive-admission]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  std::vector<std::uint64_t> seeds =
      opt.quick ? std::vector<std::uint64_t>{1, 2}
                : std::vector<std::uint64_t>{1, 2, 3};
  if (opt.seed != 0) seeds = {opt.seed};
  const std::vector<Shape> shapes =
      opt.quick ? std::vector<Shape>{{2, 3}}
                : std::vector<Shape>{{1, 3}, {2, 3}, {3, 3}};

  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("bench", "chaos_explorer");
  w.kv("quick", opt.quick);
  w.key("cells").begin_array();

  std::uint64_t total_violations = 0;
  int cells = 0;
  for (const auto& named : kPlans) {
    if (!opt.plan.empty() && opt.plan != named.name) continue;
    const auto plan = faultlab::FaultPlan::parse(named.name, named.text);
    for (const Shape shape : shapes) {
      for (const std::uint64_t seed : seeds) {
        for (const char* workload : {"bank", "tpcc"}) {
          // TPC-C is the heavier half; in quick mode only run it against
          // the plans that exercise the restart machinery.
          const bool tpcc_cell = std::string(workload) == "tpcc";
          if (tpcc_cell && opt.quick && opt.plan.empty() &&
              std::string(named.name) != "none" &&
              std::string(named.name) != "crash-follower") {
            continue;
          }
          const CellOutcome out =
              tpcc_cell ? run_tpcc_cell(shape, plan, seed, opt)
                        : run_bank_cell(shape, plan, seed, opt);
          ++cells;
          total_violations += out.violations.size();

          w.begin_object();
          w.kv("workload", workload);
          w.kv("partitions", shape.partitions);
          w.kv("replicas", shape.replicas);
          w.kv("plan", named.name);
          w.kv("plan_text", named.text);
          w.kv("seed", seed);
          w.kv("completed", out.completed);
          w.kv("expected", out.expected);
          w.kv("deliveries", out.deliveries);
          w.key("violations").begin_array();
          for (const auto& v : out.violations) {
            w.begin_object();
            w.kv("oracle", v.oracle);
            w.kv("detail", v.detail);
            w.end_object();
          }
          w.end_array();
          w.kv("client_retry", opt.retry);
          w.kv("repro", std::string(argv[0]) + " --seed " +
                            std::to_string(seed) + " --plan " + named.name +
                            retry_flags(opt));
          w.end_object();

          std::printf("%-5s p=%d r=%d seed=%llu plan=%-15s %llu/%llu%s\n",
                      workload, shape.partitions, shape.replicas,
                      static_cast<unsigned long long>(seed), named.name,
                      static_cast<unsigned long long>(out.completed),
                      static_cast<unsigned long long>(out.expected),
                      out.violations.empty() ? "" : "  VIOLATIONS");
          for (const auto& v : out.violations) {
            std::printf("    [%s] %s\n", v.oracle.c_str(), v.detail.c_str());
          }
        }
      }
    }
  }

  w.end_array();
  w.kv("cell_count", cells);
  w.kv("total_violations", total_violations);
  w.end_object();

  if (!opt.json_path.empty()) {
    FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 2;
    }
    std::fputs(w.str().c_str(), f);
    std::fclose(f);
    std::printf("report -> %s\n", opt.json_path.c_str());
  }

  std::printf("%d cells, %llu violations\n", cells,
              static_cast<unsigned long long>(total_violations));
  return total_violations == 0 ? 0 : 1;
}
