// Figure 5: Heron vs DynaStar on TPC-C — peak throughput and average
// latency at peak, for 1..16 warehouses.
//
// Paper shape: Heron outperforms DynaStar by 17x (1WH) up to 27x (16WH)
// in throughput, and DynaStar's latency is 44x-72x higher.
#include <cstdio>
#include <memory>
#include <vector>

#include "dynastar/system.hpp"
#include "harness/runner.hpp"

using namespace heron;

namespace {

const tpcc::TpccScale kScale{.factor = 0.02, .initial_orders_per_district = 10};

struct Point {
  double tput;
  double latency_us;
};

Point run_heron(int partitions) {
  harness::TpccCluster cluster(partitions, 3, kScale);
  tpcc::WorkloadConfig workload;
  cluster.add_clients(/*per_partition=*/8, workload);
  auto result = cluster.run(sim::ms(15), sim::ms(60));
  return {result.throughput_tps, result.latency.mean() / 1000.0};
}

Point run_dynastar(int partitions) {
  sim::Simulator sim;
  dynastar::Config cfg;
  cfg.store_bytes = kScale.region_bytes(1.4) + (32u << 20);
  dynastar::DynastarSystem sys(
      sim, partitions, 3,
      [partitions] {
        return std::make_unique<tpcc::TpccApp>(partitions, kScale, 99);
      },
      cfg);
  sys.start();

  tpcc::WorkloadConfig workload;
  workload.partitions = partitions;
  workload.scale = kScale;
  // Same client pressure as Heron's runs.
  std::vector<std::unique_ptr<tpcc::WorkloadGen>> gens;
  for (int p = 0; p < partitions; ++p) {
    for (int c = 0; c < 8; ++c) {
      auto& client = sys.add_client();
      auto gen = std::make_unique<tpcc::WorkloadGen>(
          workload, static_cast<std::uint32_t>(p),
          1234u + static_cast<std::uint64_t>(p * 100 + c));
      sim.spawn([](dynastar::Client& cl, tpcc::WorkloadGen* g)
                    -> sim::Task<void> {
        while (true) {
          auto req = g->next();
          co_await cl.submit(req.dst, req.kind, req.payload);
        }
      }(client, gen.get()));
      gens.push_back(std::move(gen));
    }
  }

  sim.run_for(sim::ms(100));  // warmup
  sys.reset_stats();
  const sim::Nanos window = sim::ms(400);
  sim.run_for(window);

  double latency_sum = 0;
  std::uint64_t samples = 0;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(partitions * 8);
       ++i) {
    auto& lat = sys.client(i).latencies();
    latency_sum += lat.mean() * static_cast<double>(lat.count());
    samples += lat.count();
  }
  return {static_cast<double>(sys.total_completed()) / sim::to_sec(window),
          samples ? latency_sum / static_cast<double>(samples) / 1000.0 : 0.0};
}

}  // namespace

int main() {
  std::printf(
      "Figure 5: Heron vs DynaStar, TPC-C (3 replicas/partition, 8 "
      "clients/partition)\n\n");
  std::printf("%4s %14s %14s %8s %16s %16s %9s\n", "WH", "heron(tps)",
              "dynastar(tps)", "speedup", "heron lat(us)", "dynastar lat(us)",
              "lat ratio");
  for (int wh : {1, 2, 4, 8, 16}) {
    const Point h = run_heron(wh);
    const Point d = run_dynastar(wh);
    std::printf("%4d %14.0f %14.0f %7.1fx %16.1f %16.1f %8.1fx\n", wh, h.tput,
                d.tput, h.tput / d.tput, h.latency_us, d.latency_us,
                d.latency_us / h.latency_us);
  }
  std::printf(
      "\npaper: Heron outperforms DynaStar 17x (1WH) to 27x (16WH); "
      "DynaStar latency 43.9x-72.0x higher\n");
  return 0;
}
