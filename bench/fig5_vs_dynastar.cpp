// Figure 5: Heron vs DynaStar on TPC-C — peak throughput and average
// latency at peak, for 1..16 warehouses.
//
// Paper shape: Heron outperforms DynaStar by 17x (1WH) up to 27x (16WH)
// in throughput, and DynaStar's latency is 44x-72x higher.
//
// Flags:
//   --json <path>   machine-readable report (one row per system x WH)
//   --quick         fewer warehouses, shorter windows (CI smoke mode)
//   --seed <n>      fabric/workload seed (default 99), echoed into the
//                   report so any run can be reproduced exactly
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "dynastar/system.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"

using namespace heron;

namespace {

const tpcc::TpccScale kScale{.factor = 0.02, .initial_orders_per_district = 10};

struct Options {
  std::string json_path;
  bool quick = false;
  std::uint64_t seed = 99;
};

harness::RunResult run_heron(int partitions, const Options& opt) {
  harness::TpccCluster cluster(partitions, 3, kScale, {}, {}, opt.seed);
  tpcc::WorkloadConfig workload;
  cluster.add_clients(/*per_partition=*/8, workload);
  return opt.quick ? cluster.run(sim::ms(3), sim::ms(12))
                   : cluster.run(sim::ms(15), sim::ms(60));
}

harness::RunResult run_dynastar(int partitions, const Options& opt) {
  sim::Simulator sim;
  dynastar::Config cfg;
  cfg.store_bytes = kScale.region_bytes(1.4) + (32u << 20);
  dynastar::DynastarSystem sys(
      sim, partitions, 3,
      [partitions, seed = opt.seed] {
        return std::make_unique<tpcc::TpccApp>(partitions, kScale, seed);
      },
      cfg);
  sys.start();

  tpcc::WorkloadConfig workload;
  workload.partitions = partitions;
  workload.scale = kScale;
  // Same client pressure as Heron's runs.
  std::vector<std::unique_ptr<tpcc::WorkloadGen>> gens;
  for (int p = 0; p < partitions; ++p) {
    for (int c = 0; c < 8; ++c) {
      auto& client = sys.add_client();
      auto gen = std::make_unique<tpcc::WorkloadGen>(
          workload, static_cast<std::uint32_t>(p),
          opt.seed * 100 + static_cast<std::uint64_t>(p * 100 + c) + 1);
      sim.spawn([](dynastar::Client& cl, tpcc::WorkloadGen* g)
                    -> sim::Task<void> {
        while (true) {
          auto req = g->next();
          co_await cl.submit(req.dst, req.kind, req.payload);
        }
      }(client, gen.get()));
      gens.push_back(std::move(gen));
    }
  }

  sim.run_for(opt.quick ? sim::ms(20) : sim::ms(100));  // warmup
  sys.reset_stats();
  const sim::Nanos window = opt.quick ? sim::ms(80) : sim::ms(400);
  sim.run_for(window);

  harness::RunResult result;
  result.window = window;
  result.completed = sys.total_completed();
  result.throughput_tps =
      static_cast<double>(sys.total_completed()) / sim::to_sec(window);
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(partitions * 8);
       ++i) {
    for (auto v : sys.client(i).latencies().samples()) {
      result.latency.record(v);
    }
  }
  return result;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--quick] [--seed <n>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  harness::ReportWriter report("fig5_vs_dynastar");

  std::printf(
      "Figure 5: Heron vs DynaStar, TPC-C (3 replicas/partition, 8 "
      "clients/partition)\n\n");
  std::printf("%4s %14s %14s %8s %16s %16s %9s\n", "WH", "heron(tps)",
              "dynastar(tps)", "speedup", "heron lat(us)", "dynastar lat(us)",
              "lat ratio");
  std::vector<int> warehouses = {1, 2, 4, 8, 16};
  if (opt.quick) warehouses = {1, 2};
  for (int wh : warehouses) {
    const auto h = run_heron(wh, opt);
    const auto d = run_dynastar(wh, opt);
    const double h_lat = h.latency.mean() / 1000.0;
    const double d_lat = d.latency.empty() ? 0.0 : d.latency.mean() / 1000.0;
    std::printf("%4d %14.0f %14.0f %7.1fx %16.1f %16.1f %8.1fx\n", wh,
                h.throughput_tps, d.throughput_tps,
                h.throughput_tps / d.throughput_tps, h_lat, d_lat,
                h_lat > 0 ? d_lat / h_lat : 0.0);
    if (!opt.json_path.empty()) {
      for (const auto* cell : {&h, &d}) {
        const char* system = cell == &h ? "heron" : "dynastar";
        report.row(std::string(system) + "/" + std::to_string(wh) + "wh",
                   *cell, [&](telemetry::JsonWriter& w) {
                     w.kv("system", system);
                     w.kv("warehouses", wh);
                     w.kv("seed", opt.seed);
                   });
      }
    }
  }
  if (!opt.quick) {
    std::printf(
        "\npaper: Heron outperforms DynaStar 17x (1WH) to 27x (16WH); "
        "DynaStar latency 43.9x-72.0x higher\n");
  }

  if (!opt.json_path.empty()) {
    if (report.finish_to_file(opt.json_path)) {
      std::printf("report -> %s\n", opt.json_path.c_str());
    } else {
      std::fprintf(stderr, "report: cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
  }
  return 0;
}
