#!/usr/bin/env bash
# Runs the figure benchmarks that emit machine-readable reports and
# collects BENCH_*.json (+ a Chrome trace) into an output directory.
#
# Usage: bench/run_all.sh [build_dir] [out_dir]
#   build_dir  cmake build tree holding bench/ binaries (default: build)
#   out_dir    where to put the artifacts (default: .)
# Env:
#   QUICK=1    smoke mode (short windows, fewer cells) where supported
#   SEED=<n>   pass --seed <n> to every benchmark (reproducible reports)
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-.}"
mkdir -p "$out_dir"

if [[ ! -x "$build_dir/bench/fig4_throughput" ]]; then
  echo "error: $build_dir/bench/fig4_throughput not found; build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 1
fi

quick_flags=()
[[ "${QUICK:-0}" == "1" ]] && quick_flags+=(--quick)
seed_flags=()
[[ -n "${SEED:-}" ]] && seed_flags+=(--seed "$SEED")

echo "== fig4_throughput =="
"$build_dir/bench/fig4_throughput" "${quick_flags[@]}" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_fig4_throughput.json" \
  --trace "$out_dir/BENCH_fig4.trace.json"

echo "== batch_sweep =="
"$build_dir/bench/batch_sweep" "${quick_flags[@]}" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_batch.json"

echo "== fig5_vs_dynastar =="
"$build_dir/bench/fig5_vs_dynastar" "${quick_flags[@]}" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_fig5_vs_dynastar.json"

echo "== fig6_latency_breakdown =="
"$build_dir/bench/fig6_latency_breakdown" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_fig6_latency_breakdown.json"

echo "== fig7_txn_latency =="
"$build_dir/bench/fig7_txn_latency" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_fig7_txn_latency.json"

echo "== fig8_state_transfer =="
"$build_dir/bench/fig8_state_transfer" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_fig8_state_transfer.json"

echo "== table1_wait_for_all =="
"$build_dir/bench/table1_wait_for_all" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_table1_wait_for_all.json"

echo "== chaos_explorer =="
"$build_dir/bench/chaos_explorer" "${quick_flags[@]}" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_chaos.json"

# Batching smoke: re-run the crash/failover plans with leader-side
# batching enabled; the atomic-multicast, convergence, and exactly-once
# oracles must stay green with max_batch > 1.
echo "== chaos_explorer (max_batch=8) =="
"$build_dir/bench/chaos_explorer" --quick "${seed_flags[@]}" \
  --max-batch 8 --batch-timeout-us 20 \
  --json "$out_dir/BENCH_chaos_batch.json"

echo "== overload_bench =="
"$build_dir/bench/overload_bench" "${quick_flags[@]}" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_overload.json"

echo "== read_sweep =="
"$build_dir/bench/read_sweep" "${quick_flags[@]}" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_reads.json"

# Fast-read chaos smoke: leader crash + restart during an open lease;
# the linearizability, exactly-once and convergence oracles gate the run.
echo "== read_sweep (--chaos) =="
"$build_dir/bench/read_sweep" --chaos "${quick_flags[@]}" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_reads_chaos.json"

# Write sweep: leased one-sided fast writes vs the ordered stream; the
# >= 2x throughput gate at >= 50% writes and the 10us fast p50 gate
# fail the run on regression.
echo "== write_sweep =="
"$build_dir/bench/write_sweep" "${quick_flags[@]}" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_writes.json"

# Fast-write chaos smoke: leader crash + restart while one-sided writes
# are in flight; linearizability, exactly-once, convergence and the
# no-stranded-invalidation sweep gate the run.
echo "== write_sweep (--chaos) =="
"$build_dir/bench/write_sweep" --chaos "${quick_flags[@]}" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_writes_chaos.json"

echo "== recovery_bench =="
"$build_dir/bench/recovery_bench" "${quick_flags[@]}" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_recovery.json"

# Durable chaos smoke: crash a replica mid-checkpoint (plus a torn-write
# variant) under retrying load; the oracle suite gates the run.
echo "== recovery_bench (--chaos) =="
"$build_dir/bench/recovery_bench" --chaos "${quick_flags[@]}" \
  "${seed_flags[@]}" --json "$out_dir/BENCH_recovery_chaos.json"

# Congestion sweep: leader incast over an oversubscribed ToR uplink;
# the adaptive-vs-fixed admission goodput gate and the full oracle suite
# (including tail latency) gate the run.
echo "== congestion_bench =="
"$build_dir/bench/congestion_bench" "${quick_flags[@]}" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_congestion.json"

echo "== reconfig_bench =="
"$build_dir/bench/reconfig_bench" "${quick_flags[@]}" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_reconfig.json"

# Repartitioning chaos smoke: a live range move with a source-leader
# crash right after PREPARE plus a torn-copy-chunk cell; the no-lost/
# no-duplicated-object and exactly-once-across-split oracles gate it.
# Million-client open-loop scale sweep: Poisson/MMPP arrivals x key skew
# over a pooled-session harness, plus the legacy-vs-wheel kernel race.
# The speedup floor, uniform-cell SLO gate and arrival accounting gate it.
echo "== scale_sweep =="
"$build_dir/bench/scale_sweep" "${quick_flags[@]}" "${seed_flags[@]}" \
  --json "$out_dir/BENCH_scale.json"

echo "== reconfig_bench (--chaos) =="
"$build_dir/bench/reconfig_bench" --chaos "${quick_flags[@]}" \
  "${seed_flags[@]}" --json "$out_dir/BENCH_reconfig_chaos.json"

echo
echo "artifacts:"
ls -l "$out_dir"/BENCH_*.json
