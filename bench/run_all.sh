#!/usr/bin/env bash
# Runs the figure benchmarks that emit machine-readable reports and
# collects BENCH_*.json (+ a Chrome trace) into an output directory.
#
# Usage: bench/run_all.sh [build_dir] [out_dir]
#   build_dir  cmake build tree holding bench/ binaries (default: build)
#   out_dir    where to put the artifacts (default: .)
# Env: QUICK=1 runs fig4 in smoke mode (short windows, fewer cells).
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-.}"
mkdir -p "$out_dir"

if [[ ! -x "$build_dir/bench/fig4_throughput" ]]; then
  echo "error: $build_dir/bench/fig4_throughput not found; build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 1
fi

fig4_flags=()
[[ "${QUICK:-0}" == "1" ]] && fig4_flags+=(--quick)

echo "== fig4_throughput =="
"$build_dir/bench/fig4_throughput" "${fig4_flags[@]}" \
  --json "$out_dir/BENCH_fig4_throughput.json" \
  --trace "$out_dir/BENCH_fig4.trace.json"

echo "== fig6_latency_breakdown =="
"$build_dir/bench/fig6_latency_breakdown" \
  --json "$out_dir/BENCH_fig6_latency_breakdown.json"

echo
echo "artifacts:"
ls -l "$out_dir"/BENCH_*.json
