// Figure 8: latency of state transfer (log scale in the paper).
//
//   * "Protocol": a transfer with no data — two RDMA writes (request +
//     completion), the protocol floor.
//   * 64 KB / 640 KB / 6.4 MB: state sync of serialized data (shipped as
//     stored, e.g. the TPC-C Stock table) vs non-serialized data (pays
//     serialize + deserialize, e.g. the Item table). 640 KB and 6.4 MB
//     are 1% and 10% of a default Stock table.
//   * Full warehouse: 137.69 MB (105.3 MB serialized + 32.39 MB
//     non-serialized); the paper recovers it in ~109.4 ms (36.9 ms
//     serialized + 72.5 ms non-serialized).
//
// Data moves in 32 KB RDMA writes (§V-E2).
//
// Flags:
//   --json <path>   machine-readable report (one row per case)
//   --seed <n>      fabric seed (default 7), echoed into the report so
//                   any run can be reproduced exactly
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/system.hpp"
#include "harness/report.hpp"
#include "rdma/fabric.hpp"

using namespace heron;

namespace {

struct Options {
  std::string json_path;
  std::uint64_t seed = 7;
};

/// Synthetic application: `count` objects of `size` bytes; kTouch writes
/// every object (populating the update log); kNoop writes nothing.
class StateApp : public core::Application {
 public:
  StateApp(std::uint64_t count, std::uint32_t size, bool serialized)
      : count_(count), size_(size), serialized_(serialized) {}

  [[nodiscard]] core::GroupId partition_of(core::Oid) const override {
    return 0;
  }
  [[nodiscard]] std::vector<core::Oid> read_set(const core::Request&,
                                                core::GroupId) const override {
    return {};
  }
  core::Reply execute(const core::Request& r,
                      core::ExecContext& ctx) override {
    if (r.header.kind == 1 /* touch */) {
      std::vector<std::byte> value(size_, std::byte{0x5a});
      for (std::uint64_t i = 0; i < count_; ++i) {
        ctx.write(i + 1, value);
      }
    }
    return core::Reply{};
  }
  void bootstrap(core::GroupId, core::ObjectStore& store) override {
    std::vector<std::byte> init(size_);
    for (std::uint64_t i = 0; i < count_; ++i) {
      store.create(i + 1, init, serialized_);
    }
  }

 private:
  std::uint64_t count_;
  std::uint32_t size_;
  bool serialized_;
};

struct Measured {
  double avg_us;
  double stddev_us;
  sim::LatencyRecorder lat;
};

/// Measures `runs` state transfers of `total_bytes` (0 = protocol only).
Measured run_case(const Options& opt, std::uint64_t total_bytes,
                  bool serialized, int runs = 5) {
  constexpr std::uint32_t kObjSize = 16u << 10;
  const std::uint64_t count = total_bytes / kObjSize;

  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, opt.seed);
  core::HeronConfig cfg;
  // Large transfers outlast the default handler-suspicion timeout; keep
  // backup candidates from starting duplicate transfers.
  cfg.statesync_timeout = sim::sec(2);
  cfg.object_region_bytes =
      static_cast<std::size_t>(count + 2) * (2 * kObjSize + 64) + (1u << 20);
  core::System sys(
      fabric, /*partitions=*/1, /*replicas=*/3,
      [count, serialized, size = kObjSize] {
        return std::make_unique<StateApp>(count, size, serialized);
      },
      cfg);
  sys.start();
  auto& client = sys.add_client();

  sim::LatencyRecorder lat;
  bool done = false;
  sim.spawn([](sim::Simulator& s, core::System& system, core::Client& cl,
               std::uint64_t n, sim::LatencyRecorder& rec, int reps,
               bool& done_flag) -> sim::Task<void> {
    for (int run = 0; run < reps; ++run) {
      // Touch all objects (or none) so the update log covers them.
      co_await cl.submit(amcast::dst_of(0), n > 0 ? 1u : 0u, {});
      co_await s.sleep(sim::ms(1));  // let all replicas finish applying

      auto& lagger = system.replica(0, 2);
      const core::Tmp from = lagger.last_req();
      const sim::Nanos t0 = s.now();
      co_await lagger.force_state_transfer(from);
      rec.record(s.now() - t0);
      co_await s.sleep(sim::ms(1));
    }
    done_flag = true;
  }(sim, sys, client, count, lat, runs, done));
  // Heartbeat loops run forever; advance time until the script finishes.
  while (!done) sim.run_for(sim::ms(20));

  return {lat.mean() / 1000.0, lat.stddev() / 1000.0, lat};
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--seed <n>]\n", argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  harness::ReportWriter report("fig8_state_transfer");
  auto add_row = [&](const char* name, std::uint64_t bytes, bool serialized,
                     const Measured& m) {
    if (opt.json_path.empty()) return;
    harness::RunResult result;
    result.completed = m.lat.count();
    result.latency = m.lat;
    report.row(name, result, [&](telemetry::JsonWriter& w) {
      w.kv("bytes", bytes);
      w.kv("serialized", serialized);
      w.kv("avg_us", m.avg_us);
      w.kv("stddev_us", m.stddev_us);
      w.kv("seed", opt.seed);
    });
  };

  std::printf(
      "Figure 8: state transfer latency (32KB RDMA write chunks)\n"
      "paper: protocol-only = 2 RDMA writes; 64KB serialized ~26us; "
      "latency proportional to size; (de)serialization degrades the "
      "non-serialized path\n\n");
  std::printf("%-22s %14s %12s\n", "case", "avg latency", "stddev");

  const auto protocol = run_case(opt, 0, true);
  std::printf("%-22s %11.1f us %9.1f us\n", "protocol (no data)",
              protocol.avg_us, protocol.stddev_us);
  add_row("protocol", 0, true, protocol);

  const std::uint64_t sizes[] = {64u << 10, 640u << 10, 6400u << 10};
  const char* labels[] = {"64KB", "640KB", "6.4MB"};
  for (int i = 0; i < 3; ++i) {
    const auto ser = run_case(opt, sizes[i], true);
    std::printf("%-17s ser. %11.1f us %9.1f us\n", labels[i], ser.avg_us,
                ser.stddev_us);
    add_row((std::string(labels[i]) + "/serialized").c_str(), sizes[i], true,
            ser);
    const auto raw = run_case(opt, sizes[i], false);
    std::printf("%-17s non. %11.1f us %9.1f us\n", labels[i], raw.avg_us,
                raw.stddev_us);
    add_row((std::string(labels[i]) + "/non-serialized").c_str(), sizes[i],
            false, raw);
  }

  // Full TPC-C warehouse: 105.3 MB serialized + 32.39 MB non-serialized.
  const auto wh_ser =
      run_case(opt, static_cast<std::uint64_t>(105.3 * (1u << 20)), true, 2);
  const auto wh_raw =
      run_case(opt, static_cast<std::uint64_t>(32.39 * (1u << 20)), false, 2);
  add_row("warehouse/serialized",
          static_cast<std::uint64_t>(105.3 * (1u << 20)), true, wh_ser);
  add_row("warehouse/non-serialized",
          static_cast<std::uint64_t>(32.39 * (1u << 20)), false, wh_raw);
  std::printf("%-22s %11.1f ms\n", "warehouse serialized",
              wh_ser.avg_us / 1000.0);
  std::printf("%-22s %11.1f ms\n", "warehouse non-serial.",
              wh_raw.avg_us / 1000.0);
  std::printf("%-22s %11.1f ms   (paper: 109.4 ms = 36.9 + 72.5)\n",
              "warehouse total", (wh_ser.avg_us + wh_raw.avg_us) / 1000.0);

  if (!opt.json_path.empty()) {
    if (report.finish_to_file(opt.json_path)) {
      std::printf("report -> %s\n", opt.json_path.c_str());
    } else {
      std::fprintf(stderr, "report: cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
  }
  return 0;
}
