// Table I: the cost of tentatively waiting for coordination messages from
// ALL replicas (not just a majority) during Phase 4, per partition id —
// 2 and 4 partitions, 3 and 5 replicas per partition.
//
// Paper shape: few transactions are delayed (<= 8%); the delayed fraction
// increases with the partition id while the average delay decreases
// (consequence of the coordination-write order: smallest partition id
// first, then replica id).
#include <cstdio>

#include "harness/runner.hpp"

using namespace heron;

namespace {

void run_config(int partitions, int replicas) {
  tpcc::TpccScale scale{.factor = 0.02, .initial_orders_per_district = 10};
  core::HeronConfig cfg;
  cfg.coord_extra_delay = sim::us(30);  // generous cutoff: measure the wait
  harness::TpccCluster cluster(partitions, replicas, scale, cfg);

  tpcc::WorkloadConfig workload;
  // All-NewOrder spanning every partition, the worst case for
  // coordination (like the paper's multi-partition stress).
  workload.force_partitions = partitions;
  cluster.add_clients(/*per_partition=*/1, workload);

  auto result = cluster.run(sim::ms(15), sim::ms(80));

  std::printf("\n%d partitions, %d replicas per partition\n", partitions,
              replicas);
  std::printf("  max throughput: %.0f tps, average latency: %.1f us\n",
              result.throughput_tps, result.latency.mean() / 1000.0);
  std::printf("  %-12s %20s %15s\n", "partition id", "delayed transactions",
              "average delay");
  for (int p = 0; p < partitions; ++p) {
    // Aggregate the wait-for-all statistics over the partition's replicas.
    std::uint64_t total = 0, delayed = 0;
    sim::Nanos delay_sum = 0;
    for (int r = 0; r < replicas; ++r) {
      const auto& s = cluster.system().replica(p, r).coord_stats();
      total += s.multi_partition;
      delayed += s.delayed;
      delay_sum += s.delay_sum;
    }
    const double frac =
        total ? 100.0 * static_cast<double>(delayed) / static_cast<double>(total)
              : 0.0;
    const double avg_us =
        delayed ? sim::to_us(delay_sum) / static_cast<double>(delayed) : 0.0;
    std::printf("  #%-11d %19.1f%% %12.1f us\n", p + 1, frac, avg_us);
  }
}

}  // namespace

int main() {
  std::printf(
      "Table I: transaction delay when waiting for all (vs majority) "
      "replicas in Phase 4\n"
      "paper shape: delayed%% rises with partition id, average delay "
      "falls; worst case 8%% delayed; delays are a fraction of request "
      "latency\n");
  run_config(2, 3);
  run_config(2, 5);
  run_config(4, 3);
  run_config(4, 5);
  return 0;
}
