// Table I: the cost of tentatively waiting for coordination messages from
// ALL replicas (not just a majority) during Phase 4, per partition id —
// 2 and 4 partitions, 3 and 5 replicas per partition.
//
// Paper shape: few transactions are delayed (<= 8%); the delayed fraction
// increases with the partition id while the average delay decreases
// (consequence of the coordination-write order: smallest partition id
// first, then replica id).
//
// Flags:
//   --json <path>   machine-readable report (one row per configuration,
//                   with the per-partition delay stats inlined)
//   --seed <n>      fabric/workload seed (default 99), echoed into the
//                   report so any run can be reproduced exactly
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/report.hpp"
#include "harness/runner.hpp"

using namespace heron;

namespace {

struct Options {
  std::string json_path;
  std::uint64_t seed = 99;
};

void run_config(int partitions, int replicas, harness::ReportWriter* report,
                const Options& opt) {
  tpcc::TpccScale scale{.factor = 0.02, .initial_orders_per_district = 10};
  core::HeronConfig cfg;
  cfg.coord_extra_delay = sim::us(30);  // generous cutoff: measure the wait
  harness::TpccCluster cluster(partitions, replicas, scale, cfg, {}, opt.seed);

  tpcc::WorkloadConfig workload;
  // All-NewOrder spanning every partition, the worst case for
  // coordination (like the paper's multi-partition stress).
  workload.force_partitions = partitions;
  cluster.add_clients(/*per_partition=*/1, workload);

  auto result = cluster.run(sim::ms(15), sim::ms(80));

  std::printf("\n%d partitions, %d replicas per partition\n", partitions,
              replicas);
  std::printf("  max throughput: %.0f tps, average latency: %.1f us\n",
              result.throughput_tps, result.latency.mean() / 1000.0);
  std::printf("  %-12s %20s %15s\n", "partition id", "delayed transactions",
              "average delay");
  struct PartStat {
    double delayed_pct;
    double avg_delay_us;
  };
  std::vector<PartStat> stats;
  for (int p = 0; p < partitions; ++p) {
    // Aggregate the wait-for-all statistics over the partition's replicas.
    std::uint64_t total = 0, delayed = 0;
    sim::Nanos delay_sum = 0;
    for (int r = 0; r < replicas; ++r) {
      const auto& s = cluster.system().replica(p, r).coord_stats();
      total += s.multi_partition;
      delayed += s.delayed;
      delay_sum += s.delay_sum;
    }
    const double frac =
        total ? 100.0 * static_cast<double>(delayed) / static_cast<double>(total)
              : 0.0;
    const double avg_us =
        delayed ? sim::to_us(delay_sum) / static_cast<double>(delayed) : 0.0;
    std::printf("  #%-11d %19.1f%% %12.1f us\n", p + 1, frac, avg_us);
    stats.push_back({frac, avg_us});
  }

  if (report != nullptr) {
    report->row("p" + std::to_string(partitions) + "r" +
                    std::to_string(replicas),
                result, [&](telemetry::JsonWriter& w) {
                  w.kv("partitions", partitions);
                  w.kv("replicas", replicas);
                  w.kv("seed", opt.seed);
                  w.key("per_partition").begin_array();
                  for (const auto& s : stats) {
                    w.begin_object();
                    w.kv("delayed_pct", s.delayed_pct);
                    w.kv("avg_delay_us", s.avg_delay_us);
                    w.end_object();
                  }
                  w.end_array();
                });
  }
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--seed <n>]\n", argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  harness::ReportWriter report("table1_wait_for_all");
  harness::ReportWriter* rep = opt.json_path.empty() ? nullptr : &report;

  std::printf(
      "Table I: transaction delay when waiting for all (vs majority) "
      "replicas in Phase 4\n"
      "paper shape: delayed%% rises with partition id, average delay "
      "falls; worst case 8%% delayed; delays are a fraction of request "
      "latency\n");
  run_config(2, 3, rep, opt);
  run_config(2, 5, rep, opt);
  run_config(4, 3, rep, opt);
  run_config(4, 5, rep, opt);

  if (rep != nullptr) {
    if (report.finish_to_file(opt.json_path)) {
      std::printf("report -> %s\n", opt.json_path.c_str());
    } else {
      std::fprintf(stderr, "report: cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
  }
  return 0;
}
