// Batch sweep: Heron-null throughput and latency vs Config::max_batch at
// saturation, plus the unloaded single-client latency check. This is the
// harness behind the batching acceptance numbers:
//   - at max_batch >= 8 the saturated heron-null throughput must improve
//     >= 25% over max_batch = 1 (the amortized leader/follower/deliver
//     software costs are the whole effect);
//   - with one client the latency must stay flat (batch_timeout = 0 never
//     holds a lonely request back).
//
// Flags:
//   --json <path>   machine-readable report (BENCH_batch.json in CI)
//   --quick         fewer batch sizes and short windows (CI smoke mode)
//   --seed <n>      fabric/workload seed (default 99), echoed into the
//                   report so any run can be reproduced exactly
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/report.hpp"
#include "harness/runner.hpp"

using namespace heron;

namespace {

struct Options {
  std::string json_path;
  bool quick = false;
  std::uint64_t seed = 99;
};

harness::RunResult run_cell(std::uint32_t max_batch, int clients_per_partition,
                            const Options& opt) {
  tpcc::TpccScale scale{.factor = 0.02, .initial_orders_per_district = 10};
  core::HeronConfig cfg;
  cfg.mode = core::Mode::kNull;  // isolate the ordering path
  amcast::Config acfg;
  acfg.max_batch = max_batch;
  harness::TpccCluster cluster(/*partitions=*/4, /*replicas=*/3, scale, cfg,
                               acfg, opt.seed);
  cluster.add_clients(clients_per_partition, tpcc::WorkloadConfig{});
  return opt.quick ? cluster.run(sim::ms(3), sim::ms(10))
                   : cluster.run(sim::ms(10), sim::ms(40));
}

harness::RunResult run_single_client(std::uint32_t max_batch,
                                     const Options& opt) {
  tpcc::TpccScale scale{.factor = 0.02, .initial_orders_per_district = 10};
  core::HeronConfig cfg;
  cfg.mode = core::Mode::kNull;
  amcast::Config acfg;
  acfg.max_batch = max_batch;
  harness::TpccCluster cluster(/*partitions=*/4, /*replicas=*/3, scale, cfg,
                               acfg, opt.seed);
  cluster.add_client_at(0, tpcc::WorkloadConfig{});
  return opt.quick ? cluster.run(sim::ms(3), sim::ms(10))
                   : cluster.run(sim::ms(10), sim::ms(40));
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--quick] [--seed <n>]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<std::uint32_t> batches = {1, 2, 4, 8, 16};
  if (opt.quick) batches = {1, 8};
  const int clients = 10;  // saturating: same load as fig4's heron-null set

  harness::ReportWriter report("batch_sweep");

  std::printf(
      "Batch sweep: heron-null, 4 partitions x 3 replicas, %d clients per "
      "partition (saturated)\n\n",
      clients);
  std::printf("%-10s %14s %12s %12s %10s\n", "max_batch", "tput(tps)",
              "mean(us)", "p99(us)", "vs b=1");

  double base_tput = 0.0;
  double knee_gain = 0.0;
  std::uint32_t knee = 1;
  for (std::uint32_t b : batches) {
    harness::RunResult r = run_cell(b, clients, opt);
    if (b == 1) base_tput = r.throughput_tps;
    const double gain = base_tput > 0 ? r.throughput_tps / base_tput : 0.0;
    // Knee: the smallest batch size capturing most of the available gain;
    // report the last size that still improved >= 5% over its predecessor.
    if (gain > knee_gain * 1.05) {
      knee = b;
      knee_gain = gain;
    }
    std::printf("%-10u %14.0f %12.2f %12.2f %9.2fx\n", b, r.throughput_tps,
                r.latency.mean() / 1000.0,
                static_cast<double>(r.latency.percentile(99)) / 1000.0, gain);
    if (!opt.json_path.empty()) {
      report.row("saturated/b" + std::to_string(b), r,
                 [&](telemetry::JsonWriter& w) {
                   w.kv("max_batch", static_cast<std::uint64_t>(b));
                   w.kv("clients_per_partition", clients);
                   w.kv("seed", opt.seed);
                 });
    }
  }
  std::printf("\nknee: max_batch=%u (%.2fx over max_batch=1)\n", knee,
              knee_gain);

  // Unloaded path: one closed-loop client must not pay for batching.
  std::printf("\nsingle client (unloaded, batch_timeout=0):\n");
  std::printf("%-10s %12s %12s\n", "max_batch", "mean(us)", "p99(us)");
  for (std::uint32_t b : {1u, 8u}) {
    harness::RunResult r = run_single_client(b, opt);
    std::printf("%-10u %12.2f %12.2f\n", b, r.latency.mean() / 1000.0,
                static_cast<double>(r.latency.percentile(99)) / 1000.0);
    if (!opt.json_path.empty()) {
      report.row("single-client/b" + std::to_string(b), r,
                 [&](telemetry::JsonWriter& w) {
                   w.kv("max_batch", static_cast<std::uint64_t>(b));
                   w.kv("clients_per_partition", 0);
                   w.kv("seed", opt.seed);
                 });
    }
  }

  if (!opt.json_path.empty()) {
    if (report.finish_to_file(opt.json_path)) {
      std::printf("report -> %s\n", opt.json_path.c_str());
    } else {
      std::fprintf(stderr, "report: cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
  }
  return 0;
}
