// Overload benchmark: graceful degradation under admission control.
//
// Sweeps offered load (client count) against the per-replica admission
// window on a 2x3 bank deployment with the robust client lifecycle
// enabled. With the window disabled (0) excess load queues inside the
// protocol and latency balloons; with a bounded window leaders shed the
// excess as BUSY, clients back off, and the latency of the admitted
// requests stays controlled. Every request terminates: ok, overloaded or
// timeout — hung clients would be a bug, and the run fails if any client
// is still in flight at the end.
//
//   overload_bench [--quick] [--seed <s>] [--json <path>]
//                  (default BENCH_overload.json)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "faultlab/bank.hpp"
#include "rdma/fabric.hpp"
#include "telemetry/json.hpp"

using namespace heron;

namespace {

struct Options {
  bool quick = false;
  std::uint64_t seed = 17;
  std::string json_path = "BENCH_overload.json";
};

struct CellResult {
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t busy_replies = 0;
  std::uint64_t shed_replies = 0;   // summed over replicas
  std::uint64_t dedup_hits = 0;     // summed over replicas
  std::uint64_t hung = 0;           // clients still in flight at the end
  sim::Nanos p50 = 0;
  sim::Nanos p99 = 0;
};

constexpr int kPartitions = 2;
constexpr int kReplicas = 3;
constexpr std::uint64_t kAccounts = 8;

CellResult run_cell(int clients, std::uint32_t window, const Options& opt) {
  const int ops = opt.quick ? 20 : 60;

  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, opt.seed);
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  cfg.client_attempt_timeout = sim::ms(2);
  cfg.client_max_retries = 10;
  cfg.client_retry_backoff = sim::us(50);
  cfg.client_deadline = sim::ms(120);
  amcast::Config acfg;
  acfg.admission_window = window;
  core::System sys(
      fabric, kPartitions, kReplicas,
      [] { return std::make_unique<faultlab::BankApp>(kPartitions, kAccounts); },
      cfg, acfg);
  sys.start();

  for (int c = 0; c < clients; ++c) {
    sim.spawn(faultlab::bank_client_loop(
        sys, sys.add_client(),
        opt.seed * 1000 + static_cast<std::uint64_t>(c), ops, kAccounts));
  }
  sim.run_for(sim::ms(500));

  CellResult out;
  sim::LatencyRecorder lat;
  for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
    auto& cl = sys.client(c);
    out.ok += cl.completed();
    out.overloaded += cl.overloaded();
    out.timeouts += cl.timeouts();
    out.retries += cl.retries();
    out.busy_replies += cl.busy_replies();
    if (cl.in_flight()) ++out.hung;
    for (const sim::Nanos v : cl.latencies().samples()) lat.record(v);
  }
  for (core::GroupId g = 0; g < kPartitions; ++g) {
    for (int r = 0; r < kReplicas; ++r) {
      out.shed_replies += sys.replica(g, r).shed_replies();
      out.dedup_hits += sys.replica(g, r).dedup_hits();
    }
  }
  out.p50 = lat.percentile(50);
  out.p99 = lat.percentile(99);
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--seed <s>] [--json <path>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  std::vector<int> client_counts = opt.quick ? std::vector<int>{4, 12}
                                             : std::vector<int>{4, 12, 24, 48};
  const std::vector<std::uint32_t> windows = {0, 8};

  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("bench", "overload_bench");
  w.kv("quick", opt.quick);
  w.kv("seed", opt.seed);
  w.key("cells").begin_array();

  std::printf(
      "Overload: 2x3 bank, robust clients; admission window 0 = unbounded\n\n");
  std::printf("%-8s %-8s %8s %8s %8s %8s %8s %10s %10s\n", "clients", "window",
              "ok", "busy", "timeout", "retries", "shed", "p50_us", "p99_us");

  std::uint64_t total_hung = 0;
  for (const std::uint32_t window : windows) {
    for (const int clients : client_counts) {
      const CellResult r = run_cell(clients, window, opt);
      total_hung += r.hung;

      w.begin_object();
      w.kv("clients", clients);
      w.kv("admission_window", static_cast<std::uint64_t>(window));
      w.kv("ok", r.ok);
      w.kv("overloaded", r.overloaded);
      w.kv("timeouts", r.timeouts);
      w.kv("retries", r.retries);
      w.kv("busy_replies", r.busy_replies);
      w.kv("shed_replies", r.shed_replies);
      w.kv("dedup_hits", r.dedup_hits);
      w.kv("hung_clients", r.hung);
      w.kv("p50_ns", r.p50);
      w.kv("p99_ns", r.p99);
      w.kv("repro", std::string(argv[0]) + " --seed " +
                        std::to_string(opt.seed) +
                        (opt.quick ? " --quick" : ""));
      w.end_object();

      std::printf("%-8d %-8u %8llu %8llu %8llu %8llu %8llu %10.1f %10.1f%s\n",
                  clients, window, static_cast<unsigned long long>(r.ok),
                  static_cast<unsigned long long>(r.overloaded),
                  static_cast<unsigned long long>(r.timeouts),
                  static_cast<unsigned long long>(r.retries),
                  static_cast<unsigned long long>(r.shed_replies),
                  sim::to_us(r.p50), sim::to_us(r.p99),
                  r.hung != 0 ? "  HUNG CLIENTS" : "");
    }
  }

  w.end_array();
  w.kv("total_hung", total_hung);
  w.end_object();

  if (!opt.json_path.empty()) {
    FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 2;
    }
    std::fputs(w.str().c_str(), f);
    std::fclose(f);
    std::printf("report -> %s\n", opt.json_path.c_str());
  }

  // Termination is part of the contract: a client still in flight after
  // the run window means the lifecycle failed to bound a request.
  return total_hung == 0 ? 0 : 1;
}
