// Ablation (the paper's §III-D1 future-work extension): multi-threaded
// execution of non-conflicting single-partition requests.
//
// Workload: a CPU-bound replicated key-value service (5 us of application
// CPU per request) with requests spread over many independent keys —
// the favourable case the paper describes ("requests that do not contain
// conflicting operations ... assigned to different working threads").
// Expected: throughput scales with worker cores until another resource
// (ordering, conflicts) binds; the conflict-heavy column shows the
// mechanism degrading gracefully to sequential execution.
// Flags: --seed <n> sets the fabric/client seed (default 31).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/system.hpp"
#include "rdma/fabric.hpp"
#include "sim/random.hpp"

using namespace heron;

namespace {

struct Req {
  std::uint64_t key;
};

class CpuBoundApp : public core::Application {
 public:
  explicit CpuBoundApp(std::uint64_t keys) : keys_(keys) {}
  core::GroupId partition_of(core::Oid) const override { return 0; }
  std::vector<core::Oid> read_set(const core::Request& r,
                                  core::GroupId) const override {
    Req req;
    std::memcpy(&req, r.payload.data(), sizeof(req));
    return {req.key};
  }
  core::Reply execute(const core::Request& r,
                      core::ExecContext& ctx) override {
    Req req;
    std::memcpy(&req, r.payload.data(), sizeof(req));
    auto v = ctx.value_as<std::uint64_t>(req.key);
    ctx.charge(sim::us(12));  // the CPU-bound part
    ctx.write_as(req.key, v + 1);
    return core::Reply{};
  }
  void bootstrap(core::GroupId, core::ObjectStore& store) override {
    const std::uint64_t zero = 0;
    for (core::Oid k = 0; k < keys_; ++k) {
      store.create(k, std::as_bytes(std::span(&zero, 1)));
    }
  }

 private:
  std::uint64_t keys_;
};

double run_config(int threads, bool conflict_heavy, std::uint64_t seed) {
  constexpr std::uint64_t kKeys = 256;
  sim::Simulator sim;
  rdma::Fabric fabric(sim, {}, seed);
  core::HeronConfig cfg;
  cfg.exec_threads = threads;
  cfg.object_region_bytes = 1u << 20;
  core::System sys(fabric, 1, 3,
                   [k = kKeys] { return std::make_unique<CpuBoundApp>(k); }, cfg);
  sys.start();

  constexpr int kClients = 24;
  for (int i = 0; i < kClients; ++i) {
    auto& client = sys.add_client();
    sim.spawn([seed](core::Client& cl, int idx, bool hot) -> sim::Task<void> {
      sim::Rng rng(seed * 900 + static_cast<std::uint64_t>(idx));
      while (true) {
        // Conflict-heavy: everyone fights over 2 keys; otherwise spread.
        Req req{hot ? 0 : rng.bounded(kKeys)};
        co_await cl.submit(amcast::dst_of(0), 1,
                           std::as_bytes(std::span(&req, 1)));
      }
    }(client, i, conflict_heavy));
  }

  sim.run_for(sim::ms(20));
  sys.reset_stats();
  const auto before = sys.total_completed();
  const sim::Nanos window = sim::ms(80);
  sim.run_for(window);
  return static_cast<double>(sys.total_completed() - before) /
         sim::to_sec(window);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 31;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--seed <n>]\n", argv[0]);
      return 2;
    }
  }
  std::printf(
      "Ablation: multi-threaded execution (SIII-D1 extension), CPU-bound "
      "single-partition requests, 1 partition x 3 replicas, 24 clients\n\n");
  std::printf("%8s %18s %20s\n", "threads", "disjoint keys(tps)",
              "conflict-heavy(tps)");
  double base = 0;
  for (int threads : {1, 2, 4, 8}) {
    const double spread = run_config(threads, false, seed);
    const double hot = run_config(threads, true, seed);
    if (threads == 1) base = spread;
    std::printf("%8d %18.0f %20.0f   (%.2fx)\n", threads, spread, hot,
                spread / base);
  }
  std::printf(
      "\nexpected shape: near-linear gains on disjoint keys until the "
      "ordering layer binds; no gain (no loss) under heavy conflicts\n");
  return 0;
}
