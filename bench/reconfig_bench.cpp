// Elastic repartitioning under load: throughput dip and recovery around
// a live range move (heron::reconfig).
//
// Closed-loop RangeKv clients hammer a 2x3 deployment for a fixed window
// of virtual time; halfway through, the controller moves half of g0's
// range to g1 (PREPARE -> background copy -> FLIP -> seal). Completions
// are sampled into fixed windows, so the report shows the baseline
// throughput, the worst window during the move, and the recovered level
// after the seal — the "bounded dip" claim, plus the migration milestone
// durations and copy-machine counters (chunks, throttle deferrals,
// pulls). Every cell runs the full oracle stack (amcast properties,
// exactly-once — including across the split —, store convergence, object
// placement, sum conservation); any violation fails the run.
//
// --chaos replaces the sweep with two adversarial cells: a source-rank
// crash right after PREPARE (recovery through pulls against flipped
// survivors), and torn copy chunks (CRC-detected, pull-repaired).
//
//   reconfig_bench [--quick] [--chaos] [--seed <s>] [--json <path>]
//                  (default BENCH_reconfig.json; --chaos default
//                   BENCH_reconfig_chaos.json)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "faultlab/injector.hpp"
#include "faultlab/plan.hpp"
#include "faultlab/rangekv.hpp"
#include "rdma/fabric.hpp"
#include "telemetry/json.hpp"

using namespace heron;

namespace {

constexpr int kPartitions = 2;
constexpr int kReplicas = 3;
constexpr std::uint64_t kKeys = 64;

struct Options {
  bool quick = false;
  bool chaos = false;
  std::uint64_t seed = 99;
  std::string json_path;
};

struct CellResult {
  std::uint64_t ops_done = 0;
  std::uint64_t executed = 0;
  std::uint64_t wrong_epoch_replies = 0;
  std::uint64_t wrong_epoch_retries = 0;
  std::uint64_t chunks_sent = 0;
  std::uint64_t chunks_corrupt = 0;
  std::uint64_t copy_deferred = 0;
  std::uint64_t pulls = 0;
  std::uint64_t migrated_out = 0;
  std::uint64_t migrated_in = 0;
  std::uint64_t quiesce_deferred = 0;
  std::uint64_t hung = 0;
  std::uint64_t final_epoch = 0;
  sim::Nanos prepare = 0;
  sim::Nanos flip = 0;
  sim::Nanos sealed = 0;
  bool migrated = false;   // cell scheduled a move
  bool seal_ok = true;     // move sealed (or no move scheduled)
  double baseline_ops_per_win = 0.0;  // mean window before PREPARE
  double dip_ops_per_win = 0.0;       // worst window in [PREPARE, seal]
  double recovered_ops_per_win = 0.0; // mean window after the seal
  std::vector<std::uint64_t> windows;
  std::size_t violations = 0;
};

struct LoopCtl {
  bool stop = false;
};

sim::Task<void> kv_loop(core::System& sys, core::Client& client,
                        std::uint64_t seed, LoopCtl& ctl) {
  sim::Rng rng(seed);
  const auto partitions = static_cast<std::uint64_t>(sys.partitions());
  while (!ctl.stop) {
    const core::Oid key = rng.bounded(kKeys);
    faultlab::KvAddReq req{key, 1};
    const auto fallback = static_cast<core::GroupId>(key % partitions);
    co_await client.submit_routed(key, fallback, faultlab::kKvAdd,
                                  std::as_bytes(std::span(&req, 1)));
  }
}

/// Samples the sum of client completions every `window` of virtual time.
sim::Task<void> throughput_monitor(core::System& sys, sim::Nanos window,
                                   std::vector<std::uint64_t>& out,
                                   LoopCtl& ctl) {
  std::uint64_t last = 0;
  while (!ctl.stop) {
    co_await sys.simulator().sleep(window);
    std::uint64_t total = 0;
    for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
      total += sys.client(c).completed();
    }
    out.push_back(total - last);
    last = total;
  }
}

CellResult run_cell(const Options& opt, bool migrate, double corrupt_rate,
                    const std::string& plan_text) {
  const int clients = opt.quick ? 4 : 6;
  const sim::Nanos run = opt.quick ? sim::ms(8) : sim::ms(20);
  const sim::Nanos window = sim::us(250);
  const sim::Nanos move_at = run * 2 / 5;

  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, opt.seed);
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  cfg.reconfig_keys = kKeys;
  cfg.reconfig.chunk_corrupt_rate = corrupt_rate;
  cfg.client_attempt_timeout = sim::us(500);
  cfg.client_max_retries = 16;
  cfg.client_retry_backoff = sim::us(20);
  cfg.client_retry_backoff_max = sim::us(500);
  core::System sys(
      fabric, kPartitions, kReplicas,
      [] { return std::make_unique<faultlab::RangeKv>(kKeys); }, cfg);
  faultlab::HistoryRecorder history;
  history.attach(sys);
  faultlab::ExecTracker tracker;
  tracker.attach(sys);
  sys.start();

  LoopCtl ctl;
  CellResult out;
  for (int c = 0; c < clients; ++c) {
    sim.spawn(kv_loop(sys, sys.add_client(),
                      opt.seed * 1000 + static_cast<std::uint64_t>(c), ctl));
  }
  sim.spawn(throughput_monitor(sys, window, out.windows, ctl));
  if (migrate) {
    sys.schedule_migration(
        reconfig::Plan{move_at, /*lo=*/0, /*hi=*/16, /*from=*/0, /*to=*/1});
  }
  faultlab::Injector injector(sys);
  if (!plan_text.empty()) {
    injector.run(faultlab::FaultPlan::parse("reconfig_bench", plan_text));
  }

  sim.run_for(run);
  ctl.stop = true;
  // Drain in-flight requests and let the copy/pull tails finish.
  auto settled = [&sys, migrate] {
    if (migrate && (sys.migration_times().empty() ||
                    sys.migration_times().front().sealed == 0)) {
      return false;
    }
    for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
      if (sys.client(c).in_flight()) return false;
    }
    return true;
  };
  for (int i = 0; i < 200 && !settled(); ++i) sim.run_for(sim::ms(1));
  sim.run_for(sim::ms(5));

  out.migrated = migrate;
  for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
    auto& cl = sys.client(c);
    out.ops_done += cl.completed();
    out.wrong_epoch_retries += cl.wrong_epoch_retries();
    if (cl.in_flight()) ++out.hung;
  }
  for (core::GroupId g = 0; g < kPartitions; ++g) {
    for (int r = 0; r < kReplicas; ++r) {
      auto& rep = sys.replica(g, r);
      out.wrong_epoch_replies += rep.wrong_epoch_replies();
      out.chunks_sent += rep.copy_chunks_sent();
      out.chunks_corrupt += rep.copy_chunks_corrupt();
      out.copy_deferred += rep.copy_deferred();
      out.pulls += rep.copy_pulls();
      out.migrated_out += rep.migrated_out();
      out.migrated_in += rep.migrated_in();
      out.quiesce_deferred += rep.quiesce_deferred();
    }
  }
  out.executed = tracker.distinct_executed();
  out.final_epoch = sys.cluster_layout().epoch;
  if (migrate) {
    out.seal_ok = false;
    if (!sys.migration_times().empty()) {
      const auto& mt = sys.migration_times().front();
      out.prepare = mt.prepare;
      out.flip = mt.flip;
      out.sealed = mt.sealed;
      out.seal_ok = mt.sealed != 0;
    }
  }

  // Windowed dip: mean before PREPARE, worst during [PREPARE, seal],
  // mean after the seal (only full windows inside the measured run).
  const auto win_count = static_cast<std::uint64_t>(run / window);
  double before_sum = 0.0, after_sum = 0.0;
  std::uint64_t before_n = 0, after_n = 0;
  std::uint64_t dip = ~0ull;
  for (std::size_t i = 0; i < out.windows.size() && i < win_count; ++i) {
    const sim::Nanos end = static_cast<sim::Nanos>(i + 1) * window;
    if (!migrate || out.prepare == 0 || end <= out.prepare) {
      before_sum += static_cast<double>(out.windows[i]);
      ++before_n;
    } else if (out.sealed != 0 && end > out.sealed + window) {
      after_sum += static_cast<double>(out.windows[i]);
      ++after_n;
    } else {
      dip = std::min(dip, out.windows[i]);
    }
  }
  if (before_n > 0) out.baseline_ops_per_win = before_sum / before_n;
  if (after_n > 0) out.recovered_ops_per_win = after_sum / after_n;
  if (dip != ~0ull) out.dip_ops_per_win = static_cast<double>(dip);

  auto v = faultlab::check_amcast_properties(history, sys,
                                             injector.ever_crashed());
  faultlab::check_exactly_once(history, v);
  faultlab::check_store_convergence(sys, v);
  tracker.check(v);
  faultlab::check_kv_placement(sys, /*rank=*/0, kKeys, sys.cluster_layout(),
                               v);
  faultlab::check_kv_sum(sys, /*rank=*/0, kKeys, /*delta=*/1, out.executed,
                         v);
  out.violations = v.size();
  for (const auto& viol : v) {
    std::fprintf(stderr, "VIOLATION [%s] %s\n", viol.oracle.c_str(),
                 viol.detail.c_str());
  }
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--chaos") {
      opt.chaos = true;
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(
          stderr, "usage: %s [--quick] [--chaos] [--seed <s>] [--json <path>]\n",
          argv[0]);
      std::exit(2);
    }
  }
  if (opt.json_path.empty()) {
    opt.json_path =
        opt.chaos ? "BENCH_reconfig_chaos.json" : "BENCH_reconfig.json";
  }
  return opt;
}

void emit_cell(telemetry::JsonWriter& w, const char* name,
               const CellResult& r, const Options& opt, char* argv0,
               const std::string& plan_text) {
  w.begin_object();
  w.kv("cell", name);
  w.kv("ops_done", r.ops_done);
  w.kv("executed_commands", r.executed);
  w.kv("final_epoch", r.final_epoch);
  w.kv("baseline_ops_per_win", r.baseline_ops_per_win);
  w.kv("dip_ops_per_win", r.dip_ops_per_win);
  w.kv("recovered_ops_per_win", r.recovered_ops_per_win);
  if (r.migrated) {
    w.kv("prepare_ns", r.prepare);
    w.kv("flip_ns", r.flip);
    w.kv("sealed_ns", r.sealed);
    w.kv("sealed", r.seal_ok);
  }
  w.kv("wrong_epoch_replies", r.wrong_epoch_replies);
  w.kv("wrong_epoch_retries", r.wrong_epoch_retries);
  w.kv("copy_chunks_sent", r.chunks_sent);
  w.kv("copy_chunks_corrupt", r.chunks_corrupt);
  w.kv("copy_deferred", r.copy_deferred);
  w.kv("copy_pulls", r.pulls);
  w.kv("migrated_out", r.migrated_out);
  w.kv("migrated_in", r.migrated_in);
  w.kv("quiesce_deferred", r.quiesce_deferred);
  w.kv("hung_clients", r.hung);
  w.kv("violations", static_cast<std::uint64_t>(r.violations));
  if (!plan_text.empty()) w.kv("plan", plan_text);
  w.key("windows").begin_array();
  for (const auto win : r.windows) w.value(win);
  w.end_array();
  w.kv("repro", std::string(argv0) + " --seed " + std::to_string(opt.seed) +
                    (opt.quick ? " --quick" : "") +
                    (opt.chaos ? " --chaos" : ""));
  w.end_object();
}

int gate(const CellResult& r, const char* name) {
  int rc = 0;
  if (r.violations != 0) {
    std::fprintf(stderr, "FAIL(%s): %zu oracle violations\n", name,
                 r.violations);
    rc = 1;
  }
  if (r.hung != 0) {
    std::fprintf(stderr, "FAIL(%s): %llu hung clients\n", name,
                 static_cast<unsigned long long>(r.hung));
    rc = 1;
  }
  if (!r.seal_ok) {
    std::fprintf(stderr, "FAIL(%s): migration never sealed\n", name);
    rc = 1;
  }
  return rc;
}

void print_cell(const char* name, const CellResult& r) {
  std::printf(
      "%-14s ops=%-7llu epoch=%llu base/win=%-6.1f dip/win=%-6.1f "
      "rec/win=%-6.1f chunks=%llu defer=%llu pulls=%llu viol=%zu\n",
      name, static_cast<unsigned long long>(r.ops_done),
      static_cast<unsigned long long>(r.final_epoch), r.baseline_ops_per_win,
      r.dip_ops_per_win, r.recovered_ops_per_win,
      static_cast<unsigned long long>(r.chunks_sent),
      static_cast<unsigned long long>(r.copy_deferred),
      static_cast<unsigned long long>(r.pulls), r.violations);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("bench", "reconfig_bench");
  w.kv("quick", opt.quick);
  w.kv("chaos", opt.chaos);
  w.kv("seed", opt.seed);
  w.key("cells").begin_array();

  int exit_code = 0;
  if (opt.chaos) {
    std::printf(
        "Reconfig chaos: 2x3 RangeKv, split under load + faults\n\n");
    // Source rank 0 dies right after PREPARE; its pair destination must
    // recover the copy stream by pulling from flipped survivors.
    const sim::Nanos move_at =
        (opt.quick ? sim::ms(8) : sim::ms(20)) * 2 / 5;
    const std::string crash_plan =
        "crash g0.r0 @ " + std::to_string((move_at + sim::us(50)) / 1000) +
        "us; restart g0.r0 @ " + std::to_string((move_at + sim::ms(5)) / 1000) +
        "us";
    const CellResult a = run_cell(opt, true, 0.0, crash_plan);
    print_cell("leader-crash", a);
    emit_cell(w, "leader_crash_mid_migration", a, opt, argv[0], crash_plan);
    exit_code |= gate(a, "leader_crash_mid_migration");

    // Torn copy chunks: CRC must catch every corruption and the dest
    // pull path must still seal the move.
    const CellResult b = run_cell(opt, true, 0.5, "");
    print_cell("torn-chunks", b);
    emit_cell(w, "torn_copy_chunks", b, opt, argv[0], "");
    exit_code |= gate(b, "torn_copy_chunks");
    if (b.chunks_corrupt == 0) {
      std::fprintf(stderr, "FAIL(torn_copy_chunks): nothing was corrupted\n");
      exit_code = 1;
    }
  } else {
    std::printf("Reconfig bench: 2x3 RangeKv, move [0,16) g0 -> g1 mid-run\n\n");
    const CellResult base = run_cell(opt, false, 0.0, "");
    print_cell("baseline", base);
    emit_cell(w, "baseline", base, opt, argv[0], "");
    exit_code |= gate(base, "baseline");

    const CellResult split = run_cell(opt, true, 0.0, "");
    print_cell("split", split);
    emit_cell(w, "split_under_load", split, opt, argv[0], "");
    exit_code |= gate(split, "split_under_load");
    if (split.seal_ok) {
      std::printf(
          "\nmilestones: prepare=%.1fus flip=+%.1fus sealed=+%.1fus\n",
          sim::to_us(split.prepare), sim::to_us(split.flip - split.prepare),
          sim::to_us(split.sealed - split.flip));
      // Bounded-dip gate: the move may slow the system but must not
      // stall it, and throughput must come back after the seal.
      if (split.baseline_ops_per_win > 0 &&
          split.recovered_ops_per_win < 0.5 * split.baseline_ops_per_win) {
        std::fprintf(stderr,
                     "FAIL: throughput did not recover after the seal "
                     "(%.1f vs baseline %.1f per window)\n",
                     split.recovered_ops_per_win, split.baseline_ops_per_win);
        exit_code = 1;
      }
      if (split.dip_ops_per_win <= 0.0) {
        std::fprintf(stderr, "FAIL: a migration window stalled completely\n");
        exit_code = 1;
      }
    }
  }

  w.end_array();
  w.end_object();

  if (!opt.json_path.empty()) {
    FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 2;
    }
    std::fputs(w.str().c_str(), f);
    std::fclose(f);
    std::printf("report -> %s\n", opt.json_path.c_str());
  }
  return exit_code;
}
