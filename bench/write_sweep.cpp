// Write-path sweep: Hermes-style leased one-sided fast writes vs the
// ordered stream.
//
// Closed-loop mixed clients on a 2x3 bank deployment issue blind
// single-object writes (kSet) through Client::write, swept over
// write ratio x {fast_writes off, fast_writes on}. Leases are on in both
// arms so the contrast isolates the write path: with the flag off every
// write falls back to the ordered stream (reason kFastWriteDisabled);
// with it on a warm client commits with one-sided
// INVALIDATE -> install -> VERIFY -> VALIDATE rounds and only falls back
// on conflicts, cold caches or lease trouble. The run fails (non-zero
// exit) if a write-heavy fast cell (>= 50% writes) is not at least 2x
// the matching ordered cell's throughput, if the fast-write p50 exceeds
// 10us, or if any client hangs.
//
// --chaos runs a single fast cell with a leader crash + restart mid-run
// and checks the full oracle suite (amcast properties, exactly-once,
// store convergence, mixed read/write linearizability, no stranded odd
// seqlock); violations fail the run.
//
//   write_sweep [--quick] [--chaos] [--seed <s>] [--json <path>]
//               (default BENCH_writes.json; --chaos default
//                BENCH_writes_chaos.json)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "faultlab/bank.hpp"
#include "faultlab/injector.hpp"
#include "faultlab/linear.hpp"
#include "faultlab/plan.hpp"
#include "rdma/fabric.hpp"
#include "telemetry/json.hpp"

using namespace heron;

namespace {

struct Options {
  bool quick = false;
  bool chaos = false;
  std::uint64_t seed = 211;
  std::string json_path;
};

struct CellResult {
  std::uint64_t ops_done = 0;  // completed submits + fast-read hits
  std::uint64_t fast_hits = 0;
  std::uint64_t fw_commits = 0;
  std::uint64_t fw_conflicts = 0;
  std::uint64_t fw_fallbacks = 0;
  std::uint64_t fw_lease_rejects = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t hung = 0;
  std::uint64_t odd_seqlocks = 0;
  sim::Nanos elapsed = 0;  // virtual time until the last loop finished
  sim::Nanos write_fast_p50 = 0;
  sim::Nanos write_ordered_p50 = 0;
  std::size_t violations = 0;
  double ops_per_sec = 0.0;
};

constexpr int kPartitions = 2;
constexpr int kReplicas = 3;
constexpr std::uint64_t kAccounts = 12;

struct LoopState {
  int remaining = 0;
  sim::Nanos finish = 0;
  sim::LatencyRecorder fast_writes;
  sim::LatencyRecorder ordered_writes;
};

/// Closed-loop mixed client: blind single-object writes at `write_ratio`
/// into the client's own key slice (single-writer objects — the regime
/// the leased write path targets; contended keys CAS-abort to the
/// ordered stream, which the --chaos arm covers), fast reads across the
/// whole key space. Every write goes through Client::write, so the two
/// arms run the same op stream and differ only in which path commits it.
sim::Task<void> mixed_loop(core::System& sys, core::Client& client,
                           faultlab::LinearChecker* lin, LoopState& state,
                           std::uint64_t seed, int ops, double write_ratio,
                           std::uint64_t slice_start, std::uint64_t slice_size) {
  sim::Rng rng(seed);
  auto& sim = sys.simulator();
  const auto partitions = static_cast<std::uint64_t>(sys.partitions());
  const auto total = partitions * kAccounts;
  // Warm the slice's address cache: a leased client holds the slot
  // addresses of the objects it writes (one seeding read each). Both
  // arms pay the same warmup, so the contrast stays apples-to-apples.
  for (std::uint64_t i = 0; i < slice_size; ++i) {
    const core::Oid oid = slice_start + i;
    (void)co_await client.read(static_cast<amcast::GroupId>(oid % partitions),
                               oid);
  }
  for (int k = 0; k < ops; ++k) {
    if (rng.chance(write_ratio)) {
      const core::Oid oid = slice_start + rng.bounded(slice_size);
      const auto home = static_cast<amcast::GroupId>(oid % partitions);
      const auto bal = static_cast<std::int64_t>(rng.bounded(100000));
      const faultlab::Account value{bal};
      const faultlab::DepositReq ordered{oid, bal};
      const sim::Nanos t0 = sim.now();
      const auto res = co_await client.write(
          home, oid, std::as_bytes(std::span(&value, 1)), faultlab::kSet,
          std::as_bytes(std::span(&ordered, 1)));
      (res.fast ? state.fast_writes : state.ordered_writes).record(res.latency);
      if (lin != nullptr) {
        if (res.fast) {
          lin->note_fast_write(oid, res.tmp, res.base_tmp, t0, sim.now());
        } else {
          lin->note_write(oid, client.id(), res.session_seq, t0, sim.now(),
                          res.status);
        }
      }
    } else {
      const core::Oid oid = rng.bounded(total);
      const auto home = static_cast<amcast::GroupId>(oid % partitions);
      const sim::Nanos t0 = sim.now();
      const auto res = co_await client.read(home, oid);
      if (lin != nullptr && res.submit_status == core::SubmitStatus::kOk &&
          res.status == 0) {
        lin->note_read(oid, res.tmp, t0, sim.now(), res.fast);
      }
    }
  }
  if (--state.remaining == 0) state.finish = sim.now();
}

CellResult run_cell(double write_ratio, bool fast_writes, const Options& opt,
                    const std::string& plan_text = "") {
  const int clients = opt.quick ? 3 : 6;
  const int ops = opt.quick ? 30 : 80;

  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, opt.seed);
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  cfg.lease_duration = sim::ms(1);
  cfg.fast_writes = fast_writes;
  // Retries ride out the fault window in --chaos; in fault-free cells the
  // timeout never fires.
  cfg.client_attempt_timeout = sim::us(500);
  cfg.client_max_retries = 12;
  cfg.client_retry_backoff = sim::us(20);
  cfg.client_retry_backoff_max = sim::us(500);
  core::System sys(
      fabric, kPartitions, kReplicas,
      [] { return std::make_unique<faultlab::BankApp>(kPartitions, kAccounts); },
      cfg);
  faultlab::HistoryRecorder history;
  faultlab::LinearChecker lin;
  const bool chaos = !plan_text.empty();
  if (chaos) history.attach(sys);
  sys.start();

  LoopState state;
  state.remaining = clients;
  // Sweep cells give each client a disjoint write slice (single-writer
  // objects); the chaos cell deliberately overlaps every client on the
  // full key space so CAS conflicts and fallback wipes get exercised
  // under the fault plan too.
  const auto total = static_cast<std::uint64_t>(kPartitions) * kAccounts;
  const std::uint64_t slice =
      chaos ? total : total / static_cast<std::uint64_t>(clients);
  for (int c = 0; c < clients; ++c) {
    const std::uint64_t start = chaos ? 0 : slice * static_cast<std::uint64_t>(c);
    sim.spawn(mixed_loop(sys, sys.add_client(), chaos ? &lin : nullptr, state,
                         opt.seed * 1000 + static_cast<std::uint64_t>(c), ops,
                         write_ratio, start, slice));
  }
  faultlab::Injector injector(sys);
  if (chaos) {
    injector.run(faultlab::FaultPlan::parse("write_sweep", plan_text));
  }
  sim.run_for(sim::ms(500));

  CellResult out;
  for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
    auto& cl = sys.client(c);
    out.ops_done += cl.completed() + cl.fastread_hits();
    out.fast_hits += cl.fastread_hits();
    out.fw_commits += cl.fastwrite_commits();
    out.fw_conflicts += cl.fastwrite_conflicts();
    out.fw_fallbacks += cl.fastwrite_fallbacks();
    out.fw_lease_rejects += cl.fastwrite_lease_rejects();
    out.timeouts += cl.timeouts();
    if (cl.in_flight()) ++out.hung;
  }
  // No cell may end with a stranded invalidation: every live replica's
  // slots must carry even seqlocks once the workload drains.
  for (core::GroupId g = 0; g < kPartitions; ++g) {
    for (int r = 0; r < kReplicas; ++r) {
      if (!sys.replica(g, r).node().alive()) continue;
      sys.replica(g, r).store().for_each_oid([&](core::Oid oid) {
        if (sys.replica(g, r).store().seqlock(oid) & 1) ++out.odd_seqlocks;
      });
    }
  }
  out.elapsed = state.remaining == 0 ? state.finish : sim.now();
  out.write_fast_p50 = state.fast_writes.percentile(50);
  out.write_ordered_p50 = state.ordered_writes.percentile(50);
  if (out.elapsed > 0) {
    out.ops_per_sec = static_cast<double>(out.ops_done) * 1e9 /
                      static_cast<double>(out.elapsed);
  }
  if (chaos) {
    auto v = faultlab::check_amcast_properties(history, sys,
                                               injector.ever_crashed());
    faultlab::check_exactly_once(history, v);
    faultlab::check_store_convergence(sys, v);
    for (auto& lv : lin.check(history)) v.push_back(std::move(lv));
    out.violations = v.size();
    for (const auto& viol : v) {
      std::fprintf(stderr, "VIOLATION [%s] %s\n", viol.oracle.c_str(),
                   viol.detail.c_str());
    }
  }
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--chaos") {
      opt.chaos = true;
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--chaos] [--seed <s>] [--json <path>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (opt.json_path.empty()) {
    opt.json_path = opt.chaos ? "BENCH_writes_chaos.json" : "BENCH_writes.json";
  }
  return opt;
}

void emit_cell(telemetry::JsonWriter& w, double write_ratio, bool fast,
               const CellResult& r, const Options& opt, char* argv0,
               const std::string& plan_text) {
  w.begin_object();
  w.kv("write_ratio", write_ratio);
  w.kv("fast_writes", fast);
  w.kv("ops_done", r.ops_done);
  w.kv("ops_per_sec", r.ops_per_sec);
  w.kv("elapsed_ns", r.elapsed);
  w.kv("fast_read_hits", r.fast_hits);
  w.kv("fw_commits", r.fw_commits);
  w.kv("fw_conflicts", r.fw_conflicts);
  w.kv("fw_fallbacks", r.fw_fallbacks);
  w.kv("fw_lease_rejects", r.fw_lease_rejects);
  w.kv("timeouts", r.timeouts);
  w.kv("hung_clients", r.hung);
  w.kv("odd_seqlocks", r.odd_seqlocks);
  w.kv("write_fast_p50_ns", r.write_fast_p50);
  w.kv("write_ordered_p50_ns", r.write_ordered_p50);
  if (!plan_text.empty()) {
    w.kv("plan", plan_text);
    w.kv("violations", static_cast<std::uint64_t>(r.violations));
  }
  w.kv("repro", std::string(argv0) + " --seed " + std::to_string(opt.seed) +
                    (opt.quick ? " --quick" : "") +
                    (opt.chaos ? " --chaos" : ""));
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("bench", "write_sweep");
  w.kv("quick", opt.quick);
  w.kv("chaos", opt.chaos);
  w.kv("seed", opt.seed);
  w.key("cells").begin_array();

  int exit_code = 0;
  double min_speedup = 0.0;

  if (opt.chaos) {
    // One fast cell with a partition-0 leader crash mid-run while fast
    // writes are in flight, then a restart; the oracle suite gates the
    // exit code.
    const std::string plan = "crash g0.r0 @ 500us; restart g0.r0 @ 5ms";
    std::printf("Write chaos smoke: 2x3 bank, 60%% writes, fast on, %s\n\n",
                plan.c_str());
    const CellResult r = run_cell(0.6, true, opt, plan);
    emit_cell(w, 0.6, true, r, opt, argv[0], plan);
    std::printf(
        "ops=%llu fw_commits=%llu fallback=%llu timeouts=%llu odd_locks=%llu "
        "violations=%zu%s\n",
        static_cast<unsigned long long>(r.ops_done),
        static_cast<unsigned long long>(r.fw_commits),
        static_cast<unsigned long long>(r.fw_fallbacks),
        static_cast<unsigned long long>(r.timeouts),
        static_cast<unsigned long long>(r.odd_seqlocks), r.violations,
        r.hung != 0 ? "  HUNG CLIENTS" : "");
    if (r.violations != 0 || r.hung != 0 || r.odd_seqlocks != 0) exit_code = 1;
  } else {
    std::printf("Write sweep: 2x3 bank, mixed closed-loop clients\n\n");
    std::printf("%-8s %-6s %10s %12s %10s %8s %10s %12s\n", "writes", "fast",
                "ops", "ops/s", "commits", "fallback", "fast_p50",
                "ordered_p50");

    const std::vector<double> ratios = {0.5, 0.9};
    std::uint64_t total_hung = 0;
    std::uint64_t total_odd = 0;
    sim::Nanos worst_fast_p50 = 0;
    min_speedup = 1e9;
    for (const double ratio : ratios) {
      double ordered_tput = 0.0;
      for (const bool fast : {false, true}) {
        const CellResult r = run_cell(ratio, fast, opt);
        total_hung += r.hung;
        total_odd += r.odd_seqlocks;
        if (fast) {
          if (ordered_tput > 0 && r.ops_per_sec / ordered_tput < min_speedup) {
            min_speedup = r.ops_per_sec / ordered_tput;
          }
          if (r.fw_commits > 0 && r.write_fast_p50 > worst_fast_p50) {
            worst_fast_p50 = r.write_fast_p50;
          }
        } else {
          ordered_tput = r.ops_per_sec;
        }
        emit_cell(w, ratio, fast, r, opt, argv[0], "");
        std::printf(
            "%-8.2f %-6s %10llu %12.0f %10llu %8llu %9.1fus %11.1fus%s\n",
            ratio, fast ? "on" : "off",
            static_cast<unsigned long long>(r.ops_done), r.ops_per_sec,
            static_cast<unsigned long long>(r.fw_commits),
            static_cast<unsigned long long>(r.fw_fallbacks),
            sim::to_us(r.write_fast_p50), sim::to_us(r.write_ordered_p50),
            r.hung != 0 ? "  HUNG CLIENTS" : "");
      }
    }

    std::printf("\nworst fast/ordered speedup across cells: %.2fx\n",
                min_speedup);
    std::printf("worst fast-write p50: %.1fus\n", sim::to_us(worst_fast_p50));
    // Both swept cells are >= 50% writes, so the 2x gate applies to every
    // fast/ordered pair; --quick runs too few ops per client to amortise
    // the cold-cache seeding fallbacks.
    if (!opt.quick && min_speedup < 2.0) {
      std::fprintf(stderr, "FAIL: expected >= 2x fast/ordered (got %.2fx)\n",
                   min_speedup);
      exit_code = 1;
    }
    if (worst_fast_p50 > sim::us(10)) {
      std::fprintf(stderr, "FAIL: fast-write p50 %.1fus exceeds 10us\n",
                   sim::to_us(worst_fast_p50));
      exit_code = 1;
    }
    if (total_hung != 0 || total_odd != 0) {
      std::fprintf(stderr, "FAIL: hung=%llu odd_seqlocks=%llu\n",
                   static_cast<unsigned long long>(total_hung),
                   static_cast<unsigned long long>(total_odd));
      exit_code = 1;
    }
  }

  w.end_array();
  if (!opt.chaos) w.kv("min_speedup", min_speedup);
  w.end_object();

  if (!opt.json_path.empty()) {
    FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 2;
    }
    std::fputs(w.str().c_str(), f);
    std::fclose(f);
    std::printf("report -> %s\n", opt.json_path.c_str());
  }
  return exit_code;
}
