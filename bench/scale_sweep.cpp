// Million-client open-loop scale sweep + kernel fast-path microbench.
//
// Part 1 (kernel): an apples-to-apples events/sec race between the old
// event-loop engine (std::priority_queue of {when, seq, std::function} —
// re-created here verbatim in ~40 lines, const_cast pop and all) and the
// current sim kernel (bucketed timer wheel + SBO EventFn). Both engines
// execute the exact same self-rescheduling event chains with the same
// capture sizes and delay mix (mostly near-horizon delays plus a far tail
// that exercises the wheel's far buckets). The speedup ratio is gated:
// >= 3x in a full run, >= 2x in --quick (CI boxes are noisy).
//
// Part 2 (scale): an open-loop sweep over a 4x3 bank deployment. Unlike
// the closed-loop figure benches (N clients in think/submit loops, offered
// load capped by N), arrivals here come from an external arrival process —
// every arrival is a distinct logical client that wants exactly one
// command — so offered load is set by the process, not by how fast the
// system answers. 10^6 logical clients per headline cell are multiplexed
// over a fixed pool of real sessions: an arrival grabs an idle session or
// waits FIFO; a logical client whose queue wait exceeds its patience
// abandons (counted, never submitted). The sweep crosses
//   arrival process in {poisson, mmpp}   (mmpp = 2-state Markov-modulated
//     Poisson: same average rate, 8x rate ratio between burst and lull)
//   key skew in {uniform, zipfian (theta .99, spread over partitions),
//     hotpart (zipfian keys + 85% of arrivals aimed at partition 0)}
// Reporting is SLO-style: goodput = completions within the p50 / p99
// latency targets (end-to-end: arrival -> reply, queue wait included),
// plus abandoned / timeout / busy accounting that must sum exactly to the
// arrival count (gated). Uniform cells must stay healthy (gated: >= 90%
// of arrivals complete within the p99 target); hotpart cells are expected
// to shed — that is the stress, not a failure.
//
// Latencies use the LatencyRecorder histogram mode (~30 KB fixed) and the
// kernel is watched via telemetry::KernelStats, so the report also says
// how deep the event queue ran and how many events each cell cost.
//
//   scale_sweep [--quick] [--seed <s>] [--clients <n>] [--json <path>]
//               (default BENCH_scale.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "faultlab/bank.hpp"
#include "rdma/fabric.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "telemetry/json.hpp"
#include "telemetry/kernel.hpp"

using namespace heron;

namespace {

struct Options {
  bool quick = false;
  std::uint64_t seed = 23;
  std::uint64_t clients = 0;  // 0 = default for the mode
  std::string json_path = "BENCH_scale.json";
};

// ------------------------------------------------------------------
// Part 1: legacy-vs-new kernel microbench.
// ------------------------------------------------------------------

/// The seed kernel's event loop, reproduced for the before/after race:
/// binary heap keyed by (when, seq), one std::function per event, pop via
/// const_cast move-from-top. Kept deliberately identical in shape to the
/// engine this PR replaced.
class LegacyEngine {
 public:
  void schedule(sim::Nanos delay, std::function<void()> fn) {
    queue_.push(Ev{now_ + delay, seq_++, std::move(fn)});
  }

  std::uint64_t run() {
    std::uint64_t n = 0;
    while (!queue_.empty()) {
      Ev ev = std::move(const_cast<Ev&>(queue_.top()));
      queue_.pop();
      now_ = ev.when;
      ev.fn();
      ++n;
    }
    return n;
  }

 private:
  struct Ev {
    sim::Nanos when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, Later> queue_;
  sim::Nanos now_ = 0;
  std::uint64_t seq_ = 0;
};

/// The current kernel behind the same two-method surface.
class WheelEngine {
 public:
  template <typename Fn>
  void schedule(sim::Nanos delay, Fn&& fn) {
    sim_.schedule(delay, sim::EventFn(std::forward<Fn>(fn)));
  }

  std::uint64_t run() {
    const std::uint64_t before = sim_.events_executed();
    sim_.run();
    return sim_.events_executed() - before;
  }

 private:
  sim::Simulator sim_;
};

/// One self-rescheduling chain step. The capture below ({engine pointer,
/// hash, count} = 20 bytes) matches the simulator's dominant real payloads:
/// small but past libstdc++'s 16-byte std::function inline window, so the
/// legacy engine heap-allocates per event while EventFn stores it inline.
/// Delay mix: mostly near-horizon (inside the wheel window), every 16th
/// step far (up to ~1 ms) to keep the far-bucket path honest.
template <typename Engine>
void chain_step(Engine& eng, std::uint64_t h, std::uint32_t left) {
  if (left == 0) return;
  std::uint64_t state = h;
  const std::uint64_t next = sim::splitmix64(state);
  const sim::Nanos delay = (left % 16 == 0)
                               ? 1000 + static_cast<sim::Nanos>(next & 0xFFFFF)
                               : 64 + static_cast<sim::Nanos>(next & 0x3FF);
  Engine* e = &eng;
  eng.schedule(delay,
               [e, next, left] { chain_step(*e, next, left - 1); });
}

struct KernelRace {
  std::uint64_t chains = 0;
  std::uint64_t events_per_engine = 0;
  double legacy_eps = 0.0;
  double wheel_eps = 0.0;
  double speedup = 0.0;
};

template <typename Engine>
double race_engine(std::uint64_t seed, std::uint32_t chains,
                   std::uint32_t steps, std::uint64_t* executed) {
  {
    // Warm-up: touches the allocator and instruction cache outside the
    // timed window.
    Engine warm;
    std::uint64_t s = seed ^ 0x9e3779b97f4a7c15ULL;
    for (std::uint32_t c = 0; c < std::min<std::uint32_t>(chains, 64); ++c) {
      chain_step(warm, sim::splitmix64(s), 32);
    }
    warm.run();
  }
  Engine eng;
  std::uint64_t s = seed;
  for (std::uint32_t c = 0; c < chains; ++c) {
    chain_step(eng, sim::splitmix64(s), steps);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t n = eng.run();
  const auto t1 = std::chrono::steady_clock::now();
  if (executed != nullptr) *executed = n;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return secs > 0.0 ? static_cast<double>(n) / secs : 0.0;
}

KernelRace race_kernels(const Options& opt) {
  // Chain count doubles as steady-state queue depth: 8192 pending events
  // is what a million-client open-loop cell actually holds. The heap pays
  // log2(depth) comparison rounds per op; the wheel does not.
  const std::uint32_t chains = opt.quick ? 4096 : 8192;
  const std::uint32_t steps = opt.quick ? 100 : 250;
  KernelRace r;
  r.chains = chains;
  r.legacy_eps =
      race_engine<LegacyEngine>(opt.seed, chains, steps, &r.events_per_engine);
  r.wheel_eps = race_engine<WheelEngine>(opt.seed, chains, steps, nullptr);
  r.speedup = r.legacy_eps > 0.0 ? r.wheel_eps / r.legacy_eps : 0.0;
  return r;
}

// ------------------------------------------------------------------
// Part 2: open-loop scale sweep.
// ------------------------------------------------------------------

constexpr int kPartitions = 4;
constexpr int kReplicas = 3;
constexpr std::uint64_t kKeysPerPartition = 16384;
constexpr sim::Nanos kSloP50 = sim::us(250);
constexpr sim::Nanos kSloP99 = sim::ms(1);
constexpr sim::Nanos kPatience = sim::ms(2);
// 250k arrivals/s across 4 partitions ~= 65% of measured execution
// capacity (~93k cmds/s per partition leader with max_batch 8 at the
// configured CPU costs); uniform cells run comfortably, while the
// 85%-to-one-partition hotpart cells overload partition 0 by ~3.4x its
// capacity — that cell is *supposed* to shed.
constexpr double kMeanGapNs = 4000.0;

enum class Arrival { kPoisson, kMmpp };
enum class Skew { kUniform, kZipfian, kHotPartition };

const char* arrival_name(Arrival a) {
  return a == Arrival::kPoisson ? "poisson" : "mmpp";
}
const char* skew_name(Skew s) {
  switch (s) {
    case Skew::kUniform: return "uniform";
    case Skew::kZipfian: return "zipfian";
    default: return "hotpart";
  }
}

/// Two-state Markov-modulated Poisson arrival process. Burst state runs
/// 2.8x the base rate, lull 0.35x, with exponential dwell times weighted
/// so the long-run average rate matches the plain Poisson cells — same
/// offered load, very different short-term variance.
class ArrivalProcess {
 public:
  ArrivalProcess(Arrival kind, double mean_gap_ns, sim::Rng& rng)
      : kind_(kind), mean_gap_(mean_gap_ns), rng_(&rng) {}

  sim::Nanos next_gap(sim::Nanos now) {
    double gap = mean_gap_;
    if (kind_ == Arrival::kMmpp) {
      if (now >= dwell_until_) {
        burst_ = !burst_;
        const double dwell =
            rng_->exponential(burst_ ? 1.0e6 : 3.0e6);  // 1 ms / 3 ms mean
        dwell_until_ = now + static_cast<sim::Nanos>(dwell) + 1;
      }
      // Weighted average: (2.8 * 1 + 0.35 * 3) / 4 = 0.9625x base rate.
      gap = burst_ ? mean_gap_ / 2.8 : mean_gap_ / 0.35;
    }
    const double g = rng_->exponential(gap);
    return g < 1.0 ? 1 : static_cast<sim::Nanos>(g);
  }

 private:
  Arrival kind_;
  double mean_gap_;
  sim::Rng* rng_;
  bool burst_ = false;
  sim::Nanos dwell_until_ = 0;
};

/// Key chooser: picks a partition and an account homed there (BankApp
/// homes oid at oid % partitions, so account = rank * partitions + p).
class KeyChooser {
 public:
  KeyChooser(Skew skew, sim::Rng& rng)
      : skew_(skew),
        rng_(&rng),
        global_(kKeysPerPartition * kPartitions, 0.99),
        local_(kKeysPerPartition, 0.99) {}

  std::uint64_t next_account() {
    std::uint64_t p = 0;
    std::uint64_t rank = 0;
    switch (skew_) {
      case Skew::kUniform:
        p = rng_->bounded(kPartitions);
        rank = rng_->bounded(kKeysPerPartition);
        break;
      case Skew::kZipfian: {
        // Global Zipf rank striped across partitions: the hottest keys
        // land on different partitions, so skew stresses contention on
        // individual accounts, not placement.
        const std::uint64_t g = global_.next(*rng_);
        p = g % kPartitions;
        rank = g / kPartitions;
        break;
      }
      case Skew::kHotPartition:
        p = rng_->chance(0.85)
                ? 0
                : 1 + rng_->bounded(kPartitions - 1);
        rank = local_.next(*rng_);
        break;
    }
    return rank * kPartitions + p;
  }

 private:
  Skew skew_;
  sim::Rng* rng_;
  sim::ZipfGen global_;
  sim::ZipfGen local_;
};

struct Job {
  sim::Nanos arrived = 0;
  std::uint64_t account = 0;
};

struct CellResult {
  std::uint64_t arrivals = 0;
  std::uint64_t served_ok = 0;
  std::uint64_t goodput_p50 = 0;  // served within the p50 target
  std::uint64_t goodput_p99 = 0;  // served within the p99 target
  std::uint64_t abandoned = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t hung_workers = 0;
  sim::Nanos p50 = 0;
  sim::Nanos p99 = 0;
  sim::Nanos max = 0;
  sim::Nanos abandon_max_wait = 0;
  sim::Nanos virtual_ns = 0;
  std::uint64_t sim_events = 0;
  double wall_secs = 0.0;
  std::uint64_t queue_depth_max = 0;
  double queue_depth_mean = 0.0;
  bool accounted = false;
};

struct Worker {
  sim::Notifier note;
  std::uint32_t client = 0;
  explicit Worker(sim::Simulator& sim, std::uint32_t c)
      : note(sim), client(c) {}
};

struct CellCtx {
  core::System& sys;
  std::uint64_t n_arrivals;
  ArrivalProcess arrivals;
  KeyChooser keys;
  std::vector<Worker> workers;
  std::vector<std::uint32_t> idle;
  std::deque<Job> waitq;
  bool done = false;
  CellResult out;
  // End-to-end latency of completed logical clients; histogram mode so a
  // million samples cost ~30 KB, not a 10^6-entry vector.
  sim::LatencyRecorder e2e{sim::LatencyRecorder::Mode::kHistogram};

  CellCtx(core::System& s, std::uint64_t n, Arrival a, Skew k, sim::Rng& rng)
      : sys(s), n_arrivals(n), arrivals(a, kMeanGapNs, rng), keys(k, rng) {}
};

/// The open-loop source: every iteration is one logical client arriving.
/// A job is handed straight to an idle pooled session when one exists;
/// otherwise it waits FIFO and is subject to patience at dispatch time.
sim::Task<void> arrival_source(CellCtx& cx) {
  auto& sim = cx.sys.simulator();
  for (std::uint64_t i = 0; i < cx.n_arrivals; ++i) {
    co_await sim.sleep(cx.arrivals.next_gap(sim.now()));
    ++cx.out.arrivals;
    cx.waitq.push_back(Job{sim.now(), cx.keys.next_account()});
    if (!cx.idle.empty()) {
      const std::uint32_t w = cx.idle.back();
      cx.idle.pop_back();
      cx.workers[w].note.notify_all();
    }
  }
  cx.done = true;
  for (const std::uint32_t w : cx.idle) cx.workers[w].note.notify_all();
  cx.idle.clear();
}

/// One pooled session: pulls the next waiting logical client, abandons it
/// if it already out-waited its patience, otherwise submits and scores the
/// end-to-end (arrival -> reply) latency against the SLO targets.
sim::Task<void> session_worker(CellCtx& cx, std::uint32_t me) {
  auto& sim = cx.sys.simulator();
  core::Client& client = cx.sys.client(cx.workers[me].client);
  for (;;) {
    if (cx.waitq.empty()) {
      if (cx.done) co_return;
      cx.idle.push_back(me);
      co_await cx.workers[me].note.wait();
      continue;
    }
    const Job job = cx.waitq.front();
    cx.waitq.pop_front();
    const sim::Nanos waited = sim.now() - job.arrived;
    if (waited > kPatience) {
      ++cx.out.abandoned;
      cx.out.abandon_max_wait = std::max(cx.out.abandon_max_wait, waited);
      continue;
    }
    const faultlab::DepositReq req{job.account, 1};
    const auto res = co_await client.submit(
        amcast::dst_of(static_cast<amcast::GroupId>(job.account %
                                                    kPartitions)),
        faultlab::kDeposit, std::as_bytes(std::span(&req, 1)));
    const sim::Nanos e2e = sim.now() - job.arrived;
    if (res.status == core::SubmitStatus::kOk) {
      ++cx.out.served_ok;
      cx.e2e.record(e2e);
      if (e2e <= kSloP50) ++cx.out.goodput_p50;
      if (e2e <= kSloP99) ++cx.out.goodput_p99;
    } else if (res.status == core::SubmitStatus::kOverloaded) {
      ++cx.out.overloaded;
    } else {
      ++cx.out.timeouts;
    }
  }
}

CellResult run_cell(Arrival arrival, Skew skew, std::uint64_t n_arrivals,
                    std::uint32_t pool, const Options& opt) {
  sim::Simulator sim;
  rdma::LatencyModel model;
  rdma::Fabric fabric(sim, model, opt.seed);
  fabric.telemetry().metrics.enable();

  core::HeronConfig cfg;
  cfg.object_region_bytes = 8u << 20;
  // Light application op so the sweep measures queueing and the kernel,
  // not a synthetic 50 us app: ~2 us/command serial execution per
  // partition leader, amortized further by batching.
  cfg.exec_dispatch_proc = sim::us(1);
  cfg.client_attempt_timeout = sim::ms(1);
  cfg.client_max_retries = 1;
  cfg.client_retry_backoff = sim::us(50);
  amcast::Config acfg;
  acfg.max_clients = pool;  // inbox capacity must fit the session pool
  acfg.max_batch = 8;
  acfg.admission_window = 64;
  acfg.adaptive_admission = true;
  acfg.admission_min_window = 2;
  core::System sys(
      fabric, kPartitions, kReplicas,
      [] {
        return std::make_unique<faultlab::BankApp>(kPartitions,
                                                   kKeysPerPartition);
      },
      cfg, acfg);
  sys.start();

  sim::Rng rng(opt.seed * 7919 + static_cast<std::uint64_t>(arrival) * 131 +
               static_cast<std::uint64_t>(skew) * 17);
  CellCtx cx(sys, n_arrivals, arrival, skew, rng);
  cx.workers.reserve(pool);
  for (std::uint32_t w = 0; w < pool; ++w) {
    sys.add_client();
    auto& cl = sys.client(w);
    cl.latencies().set_mode(sim::LatencyRecorder::Mode::kHistogram);
    cx.workers.emplace_back(sim, w);
  }
  for (std::uint32_t w = 0; w < pool; ++w) {
    sim.spawn(session_worker(cx, w));
  }
  sim.spawn(arrival_source(cx));

  telemetry::KernelStats kstats(sim, fabric.telemetry().metrics,
                                sim::us(500));
  kstats.start();

  // The source finishes near n * mean gap; the tail of the run is queue
  // drain plus in-flight attempts (bounded by timeout * attempts).
  const auto horizon = static_cast<sim::Nanos>(
      static_cast<double>(n_arrivals) * kMeanGapNs * 1.5);
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(horizon + sim::ms(50));
  const auto t1 = std::chrono::steady_clock::now();
  kstats.stop();

  CellResult out = cx.out;
  out.virtual_ns = sim.now();
  out.sim_events = sim.events_executed();
  out.wall_secs = std::chrono::duration<double>(t1 - t0).count();
  out.p50 = cx.e2e.percentile(50);
  out.p99 = cx.e2e.percentile(99);
  out.max = cx.e2e.max();
  for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
    if (sys.client(c).in_flight()) ++out.hung_workers;
  }
  auto& depth = fabric.telemetry().metrics.histogram("sim", "queue_depth");
  out.queue_depth_max = static_cast<std::uint64_t>(depth.max());
  out.queue_depth_mean = depth.mean();
  out.accounted = out.arrivals == cx.n_arrivals &&
                  out.served_ok + out.abandoned + out.timeouts +
                          out.overloaded ==
                      out.arrivals;
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--clients" && i + 1 < argc) {
      opt.clients = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--seed <s>] [--clients <n>] "
                   "[--json <path>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  // Headline cell (poisson x zipfian) takes the full logical-client count;
  // the other cells run a slice so the sweep stays inside a few minutes.
  const std::uint64_t headline =
      opt.clients != 0 ? opt.clients : (opt.quick ? 20'000 : 1'000'000);
  const std::uint64_t slice =
      std::max<std::uint64_t>(headline / 8, opt.quick ? 10'000 : 100'000);
  const std::uint32_t pool = opt.quick ? 256 : 1024;

  const double speedup_floor = opt.quick ? 2.0 : 3.0;

  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("bench", "scale_sweep");
  w.kv("quick", opt.quick);
  w.kv("seed", opt.seed);
  w.kv("partitions", static_cast<std::uint64_t>(kPartitions));
  w.kv("replicas", static_cast<std::uint64_t>(kReplicas));
  w.kv("session_pool", static_cast<std::uint64_t>(pool));
  w.kv("keys_per_partition", kKeysPerPartition);
  w.kv("slo_p50_ns", kSloP50);
  w.kv("slo_p99_ns", kSloP99);
  w.kv("patience_ns", kPatience);

  std::printf("Kernel race: legacy heap+std::function vs timer wheel+EventFn\n");
  const KernelRace race = race_kernels(opt);
  const bool kernel_ok = race.speedup >= speedup_floor;
  std::printf(
      "  %llu chains x %llu events: legacy %.2fM ev/s, wheel %.2fM ev/s, "
      "speedup %.2fx (floor %.1fx) -> %s\n\n",
      static_cast<unsigned long long>(race.chains),
      static_cast<unsigned long long>(race.events_per_engine),
      race.legacy_eps / 1e6, race.wheel_eps / 1e6, race.speedup,
      speedup_floor, kernel_ok ? "PASS" : "FAIL");
  w.key("kernel").begin_object();
  w.kv("chains", race.chains);
  w.kv("events_per_engine", race.events_per_engine);
  w.kv("legacy_events_per_sec", race.legacy_eps);
  w.kv("wheel_events_per_sec", race.wheel_eps);
  w.kv("speedup", race.speedup);
  w.kv("speedup_floor", speedup_floor);
  w.kv("pass", kernel_ok);
  w.end_object();

  std::printf(
      "Open-loop sweep: %llu logical clients (headline), pool %u sessions\n",
      static_cast<unsigned long long>(headline), pool);
  std::printf("%-8s %-8s %9s %9s %9s %9s %7s %7s %6s %9s %9s %8s\n",
              "arrival", "skew", "arrivals", "ok", "slo_p50", "slo_p99",
              "abandon", "busy", "tmo", "p50_us", "p99_us", "Mev/s");

  std::uint64_t total_violations = 0;
  std::uint64_t total_clients = 0;
  bool slo_ok = true;
  w.key("cells").begin_array();
  for (const Arrival arrival : {Arrival::kPoisson, Arrival::kMmpp}) {
    for (const Skew skew :
         {Skew::kUniform, Skew::kZipfian, Skew::kHotPartition}) {
      const bool is_headline =
          arrival == Arrival::kPoisson && skew == Skew::kZipfian;
      const std::uint64_t n = is_headline ? headline : slice;
      const CellResult r = run_cell(arrival, skew, n, pool, opt);
      total_clients += r.arrivals;
      if (!r.accounted) ++total_violations;
      if (r.hung_workers != 0) ++total_violations;
      // Healthy-cell SLO gate: with uniform keys the system runs at ~50%
      // load and must keep nearly every logical client inside the p99
      // target; skewed and bursty cells are the stress arms and only the
      // accounting gates apply to them.
      if (skew == Skew::kUniform) {
        slo_ok = slo_ok && r.goodput_p99 >= (r.arrivals * 9) / 10;
      }

      w.begin_object();
      w.kv("arrival", arrival_name(arrival));
      w.kv("skew", skew_name(skew));
      w.kv("arrivals", r.arrivals);
      w.kv("served_ok", r.served_ok);
      w.kv("goodput_p50", r.goodput_p50);
      w.kv("goodput_p99", r.goodput_p99);
      w.kv("abandoned", r.abandoned);
      w.kv("timeouts", r.timeouts);
      w.kv("overloaded", r.overloaded);
      w.kv("hung_workers", r.hung_workers);
      w.kv("p50_ns", r.p50);
      w.kv("p99_ns", r.p99);
      w.kv("max_ns", r.max);
      w.kv("abandon_max_wait_ns", r.abandon_max_wait);
      w.kv("virtual_ns", r.virtual_ns);
      w.kv("sim_events", r.sim_events);
      w.kv("wall_secs", r.wall_secs);
      w.kv("events_per_wall_sec",
           r.wall_secs > 0.0 ? static_cast<double>(r.sim_events) / r.wall_secs
                             : 0.0);
      w.kv("queue_depth_mean", r.queue_depth_mean);
      w.kv("queue_depth_max", r.queue_depth_max);
      w.kv("accounted", r.accounted);
      w.kv("repro", std::string(argv[0]) + " --seed " +
                        std::to_string(opt.seed) +
                        (opt.quick ? " --quick" : "") +
                        (opt.clients != 0
                             ? " --clients " + std::to_string(opt.clients)
                             : ""));
      w.end_object();

      std::printf(
          "%-8s %-8s %9llu %9llu %9llu %9llu %7llu %7llu %6llu %9.1f %9.1f "
          "%8.2f\n",
          arrival_name(arrival), skew_name(skew),
          static_cast<unsigned long long>(r.arrivals),
          static_cast<unsigned long long>(r.served_ok),
          static_cast<unsigned long long>(r.goodput_p50),
          static_cast<unsigned long long>(r.goodput_p99),
          static_cast<unsigned long long>(r.abandoned),
          static_cast<unsigned long long>(r.overloaded),
          static_cast<unsigned long long>(r.timeouts), sim::to_us(r.p50),
          sim::to_us(r.p99),
          r.wall_secs > 0.0
              ? static_cast<double>(r.sim_events) / r.wall_secs / 1e6
              : 0.0);
      if (!r.accounted) {
        std::printf("  VIOLATION [accounting] served+abandoned+failed != "
                    "arrivals\n");
      }
      if (r.hung_workers != 0) {
        std::printf("  VIOLATION [hung] %llu sessions still in flight\n",
                    static_cast<unsigned long long>(r.hung_workers));
      }
    }
  }
  w.end_array();

  const bool gate_ok = kernel_ok && slo_ok && total_violations == 0;
  w.key("gates").begin_array();
  w.begin_object();
  w.kv("gate", "kernel_speedup");
  w.kv("floor", speedup_floor);
  w.kv("speedup", race.speedup);
  w.kv("pass", kernel_ok);
  w.end_object();
  w.begin_object();
  w.kv("gate", "uniform_cells_in_slo");
  w.kv("pass", slo_ok);
  w.end_object();
  w.begin_object();
  w.kv("gate", "accounting_and_liveness");
  w.kv("violations", total_violations);
  w.kv("pass", total_violations == 0);
  w.end_object();
  w.end_array();
  w.kv("total_logical_clients", total_clients);
  w.kv("total_violations", total_violations);
  w.kv("gate_ok", gate_ok);
  w.end_object();

  std::printf("\ntotal logical clients: %llu\n",
              static_cast<unsigned long long>(total_clients));

  if (!opt.json_path.empty()) {
    FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 2;
    }
    std::fputs(w.str().c_str(), f);
    std::fclose(f);
    std::printf("report -> %s\n", opt.json_path.c_str());
  }

  if (!kernel_ok) {
    std::fprintf(stderr, "FAIL: kernel speedup %.2fx below %.1fx floor\n",
                 race.speedup, speedup_floor);
    return 1;
  }
  if (!slo_ok) {
    std::fprintf(stderr, "FAIL: a uniform cell missed the p99 SLO gate\n");
    return 1;
  }
  if (total_violations != 0) {
    std::fprintf(stderr, "FAIL: %llu accounting/liveness violations\n",
                 static_cast<unsigned long long>(total_violations));
    return 1;
  }
  return 0;
}
