// A small replicated bank used by the core tests: one account object per
// key, partitioned by key modulo partition count. Deposits are
// single-partition; transfers read both accounts (one possibly remote)
// and each involved partition updates its local account. Conservation of
// the total balance across partitions is the linearizability canary.
#pragma once

#include <cstdint>
#include <cstring>

#include "core/app.hpp"
#include "core/system.hpp"

namespace heron::testapp {

using core::ExecContext;
using core::GroupId;
using core::Oid;
using core::Reply;
using core::Request;

enum Kind : std::uint32_t { kDeposit = 1, kTransfer = 2, kRead = 3 };

struct DepositReq {
  std::uint64_t account;
  std::int64_t amount;
};
struct TransferReq {
  std::uint64_t from;
  std::uint64_t to;
  std::int64_t amount;
};
struct ReadReq {
  std::uint64_t account;
};

struct Account {
  std::int64_t balance;
};

class BankApp : public core::Application {
 public:
  BankApp(int partitions, std::uint64_t accounts_per_partition,
          std::int64_t initial_balance = 1000)
      : partitions_(partitions),
        per_partition_(accounts_per_partition),
        initial_(initial_balance) {}

  [[nodiscard]] GroupId partition_of(Oid oid) const override {
    return static_cast<GroupId>(oid % static_cast<std::uint64_t>(partitions_));
  }

  [[nodiscard]] std::vector<Oid> read_set(const Request& r,
                                          GroupId) const override {
    switch (r.header.kind) {
      case kDeposit:
        return {decode<DepositReq>(r).account};
      case kTransfer: {
        const auto t = decode<TransferReq>(r);
        return {t.from, t.to};
      }
      case kRead:
        return {decode<ReadReq>(r).account};
      default:
        return {};
    }
  }

  Reply execute(const Request& r, ExecContext& ctx) override {
    ctx.charge(sim::us(1));  // nominal application CPU
    switch (r.header.kind) {
      case kDeposit: {
        const auto req = decode<DepositReq>(r);
        auto acct = ctx.value_as<Account>(req.account);
        acct.balance += req.amount;
        ctx.write_as(req.account, acct);
        return make_reply(acct.balance);
      }
      case kTransfer: {
        const auto req = decode<TransferReq>(r);
        const auto from = ctx.value_as<Account>(req.from);
        const auto to = ctx.value_as<Account>(req.to);
        // Each partition updates only its local account (§III-A).
        if (partition_of(req.from) == ctx.my_partition()) {
          Account nf{from.balance - req.amount};
          ctx.write_as(req.from, nf);
        }
        if (partition_of(req.to) == ctx.my_partition()) {
          Account nt{to.balance + req.amount};
          ctx.write_as(req.to, nt);
        }
        return make_reply(from.balance - req.amount);
      }
      case kRead: {
        const auto req = decode<ReadReq>(r);
        return make_reply(ctx.value_as<Account>(req.account).balance);
      }
      default:
        return Reply{.status = 1};
    }
  }

  void bootstrap(GroupId partition, core::ObjectStore& store) override {
    const Account init{initial_};
    for (std::uint64_t k = 0; k < per_partition_; ++k) {
      const Oid oid = static_cast<std::uint64_t>(partition) +
                      k * static_cast<std::uint64_t>(partitions_);
      store.create(oid, std::as_bytes(std::span(&init, 1)));
    }
  }

  [[nodiscard]] std::uint64_t accounts_per_partition() const {
    return per_partition_;
  }
  [[nodiscard]] std::int64_t initial_balance() const { return initial_; }

  template <typename T>
  static T decode(const Request& r) {
    T out;
    std::memcpy(&out, r.payload.data(), sizeof(T));
    return out;
  }

 private:
  static Reply make_reply(std::int64_t v) {
    Reply rep;
    rep.payload.resize(sizeof(v));
    std::memcpy(rep.payload.data(), &v, sizeof(v));
    return rep;
  }

  int partitions_;
  std::uint64_t per_partition_;
  std::int64_t initial_;
};

/// Balance of `oid` as currently stored at a replica.
inline std::int64_t stored_balance(core::Replica& rep, Oid oid) {
  auto [tmp, bytes] = rep.store().get(oid);
  Account a;
  std::memcpy(&a, bytes.data(), sizeof(a));
  return a.balance;
}

}  // namespace heron::testapp
