// TPC-C on Heron: schema/oid encoding, bootstrap shape, per-transaction
// correctness, multi-partition NewOrder/Payment semantics, replica
// convergence, and full-mix integration through the harness.
#include <gtest/gtest.h>

#include <cstring>

#include "harness/runner.hpp"
#include "tpcc/app.hpp"
#include "tpcc/gen.hpp"

namespace heron::tpcc {
namespace {

using core::Oid;
using sim::Task;

// --- oid encoding --------------------------------------------------------

TEST(TpccSchema, OidRoundTrip) {
  const Oid oid = make_oid(Table::kOrderLine, 11, 7, ol_key(123456, 9));
  EXPECT_EQ(oid_table(oid), Table::kOrderLine);
  EXPECT_EQ(oid_warehouse(oid), 11u);
  EXPECT_EQ(oid_district(oid), 7u);
  EXPECT_EQ(oid_key(oid), ol_key(123456, 9));
}

TEST(TpccSchema, OidsAreDistinctAcrossTables) {
  const Oid a = make_oid(Table::kStock, 1, 0, 5);
  const Oid b = make_oid(Table::kItem, 1, 0, 5);
  const Oid c = make_oid(Table::kStock, 2, 0, 5);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(TpccSchema, RowSizesMatchPaperShape) {
  // Serialized tables dominate: Stock ~ 640B, Customer ~ 1.3KB. A full
  // warehouse (scale 1.0) must land near the paper's 137.69 MB:
  // 100k stock + 30k customers serialized ~= 105 MB.
  const double stock_mb = 100'000.0 * sizeof(StockRow) / 1e6;
  const double cust_mb = 30'000.0 * sizeof(CustomerRow) / 1e6;
  EXPECT_NEAR(stock_mb + cust_mb, 105.3, 15.0);
  EXPECT_GT(sizeof(CustomerRow), 1200u);
  EXPECT_NEAR(static_cast<double>(sizeof(StockRow)), 640.0, 64.0);
}

TEST(TpccScaleTest, RegionBytesCoverBootstrap) {
  TpccScale scale{.factor = 0.02, .initial_orders_per_district = 10};
  sim::Simulator sim;
  rdma::Fabric fabric(sim);
  auto& node = fabric.add_node();
  core::ObjectStore store(node, scale.region_bytes());
  TpccApp app(4, scale);
  EXPECT_NO_THROW(app.bootstrap(0, store));
  EXPECT_LT(store.bytes_used(), store.mr().valid()
                ? node.region(store.mr()).size()
                : 0u);
}

// --- bootstrap ------------------------------------------------------------

TEST(TpccBootstrap, PopulatesExpectedObjects) {
  TpccScale scale{.factor = 0.01, .initial_orders_per_district = 6};
  sim::Simulator sim;
  rdma::Fabric fabric(sim);
  auto& node = fabric.add_node();
  core::ObjectStore store(node, scale.region_bytes());
  TpccApp app(2, scale);
  app.bootstrap(1, store);

  // Replicated tables.
  EXPECT_TRUE(store.exists(make_oid(Table::kWarehouse, 0, 0, 0)));
  EXPECT_TRUE(store.exists(make_oid(Table::kWarehouse, 1, 0, 0)));
  EXPECT_TRUE(store.exists(make_oid(Table::kItem, 1, 0, 1)));
  EXPECT_TRUE(store.exists(make_oid(Table::kItem, 1, 0, scale.items())));
  // Local tables for warehouse 1 only.
  EXPECT_TRUE(store.exists(make_oid(Table::kStock, 1, 0, 1)));
  EXPECT_FALSE(store.exists(make_oid(Table::kStock, 0, 0, 1)));
  EXPECT_TRUE(store.exists(make_oid(Table::kDistrict, 1, 1, 0)));
  EXPECT_TRUE(store.exists(make_oid(Table::kDistrict, 1, 10, 0)));
  EXPECT_TRUE(store.exists(make_oid(Table::kCustomer, 1, 1, 1)));

  const auto district =
      load_row<DistrictRow>(store, make_oid(Table::kDistrict, 1, 1, 0));
  EXPECT_EQ(district.next_o_id, 7u);
  EXPECT_EQ(district.next_del_o_id, 5u);
  // Initial orders exist with their lines.
  const auto order =
      load_row<OrderRow>(store, make_oid(Table::kOrder, 1, 1, 1));
  EXPECT_GE(order.ol_cnt, 5u);
  EXPECT_TRUE(store.exists(
      make_oid(Table::kOrderLine, 1, 1, ol_key(1, 1))));
  // Stock is serialized, Item is not.
  EXPECT_TRUE(store.is_serialized(make_oid(Table::kStock, 1, 0, 1)));
  EXPECT_FALSE(store.is_serialized(make_oid(Table::kItem, 1, 0, 1)));
  EXPECT_TRUE(store.is_serialized(make_oid(Table::kCustomer, 1, 1, 1)));
}

// --- transaction semantics through the full stack -------------------------

struct TpccHarness {
  harness::TpccCluster cluster;
  core::Client* client;

  explicit TpccHarness(int partitions,
                       TpccScale scale = {.factor = 0.01,
                                          .initial_orders_per_district = 6})
      : cluster(partitions, 3, scale) {
    client = &cluster.system().add_client();
  }

  core::Reply run(const GeneratedRequest& req) {
    core::Reply reply;
    cluster.simulator().spawn(
        [](core::Client& c, const GeneratedRequest& r,
           core::Reply& out) -> Task<void> {
          auto result = co_await c.submit(r.dst, r.kind, r.payload);
          out = std::move(result.reply);
        }(*client, req, reply));
    cluster.simulator().run_for(sim::ms(10));
    return reply;
  }

  core::ObjectStore& store(int partition, int rank = 0) {
    return cluster.system().replica(partition, rank).store();
  }
};

TEST(TpccTxn, LocalNewOrderCreatesOrderAndBumpsDistrict) {
  TpccHarness h(2);
  NewOrderReq req;
  req.w_id = 0;
  req.d_id = 1;
  req.c_id = 1;
  req.ol_cnt = 5;
  for (std::uint32_t i = 0; i < req.ol_cnt; ++i) {
    req.items[i] = {i + 1, 0, 2};
  }
  GeneratedRequest g;
  g.kind = kNewOrder;
  g.dst = amcast::dst_of(0);
  g.set(req);

  const auto before =
      load_row<DistrictRow>(h.store(0), make_oid(Table::kDistrict, 0, 1, 0));
  core::Reply reply = h.run(g);
  ASSERT_EQ(reply.status, 0u);

  const auto after =
      load_row<DistrictRow>(h.store(0), make_oid(Table::kDistrict, 0, 1, 0));
  EXPECT_EQ(after.next_o_id, before.next_o_id + 1);
  const std::uint64_t o_id = before.next_o_id;
  EXPECT_TRUE(h.store(0).exists(make_oid(Table::kOrder, 0, 1, o_id)));
  EXPECT_TRUE(h.store(0).exists(make_oid(Table::kNewOrder, 0, 1, o_id)));
  EXPECT_TRUE(
      h.store(0).exists(make_oid(Table::kOrderLine, 0, 1, ol_key(o_id, 5))));

  // Stock updated for each line.
  const auto stock =
      load_row<StockRow>(h.store(0), make_oid(Table::kStock, 0, 0, 1));
  EXPECT_EQ(stock.order_cnt, 1u);
  EXPECT_EQ(stock.ytd, 2u);

  // Reply carries the computed total.
  double total;
  std::memcpy(&total, reply.payload.data(), sizeof(total));
  EXPECT_GT(total, 0.0);

  // All three replicas of partition 0 converged.
  for (int r = 1; r < 3; ++r) {
    const auto d = load_row<DistrictRow>(
        h.cluster.system().replica(0, r).store(),
        make_oid(Table::kDistrict, 0, 1, 0));
    EXPECT_EQ(d.next_o_id, after.next_o_id);
  }
}

TEST(TpccTxn, RemoteNewOrderUpdatesSupplyPartitionStock) {
  TpccHarness h(2);
  NewOrderReq req;
  req.w_id = 0;
  req.d_id = 1;
  req.c_id = 1;
  req.ol_cnt = 5;
  for (std::uint32_t i = 0; i < req.ol_cnt; ++i) {
    req.items[i] = {i + 1, 0, 2};
  }
  req.items[2].supply_w_id = 1;  // one remote line -> multi-partition
  GeneratedRequest g;
  g.kind = kNewOrder;
  g.dst = amcast::dst_of(0) | amcast::dst_of(1);
  g.set(req);

  h.run(g);

  // Supply partition 1 updated its own stock row (remote_cnt set).
  const auto remote_stock =
      load_row<StockRow>(h.store(1), make_oid(Table::kStock, 1, 0, 3));
  EXPECT_EQ(remote_stock.order_cnt, 1u);
  EXPECT_EQ(remote_stock.remote_cnt, 1u);
  // Home partition did NOT update partition 1's row (no such object).
  EXPECT_FALSE(h.store(0).exists(make_oid(Table::kStock, 1, 0, 3)));
  // The order line carries the remote supplier.
  const auto district =
      load_row<DistrictRow>(h.store(0), make_oid(Table::kDistrict, 0, 1, 0));
  const auto line = load_row<OrderLineRow>(
      h.store(0),
      make_oid(Table::kOrderLine, 0, 1, ol_key(district.next_o_id - 1, 3)));
  EXPECT_EQ(line.supply_w_id, 1u);
  // Order flagged non-local.
  const auto order = load_row<OrderRow>(
      h.store(0), make_oid(Table::kOrder, 0, 1, district.next_o_id - 1));
  EXPECT_EQ(order.all_local, 0u);
}

TEST(TpccTxn, LocalPaymentUpdatesCustomerAndDistrict) {
  TpccHarness h(2);
  PaymentReq req{0, 2, 0, 2, 3, 125.5};
  GeneratedRequest g;
  g.kind = kPayment;
  g.dst = amcast::dst_of(0);
  g.set(req);

  const auto cust_before = load_row<CustomerRow>(
      h.store(0), make_oid(Table::kCustomer, 0, 2, 3));
  h.run(g);
  const auto cust = load_row<CustomerRow>(
      h.store(0), make_oid(Table::kCustomer, 0, 2, 3));
  EXPECT_DOUBLE_EQ(cust.balance, cust_before.balance - 125.5);
  EXPECT_EQ(cust.payment_cnt, cust_before.payment_cnt + 1);
  const auto district =
      load_row<DistrictRow>(h.store(0), make_oid(Table::kDistrict, 0, 2, 0));
  EXPECT_DOUBLE_EQ(district.ytd, 125.5);
}

TEST(TpccTxn, RemotePaymentIsMultiPartition) {
  TpccHarness h(2);
  PaymentReq req{0, 1, /*c_w=*/1, /*c_d=*/4, /*c_id=*/7, 60.0};
  GeneratedRequest g;
  g.kind = kPayment;
  g.dst = amcast::dst_of(0) | amcast::dst_of(1);
  g.set(req);
  h.run(g);

  // Customer at partition 1 debited; district YTD at partition 0 credited.
  const auto cust = load_row<CustomerRow>(
      h.store(1), make_oid(Table::kCustomer, 1, 4, 7));
  EXPECT_DOUBLE_EQ(cust.balance, -10.0 - 60.0);
  const auto district =
      load_row<DistrictRow>(h.store(0), make_oid(Table::kDistrict, 0, 1, 0));
  EXPECT_DOUBLE_EQ(district.ytd, 60.0);
  // Coordination happened.
  EXPECT_EQ(h.cluster.system().replica(0, 0).coord_stats().multi_partition,
            1u);
}

TEST(TpccTxn, OrderStatusReturnsBalanceAndLastOrder) {
  TpccHarness h(1);
  OrderStatusReq req{0, 1, 1};
  GeneratedRequest g;
  g.kind = kOrderStatus;
  g.dst = amcast::dst_of(0);
  g.set(req);
  core::Reply reply = h.run(g);
  ASSERT_EQ(reply.payload.size(), 2 * sizeof(double));
  double balance;
  std::memcpy(&balance, reply.payload.data(), sizeof(double));
  EXPECT_DOUBLE_EQ(balance, -10.0);
}

TEST(TpccTxn, DeliveryAdvancesOldestUndelivered) {
  TpccHarness h(1);
  const auto before =
      load_row<DistrictRow>(h.store(0), make_oid(Table::kDistrict, 0, 3, 0));
  ASSERT_LT(before.next_del_o_id, before.next_o_id);

  DeliveryReq req{0, 3, 5};
  GeneratedRequest g;
  g.kind = kDelivery;
  g.dst = amcast::dst_of(0);
  g.set(req);
  core::Reply reply = h.run(g);

  std::uint64_t delivered;
  std::memcpy(&delivered, reply.payload.data(), sizeof(delivered));
  EXPECT_EQ(delivered, before.next_del_o_id);
  const auto after =
      load_row<DistrictRow>(h.store(0), make_oid(Table::kDistrict, 0, 3, 0));
  EXPECT_EQ(after.next_del_o_id, before.next_del_o_id + 1);
  const auto order = load_row<OrderRow>(
      h.store(0), make_oid(Table::kOrder, 0, 3, delivered));
  EXPECT_EQ(order.carrier_id, 5u);
}

TEST(TpccTxn, StockLevelCountsLowItems) {
  TpccHarness h(1);
  StockLevelReq req{0, 1, /*threshold=*/101};  // everything is below 101
  GeneratedRequest g;
  g.kind = kStockLevel;
  g.dst = amcast::dst_of(0);
  g.set(req);
  core::Reply reply = h.run(g);
  std::uint64_t low;
  std::memcpy(&low, reply.payload.data(), sizeof(low));
  EXPECT_GT(low, 0u);
}

// --- generator -------------------------------------------------------------

TEST(TpccGen, MixMatchesSpec) {
  WorkloadConfig cfg;
  cfg.partitions = 4;
  cfg.scale = TpccScale{.factor = 0.01, .initial_orders_per_district = 6};
  WorkloadGen gen(cfg, 0, 42);
  std::map<std::uint32_t, int> counts;
  int multi = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    auto req = gen.next();
    counts[req.kind]++;
    if (amcast::dst_count(req.dst) > 1) ++multi;
  }
  EXPECT_NEAR(counts[kNewOrder] / static_cast<double>(n), 0.45, 0.02);
  EXPECT_NEAR(counts[kPayment] / static_cast<double>(n), 0.43, 0.02);
  EXPECT_NEAR(counts[kOrderStatus] / static_cast<double>(n), 0.04, 0.01);
  EXPECT_NEAR(counts[kDelivery] / static_cast<double>(n), 0.04, 0.01);
  EXPECT_NEAR(counts[kStockLevel] / static_cast<double>(n), 0.04, 0.01);
  // ~10% of requests are multi-partition (paper §V-D1).
  EXPECT_NEAR(multi / static_cast<double>(n), 0.10, 0.04);
}

TEST(TpccGen, LocalOnlyNeverCrossesPartitions) {
  WorkloadConfig cfg;
  cfg.partitions = 8;
  cfg.scale = TpccScale{.factor = 0.01, .initial_orders_per_district = 6};
  cfg.local_only = true;
  WorkloadGen gen(cfg, 3, 42);
  for (int i = 0; i < 5'000; ++i) {
    auto req = gen.next();
    EXPECT_EQ(req.dst, amcast::dst_of(3));
  }
}

TEST(TpccGen, ForcedSpanHitsExactPartitionCount) {
  WorkloadConfig cfg;
  cfg.partitions = 8;
  cfg.scale = TpccScale{.factor = 0.01, .initial_orders_per_district = 6};
  cfg.force_partitions = 4;
  WorkloadGen gen(cfg, 2, 42);
  for (int i = 0; i < 1'000; ++i) {
    auto req = gen.next();
    EXPECT_EQ(req.kind, kNewOrder);
    EXPECT_EQ(amcast::dst_count(req.dst), 4);
    EXPECT_TRUE(amcast::dst_contains(req.dst, 2));  // home always included
  }
}

// --- full-mix integration ---------------------------------------------------

TEST(TpccIntegration, MixedWorkloadRunsAndConverges) {
  harness::TpccCluster cluster(
      2, 3, TpccScale{.factor = 0.01, .initial_orders_per_district = 6});
  tpcc::WorkloadConfig workload;
  cluster.add_clients(2, workload);
  auto result = cluster.run(sim::ms(5), sim::ms(60));

  EXPECT_GT(result.completed, 200u);
  EXPECT_GT(result.throughput_tps, 1'000.0);
  // Latencies are tens of microseconds, not milliseconds.
  EXPECT_LT(result.latency.mean(), static_cast<double>(sim::us(300)));

  // Replicas of each partition converged on district state.
  auto& sys = cluster.system();
  for (int p = 0; p < 2; ++p) {
    for (std::uint32_t d = 1; d <= 10; ++d) {
      const auto expect = load_row<DistrictRow>(
          sys.replica(p, 0).store(),
          make_oid(Table::kDistrict, static_cast<std::uint32_t>(p), d, 0));
      for (int r = 1; r < 3; ++r) {
        const auto got = load_row<DistrictRow>(
            sys.replica(p, r).store(),
            make_oid(Table::kDistrict, static_cast<std::uint32_t>(p), d, 0));
        EXPECT_EQ(got.next_o_id, expect.next_o_id)
            << "partition " << p << " district " << d << " rank " << r;
        EXPECT_DOUBLE_EQ(got.ytd, expect.ytd);
      }
    }
  }
  EXPECT_GT(result.latency_multi.count(), 0u);
  EXPECT_GT(result.latency_single.count(), result.latency_multi.count());
}

TEST(TpccIntegration, MultiPartitionLatencyExceedsSinglePartition) {
  harness::TpccCluster cluster(
      2, 3, TpccScale{.factor = 0.01, .initial_orders_per_district = 6});
  tpcc::WorkloadConfig workload;
  cluster.add_clients(1, workload);
  auto result = cluster.run(sim::ms(5), sim::ms(80));
  ASSERT_GT(result.latency_multi.count(), 5u);
  EXPECT_GT(result.latency_multi.mean(), result.latency_single.mean());
}

}  // namespace
}  // namespace heron::tpcc
