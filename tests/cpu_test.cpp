// Unit tests for the per-node CPU resource and the ExecContext helpers.
#include <gtest/gtest.h>

#include "core/app.hpp"
#include "rdma/fabric.hpp"
#include "sim/cpu.hpp"
#include "sim/simulator.hpp"

namespace heron {
namespace {

using sim::Cpu;
using sim::Nanos;
using sim::Simulator;
using sim::Task;
using sim::us;

TEST(Cpu, SingleUserPaysItsCost) {
  Simulator sim;
  Cpu cpu(sim);
  Nanos done_at = -1;
  sim.spawn([](Simulator& s, Cpu& c, Nanos& out) -> Task<void> {
    co_await c.use(us(10));
    out = s.now();
  }(sim, cpu, done_at));
  sim.run();
  EXPECT_EQ(done_at, us(10));
  EXPECT_EQ(cpu.busy_total(), us(10));
}

TEST(Cpu, ConcurrentUsersSerialize) {
  Simulator sim;
  Cpu cpu(sim);
  std::vector<Nanos> done;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulator& s, Cpu& c, std::vector<Nanos>& out) -> Task<void> {
      co_await c.use(us(10));
      out.push_back(s.now());
    }(sim, cpu, done));
  }
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], us(10));
  EXPECT_EQ(done[1], us(20));
  EXPECT_EQ(done[2], us(30));
}

TEST(Cpu, IdleGapsDoNotAccumulate) {
  Simulator sim;
  Cpu cpu(sim);
  Nanos done_at = -1;
  sim.spawn([](Simulator& s, Cpu& c, Nanos& out) -> Task<void> {
    co_await c.use(us(5));
    co_await s.sleep(us(100));  // CPU idle meanwhile
    co_await c.use(us(5));
    out = s.now();
  }(sim, cpu, done_at));
  sim.run();
  EXPECT_EQ(done_at, us(110));
  EXPECT_EQ(cpu.busy_total(), us(10));
}

TEST(Cpu, TwoCpusRunInParallel) {
  Simulator sim;
  Cpu a(sim), b(sim);
  Nanos done_a = -1, done_b = -1;
  sim.spawn([](Simulator& s, Cpu& c, Nanos& out) -> Task<void> {
    co_await c.use(us(10));
    out = s.now();
  }(sim, a, done_a));
  sim.spawn([](Simulator& s, Cpu& c, Nanos& out) -> Task<void> {
    co_await c.use(us(10));
    out = s.now();
  }(sim, b, done_b));
  sim.run();
  EXPECT_EQ(done_a, us(10));
  EXPECT_EQ(done_b, us(10));  // no serialization across distinct cores
}

TEST(ExecContext, ValueAndWriteHelpers) {
  sim::Simulator sim;
  rdma::Fabric fabric(sim);
  auto& node = fabric.add_node();
  core::ObjectStore store(node, 1 << 16);

  core::ExecContext ctx(0, store);
  const std::uint64_t v = 0xdeadbeef;
  ctx.mutable_values()[7].resize(sizeof(v));
  std::memcpy(ctx.mutable_values()[7].data(), &v, sizeof(v));

  EXPECT_TRUE(ctx.has(7));
  EXPECT_FALSE(ctx.has(8));
  EXPECT_EQ(ctx.value_as<std::uint64_t>(7), v);

  ctx.write_as<std::uint64_t>(9, 42);
  ASSERT_EQ(ctx.writes().size(), 1u);
  EXPECT_EQ(ctx.writes()[0].first, 9u);
  std::uint64_t w;
  std::memcpy(&w, ctx.writes()[0].second.data(), sizeof(w));
  EXPECT_EQ(w, 42u);

  ctx.charge(us(3));
  ctx.charge(us(2));
  EXPECT_EQ(ctx.cpu_cost(), us(5));

  std::vector<std::byte> blob(16, std::byte{1});
  ctx.create(11, blob, /*serialized=*/true);
  ASSERT_EQ(ctx.creates().size(), 1u);
  EXPECT_TRUE(ctx.creates()[0].serialized);
  EXPECT_EQ(ctx.creates()[0].oid, 11u);
}

}  // namespace
}  // namespace heron
