// Unit tests for the simulated durable subsystem: CRC, the page device's
// cost/fault model, and the checkpoint store's atomic-commit protocol
// (manifest chains, newest-wins deltas, aborts, corruption fallback,
// compaction, record paging).
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <string>

#include "durable/checkpoint.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace heron::durable {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

/// Runs a coroutine body to completion on a fresh slice of virtual time.
void drive(sim::Simulator& sim,
           const std::function<sim::Task<void>()>& body) {
  bool done = false;
  sim.spawn([](const std::function<sim::Task<void>()>& b,
               bool& flag) -> sim::Task<void> {
    co_await b();
    flag = true;
  }(body, done));
  sim.run_for(sim::sec(60));
  ASSERT_TRUE(done) << "test coroutine did not finish";
}

Record object_record(std::uint64_t id, std::uint64_t tmp,
                     const std::string& value) {
  Record r;
  r.kind = kRecordObject;
  r.id = id;
  r.tmp = tmp;
  r.bytes = bytes_of(value);
  return r;
}

/// Builds a record vector without a braced initializer list — GCC 12
/// miscompiles initializer_list temporaries inside coroutine frames
/// ("array used as initializer").
template <typename... R>
std::vector<Record> recs(R... r) {
  std::vector<Record> out;
  (out.push_back(std::move(r)), ...);
  return out;
}

TEST(Crc32, KnownAnswer) {
  // The canonical CRC-32 (reflected, poly 0xEDB88320) check value.
  const std::string kat = "123456789";
  EXPECT_EQ(crc32(std::as_bytes(std::span(kat.data(), kat.size()))),
            0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(PageDevice, RoundtripChargesDeviceTime) {
  sim::Simulator sim;
  DeviceConfig cfg;
  PageDevice dev(sim, nullptr, cfg, "t");

  const auto payload = bytes_of("hello durable world");
  drive(sim, [&]() -> sim::Task<void> {
    const sim::Nanos t0 = sim.now();
    co_await dev.write_page(2, payload);
    const sim::Nanos wrote = sim.now();
    EXPECT_GE(wrote - t0, cfg.write_base);

    std::vector<std::byte> back;
    const bool ok = co_await dev.read_page(2, back);
    EXPECT_TRUE(ok);
    EXPECT_GE(sim.now() - wrote, cfg.read_base);
    EXPECT_EQ(back.size(), payload.size());
    EXPECT_TRUE(back == payload);
  });
  EXPECT_EQ(dev.pages_written(), 1u);
  EXPECT_EQ(dev.pages_read(), 1u);
  EXPECT_EQ(dev.crc_failures(), 0u);
}

TEST(PageDevice, UnwrittenAndOutOfRangePages) {
  sim::Simulator sim;
  DeviceConfig cfg;
  PageDevice dev(sim, nullptr, cfg, "t");
  drive(sim, [&]() -> sim::Task<void> {
    std::vector<std::byte> back;
    EXPECT_FALSE(co_await dev.read_page(7, back));  // never written
  });
  EXPECT_EQ(dev.crc_failures(), 1u);
}

TEST(PageDevice, DetectsMediumCorruption) {
  sim::Simulator sim;
  DeviceConfig cfg;
  PageDevice dev(sim, nullptr, cfg, "t");
  drive(sim, [&]() -> sim::Task<void> {
    co_await dev.write_page(3, bytes_of("precious bits"));
    dev.corrupt_page(3);
    std::vector<std::byte> back;
    EXPECT_FALSE(co_await dev.read_page(3, back));
  });
  EXPECT_EQ(dev.crc_failures(), 1u);
}

TEST(PageDevice, DetectsTornWrite) {
  sim::Simulator sim;
  DeviceConfig cfg;
  PageDevice dev(sim, nullptr, cfg, "t");
  drive(sim, [&]() -> sim::Task<void> {
    dev.tear_next_write();
    co_await dev.write_page(4, bytes_of("half of this payload persists"));
    std::vector<std::byte> back;
    EXPECT_FALSE(co_await dev.read_page(4, back));  // CRC is of the intent
    // The tear is one-shot: a rewrite lands whole.
    co_await dev.write_page(4, bytes_of("rewritten"));
    EXPECT_TRUE(co_await dev.read_page(4, back));
  });
}

TEST(CheckpointStore, CommitAndLoadRoundtrip) {
  sim::Simulator sim;
  DurableConfig cfg;
  cfg.checkpoint_interval = sim::ms(1);
  CheckpointStore store(sim, nullptr, cfg, "t");

  std::vector<Record> records{object_record(1, 100, "alpha"),
                              object_record(2, 100, "beta")};
  Record sess;
  sess.kind = kRecordSession;
  sess.id = 42;
  sess.tmp = 100;
  sess.bytes = bytes_of("sessiondata");
  records.push_back(sess);

  drive(sim, [&]() -> sim::Task<void> {
    EXPECT_FALSE(store.has_checkpoint());
    const bool ok =
        co_await store.write_checkpoint(100, 7, 12345, /*full=*/true, records);
    EXPECT_TRUE(ok);
    EXPECT_TRUE(store.has_checkpoint());
    EXPECT_EQ(store.watermark(), 100u);

    const auto img = co_await store.load_latest();
    EXPECT_TRUE(img.has_value());
    if (!img.has_value()) co_return;  // ASSERT returns; coroutines can't
    EXPECT_EQ(img->watermark, 100u);
    EXPECT_EQ(img->lease_epoch, 7u);
    EXPECT_EQ(img->lease_expiry, 12345);
    EXPECT_EQ(img->chain_length, 1u);
    EXPECT_EQ(img->records.size(), 3u);

    const auto fetched = co_await store.fetch_record(kRecordSession, 42);
    EXPECT_TRUE(fetched.has_value());
    if (!fetched.has_value()) co_return;
    EXPECT_EQ(fetched->tmp, 100u);
    EXPECT_EQ(fetched->bytes, bytes_of("sessiondata"));
    EXPECT_FALSE((co_await store.fetch_record(kRecordObject, 99)).has_value());
  });
  EXPECT_EQ(store.checkpoints_written(), 1u);
  EXPECT_EQ(store.full_checkpoints(), 1u);
}

TEST(CheckpointStore, DeltaChainNewestWins) {
  sim::Simulator sim;
  DurableConfig cfg;
  cfg.checkpoint_interval = sim::ms(1);
  CheckpointStore store(sim, nullptr, cfg, "t");

  drive(sim, [&]() -> sim::Task<void> {
    co_await store.write_checkpoint(
        100, 0, 0, true,
        recs(object_record(1, 100, "old-1"), object_record(2, 100, "old-2")));
    co_await store.write_checkpoint(200, 0, 0, false,
                                    recs(object_record(1, 200, "new-1")));

    const auto img = co_await store.load_latest();
    EXPECT_TRUE(img.has_value());
    if (!img.has_value()) co_return;  // ASSERT returns; coroutines can't
    EXPECT_EQ(img->watermark, 200u);
    EXPECT_EQ(img->chain_length, 2u);
    EXPECT_EQ(img->records.size(), 2u);
    for (const Record& r : img->records) {
      if (r.id == 1) {
        EXPECT_EQ(r.tmp, 200u);
        EXPECT_EQ(r.bytes, bytes_of("new-1"));
      } else {
        EXPECT_EQ(r.id, 2u);
        EXPECT_EQ(r.bytes, bytes_of("old-2"));
      }
    }
    // fetch_record pages in the newest version too.
    const auto one = co_await store.fetch_record(kRecordObject, 1);
    EXPECT_TRUE(one.has_value());
    if (!one.has_value()) co_return;
    EXPECT_EQ(one->bytes, bytes_of("new-1"));
  });
}

TEST(CheckpointStore, AbortedCheckpointKeepsPreviousCommit) {
  sim::Simulator sim;
  DurableConfig cfg;
  cfg.checkpoint_interval = sim::ms(1);
  CheckpointStore store(sim, nullptr, cfg, "t");

  drive(sim, [&]() -> sim::Task<void> {
    co_await store.write_checkpoint(100, 0, 0, true,
                                    recs(object_record(1, 100, "stable")));
    // The owner "crashes" between page writes: abort fires immediately.
    const bool ok = co_await store.write_checkpoint(
        200, 0, 0, false, recs(object_record(1, 200, "doomed")),
        [] { return true; });
    EXPECT_FALSE(ok);
    EXPECT_EQ(store.aborted_checkpoints(), 1u);
    EXPECT_EQ(store.watermark(), 100u);

    const auto img = co_await store.load_latest();
    EXPECT_TRUE(img.has_value());
    if (!img.has_value()) co_return;  // ASSERT returns; coroutines can't
    EXPECT_EQ(img->watermark, 100u);
    EXPECT_EQ(img->records.size(), 1u);
    if (img->records.empty()) co_return;
    EXPECT_EQ(img->records[0].bytes, bytes_of("stable"));
  });
}

TEST(CheckpointStore, CorruptHeadFallsBackToPreviousSuperblock) {
  sim::Simulator sim;
  DurableConfig cfg;
  cfg.checkpoint_interval = sim::ms(1);
  CheckpointStore store(sim, nullptr, cfg, "t");

  drive(sim, [&]() -> sim::Task<void> {
    // Commit seq 1 (superblock page 1), then seq 2 (superblock page 0).
    co_await store.write_checkpoint(100, 0, 0, true,
                                    recs(object_record(1, 100, "good")));
    co_await store.write_checkpoint(200, 0, 0, false,
                                    recs(object_record(1, 200, "newer")));
    // Medium corruption of the newest superblock: the loader must fall
    // back to the previous commit, not fail outright.
    store.device().corrupt_page(0);
    const auto img = co_await store.load_latest();
    EXPECT_TRUE(img.has_value());
    if (!img.has_value()) co_return;  // ASSERT returns; coroutines can't
    EXPECT_EQ(img->watermark, 100u);
    EXPECT_EQ(img->records.size(), 1u);
    if (img->records.empty()) co_return;
    EXPECT_EQ(img->records[0].bytes, bytes_of("good"));
  });
}

TEST(CheckpointStore, FullyCorruptDeviceLoadsNothing) {
  sim::Simulator sim;
  DurableConfig cfg;
  cfg.checkpoint_interval = sim::ms(1);
  CheckpointStore store(sim, nullptr, cfg, "t");

  drive(sim, [&]() -> sim::Task<void> {
    co_await store.write_checkpoint(100, 0, 0, true,
                                    recs(object_record(1, 100, "gone")));
    store.device().corrupt_page(0);
    store.device().corrupt_page(1);
    const auto img = co_await store.load_latest();
    EXPECT_FALSE(img.has_value());
  });
}

TEST(CheckpointStore, FullCheckpointCompactsTheOldChain) {
  sim::Simulator sim;
  DurableConfig cfg;
  cfg.checkpoint_interval = sim::ms(1);
  cfg.device.page_count = 64;  // small device: utilization is visible
  CheckpointStore store(sim, nullptr, cfg, "t");

  const std::string big(40 << 10, 'x');  // ~1.5 records per 64K page
  drive(sim, [&]() -> sim::Task<void> {
    co_await store.write_checkpoint(
        100, 0, 0, true,
        recs(object_record(1, 100, big), object_record(2, 100, big)));
    const std::uint64_t base_pages = store.chain_pages();
    for (int i = 0; i < 4; ++i) {
      co_await store.write_checkpoint(
          static_cast<std::uint64_t>(200 + i), 0, 0, false,
          recs(object_record(1, static_cast<std::uint64_t>(200 + i), big)));
    }
    EXPECT_GT(store.chain_pages(), base_pages);  // chain grew with deltas
    EXPECT_GT(store.utilization(), 0.0);

    // A full checkpoint replaces the chain and frees every old page.
    co_await store.write_checkpoint(
        300, 0, 0, true,
        recs(object_record(1, 300, big), object_record(2, 300, big)));
    EXPECT_LE(store.chain_pages(), base_pages);

    const auto img = co_await store.load_latest();
    EXPECT_TRUE(img.has_value());
    if (!img.has_value()) co_return;  // ASSERT returns; coroutines can't
    EXPECT_EQ(img->watermark, 300u);
    EXPECT_EQ(img->chain_length, 1u);
    EXPECT_EQ(img->records.size(), 2u);
    if (img->records.empty()) co_return;
  });
  EXPECT_EQ(store.full_checkpoints(), 2u);
}

TEST(CheckpointStore, AbortAtDataPageAllocDoesNotLeakPages) {
  sim::Simulator sim;
  DurableConfig cfg;
  cfg.checkpoint_interval = sim::ms(1);
  cfg.device.page_count = 8;  // tiny device: a one-page-per-abort leak
                              // exhausts it after a handful of attempts
  CheckpointStore store(sim, nullptr, cfg, "t");

  drive(sim, [&]() -> sim::Task<void> {
    co_await store.write_checkpoint(100, 0, 0, true,
                                    recs(object_record(1, 100, "base")));
    // Each attempt aborts right after allocating its first data page;
    // that page must go back to the allocator, not leak.
    for (int i = 0; i < 20; ++i) {
      const bool ok = co_await store.write_checkpoint(
          200, 0, 0, false, recs(object_record(1, 200, "doomed")),
          [] { return true; });
      EXPECT_FALSE(ok);
    }
    // With no leak the device still has room for a real delta.
    const bool ok = co_await store.write_checkpoint(
        200, 0, 0, false, recs(object_record(1, 200, "landed")));
    EXPECT_TRUE(ok);
    EXPECT_EQ(store.watermark(), 200u);
  });
}

TEST(CheckpointStore, LoadLatestReclaimsUnreferencedPages) {
  sim::Simulator sim;
  DurableConfig cfg;
  cfg.checkpoint_interval = sim::ms(1);
  CheckpointStore store(sim, nullptr, cfg, "t");

  drive(sim, [&]() -> sim::Task<void> {
    // full A (pages 2,3) + delta (4,5), then full B: B allocates fresh
    // pages 6,7 and frees the old chain {2,3,4,5} at commit.
    co_await store.write_checkpoint(100, 0, 0, true,
                                    recs(object_record(1, 100, "a")));
    co_await store.write_checkpoint(150, 0, 0, false,
                                    recs(object_record(2, 150, "d")));
    co_await store.write_checkpoint(200, 0, 0, true,
                                    recs(object_record(1, 200, "b")));
    EXPECT_EQ(store.free_pages(), 4u);

    // A restart rebuilds the allocator from the device. The recovered
    // chain references only B's pages; everything else below the bump
    // pointer (the compacted-away chain, aborted in-flight writes) must
    // return to the free list, not leak until out-of-pages.
    const auto img = co_await store.load_latest();
    EXPECT_TRUE(img.has_value());
    if (!img.has_value()) co_return;  // ASSERT returns; coroutines can't
    EXPECT_EQ(img->watermark, 200u);
    EXPECT_EQ(store.free_pages(), 4u);
  });
}

TEST(CheckpointStore, TornManifestInvalidatesOnlyNewestCandidate) {
  sim::Simulator sim;
  DurableConfig cfg;
  cfg.checkpoint_interval = sim::ms(1);
  CheckpointStore store(sim, nullptr, cfg, "t");

  drive(sim, [&]() -> sim::Task<void> {
    co_await store.write_checkpoint(100, 0, 0, true,
                                    recs(object_record(1, 100, "base")));
    // Tear the first page of the next checkpoint's stream (a data page):
    // the manifest then references a page whose stored CRC mismatches.
    store.device().tear_next_write();
    co_await store.write_checkpoint(200, 0, 0, false,
                                    recs(object_record(2, 200, "torn")));
    const auto img = co_await store.load_latest();
    EXPECT_TRUE(img.has_value());
    if (!img.has_value()) co_return;  // ASSERT returns; coroutines can't
    // The newest chain fails its data-page CRC; the previous superblock
    // still names the intact base checkpoint.
    EXPECT_EQ(img->watermark, 100u);
  });
  EXPECT_GE(store.device().crc_failures(), 1u);
}

}  // namespace
}  // namespace heron::durable
