// Tests for the DynaStar baseline: routing through the oracle, ordered
// execution within a partition, move-based multi-partition execution with
// mapping updates, and the kernel-path latency profile Fig. 5 contrasts
// with Heron.
#include <gtest/gtest.h>

#include <cstring>

#include "dynastar/system.hpp"
#include "tpcc/app.hpp"
#include "tpcc/gen.hpp"

namespace heron::dynastar {
namespace {

using sim::Task;
using tpcc::TpccScale;

struct Fixture {
  sim::Simulator sim;
  TpccScale scale{.factor = 0.01, .initial_orders_per_district = 6};
  DynastarSystem sys;
  Client* client;

  explicit Fixture(int partitions, Config cfg = {})
      : sys(sim, partitions, 3,
            [partitions, this] {
              return std::make_unique<tpcc::TpccApp>(partitions, scale, 7);
            },
            cfg) {
    sys.start();
    client = &sys.add_client();
  }

  core::Reply run(const tpcc::GeneratedRequest& req, sim::Nanos* lat = nullptr) {
    core::Reply reply;
    sim.spawn([](Client& c, const tpcc::GeneratedRequest& r, core::Reply& out,
                 sim::Nanos* lat_out) -> Task<void> {
      auto result = co_await c.submit(r.dst, r.kind, r.payload);
      out = std::move(result.reply);
      if (lat_out) *lat_out = result.latency;
    }(*client, req, reply, lat));
    sim.run_for(sim::ms(100));
    return reply;
  }
};

tpcc::GeneratedRequest local_new_order(std::uint32_t w) {
  tpcc::NewOrderReq req;
  req.w_id = w;
  req.d_id = 1;
  req.c_id = 1;
  req.ol_cnt = 5;
  for (std::uint32_t i = 0; i < req.ol_cnt; ++i) req.items[i] = {i + 1, w, 2};
  tpcc::GeneratedRequest g;
  g.kind = tpcc::kNewOrder;
  g.dst = amcast::dst_of(static_cast<amcast::GroupId>(w));
  g.set(req);
  return g;
}

TEST(Dynastar, LocalNewOrderExecutesOnAllReplicas) {
  Fixture f(2);
  sim::Nanos latency = 0;
  auto reply = f.run(local_new_order(0), &latency);
  ASSERT_EQ(reply.status, 0u);

  // District advanced identically on every replica of partition 0.
  for (int r = 0; r < 3; ++r) {
    const auto d = tpcc::load_row<tpcc::DistrictRow>(
        f.sys.replica(0, r).store(),
        tpcc::make_oid(tpcc::Table::kDistrict, 0, 1, 0));
    EXPECT_EQ(d.next_o_id, 8u) << "rank " << r;
  }
  // Kernel-path latency: hundreds of microseconds (paper: ~1 ms), far
  // above Heron's tens of microseconds.
  EXPECT_GT(latency, sim::us(200));
  EXPECT_LT(latency, sim::ms(5));
}

TEST(Dynastar, RemoteNewOrderMovesStockToExecutor) {
  Fixture f(2);
  tpcc::NewOrderReq req;
  req.w_id = 0;
  req.d_id = 1;
  req.c_id = 1;
  req.ol_cnt = 5;
  for (std::uint32_t i = 0; i < req.ol_cnt; ++i) req.items[i] = {i + 1, 0, 2};
  req.items[2].supply_w_id = 1;  // stock row 3 of warehouse 1
  tpcc::GeneratedRequest g;
  g.kind = tpcc::kNewOrder;
  g.dst = amcast::dst_of(0) | amcast::dst_of(1);
  g.set(req);

  sim::Nanos multi_latency = 0;
  f.run(g, &multi_latency);

  // The stock row of warehouse 1 now lives at partition 0 (the executor)
  // and was updated there.
  const core::Oid soid = tpcc::make_oid(tpcc::Table::kStock, 1, 0, 3);
  EXPECT_EQ(f.sys.mapped_partition(soid), 0);
  ASSERT_TRUE(f.sys.replica(0, 0).store().exists(soid));
  const auto stock =
      tpcc::load_row<tpcc::StockRow>(f.sys.replica(0, 0).store(), soid);
  EXPECT_EQ(stock.order_cnt, 1u);
  EXPECT_EQ(stock.remote_cnt, 1u);

  // Multi-partition is substantially slower than single-partition.
  sim::Nanos single_latency = 0;
  f.run(local_new_order(0), &single_latency);
  // Structural gap; the paper's ~10x appears at load (bench/fig5).
  EXPECT_GT(multi_latency, static_cast<sim::Nanos>(1.7 * static_cast<double>(single_latency)));
}

TEST(Dynastar, MovedRowsMakeLaterHomeRequestsMultiPartition) {
  // After stock of warehouse 1 migrates to partition 0, a NewOrder homed
  // at warehouse 1 touching that row must now involve partition 0 again
  // (migration thrash — DynaStar's weakness on partitioned workloads).
  Fixture f(2);
  tpcc::NewOrderReq req;
  req.w_id = 0;
  req.d_id = 1;
  req.c_id = 1;
  req.ol_cnt = 5;
  for (std::uint32_t i = 0; i < req.ol_cnt; ++i) req.items[i] = {i + 1, 1, 2};
  tpcc::GeneratedRequest g;
  g.kind = tpcc::kNewOrder;
  g.dst = amcast::dst_of(0) | amcast::dst_of(1);
  g.set(req);
  f.run(g);  // moves w1 stock rows 1..5 to partition 0

  // Now a w1-homed NewOrder on the same items: rows must move back.
  tpcc::NewOrderReq req2;
  req2.w_id = 1;
  req2.d_id = 1;
  req2.c_id = 1;
  req2.ol_cnt = 5;
  for (std::uint32_t i = 0; i < req2.ol_cnt; ++i) req2.items[i] = {i + 1, 1, 2};
  tpcc::GeneratedRequest g2;
  g2.kind = tpcc::kNewOrder;
  g2.dst = amcast::dst_of(1);
  g2.set(req2);
  f.run(g2);

  const core::Oid soid = tpcc::make_oid(tpcc::Table::kStock, 1, 0, 3);
  EXPECT_EQ(f.sys.mapped_partition(soid), 1);
  const auto stock =
      tpcc::load_row<tpcc::StockRow>(f.sys.replica(1, 0).store(), soid);
  EXPECT_EQ(stock.order_cnt, 2u);  // updated by both orders
}

TEST(Dynastar, PaymentRemoteCustomerMovesRow) {
  Fixture f(2);
  tpcc::PaymentReq req{0, 1, /*c_w=*/1, /*c_d=*/2, /*c_id=*/3, 80.0};
  tpcc::GeneratedRequest g;
  g.kind = tpcc::kPayment;
  g.dst = amcast::dst_of(0) | amcast::dst_of(1);
  g.set(req);
  f.run(g);

  const core::Oid coid = tpcc::make_oid(tpcc::Table::kCustomer, 1, 2, 3);
  EXPECT_EQ(f.sys.mapped_partition(coid), 0);
  const auto cust =
      tpcc::load_row<tpcc::CustomerRow>(f.sys.replica(0, 0).store(), coid);
  EXPECT_DOUBLE_EQ(cust.balance, -90.0);
}

TEST(Dynastar, ClosedLoopMixCompletes) {
  Fixture f(2);
  tpcc::WorkloadConfig wl;
  wl.partitions = 2;
  wl.scale = f.scale;
  auto gen = std::make_shared<tpcc::WorkloadGen>(wl, 0, 11);
  f.sim.spawn([](Client& c, std::shared_ptr<tpcc::WorkloadGen> g)
                  -> Task<void> {
    for (int i = 0; i < 30; ++i) {
      auto req = g->next();
      co_await c.submit(req.dst, req.kind, req.payload);
    }
  }(*f.client, gen));
  f.sim.run_for(sim::sec(1));
  EXPECT_EQ(f.client->completed(), 30u);
  EXPECT_GT(f.client->latencies().mean(), static_cast<double>(sim::us(200)));
}

}  // namespace
}  // namespace heron::dynastar
