// Tests for the atomic multicast substrate. These validate, empirically,
// the five properties Heron consumes (§II-B of the paper) plus timestamp
// uniqueness/monotonicity, under single- and multi-group workloads, and
// under leader failover.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "amcast/system.hpp"
#include "rdma/fabric.hpp"
#include "rdma/pod.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace heron::amcast {
namespace {

using sim::Nanos;
using sim::Simulator;
using sim::Task;
using sim::us;

struct DeliveryLog {
  // per (group, rank): the sequence of deliveries
  std::map<std::pair<GroupId, int>, std::vector<Delivery>> by_replica;

  void attach(Simulator& sim, System& sys) {
    for (GroupId g = 0; g < sys.group_count(); ++g) {
      for (int r = 0; r < sys.replicas_per_group(); ++r) {
        sim.spawn(consume(sys.endpoint(g, r), by_replica[{g, r}]));
      }
    }
  }

  static Task<void> consume(Endpoint& ep, std::vector<Delivery>& out) {
    while (true) {
      Delivery d = co_await ep.next_delivery();
      out.push_back(d);
    }
  }

  [[nodiscard]] std::set<MsgUid> uids_at(GroupId g, int r) const {
    std::set<MsgUid> out;
    auto it = by_replica.find({g, r});
    if (it == by_replica.end()) return out;
    for (const auto& d : it->second) out.insert(d.uid);
    return out;
  }
};

struct Cluster {
  Simulator sim;
  rdma::Fabric fabric;
  System sys;
  DeliveryLog log;

  Cluster(int groups, int replicas, Config cfg = {})
      : fabric(sim, rdma::LatencyModel{}, /*seed=*/1234),
        sys(fabric, groups, replicas, cfg) {
    sys.start();
    log.attach(sim, sys);
  }
};

// --- encoding regression tests ---------------------------------------

TEST(AmcastTypes, UidEncodingNeverCollidesWithSentinel) {
  // uid 0 is the inbox empty-slot / stale-waiter sentinel. The unbiased
  // encoding mapped (client 0, seq 0) onto it, silently dropping that
  // message; the biased encoding must keep every valid pair nonzero.
  EXPECT_NE(make_uid(0, 0), MsgUid{0});

  // Round-trips, including the corners.
  const std::pair<std::uint32_t, std::uint32_t> cases[] = {
      {0, 0}, {0, 1}, {0, 0xffffffffu}, {1, 0}, {17, 42},
      {0xfffffffeu, 0}, {0xfffffffeu, 0xffffffffu}};
  for (const auto& [client, seq] : cases) {
    const MsgUid uid = make_uid(client, seq);
    EXPECT_NE(uid, MsgUid{0}) << client << "," << seq;
    EXPECT_EQ(uid_client(uid), client);
    EXPECT_EQ(uid_seq(uid), seq);
  }

  // The bias preserves per-client uid order.
  EXPECT_LT(make_uid(3, 5), make_uid(3, 6));
  EXPECT_LT(make_uid(3, 0xffffffffu), make_uid(4, 0));
}

TEST(AmcastTypes, PackTsBoundary) {
  // The largest representable clock packs exactly to the top of the
  // 64-bit range; anything below stays strictly monotone.
  EXPECT_EQ(pack_ts(kMaxTsClock, static_cast<GroupId>(kMaxGroups - 1)),
            ~std::uint64_t{0});
  EXPECT_EQ(ts_clock(pack_ts(kMaxTsClock, 5)), kMaxTsClock);
  EXPECT_EQ(ts_group(pack_ts(kMaxTsClock, 5)), 5);
  EXPECT_LT(pack_ts(kMaxTsClock - 1, static_cast<GroupId>(kMaxGroups - 1)),
            pack_ts(kMaxTsClock, 0));

#ifdef NDEBUG
  // Release builds saturate instead of silently wrapping: pre-fix,
  // pack_ts(kMaxTsClock + 1, 0) wrapped to a tiny value and broke
  // timestamp monotonicity.
  EXPECT_EQ(pack_ts(kMaxTsClock + 1, 0), pack_ts(kMaxTsClock, 0));
  EXPECT_GE(pack_ts(kMaxTsClock + 1, 5), pack_ts(kMaxTsClock, 0));
#else
  EXPECT_DEATH(pack_ts(kMaxTsClock + 1, 5), "kMaxTsClock");
#endif
}

TEST(Amcast, ClientZeroFirstSequenceIsDeliverable) {
  // End-to-end regression for the sentinel collision: a message carrying
  // uid make_uid(0, 0) written straight into the inbox rings must still
  // be ordered and delivered. Pre-fix its uid was 0, so the inbox scan
  // treated the slot as empty forever.
  Cluster c(1, 3);
  auto& client = c.sys.add_client();  // client id 0

  WireMessage msg;
  msg.uid = make_uid(0, 0);
  msg.ring_seq = 1;
  msg.dst = dst_of(0);
  const std::vector<std::uint8_t> payload{9, 8, 7};
  msg.set_payload(std::as_bytes(std::span(payload)));

  c.sim.spawn([](Cluster& cl, ClientEndpoint& from,
                 WireMessage m) -> Task<void> {
    for (int r = 0; r < 3; ++r) {
      Endpoint& ep = cl.sys.endpoint(0, r);
      cl.fabric.write_async(
          from.node().id(),
          rdma::RAddr{ep.node().id(), ep.inbox_mr(),
                      ep.inbox_slot_offset(0, m.ring_seq)},
          rdma::pod_bytes(m));
    }
    co_return;
  }(c, client, msg));
  c.sim.run_for(sim::ms(5));

  for (int r = 0; r < 3; ++r) {
    const auto& seq = c.log.by_replica[{0, r}];
    ASSERT_EQ(seq.size(), 1u) << "replica " << r;
    EXPECT_EQ(seq[0].uid, make_uid(0, 0));
    EXPECT_EQ(seq[0].payload_len, 3u);
  }
}

// --- basic single-group behaviour ------------------------------------

TEST(Amcast, SingleGroupSingleMessageDeliversEverywhere) {
  Cluster c(1, 3);
  auto& client = c.sys.add_client();
  const std::vector<std::uint8_t> payload{1, 2, 3};

  c.sim.spawn([](ClientEndpoint& cl, const std::vector<std::uint8_t>& p)
                  -> Task<void> {
    co_await cl.multicast(dst_of(0), std::as_bytes(std::span(p)));
  }(client, payload));
  c.sim.run_for(sim::ms(5));

  for (int r = 0; r < 3; ++r) {
    const auto& seq = c.log.by_replica[{0, r}];
    ASSERT_EQ(seq.size(), 1u) << "replica " << r;
    EXPECT_EQ(seq[0].payload_len, 3u);
    EXPECT_EQ(static_cast<std::uint8_t>(seq[0].payload[1]), 2);
    EXPECT_EQ(seq[0].dst, dst_of(0));
  }
  // All replicas agree on the timestamp.
  EXPECT_EQ((c.log.by_replica[{0, 0}][0].tmp), (c.log.by_replica[{0, 1}][0].tmp));
  EXPECT_EQ((c.log.by_replica[{0, 0}][0].tmp), (c.log.by_replica[{0, 2}][0].tmp));
}

TEST(Amcast, SingleGroupOrdersManyClientsIdentically) {
  Cluster c(1, 3);
  constexpr int kClients = 8;
  constexpr int kPerClient = 20;
  for (int i = 0; i < kClients; ++i) {
    auto& client = c.sys.add_client();
    c.sim.spawn([](Simulator& sim, ClientEndpoint& cl) -> Task<void> {
      for (int k = 0; k < kPerClient; ++k) {
        std::uint32_t v = static_cast<std::uint32_t>(k);
        co_await cl.multicast(dst_of(0), std::as_bytes(std::span(&v, 1)));
        co_await sim.sleep(us(30));  // pace below ring capacity
      }
    }(c.sim, client));
  }
  c.sim.run_for(sim::ms(20));

  const auto& seq0 = c.log.by_replica[{0, 0}];
  ASSERT_EQ(seq0.size(), static_cast<size_t>(kClients * kPerClient));
  for (int r = 1; r < 3; ++r) {
    const auto& seq = c.log.by_replica[{0, r}];
    ASSERT_EQ(seq.size(), seq0.size()) << "replica " << r;
    for (size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i].uid, seq0[i].uid) << "divergence at " << i;
      EXPECT_EQ(seq[i].tmp, seq0[i].tmp);
    }
  }
}

TEST(Amcast, TimestampsStrictlyIncreaseInDeliveryOrder) {
  Cluster c(2, 3);
  for (int i = 0; i < 4; ++i) {
    auto& client = c.sys.add_client();
    c.sim.spawn([](Simulator& sim, ClientEndpoint& cl, int idx) -> Task<void> {
      sim::Rng rng(static_cast<std::uint64_t>(idx) + 99);
      for (int k = 0; k < 15; ++k) {
        const DstMask dst =
            (rng.bounded(3) == 0) ? (dst_of(0) | dst_of(1))
                                  : dst_of(static_cast<GroupId>(rng.bounded(2)));
        std::uint32_t v = static_cast<std::uint32_t>(k);
        co_await cl.multicast(dst, std::as_bytes(std::span(&v, 1)));
        co_await sim.sleep(us(40));
      }
    }(c.sim, client, i));
  }
  c.sim.run_for(sim::ms(20));

  for (const auto& [key, seq] : c.log.by_replica) {
    for (size_t i = 1; i < seq.size(); ++i) {
      EXPECT_LT(seq[i - 1].tmp, seq[i].tmp)
          << "group " << key.first << " rank " << key.second << " pos " << i;
    }
  }
}

// --- the real content: multi-group ordering properties ----------------

struct PropertyHarness {
  // Runs a randomized workload and then checks all properties.
  static void run(int groups, int replicas, int clients, int per_client,
                  std::uint64_t seed, bool crash_leader = false) {
    Config cfg;
    Cluster c(groups, replicas, cfg);
    std::vector<std::pair<MsgUid, DstMask>> sent;

    for (int i = 0; i < clients; ++i) {
      auto& client = c.sys.add_client();
      c.sim.spawn([](Simulator& sim, ClientEndpoint& cl, int idx,
                     std::uint64_t sd, int n, int ngroups,
                     std::vector<std::pair<MsgUid, DstMask>>& sent_log)
                      -> Task<void> {
        sim::Rng rng(sd + static_cast<std::uint64_t>(idx) * 7919);
        for (int k = 0; k < n; ++k) {
          DstMask dst = 0;
          // ~30% multi-group, like TPC-C's multi-partition share (scaled up)
          if (rng.bounded(10) < 3 && ngroups > 1) {
            const auto a = static_cast<GroupId>(rng.bounded(
                static_cast<std::uint64_t>(ngroups)));
            auto b = static_cast<GroupId>(
                rng.bounded(static_cast<std::uint64_t>(ngroups)));
            if (b == a) b = static_cast<GroupId>((a + 1) % ngroups);
            dst = dst_of(a) | dst_of(b);
          } else {
            dst = dst_of(static_cast<GroupId>(
                rng.bounded(static_cast<std::uint64_t>(ngroups))));
          }
          std::uint32_t v = static_cast<std::uint32_t>(k);
          const MsgUid uid =
              co_await cl.multicast(dst, std::as_bytes(std::span(&v, 1)));
          sent_log.emplace_back(uid, dst);
          co_await sim.sleep(us(50));  // paced: rings never overrun
        }
      }(c.sim, client, i, seed, per_client, groups, sent));
    }

    if (crash_leader) {
      c.sim.schedule(sim::ms(1), [&c] {
        c.sys.endpoint(0, 0).node().crash();
      });
    }

    c.sim.run_for(sim::ms(60));
    check(c, sent, crash_leader);
  }

  static void check(Cluster& c,
                    const std::vector<std::pair<MsgUid, DstMask>>& sent,
                    bool crashed) {
    const int groups = c.sys.group_count();
    const int replicas = c.sys.replicas_per_group();

    // Validity: every multicast message is delivered by every correct
    // replica of every destination group.
    for (const auto& [uid, dst] : sent) {
      for (GroupId g = 0; g < groups; ++g) {
        if (!dst_contains(dst, g)) continue;
        for (int r = 0; r < replicas; ++r) {
          if (!c.sys.endpoint(g, r).node().alive()) continue;
          EXPECT_TRUE(c.log.uids_at(g, r).contains(uid))
              << "uid " << uid << " missing at group " << g << " rank " << r;
        }
      }
    }

    std::map<MsgUid, std::uint64_t> ts_of;
    for (const auto& [key, seq] : c.log.by_replica) {
      std::set<MsgUid> seen_here;
      for (const auto& d : seq) {
        // Integrity: at-most-once per replica, and only at destinations.
        EXPECT_TRUE(seen_here.insert(d.uid).second)
            << "duplicate delivery of " << d.uid;
        EXPECT_TRUE(dst_contains(d.dst, key.first))
            << "delivered outside destination set";
        // Timestamp consistency across all replicas.
        auto [it, inserted] = ts_of.emplace(d.uid, d.tmp);
        if (!inserted) EXPECT_EQ(it->second, d.tmp);
      }
      // Delivery in timestamp order (also implies uniform acyclic order:
      // the timestamp order is a global total order).
      for (size_t i = 1; i < seq.size(); ++i) {
        EXPECT_LT(seq[i - 1].tmp, seq[i].tmp);
      }
    }

    // Uniform agreement within each group: correct replicas of a group
    // deliver the same sequence (a crashed replica's log must be a prefix).
    for (GroupId g = 0; g < groups; ++g) {
      const std::vector<Delivery>* longest = nullptr;
      for (int r = 0; r < replicas; ++r) {
        const auto& seq = c.log.by_replica[{g, r}];
        if (!longest || seq.size() > longest->size()) longest = &seq;
      }
      for (int r = 0; r < replicas; ++r) {
        const auto& seq = c.log.by_replica[{g, r}];
        const bool alive = c.sys.endpoint(g, r).node().alive();
        if (alive) {
          ASSERT_EQ(seq.size(), longest->size())
              << "correct replica behind in group " << g;
        }
        for (size_t i = 0; i < seq.size(); ++i) {
          EXPECT_EQ(seq[i].uid, (*longest)[i].uid)
              << "group " << g << " rank " << r << " diverges at " << i;
        }
      }
    }

    // Uniform prefix order across groups follows from the shared unique
    // timestamps plus per-replica timestamp-ordered delivery, which we
    // asserted above.
    if (!crashed) {
      // Sanity: something actually ran.
      EXPECT_FALSE(sent.empty());
    }
  }
};

TEST(Amcast, PropertiesTwoGroups) {
  PropertyHarness::run(/*groups=*/2, /*replicas=*/3, /*clients=*/6,
                       /*per_client=*/25, /*seed=*/1);
}

TEST(Amcast, PropertiesFourGroups) {
  PropertyHarness::run(/*groups=*/4, /*replicas=*/3, /*clients=*/8,
                       /*per_client=*/20, /*seed=*/2);
}

TEST(Amcast, PropertiesFiveReplicasPerGroup) {
  PropertyHarness::run(/*groups=*/2, /*replicas=*/5, /*clients=*/6,
                       /*per_client=*/15, /*seed=*/3);
}

TEST(Amcast, PropertiesManySeeds) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    PropertyHarness::run(/*groups=*/3, /*replicas=*/3, /*clients=*/4,
                         /*per_client=*/12, seed);
  }
}

// --- failover ---------------------------------------------------------

TEST(AmcastFailover, LeaderCrashStillDeliversEverything) {
  PropertyHarness::run(/*groups=*/2, /*replicas=*/3, /*clients=*/4,
                       /*per_client=*/25, /*seed=*/5, /*crash_leader=*/true);
}

TEST(AmcastFailover, NewLeaderTakesOverAndServesNewMessages) {
  Cluster c(1, 3);
  auto& client = c.sys.add_client();

  // Send one message, crash the leader, then send another.
  c.sim.spawn([](Simulator& sim, Cluster& cl, ClientEndpoint& cli)
                  -> Task<void> {
    std::uint32_t v = 1;
    co_await cli.multicast(dst_of(0), std::as_bytes(std::span(&v, 1)));
    co_await sim.sleep(sim::ms(1));
    cl.sys.endpoint(0, 0).node().crash();
    co_await sim.sleep(sim::ms(5));  // allow suspicion + takeover
    v = 2;
    co_await cli.multicast(dst_of(0), std::as_bytes(std::span(&v, 1)));
  }(c.sim, c, client));
  c.sim.run_for(sim::ms(30));

  // Replicas 1 and 2 must have delivered both messages, in order.
  for (int r = 1; r < 3; ++r) {
    const auto& seq = c.log.by_replica[{0, r}];
    ASSERT_EQ(seq.size(), 2u) << "rank " << r;
    std::uint32_t first, second;
    std::memcpy(&first, seq[0].payload.data(), 4);
    std::memcpy(&second, seq[1].payload.data(), 4);
    EXPECT_EQ(first, 1u);
    EXPECT_EQ(second, 2u);
  }
  // Exactly one of them is the new leader.
  const bool l1 = c.sys.endpoint(0, 1).is_leader();
  const bool l2 = c.sys.endpoint(0, 2).is_leader();
  EXPECT_TRUE(l1 || l2);
}

TEST(AmcastFailover, MessageInFlightAtCrashIsNotLost) {
  // The client writes to all replicas, so even if the leader dies before
  // proposing, the new leader finds the message in its inbox.
  Cluster c(1, 3);
  auto& client = c.sys.add_client();

  c.sim.spawn([](Simulator& sim, Cluster& cl, ClientEndpoint& cli)
                  -> Task<void> {
    // Crash the leader at the instant the message is still in flight.
    cl.sys.endpoint(0, 0).node().crash();
    std::uint32_t v = 42;
    co_await cli.multicast(dst_of(0), std::as_bytes(std::span(&v, 1)));
    co_await sim.sleep(sim::ms(1));
  }(c.sim, c, client));
  c.sim.run_for(sim::ms(30));

  for (int r = 1; r < 3; ++r) {
    const auto& seq = c.log.by_replica[{0, r}];
    ASSERT_EQ(seq.size(), 1u) << "rank " << r;
  }
}

// --- latency sanity ----------------------------------------------------

TEST(Amcast, SingleGroupDeliveryLatencyIsMicroseconds) {
  Cluster c(1, 3);
  auto& client = c.sys.add_client();
  Nanos sent_at = 0;
  c.sim.spawn([](Simulator& sim, ClientEndpoint& cl, Nanos& t) -> Task<void> {
    t = sim.now();
    std::uint32_t v = 7;
    co_await cl.multicast(dst_of(0), std::as_bytes(std::span(&v, 1)));
  }(c.sim, client, sent_at));
  c.sim.run_for(sim::ms(5));

  ASSERT_EQ((c.log.by_replica[{0, 0}].size()), 1u);
  // Leader delivery happens within tens of microseconds (the paper's
  // ordering stage is ~18us); our pre-calibration bound is generous.
  EXPECT_LT(c.sim.now(), sim::ms(5) + 1);
  // (Exact latency calibration is exercised by bench/fig6.)
}

TEST(Amcast, MultiGroupCostsMoreThanSingleGroup) {
  auto measure = [](DstMask dst, int groups) {
    Cluster c(groups, 3);
    auto& client = c.sys.add_client();
    Nanos delivered_at = 0;
    c.sim.spawn([](Simulator& sim, Cluster& cl, ClientEndpoint& cli,
                   DstMask d, Nanos& out) -> Task<void> {
      std::uint32_t v = 7;
      co_await cli.multicast(d, std::as_bytes(std::span(&v, 1)));
      // Wait until the first destination group's leader delivers.
      while (cl.sys.endpoint(0, 0).delivered_count() == 0) {
        co_await sim.sleep(us(1));
      }
      out = sim.now();
    }(c.sim, c, client, dst, delivered_at));
    c.sim.run_for(sim::ms(10));
    return delivered_at;
  };

  const Nanos single = measure(dst_of(0), 2);
  const Nanos dual = measure(dst_of(0) | dst_of(1), 2);
  EXPECT_GT(dual, single);
}

}  // namespace
}  // namespace heron::amcast
