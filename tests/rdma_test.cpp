// Unit tests for the simulated RDMA fabric: one-sided read/write
// semantics, latency model, in-order channels, crash behaviour and the
// wake-on-write notifier.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rdma/fabric.hpp"
#include "sim/simulator.hpp"

namespace heron::rdma {
namespace {

using sim::Nanos;
using sim::Simulator;
using sim::Task;
using sim::us;

std::span<const std::byte> as_bytes(const std::vector<std::uint8_t>& v) {
  return std::as_bytes(std::span(v));
}

struct Env {
  Simulator sim;
  LatencyModel model;
  Fabric fabric;
  Node* a;
  Node* b;
  MrId mr_b;

  explicit Env(LatencyModel m = {}) : model(m), fabric(sim, m) {
    a = &fabric.add_node();
    b = &fabric.add_node();
    mr_b = b->register_region(4096);
  }
};

TEST(Fabric, WriteThenReadRoundTrip) {
  Env env;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  std::vector<std::byte> readback(5);
  Status write_status = Status::kBadAddress;
  Status read_status = Status::kBadAddress;

  env.sim.spawn([](Env& e, const std::vector<std::uint8_t>& p,
                   std::vector<std::byte>& out, Status& ws,
                   Status& rs) -> Task<void> {
    const RAddr addr{e.b->id(), e.mr_b, 100};
    ws = (co_await e.fabric.write(e.a->id(), addr, as_bytes(p))).status;
    rs = (co_await e.fabric.read(e.a->id(), addr, out)).status;
  }(env, payload, readback, write_status, read_status));
  env.sim.run();

  EXPECT_EQ(write_status, Status::kOk);
  EXPECT_EQ(read_status, Status::kOk);
  for (size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(static_cast<std::uint8_t>(readback[i]), payload[i]);
  }
}

TEST(Fabric, ReadLatencyMatchesModel) {
  Env env;
  Nanos elapsed = 0;
  env.sim.spawn([](Env& e, Nanos& out) -> Task<void> {
    std::vector<std::byte> buf(8);
    const Nanos start = e.sim.now();
    co_await e.fabric.read(e.a->id(), RAddr{e.b->id(), e.mr_b, 0}, buf);
    out = e.sim.now() - start;
  }(env, elapsed));
  env.sim.run();

  const Nanos expected = env.model.post_overhead + env.model.read_base +
                         env.model.transfer_time(8);
  EXPECT_EQ(elapsed, expected);
}

TEST(Fabric, WriteLatencyIncludesBandwidthTerm) {
  Env env;
  MrId big_mr = env.b->register_region(64 * 1024);
  Nanos small_lat = 0, big_lat = 0;
  env.sim.spawn([](Env& e, MrId mr, Nanos& small_out,
                   Nanos& big_out) -> Task<void> {
    std::vector<std::uint8_t> small(8), big(32 * 1024);
    Nanos start = e.sim.now();
    co_await e.fabric.write(e.a->id(), RAddr{e.b->id(), mr, 0},
                            as_bytes(small));
    small_out = e.sim.now() - start;
    start = e.sim.now();
    co_await e.fabric.write(e.a->id(), RAddr{e.b->id(), mr, 0},
                            as_bytes(big));
    big_out = e.sim.now() - start;
  }(env, big_mr, small_lat, big_lat));
  env.sim.run();
  // 32KB at 25Gbps adds ~10.5us over the small write.
  EXPECT_GT(big_lat, small_lat);
  EXPECT_NEAR(static_cast<double>(big_lat - small_lat),
              static_cast<double>(env.model.transfer_time(32 * 1024)),
              static_cast<double>(sim::us(1)));
}

TEST(Fabric, OutOfBoundsAccessReturnsBadAddress) {
  Env env;
  Status st = Status::kOk;
  env.sim.spawn([](Env& e, Status& out) -> Task<void> {
    std::vector<std::byte> buf(64);
    out = (co_await e.fabric.read(e.a->id(),
                                  RAddr{e.b->id(), e.mr_b, 4096 - 32}, buf))
              .status;
  }(env, st));
  env.sim.run();
  EXPECT_EQ(st, Status::kBadAddress);
}

TEST(Fabric, ReadFromCrashedNodeReturnsRemoteFailure) {
  Env env;
  Status st = Status::kOk;
  Nanos elapsed = 0;
  env.b->crash();
  env.sim.spawn([](Env& e, Status& out, Nanos& dur) -> Task<void> {
    std::vector<std::byte> buf(8);
    const Nanos start = e.sim.now();
    out = (co_await e.fabric.read(e.a->id(), RAddr{e.b->id(), e.mr_b, 0}, buf))
              .status;
    dur = e.sim.now() - start;
  }(env, st, elapsed));
  env.sim.run();
  EXPECT_EQ(st, Status::kRemoteFailure);
  // Error is detected after the configured failure-detect latency.
  EXPECT_GE(elapsed, env.model.failure_detect);
}

TEST(Fabric, WriteToCrashedNodeDoesNotMutateMemory) {
  Env env;
  env.b->crash();
  Status st = Status::kOk;
  env.sim.spawn([](Env& e, Status& out) -> Task<void> {
    std::vector<std::uint8_t> payload{9, 9, 9};
    out = (co_await e.fabric.write(e.a->id(), RAddr{e.b->id(), e.mr_b, 0},
                                   as_bytes(payload)))
              .status;
  }(env, st));
  env.sim.run();
  EXPECT_EQ(st, Status::kRemoteFailure);
  EXPECT_EQ(static_cast<std::uint8_t>(env.b->region(env.mr_b).bytes()[0]), 0);
}

TEST(Fabric, RestartAfterCrashServesReadsAgain) {
  Env env;
  env.b->crash();
  env.b->restart();
  Status st = Status::kRemoteFailure;
  env.sim.spawn([](Env& e, Status& out) -> Task<void> {
    std::vector<std::byte> buf(8);
    out = (co_await e.fabric.read(e.a->id(), RAddr{e.b->id(), e.mr_b, 0}, buf))
              .status;
  }(env, st));
  env.sim.run();
  EXPECT_EQ(st, Status::kOk);
}

TEST(Fabric, AsyncWriteDeliversAndNotifies) {
  Env env;
  int notified = 0;
  env.sim.spawn([](Env& e, int& n) -> Task<void> {
    co_await e.b->region(e.mr_b).on_write().wait();
    ++n;
  }(env, notified));
  env.sim.run();
  EXPECT_EQ(notified, 0);

  const std::vector<std::uint8_t> payload{7};
  env.fabric.write_async(env.a->id(), RAddr{env.b->id(), env.mr_b, 10},
                         as_bytes(payload));
  env.sim.run();
  EXPECT_EQ(notified, 1);
  EXPECT_EQ(static_cast<std::uint8_t>(env.b->region(env.mr_b).bytes()[10]), 7);
}

TEST(Fabric, AsyncWriteToCrashedNodeIsDropped) {
  Env env;
  env.b->crash();
  const std::vector<std::uint8_t> payload{7};
  env.fabric.write_async(env.a->id(), RAddr{env.b->id(), env.mr_b, 10},
                         as_bytes(payload));
  env.sim.run();
  EXPECT_EQ(static_cast<std::uint8_t>(env.b->region(env.mr_b).bytes()[10]), 0);
  EXPECT_EQ(env.fabric.stats().failures, 1u);
}

TEST(Fabric, InOrderDeliveryOnChannel) {
  // A large write posted before a small write must still land first
  // (RC queue pairs deliver in order). Waiters are predicate-based, the
  // same pattern the Heron replicas use over coordination memory.
  Env env;
  MrId big_mr = env.b->register_region(1 << 20);
  std::vector<std::uint8_t> big(256 * 1024, 0xAA);
  std::vector<std::uint8_t> small{0xBB};

  Nanos big_seen_at = -1;
  Nanos small_seen_at = -1;
  env.sim.spawn([](Env& e, MrId mr, Nanos& t_big, Nanos& t_small)
                    -> Task<void> {
    auto& region = e.b->region(mr);
    co_await sim::wait_until(region.on_write(), [&region] {
      return static_cast<std::uint8_t>(region.bytes()[0]) == 0xAA;
    });
    t_big = e.sim.now();
    co_await sim::wait_until(region.on_write(), [&region] {
      return static_cast<std::uint8_t>(region.bytes()[512 * 1024]) == 0xBB;
    });
    t_small = e.sim.now();
  }(env, big_mr, big_seen_at, small_seen_at));

  env.fabric.write_async(env.a->id(), RAddr{env.b->id(), big_mr, 0},
                         as_bytes(big));
  env.fabric.write_async(env.a->id(), RAddr{env.b->id(), big_mr, 512 * 1024},
                         as_bytes(small));
  env.sim.run();

  // Both landed, and the small write did not overtake the big one.
  ASSERT_GE(big_seen_at, 0);
  ASSERT_GE(small_seen_at, 0);
  EXPECT_LE(big_seen_at, small_seen_at);
  // The small write alone would have arrived far earlier than the big
  // transfer takes; in-order channels must have held it back.
  EXPECT_GE(small_seen_at, env.model.transfer_time(256 * 1024));
}

TEST(Fabric, NicSerializesBackToBackSends) {
  // Two concurrent writers on the same initiator NIC serialize their
  // departures; total elapsed exceeds a single write's latency.
  Env env;
  MrId big_mr = env.b->register_region(1 << 20);
  Nanos t_single = 0, t_double = 0;

  {
    Env e1;
    MrId mr = e1.b->register_region(1 << 20);
    e1.sim.spawn([](Env& e, MrId m, Nanos& out) -> Task<void> {
      std::vector<std::uint8_t> big(256 * 1024, 1);
      const Nanos start = e.sim.now();
      co_await e.fabric.write(e.a->id(), RAddr{e.b->id(), m, 0}, as_bytes(big));
      out = e.sim.now() - start;
    }(e1, mr, t_single));
    e1.sim.run();
  }

  std::vector<std::uint8_t> big(256 * 1024, 1);
  int done = 0;
  for (int i = 0; i < 2; ++i) {
    env.sim.spawn([](Env& e, MrId m, const std::vector<std::uint8_t>& payload,
                     int offset, int& d, Nanos& out) -> Task<void> {
      co_await e.fabric.write(e.a->id(),
                              RAddr{e.b->id(), m, static_cast<std::uint64_t>(offset)},
                              as_bytes(payload));
      if (++d == 2) out = e.sim.now();
    }(env, big_mr, big, i * 300 * 1024, done, t_double));
  }
  env.sim.run();
  EXPECT_GT(t_double, t_single + env.model.transfer_time(128 * 1024));
}

TEST(Fabric, StatsCountOps) {
  Env env;
  env.sim.spawn([](Env& e) -> Task<void> {
    std::vector<std::byte> buf(16);
    std::vector<std::uint8_t> payload(32);
    co_await e.fabric.read(e.a->id(), RAddr{e.b->id(), e.mr_b, 0}, buf);
    co_await e.fabric.write(e.a->id(), RAddr{e.b->id(), e.mr_b, 0},
                            as_bytes(payload));
  }(env));
  env.sim.run();
  EXPECT_EQ(env.fabric.stats().reads, 1u);
  EXPECT_EQ(env.fabric.stats().writes, 1u);
  EXPECT_EQ(env.fabric.stats().read_bytes, 16u);
  EXPECT_EQ(env.fabric.stats().write_bytes, 32u);
}

TEST(Fabric, JitterKeepsDeterminismPerSeed) {
  LatencyModel jittery;
  jittery.jitter_sigma = 0.2;

  auto run_once = [&]() {
    Simulator sim;
    Fabric fabric(sim, jittery, /*seed=*/7);
    Node& a = fabric.add_node();
    Node& b = fabric.add_node();
    MrId mr = b.register_region(64);
    Nanos total = 0;
    sim.spawn([](Simulator& s, Fabric& f, Node& from, Node& to, MrId m,
                 Nanos& out) -> Task<void> {
      std::vector<std::byte> buf(8);
      for (int i = 0; i < 10; ++i) {
        co_await f.read(from.id(), RAddr{to.id(), m, 0}, buf);
      }
      out = s.now();
    }(sim, fabric, a, b, mr, total));
    sim.run();
    return total;
  };

  const Nanos first = run_once();
  const Nanos second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_GT(first, 0);
}

TEST(Fabric, ConcurrentReadersObserveAtomicSnapshot) {
  // Two 8-byte slots written in one RDMA write are observed together:
  // a reader never sees a torn pair. We interleave a writer flipping
  // both slots between (1,1) and (2,2) with readers.
  Env env;
  struct Pair {
    std::uint64_t a;
    std::uint64_t b;
  };
  bool torn = false;

  env.sim.spawn([](Env& e, bool& torn_flag) -> Task<void> {
    for (int i = 0; i < 50; ++i) {
      Pair p{};
      std::span<std::byte> buf(reinterpret_cast<std::byte*>(&p), sizeof(p));
      co_await e.fabric.read(e.a->id(), RAddr{e.b->id(), e.mr_b, 0}, buf);
      if (p.a != p.b) torn_flag = true;
    }
  }(env, torn));

  env.sim.spawn([](Env& e) -> Task<void> {
    Node& writer = e.fabric.add_node();
    for (std::uint64_t v = 1; v <= 100; ++v) {
      Pair p{v, v};
      co_await e.fabric.write(
          writer.id(), RAddr{e.b->id(), e.mr_b, 0},
          std::as_bytes(std::span(&p, 1)));
    }
  }(env));

  env.sim.run();
  EXPECT_FALSE(torn);
}

TEST(LatencyModel, TransferTimeRoundsUpToWholeNanos) {
  LatencyModel m;  // 3.125 bytes/ns
  EXPECT_EQ(m.transfer_time(0), 0);
  // Sub-byte-time transfers must cost at least 1 ns (truncation used to
  // charge 0, letting tiny writes pipeline for free).
  EXPECT_EQ(m.transfer_time(1), 1);
  EXPECT_EQ(m.transfer_time(3), 1);
  // Exact multiples stay exact; fractional times round up, never down.
  EXPECT_EQ(m.transfer_time(25), 8);
  EXPECT_EQ(m.transfer_time(26), 9);

  LatencyModel fast = m;
  fast.bandwidth_bytes_per_ns = 8.0;
  EXPECT_EQ(fast.transfer_time(16), 2);
  EXPECT_EQ(fast.transfer_time(17), 3);
}

TEST(Fabric, ResetStatsClearsCountersAndHistograms) {
  Env env;
  env.fabric.telemetry().enable_all();
  env.sim.spawn([](Env& e) -> Task<void> {
    std::vector<std::uint8_t> payload(4 * 1024);
    // Back-to-back posts on one NIC: the second waits, populating the
    // nic_queue_wait histogram.
    e.fabric.write_async(e.a->id(), RAddr{e.b->id(), e.mr_b, 0},
                         as_bytes(payload));
    co_await e.fabric.write(e.a->id(), RAddr{e.b->id(), e.mr_b, 0},
                            as_bytes(payload));
  }(env));
  env.sim.run();

  auto& hist =
      env.fabric.telemetry().metrics.histogram("rdma", "nic_queue_wait_ns");
  ASSERT_GT(env.fabric.stats().writes, 0u);
  ASSERT_GT(hist.count(), 0u);

  env.fabric.reset_stats();
  EXPECT_EQ(env.fabric.stats().writes, 0u);
  EXPECT_EQ(env.fabric.stats().write_bytes, 0u);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0);
  EXPECT_EQ(
      env.fabric.telemetry().metrics.histogram("rdma", "credit_wait_ns").count(),
      0u);
}

TEST(Fabric, CreditWindowQueuesExcessVerbs) {
  LatencyModel m;
  m.credit_window = 1;
  Simulator sim;
  Fabric fabric(sim, m);
  Node& a = fabric.add_node();
  Node& b = fabric.add_node();
  MrId mr = b.register_region(1 << 20);

  std::vector<std::uint8_t> big(128 * 1024, 0xCC);
  for (int i = 0; i < 3; ++i) {
    fabric.write_async(a.id(), RAddr{b.id(), mr, static_cast<std::uint64_t>(i) * 256 * 1024},
                       as_bytes(big));
  }
  // Only the first post holds a credit; the others sit in the software
  // queue until completions return credits.
  EXPECT_EQ(fabric.stats().credit_stalls, 2u);
  EXPECT_EQ(fabric.credit_queue_depth(a.id()), 2u);
  EXPECT_EQ(fabric.credit_stalls(a.id()), 2u);

  sim.run();
  EXPECT_EQ(fabric.credit_queue_depth(a.id()), 0u);
  // FIFO credit handoff preserved RC ordering: all three landed.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(static_cast<std::uint8_t>(
                  b.region(mr).bytes()[static_cast<std::size_t>(i) * 256 * 1024]),
              0xCC);
  }
}

TEST(Fabric, TorTopologyChargesCrossRackTraffic) {
  LatencyModel m;
  m.rack_size = 2;
  m.oversub_ratio = 4.0;  // uplink = 2 * 3.125 / 4 — slower than a NIC
  Simulator sim;
  Fabric fabric(sim, m);
  Node& a = fabric.add_node();  // rack 0
  Node& b = fabric.add_node();  // rack 0
  Node& c = fabric.add_node();  // rack 1
  MrId mr_b = b.register_region(1 << 20);
  MrId mr_c = c.register_region(1 << 20);
  EXPECT_EQ(fabric.rack_of(a.id()), 0);
  EXPECT_EQ(fabric.rack_of(c.id()), 1);

  Nanos same_rack = 0, cross_rack = 0;
  sim.spawn([](Simulator& s, Fabric& f, Node& from, Node& to_same, MrId m_same,
               Node& to_cross, MrId m_cross, Nanos& t_same,
               Nanos& t_cross) -> Task<void> {
    std::vector<std::uint8_t> payload(64 * 1024, 1);
    Nanos start = s.now();
    co_await f.write(from.id(), RAddr{to_same.id(), m_same, 0},
                     as_bytes(payload));
    t_same = s.now() - start;
    start = s.now();
    co_await f.write(from.id(), RAddr{to_cross.id(), m_cross, 0},
                     as_bytes(payload));
    t_cross = s.now() - start;
  }(sim, fabric, a, b, mr_b, c, mr_c, same_rack, cross_rack));
  sim.run();

  // Crossing racks pays the ToR hop plus the oversubscribed uplink rate.
  EXPECT_GT(cross_rack, same_rack + m.tor_hop);
  EXPECT_GT(fabric.uplink_bytes(0), 0u);
  EXPECT_GT(fabric.uplink_bytes(1), 0u);
  EXPECT_GT(fabric.uplink_busy_ns(0), 0u);
}

TEST(Fabric, IncastSerializesOnTargetRackUplink) {
  LatencyModel m;
  m.rack_size = 1;  // every node is its own rack: worst-case incast
  m.oversub_ratio = 2.0;
  Simulator sim;
  Fabric fabric(sim, m);
  Node& target = fabric.add_node();
  Node& s1 = fabric.add_node();
  Node& s2 = fabric.add_node();
  MrId mr = target.register_region(1 << 20);

  std::vector<std::uint8_t> big(128 * 1024, 2);
  fabric.write_async(s1.id(), RAddr{target.id(), mr, 0}, as_bytes(big));
  fabric.write_async(s2.id(), RAddr{target.id(), mr, 256 * 1024},
                     as_bytes(big));
  sim.run();

  // Distinct initiator NICs, but the flows converge on the target rack's
  // downlink: one of them had to wait in the FIFO.
  EXPECT_GE(fabric.stats().uplink_queued, 1u);
  EXPECT_GT(fabric.uplink_busy_ns(fabric.rack_of(target.id())), 0u);
}

TEST(Fabric, ControlLaneBypassesCongestedUplink) {
  LatencyModel m;
  m.rack_size = 1;
  m.oversub_ratio = 2.0;
  auto run_probe = [&](bool priority) {
    LatencyModel lm = m;
    lm.priority_lanes = priority;
    Simulator sim;
    Fabric fabric(sim, lm);
    Node& target = fabric.add_node();
    Node& prober = fabric.add_node();
    Node& aggressor = fabric.add_node();
    MrId mr = target.register_region(4096);
    // Saturate the target rack's link with a phantom bulk flow, then
    // issue a small control-lane probe read against it.
    fabric.inject_flow(aggressor.id(), target.id(), 4 * 1024 * 1024);
    Nanos probe_lat = 0;
    sim.spawn([](Simulator& s, Fabric& f, Node& from, Node& to, MrId reg,
                 Nanos& out) -> Task<void> {
      std::vector<std::byte> buf(8);
      const Nanos start = s.now();
      co_await f.read(from.id(), RAddr{to.id(), reg, 0}, buf,
                      Lane::kControl);
      out = s.now() - start;
    }(sim, fabric, prober, target, mr, probe_lat));
    sim.run();
    return probe_lat;
  };

  const Nanos with_priority = run_probe(true);
  const Nanos without_priority = run_probe(false);
  // With priority lanes the probe ignores the bulk flow entirely; without
  // them it queues behind ~1.3ms of phantom transfer.
  EXPECT_LT(with_priority * 10, without_priority);
}

TEST(Fabric, InjectFlowNeedsNoMemoryRegion) {
  LatencyModel m;
  m.rack_size = 1;
  Simulator sim;
  Fabric fabric(sim, m);
  Node& src = fabric.add_node();
  Node& dst = fabric.add_node();  // bare: no registered regions

  fabric.inject_flow(src.id(), dst.id(), 64 * 1024);
  sim.run();
  EXPECT_EQ(fabric.stats().injected_ops, 1u);
  EXPECT_EQ(fabric.stats().injected_bytes, 64u * 1024u);
  EXPECT_GT(fabric.uplink_bytes(fabric.rack_of(dst.id())), 0u);
}

}  // namespace
}  // namespace heron::rdma
