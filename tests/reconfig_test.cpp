// heron::reconfig integration tests: epoch-versioned layouts installed
// through ordered kWireFlagEpoch markers, the throttled background copy
// machine, dual-epoch serving, client re-routing on kStatusWrongEpoch,
// and layout-stamped durable checkpoints. The RangeKv oracles check the
// headline properties of a range move under load: no lost object, no
// duplicated object, exactly-once execution across the split.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "faultlab/history.hpp"
#include "faultlab/injector.hpp"
#include "faultlab/linear.hpp"
#include "faultlab/plan.hpp"
#include "faultlab/rangekv.hpp"
#include "rdma/fabric.hpp"
#include "reconfig/layout.hpp"

namespace heron::faultlab {
namespace {

constexpr std::uint64_t kKeys = 32;
constexpr int kReplicas = 3;

// ---------------------------------------------------------------------
// Layout unit tests
// ---------------------------------------------------------------------

TEST(Layout, UniformSplitAndOwnership) {
  const auto l = reconfig::Layout::uniform(2, kKeys);
  EXPECT_EQ(l.epoch, 1u);
  ASSERT_EQ(l.ranges.size(), 2u);
  EXPECT_EQ(l.owner_of(0), 0);
  EXPECT_EQ(l.owner_of(15), 0);
  EXPECT_EQ(l.owner_of(16), 1);
  EXPECT_EQ(l.owner_of(31), 1);
  // Oids past the keyspace belong to the last range.
  EXPECT_EQ(l.owner_of(1u << 20), 1);
}

TEST(Layout, ApplyMoveSplitsMergesAndBumpsEpoch) {
  auto l = reconfig::Layout::uniform(2, kKeys);
  l.apply_move(0, 8, 1, 2);
  EXPECT_EQ(l.epoch, 2u);
  EXPECT_FALSE(l.migration.active());
  EXPECT_EQ(l.owner_of(0), 1);
  EXPECT_EQ(l.owner_of(7), 1);
  EXPECT_EQ(l.owner_of(8), 0);
  EXPECT_EQ(l.owner_of(16), 1);
  // Moving the rest of g0's range back merges everything into one range.
  l.apply_move(8, 16, 1, 3);
  EXPECT_EQ(l.ranges.size(), 1u);
  EXPECT_EQ(l.owner_of(0), 1);
  // Epoch never regresses.
  l.apply_move(0, 4, 0, 2);
  EXPECT_EQ(l.epoch, 3u);
}

TEST(Layout, MarkerWireRoundtrip) {
  auto l = reconfig::Layout::uniform(3, 30);
  l.epoch = 7;
  l.migration = reconfig::Migration{10, 20, 1, 2};
  std::vector<std::byte> wire;
  ASSERT_TRUE(encode_marker(l, reconfig::kEpochPrepare, wire));
  EXPECT_EQ(wire.size(), reconfig::marker_bytes(l.ranges.size()));

  reconfig::Layout out;
  std::uint32_t phase = 0;
  ASSERT_TRUE(decode_marker(wire, out, phase));
  EXPECT_EQ(phase, reconfig::kEpochPrepare);
  EXPECT_EQ(out.epoch, 7u);
  ASSERT_EQ(out.ranges.size(), l.ranges.size());
  for (std::size_t i = 0; i < l.ranges.size(); ++i) {
    EXPECT_EQ(out.ranges[i].lo, l.ranges[i].lo);
    EXPECT_EQ(out.ranges[i].owner, l.ranges[i].owner);
  }
  EXPECT_TRUE(out.migration.active());
  EXPECT_EQ(out.migration.lo, 10u);
  EXPECT_EQ(out.migration.hi, 20u);
  EXPECT_EQ(out.migration.from, 1);
  EXPECT_EQ(out.migration.to, 2);

  // Malformed input is rejected, not trusted.
  reconfig::Layout junk;
  EXPECT_FALSE(decode_marker(std::span(wire).subspan(0, 10), junk, phase));
}

// ---------------------------------------------------------------------
// Migration cell harness
// ---------------------------------------------------------------------

core::HeronConfig kv_config() {
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  cfg.reconfig_keys = kKeys;
  // Dual-epoch quiesce windows and WrongEpoch re-routing stretch a few
  // requests; retries (session-deduped) keep the closed loops moving.
  cfg.client_attempt_timeout = sim::us(500);
  cfg.client_max_retries = 16;
  cfg.client_retry_backoff = sim::us(20);
  cfg.client_retry_backoff_max = sim::us(500);
  return cfg;
}

struct CellResult {
  std::uint64_t executed = 0;       // distinct commands session-marked
  std::uint64_t completed = 0;      // client-side completions
  std::uint64_t wrong_epoch_replies = 0;
  std::uint64_t wrong_epoch_retries = 0;
  std::uint64_t chunks_sent = 0;
  std::uint64_t chunks_corrupt = 0;
  std::uint64_t pulls = 0;
  std::uint64_t migrated_out = 0;
  std::uint64_t migrated_in = 0;
  std::uint64_t final_epoch = 0;
  sim::Nanos sealed_at = 0;
  std::vector<std::uint64_t> digests;
  std::vector<Violation> violations;
};

/// Runs a 2-partition RangeKv deployment, migrates [0, 8) from g0 to g1
/// at 2ms while closed-loop clients hammer the keyspace, and applies the
/// full oracle stack once every loop finished and the move sealed.
CellResult run_split_cell(std::uint64_t seed, int clients, int ops,
                          core::HeronConfig cfg,
                          const std::string& plan_text = "") {
  constexpr int kPartitions = 2;
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, seed);
  core::System sys(
      fabric, kPartitions, kReplicas,
      [] { return std::make_unique<RangeKv>(kKeys); }, cfg);
  HistoryRecorder history;
  history.attach(sys);
  ExecTracker tracker;
  tracker.attach(sys);
  sys.start();

  for (int c = 0; c < clients; ++c) {
    sim.spawn(rangekv_client_loop(sys, sys.add_client(),
                                  seed * 1000 + static_cast<std::uint64_t>(c),
                                  ops, kKeys));
  }
  sys.schedule_migration(
      reconfig::Plan{sim::ms(1), /*lo=*/0, /*hi=*/8, /*from=*/0, /*to=*/1});
  Injector injector(sys);
  injector.run(FaultPlan::parse("plan", plan_text));

  // Run until the move seals and every client loop drains (slices so a
  // wedged run fails the assertions instead of spinning forever).
  auto settled = [&sys] {
    if (sys.migration_times().empty() ||
        sys.migration_times().front().sealed == 0) {
      return false;
    }
    for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
      if (sys.client(c).in_flight()) return false;
    }
    return true;
  };
  for (int i = 0; i < 400 && !settled(); ++i) sim.run_for(sim::ms(1));
  sim.run_for(sim::ms(5));  // let copy/pull tails quiesce

  CellResult out;
  EXPECT_FALSE(sys.migration_times().empty());
  if (!sys.migration_times().empty()) {
    const auto& mt = sys.migration_times().front();
    EXPECT_GT(mt.prepare, 0);
    EXPECT_GT(mt.flip, mt.prepare);
    EXPECT_GT(mt.sealed, 0) << "migration never sealed";
    out.sealed_at = mt.sealed;
  }
  out.executed = tracker.distinct_executed();
  out.final_epoch = sys.cluster_layout().epoch;
  for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
    auto& cl = sys.client(c);
    out.completed += cl.completed();
    out.wrong_epoch_retries += cl.wrong_epoch_retries();
    EXPECT_FALSE(cl.in_flight()) << "client " << c << " hung";
  }
  for (core::GroupId g = 0; g < kPartitions; ++g) {
    for (int r = 0; r < kReplicas; ++r) {
      auto& rep = sys.replica(g, r);
      out.wrong_epoch_replies += rep.wrong_epoch_replies();
      out.chunks_sent += rep.copy_chunks_sent();
      out.chunks_corrupt += rep.copy_chunks_corrupt();
      out.pulls += rep.copy_pulls();
      out.migrated_out += rep.migrated_out();
      out.migrated_in += rep.migrated_in();
      if (!rep.node().alive()) continue;
      out.digests.push_back(store_digest(rep));
    }
  }

  out.violations =
      check_amcast_properties(history, sys, injector.ever_crashed());
  check_exactly_once(history, out.violations);
  check_store_convergence(sys, out.violations);
  tracker.check(out.violations);
  check_kv_placement(sys, /*rank=*/0, kKeys, sys.cluster_layout(),
                     out.violations);
  check_kv_sum(sys, /*rank=*/0, kKeys, /*delta=*/1, out.executed,
               out.violations);
  return out;
}

void expect_clean(const CellResult& res) {
  for (const auto& v : res.violations) {
    ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
  }
}

// ---------------------------------------------------------------------
// Headline cells
// ---------------------------------------------------------------------

TEST(Reconfig, SplitUnderLoadMovesObjectsExactlyOnce) {
  const auto res = run_split_cell(41, /*clients=*/3, /*ops=*/120, kv_config());
  expect_clean(res);
  // PREPARE bumped to 2, FLIP to 3.
  EXPECT_EQ(res.final_epoch, 3u);
  EXPECT_EQ(res.completed, 3u * 120u);
  // The move actually moved data over the copy rings.
  EXPECT_GT(res.chunks_sent, 0u);
  EXPECT_GT(res.migrated_in, 0u);
  // Post-flip, stale-routed commands were bounced and re-routed instead
  // of executed in the wrong group.
  EXPECT_GT(res.wrong_epoch_replies, 0u);
  EXPECT_GT(res.wrong_epoch_retries, 0u);
}

TEST(Reconfig, LeaderCrashMidMigrationKeepsOracles) {
  // Crash source rank 0 right after PREPARE (1ms) and bring it back
  // while the move is still settling: its pair destination must recover
  // the stream by pulling from flipped survivors or the rejoined source.
  const auto res =
      run_split_cell(43, /*clients=*/3, /*ops=*/120, kv_config(),
                     "crash g0.r0 @ 1050us; restart g0.r0 @ 8ms");
  expect_clean(res);
  EXPECT_EQ(res.final_epoch, 3u);
  EXPECT_EQ(res.completed, 3u * 120u);
}

TEST(Reconfig, TornCopyChunksAreDetectedAndRecovered) {
  auto cfg = kv_config();
  cfg.reconfig.chunk_corrupt_rate = 0.6;
  const auto res = run_split_cell(47, /*clients=*/3, /*ops=*/80, cfg);
  expect_clean(res);
  // Corruption was injected, detected by the chunk CRC, and repaired by
  // dest-driven pulls — and the move still sealed.
  EXPECT_GT(res.chunks_corrupt, 0u);
  EXPECT_GT(res.pulls, 0u);
  EXPECT_GT(res.sealed_at, 0u);
}

TEST(Reconfig, MigrationIsDeterministic) {
  const auto a = run_split_cell(53, 3, 30, kv_config(),
                                "crash g0.r1 @ 3ms; restart g0.r1 @ 7ms");
  const auto b = run_split_cell(53, 3, 30, kv_config(),
                                "crash g0.r1 @ 3ms; restart g0.r1 @ 7ms");
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.wrong_epoch_replies, b.wrong_epoch_replies);
  EXPECT_EQ(a.chunks_sent, b.chunks_sent);
  EXPECT_EQ(a.pulls, b.pulls);
  EXPECT_EQ(a.sealed_at, b.sealed_at);
  EXPECT_EQ(a.digests, b.digests);
}

// ---------------------------------------------------------------------
// Linearizability across the epoch bump (mixed fast reads + writes)
// ---------------------------------------------------------------------

sim::Task<void> mixed_kv_loop(core::System& sys, core::Client& client,
                              LinearChecker& lin, std::uint64_t seed,
                              int ops, double read_ratio) {
  sim::Rng rng(seed);
  auto& sim = sys.simulator();
  for (int k = 0; k < ops; ++k) {
    const core::Oid key = rng.bounded(kKeys);
    const auto home = client.layout().owner_of(key);
    if (rng.chance(read_ratio)) {
      const sim::Nanos t0 = sim.now();
      const auto res = co_await client.read(home, key);
      if (res.submit_status == core::SubmitStatus::kOk && res.status == 0) {
        lin.note_read(key, res.tmp, t0, sim.now(), res.fast);
      }
    } else {
      KvAddReq req{key, 1};
      const sim::Nanos t0 = sim.now();
      const auto res = co_await client.submit_routed(
          key, home, kKvAdd, std::as_bytes(std::span(&req, 1)));
      lin.note_write(key, client.id(), res.session_seq, t0, sim.now(),
                     res.status);
    }
  }
}

TEST(Reconfig, MixedHistoryAcrossEpochBumpIsLinearizable) {
  constexpr int kPartitions = 2;
  constexpr int kClients = 3;
  constexpr int kOps = 40;
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, 59);
  auto cfg = kv_config();
  cfg.lease_duration = sim::ms(1);  // fast reads on
  core::System sys(
      fabric, kPartitions, kReplicas,
      [] { return std::make_unique<RangeKv>(kKeys); }, cfg);
  HistoryRecorder history;
  history.attach(sys);
  ExecTracker tracker;
  tracker.attach(sys);
  sys.start();

  LinearChecker lin;
  for (int c = 0; c < kClients; ++c) {
    sim.spawn(mixed_kv_loop(sys, sys.add_client(), lin,
                            59 * 1000 + static_cast<std::uint64_t>(c), kOps,
                            /*read_ratio=*/0.6));
  }
  sys.schedule_migration(reconfig::Plan{sim::ms(2), 0, 8, 0, 1});
  sim.run_for(sim::ms(120));

  EXPECT_FALSE(sys.migration_times().empty());
  if (!sys.migration_times().empty()) {
    EXPECT_GT(sys.migration_times().front().sealed, 0)
        << "migration never sealed";
  }
  EXPECT_GT(lin.read_count(), 0u);
  EXPECT_GT(lin.write_count(), 0u);
  std::vector<Violation> violations =
      check_amcast_properties(history, sys, CrashSet{});
  check_exactly_once(history, violations);
  check_store_convergence(sys, violations);
  tracker.check(violations);
  for (auto& v : lin.check(history)) violations.push_back(std::move(v));
  for (const auto& v : violations) {
    ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
  }
}

// ---------------------------------------------------------------------
// Directed satellite regressions
// ---------------------------------------------------------------------

sim::Task<void> kv_add(core::Client& client, core::Oid key,
                       std::int64_t delta) {
  KvAddReq req{key, delta};
  const auto res =
      co_await client.submit_routed(key, client.layout().owner_of(key),
                                    kKvAdd, std::as_bytes(std::span(&req, 1)));
  EXPECT_EQ(res.status, core::SubmitStatus::kOk);
}

sim::Task<void> wait_sealed(core::System& sys) {
  auto& sim = sys.simulator();
  while (sys.migration_times().empty() ||
         sys.migration_times().front().sealed == 0) {
    co_await sim.sleep(sim::us(100));
  }
}

/// Satellite 1: one kStatusWrongEpoch reply must invalidate EVERY
/// fast-read cache entry seeded under the old layout epoch — including
/// entries for keys whose range did not move (their slot addresses may
/// still be rewritten by the owner sweep / compaction on other groups).
sim::Task<void> cache_invalidation_script(core::System& sys,
                                          core::Client& client, bool& done) {
  co_await kv_add(client, 0, 5);    // moving range [0, 8)
  co_await kv_add(client, 20, 7);   // stable range, owner g1
  (void)co_await client.read(0, 0);
  (void)co_await client.read(1, 20);
  EXPECT_EQ(client.fastread_cached_epoch(0), std::make_optional(1ull));
  EXPECT_EQ(client.fastread_cached_epoch(20), std::make_optional(1ull));

  sys.schedule_migration(
      reconfig::Plan{sys.simulator().now() + sim::us(50), 0, 8, 0, 1});
  co_await wait_sealed(sys);

  // The client has not heard about the move yet: its layout is stale.
  EXPECT_EQ(client.layout().epoch, 1u);
  // One routed write to the moved range bounces off g0 with WrongEpoch.
  co_await kv_add(client, 0, 1);
  EXPECT_GE(client.wrong_epoch_retries(), 1u);
  EXPECT_GE(client.layout().epoch, 3u);
  // Regression (pre-fix: entries had no epoch and survived): both cached
  // slots — moved AND unmoved key — are gone.
  EXPECT_EQ(client.fastread_cached_epoch(0), std::nullopt);
  EXPECT_EQ(client.fastread_cached_epoch(20), std::nullopt);
  done = true;
}

TEST(Reconfig, WrongEpochInvalidatesWholeFastReadCache) {
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, 61);
  auto cfg = kv_config();
  cfg.lease_duration = sim::ms(1);
  core::System sys(
      fabric, 2, kReplicas, [] { return std::make_unique<RangeKv>(kKeys); },
      cfg);
  sys.start();
  auto& client = sys.add_client();
  bool done = false;
  sim.spawn(cache_invalidation_script(sys, client, done));
  sim.run_for(sim::ms(200));
  EXPECT_TRUE(done) << "script did not finish";
}

/// Satellite 2: after FLIP the old owner's lease word is zeroed and the
/// moved slots retired, so a client with a stale cache entry (same epoch
/// as its stale layout — the epoch guard does not help it) must fail the
/// one-sided fast path and fall back to the ordered path, which bounces
/// it to the new owner. Pre-fix, the un-zeroed lease let the fast read
/// return the retired (stale) value.
sim::Task<void> stale_owner_script(core::System& sys, core::Client& client,
                                   bool& done) {
  co_await kv_add(client, 2, 5);
  (void)co_await client.read(0, 2);  // seed cache against g0
  const auto r1 = co_await client.read(0, 2);
  EXPECT_TRUE(r1.fast);  // warm: one-sided against the old owner

  sys.schedule_migration(
      reconfig::Plan{sys.simulator().now() + sim::us(50), 0, 8, 0, 1});
  co_await wait_sealed(sys);

  // A second client (sole writer post-move) advances the value at g1;
  // the stale-cached client must never see the old value again.
  auto& other = sys.add_client();
  co_await kv_add(other, 2, 10);

  const auto r2 = co_await client.read(0, 2);
  EXPECT_FALSE(r2.fast) << "fast read served by the retired owner";
  EXPECT_EQ(r2.status, 0u);
  std::int64_t v = 0;
  EXPECT_EQ(r2.value.size(), sizeof(v));
  if (r2.value.size() == sizeof(v)) {
    std::memcpy(&v, r2.value.data(), sizeof(v));
    EXPECT_EQ(v, 15);
  }
  done = true;
}

TEST(Reconfig, StaleOwnerCannotServeFastReadsAfterFlip) {
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, 67);
  auto cfg = kv_config();
  cfg.lease_duration = sim::ms(1);
  core::System sys(
      fabric, 2, kReplicas, [] { return std::make_unique<RangeKv>(kKeys); },
      cfg);
  sys.start();
  auto& client = sys.add_client();
  bool done = false;
  sim.spawn(stale_owner_script(sys, client, done));
  sim.run_for(sim::ms(200));
  EXPECT_TRUE(done) << "script did not finish";
}

/// Review regression: a client that slept through TWO migrations learns
/// the newest epoch from its first wrong-epoch bounce; the bounce for the
/// OTHER stale range then arrives carrying that same (now-current) epoch
/// and must still patch its range. Pre-fix, apply_wrong_epoch required
/// wire.epoch > layout_.epoch, dropped the second fix, and the client
/// looped to kMaxHops and failed for every oid in that range. The two
/// overlapping schedule_migration calls also exercise the controller
/// ticket serialization (the second plan fires before the first seals).
sim::Task<void> two_move_stale_client_script(core::System& sys,
                                             core::Client& client,
                                             bool& done) {
  auto& sim = sys.simulator();
  co_await kv_add(client, 0, 1);
  co_await kv_add(client, 16, 1);

  // Two moves in opposite directions so the final layout keeps distinct
  // ranges (same-direction moves would merge into one range and the
  // first bounce alone would fix everything).
  sys.schedule_migration(
      reconfig::Plan{sim.now() + sim::us(50), 0, 8, 0, 1});
  sys.schedule_migration(
      reconfig::Plan{sim.now() + sim::us(60), 16, 24, 1, 0});
  while (sys.migration_times().size() < 2 ||
         sys.migration_times()[1].sealed == 0) {
    co_await sim.sleep(sim::us(100));
  }
  EXPECT_EQ(client.layout().epoch, 1u);  // fully stale: missed both moves

  // First bounce (for moved range [0,8)) jumps the client straight to
  // the newest epoch and patches that one range...
  co_await kv_add(client, 0, 1);
  EXPECT_EQ(client.layout().epoch, 5u);
  EXPECT_EQ(client.layout().owner_of(0), 1);
  EXPECT_EQ(client.layout().owner_of(16), 1);  // other range still stale

  // ...so the bounce for key 16 arrives with wire.epoch == layout_.epoch
  // and must still be applied for the retry to reach the new owner.
  KvAddReq req{16, 1};
  const auto res = co_await client.submit_routed(
      16, client.layout().owner_of(16), kKvAdd,
      std::as_bytes(std::span(&req, 1)));
  EXPECT_EQ(res.status, core::SubmitStatus::kOk);
  EXPECT_EQ(res.reply.status, 0u) << "same-epoch range fix was dropped";
  EXPECT_EQ(client.layout().owner_of(16), 0);
  done = true;
}

TEST(Reconfig, StaleClientRecoversAcrossTwoMigrations) {
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, 79);
  core::System sys(
      fabric, 2, kReplicas, [] { return std::make_unique<RangeKv>(kKeys); },
      kv_config());
  sys.start();
  auto& client = sys.add_client();
  bool done = false;
  sim.spawn(two_move_stale_client_script(sys, client, done));
  for (int i = 0; i < 400 && !done; ++i) sim.run_for(sim::ms(1));
  EXPECT_TRUE(done) << "script did not finish";
}

/// Review regression: PREPARE/FLIP markers are multicast exactly once, so
/// the ordering leader must exempt kWireFlagEpoch from admission
/// shedding. Pre-fix, a tiny admission window under client load shed the
/// marker cluster-wide and the controller spun forever waiting for
/// copy/seal progress that could never start.
TEST(Reconfig, EpochMarkersAreExemptFromAdmissionShedding) {
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, 83);
  amcast::Config acfg;
  acfg.admission_window = 1;  // shed (almost) everything under load
  core::System sys(
      fabric, 2, kReplicas, [] { return std::make_unique<RangeKv>(kKeys); },
      kv_config(), acfg);
  sys.start();
  for (int c = 0; c < 3; ++c) {
    sim.spawn(rangekv_client_loop(sys, sys.add_client(),
                                  83000 + static_cast<std::uint64_t>(c),
                                  /*ops=*/60, kKeys));
  }
  sys.schedule_migration(reconfig::Plan{sim::ms(1), 0, 8, 0, 1});
  auto sealed = [&sys] {
    return !sys.migration_times().empty() &&
           sys.migration_times().front().sealed != 0;
  };
  for (int i = 0; i < 400 && !sealed(); ++i) sim.run_for(sim::ms(1));
  EXPECT_TRUE(sealed()) << "migration wedged: epoch marker lost to shedding";
  EXPECT_EQ(sys.cluster_layout().epoch, 3u);
}

/// Checkpoints are stamped with the layout epoch they were taken under;
/// a replica restarting with a checkpoint from a superseded layout must
/// reject it (the image straddles ranges it no longer owns) and fall
/// back to a full transfer.
TEST(Reconfig, CheckpointFromSupersededLayoutIsRejected) {
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, 71);
  auto cfg = kv_config();
  cfg.durable.checkpoint_interval = sim::us(500);
  core::System sys(
      fabric, 2, kReplicas, [] { return std::make_unique<RangeKv>(kKeys); },
      cfg);
  sys.start();
  auto& client = sys.add_client();
  bool done = false;
  auto script = [](core::System& sys, core::Client& client,
                   bool& done) -> sim::Task<void> {
    auto& sim = sys.simulator();
    for (core::Oid k = 0; k < 8; ++k) co_await kv_add(client, k, 1);
    // Let g0.r2 cover the writes with an epoch-1 checkpoint.
    auto& victim = sys.replica(0, 2);
    while (victim.checkpoint_watermark() < victim.last_executed()) {
      co_await sim.sleep(sim::us(200));
    }
    sys.amcast().endpoint(0, 2).node().crash();
    // Move [0, 8) away while the victim is down: its checkpoint now
    // describes a layout that no longer exists.
    sys.schedule_migration(reconfig::Plan{sim.now() + sim::us(50), 0, 8, 0, 1});
    while (sys.migration_times().empty() ||
           sys.migration_times().front().sealed == 0) {
      co_await sim.sleep(sim::us(100));
    }
    sys.restart_replica(0, 2);
    while (victim.rejoining()) co_await sim.sleep(sim::us(100));
    // The stale image was detected by its layout-epoch stamp and dropped.
    EXPECT_GE(victim.checkpoints_rejected_layout(), 1u);
    EXPECT_FALSE(victim.restored_from_checkpoint());
    EXPECT_EQ(victim.layout().epoch, 3u);
    // And the rejoined replica holds no key it no longer owns.
    for (core::Oid k = 0; k < 8; ++k) {
      EXPECT_FALSE(victim.store().exists(k)) << "key " << k;
    }
    done = true;
  };
  sim.spawn(script(sys, client, done));
  for (int i = 0; i < 400 && !done; ++i) sim.run_for(sim::ms(1));
  EXPECT_TRUE(done) << "script did not finish";
}

}  // namespace
}  // namespace heron::faultlab
