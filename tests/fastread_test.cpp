// Lease-based linearizable fast reads: warm-cache one-sided hits, torn-
// slot retries, lease expiry, fallback + cache reseed on remote failure,
// crash/restart linearizability under the LinearChecker oracle, and
// same-seed determinism of the whole read path.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "faultlab/bank.hpp"
#include "faultlab/history.hpp"
#include "faultlab/injector.hpp"
#include "faultlab/linear.hpp"
#include "faultlab/plan.hpp"
#include "rdma/fabric.hpp"

namespace heron::faultlab {
namespace {

constexpr std::uint64_t kAccounts = 8;

core::HeronConfig lease_config(sim::Nanos lease_duration) {
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  cfg.lease_duration = lease_duration;
  return cfg;
}

/// Single-client scripted scenario harness: builds a 1x3 bank deployment
/// with leases on, runs `script` to completion, and asserts it finished.
template <typename Script>
void run_script(std::uint64_t seed, sim::Nanos lease_duration,
                Script script) {
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, seed);
  core::System sys(
      fabric, /*partitions=*/1, /*replicas=*/3,
      [] { return std::make_unique<BankApp>(1, kAccounts); },
      lease_config(lease_duration));
  sys.start();
  auto& client = sys.add_client();
  bool done = false;
  sim.spawn(script(sys, client, done));
  sim.run_for(sim::ms(50));
  EXPECT_TRUE(done) << "script did not finish";
}

sim::Task<void> deposit(core::Client& client, core::Oid account,
                        std::int64_t amount) {
  DepositReq req{account, amount};
  const auto res = co_await client.submit(amcast::dst_of(0), kDeposit,
                                          std::as_bytes(std::span(&req, 1)));
  EXPECT_EQ(res.status, core::SubmitStatus::kOk);
}

std::int64_t balance_of(const core::Client::ReadResult& res) {
  Account a{};
  EXPECT_EQ(res.value.size(), sizeof(a));
  if (res.value.size() == sizeof(a)) {
    std::memcpy(&a, res.value.data(), sizeof(a));
  }
  return a.balance;
}

// ---------------------------------------------------------------------
// Directed scenarios
// ---------------------------------------------------------------------

sim::Task<void> warm_cache_script(core::System&, core::Client& client,
                                  bool& done) {
  co_await deposit(client, 0, 25);
  // Cold cache: the first read takes the ordered path and seeds the
  // per-oid slot address from the reply.
  const auto r1 = co_await client.read(0, 0);
  EXPECT_FALSE(r1.fast);
  EXPECT_EQ(r1.status, 0u);
  EXPECT_EQ(balance_of(r1), 1025);
  EXPECT_TRUE(client.fastread_cached_rank(0).has_value());
  EXPECT_EQ(client.fastread_fallbacks(), 1u);
  // Warm cache + valid lease: served by two one-sided READs.
  const auto r2 = co_await client.read(0, 0);
  EXPECT_TRUE(r2.fast);
  EXPECT_EQ(r2.tmp, r1.tmp);
  EXPECT_EQ(balance_of(r2), 1025);
  EXPECT_EQ(client.fastread_hits(), 1u);
  EXPECT_EQ(client.fastread_fallbacks(), 1u);
  // A later write is visible to a later fast read (write-gate freshness).
  co_await deposit(client, 0, 10);
  const auto r3 = co_await client.read(0, 0);
  EXPECT_TRUE(r3.fast);
  EXPECT_GT(r3.tmp, r2.tmp);
  EXPECT_EQ(balance_of(r3), 1035);
  done = true;
}

TEST(FastRead, WarmCacheServesOneSidedReads) {
  run_script(7, sim::ms(1), warm_cache_script);
}

sim::Task<void> torn_slot_script(core::System& sys, core::Client& client,
                                 bool& done) {
  co_await deposit(client, 0, 5);
  (void)co_await client.read(0, 0);  // seed the cache
  const auto hits_before = client.fastread_hits();
  // Hold every replica's slot torn so the fast read sees an odd seqlock
  // regardless of which rank the cache points at; after the retry budget
  // it must fall back to the ordered path and still return the value.
  for (int r = 0; r < 3; ++r) sys.replica(0, r).store().begin_write(0);
  const auto r1 = co_await client.read(0, 0);
  EXPECT_FALSE(r1.fast);
  EXPECT_EQ(r1.status, 0u);
  EXPECT_EQ(balance_of(r1), 1005);
  EXPECT_EQ(client.fastread_hits(), hits_before);
  EXPECT_GE(client.fastread_torn_retries(),
            static_cast<std::uint64_t>(
                sys.config().fastread_torn_retries + 1));
  // Slot released: the next read is one-sided again.
  for (int r = 0; r < 3; ++r) sys.replica(0, r).store().end_write(0);
  const auto r2 = co_await client.read(0, 0);
  EXPECT_TRUE(r2.fast);
  EXPECT_EQ(r2.tmp, r1.tmp);
  done = true;
}

TEST(FastRead, TornSlotRetriesThenFallsBack) {
  run_script(11, sim::ms(1), torn_slot_script);
}

sim::Task<void> expired_lease_script(core::System&, core::Client& client,
                                     bool& done) {
  co_await deposit(client, 0, 5);
  (void)co_await client.read(0, 0);  // seed the cache
  // The lease duration is shorter than the ordering latency, so every
  // grant a replica installs is already expired: the fast path must
  // reject at READ 1 and fall back, and must never report a hit.
  const auto r1 = co_await client.read(0, 0);
  EXPECT_FALSE(r1.fast);
  EXPECT_EQ(r1.status, 0u);
  EXPECT_EQ(balance_of(r1), 1005);
  EXPECT_EQ(client.fastread_hits(), 0u);
  EXPECT_GE(client.fastread_lease_rejects(), 1u);
  done = true;
}

TEST(FastRead, ExpiredLeaseForcesOrderedFallback) {
  run_script(13, sim::us(4), expired_lease_script);
}

sim::Task<void> crashed_target_script(core::System& sys,
                                      core::Client& client, bool& done) {
  co_await deposit(client, 0, 5);
  (void)co_await client.read(0, 0);  // seed the cache
  const auto cached = client.fastread_cached_rank(0);
  EXPECT_TRUE(cached.has_value());
  if (!cached.has_value()) co_return;
  // Crash the cached replica; the two survivors keep a majority so the
  // ordered fallback still completes, and its reply reseeds the cache
  // onto a live rank.
  sys.amcast().endpoint(0, *cached).node().crash();
  const auto r1 = co_await client.read(0, 0);
  EXPECT_FALSE(r1.fast);
  EXPECT_EQ(r1.status, 0u);
  EXPECT_EQ(balance_of(r1), 1005);
  const auto reseeded = client.fastread_cached_rank(0);
  EXPECT_TRUE(reseeded.has_value());
  if (!reseeded.has_value()) co_return;
  EXPECT_NE(*reseeded, *cached);
  const auto r2 = co_await client.read(0, 0);
  EXPECT_TRUE(r2.fast);
  EXPECT_EQ(balance_of(r2), 1005);
  done = true;
}

TEST(FastRead, RemoteFailureFallsBackAndReseedsCache) {
  run_script(17, sim::ms(1), crashed_target_script);
}

// ---------------------------------------------------------------------
// Mixed workload cells: linearizability under faults + determinism
// ---------------------------------------------------------------------

struct ReadCellResult {
  std::uint64_t completed = 0;
  std::uint64_t fast_hits = 0;
  std::uint64_t torn_retries = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t lease_rejects = 0;
  std::uint64_t lease_grants = 0;
  std::uint64_t gate_waits = 0;
  std::size_t reads_checked = 0;
  std::size_t writes_checked = 0;
  std::vector<std::uint64_t> digests;
  std::vector<Violation> violations;
};

/// Closed-loop mixed read/deposit client; every completed operation is
/// reported to the LinearChecker.
sim::Task<void> mixed_loop(core::System& sys, core::Client& client,
                           LinearChecker& lin, std::uint64_t seed, int ops,
                           double read_ratio) {
  sim::Rng rng(seed);
  auto& sim = sys.simulator();
  const auto partitions = static_cast<std::uint64_t>(sys.partitions());
  const auto total = partitions * kAccounts;
  for (int k = 0; k < ops; ++k) {
    const core::Oid oid = rng.bounded(total);
    const auto home = static_cast<amcast::GroupId>(oid % partitions);
    if (rng.chance(read_ratio)) {
      const sim::Nanos t0 = sim.now();
      const auto res = co_await client.read(home, oid);
      if (res.submit_status == core::SubmitStatus::kOk && res.status == 0) {
        lin.note_read(oid, res.tmp, t0, sim.now(), res.fast);
      }
    } else {
      DepositReq req{oid, 5};
      const sim::Nanos t0 = sim.now();
      const auto res = co_await client.submit(
          amcast::dst_of(home), kDeposit, std::as_bytes(std::span(&req, 1)));
      lin.note_write(oid, client.id(), res.session_seq, t0, sim.now(),
                     res.status);
    }
  }
}

ReadCellResult run_read_cell(std::uint64_t seed, int partitions, int clients,
                             int ops, double read_ratio,
                             sim::Nanos lease_duration,
                             const std::string& plan_text = "") {
  constexpr int kReplicas = 3;
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, seed);
  // Crash plans lose in-flight requests; retries (session-deduped) let
  // every client loop run to completion across the fault window.
  core::HeronConfig cfg = lease_config(lease_duration);
  cfg.client_attempt_timeout = sim::us(200);
  cfg.client_max_retries = 12;
  cfg.client_retry_backoff = sim::us(20);
  cfg.client_retry_backoff_max = sim::us(500);
  core::System sys(
      fabric, partitions, kReplicas,
      [partitions] {
        return std::make_unique<BankApp>(partitions, kAccounts);
      },
      cfg);
  HistoryRecorder history;
  history.attach(sys);
  sys.start();

  LinearChecker lin;
  for (int c = 0; c < clients; ++c) {
    sim.spawn(mixed_loop(sys, sys.add_client(),
                         lin, seed * 1000 + static_cast<std::uint64_t>(c),
                         ops, read_ratio));
  }
  Injector injector(sys);
  injector.run(FaultPlan::parse("plan", plan_text));
  sim.run_for(sim::ms(100));

  ReadCellResult out;
  for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
    auto& cl = sys.client(c);
    out.completed += cl.completed();
    out.fast_hits += cl.fastread_hits();
    out.torn_retries += cl.fastread_torn_retries();
    out.fallbacks += cl.fastread_fallbacks();
    out.lease_rejects += cl.fastread_lease_rejects();
    EXPECT_FALSE(cl.in_flight()) << "client " << c << " hung";
  }
  for (core::GroupId g = 0; g < partitions; ++g) {
    for (int r = 0; r < kReplicas; ++r) {
      out.lease_grants += sys.replica(g, r).lease_grants();
      out.gate_waits += sys.replica(g, r).gate_waits();
      if (!sys.replica(g, r).node().alive()) continue;
      out.digests.push_back(store_digest(sys.replica(g, r)));
    }
  }
  out.reads_checked = lin.read_count();
  out.writes_checked = lin.write_count();
  out.violations =
      check_amcast_properties(history, sys, injector.ever_crashed());
  check_exactly_once(history, out.violations);
  check_store_convergence(sys, out.violations);
  for (auto& v : lin.check(history)) out.violations.push_back(std::move(v));
  return out;
}

TEST(FastRead, MixedWorkloadIsLinearizableAndMostlyOneSided) {
  const auto res = run_read_cell(23, /*partitions=*/2, /*clients=*/3,
                                 /*ops=*/60, /*read_ratio=*/0.9,
                                 sim::ms(1));
  EXPECT_GT(res.reads_checked, 0u);
  EXPECT_GT(res.writes_checked, 0u);
  EXPECT_GT(res.lease_grants, 0u);
  // With healthy leases the steady state is one-sided: fallbacks are
  // confined to cold-cache seeds and the occasional torn slot.
  EXPECT_GT(res.fast_hits, res.fallbacks);
  for (const auto& v : res.violations) {
    ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
  }
}

TEST(FastRead, LeaderCrashDuringOpenLeaseStaysLinearizable) {
  const auto res = run_read_cell(29, /*partitions=*/2, /*clients=*/3,
                                 /*ops=*/40, /*read_ratio=*/0.7,
                                 sim::ms(1),
                                 "crash g0.r0 @ 500us; restart g0.r0 @ 5ms");
  // Every closed-loop command eventually completed despite the crash.
  // Fast-read hits answer without touching the ordered submit path, so
  // they count separately from Client::completed().
  EXPECT_EQ(res.completed + res.fast_hits, 3u * 40u);
  EXPECT_GT(res.reads_checked, 0u);
  for (const auto& v : res.violations) {
    ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
  }
}

TEST(FastRead, ReadPathIsDeterministic) {
  const auto a = run_read_cell(31, 2, 3, 30, 0.8, sim::ms(1),
                               "crash g0.r1 @ 1ms; restart g0.r1 @ 4ms");
  const auto b = run_read_cell(31, 2, 3, 30, 0.8, sim::ms(1),
                               "crash g0.r1 @ 1ms; restart g0.r1 @ 4ms");
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.fast_hits, b.fast_hits);
  EXPECT_EQ(a.torn_retries, b.torn_retries);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(a.lease_rejects, b.lease_rejects);
  EXPECT_EQ(a.lease_grants, b.lease_grants);
  EXPECT_EQ(a.gate_waits, b.gate_waits);
  EXPECT_EQ(a.digests, b.digests);
}

}  // namespace
}  // namespace heron::faultlab
