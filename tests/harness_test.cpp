// Tests for the benchmark harness: measurement windows, stat resets,
// kind/multi splitting, and saturation behaviour under growing client
// counts (closed-loop throughput must increase then plateau).
#include <gtest/gtest.h>

#include "harness/runner.hpp"

namespace heron::harness {
namespace {

const tpcc::TpccScale kScale{.factor = 0.01, .initial_orders_per_district = 6};

TEST(Harness, MeasuresThroughputAndLatency) {
  TpccCluster cluster(2, 3, kScale);
  cluster.add_clients(2, {});
  auto result = cluster.run(sim::ms(5), sim::ms(40));
  EXPECT_GT(result.completed, 100u);
  EXPECT_NEAR(result.throughput_tps,
              static_cast<double>(result.completed) / 0.040, 1.0);
  EXPECT_GT(result.latency.count(), 0u);
  EXPECT_GT(result.latency.mean(), 0.0);
}

TEST(Harness, WarmupExcludedFromStats) {
  TpccCluster cluster(2, 3, kScale);
  cluster.add_clients(1, {});
  auto result = cluster.run(sim::ms(20), sim::ms(20));
  // Completions counted only in the window: roughly window / latency.
  const double expected =
      0.020 / (result.latency.mean() / 1e9) * 2 /* clients */;
  EXPECT_NEAR(static_cast<double>(result.completed), expected,
              expected * 0.3);
}

TEST(Harness, RepeatedWindowsAreIndependent) {
  TpccCluster cluster(2, 3, kScale);
  cluster.add_clients(2, {});
  auto first = cluster.run(sim::ms(5), sim::ms(30));
  auto second = cluster.run(0, sim::ms(30));
  EXPECT_GT(second.completed, 0u);
  // Same steady state: throughput within 30%.
  EXPECT_NEAR(second.throughput_tps, first.throughput_tps,
              first.throughput_tps * 0.3);
}

TEST(Harness, SplitsByKindAndPartitionCount) {
  TpccCluster cluster(2, 3, kScale);
  cluster.add_clients(3, {});
  auto result = cluster.run(sim::ms(5), sim::ms(60));
  EXPECT_EQ(result.latency.count(),
            result.latency_single.count() + result.latency_multi.count());
  std::size_t by_kind = 0;
  for (auto& [kind, rec] : result.latency_by_kind) by_kind += rec.count();
  EXPECT_EQ(by_kind, result.latency.count());
  // The TPC-C mix reaches every transaction type in a 60ms window.
  EXPECT_GE(result.latency_by_kind.size(), 4u);
}

TEST(Harness, ThroughputSaturatesWithClients) {
  double tput[3];
  int idx = 0;
  for (int clients : {1, 4, 16}) {
    TpccCluster cluster(2, 3, kScale);
    cluster.add_clients(clients, {});
    tput[idx++] = cluster.run(sim::ms(10), sim::ms(50)).throughput_tps;
  }
  EXPECT_GT(tput[1], tput[0] * 1.1);   // more clients -> more throughput
  EXPECT_LT(tput[2], tput[1] * 2.5);   // ...but the single core saturates
}

TEST(Harness, LocalOnlyWorkloadScalesAcrossPartitions) {
  double tput2, tput4;
  {
    TpccCluster cluster(2, 3, kScale);
    tpcc::WorkloadConfig wl;
    wl.local_only = true;
    cluster.add_clients(4, wl);
    tput2 = cluster.run(sim::ms(10), sim::ms(50)).throughput_tps;
  }
  {
    TpccCluster cluster(4, 3, kScale);
    tpcc::WorkloadConfig wl;
    wl.local_only = true;
    cluster.add_clients(4, wl);
    tput4 = cluster.run(sim::ms(10), sim::ms(50)).throughput_tps;
  }
  // Local-only TPCC scales near-linearly with partitions (Fig. 4 set 4).
  EXPECT_GT(tput4, tput2 * 1.6);
}

}  // namespace
}  // namespace heron::harness
