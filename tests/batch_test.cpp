// Tests for leader-side batching in the atomic multicast: the multicast
// properties must be bit-for-bit preserved with max_batch > 1 (batching
// only amortizes software costs), including across leader failover, BUSY
// shedding, duplicate suppression, and partial batches flushed by the
// batch timeout.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "amcast/system.hpp"
#include "rdma/fabric.hpp"
#include "rdma/pod.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace heron::amcast {
namespace {

using sim::Nanos;
using sim::Simulator;
using sim::Task;
using sim::us;

struct DeliveryLog {
  std::map<std::pair<GroupId, int>, std::vector<Delivery>> by_replica;

  void attach(Simulator& sim, System& sys) {
    for (GroupId g = 0; g < sys.group_count(); ++g) {
      for (int r = 0; r < sys.replicas_per_group(); ++r) {
        sim.spawn(consume(sys.endpoint(g, r), by_replica[{g, r}]));
      }
    }
  }

  // Consumes via the span path so the tests exercise the pipelined
  // delivery interface the application uses.
  static Task<void> consume(Endpoint& ep, std::vector<Delivery>& out) {
    while (true) {
      std::vector<Delivery> span = co_await ep.next_deliveries();
      for (Delivery& d : span) out.push_back(d);
    }
  }

  [[nodiscard]] std::set<MsgUid> uids_at(GroupId g, int r) const {
    std::set<MsgUid> out;
    auto it = by_replica.find({g, r});
    if (it == by_replica.end()) return out;
    for (const auto& d : it->second) out.insert(d.uid);
    return out;
  }
};

struct Cluster {
  Simulator sim;
  rdma::Fabric fabric;
  System sys;
  DeliveryLog log;

  Cluster(int groups, int replicas, Config cfg = {},
          std::uint64_t fabric_seed = 1234)
      : fabric(sim, rdma::LatencyModel{}, fabric_seed),
        sys(fabric, groups, replicas, cfg) {
    sys.start();
    log.attach(sim, sys);
  }
};

Config batching_config(std::uint32_t max_batch = 8,
                       Nanos batch_timeout = us(20)) {
  Config cfg;
  cfg.max_batch = max_batch;
  cfg.batch_timeout = batch_timeout;
  return cfg;
}

/// Spawns `clients` closed-ish loops sending `per_client` messages each,
/// bursty enough that the leader's propose queue actually builds batches.
void spawn_workload(Cluster& c, int clients, int per_client,
                    std::uint64_t seed,
                    std::vector<std::pair<MsgUid, DstMask>>& sent) {
  const int groups = c.sys.group_count();
  for (int i = 0; i < clients; ++i) {
    auto& client = c.sys.add_client();
    c.sim.spawn([](Simulator& sim, ClientEndpoint& cl, int idx,
                   std::uint64_t sd, int n, int ngroups,
                   std::vector<std::pair<MsgUid, DstMask>>& sent_log)
                    -> Task<void> {
      sim::Rng rng(sd + static_cast<std::uint64_t>(idx) * 7919);
      for (int k = 0; k < n; ++k) {
        DstMask dst = 0;
        if (rng.bounded(10) < 3 && ngroups > 1) {
          const auto a = static_cast<GroupId>(
              rng.bounded(static_cast<std::uint64_t>(ngroups)));
          auto b = static_cast<GroupId>(
              rng.bounded(static_cast<std::uint64_t>(ngroups)));
          if (b == a) b = static_cast<GroupId>((a + 1) % ngroups);
          dst = dst_of(a) | dst_of(b);
        } else {
          dst = dst_of(static_cast<GroupId>(
              rng.bounded(static_cast<std::uint64_t>(ngroups))));
        }
        std::uint32_t v = static_cast<std::uint32_t>(k);
        const MsgUid uid =
            co_await cl.multicast(dst, std::as_bytes(std::span(&v, 1)));
        sent_log.emplace_back(uid, dst);
        // Burst 8, then breathe: keeps the inbox rings within capacity
        // while still piling arrivals onto the leader between proposals.
        if (k % 8 == 7) co_await sim.sleep(us(200));
      }
    }(c.sim, client, i, seed, per_client, groups, sent));
  }
}

void check_properties(Cluster& c,
                      const std::vector<std::pair<MsgUid, DstMask>>& sent) {
  const int groups = c.sys.group_count();
  const int replicas = c.sys.replicas_per_group();

  // Validity at every correct destination replica.
  for (const auto& [uid, dst] : sent) {
    for (GroupId g = 0; g < groups; ++g) {
      if (!dst_contains(dst, g)) continue;
      for (int r = 0; r < replicas; ++r) {
        if (!c.sys.endpoint(g, r).node().alive()) continue;
        EXPECT_TRUE(c.log.uids_at(g, r).contains(uid))
            << "uid " << uid << " missing at group " << g << " rank " << r;
      }
    }
  }

  // Integrity, timestamp consistency, timestamp-ordered delivery.
  std::map<MsgUid, std::uint64_t> ts_of;
  for (const auto& [key, seq] : c.log.by_replica) {
    std::set<MsgUid> seen_here;
    for (const auto& d : seq) {
      EXPECT_TRUE(seen_here.insert(d.uid).second)
          << "duplicate delivery of " << d.uid;
      EXPECT_TRUE(dst_contains(d.dst, key.first))
          << "delivered outside destination set";
      auto [it, inserted] = ts_of.emplace(d.uid, d.tmp);
      if (!inserted) EXPECT_EQ(it->second, d.tmp);
    }
    for (size_t i = 1; i < seq.size(); ++i) {
      EXPECT_LT(seq[i - 1].tmp, seq[i].tmp);
    }
  }

  // Uniform agreement within each group.
  for (GroupId g = 0; g < groups; ++g) {
    const std::vector<Delivery>* longest = nullptr;
    for (int r = 0; r < replicas; ++r) {
      const auto& seq = c.log.by_replica[{g, r}];
      if (!longest || seq.size() > longest->size()) longest = &seq;
    }
    for (int r = 0; r < replicas; ++r) {
      const auto& seq = c.log.by_replica[{g, r}];
      if (c.sys.endpoint(g, r).node().alive()) {
        ASSERT_EQ(seq.size(), longest->size())
            << "correct replica behind in group " << g;
      }
      for (size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].uid, (*longest)[i].uid)
            << "group " << g << " rank " << r << " diverges at " << i;
      }
    }
  }
}

TEST(Batch, PropertiesHoldWithBatching) {
  Cluster c(2, 3, batching_config());
  c.fabric.telemetry().metrics.enable(true);
  std::vector<std::pair<MsgUid, DstMask>> sent;
  spawn_workload(c, /*clients=*/6, /*per_client=*/25, /*seed=*/41, sent);
  c.sim.run_for(sim::ms(60));

  ASSERT_EQ(sent.size(), 6u * 25u);
  check_properties(c, sent);

  // The workload is bursty enough that batches of more than one message
  // actually formed — otherwise this test checks nothing new.
  auto& hist = c.fabric.telemetry().metrics.histogram(
      "amcast", "batch_size", "g0.r0", {1, 2, 4, 8, 16, 32, 64});
  EXPECT_GT(hist.count(), 0u);
  EXPECT_GT(hist.max(), 1);
}

TEST(Batch, LeaderCrashMidBatchFailsOver) {
  // Crash the group-0 leader while batches are in flight: the new leader
  // must recover or re-propose every in-flight message, record-granular,
  // and the surviving replicas must still satisfy all properties.
  Cluster c(2, 3, batching_config());
  std::vector<std::pair<MsgUid, DstMask>> sent;
  spawn_workload(c, /*clients=*/6, /*per_client=*/25, /*seed=*/42, sent);
  c.sim.schedule(sim::ms(1), [&c] { c.sys.endpoint(0, 0).node().crash(); });
  c.sim.run_for(sim::ms(60));

  check_properties(c, sent);
  EXPECT_NE(c.sys.endpoint(0, 1).current_leader(), 0);
}

TEST(Batch, TimeoutFlushesPartialBatch) {
  // A lone client cannot fill max_batch = 8; the batch timeout must flush
  // the partial batch instead of holding it forever.
  Cluster c(1, 3, batching_config(8, us(50)));
  auto& client = c.sys.add_client();
  c.sim.spawn([](Simulator& sim, ClientEndpoint& cl) -> Task<void> {
    for (int k = 0; k < 3; ++k) {
      std::uint32_t v = static_cast<std::uint32_t>(k);
      co_await cl.multicast(dst_of(0), std::as_bytes(std::span(&v, 1)));
      co_await sim.sleep(us(300));
    }
  }(c.sim, client));
  c.sim.run_for(sim::ms(5));

  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ((c.log.by_replica[{0, r}].size()), 3u) << "replica " << r;
  }
}

TEST(Batch, SheddingAgreesAcrossReplicasUnderBatching) {
  // Admission accounting moved to batch granularity; the BUSY contract is
  // unchanged: every replica of every destination sees the same per-uid
  // shed verdict, under a burst that overruns the window.
  Config cfg = batching_config();
  cfg.admission_window = 4;
  Cluster c(2, 3, cfg);
  std::vector<std::pair<MsgUid, DstMask>> sent;
  spawn_workload(c, /*clients=*/6, /*per_client=*/20, /*seed=*/43, sent);
  c.sim.run_for(sim::ms(60));

  check_properties(c, sent);

  std::map<MsgUid, bool> shed_of;
  std::size_t shed_count = 0;
  for (const auto& [key, seq] : c.log.by_replica) {
    for (const auto& d : seq) {
      auto [it, inserted] = shed_of.emplace(d.uid, d.shed);
      if (inserted) {
        shed_count += d.shed ? 1 : 0;
      } else {
        EXPECT_EQ(it->second, d.shed)
            << "shed verdict diverges for uid " << d.uid;
      }
    }
  }
  EXPECT_GT(shed_count, 0u) << "burst never overran the admission window";
  EXPECT_LT(shed_count, shed_of.size()) << "everything was shed";
}

TEST(Batch, DuplicateInboxWriteDeliveredOnce) {
  // A client retry re-writes the same uid into a later inbox slot. With
  // batching the leader must still propose and deliver it exactly once.
  Cluster c(1, 3, batching_config());
  auto& client = c.sys.add_client();

  WireMessage msg;
  msg.uid = make_uid(0, 1);
  msg.dst = dst_of(0);
  const std::vector<std::uint8_t> payload{5};
  msg.set_payload(std::as_bytes(std::span(payload)));

  c.sim.spawn([](Cluster& cl, ClientEndpoint& from,
                 WireMessage m) -> Task<void> {
    for (std::uint64_t ring_seq = 1; ring_seq <= 2; ++ring_seq) {
      m.ring_seq = ring_seq;
      for (int r = 0; r < 3; ++r) {
        Endpoint& ep = cl.sys.endpoint(0, r);
        cl.fabric.write_async(
            from.node().id(),
            rdma::RAddr{ep.node().id(), ep.inbox_mr(),
                        ep.inbox_slot_offset(0, ring_seq)},
            rdma::pod_bytes(m));
      }
      co_await cl.sim.sleep(us(500));
    }
  }(c, client, msg));
  c.sim.run_for(sim::ms(5));

  for (int r = 0; r < 3; ++r) {
    const auto& seq = c.log.by_replica[{0, r}];
    ASSERT_EQ(seq.size(), 1u) << "replica " << r;
    EXPECT_EQ(seq[0].uid, make_uid(0, 1));
  }
}

TEST(Batch, SameSeedRunsAreDeterministic) {
  // Two independent clusters, same seeds, same workload: the per-replica
  // delivery sequences (uid and timestamp) must match exactly.
  auto run = [](std::map<std::pair<GroupId, int>,
                         std::vector<std::pair<MsgUid, std::uint64_t>>>& out) {
    Cluster c(2, 3, batching_config(), /*fabric_seed=*/777);
    std::vector<std::pair<MsgUid, DstMask>> sent;
    spawn_workload(c, /*clients=*/4, /*per_client=*/15, /*seed=*/44, sent);
    c.sim.run_for(sim::ms(40));
    for (const auto& [key, seq] : c.log.by_replica) {
      for (const auto& d : seq) out[key].emplace_back(d.uid, d.tmp);
    }
  };
  std::map<std::pair<GroupId, int>,
           std::vector<std::pair<MsgUid, std::uint64_t>>> a, b;
  run(a);
  run(b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace heron::amcast
