// Fail-on-pre-fix regression tests for the hot-path bugfix sweep:
//   * wait_until_timeout used to schedule a fresh deadline timer per
//     notification, bloating the event queue quadratically;
//   * Rng::uniform_int computed `hi - lo` in signed arithmetic, which
//     overflows (UB) for extreme spans;
//   * Fabric::deliver_write dropped payloads for dead targets while
//     bumping stats_.failures but not the completion_errors counter,
//     so the two diverged.
#include <gtest/gtest.h>

#include <array>
#include <limits>

#include "rdma/fabric.hpp"
#include "sim/notifier.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace heron {
namespace {

sim::Task<void> park_until_timeout(sim::Notifier& n, bool& timed_out) {
  const bool ok =
      co_await sim::wait_until_timeout(n, [] { return false; }, sim::ms(1));
  timed_out = !ok;
}

TEST(BugfixRegression, WaitUntilTimeoutSchedulesOneDeadlineTimer) {
  sim::Simulator sim;
  sim::Notifier n(sim);
  bool timed_out = false;
  sim.spawn(park_until_timeout(n, timed_out));

  // Hammer the notifier with spurious wakeups well before the deadline.
  constexpr int kNotifies = 200;
  for (int i = 1; i <= kNotifies; ++i) {
    sim.schedule(sim::us(i), [&n] { n.notify_all(); });
  }
  sim.run_until(sim::us(kNotifies + 1));

  // Pre-fix every wakeup left a superseded deadline timer pending until
  // ms(1) — ~kNotifies queued events here. Post-fix: the single timer.
  EXPECT_LE(sim.pending_events(), 3u);

  sim.run();
  EXPECT_TRUE(timed_out);
}

TEST(BugfixRegression, UniformIntHandlesExtremeRanges) {
  sim::Rng rng(123);
  constexpr auto kMin = std::numeric_limits<std::int64_t>::min();
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();

  // Degenerate one-value ranges at both extremes.
  EXPECT_EQ(rng.uniform_int(kMin, kMin), kMin);
  EXPECT_EQ(rng.uniform_int(kMax, kMax), kMax);

  // Narrow ranges hugging the extremes, and fully negative ranges,
  // stay in bounds.
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(kMin, kMin + 9);
    EXPECT_GE(v, kMin);
    EXPECT_LE(v, kMin + 9);
  }
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -1);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -1);
  }

  // The full span: `hi - lo` overflows a signed 64-bit subtraction
  // (pre-fix UB). Post-fix this draws any 64-bit value.
  bool seen_negative = false;
  bool seen_nonnegative = false;
  for (int i = 0; i < 64; ++i) {
    const auto v = rng.uniform_int(kMin, kMax);
    seen_negative |= v < 0;
    seen_nonnegative |= v >= 0;
  }
  EXPECT_TRUE(seen_negative);
  EXPECT_TRUE(seen_nonnegative);
}

TEST(BugfixRegression, DeadTargetWritesCountAsCompletionErrors) {
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, 1);
  fabric.telemetry().metrics.enable();
  auto& a = fabric.add_node();
  auto& b = fabric.add_node();
  const auto mr = b.register_region(64);

  // Fire-and-forget writes whose target dies before they arrive are
  // dropped at delivery time.
  std::array<std::byte, 8> payload{};
  constexpr int kWrites = 4;
  for (int i = 0; i < kWrites; ++i) {
    fabric.write_async(a.id(), rdma::RAddr{b.id(), mr, 0}, payload);
  }
  b.crash();
  sim.run();

  EXPECT_EQ(fabric.stats().failures, static_cast<std::uint64_t>(kWrites));
  EXPECT_EQ(
      fabric.telemetry().metrics.counter("rdma", "completion_errors").value(),
      fabric.stats().failures);
}

}  // namespace
}  // namespace heron
