// Unit tests for the discrete-event simulation kernel: clock/event
// ordering, coroutine tasks, notifiers, RNG determinism, and stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/notifier.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace heron::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(us(1), 1'000);
  EXPECT_EQ(ms(1), 1'000'000);
  EXPECT_EQ(sec(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_ms(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(to_sec(kNanosPerSec), 1.0);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.schedule(100, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(50, [] {}), std::logic_error);
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NestedSchedulingFromEvent) {
  Simulator sim;
  Nanos inner_time = -1;
  sim.schedule(10, [&] { sim.schedule(5, [&] { inner_time = sim.now(); }); });
  sim.run();
  EXPECT_EQ(inner_time, 15);
}

TEST(Task, SleepAdvancesVirtualTime) {
  Simulator sim;
  Nanos woke_at = -1;
  sim.spawn([](Simulator& s, Nanos& woke) -> Task<void> {
    co_await s.sleep(us(5));
    woke = s.now();
  }(sim, woke_at));
  sim.run();
  EXPECT_EQ(woke_at, us(5));
}

TEST(Task, NestedAwaitReturnsValue) {
  Simulator sim;
  int result = 0;

  struct Helper {
    static Task<int> leaf(Simulator& s) {
      co_await s.sleep(10);
      co_return 21;
    }
    static Task<int> mid(Simulator& s) {
      const int a = co_await leaf(s);
      const int b = co_await leaf(s);
      co_return a + b;
    }
  };

  sim.spawn([](Simulator& s, int& out) -> Task<void> {
    out = co_await Helper::mid(s);
  }(sim, result));
  sim.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(sim.now(), 20);
}

TEST(Task, ExceptionPropagatesThroughAwait) {
  Simulator sim;
  bool caught = false;

  struct Helper {
    static Task<void> boom(Simulator& s) {
      co_await s.sleep(1);
      throw std::runtime_error("boom");
    }
  };

  sim.spawn([](Simulator& s, bool& flag) -> Task<void> {
    try {
      co_await Helper::boom(s);
    } catch (const std::runtime_error&) {
      flag = true;
    }
  }(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Task, RootTaskExceptionSurfacesFromRun) {
  Simulator sim;
  sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.sleep(1);
    throw std::runtime_error("unhandled");
  }(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Task, ManyConcurrentTasksInterleaveDeterministically) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.spawn([](Simulator& s, std::vector<int>& ord, int id) -> Task<void> {
      for (int k = 0; k < 3; ++k) {
        co_await s.sleep(10 * (id + 1));
        ord.push_back(id);
      }
    }(sim, order, i));
  }
  sim.run();
  ASSERT_EQ(order.size(), 15u);
  // First wakeup is task 0 at t=10, then task 1 at t=20 ties with task 0's
  // second sleep; FIFO order at equal times keeps this stable.
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(sim.now(), 150);  // slowest task: 3 sleeps of 50ns
}

TEST(Notifier, WakesAllWaiters) {
  Simulator sim;
  Notifier n(sim);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Notifier& nn, int& w) -> Task<void> {
      co_await nn.wait();
      ++w;
    }(n, woken));
  }
  sim.run();
  EXPECT_EQ(woken, 0);  // nobody notified yet
  sim.schedule(10, [&] { n.notify_all(); });
  sim.run();
  EXPECT_EQ(woken, 3);
}

TEST(Notifier, WaitUntilPredicate) {
  Simulator sim;
  Notifier n(sim);
  int value = 0;
  bool done = false;
  sim.spawn([](Notifier& nn, int& v, bool& d) -> Task<void> {
    co_await wait_until(nn, [&v] { return v >= 3; });
    d = true;
  }(n, value, done));
  for (int i = 1; i <= 3; ++i) {
    sim.schedule(i * 10, [&n, &value] {
      ++value;
      n.notify_all();
    });
  }
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 30);
}

TEST(Notifier, WaitUntilTimeoutExpires) {
  Simulator sim;
  Notifier n(sim);
  bool result = true;
  sim.spawn([](Simulator&, Notifier& nn, bool& r) -> Task<void> {
    r = co_await wait_until_timeout(nn, [] { return false; }, us(100));
  }(sim, n, result));
  sim.run();
  EXPECT_FALSE(result);
  EXPECT_EQ(sim.now(), us(100));
}

TEST(Notifier, WaitUntilTimeoutSucceedsWhenNotified) {
  Simulator sim;
  Notifier n(sim);
  bool flag = false;
  bool result = false;
  sim.spawn([](Notifier& nn, bool& f, bool& r) -> Task<void> {
    r = co_await wait_until_timeout(nn, [&f] { return f; }, us(100));
  }(n, flag, result));
  sim.schedule(us(10), [&] {
    flag = true;
    n.notify_all();
  });
  sim.run();
  EXPECT_TRUE(result);
  EXPECT_EQ(sim.now(), us(100));  // the losing timer still fires at 100us
}

TEST(Notifier, WaitUntilTimeoutPredTrueOnDeadlineTick) {
  // The predicate becomes true by an event on the *same tick* as the
  // deadline. Same-time events run in insertion order, so the flag-setting
  // event (queued before the coroutine parks its deadline event) runs
  // first; the deadline resume then re-checks the predicate and sees the
  // flag — that counts as success, not timeout.
  Simulator sim;
  Notifier n(sim);
  bool flag = false;
  bool result = false;
  sim.schedule(us(100), [&] {
    flag = true;
    n.notify_all();
  });
  sim.spawn([](Notifier& nn, bool& f, bool& r) -> Task<void> {
    r = co_await wait_until_timeout(nn, [&f] { return f; }, us(100));
  }(n, flag, result));
  sim.run();
  EXPECT_TRUE(result);
  EXPECT_EQ(sim.now(), us(100));
}

TEST(Notifier, WaitUntilTimeoutZeroTimeout) {
  // Zero budget: a false predicate fails immediately (no suspension, no
  // time advance); an already-true predicate still succeeds.
  Simulator sim;
  Notifier n(sim);
  bool r_false = true;
  bool r_true = false;
  sim.spawn([](Notifier& nn, bool& rf, bool& rt) -> Task<void> {
    rf = co_await wait_until_timeout(nn, [] { return false; }, 0);
    rt = co_await wait_until_timeout(nn, [] { return true; }, 0);
  }(n, r_false, r_true));
  sim.run();
  EXPECT_FALSE(r_false);
  EXPECT_TRUE(r_true);
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(n.waiter_count(), 0u);
}

TEST(Notifier, WaitUntilTimeoutNotifierDestroyedWhileWaiting) {
  // The deadline event lives in the simulator, not the notifier, so a
  // waiter survives its notifier being destroyed mid-wait: it resumes at
  // the deadline and reports a timeout without touching the dead object.
  Simulator sim;
  auto n = std::make_unique<Notifier>(sim);
  bool result = true;
  bool finished = false;
  sim.spawn([](Notifier& nn, bool& r, bool& f) -> Task<void> {
    r = co_await wait_until_timeout(nn, [] { return false; }, us(100));
    f = true;
  }(*n, result, finished));
  sim.schedule(us(50), [&n] { n.reset(); });
  sim.run();
  EXPECT_TRUE(finished);
  EXPECT_FALSE(result);
  EXPECT_EQ(sim.now(), us(100));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng root(7);
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformIntWithinBounds) {
  Rng r(9);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = r.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(11);
  bool seen[5] = {};
  for (int i = 0; i < 1'000; ++i) seen[r.uniform_int(0, 4)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng r(13);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(Rng, LognormalMeanRoughlyCorrect) {
  Rng r(17);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.lognormal_mean(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, NurandWithinBounds) {
  Rng r(19);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = r.nurand(255, 0, 999, 123);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 999);
  }
}

TEST(Stats, MeanAndPercentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.record(i);
  EXPECT_DOUBLE_EQ(rec.mean(), 50.5);
  EXPECT_EQ(rec.percentile(0), 1);
  EXPECT_EQ(rec.percentile(100), 100);
  EXPECT_NEAR(static_cast<double>(rec.percentile(50)), 50.0, 1.0);
  EXPECT_NEAR(static_cast<double>(rec.percentile(99)), 99.0, 1.0);
  EXPECT_EQ(rec.min(), 1);
  EXPECT_EQ(rec.max(), 100);
}

TEST(Stats, PercentileEdgeCases) {
  // Table-driven nearest-rank checks, including the out-of-range clamp:
  // before the fix a negative p produced a negative rank whose size_t
  // conversion wrapped huge and returned the maximum sample.
  struct Case {
    std::vector<Nanos> samples;
    double p;
    Nanos want;
  };
  const Case cases[] = {
      {{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0, 1},
      {{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 100, 10},
      {{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 50, 6},   // rank 4.5 rounds to idx 5
      {{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, -5, 1},   // clamped to p=0
      {{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 250, 10}, // clamped to p=100
      {{42}, 0, 42},
      {{42}, 50, 42},
      {{42}, 100, 42},
      {{42}, -1, 42},
      {{7, 3}, 0, 3},
      {{7, 3}, 49, 3},
      {{7, 3}, 51, 7},
      {{7, 3}, 100, 7},
  };
  for (const Case& c : cases) {
    LatencyRecorder rec;
    for (Nanos v : c.samples) rec.record(v);
    EXPECT_EQ(rec.percentile(c.p), c.want)
        << "samples=" << c.samples.size() << " p=" << c.p;
  }
  // The pre-fix wraparound: on 1..100, percentile(-5) returned 100.
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.record(i);
  EXPECT_EQ(rec.percentile(-5), 1);
}

TEST(Stats, CdfMatchesPercentile) {
  // cdf() and percentile() must use the same nearest-rank rounding; the
  // pre-fix cdf truncated the rank, disagreeing whenever its fractional
  // part was >= 0.5 (e.g. 10 samples at frac 0.1: rank 0.9 -> idx 0 vs 1).
  LatencyRecorder rec;
  for (int i = 1; i <= 10; ++i) rec.record(i * 10);
  const auto points = rec.cdf(10);
  ASSERT_EQ(points.size(), 10u);
  for (const auto& [lat, frac] : points) {
    EXPECT_EQ(lat, rec.percentile(frac * 100.0)) << "frac=" << frac;
  }
  EXPECT_EQ(points.front().first, rec.percentile(10));
  EXPECT_EQ(points.back().first, 100);
}

TEST(Stats, CdfSingleSample) {
  LatencyRecorder rec;
  rec.record(5);
  const auto points = rec.cdf(4);
  ASSERT_EQ(points.size(), 4u);
  for (const auto& [lat, frac] : points) EXPECT_EQ(lat, 5);
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(Stats, StddevOfConstantIsZero) {
  LatencyRecorder rec;
  for (int i = 0; i < 10; ++i) rec.record(42);
  EXPECT_DOUBLE_EQ(rec.stddev(), 0.0);
}

TEST(Stats, CdfIsMonotone) {
  LatencyRecorder rec;
  Rng r(21);
  for (int i = 0; i < 1'000; ++i) rec.record(static_cast<Nanos>(r.bounded(1'000'000)));
  auto points = rec.cdf(50);
  ASSERT_EQ(points.size(), 50u);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].first, points[i - 1].first);
    EXPECT_GT(points[i].second, points[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(Stats, EmptyRecorderIsSafe) {
  LatencyRecorder rec;
  EXPECT_TRUE(rec.empty());
  EXPECT_DOUBLE_EQ(rec.mean(), 0.0);
  EXPECT_EQ(rec.percentile(50), 0);
  EXPECT_TRUE(rec.cdf().empty());
}

TEST(Stats, ThroughputWindow) {
  ThroughputWindow w{.completed = 5'000, .window = sec(2)};
  EXPECT_DOUBLE_EQ(w.per_second(), 2'500.0);
  ThroughputWindow empty{};
  EXPECT_DOUBLE_EQ(empty.per_second(), 0.0);
}

// ---------------------------------------------------------------------------
// Timer-wheel event queue: ordering contract and pop-then-execute semantics.

TEST(Simulator, ScheduleSameTimestampFromInsideEventRunsFifo) {
  // Scheduling at the *current* timestamp from inside an executing event
  // must land after every already-queued event at that instant (FIFO by
  // seq). The old kernel moved out of priority_queue::top() via const_cast
  // before pop; this exercises the new pop-then-execute path, including
  // sorted insertion into the actively draining wheel slot.
  Simulator sim;
  std::vector<int> order;
  sim.schedule(10, [&] {
    order.push_back(1);
    sim.schedule(0, [&] {
      order.push_back(3);
      sim.schedule(0, [&] { order.push_back(4); });
    });
  });
  sim.schedule(10, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulator, RandomizedOrderMatchesStableSortBySchedule) {
  // Gold determinism test: thousands of events across every queue regime
  // (same-tick, in-slot, cross-wheel, far-bucket), many scheduled from
  // inside executing events, must pop in exactly ascending (when, seq) --
  // i.e. a stable sort of the schedule order by timestamp.
  Simulator sim;
  Rng rng(1234);
  std::vector<int> fired;
  std::vector<std::pair<Nanos, int>> scheduled;  // (when, id) in seq order
  int next_id = 0;
  std::function<void(int)> spawn_more = [&](int depth) {
    const int id = next_id++;
    const double pick = rng.uniform();
    Nanos delay = 0;
    if (pick < 0.3) {
      delay = 0;  // same tick
    } else if (pick < 0.6) {
      delay = rng.uniform_int(1, 1000);  // within a few wheel slots
    } else if (pick < 0.9) {
      delay = rng.uniform_int(1000, 300'000);  // across the wheel horizon
    } else {
      delay = rng.uniform_int(300'000, 5'000'000);  // far buckets
    }
    scheduled.emplace_back(sim.now() + delay, id);
    sim.schedule(delay, [&, id, depth] {
      fired.push_back(id);
      if (depth < 3) {
        spawn_more(depth + 1);
        spawn_more(depth + 1);
      }
    });
  };
  for (int i = 0; i < 200; ++i) spawn_more(0);
  sim.run();

  ASSERT_EQ(fired.size(), scheduled.size());
  std::stable_sort(
      scheduled.begin(), scheduled.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < fired.size(); ++i) {
    ASSERT_EQ(fired[i], scheduled[i].second) << "divergence at pop " << i;
  }
}

TEST(Simulator, RunUntilPeekThenEarlierScheduleStaysOrdered) {
  // run_until peeks the head (a far-future event), declines to pop it,
  // and the caller then schedules something earlier. Peeking must not
  // advance the wheel base past the new event's slot.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(ms(1), [&] { order.push_back(2); });
  sim.schedule_at(ms(5), [&] { order.push_back(3); });  // separate far bucket
  sim.run_until(us(100));
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(sim.now(), us(100));
  sim.schedule_at(us(200), [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), ms(5));
}

TEST(Simulator, RootFailureSurfacesPromptly) {
  // An exception escaping a root task must abort the run at that event
  // boundary. Pre-fix, spawn() only reaped past 64 roots, so run() kept
  // executing every queued event and only rethrew once the queue drained.
  Simulator sim;
  bool later_ran = false;
  sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.sleep(us(1));
    throw std::runtime_error("root failure");
  }(sim));
  sim.schedule(us(2), [&] { later_ran = true; });
  EXPECT_THROW(sim.run(), std::runtime_error);
  EXPECT_FALSE(later_ran) << "events after the failure boundary still ran";
  // The failure was consumed; surviving events run on the next call.
  sim.run();
  EXPECT_TRUE(later_ran);
}

TEST(Simulator, TimerPoolCancelReuseAndStaleTokens) {
  Simulator sim;
  int fired = 0;
  auto t1 = sim.schedule_timer_at(us(10), [&] { fired += 1; });
  auto t2 = sim.schedule_timer_at(us(20), [&] { fired += 10; });
  EXPECT_TRUE(sim.cancel_timer(t1));
  EXPECT_FALSE(sim.cancel_timer(t1));  // token cleared by cancel
  sim.run();
  EXPECT_EQ(fired, 10);                 // t1 canceled, t2 fired
  EXPECT_EQ(sim.now(), us(20));         // canceled shell still drains at us(10)
  EXPECT_FALSE(sim.cancel_timer(t2));   // already fired: stale generation
  // A freed slot is recycled (t2's, freed last) with a bumped generation.
  auto t3 = sim.schedule_timer_at(sim.now() + us(5), [&] { fired += 100; });
  EXPECT_EQ(t3.slot, 1u);
  sim.run();
  EXPECT_EQ(fired, 110);
}

TEST(EventFn, InlineAndHeapTargetsInvokeAndDestroyOnce) {
  auto token = std::make_shared<int>(0);
  {
    EventFn small([token] { *token += 1; });  // fits the inline buffer
    std::array<std::uint64_t, 8> pad{};       // 64-byte capture: heap path
    EventFn big([token, pad] { *token += static_cast<int>(pad[0]) + 10; });
    EventFn moved = std::move(small);
    moved();
    big();
    EXPECT_EQ(*token, 11);
    // token + moved's capture + big's capture; the moved-from small
    // relocated its capture rather than copying it.
    EXPECT_EQ(token.use_count(), 3);
  }
  EXPECT_EQ(token.use_count(), 1);  // every capture destroyed exactly once
}

// ---------------------------------------------------------------------------
// Notifier liveness: destroying a parked coroutine frame must unlink its
// waiter so no walker ever resumes a dead handle (use-after-free pre-fix).

Task<void> flag_waiter(Notifier& n, bool& resumed) {
  co_await n.wait();
  resumed = true;
}

TEST(Notifier, ParkedWaiterDestroyedBeforeNotifyIsNotResumed) {
  Simulator sim;
  Notifier n(sim);
  bool resumed = false;
  auto waiter = flag_waiter(n, resumed);
  waiter.start();
  EXPECT_EQ(n.waiter_count(), 1u);
  waiter = Task<void>{};  // crash-injection analogue: frame torn down parked
  EXPECT_EQ(n.waiter_count(), 0u);
  n.notify_all();
  sim.run();
  EXPECT_FALSE(resumed);
}

TEST(Notifier, FiredWaiterDestroyedBeforeWalkerRunsIsSkipped) {
  // The sharpest pre-fix case: notify_all() already queued the wakeup
  // when the frame is destroyed; the old kernel's scheduled callback
  // resumed a dead coroutine handle.
  Simulator sim;
  Notifier n(sim);
  bool resumed = false;
  bool other_resumed = false;
  auto doomed = flag_waiter(n, resumed);
  auto survivor = flag_waiter(n, other_resumed);
  doomed.start();
  survivor.start();
  n.notify_all();
  doomed = Task<void>{};  // destroyed between notify and the walker event
  sim.run();
  EXPECT_FALSE(resumed);
  EXPECT_TRUE(other_resumed);
}

TEST(Notifier, WokenWaiterDestroyingSiblingWaiterIsSafe) {
  Simulator sim;
  Notifier n(sim);
  bool r1 = false;
  bool r2 = false;
  auto sibling = std::make_unique<Task<void>>(flag_waiter(n, r2));
  auto killer = [](Notifier& nn, std::unique_ptr<Task<void>>& sib,
                   bool& r) -> Task<void> {
    co_await nn.wait();
    sib.reset();  // tears down the next frame in this very wakeup batch
    r = true;
  }(n, sibling, r1);
  killer.start();
  sibling->start();
  n.notify_all();
  sim.run();
  EXPECT_TRUE(r1);
  EXPECT_FALSE(r2);
}

TEST(Notifier, NotifierDestroyedByWokenWaiterStillWakesBatch) {
  // Matches the old kernel's semantics: waiters already notified keep
  // their wakeup even if the notifier dies before the walker reaches them.
  Simulator sim;
  auto n = std::make_unique<Notifier>(sim);
  bool r1 = false;
  bool r2 = false;
  auto destroyer = [](std::unique_ptr<Notifier>& nn, bool& r) -> Task<void> {
    co_await nn->wait();
    nn.reset();
    r = true;
  }(n, r1);
  auto second = flag_waiter(*n, r2);
  destroyer.start();
  second.start();
  n->notify_all();
  sim.run();
  EXPECT_TRUE(r1);
  EXPECT_TRUE(r2);
}

TEST(Notifier, TimedWaiterDestroyedMidWaitCancelsDeadlineResume) {
  // A frame destroyed while suspended in wait_until_timeout must cancel
  // its pool timer (frame locals run their destructors on destroy), so
  // the deadline event finds a stale generation instead of a dead handle.
  Simulator sim;
  Notifier n(sim);
  bool resumed = false;
  auto w = [](Notifier& nn, bool& r) -> Task<void> {
    (void)co_await wait_until_timeout(nn, [] { return false; }, us(100));
    r = true;
  }(n, resumed);
  w.start();
  sim.run_until(us(10));
  w = Task<void>{};
  sim.run();  // pre-fix: the deadline timer resumed the destroyed frame
  EXPECT_FALSE(resumed);
  EXPECT_EQ(sim.now(), us(100));  // the disarmed shell still drains
}

TEST(Notifier, NotifyHeavyTimedWaitKeepsEventQueueBounded) {
  // Queue-bloat guard for the timer wheel + intrusive waiters: a timed
  // wait bombarded by notifies must hold at most the deadline shell, one
  // in-flight walker and the re-park -- not one event per notify.
  Simulator sim;
  Notifier n(sim);
  bool result = true;
  sim.spawn([](Notifier& nn, bool& r) -> Task<void> {
    r = co_await wait_until_timeout(nn, [] { return false; }, ms(10));
  }(n, result));
  std::size_t max_pending = 0;
  for (int i = 0; i < 1000; ++i) {
    sim.run_for(us(1));
    n.notify_all();
    max_pending = std::max(max_pending, sim.pending_events());
  }
  sim.run();
  EXPECT_FALSE(result);
  EXPECT_EQ(sim.now(), ms(10));
  EXPECT_LE(max_pending, 3u);
}

// ---------------------------------------------------------------------------
// LatencyRecorder histogram mode.

TEST(Stats, HistogramPercentileParityWithVerbatim) {
  LatencyRecorder exact;
  LatencyRecorder hist(LatencyRecorder::Mode::kHistogram);
  Rng rng(99);
  for (int i = 0; i < 200'000; ++i) {
    const auto v = static_cast<Nanos>(rng.lognormal_mean(30'000.0, 0.8));
    exact.record(v);
    hist.record(v);
  }
  EXPECT_EQ(hist.count(), exact.count());
  EXPECT_EQ(hist.min(), exact.min());
  EXPECT_EQ(hist.max(), exact.max());
  EXPECT_NEAR(hist.mean(), exact.mean(), exact.mean() * 1e-9);
  EXPECT_NEAR(hist.stddev(), exact.stddev(), exact.stddev() * 1e-6);
  for (const double p : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9}) {
    const auto e = static_cast<double>(exact.percentile(p));
    const auto h = static_cast<double>(hist.percentile(p));
    // 64 sub-buckets per octave: bucket width <= 1/64 of the value.
    EXPECT_NEAR(h, e, std::max(1.0, e / 64.0)) << "p" << p;
  }
}

TEST(Stats, HistogramCdfParity) {
  LatencyRecorder exact;
  LatencyRecorder hist(LatencyRecorder::Mode::kHistogram);
  Rng rng(7);
  for (int i = 0; i < 50'000; ++i) {
    const auto v = static_cast<Nanos>(rng.exponential(10'000.0));
    exact.record(v);
    hist.record(v);
  }
  const auto ce = exact.cdf(20);
  const auto ch = hist.cdf(20);
  ASSERT_EQ(ce.size(), ch.size());
  for (std::size_t i = 0; i < ce.size(); ++i) {
    EXPECT_DOUBLE_EQ(ch[i].second, ce[i].second);
    const auto e = static_cast<double>(ce[i].first);
    EXPECT_NEAR(static_cast<double>(ch[i].first), e,
                std::max(1.0, e / 64.0));
    if (i > 0) {
      EXPECT_GE(ch[i].first, ch[i - 1].first);  // monotone
    }
  }
}

TEST(Stats, HistogramSmallValuesAreExact) {
  LatencyRecorder hist(LatencyRecorder::Mode::kHistogram);
  for (Nanos v = 0; v < 64; ++v) hist.record(v);
  EXPECT_EQ(hist.percentile(0), 0);
  EXPECT_EQ(hist.percentile(50), 32);  // nearest-rank over 0..63
  EXPECT_EQ(hist.percentile(100), 63);
}

TEST(Stats, HistogramBoundedUnderTenMillionRecords) {
  LatencyRecorder hist(LatencyRecorder::Mode::kHistogram);
  Rng rng(3);
  for (int i = 0; i < 10'000'000; ++i) {
    hist.record(static_cast<Nanos>(rng.bounded(100'000'000)));
  }
  EXPECT_EQ(hist.count(), 10'000'000u);
  // Structural bound: no per-sample storage, only fixed bucket counters.
  EXPECT_TRUE(hist.samples().empty());
  EXPECT_GT(hist.percentile(50), 0);
  hist.clear();
  EXPECT_TRUE(hist.empty());
}

// ---------------------------------------------------------------------------
// Zipfian skew generator.

TEST(Rng, ZipfRanksWithinBoundsAndSkewed) {
  Rng rng(7);
  ZipfGen zipf(1'000'000, 0.99);
  std::uint64_t top10 = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t rank = zipf.next(rng);
    ASSERT_LT(rank, 1'000'000u);
    top10 += rank < 10 ? 1 : 0;
  }
  // YCSB theta=0.99 over 10^6 keys puts ~19% of mass on the top 10.
  EXPECT_GT(top10, kDraws / 10);
}

TEST(Rng, ZipfThetaZeroIsUniform) {
  Rng rng(11);
  ZipfGen zipf(1'000'000, 0.0);
  std::uint64_t top10 = 0;
  for (int i = 0; i < 100'000; ++i) {
    top10 += zipf.next(rng) < 10 ? 1 : 0;
  }
  EXPECT_LT(top10, 100u);  // expected ~1 hit
}

TEST(Rng, ZipfIsDeterministicPerSeed) {
  ZipfGen zipf(4096, 0.99);
  Rng a(21);
  Rng b(21);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(zipf.next(a), zipf.next(b));
  }
}

}  // namespace
}  // namespace heron::sim
