// Fabric backpressure end-to-end: priority lanes keep lease renewals
// alive through a leader incast (fail-on-pre-fix contrast arm), adaptive
// admission tightens under congestion and recovers after it, a latency
// spike degrades fast reads to the ordered path without a linearizability
// violation or a permanent fast-read outage, and the faultlab congestion
// primitives run under the full oracle suite (including the tail-latency
// oracle) deterministically.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "faultlab/bank.hpp"
#include "faultlab/history.hpp"
#include "faultlab/injector.hpp"
#include "faultlab/linear.hpp"
#include "faultlab/plan.hpp"
#include "rdma/fabric.hpp"

namespace heron::faultlab {
namespace {

constexpr std::uint64_t kAccounts = 8;
constexpr int kReplicas = 3;

/// Topology used by every cell here: the three replicas of partition 0
/// fill rack 0 (nodes are created in replica order), so client, lease
/// manager and phantom traffic all cross that rack's oversubscribed
/// uplink — the leader-incast geometry of the paper's ToR discussion.
rdma::LatencyModel congested_model(double oversub, std::uint32_t credits) {
  rdma::LatencyModel m;
  m.rack_size = kReplicas;
  m.oversub_ratio = oversub;
  m.credit_window = credits;
  return m;
}

struct CellResult {
  std::uint64_t completed = 0;
  std::uint64_t fast_hits = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t lease_rejects = 0;
  std::uint64_t lease_skips = 0;
  std::uint64_t credit_stalls = 0;
  std::uint64_t injected_ops = 0;
  std::uint64_t admission_min_seen = 0;
  std::uint64_t admission_final = 0;
  std::uint64_t hits_mid = 0;
  std::uint64_t rejects_mid = 0;
  std::vector<std::uint64_t> digests;
  std::vector<Violation> violations;
};

struct CellOptions {
  std::uint64_t seed = 7;
  int clients = 3;
  int ops = 40;
  double read_ratio = 0.7;
  /// Pause between ops; spreads the workload across the fault window so
  /// mid-storm probes observe clients that are still running.
  sim::Nanos think = 0;
  sim::Nanos lease_duration = sim::ms(1);
  rdma::LatencyModel model = congested_model(2.0, 0);
  amcast::Config amcast;
  core::HeronConfig core;
  std::string plan;
  sim::Nanos run_for = sim::ms(120);
  /// When > 0, sample fast-read counters and the leader's admission
  /// window at this instant (mid-congestion probes).
  sim::Nanos sample_at = 0;
};

sim::Task<void> mixed_loop(core::System& sys, core::Client& client,
                           LinearChecker& lin, std::uint64_t seed, int ops,
                           double read_ratio, sim::Nanos think) {
  sim::Rng rng(seed);
  auto& sim = sys.simulator();
  for (int k = 0; k < ops; ++k) {
    if (think > 0) co_await sim.sleep(think);
    const core::Oid oid = rng.bounded(kAccounts);
    if (rng.chance(read_ratio)) {
      const sim::Nanos t0 = sim.now();
      const auto res = co_await client.read(0, oid);
      if (res.submit_status == core::SubmitStatus::kOk && res.status == 0) {
        lin.note_read(oid, res.tmp, t0, sim.now(), res.fast);
      }
    } else {
      DepositReq req{oid, 5};
      const sim::Nanos t0 = sim.now();
      const auto res = co_await client.submit(
          amcast::dst_of(0), kDeposit, std::as_bytes(std::span(&req, 1)));
      lin.note_write(oid, client.id(), res.session_seq, t0, sim.now(),
                     res.status);
    }
  }
}

CellResult run_cell(const CellOptions& opt) {
  sim::Simulator sim;
  rdma::Fabric fabric(sim, opt.model, opt.seed);
  core::HeronConfig cfg = opt.core;
  cfg.object_region_bytes = 1u << 20;
  cfg.lease_duration = opt.lease_duration;
  cfg.client_attempt_timeout = sim::ms(2);
  cfg.client_max_retries = 12;
  cfg.client_retry_backoff = sim::us(50);
  cfg.client_retry_backoff_max = sim::ms(1);
  core::System sys(
      fabric, /*partitions=*/1, kReplicas,
      [] { return std::make_unique<BankApp>(1, kAccounts); }, cfg,
      opt.amcast);
  HistoryRecorder history;
  history.attach(sys);
  sys.start();

  LinearChecker lin;
  for (int c = 0; c < opt.clients; ++c) {
    sim.spawn(mixed_loop(sys, sys.add_client(), lin,
                         opt.seed * 1000 + static_cast<std::uint64_t>(c),
                         opt.ops, opt.read_ratio, opt.think));
  }
  Injector injector(sys);
  injector.run(FaultPlan::parse("plan", opt.plan));

  CellResult out;
  out.admission_min_seen = ~0ull;
  if (opt.sample_at > 0) {
    sim.spawn([](core::System& s, CellResult& res,
                 sim::Nanos at) -> sim::Task<void> {
      co_await s.simulator().sleep(at);
      res.admission_min_seen =
          s.amcast().endpoint(0, 0).effective_admission_window();
      for (std::uint32_t c = 0; c < s.client_count(); ++c) {
        res.hits_mid += s.client(c).fastread_hits();
        res.rejects_mid += s.client(c).fastread_lease_rejects();
      }
    }(sys, out, opt.sample_at));
  }
  sim.run_for(opt.run_for);

  for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
    auto& cl = sys.client(c);
    out.completed += cl.completed();
    out.fast_hits += cl.fastread_hits();
    out.fallbacks += cl.fastread_fallbacks();
    out.lease_rejects += cl.fastread_lease_rejects();
    EXPECT_FALSE(cl.in_flight()) << "client " << c << " hung";
  }
  out.lease_skips = sys.lease_renewals_skipped();
  out.credit_stalls = fabric.stats().credit_stalls;
  out.injected_ops = fabric.stats().injected_ops;
  out.admission_final =
      sys.amcast().endpoint(0, 0).effective_admission_window();
  for (int r = 0; r < kReplicas; ++r) {
    if (!sys.replica(0, r).node().alive()) continue;
    out.digests.push_back(store_digest(sys.replica(0, r)));
  }
  out.violations =
      check_amcast_properties(history, sys, injector.ever_crashed());
  check_exactly_once(history, out.violations);
  check_store_convergence(sys, out.violations);
  check_tail_latency(history, /*p99_bound=*/sim::ms(60), out.violations);
  for (auto& v : lin.check(history)) out.violations.push_back(std::move(v));
  return out;
}

void expect_clean(const CellResult& res) {
  for (const auto& v : res.violations) {
    ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
  }
}

// ---------------------------------------------------------------------
// Priority lanes: lease markers must not queue behind a leader incast.
// The lanes-off arm is the pre-fix fabric — markers share the congested
// uplink FIFO, renewals arrive after expiry, and fast reads spend the
// congestion window rejecting. Correctness holds in both arms; only the
// lanes-on arm keeps the lease (and with it the fast-read path) alive.
// ---------------------------------------------------------------------

TEST(Congestion, PriorityLanesKeepLeasesAliveUnderLeaderIncast) {
  CellOptions opt;
  opt.seed = 41;
  opt.ops = 250;
  opt.think = sim::us(25);  // workload spans well past the 2-6ms storm
  opt.lease_duration = sim::us(400);
  opt.plan = "incast g0.r0 f8 b32768 p20us @ 2ms for 4ms";
  opt.sample_at = sim::us(4500);  // inside the storm

  CellOptions off = opt;
  off.model.priority_lanes = false;
  const CellResult with_lanes = run_cell(opt);
  const CellResult without_lanes = run_cell(off);

  expect_clean(with_lanes);
  expect_clean(without_lanes);
  ASSERT_GT(with_lanes.injected_ops, 0u);
  // Pre-fix arm: renewals queued behind ~milliseconds of phantom bytes,
  // so reads during the window hit expired leases.
  EXPECT_GT(without_lanes.rejects_mid, 0u);
  // Priority arm: grant multicasts bypass the FIFO; the congestion window
  // produces strictly fewer expiry rejects than the pre-fix fabric.
  EXPECT_LT(with_lanes.lease_rejects, without_lanes.lease_rejects);
  EXPECT_GT(with_lanes.fast_hits, 0u);
}

// ---------------------------------------------------------------------
// Adaptive admission: the leader halves its window while its uplink is
// congested and grows back after clean samples.
// ---------------------------------------------------------------------

TEST(Congestion, AdaptiveAdmissionTightensThenRecovers) {
  CellOptions opt;
  opt.seed = 43;
  opt.ops = 120;
  opt.read_ratio = 0.3;  // write-heavy: keeps the leader's batch loop busy
  opt.amcast.admission_window = 16;
  opt.amcast.adaptive_admission = true;
  opt.amcast.admission_min_window = 2;
  opt.plan = "incast g0.r0 f8 b32768 p20us @ 2ms for 4ms";
  opt.sample_at = sim::ms(5);

  const CellResult res = run_cell(opt);
  expect_clean(res);
  // Mid-congestion the effective window had been cut below the configured
  // ceiling; by the end of the (long) run it recovered all the way back.
  EXPECT_LT(res.admission_min_seen, 16u);
  EXPECT_GE(res.admission_min_seen, 2u);
  EXPECT_EQ(res.admission_final, 16u);
}

// ---------------------------------------------------------------------
// Lease-renewal backpressure gate: under sustained congestion the lease
// manager skips renewal periods instead of feeding a congested partition.
// ---------------------------------------------------------------------

TEST(Congestion, LeaseManagerShedsRenewalsUnderBackpressure) {
  CellOptions opt;
  opt.seed = 47;
  opt.core.lease_backpressure_threshold = sim::us(50);
  opt.plan = "incast g0.r0 f8 b32768 p20us @ 2ms for 4ms";
  const CellResult res = run_cell(opt);
  expect_clean(res);
  EXPECT_GT(res.lease_skips, 0u);
}

// ---------------------------------------------------------------------
// Satellite regression: a mid-run latency spike expires leases, fast
// reads degrade to the ordered path (no linearizability violation), and
// the fast path resumes once the spike clears — no permanent outage.
// ---------------------------------------------------------------------

TEST(Congestion, LatencySpikeDegradesFastReadsThenRecovers) {
  CellOptions opt;
  opt.seed = 53;
  opt.ops = 300;
  opt.think = sim::us(25);  // keeps clients running through + past the spike
  opt.read_ratio = 0.85;
  opt.lease_duration = sim::us(200);
  opt.model = {};  // flat fabric: this regression is about latency only
  opt.plan = "latency x64 @ 2ms for 3ms";
  opt.sample_at = sim::us(4500);  // inside the spike

  const CellResult res = run_cell(opt);
  expect_clean(res);
  // During the spike, renewals arrive after expiry: reads fell back.
  EXPECT_GT(res.rejects_mid, 0u);
  EXPECT_GT(res.fallbacks, 0u);
  // After the spike cleared, one-sided reads resumed.
  EXPECT_GT(res.fast_hits, res.hits_mid);
}

// ---------------------------------------------------------------------
// All congestion primitives at once, full oracle suite, determinism.
// ---------------------------------------------------------------------

CellOptions storm_options(std::uint64_t seed) {
  CellOptions opt;
  opt.seed = seed;
  opt.ops = 50;
  opt.model = congested_model(2.0, /*credits=*/8);
  opt.amcast.admission_window = 16;
  opt.amcast.adaptive_admission = true;
  opt.plan =
      "incast g0.r0 f6 b16384 p40us @ 2ms for 3ms\n"
      "victim g0.r1 b65536 p80us @ 3ms for 3ms\n"
      "creditburst g0.r0 n32 b64 p20us @ 4ms for 2ms";
  return opt;
}

TEST(Congestion, PrimitiveStormPassesFullOracleSuite) {
  const CellResult res = run_cell(storm_options(59));
  expect_clean(res);
  EXPECT_GT(res.injected_ops, 0u);
  EXPECT_GT(res.credit_stalls, 0u);
  EXPECT_GT(res.completed, 0u);
}

TEST(Congestion, PrimitiveStormIsDeterministicPerSeed) {
  const CellResult a = run_cell(storm_options(61));
  const CellResult b = run_cell(storm_options(61));
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.fast_hits, b.fast_hits);
  EXPECT_EQ(a.lease_rejects, b.lease_rejects);
  EXPECT_EQ(a.credit_stalls, b.credit_stalls);
  EXPECT_EQ(a.injected_ops, b.injected_ops);
  EXPECT_EQ(a.digests, b.digests);
}

}  // namespace
}  // namespace heron::faultlab
