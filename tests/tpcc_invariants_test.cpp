// TPC-C database invariants under concurrent mixed load (consistency
// conditions adapted from TPC-C clause 3.3): district order counters
// match the orders actually stored, every order has all its lines, the
// NewOrder table tracks undelivered orders, and all replicas of a
// partition hold identical database state.
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "tpcc/app.hpp"

namespace heron::tpcc {
namespace {

TEST(TpccInvariants, DatabaseConsistentAfterMixedLoad) {
  TpccScale scale{.factor = 0.01, .initial_orders_per_district = 6};
  harness::TpccCluster cluster(2, 3, scale);
  cluster.add_clients(3, {});
  auto result = cluster.run(sim::ms(5), sim::ms(80));
  ASSERT_GT(result.completed, 300u);

  auto& sys = cluster.system();
  for (int p = 0; p < 2; ++p) {
    auto& store = sys.replica(p, 0).store();
    const auto w = static_cast<std::uint32_t>(p);

    for (std::uint32_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
      const auto district =
          load_row<DistrictRow>(store, make_oid(Table::kDistrict, w, d, 0));

      // Every order id below next_o_id exists, with all its lines; none
      // above it exists (order-id continuity, clause 3.3.2.x adapted).
      for (std::uint64_t o = 1; o < district.next_o_id; ++o) {
        const core::Oid ooid = make_oid(Table::kOrder, w, d, o);
        ASSERT_TRUE(store.exists(ooid)) << "w" << w << " d" << d << " o" << o;
        const auto order = load_row<OrderRow>(store, ooid);
        EXPECT_EQ(order.o_id, o);
        EXPECT_GE(order.ol_cnt, 5u);
        EXPECT_LE(order.ol_cnt, 15u);
        for (std::uint32_t l = 1; l <= order.ol_cnt; ++l) {
          EXPECT_TRUE(store.exists(
              make_oid(Table::kOrderLine, w, d, ol_key(o, l))))
              << "missing line " << l << " of order " << o;
        }
        // Delivered orders carry a carrier; undelivered ones do not, and
        // undelivered implies >= next_del_o_id.
        if (o < district.next_del_o_id) {
          EXPECT_NE(order.carrier_id, 0u) << "undelivered below cursor";
        }
      }
      EXPECT_FALSE(
          store.exists(make_oid(Table::kOrder, w, d, district.next_o_id)));
      EXPECT_LE(district.next_del_o_id, district.next_o_id);
    }

    // Replicas of the partition agree on every district and every
    // customer balance (deterministic SMR execution).
    for (int r = 1; r < 3; ++r) {
      auto& peer = sys.replica(p, r).store();
      for (std::uint32_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
        const auto a =
            load_row<DistrictRow>(store, make_oid(Table::kDistrict, w, d, 0));
        const auto b =
            load_row<DistrictRow>(peer, make_oid(Table::kDistrict, w, d, 0));
        EXPECT_EQ(a.next_o_id, b.next_o_id);
        EXPECT_DOUBLE_EQ(a.ytd, b.ytd);
        for (std::uint32_t cid = 1; cid <= scale.customers_per_district();
             ++cid) {
          const auto ca = load_row<CustomerRow>(
              store, make_oid(Table::kCustomer, w, d, cid));
          const auto cb = load_row<CustomerRow>(
              peer, make_oid(Table::kCustomer, w, d, cid));
          EXPECT_DOUBLE_EQ(ca.balance, cb.balance)
              << "w" << w << " d" << d << " c" << cid << " rank " << r;
          EXPECT_EQ(ca.payment_cnt, cb.payment_cnt);
        }
      }
    }
  }
}

TEST(TpccInvariants, CustomerIndexPointsToTheirLatestOrder) {
  TpccScale scale{.factor = 0.01, .initial_orders_per_district = 6};
  harness::TpccCluster cluster(1, 3, scale);
  tpcc::WorkloadConfig wl;
  wl.new_order_only = true;
  cluster.add_clients(2, wl);
  cluster.run(sim::ms(5), sim::ms(40));

  auto& store = cluster.system().replica(0, 0).store();
  for (std::uint32_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
    for (std::uint32_t c = 1; c <= scale.customers_per_district(); ++c) {
      const auto idx = load_row<CustomerIndexRow>(
          store, make_oid(Table::kCustomerIndex, 0, d, c));
      if (idx.last_o_id == 0) continue;
      const core::Oid ooid = make_oid(Table::kOrder, 0, d, idx.last_o_id);
      ASSERT_TRUE(store.exists(ooid));
      const auto order = load_row<OrderRow>(store, ooid);
      EXPECT_EQ(order.c_id, c);
      EXPECT_EQ(order.d_id, d);
    }
  }
}

TEST(TpccInvariants, StockNeverDropsBelowZeroAndYtdAccumulates) {
  TpccScale scale{.factor = 0.01, .initial_orders_per_district = 6};
  harness::TpccCluster cluster(2, 3, scale);
  tpcc::WorkloadConfig wl;
  wl.new_order_only = true;
  cluster.add_clients(3, wl);
  cluster.run(sim::ms(5), sim::ms(60));

  std::uint64_t total_ytd = 0;
  auto& store = cluster.system().replica(0, 0).store();
  for (std::uint32_t i = 1; i <= scale.items(); ++i) {
    const auto stock =
        load_row<StockRow>(store, make_oid(Table::kStock, 0, 0, i));
    EXPECT_GE(stock.quantity, 0);
    EXPECT_LE(stock.quantity, 101);  // refill rule keeps it bounded
    total_ytd += stock.ytd;
  }
  EXPECT_GT(total_ytd, 0u);  // orders actually moved stock
}

}  // namespace
}  // namespace heron::tpcc
