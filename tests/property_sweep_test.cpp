// Parameterized property sweeps across cluster shapes and seeds.
//
// These are the repository's broad invariant checks: for every
// (partitions, replicas, seed) combination we run a randomized workload
// and assert the system-level properties the paper's correctness argument
// (§III-C) promises — conservation under multi-partition updates, replica
// convergence within partitions, and atomic multicast's delivery
// properties.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "amcast/system.hpp"
#include "core/system.hpp"
#include "rdma/fabric.hpp"
#include "sim/random.hpp"
#include "test_app.hpp"

namespace heron {
namespace {

using sim::Task;

// ----------------------------------------------------------------------
// Heron conservation sweep: partitions x replicas x seed.
// ----------------------------------------------------------------------

using HeronShape = std::tuple<int /*partitions*/, int /*replicas*/,
                              std::uint64_t /*seed*/>;

class HeronConservationSweep : public ::testing::TestWithParam<HeronShape> {};

TEST_P(HeronConservationSweep, TotalBalancePreservedAndReplicasConverge) {
  const auto [partitions, replicas, seed] = GetParam();
  constexpr std::uint64_t kAccounts = 6;
  constexpr int kClients = 3;
  constexpr int kOps = 12;

  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, seed);
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  core::System sys(
      fabric, partitions, replicas,
      [partitions, n = kAccounts] {
        return std::make_unique<testapp::BankApp>(partitions, n);
      },
      cfg);
  sys.start();

  for (int i = 0; i < kClients; ++i) {
    auto& client = sys.add_client();
    sim.spawn([](core::System& s, core::Client& cl, std::uint64_t sd,
                 int idx) -> Task<void> {
      sim::Rng rng(sd * 31 + static_cast<std::uint64_t>(idx));
      const auto total = static_cast<std::uint64_t>(s.partitions()) * kAccounts;
      for (int k = 0; k < kOps; ++k) {
        const std::uint64_t a = rng.bounded(total);
        std::uint64_t b = rng.bounded(total);
        if (b == a) b = (a + 1) % total;
        testapp::TransferReq req{a, b, rng.uniform_int(1, 9)};
        const auto dst =
            amcast::dst_of(static_cast<amcast::GroupId>(
                a % static_cast<std::uint64_t>(s.partitions()))) |
            amcast::dst_of(static_cast<amcast::GroupId>(
                b % static_cast<std::uint64_t>(s.partitions())));
        co_await cl.submit(dst, testapp::kTransfer,
                           std::as_bytes(std::span(&req, 1)));
      }
    }(sys, client, seed, i));
  }
  sim.run_for(sim::sec(1));

  ASSERT_EQ(sys.total_completed(),
            static_cast<std::uint64_t>(kClients) * kOps);

  const std::int64_t expected =
      static_cast<std::int64_t>(partitions) * kAccounts * 1000;
  for (int rank = 0; rank < replicas; ++rank) {
    std::int64_t total = 0;
    for (int p = 0; p < partitions; ++p) {
      for (std::uint64_t k = 0; k < kAccounts; ++k) {
        const core::Oid oid = static_cast<core::Oid>(p) +
                              k * static_cast<core::Oid>(partitions);
        total += testapp::stored_balance(sys.replica(p, rank), oid);
      }
    }
    EXPECT_EQ(total, expected) << "rank " << rank;
  }
  // Convergence per partition.
  for (int p = 0; p < partitions; ++p) {
    for (std::uint64_t k = 0; k < kAccounts; ++k) {
      const core::Oid oid =
          static_cast<core::Oid>(p) + k * static_cast<core::Oid>(partitions);
      const auto v0 = testapp::stored_balance(sys.replica(p, 0), oid);
      for (int r = 1; r < replicas; ++r) {
        EXPECT_EQ(testapp::stored_balance(sys.replica(p, r), oid), v0)
            << "p" << p << " r" << r << " oid " << oid;
      }
    }
  }
}

std::string heron_shape_name(
    const ::testing::TestParamInfo<HeronShape>& info) {
  return "p" + std::to_string(std::get<0>(info.param)) + "_r" +
         std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HeronConservationSweep,
    ::testing::Values(HeronShape{2, 3, 21}, HeronShape{2, 3, 22},
                      HeronShape{3, 3, 23}, HeronShape{4, 3, 24},
                      HeronShape{2, 5, 25}, HeronShape{3, 5, 26},
                      HeronShape{5, 3, 27}, HeronShape{6, 3, 28}),
    heron_shape_name);

// ----------------------------------------------------------------------
// Atomic multicast delivery-property sweep.
// ----------------------------------------------------------------------

using AmcastShape =
    std::tuple<int /*groups*/, int /*replicas*/, std::uint64_t /*seed*/>;

class AmcastPropertySweep : public ::testing::TestWithParam<AmcastShape> {};

TEST_P(AmcastPropertySweep, OrderAgreementIntegrityHold) {
  const auto [groups, replicas, seed] = GetParam();

  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, seed);
  amcast::System sys(fabric, groups, replicas);
  sys.start();

  std::map<std::pair<int, int>, std::vector<amcast::Delivery>> log;
  for (int g = 0; g < groups; ++g) {
    for (int r = 0; r < replicas; ++r) {
      sim.spawn([](amcast::Endpoint& ep,
                   std::vector<amcast::Delivery>& out) -> Task<void> {
        while (true) out.push_back(co_await ep.next_delivery());
      }(sys.endpoint(g, r), log[{g, r}]));
    }
  }

  std::vector<std::pair<amcast::MsgUid, amcast::DstMask>> sent;
  for (int c = 0; c < 4; ++c) {
    auto& client = sys.add_client();
    sim.spawn([](sim::Simulator& s, amcast::ClientEndpoint& cl, int idx,
                 std::uint64_t sd, int ngroups,
                 std::vector<std::pair<amcast::MsgUid, amcast::DstMask>>&
                     sent_log) -> Task<void> {
      sim::Rng rng(sd * 7 + static_cast<std::uint64_t>(idx));
      for (int k = 0; k < 15; ++k) {
        amcast::DstMask dst = 0;
        const int span = 1 + static_cast<int>(rng.bounded(
                                  std::min(3, ngroups)));
        while (amcast::dst_count(dst) < span) {
          dst |= amcast::dst_of(static_cast<amcast::GroupId>(
              rng.bounded(static_cast<std::uint64_t>(ngroups))));
        }
        std::uint32_t v = static_cast<std::uint32_t>(k);
        const auto uid =
            co_await cl.multicast(dst, std::as_bytes(std::span(&v, 1)));
        sent_log.emplace_back(uid, dst);
        co_await s.sleep(sim::us(60));
      }
    }(sim, client, c, seed, groups, sent));
  }
  sim.run_for(sim::ms(80));

  // Validity + Integrity + agreement + timestamp-order.
  std::map<amcast::MsgUid, std::uint64_t> ts;
  for (const auto& [key, seq] : log) {
    std::set<amcast::MsgUid> seen;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_TRUE(seen.insert(seq[i].uid).second);
      if (i > 0) EXPECT_LT(seq[i - 1].tmp, seq[i].tmp);
      auto [it, fresh] = ts.emplace(seq[i].uid, seq[i].tmp);
      if (!fresh) EXPECT_EQ(it->second, seq[i].tmp);
    }
  }
  for (const auto& [uid, dst] : sent) {
    for (int g = 0; g < groups; ++g) {
      if (!amcast::dst_contains(dst, g)) continue;
      for (int r = 0; r < replicas; ++r) {
        const auto& seq = log[{g, r}];
        EXPECT_TRUE(std::any_of(seq.begin(), seq.end(),
                                [uid](const auto& d) { return d.uid == uid; }))
            << "uid " << uid << " missing at (" << g << "," << r << ")";
      }
    }
  }
  // Same delivery sequence within each group.
  for (int g = 0; g < groups; ++g) {
    const auto& ref = log[{g, 0}];
    for (int r = 1; r < replicas; ++r) {
      const auto& seq = log[{g, r}];
      ASSERT_EQ(seq.size(), ref.size()) << "group " << g << " rank " << r;
      for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].uid, ref[i].uid);
      }
    }
  }
}

std::string amcast_shape_name(
    const ::testing::TestParamInfo<AmcastShape>& info) {
  return "g" + std::to_string(std::get<0>(info.param)) + "_r" +
         std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AmcastPropertySweep,
    ::testing::Values(AmcastShape{1, 3, 31}, AmcastShape{2, 3, 32},
                      AmcastShape{3, 3, 33}, AmcastShape{4, 3, 34},
                      AmcastShape{2, 5, 35}, AmcastShape{4, 5, 36},
                      AmcastShape{6, 3, 37}, AmcastShape{8, 3, 38}),
    amcast_shape_name);

// ----------------------------------------------------------------------
// RDMA latency-model sweep: read/write latency formulae across sizes.
// ----------------------------------------------------------------------

class RdmaSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RdmaSizeSweep, ReadAndWriteLatencyFollowModel) {
  const std::size_t bytes = GetParam();
  sim::Simulator sim;
  rdma::LatencyModel model;
  rdma::Fabric fabric(sim, model);
  auto& a = fabric.add_node();
  auto& b = fabric.add_node();
  auto mr = b.register_region(bytes);

  sim::Nanos read_lat = 0, write_lat = 0;
  sim.spawn([](sim::Simulator& s, rdma::Fabric& f, rdma::Node& from,
               rdma::Node& to, rdma::MrId m, std::size_t n, sim::Nanos& rl,
               sim::Nanos& wl) -> Task<void> {
    std::vector<std::byte> buf(n);
    sim::Nanos t0 = s.now();
    co_await f.read(from.id(), rdma::RAddr{to.id(), m, 0}, buf);
    rl = s.now() - t0;
    t0 = s.now();
    co_await f.write(from.id(), rdma::RAddr{to.id(), m, 0}, buf);
    wl = s.now() - t0;
  }(sim, fabric, a, b, mr, bytes, read_lat, write_lat));
  sim.run();

  EXPECT_EQ(read_lat, model.post_overhead + model.read_base +
                          model.transfer_time(bytes));
  EXPECT_EQ(write_lat, model.post_overhead + model.write_base +
                           model.transfer_time(bytes));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RdmaSizeSweep,
                         ::testing::Values(8, 64, 512, 4096, 32768, 262144));

}  // namespace
}  // namespace heron
