// Integration tests for the Heron replica runtime (Algorithms 1-3) using
// the bank test application: correctness of single- and multi-partition
// execution, convergence of replicas, the conservation invariant under
// randomized load, lagger detection plus state transfer, and behaviour
// under replica failure.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "core/system.hpp"
#include "rdma/fabric.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "test_app.hpp"

namespace heron::core {
namespace {

using sim::Nanos;
using sim::Task;
using sim::us;
using testapp::Account;
using testapp::BankApp;

struct Cluster {
  sim::Simulator sim;
  rdma::Fabric fabric;
  System sys;
  int partitions;
  int replicas;
  std::uint64_t accounts_per_partition;

  Cluster(int parts, int reps, std::uint64_t accounts = 8,
          HeronConfig cfg = {})
      : fabric(sim, rdma::LatencyModel{}, /*seed=*/77),
        sys(fabric, parts, reps,
            [parts, accounts] {
              return std::make_unique<BankApp>(parts, accounts);
            },
            cfg),
        partitions(parts),
        replicas(reps),
        accounts_per_partition(accounts) {
    sys.start();
  }

  [[nodiscard]] DstMask dst_for(std::initializer_list<Oid> oids) const {
    DstMask mask = 0;
    for (Oid oid : oids) {
      mask |= amcast::dst_of(
          static_cast<GroupId>(oid % static_cast<std::uint64_t>(partitions)));
    }
    return mask;
  }

  /// Total balance across all accounts as stored on replica `rank` of
  /// every partition.
  [[nodiscard]] std::int64_t total_balance(int rank = 0) {
    std::int64_t total = 0;
    for (GroupId g = 0; g < partitions; ++g) {
      for (std::uint64_t k = 0; k < accounts_per_partition; ++k) {
        const Oid oid = static_cast<std::uint64_t>(g) +
                        k * static_cast<std::uint64_t>(partitions);
        total += testapp::stored_balance(sys.replica(g, rank), oid);
      }
    }
    return total;
  }

  void expect_replicas_converged() {
    for (GroupId g = 0; g < partitions; ++g) {
      for (std::uint64_t k = 0; k < accounts_per_partition; ++k) {
        const Oid oid = static_cast<std::uint64_t>(g) +
                        k * static_cast<std::uint64_t>(partitions);
        const auto expected = testapp::stored_balance(sys.replica(g, 0), oid);
        for (int r = 1; r < replicas; ++r) {
          if (!sys.replica(g, r).node().alive()) continue;
          EXPECT_EQ(testapp::stored_balance(sys.replica(g, r), oid), expected)
              << "oid " << oid << " replica " << r;
        }
      }
    }
  }
};

Task<void> run_deposit(Cluster& c, Client& client, std::uint64_t account,
                       std::int64_t amount, std::int64_t* out = nullptr) {
  testapp::DepositReq req{account, amount};
  const DstMask dst = c.dst_for({account});
  auto result = co_await client.submit(dst, testapp::kDeposit,
                                       std::as_bytes(std::span(&req, 1)));
  if (out) std::memcpy(out, result.reply.payload.data(), sizeof(*out));
}

Task<void> run_transfer(Cluster& c, Client& client, std::uint64_t from,
                        std::uint64_t to, std::int64_t amount) {
  testapp::TransferReq req{from, to, amount};
  const DstMask dst = c.dst_for({from, to});
  co_await client.submit(dst, testapp::kTransfer,
                         std::as_bytes(std::span(&req, 1)));
}

// --- basic paths -------------------------------------------------------

TEST(HeronCore, SinglePartitionDepositRoundTrip) {
  Cluster c(2, 3);
  auto& client = c.sys.add_client();
  std::int64_t new_balance = 0;
  c.sim.spawn(run_deposit(c, client, /*account=*/0, /*amount=*/50,
                          &new_balance));
  c.sim.run_for(sim::ms(5));

  EXPECT_EQ(client.completed(), 1u);
  EXPECT_EQ(new_balance, 1050);
  // All replicas of partition 0 applied the write; partition 1 untouched.
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(testapp::stored_balance(c.sys.replica(0, r), 0), 1050);
    EXPECT_EQ(testapp::stored_balance(c.sys.replica(1, r), 1), 1000);
  }
}

TEST(HeronCore, MultiPartitionTransferMovesMoney) {
  Cluster c(2, 3);
  auto& client = c.sys.add_client();
  // Account 0 lives in partition 0; account 1 in partition 1.
  c.sim.spawn(run_transfer(c, client, 0, 1, 200));
  c.sim.run_for(sim::ms(5));

  EXPECT_EQ(client.completed(), 1u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(testapp::stored_balance(c.sys.replica(0, r), 0), 800);
    EXPECT_EQ(testapp::stored_balance(c.sys.replica(1, r), 1), 1200);
  }
  EXPECT_EQ(c.total_balance(), 2 * 8 * 1000);
}

TEST(HeronCore, TransferWithinOnePartitionIsSinglePartition) {
  Cluster c(2, 3);
  auto& client = c.sys.add_client();
  // Accounts 0 and 2 both live in partition 0.
  c.sim.spawn(run_transfer(c, client, 0, 2, 100));
  c.sim.run_for(sim::ms(5));
  EXPECT_EQ(testapp::stored_balance(c.sys.replica(0, 0), 0), 900);
  EXPECT_EQ(testapp::stored_balance(c.sys.replica(0, 0), 2), 1100);
  // No coordination should have happened (single-partition request).
  EXPECT_EQ(c.sys.replica(0, 0).coord_stats().multi_partition, 0u);
}

TEST(HeronCore, RepliesCarryApplicationPayload) {
  Cluster c(2, 3);
  auto& client = c.sys.add_client();
  std::int64_t balance = 0;
  c.sim.spawn([](Cluster& cl, Client& cli, std::int64_t& out) -> Task<void> {
    testapp::ReadReq req{4};  // partition 0
    const DstMask dst = cl.dst_for({4});
    auto result = co_await cli.submit(dst, testapp::kRead,
                                      std::as_bytes(std::span(&req, 1)));
    std::memcpy(&out, result.reply.payload.data(), sizeof(out));
  }(c, client, balance));
  c.sim.run_for(sim::ms(5));
  EXPECT_EQ(balance, 1000);
}

TEST(HeronCore, SequentialRequestsFromOneClient) {
  Cluster c(2, 3);
  auto& client = c.sys.add_client();
  c.sim.spawn([](Cluster& cl, Client& cli) -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      co_await run_deposit(cl, cli, 0, 10);
    }
  }(c, client));
  c.sim.run_for(sim::ms(20));
  EXPECT_EQ(client.completed(), 20u);
  EXPECT_EQ(testapp::stored_balance(c.sys.replica(0, 0), 0), 1200);
  c.expect_replicas_converged();
}

// --- randomized conservation property ----------------------------------

void conservation_run(int partitions, int replicas, int clients, int ops,
                      std::uint64_t seed) {
  Cluster c(partitions, replicas, /*accounts=*/8);
  const std::int64_t expected_total =
      static_cast<std::int64_t>(partitions) * 8 * 1000;

  for (int i = 0; i < clients; ++i) {
    auto& client = c.sys.add_client();
    c.sim.spawn([](Cluster& cl, Client& cli, std::uint64_t sd, int n,
                   int idx) -> Task<void> {
      sim::Rng rng(sd * 1000003 + static_cast<std::uint64_t>(idx));
      const auto total_accounts =
          static_cast<std::uint64_t>(cl.partitions) * cl.accounts_per_partition;
      for (int k = 0; k < n; ++k) {
        const auto a = rng.bounded(total_accounts);
        if (rng.chance(0.5)) {
          auto b = rng.bounded(total_accounts);
          if (b == a) b = (a + 1) % total_accounts;
          co_await run_transfer(cl, cli, a, b,
                                rng.uniform_int(1, 50));
        } else {
          co_await run_deposit(cl, cli, a, 0);  // no-op deposit: pure churn
        }
      }
    }(c, client, seed, ops, i));
  }
  c.sim.run_for(sim::sec(1));

  std::uint64_t completed = 0;
  for (std::uint32_t i = 0; i < c.sys.client_count(); ++i) {
    completed += c.sys.client(i).completed();
  }
  ASSERT_EQ(completed, static_cast<std::uint64_t>(clients) * ops)
      << "workload did not finish";
  for (int r = 0; r < replicas; ++r) {
    EXPECT_EQ(c.total_balance(r), expected_total) << "replica rank " << r;
  }
  c.expect_replicas_converged();
}

TEST(HeronCoreProperty, ConservationTwoPartitions) {
  conservation_run(2, 3, /*clients=*/4, /*ops=*/30, /*seed=*/1);
}

TEST(HeronCoreProperty, ConservationFourPartitions) {
  conservation_run(4, 3, /*clients=*/6, /*ops=*/25, /*seed=*/2);
}

TEST(HeronCoreProperty, ConservationFiveReplicas) {
  conservation_run(2, 5, /*clients=*/4, /*ops=*/20, /*seed=*/3);
}

TEST(HeronCoreProperty, ConservationManySeeds) {
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    conservation_run(3, 3, /*clients=*/3, /*ops=*/15, seed);
  }
}

// --- modes --------------------------------------------------------------

TEST(HeronCore, OrderOnlyModeRepliesWithoutExecuting) {
  HeronConfig cfg;
  cfg.mode = Mode::kOrderOnly;
  Cluster c(2, 3, 8, cfg);
  auto& client = c.sys.add_client();
  c.sim.spawn(run_deposit(c, client, 0, 500));
  c.sim.run_for(sim::ms(5));
  EXPECT_EQ(client.completed(), 1u);
  // Nothing executed: balance untouched.
  EXPECT_EQ(testapp::stored_balance(c.sys.replica(0, 0), 0), 1000);
}

TEST(HeronCore, NullModeCoordinatesButDoesNotExecute)
{
  HeronConfig cfg;
  cfg.mode = Mode::kNull;
  Cluster c(2, 3, 8, cfg);
  auto& client = c.sys.add_client();
  c.sim.spawn(run_transfer(c, client, 0, 1, 100));
  c.sim.run_for(sim::ms(5));
  EXPECT_EQ(client.completed(), 1u);
  EXPECT_EQ(testapp::stored_balance(c.sys.replica(0, 0), 0), 1000);
  EXPECT_EQ(c.sys.replica(0, 0).coord_stats().multi_partition, 1u);
}

// --- latency sanity ------------------------------------------------------

TEST(HeronCore, LatencyIsMicrosecondScale) {
  Cluster c(2, 3);
  auto& client = c.sys.add_client();
  c.sim.spawn([](Cluster& cl, Client& cli) -> Task<void> {
    for (int i = 0; i < 10; ++i) co_await run_deposit(cl, cli, 0, 1);
    for (int i = 0; i < 10; ++i) co_await run_transfer(cl, cli, 0, 1, 1);
  }(c, client));
  c.sim.run_for(sim::ms(20));
  ASSERT_EQ(client.completed(), 20u);
  // The paper reports ~19us single-partition / ~35us multi-partition for
  // TPC-C; the bank app is lighter but must be the same order of
  // magnitude, and far below a millisecond.
  EXPECT_LT(client.latencies().mean(), static_cast<double>(us(120)));
  EXPECT_GT(client.latencies().mean(), static_cast<double>(us(5)));
}

TEST(HeronCore, MultiPartitionCostsMoreThanSinglePartition) {
  Cluster c(2, 3);
  auto& client = c.sys.add_client();
  Nanos single = 0, multi = 0;
  c.sim.spawn([](Cluster& cl, Client& cli, Nanos& s, Nanos& m) -> Task<void> {
    // Warm up (address queries etc).
    co_await run_transfer(cl, cli, 0, 1, 1);
    sim::LatencyRecorder rs, rm;
    for (int i = 0; i < 20; ++i) {
      testapp::DepositReq d{0, 1};
      const DstMask dst_s = cl.dst_for({0});
      auto res = co_await cli.submit(dst_s, testapp::kDeposit,
                                     std::as_bytes(std::span(&d, 1)));
      rs.record(res.latency);
      testapp::TransferReq t{0, 1, 1};
      const DstMask dst_m = cl.dst_for({0, 1});
      auto res2 = co_await cli.submit(dst_m, testapp::kTransfer,
                                      std::as_bytes(std::span(&t, 1)));
      rm.record(res2.latency);
    }
    s = static_cast<Nanos>(rs.mean());
    m = static_cast<Nanos>(rm.mean());
  }(c, client, single, multi));
  c.sim.run_for(sim::ms(50));
  EXPECT_GT(multi, single);
}

// --- stage stats ---------------------------------------------------------

TEST(HeronCore, StageBreakdownRecorded) {
  Cluster c(2, 3);
  auto& client = c.sys.add_client();
  c.sim.spawn([](Cluster& cl, Client& cli) -> Task<void> {
    for (int i = 0; i < 5; ++i) co_await run_transfer(cl, cli, 0, 1, 1);
  }(c, client));
  c.sim.run_for(sim::ms(20));

  auto& rep = c.sys.replica(0, 0);
  EXPECT_EQ(rep.ordering_lat().count(), 5u);
  EXPECT_EQ(rep.coord_lat().count(), 5u);
  EXPECT_EQ(rep.exec_lat().count(), 5u);
  EXPECT_GT(rep.ordering_lat().mean(), 0.0);
  EXPECT_GT(rep.coord_lat().mean(), 0.0);
  // Coordination is a few microseconds (the paper: ~2-3us).
  EXPECT_LT(rep.coord_lat().mean(), static_cast<double>(us(15)));
}

// --- failures ------------------------------------------------------------

TEST(HeronCoreFailure, ReplicaCrashDoesNotBlockClients) {
  Cluster c(2, 3);
  auto& client = c.sys.add_client();
  c.sim.spawn([](Cluster& cl, Client& cli) -> Task<void> {
    co_await run_transfer(cl, cli, 0, 1, 10);
    // Crash a follower replica in partition 1, then keep going.
    cl.sys.replica(1, 2).node().crash();
    for (int i = 0; i < 10; ++i) {
      co_await run_transfer(cl, cli, 0, 1, 10);
      co_await run_deposit(cl, cli, 1, 5);
    }
  }(c, client));
  c.sim.run_for(sim::ms(60));
  EXPECT_EQ(client.completed(), 21u);
  EXPECT_EQ(testapp::stored_balance(c.sys.replica(1, 0), 1),
            1000 + 11 * 10 + 10 * 5);
}

// --- laggers and state transfer -------------------------------------------

TEST(HeronCoreLagger, HoggedReplicaCatchesUpViaStateTransfer) {
  // Make replica (0, 2) fall behind by hogging its CPU while the rest of
  // the system keeps executing multi-partition transfers that repeatedly
  // update the same objects. When it resumes and executes an old request,
  // its remote reads find only post-dated versions -> it must request a
  // state transfer and skip the covered requests.
  Cluster c(2, 3);
  auto& client = c.sys.add_client();

  c.sim.spawn([](Cluster& cl) -> Task<void> {
    // Hog starts immediately and lasts 3ms.
    co_await cl.sys.replica(0, 2).node().cpu().use(sim::ms(3));
  }(c));

  c.sim.spawn([](Cluster& cl, Client& cli) -> Task<void> {
    for (int i = 0; i < 40; ++i) {
      co_await run_transfer(cl, cli, 0, 1, 1);   // p0 <-> p1
      co_await run_transfer(cl, cli, 1, 0, 1);   // p1 <-> p0
    }
  }(c, client));

  c.sim.run_for(sim::ms(100));
  ASSERT_EQ(client.completed(), 80u);

  auto& lagger = c.sys.replica(0, 2);
  EXPECT_GE(lagger.state_transfers(), 1u)
      << "hogged replica never detected lagging";
  EXPECT_GT(lagger.skipped_count(), 0u);
  // After the transfer it converged to its peers.
  c.expect_replicas_converged();
  EXPECT_EQ(c.total_balance(0), 2 * 8 * 1000);
  EXPECT_EQ(c.total_balance(2), 2 * 8 * 1000);

  // Some peer served the transfer.
  const auto served = c.sys.replica(0, 0).transfers_served() +
                      c.sys.replica(0, 1).transfers_served();
  EXPECT_GE(served, 1u);
}

TEST(HeronCoreLagger, WaitForAllStatsAreCollected) {
  Cluster c(2, 3);
  auto& client = c.sys.add_client();
  c.sim.spawn([](Cluster& cl, Client& cli) -> Task<void> {
    for (int i = 0; i < 30; ++i) co_await run_transfer(cl, cli, 0, 1, 1);
  }(c, client));
  c.sim.run_for(sim::ms(60));

  const auto& stats = c.sys.replica(0, 0).coord_stats();
  EXPECT_EQ(stats.multi_partition, 30u);
  // delayed <= total; fractions well-formed.
  EXPECT_LE(stats.delayed, stats.multi_partition);
  EXPECT_GE(stats.delayed_fraction(), 0.0);
  EXPECT_LE(stats.delayed_fraction(), 1.0);
}

}  // namespace
}  // namespace heron::core
