// Fault lab tests: the FaultPlan DSL, crash -> restart -> rejoin
// convergence under the oracles, crash of a state-transfer handler
// mid-sync (Algorithm 3's timeout fallback), and a deliberately broken
// configuration that the oracles must catch.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "core/system.hpp"
#include "faultlab/bank.hpp"
#include "faultlab/history.hpp"
#include "faultlab/injector.hpp"
#include "faultlab/plan.hpp"
#include "rdma/fabric.hpp"

namespace heron::faultlab {
namespace {

TEST(FaultPlan, ParsesAllKindsAndRoundTrips) {
  const auto plan = FaultPlan::parse(
      "all-kinds",
      "crash g0.r1 @ 5ms\n"
      "restart g0.r1 @ 20ms  # rejoin later\n"
      "latency x8 @ 10ms for 5ms; bandwidth x0.25 @ 1ms for 2ms\n"
      "partition g0.r2,g1 @ 2ms for 150us\n"
      "jitter p0.3 25us @ 4ms for 3ms");
  ASSERT_EQ(plan.events().size(), 6u);

  // Events come out sorted by time.
  for (std::size_t i = 1; i < plan.events().size(); ++i) {
    EXPECT_LE(plan.events()[i - 1].at, plan.events()[i].at);
  }
  EXPECT_EQ(plan.events().front().kind, FaultKind::kBandwidth);
  EXPECT_DOUBLE_EQ(plan.events().front().factor, 0.25);

  const auto& part = plan.events()[1];
  EXPECT_EQ(part.kind, FaultKind::kPartition);
  ASSERT_EQ(part.targets.size(), 2u);
  EXPECT_EQ(part.targets[0].rank, 2);
  EXPECT_EQ(part.targets[1].group, 1);
  EXPECT_EQ(part.targets[1].rank, -1);  // whole group
  EXPECT_EQ(part.duration, sim::us(150));

  // to_string() re-parses to the same schedule.
  const auto again = FaultPlan::parse("again", plan.to_string());
  ASSERT_EQ(again.events().size(), plan.events().size());
  for (std::size_t i = 0; i < plan.events().size(); ++i) {
    EXPECT_EQ(again.events()[i].kind, plan.events()[i].kind);
    EXPECT_EQ(again.events()[i].at, plan.events()[i].at);
    EXPECT_EQ(again.events()[i].duration, plan.events()[i].duration);
  }
}

TEST(FaultPlan, RejectsMalformedStatements) {
  EXPECT_THROW(FaultPlan::parse("p", "crash g0 @ 1ms"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("p", "crash g0.r1"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("p", "latency x8 @ 1ms"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("p", "latency x0 @ 1ms for 1ms"),
               std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("p", "explode g0.r0 @ 1ms"),
               std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("p", "jitter p0.3 @ 1ms for 1ms"),
               std::runtime_error);
  EXPECT_TRUE(FaultPlan::parse("p", "# only a comment\n").empty());
}

struct BankCellResult {
  std::uint64_t completed = 0;
  std::vector<Violation> violations;
  std::vector<std::uint64_t> digests;  // per (group, rank), alive only
};

/// One bank run under `plan_text` with full history + oracle checking.
BankCellResult run_bank_cell(std::uint64_t seed, const std::string& plan_text,
                             bool failover = true) {
  constexpr int kPartitions = 2;
  constexpr int kReplicas = 3;
  constexpr std::uint64_t kAccounts = 8;
  constexpr int kClients = 3;
  constexpr int kOps = 40;

  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, seed);
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  amcast::Config acfg;
  acfg.enable_failover = failover;
  core::System sys(
      fabric, kPartitions, kReplicas,
      [p = kPartitions, a = kAccounts] {
        return std::make_unique<BankApp>(p, a);
      },
      cfg, acfg);
  HistoryRecorder history;
  history.attach(sys);
  sys.start();

  for (int c = 0; c < kClients; ++c) {
    sim.spawn(bank_client_loop(sys, sys.add_client(),
                               seed * 1000 + static_cast<std::uint64_t>(c),
                               kOps, kAccounts));
  }
  Injector injector(sys);
  injector.run(FaultPlan::parse("plan", plan_text));
  sim.run_for(sim::ms(300));

  BankCellResult out;
  out.completed = sys.total_completed();
  out.violations = check_amcast_properties(history, sys, injector.ever_crashed());
  check_exactly_once(history, out.violations);
  check_store_convergence(sys, out.violations);
  for (core::GroupId g = 0; g < kPartitions; ++g) {
    for (int r = 0; r < kReplicas; ++r) {
      if (!sys.replica(g, r).node().alive()) continue;
      out.digests.push_back(store_digest(sys.replica(g, r)));
    }
  }
  return out;
}

TEST(Faultlab, CrashRestartRejoinConverges) {
  const auto res =
      run_bank_cell(11, "crash g0.r1 @ 1ms; restart g0.r1 @ 6ms");
  EXPECT_EQ(res.completed, 3u * 40u);
  for (const auto& v : res.violations) {
    ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
  }
  // All six replicas alive again; the restarted one converged byte-for-
  // byte (convergence oracle already compared digests; double-check the
  // digest list is uniform per group).
  ASSERT_EQ(res.digests.size(), 6u);
  EXPECT_EQ(res.digests[0], res.digests[1]);
  EXPECT_EQ(res.digests[1], res.digests[2]);
  EXPECT_EQ(res.digests[3], res.digests[4]);
  EXPECT_EQ(res.digests[4], res.digests[5]);
}

TEST(Faultlab, RepeatedCrashesWithParkedWaitersStayClean) {
  // Regression for the dangling-waiter bug: crashing a replica destroys
  // coroutine frames parked in Notifier::wait() on its memory regions
  // while remote writes (notify_all) are still landing — the pre-fix
  // kernel had already queued wakeup callbacks holding the dead frames'
  // coroutine handles, and resumed them (use-after-free; the ASan CI job
  // runs this test). Three staggered crash/restart cycles, one of them a
  // leader (failover path), with client traffic throughout.
  const auto res = run_bank_cell(
      23,
      "crash g0.r1 @ 500us; restart g0.r1 @ 2ms; "
      "crash g1.r2 @ 1ms; restart g1.r2 @ 4ms; "
      "crash g0.r0 @ 6ms; restart g0.r0 @ 9ms");
  EXPECT_EQ(res.completed, 3u * 40u);
  for (const auto& v : res.violations) {
    ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
  }
  ASSERT_EQ(res.digests.size(), 6u);  // everyone restarted and rejoined
}

TEST(Faultlab, SameSeedSamePlanIsDeterministic) {
  const std::string plan = "crash g0.r2 @ 1ms; restart g0.r2 @ 5ms";
  const auto a = run_bank_cell(23, plan);
  const auto b = run_bank_cell(23, plan);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.digests, b.digests);
}

TEST(Faultlab, PerturbationsLeaveHistoryClean) {
  const auto res = run_bank_cell(
      5, "latency x6 @ 1ms for 2ms; partition g0.r2 @ 2ms for 150us");
  EXPECT_EQ(res.completed, 3u * 40u);
  EXPECT_TRUE(res.violations.empty());
}

TEST(Faultlab, FailoverDisabledIsCaughtByValidityOracle) {
  // Deliberately broken deployment: no failover, then kill g0's leader
  // and never restart it. The group stalls; wedged requests never get a
  // response, which the validity oracle must report.
  const auto res =
      run_bank_cell(7, "crash g0.r0 @ 1ms", /*failover=*/false);
  EXPECT_LT(res.completed, 3u * 40u);
  bool validity = false;
  for (const auto& v : res.violations) {
    if (v.oracle == std::string("validity")) validity = true;
  }
  EXPECT_TRUE(validity) << "expected the validity oracle to fire";
}

TEST(Faultlab, ExactlyOnceOracleOverSyntheticEvents) {
  // Two replicas executing distinct commands, plus one re-execution of
  // (client 3, seq 7) on g1.r0 — only the duplicate is reported. The
  // same command on *different* replicas is normal SMR, not a violation,
  // and seq 0 marks sessionless commands outside the dedup contract.
  std::vector<ExecEvent> execs{
      {0, 0, 3, 7, amcast::make_uid(3, 1), 10},
      {1, 0, 3, 7, amcast::make_uid(3, 1), 10},
      {0, 0, 3, 8, amcast::make_uid(3, 2), 11},
      {1, 0, 3, 7, amcast::make_uid(3, 9), 12},  // duplicate, retried uid
      {0, 0, 4, 0, amcast::make_uid(4, 1), 13},
      {0, 0, 4, 0, amcast::make_uid(4, 2), 14},  // seq 0: exempt
  };
  const auto violations = check_exactly_once(execs);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].oracle, "exactly-once");
  EXPECT_NE(violations[0].detail.find("g1.r0"), std::string::npos);
  EXPECT_NE(violations[0].detail.find("c3/s7"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Crash during state transfer: the first handler dies mid-sync and the
// cyclic-order fallback (Algorithm 3 lines 9-11) completes the transfer.

enum SyncKind : std::uint32_t { kTouch = 1 };

class SyncApp : public core::Application {
 public:
  SyncApp(std::uint64_t count, std::uint32_t size)
      : count_(count), size_(size) {}
  core::GroupId partition_of(core::Oid) const override { return 0; }
  std::vector<core::Oid> read_set(const core::Request&,
                                  core::GroupId) const override {
    return {};
  }
  core::Reply execute(const core::Request& r,
                      core::ExecContext& ctx) override {
    if (r.header.kind == kTouch) {
      std::vector<std::byte> value(size_);
      std::memcpy(value.data(), &r.tmp, sizeof(r.tmp));
      for (std::uint64_t i = 0; i < count_; ++i) ctx.write(i + 1, value);
    }
    return core::Reply{};
  }
  void bootstrap(core::GroupId, core::ObjectStore& store) override {
    std::vector<std::byte> init(size_);
    for (std::uint64_t i = 0; i < count_; ++i) {
      store.create(i + 1, init, /*serialized=*/true);
    }
  }

 private:
  std::uint64_t count_;
  std::uint32_t size_;
};

TEST(Faultlab, CrashDuringStateTransferFallsBackToNextHandler) {
  constexpr std::uint64_t kCount = 256;
  constexpr std::uint32_t kSize = 16u << 10;  // 4 MiB total: a long sync

  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, 3);
  core::HeronConfig cfg;
  cfg.statesync_timeout = sim::us(500);
  cfg.object_region_bytes = kCount * (2 * kSize + 64) + (1u << 20);
  core::System sys(
      fabric, 1, 3,
      [c = kCount, s = kSize] { return std::make_unique<SyncApp>(c, s); },
      cfg);
  sys.start();
  core::Client& client = sys.add_client();

  sim.spawn([](core::Client& c) -> sim::Task<void> {
    co_await c.submit(amcast::dst_of(0), kTouch, {});
  }(client));
  // Let execution (4 MiB of writes + log replication) fully finish, so
  // the handler starts shipping chunks immediately on request.
  sim.run_for(sim::ms(20));

  // Lagger rank 2: candidate order is (rank 0, rank 1). Kick off the
  // transfer, then a FaultPlan kills rank 0 while it is mid-sync.
  const core::Tmp from = sys.replica(0, 0).last_req();
  sim::Nanos duration = -1;
  const sim::Nanos t0 = sim.now();
  sim.spawn([](sim::Simulator& s, core::Replica& lagger, core::Tmp f,
               sim::Nanos& out) -> sim::Task<void> {
    const sim::Nanos begin = s.now();
    co_await lagger.force_state_transfer(f);
    out = s.now() - begin;
  }(sim, sys.replica(0, 2), from, duration));

  Injector injector(sys);
  injector.run(FaultPlan::parse(
      "mid-sync-crash",
      "crash g0.r0 @ " + std::to_string(t0 + sim::us(50)) + "ns"));
  sim.run_for(sim::ms(100));

  ASSERT_GE(duration, 0) << "transfer never completed after handler crash";
  // Rank 0 started serving (then died); rank 1 finished the job after
  // waiting out one suspicion timeout.
  EXPECT_EQ(sys.replica(0, 0).transfers_served(), 1u);
  EXPECT_EQ(sys.replica(0, 1).transfers_served(), 1u);
  EXPECT_GE(duration, cfg.statesync_timeout);
  ASSERT_TRUE(injector.ever_crashed().contains({0, 0}));

  // The lagger's state matches the surviving donor exactly.
  auto& donor = sys.replica(0, 1);
  auto& lagger = sys.replica(0, 2);
  for (core::Oid oid = 1; oid <= kCount; ++oid) {
    auto [dt, dv] = donor.store().get(oid);
    auto [lt, lv] = lagger.store().get(oid);
    ASSERT_EQ(lt, dt) << "oid " << oid;
    ASSERT_TRUE(std::equal(dv.begin(), dv.end(), lv.begin())) << "oid " << oid;
  }
}

}  // namespace
}  // namespace heron::faultlab
