// Unit tests for the dual-versioned object store (§III-A dual-versioning,
// Algorithm 2 lines 22 and 29-31).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/object_store.hpp"
#include "rdma/fabric.hpp"
#include "sim/simulator.hpp"

namespace heron::core {
namespace {

struct Env {
  sim::Simulator sim;
  rdma::Fabric fabric{sim};
  rdma::Node* node = &fabric.add_node();
  ObjectStore store{*node, 1 << 20};
};

std::vector<std::byte> bytes_of(std::uint64_t v) {
  std::vector<std::byte> out(sizeof(v));
  std::memcpy(out.data(), &v, sizeof(v));
  return out;
}

std::uint64_t value_of(std::span<const std::byte> b) {
  std::uint64_t v;
  std::memcpy(&v, b.data(), sizeof(v));
  return v;
}

TEST(ObjectStore, CreateInitialisesBothVersionsAtTmpZero) {
  Env env;
  env.store.create(7, bytes_of(42));
  const auto view = env.store.view(7);
  EXPECT_EQ(view.tmp_a, 0u);
  EXPECT_EQ(view.tmp_b, 0u);
  EXPECT_EQ(value_of(view.val_a), 42u);
  EXPECT_EQ(value_of(view.val_b), 42u);
  auto [tmp, val] = env.store.get(7);
  EXPECT_EQ(tmp, 0u);
  EXPECT_EQ(value_of(val), 42u);
}

TEST(ObjectStore, SetOverwritesOlderVersion) {
  Env env;
  env.store.create(1, bytes_of(10));
  env.store.set(1, bytes_of(20), /*tmp=*/100);
  {
    const auto view = env.store.view(1);
    // One version must still be the original at tmp 0.
    EXPECT_TRUE((view.tmp_a == 0 && view.tmp_b == 100) ||
                (view.tmp_a == 100 && view.tmp_b == 0));
    auto [tmp, val] = env.store.get(1);
    EXPECT_EQ(tmp, 100u);
    EXPECT_EQ(value_of(val), 20u);
  }
  env.store.set(1, bytes_of(30), /*tmp=*/200);
  {
    const auto view = env.store.view(1);
    // tmp 0 version is gone; 100 and 200 remain.
    EXPECT_EQ(std::min(view.tmp_a, view.tmp_b), 100u);
    EXPECT_EQ(std::max(view.tmp_a, view.tmp_b), 200u);
    auto [tmp, val] = env.store.get(1);
    EXPECT_EQ(tmp, 200u);
    EXPECT_EQ(value_of(val), 30u);
  }
}

TEST(ObjectStore, VersionBeforePicksHighestSmaller) {
  Env env;
  env.store.create(1, bytes_of(10));
  env.store.set(1, bytes_of(20), 100);
  env.store.set(1, bytes_of(30), 200);
  const auto view = env.store.view(1);

  // Reader at tmp 150 must see the tmp-100 version.
  auto v150 = view.version_before(150);
  ASSERT_TRUE(v150.has_value());
  EXPECT_EQ(v150->first, 100u);
  EXPECT_EQ(value_of(v150->second), 20u);

  // Reader at tmp 250 sees the tmp-200 version.
  auto v250 = view.version_before(250);
  ASSERT_TRUE(v250.has_value());
  EXPECT_EQ(v250->first, 200u);
  EXPECT_EQ(value_of(v250->second), 30u);

  // Reader at tmp 100 (inclusive bound is strict) sees... nothing: both
  // versions are 100 and 200, neither < 100. That reader lags.
  EXPECT_FALSE(view.version_before(100).has_value());
  EXPECT_FALSE(view.version_before(50).has_value());
}

TEST(ObjectStore, SequenceOfUpdatesKeepsExactlyTwoNewestVersions) {
  Env env;
  env.store.create(1, bytes_of(0));
  for (std::uint64_t t = 1; t <= 50; ++t) {
    env.store.set(1, bytes_of(t), t * 10);
  }
  const auto view = env.store.view(1);
  EXPECT_EQ(std::max(view.tmp_a, view.tmp_b), 500u);
  EXPECT_EQ(std::min(view.tmp_a, view.tmp_b), 490u);
}

TEST(ObjectStore, SetWithWrongSizeThrows) {
  Env env;
  env.store.create(1, bytes_of(0));
  std::vector<std::byte> wrong(4);
  EXPECT_THROW(env.store.set(1, wrong, 10), std::logic_error);
}

TEST(ObjectStore, DuplicateCreateThrows) {
  Env env;
  env.store.create(1, bytes_of(0));
  EXPECT_THROW(env.store.create(1, bytes_of(0)), std::logic_error);
}

TEST(ObjectStore, RegionExhaustionThrows) {
  sim::Simulator sim;
  rdma::Fabric fabric{sim};
  auto& node = fabric.add_node();
  ObjectStore small(node, 128);
  std::vector<std::byte> big(64);
  EXPECT_NO_THROW(small.create(1, std::span<const std::byte>(big).first(16)));
  EXPECT_THROW(small.create(2, big), std::runtime_error);
}

TEST(ObjectStore, OffsetsAreStableAndAligned) {
  Env env;
  const auto off1 = env.store.create(1, bytes_of(1));
  const auto off2 = env.store.create(2, bytes_of(2));
  EXPECT_EQ(env.store.offset_of(1), off1);
  EXPECT_EQ(env.store.offset_of(2), off2);
  EXPECT_EQ(off1 % 8, 0u);
  EXPECT_EQ(off2 % 8, 0u);
  EXPECT_GT(off2, off1);
}

TEST(ObjectStore, InstallSlotOverwritesWholeSlot) {
  Env env;
  env.store.create(1, bytes_of(10));

  // Build a donor store with a newer state for object 1.
  Env donor;
  donor.store.create(1, bytes_of(10));
  donor.store.set(1, bytes_of(77), 300);
  donor.store.set(1, bytes_of(88), 400);

  env.store.install_slot(1, donor.store.raw_slot(1), donor.store.size_of(1),
                         false);
  auto [tmp, val] = env.store.get(1);
  EXPECT_EQ(tmp, 400u);
  EXPECT_EQ(value_of(val), 88u);
  const auto view = env.store.view(1);
  EXPECT_EQ(std::min(view.tmp_a, view.tmp_b), 300u);
}

TEST(ObjectStore, InstallSlotCreatesMissingObject) {
  Env env;
  Env donor;
  donor.store.create(9, bytes_of(5), /*serialized=*/true);
  donor.store.set(9, bytes_of(6), 100);

  EXPECT_FALSE(env.store.exists(9));
  env.store.install_slot(9, donor.store.raw_slot(9), donor.store.size_of(9),
                         true);
  ASSERT_TRUE(env.store.exists(9));
  EXPECT_TRUE(env.store.is_serialized(9));
  auto [tmp, val] = env.store.get(9);
  EXPECT_EQ(tmp, 100u);
  EXPECT_EQ(value_of(val), 6u);
}

TEST(ObjectStore, SerializedFlagRoundTrips) {
  Env env;
  env.store.create(1, bytes_of(0), true);
  env.store.create(2, bytes_of(0), false);
  EXPECT_TRUE(env.store.is_serialized(1));
  EXPECT_FALSE(env.store.is_serialized(2));
  // The word is packed: bit 0 = flag, bits 1-31 = the oid's identity tag.
  EXPECT_TRUE(env.store.view(1).is_serialized_slot());
  EXPECT_FALSE(env.store.view(2).is_serialized_slot());
  EXPECT_EQ(env.store.view(1).tag(), SlotView::oid_tag(1));
  EXPECT_EQ(env.store.view(2).tag(), SlotView::oid_tag(2));
}

TEST(ObjectStore, ForEachOidVisitsAll) {
  Env env;
  for (Oid oid = 1; oid <= 10; ++oid) env.store.create(oid, bytes_of(oid));
  std::vector<Oid> seen;
  env.store.for_each_oid([&](Oid o) { seen.push_back(o); });
  EXPECT_EQ(seen.size(), 10u);
  std::sort(seen.begin(), seen.end());
  for (Oid oid = 1; oid <= 10; ++oid) EXPECT_EQ(seen[oid - 1], oid);
}

TEST(ObjectStore, SlotParseMatchesRawLayout) {
  Env env;
  env.store.create(1, bytes_of(123));
  env.store.set(1, bytes_of(456), 42);
  const auto raw = env.store.raw_slot(1);
  const auto view = SlotView::parse(raw);
  EXPECT_EQ(view.size, 8u);
  EXPECT_EQ(view.slot_bytes(), raw.size());
  auto [tmp, val] = view.current();
  EXPECT_EQ(tmp, 42u);
  EXPECT_EQ(value_of(val), 456u);
}

}  // namespace
}  // namespace heron::core
