// Hermes-style leased fast writes: warm-cache one-sided commits, every
// fallback trigger, orphaned-INVALIDATE repair, the write-gate takeover
// bugfix, stats-reset hygiene, truncated-read recovery, and mixed
// fast-read/fast-write chaos cells under the LinearChecker oracle.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "faultlab/bank.hpp"
#include "faultlab/history.hpp"
#include "faultlab/injector.hpp"
#include "faultlab/linear.hpp"
#include "faultlab/plan.hpp"
#include "faultlab/rangekv.hpp"
#include "rdma/fabric.hpp"

namespace heron::faultlab {
namespace {

constexpr std::uint64_t kAccounts = 8;
constexpr std::uint64_t kKvKeys = 16;

core::HeronConfig write_config(sim::Nanos lease_duration,
                               bool fast_writes = true) {
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  cfg.lease_duration = lease_duration;
  cfg.fast_writes = fast_writes;
  return cfg;
}

/// Single-client scripted scenario harness: builds a 1x3 bank deployment
/// with leases + fast writes on, runs `script` to completion, and asserts
/// it finished.
template <typename Script>
void run_script(std::uint64_t seed, const core::HeronConfig& cfg,
                Script script, sim::Nanos run_for = sim::ms(50)) {
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, seed);
  core::System sys(
      fabric, /*partitions=*/1, /*replicas=*/3,
      [] { return std::make_unique<BankApp>(1, kAccounts); }, cfg);
  sys.start();
  auto& client = sys.add_client();
  bool done = false;
  sim.spawn(script(sys, client, done));
  sim.run_for(run_for);
  EXPECT_TRUE(done) << "script did not finish";
}

sim::Task<void> deposit(core::Client& client, core::Oid account,
                        std::int64_t amount) {
  DepositReq req{account, amount};
  const auto res = co_await client.submit(amcast::dst_of(0), kDeposit,
                                          std::as_bytes(std::span(&req, 1)));
  EXPECT_EQ(res.status, core::SubmitStatus::kOk);
}

/// Blind absolute-balance write through the fast path (ordered fallback:
/// BankApp kSet with the same semantics).
sim::Task<core::Client::WriteResult> set_balance(core::Client& client,
                                                 core::Oid account,
                                                 std::int64_t balance) {
  const Account value{balance};
  const DepositReq ordered{account, balance};
  co_return co_await client.write(0, account,
                                  std::as_bytes(std::span(&value, 1)), kSet,
                                  std::as_bytes(std::span(&ordered, 1)));
}

std::int64_t balance_of(const core::Client::ReadResult& res) {
  Account a{};
  EXPECT_EQ(res.value.size(), sizeof(a));
  if (res.value.size() == sizeof(a)) {
    std::memcpy(&a, res.value.data(), sizeof(a));
  }
  return a.balance;
}

std::int64_t stored_balance(core::System& sys, int rank, core::Oid oid) {
  auto [tmp, bytes] = sys.replica(0, rank).store().get(oid);
  Account a{};
  std::memcpy(&a, bytes.data(), sizeof(a));
  return a.balance;
}

// ---------------------------------------------------------------------
// Directed scenarios: the tentpole state machine
// ---------------------------------------------------------------------

sim::Task<void> warm_commit_script(core::System& sys, core::Client& client,
                                   bool& done) {
  co_await deposit(client, 0, 25);
  // Cold cache: the first read is ordered and seeds the slot address.
  const auto r1 = co_await client.read(0, 0);
  EXPECT_EQ(balance_of(r1), 1025);
  // Warm cache + live lease: the write commits one-sided.
  const auto w = co_await set_balance(client, 0, 500);
  EXPECT_TRUE(w.fast);
  EXPECT_EQ(w.fallback_reason, core::kFastWriteNone);
  EXPECT_TRUE(core::is_fast_tmp(w.tmp));
  EXPECT_EQ(w.base_tmp, r1.tmp);  // chained on the version the read saw
  EXPECT_EQ(client.fastwrite_commits(), 1u);
  EXPECT_EQ(client.fastwrite_fallbacks(), 0u);
  // The write completed at INVALIDATE-ack time; the VALIDATE posts are
  // fire-and-forget, so give them a moment to land before peeking at raw
  // replica memory. (Client-visible reads never need this: a fast read
  // spins past the odd seqlock and an ordered read fences on it.)
  co_await sys.simulator().sleep(sim::us(50));
  // The committed value is the current version at EVERY replica, each
  // slot's seqlock is even (no stranded invalidation)...
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(stored_balance(sys, r, 0), 500) << "replica " << r;
    EXPECT_EQ(sys.replica(0, r).store().seqlock(0) & 1, 0u) << "replica " << r;
  }
  // ...and both fast and ordered reads serve it.
  const auto r2 = co_await client.read(0, 0);
  EXPECT_TRUE(r2.fast);
  EXPECT_EQ(r2.tmp, w.tmp);
  EXPECT_EQ(balance_of(r2), 500);
  // A second fast write chains on the first one's fast tmp.
  const auto w2 = co_await set_balance(client, 0, 600);
  EXPECT_TRUE(w2.fast);
  EXPECT_EQ(w2.base_tmp, w.tmp);
  EXPECT_EQ(balance_of(co_await client.read(0, 0)), 600);
  // The ordered stream still wins over fast residue: a deposit after the
  // chain reads the committed 600 and wipes the fast tags everywhere.
  co_await deposit(client, 0, 7);
  const auto r3 = co_await client.read(0, 0);
  EXPECT_EQ(balance_of(r3), 607);
  EXPECT_FALSE(core::is_fast_tmp(r3.tmp));
  co_await sys.simulator().sleep(sim::us(50));  // let followers apply
  for (int r = 0; r < 3; ++r) {
    EXPECT_FALSE(sys.replica(0, r).store().has_fast_trace(0))
        << "replica " << r;
  }
  done = true;
}

TEST(FastWrite, WarmCacheCommitsOneSidedAndConverges) {
  run_script(101, write_config(sim::ms(1)), warm_commit_script);
}

sim::Task<void> fallback_reasons_script(core::System& sys,
                                        core::Client& client, bool& done) {
  co_await deposit(client, 0, 1);
  // Cold cache: no slot address yet.
  const auto w1 = co_await set_balance(client, 0, 50);
  EXPECT_FALSE(w1.fast);
  EXPECT_EQ(w1.fallback_reason, core::kFastWriteColdCache);
  EXPECT_EQ(w1.status, core::SubmitStatus::kOk);
  EXPECT_EQ(stored_balance(sys, 0, 0), 50);  // ordered twin executed
  (void)co_await client.read(0, 0);  // seed the cache
  // Wrong-size value: the one-sided overwrite must match the slot size.
  const std::uint32_t half = 1;
  const DepositReq ordered{0, 60};
  const auto w2 = co_await client.write(0, 0,
                                        std::as_bytes(std::span(&half, 1)),
                                        kSet,
                                        std::as_bytes(std::span(&ordered, 1)));
  EXPECT_FALSE(w2.fast);
  EXPECT_EQ(w2.fallback_reason, core::kFastWriteSizeMismatch);
  EXPECT_EQ(stored_balance(sys, 0, 0), 60);
  // Torn slot at one replica: the probe sees an odd seqlock there and the
  // write falls back as a conflict (the ordered twin's own write bracket
  // re-evens the lock).
  sys.replica(0, 1).store().begin_write(0);
  const auto w3 = co_await set_balance(client, 0, 70);
  EXPECT_FALSE(w3.fast);
  EXPECT_EQ(w3.fallback_reason, core::kFastWriteConflict);
  EXPECT_EQ(client.fastwrite_conflicts(), 1u);
  EXPECT_EQ(stored_balance(sys, 0, 0), 70);
  EXPECT_EQ(client.fastwrite_commits(), 0u);
  EXPECT_EQ(client.fastwrite_fallbacks(), 3u);
  done = true;
}

TEST(FastWrite, FallbacksKeepTheWriteAndRecordTheReason) {
  run_script(103, write_config(sim::ms(1)), fallback_reasons_script);
}

sim::Task<void> disabled_script(core::System&, core::Client& client,
                                bool& done) {
  co_await deposit(client, 0, 1);
  (void)co_await client.read(0, 0);
  const auto w = co_await set_balance(client, 0, 90);
  EXPECT_FALSE(w.fast);
  EXPECT_EQ(w.fallback_reason, core::kFastWriteDisabled);
  EXPECT_EQ(w.status, core::SubmitStatus::kOk);
  done = true;
}

TEST(FastWrite, FeatureFlagOffAlwaysTakesOrderedPath) {
  run_script(107, write_config(sim::ms(1), /*fast_writes=*/false),
             disabled_script);
}

sim::Task<void> expired_lease_script(core::System&, core::Client& client,
                                     bool& done) {
  co_await deposit(client, 0, 1);
  (void)co_await client.read(0, 0);
  // The lease duration is shorter than the ordering latency, so every
  // grant is already expired when sampled: the probe rejects and the
  // write falls back without ever invalidating a slot.
  const auto w = co_await set_balance(client, 0, 90);
  EXPECT_FALSE(w.fast);
  EXPECT_EQ(w.fallback_reason, core::kFastWriteNoLease);
  EXPECT_GE(client.fastwrite_lease_rejects(), 1u);
  EXPECT_EQ(w.status, core::SubmitStatus::kOk);
  done = true;
}

TEST(FastWrite, ExpiredLeaseForcesOrderedFallback) {
  run_script(109, write_config(sim::us(4)), expired_lease_script);
}

/// A writer that invalidated and then died: its INVALIDATE (odd,
/// fast-tagged seqlock) sits on every replica with no VALIDATE coming.
/// Unfenced local readers keep serving the pre-image; the next ordered
/// write to the oid fences on the pending slot, waits out the lease, and
/// its apply-side wipe repairs the residue on every replica.
sim::Task<void> orphan_script(core::System& sys, core::Client& client,
                              bool& done) {
  co_await deposit(client, 0, 25);  // balance 1025
  (void)co_await client.read(0, 0);
  const auto before = stored_balance(sys, 0, 0);
  // Forge the dead writer's INVALIDATE with the same one-sided CAS the
  // real fast path uses (no body write: the crash hit between CAS and
  // the value landing).
  auto& fabric = sys.fabric();
  const auto initiator = client.node().id();
  for (int r = 0; r < 3; ++r) {
    auto& rep = sys.replica(0, r);
    const auto lock = rep.store().seqlock(0);
    const auto [tmp, val] = rep.store().get(0);
    const core::Tmp ftmp = core::next_fast_tmp(tmp, 999);
    std::uint64_t observed = 0;
    const auto cc = co_await fabric.cas(
        initiator,
        rdma::RAddr{rep.node().id(), rep.store().mr(),
                    rep.store().offset_of(0)},
        lock, ftmp | 1, &observed);
    EXPECT_TRUE(cc.ok());
    EXPECT_EQ(observed, lock) << "CAS lost on replica " << r;
    if (!cc.ok() || observed != lock) co_return;
    EXPECT_TRUE(rep.store().fast_pending(0));
    // The pending invalidation is invisible to unfenced local readers.
    EXPECT_EQ(stored_balance(sys, r, 0), before);
  }
  // The next ordered write fences (waits out the lease on the pending
  // slot), discards the orphan, executes, and wipes the residue.
  co_await deposit(client, 0, 10);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(stored_balance(sys, r, 0), 1035) << "replica " << r;
    EXPECT_EQ(sys.replica(0, r).store().seqlock(0) & 1, 0u) << "replica " << r;
    EXPECT_FALSE(sys.replica(0, r).store().has_fast_trace(0))
        << "replica " << r;
  }
  // Fast reads work again.
  const auto r2 = co_await client.read(0, 0);
  EXPECT_EQ(balance_of(r2), 1035);
  done = true;
}

TEST(FastWrite, OrphanedInvalidateIsFencedAndRepaired) {
  run_script(113, write_config(sim::ms(1)), orphan_script);
}

// ---------------------------------------------------------------------
// Satellite: takeover mid-gate must not strand an odd seqlock
// ---------------------------------------------------------------------

/// Regression: Replica::write_gate used to early-return when its
/// incarnation went stale mid-wait, leaving the request's write brackets
/// (odd seqlocks) permanently stranded — every later fast read of those
/// oids saw a torn slot forever. A takeover is an incarnation bump
/// WITHOUT a restart, so no restart sweep ever repaired them.
sim::Task<void> takeover_script(core::System& sys, core::Client& client,
                                bool& done) {
  auto& sim = sys.simulator();
  co_await deposit(client, 0, 5);
  // Crash a follower: its applied-word mirror at the leader stops
  // advancing, so the next write's gate must wait (capped by the lease).
  sys.amcast().endpoint(0, 2).node().crash();
  co_await sim.sleep(sim::us(50));
  auto& leader = sys.replica(0, 0);
  const auto waits_before = leader.gate_waits();
  sim.spawn([](core::Client& client) -> sim::Task<void> {
    DepositReq req{0, 7};
    // The takeover stalls the leader's main loop mid-request; the
    // submit's terminal status is irrelevant here — only the bracket
    // hygiene below is.
    (void)co_await client.submit(amcast::dst_of(0), kDeposit,
                                 std::as_bytes(std::span(&req, 1)));
  }(client));
  while (leader.gate_waits() == waits_before) co_await sim.sleep(sim::us(2));
  // Mid-gate: the slot is bracketed (odd) and the gate is waiting.
  EXPECT_GT(leader.open_bracket_count(), 0u);
  leader.debug_bump_incarnation();  // takeover, no restart
  // Let the capped gate wait run out (the lease is 1 ms).
  co_await sim.sleep(sim::ms(3));
  EXPECT_EQ(leader.open_bracket_count(), 0u)
      << "takeover mid-gate stranded a write bracket";
  EXPECT_EQ(leader.store().seqlock(0) & 1, 0u)
      << "takeover mid-gate left the seqlock permanently odd";
  done = true;
}

TEST(FastWrite, TakeoverMidGateReleasesWriteBrackets) {
  run_script(127, write_config(sim::ms(1)), takeover_script);
}

// ---------------------------------------------------------------------
// Satellite: System::reset_stats clears every accumulator
// ---------------------------------------------------------------------

/// Regression: reset_stats missed lease_renewals_skipped_, so every
/// report that reset after a warm-up phase carried the warm-up's skip
/// count forever. Drive the counter up with a congestion window, reset,
/// and require a clean zero (alongside the replica/client counters that
/// were already covered).
TEST(FastWrite, ResetStatsClearsLeaseRenewalSkips) {
  sim::Simulator sim;
  // All three replicas share one oversubscribed rack uplink so the incast
  // actually builds backlog the renewal gate can see (the flat default
  // model never queues enough to trip it).
  rdma::LatencyModel congested;
  congested.rack_size = 3;
  congested.oversub_ratio = 2.0;
  rdma::Fabric fabric(sim, congested, 131);
  core::HeronConfig cfg = write_config(sim::us(400));
  cfg.lease_backpressure_threshold = sim::us(50);
  cfg.client_attempt_timeout = sim::ms(2);
  cfg.client_max_retries = 12;
  core::System sys(
      fabric, /*partitions=*/1, /*replicas=*/3,
      [] { return std::make_unique<BankApp>(1, kAccounts); }, cfg);
  sys.start();
  auto& client = sys.add_client();
  sim.spawn(bank_client_loop(sys, client, 131, /*ops=*/40, kAccounts));
  Injector injector(sys);
  injector.run(FaultPlan::parse("plan", "incast g0.r0 f8 b32768 p20us "
                                        "@ 2ms for 4ms"));
  sim.run_for(sim::ms(20));

  ASSERT_GT(sys.lease_renewals_skipped(), 0u)
      << "congestion window never tripped the renewal gate";
  sys.reset_stats();
  EXPECT_EQ(sys.lease_renewals_skipped(), 0u)
      << "reset_stats missed lease_renewals_skipped_";
  EXPECT_EQ(client.completed(), 0u);
  EXPECT_EQ(client.retries(), 0u);
  EXPECT_EQ(client.fastread_hits(), 0u);
  EXPECT_EQ(client.fastread_fallbacks(), 0u);
  EXPECT_EQ(client.fastwrite_commits(), 0u);
  EXPECT_EQ(client.fastwrite_fallbacks(), 0u);
  EXPECT_EQ(client.wrong_epoch_retries(), 0u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(sys.replica(0, r).gate_waits(), 0u) << "replica " << r;
    EXPECT_EQ(sys.replica(0, r).lease_grants(), 0u) << "replica " << r;
  }
}

// ---------------------------------------------------------------------
// Satellite: first read of a large object must not stay truncated
// ---------------------------------------------------------------------

constexpr std::size_t kBigSize = core::kMaxReadInline + 64;

/// One partition, one object of kBigSize bytes — larger than an ordered
/// read reply can carry inline.
class BigObjectApp : public core::Application {
 public:
  [[nodiscard]] core::GroupId partition_of(core::Oid) const override {
    return 0;
  }
  [[nodiscard]] std::vector<core::Oid> read_set(
      const core::Request&, core::GroupId) const override {
    return {};
  }
  core::Reply execute(const core::Request&, core::ExecContext& ctx) override {
    ctx.charge(sim::us(1));
    return core::Reply{};
  }
  void bootstrap(core::GroupId, core::ObjectStore& store) override {
    std::vector<std::byte> init(kBigSize);
    for (std::size_t i = 0; i < init.size(); ++i) {
      init[i] = static_cast<std::byte>(i & 0xFF);
    }
    store.create(0, init);
  }
};

/// Regression: the FIRST read of an object wider than the inline reply
/// budget returned the clipped ordered value even with leases on — the
/// truncated reply had just seeded the address cache, but read() never
/// looped back to the (uncapped) fast path.
TEST(FastWrite, FirstReadOfLargeObjectReturnsFullValue) {
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, 137);
  core::HeronConfig cfg = write_config(sim::ms(1));
  cfg.object_region_bytes = 1u << 22;
  core::System sys(
      fabric, /*partitions=*/1, /*replicas=*/3,
      [] { return std::make_unique<BigObjectApp>(); }, cfg);
  sys.start();
  auto& client = sys.add_client();
  bool done = false;
  sim.spawn([](core::Client& client, bool& done) -> sim::Task<void> {
    const auto r1 = co_await client.read(0, 0);
    EXPECT_EQ(r1.status, 0u) << "first read stayed truncated";
    EXPECT_TRUE(r1.fast) << "retry did not land on the fast path";
    EXPECT_EQ(r1.value.size(), kBigSize);
    if (r1.value.size() == kBigSize) {
      std::size_t mismatches = 0;
      for (std::size_t i = 0; i < kBigSize; ++i) {
        if (r1.value[i] != static_cast<std::byte>(i & 0xFF)) ++mismatches;
      }
      EXPECT_EQ(mismatches, 0u) << "returned value is corrupt";
    }
    done = true;
  }(client, done));
  sim.run_for(sim::ms(20));
  EXPECT_TRUE(done) << "script did not finish";
  // Without a live lease the truncated ordered answer is still returned
  // honestly (correctly flagged) rather than looping forever.
  EXPECT_GE(client.fastread_fallbacks(), 1u);
}

// ---------------------------------------------------------------------
// Chaos cells: mixed fast-read/fast-write histories under faults
// ---------------------------------------------------------------------

struct WriteCellResult {
  std::uint64_t completed = 0;
  std::uint64_t fast_hits = 0;
  std::uint64_t fw_commits = 0;
  std::uint64_t fw_conflicts = 0;
  std::uint64_t fw_fallbacks = 0;
  std::uint64_t fw_lease_rejects = 0;
  std::uint64_t lease_grants = 0;
  std::uint64_t fast_repairs = 0;
  std::size_t reads_checked = 0;
  std::size_t writes_checked = 0;
  std::vector<std::uint64_t> digests;
  std::vector<Violation> violations;
};

/// Closed-loop mixed client: fast reads, blind fast writes (kSet), and
/// ordered read-modify-write deposits on the same keys. Every completed
/// operation is reported to the LinearChecker.
sim::Task<void> mixed_rw_loop(core::System& sys, core::Client& client,
                              LinearChecker& lin, std::uint64_t seed, int ops,
                              double read_ratio, double fast_write_ratio) {
  sim::Rng rng(seed);
  auto& sim = sys.simulator();
  const auto partitions = static_cast<std::uint64_t>(sys.partitions());
  const auto total = partitions * kAccounts;
  for (int k = 0; k < ops; ++k) {
    const core::Oid oid = rng.bounded(total);
    const auto home = static_cast<amcast::GroupId>(oid % partitions);
    if (rng.chance(read_ratio)) {
      const sim::Nanos t0 = sim.now();
      const auto res = co_await client.read(home, oid);
      if (res.submit_status == core::SubmitStatus::kOk && res.status == 0) {
        lin.note_read(oid, res.tmp, t0, sim.now(), res.fast);
      }
    } else if (rng.chance(fast_write_ratio)) {
      const auto bal = static_cast<std::int64_t>(rng.bounded(100000));
      const Account value{bal};
      const DepositReq ordered{oid, bal};
      const sim::Nanos t0 = sim.now();
      const auto res = co_await client.write(
          home, oid, std::as_bytes(std::span(&value, 1)), kSet,
          std::as_bytes(std::span(&ordered, 1)));
      if (res.fast) {
        lin.note_fast_write(oid, res.tmp, res.base_tmp, t0, sim.now());
      } else {
        lin.note_write(oid, client.id(), res.session_seq, t0, sim.now(),
                       res.status);
      }
    } else {
      DepositReq req{oid, 5};
      const sim::Nanos t0 = sim.now();
      const auto res = co_await client.submit(
          amcast::dst_of(home), kDeposit, std::as_bytes(std::span(&req, 1)));
      lin.note_write(oid, client.id(), res.session_seq, t0, sim.now(),
                     res.status);
    }
  }
}

WriteCellResult run_write_cell(std::uint64_t seed, int partitions,
                               int clients, int ops,
                               sim::Nanos lease_duration,
                               const std::string& plan_text = "") {
  constexpr int kReplicas = 3;
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, seed);
  core::HeronConfig cfg = write_config(lease_duration);
  cfg.client_attempt_timeout = sim::us(200);
  cfg.client_max_retries = 12;
  cfg.client_retry_backoff = sim::us(20);
  cfg.client_retry_backoff_max = sim::us(500);
  core::System sys(
      fabric, partitions, kReplicas,
      [partitions] {
        return std::make_unique<BankApp>(partitions, kAccounts);
      },
      cfg);
  HistoryRecorder history;
  history.attach(sys);
  sys.start();

  LinearChecker lin;
  for (int c = 0; c < clients; ++c) {
    sim.spawn(mixed_rw_loop(sys, sys.add_client(), lin,
                            seed * 1000 + static_cast<std::uint64_t>(c), ops,
                            /*read_ratio=*/0.5, /*fast_write_ratio=*/0.6));
  }
  Injector injector(sys);
  injector.run(FaultPlan::parse("plan", plan_text));
  sim.run_for(sim::ms(100));

  WriteCellResult out;
  for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
    auto& cl = sys.client(c);
    out.completed += cl.completed();
    out.fast_hits += cl.fastread_hits();
    out.fw_commits += cl.fastwrite_commits();
    out.fw_conflicts += cl.fastwrite_conflicts();
    out.fw_fallbacks += cl.fastwrite_fallbacks();
    out.fw_lease_rejects += cl.fastwrite_lease_rejects();
    EXPECT_FALSE(cl.in_flight()) << "client " << c << " hung";
  }
  for (core::GroupId g = 0; g < partitions; ++g) {
    for (int r = 0; r < kReplicas; ++r) {
      out.lease_grants += sys.replica(g, r).lease_grants();
      out.fast_repairs += sys.replica(g, r).fast_repairs();
      if (!sys.replica(g, r).node().alive()) continue;
      out.digests.push_back(store_digest(sys.replica(g, r)));
      // No cell may end with a stranded invalidation: every slot's
      // seqlock must be even once the workload drains.
      sys.replica(g, r).store().for_each_oid([&](core::Oid oid) {
        EXPECT_EQ(sys.replica(g, r).store().seqlock(oid) & 1, 0u)
            << "g" << g << ".r" << r << " oid " << oid
            << " left with an odd seqlock";
      });
    }
  }
  out.reads_checked = lin.read_count();
  out.writes_checked = lin.write_count();
  out.violations =
      check_amcast_properties(history, sys, injector.ever_crashed());
  check_exactly_once(history, out.violations);
  check_store_convergence(sys, out.violations);
  for (auto& v : lin.check(history)) out.violations.push_back(std::move(v));
  return out;
}

void expect_clean(const WriteCellResult& res) {
  for (const auto& v : res.violations) {
    ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
  }
}

TEST(FastWrite, MixedWorkloadIsLinearizableAndMostlyOneSided) {
  const auto res = run_write_cell(139, /*partitions=*/2, /*clients=*/3,
                                  /*ops=*/60, sim::ms(1));
  expect_clean(res);
  EXPECT_GT(res.reads_checked, 0u);
  EXPECT_GT(res.writes_checked, 0u);
  EXPECT_GT(res.fw_commits, 0u);
  // Healthy leases: commits dominate fallbacks (cold-cache seeds aside).
  EXPECT_GT(res.fw_commits, res.fw_fallbacks);
}

TEST(FastWrite, LeaderCrashDuringFastWritesStaysLinearizable) {
  const auto res = run_write_cell(149, /*partitions=*/2, /*clients=*/3,
                                  /*ops=*/40, sim::ms(1),
                                  "crash g0.r0 @ 500us; restart g0.r0 @ 5ms");
  expect_clean(res);
  EXPECT_GT(res.fw_commits, 0u);
  EXPECT_GT(res.reads_checked, 0u);
  // Every closed-loop command completed despite the crash window (fast
  // ops answer outside the ordered submit path, so they count apart).
  // Fast-write commits count in completed() too, so the closed-loop
  // identity is completed + fast-read hits == total ops.
  EXPECT_EQ(res.completed + res.fast_hits, 3u * 40u);
}

TEST(FastWrite, LeaseExpiryMidWriteStaysLinearizable) {
  // Leases one order shorter than in the healthy cell: grants spend most
  // of their life near expiry, so probes and the pre-VALIDATE margin
  // check constantly race lease churn mid-flight.
  const auto res = run_write_cell(151, /*partitions=*/2, /*clients=*/3,
                                  /*ops=*/40, sim::us(60));
  expect_clean(res);
  EXPECT_GT(res.fw_fallbacks + res.fw_lease_rejects, 0u);
}

TEST(FastWrite, ChaosMixIsDeterministic) {
  const auto a = run_write_cell(157, 2, 3, 30, sim::ms(1),
                                "crash g0.r1 @ 1ms; restart g0.r1 @ 4ms");
  const auto b = run_write_cell(157, 2, 3, 30, sim::ms(1),
                                "crash g0.r1 @ 1ms; restart g0.r1 @ 4ms");
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.fast_hits, b.fast_hits);
  EXPECT_EQ(a.fw_commits, b.fw_commits);
  EXPECT_EQ(a.fw_conflicts, b.fw_conflicts);
  EXPECT_EQ(a.fw_fallbacks, b.fw_fallbacks);
  EXPECT_EQ(a.fw_lease_rejects, b.fw_lease_rejects);
  EXPECT_EQ(a.lease_grants, b.lease_grants);
  EXPECT_EQ(a.fast_repairs, b.fast_repairs);
  EXPECT_EQ(a.digests, b.digests);
}

// ---------------------------------------------------------------------
// Chaos cell: reconfiguration epoch bump mid-write
// ---------------------------------------------------------------------

/// Layout-routed RangeKv mix: fast reads, blind fast writes (kKvSet),
/// and ordered increments, while the controller migrates a key range to
/// another group mid-run. Fast writes racing the bump must either commit
/// before the flip (and be carried by the copy stream) or fall back and
/// re-route via WrongEpoch.
TEST(FastWrite, EpochBumpMidFastWriteStaysLinearizable) {
  constexpr int kPartitions = 2;
  constexpr int kClients = 3;
  constexpr int kOps = 40;
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, 163);
  core::HeronConfig cfg = write_config(sim::ms(1));
  cfg.reconfig_keys = kKvKeys;  // epoch-versioned layout routing on
  cfg.client_attempt_timeout = sim::us(500);
  cfg.client_max_retries = 12;
  core::System sys(
      fabric, kPartitions, /*replicas=*/3,
      [] { return std::make_unique<RangeKv>(kKvKeys); }, cfg);
  HistoryRecorder history;
  history.attach(sys);
  ExecTracker tracker;
  tracker.attach(sys);
  sys.start();

  LinearChecker lin;
  for (int c = 0; c < kClients; ++c) {
    sim.spawn([](core::System& sys, core::Client& client, LinearChecker& lin,
                 std::uint64_t seed, int ops) -> sim::Task<void> {
      sim::Rng rng(seed);
      auto& sim = sys.simulator();
      for (int k = 0; k < ops; ++k) {
        const core::Oid key = rng.bounded(kKvKeys);
        const auto home = client.layout().owner_of(key);
        if (rng.chance(0.4)) {
          const sim::Nanos t0 = sim.now();
          const auto res = co_await client.read(home, key);
          if (res.submit_status == core::SubmitStatus::kOk &&
              res.status == 0) {
            lin.note_read(key, res.tmp, t0, sim.now(), res.fast);
          }
        } else if (rng.chance(0.7)) {
          const KvCell value{static_cast<std::int64_t>(rng.bounded(100000))};
          const KvAddReq ordered{key, value.value};
          const sim::Nanos t0 = sim.now();
          const auto res = co_await client.write(
              home, key, std::as_bytes(std::span(&value, 1)), kKvSet,
              std::as_bytes(std::span(&ordered, 1)));
          if (res.fast) {
            lin.note_fast_write(key, res.tmp, res.base_tmp, t0, sim.now());
          } else {
            lin.note_write(key, client.id(), res.session_seq, t0, sim.now(),
                           res.status);
          }
        } else {
          KvAddReq req{key, 1};
          const sim::Nanos t0 = sim.now();
          const auto res = co_await client.submit_routed(
              key, home, kKvAdd, std::as_bytes(std::span(&req, 1)));
          lin.note_write(key, client.id(), res.session_seq, t0, sim.now(),
                         res.status);
        }
      }
    }(sys, sys.add_client(), lin, 163 * 1000 + static_cast<std::uint64_t>(c),
      kOps));
  }
  sys.schedule_migration(reconfig::Plan{sim::ms(2), 0, 8, 0, 1});
  sim.run_for(sim::ms(120));

  EXPECT_FALSE(sys.migration_times().empty());
  if (!sys.migration_times().empty()) {
    EXPECT_GT(sys.migration_times().front().sealed, 0)
        << "migration never sealed";
  }
  std::uint64_t commits = 0;
  for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
    commits += sys.client(c).fastwrite_commits();
    EXPECT_FALSE(sys.client(c).in_flight()) << "client " << c << " hung";
  }
  EXPECT_GT(commits, 0u);
  EXPECT_GT(lin.read_count(), 0u);
  std::vector<Violation> violations =
      check_amcast_properties(history, sys, CrashSet{});
  check_exactly_once(history, violations);
  check_store_convergence(sys, violations);
  tracker.check(violations);
  for (auto& v : lin.check(history)) violations.push_back(std::move(v));
  for (const auto& v : violations) {
    ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
  }
}

}  // namespace
}  // namespace heron::faultlab
