// Tests for the telemetry library: JSON writer, metrics registry,
// virtual-time tracer, log capture, and end-to-end determinism of the
// exported artifacts across same-seed cluster runs.
#include <gtest/gtest.h>

#include <string>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "sim/log.hpp"
#include "sim/stats.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/kernel.hpp"

namespace heron {
namespace {

// ---------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------

TEST(JsonWriter, NestedContainersAndEscaping) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("s", "a\"b\\c\n\t");
  w.kv("i", std::int64_t{-3});
  w.kv("u", std::uint64_t{18446744073709551615ull});
  w.kv("b", true);
  w.key("arr").begin_array();
  w.value(1);
  w.begin_object().kv("k", "v").end_object();
  w.end_array();
  w.key("ts");
  w.value_fixed(1234.5, 3);
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\\t\",\"i\":-3,"
            "\"u\":18446744073709551615,\"b\":true,"
            "\"arr\":[1,{\"k\":\"v\"}],\"ts\":1234.500}");
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistry, DisabledRecordingIsDropped) {
  telemetry::MetricsRegistry m;
  auto& c = m.counter("sub", "ops");
  auto& g = m.gauge("sub", "depth");
  auto& h = m.histogram("sub", "lat");
  c.inc();
  g.set(7);
  h.observe(100);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);

  m.enable();
  c.inc(3);
  g.set(7);
  g.add(-2);
  h.observe(100);
  h.observe(900);
  EXPECT_EQ(c.value(), 3u);
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 1000);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 900);
}

TEST(MetricsRegistry, SameKeyReturnsSameHandle) {
  telemetry::MetricsRegistry m;
  auto& a = m.counter("s", "n", "l");
  auto& b = m.counter("s", "n", "l");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &m.counter("s", "n", "other"));
}

TEST(MetricsRegistry, HistogramBucketsAreInclusiveUpperBounds) {
  telemetry::MetricsRegistry m;
  m.enable();
  auto& h = m.histogram("s", "h", "", {10, 100});
  h.observe(10);    // first bucket (inclusive)
  h.observe(11);    // second bucket
  h.observe(1000);  // +inf bucket
  ASSERT_EQ(h.counts().size(), 3u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
}

TEST(MetricsRegistry, ResetValuesKeepsLayout) {
  telemetry::MetricsRegistry m;
  m.enable();
  auto& c = m.counter("s", "c");
  auto& h = m.histogram("s", "h", "", {10});
  c.inc(5);
  h.observe(3);
  m.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  ASSERT_EQ(h.counts().size(), 2u);
  EXPECT_EQ(h.counts()[0], 0u);
  c.inc();  // handle still live and enabled
  EXPECT_EQ(c.value(), 1u);
}

TEST(MetricsRegistry, JsonSnapshotIsSortedAndComplete) {
  telemetry::MetricsRegistry m;
  m.enable();
  m.counter("z", "last").inc(2);
  m.counter("a", "first").inc(1);
  const std::string json = m.to_json();
  const auto first = json.find("\"first\"");
  const auto last = json.find("\"last\"");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(last, std::string::npos);
  EXPECT_LT(first, last);  // sorted by (subsystem, name, label)
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

TEST(Tracer, SpansNestAndExportChromeEvents) {
  sim::Simulator sim;
  telemetry::Tracer tracer(sim);
  tracer.enable();
  tracer.set_tid_name(3, "node3");

  {
    auto outer = tracer.span("core", "outer", 3);
    outer.arg("uid", 42);
    sim.run_until(sim::us(1));
    {
      auto inner = tracer.span("core", "inner", 3);
      sim.run_until(sim::us(2));
    }
    sim.run_until(sim::us(3));
  }
  tracer.instant("core", "tick", 3, {{"n", 7}});

  EXPECT_EQ(tracer.event_count(), 3u);
  const std::string json = tracer.chrome_json();
  // Thread-name metadata precedes the events.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"node3\""), std::string::npos);
  // outer: [0us, 3us); inner: [1us, 2us); timestamps in fixed-point us.
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"uid\":42"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(Tracer, DisabledTracerHandsOutInertSpans) {
  sim::Simulator sim;
  telemetry::Tracer tracer(sim);
  auto span = tracer.span("c", "n", 0);
  EXPECT_FALSE(static_cast<bool>(span));
  span.arg("k", 1);
  span.finish();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Tracer, ClearWithOpenSpanIsSafe) {
  sim::Simulator sim;
  telemetry::Tracer tracer(sim);
  tracer.enable();
  auto span = tracer.span("c", "n", 0);
  tracer.clear();
  auto fresh = tracer.span("c", "fresh", 0);
  // Finishing the stale span must not touch the new buffer (epoch guard).
  span.arg("k", 1);
  span.finish();
  fresh.finish();
  EXPECT_EQ(tracer.event_count(), 1u);
  EXPECT_NE(tracer.chrome_json().find("\"fresh\""), std::string::npos);
}

TEST(Tracer, CapacityCapCountsDropped) {
  sim::Simulator sim;
  telemetry::Tracer tracer(sim);
  tracer.enable();
  tracer.set_capacity(2);
  tracer.instant("c", "a", 0);
  tracer.instant("c", "b", 0);
  tracer.instant("c", "c", 0);
  EXPECT_EQ(tracer.event_count(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
}

TEST(Tracer, UnfinishedSpansAreSkippedOnExport) {
  sim::Simulator sim;
  telemetry::Tracer tracer(sim);
  tracer.enable();
  auto open = tracer.span("c", "open", 0);
  tracer.instant("c", "done", 0);
  const std::string json = tracer.chrome_json();
  EXPECT_EQ(json.find("\"open\""), std::string::npos);
  EXPECT_NE(json.find("\"done\""), std::string::npos);
  open.finish();
}

// ---------------------------------------------------------------------
// Log sink (satellite: pluggable sim::log_line sink)
// ---------------------------------------------------------------------

TEST(LogSink, SinkReceivesLinesAndRestores) {
  sim::set_log_level(sim::LogLevel::kInfo);
  std::string got;
  sim::set_log_sink([&](sim::Nanos now, const std::string& msg) {
    got = std::to_string(now) + ":" + msg;
  });
  sim::log_line(1500, "hello");
  EXPECT_EQ(got, "1500:hello");
  sim::set_log_sink({});  // restore default stderr writer
  sim::set_log_level(sim::LogLevel::kNone);
}

TEST(LogSink, HubCapturesLogLinesAsInstants) {
  sim::Simulator sim;
  telemetry::Hub hub(sim);
  hub.enable_all();
  hub.capture_logs();
  sim::set_log_level(sim::LogLevel::kInfo);
  sim::log_line(2000, "captured line");
  sim::set_log_level(sim::LogLevel::kNone);
  hub.release_logs();
  const std::string json = hub.tracer.chrome_json();
  EXPECT_NE(json.find("captured line"), std::string::npos);
}

// ---------------------------------------------------------------------
// LatencyRecorder (satellite regression: record() after percentile())
// ---------------------------------------------------------------------

TEST(LatencyRecorder, RecordAfterPercentileInvalidatesSortCache) {
  sim::LatencyRecorder lat;
  lat.record(300);
  lat.record(100);
  EXPECT_EQ(lat.percentile(100), 300);
  lat.record(50);  // must reset the sorted flag
  EXPECT_EQ(lat.percentile(0), 50);
  EXPECT_EQ(lat.percentile(100), 300);
}

// ---------------------------------------------------------------------
// End-to-end: instrumented cluster runs, deterministic export
// ---------------------------------------------------------------------

struct ClusterArtifacts {
  std::string trace;
  std::string metrics;
  std::string report;
};

ClusterArtifacts run_instrumented_cluster() {
  tpcc::TpccScale scale{.factor = 0.02, .initial_orders_per_district = 10};
  harness::TpccCluster cluster(/*partitions=*/2, /*replicas=*/3, scale);
  cluster.telemetry().enable_all();
  cluster.add_clients(1, tpcc::WorkloadConfig{});
  auto result = cluster.run(sim::ms(2), sim::ms(4));

  harness::ReportWriter report("test");
  report.row("cell", result);
  return ClusterArtifacts{
      cluster.telemetry().tracer.chrome_json(),
      cluster.telemetry().metrics.to_json(),
      report.finish(&cluster.telemetry().metrics),
  };
}

TEST(TelemetryEndToEnd, ClusterRunProducesAllLayerSpans) {
  const ClusterArtifacts art = run_instrumented_cluster();
  // Spans/metrics from every instrumented layer.
  EXPECT_NE(art.trace.find("\"cat\":\"rdma\""), std::string::npos);
  EXPECT_NE(art.trace.find("\"cat\":\"amcast\""), std::string::npos);
  EXPECT_NE(art.trace.find("\"cat\":\"core\""), std::string::npos);
  EXPECT_NE(art.trace.find("\"name\":\"execute\""), std::string::npos);
  EXPECT_NE(art.metrics.find("\"read_ops\""), std::string::npos);
  EXPECT_NE(art.metrics.find("\"deliveries\""), std::string::npos);
  EXPECT_NE(art.metrics.find("\"executed\""), std::string::npos);
  // The report embeds throughput plus the per-kind latency summary.
  EXPECT_NE(art.report.find("\"throughput_tps\""), std::string::npos);
  EXPECT_NE(art.report.find("\"new_order\""), std::string::npos);
  EXPECT_NE(art.report.find("\"p99_us\""), std::string::npos);
  EXPECT_NE(art.report.find("\"metrics\""), std::string::npos);
}

TEST(TelemetryEndToEnd, SameSeedRunsExportByteIdenticalArtifacts) {
  const ClusterArtifacts a = run_instrumented_cluster();
  const ClusterArtifacts b = run_instrumented_cluster();
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.report, b.report);
}

TEST(TelemetryEndToEnd, DisabledTelemetryRecordsNothing) {
  tpcc::TpccScale scale{.factor = 0.02, .initial_orders_per_district = 10};
  harness::TpccCluster cluster(/*partitions=*/2, /*replicas=*/3, scale);
  cluster.add_clients(1, tpcc::WorkloadConfig{});
  auto result = cluster.run(sim::ms(2), sim::ms(4));
  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(cluster.telemetry().tracer.event_count(), 0u);
  // Handles exist (registered at construction) but recorded nothing.
  auto& m = cluster.telemetry().metrics;
  EXPECT_EQ(m.counter("core", "executed", "g0.r0").value(), 0u);
  EXPECT_EQ(m.counter("rdma", "write_ops").value(), 0u);
}

// ---------------------------------------------------------------------
// KernelStats: events/sec + queue-depth sampling of the sim kernel
// ---------------------------------------------------------------------

TEST(KernelStats, SamplesThroughputAndQueueDepth) {
  sim::Simulator sim;
  telemetry::MetricsRegistry metrics;
  metrics.enable();
  telemetry::KernelStats kernel(sim, metrics, sim::us(10));
  kernel.start();

  // A self-rescheduling load: ~1 event per 1us for 1ms.
  sim.spawn([](sim::Simulator& s) -> sim::Task<void> {
    for (int i = 0; i < 1000; ++i) co_await s.sleep(sim::us(1));
  }(sim));
  sim.run_until(sim::ms(1));

  const auto executed = metrics.counter("sim", "events_executed").value();
  EXPECT_GT(executed, 900u);  // sampler saw nearly every event
  EXPECT_GT(metrics.gauge("sim", "events_per_vsec").value(), 0);
  EXPECT_GT(metrics.histogram("sim", "queue_depth").count(), 90u);

  // stop() disarms the timer: the queue drains and sampling ceases.
  kernel.stop();
  sim.run();
  const auto after = metrics.counter("sim", "events_executed").value();
  sim.run_for(sim::ms(1));
  EXPECT_EQ(metrics.counter("sim", "events_executed").value(), after);
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace heron
