// Integration tests for heron::durable wired into core::Replica:
// checkpoint-restored restarts with O(delta) catch-up, fallback to a full
// transfer when the local checkpoint is corrupt, session-TTL eviction
// semantics (stale-session replies, never double-execution), and a soak
// run asserting the update log / session table / device chain all stay
// bounded under continuous load.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <utility>

#include "core/system.hpp"
#include "faultlab/history.hpp"
#include "rdma/fabric.hpp"

namespace heron::core {
namespace {

using sim::Nanos;
using sim::Task;

enum Kind : std::uint32_t { kTouchAll = 1, kPut = 3, kEcho = 4 };

/// `count` non-serialized objects; kTouchAll rewrites every one, kPut
/// rewrites the oid named in the payload, kEcho writes nothing and
/// replies with the request payload (a reply worth caching).
class PutApp : public Application {
 public:
  PutApp(std::uint64_t count, std::uint32_t size)
      : count_(count), size_(size) {}

  GroupId partition_of(Oid) const override { return 0; }
  std::vector<Oid> read_set(const Request&, GroupId) const override {
    return {};
  }
  Reply execute(const Request& r, ExecContext& ctx) override {
    std::vector<std::byte> value(size_);
    std::memcpy(value.data(), &r.tmp, sizeof(r.tmp));
    if (r.header.kind == kTouchAll) {
      for (std::uint64_t i = 0; i < count_; ++i) ctx.write(i + 1, value);
    } else if (r.header.kind == kPut) {
      Oid oid = 0;
      std::memcpy(&oid, r.payload.data(), sizeof(oid));
      ctx.write(oid, value);
    } else if (r.header.kind == kEcho) {
      return Reply{0, r.payload};
    }
    return Reply{};
  }
  void bootstrap(GroupId, ObjectStore& store) override {
    std::vector<std::byte> init(size_);
    for (std::uint64_t i = 0; i < count_; ++i) {
      store.create(i + 1, init, /*serialized=*/false);
    }
  }

 private:
  std::uint64_t count_;
  std::uint32_t size_;
};

struct Env {
  sim::Simulator sim;
  rdma::Fabric fabric{sim, rdma::LatencyModel{}, 7};
  std::unique_ptr<System> sys;

  Env(std::uint64_t count, std::uint32_t size, HeronConfig cfg) {
    cfg.statesync_timeout = sim::sec(2);
    cfg.object_region_bytes =
        static_cast<std::size_t>(count + 4) * (2 * size + 64) + (1u << 20);
    sys = std::make_unique<System>(
        fabric, 1, 3,
        [count, size] { return std::make_unique<PutApp>(count, size); }, cfg);
    sys->start();
  }

  /// Drives virtual time until the script sets `done` (heartbeat loops
  /// never finish, so run_for in slices).
  void drive(bool& done, sim::Nanos slice = sim::ms(10), int slices = 3000) {
    for (int i = 0; i < slices && !done; ++i) sim.run_for(slice);
    ASSERT_TRUE(done) << "test script did not finish";
  }
};

Task<Client::Result> submit_put(Client& c, Oid oid) {
  std::vector<std::byte> payload(sizeof(oid));
  std::memcpy(payload.data(), &oid, sizeof(oid));
  co_return co_await c.submit(amcast::dst_of(0), kPut, payload);
}

/// Waits until (0,2) has left the rejoin path and caught up with (0,0).
Task<void> await_caught_up(System& sys) {
  auto& s = sys.simulator();
  auto& victim = sys.replica(0, 2);
  auto& survivor = sys.replica(0, 0);
  for (int i = 0; i < 400000 && (victim.rejoining() ||
                                 victim.last_executed() <
                                     survivor.last_executed());
       ++i) {
    co_await s.sleep(sim::us(50));
  }
}

void expect_stores_converged(System& sys) {
  std::vector<faultlab::Violation> v;
  faultlab::check_store_convergence(sys, v);
  faultlab::check_session_convergence(sys, v);
  for (const auto& viol : v) {
    ADD_FAILURE() << "[" << viol.oracle << "] " << viol.detail;
  }
}

TEST(CheckpointRecovery, RestartRestoresCheckpointAndCatchesUpViaDelta) {
  HeronConfig cfg;
  cfg.durable.checkpoint_interval = sim::ms(5);
  Env env(32, 4 << 10, cfg);
  auto& client = env.sys->add_client();

  bool done = false;
  env.sim.spawn([](Env& e, Client& cl, bool& flag) -> Task<void> {
    auto& s = e.sim;
    auto& victim = e.sys->replica(0, 2);
    for (int round = 0; round < 3; ++round) {
      co_await cl.submit(amcast::dst_of(0), kTouchAll, {});
      co_await s.sleep(sim::ms(1));
    }
    // Let the background writer durably cover everything executed.
    for (int i = 0;
         i < 60000 && victim.checkpoint_watermark() < victim.last_executed();
         ++i) {
      co_await s.sleep(sim::ms(1));
    }
    const Tmp covered = victim.checkpoint_watermark();
    EXPECT_GT(covered, 0u);  // gtest ASSERTs return; coroutines can't

    e.sys->amcast().endpoint(0, 2).node().crash();
    // The delta tail: commands the survivors execute while it is down.
    for (Oid oid = 1; oid <= 3; ++oid) co_await submit_put(cl, oid);
    co_await s.sleep(sim::ms(1));

    e.sys->restart_replica(0, 2);
    co_await await_caught_up(*e.sys);

    EXPECT_FALSE(victim.rejoining());
    EXPECT_TRUE(victim.restored_from_checkpoint());
    EXPECT_GE(victim.checkpoint_watermark(), covered);
    // O(delta): the rejoin pulled only the missed tail over the network,
    // never a full transfer.
    EXPECT_EQ(victim.xfer_applied_full_bytes(), 0u);
    EXPECT_GT(victim.xfer_applied_delta_bytes(), 0u);
    EXPECT_GT(victim.restart_catchup_bytes(), 0u);
    EXPECT_LT(victim.restart_catchup_bytes(), 32u * (4u << 10));
    flag = true;
  }(env, client, done));
  env.drive(done);
  expect_stores_converged(*env.sys);
}

TEST(CheckpointRecovery, CorruptCheckpointFallsBackToFullTransfer) {
  HeronConfig cfg;
  cfg.durable.checkpoint_interval = sim::ms(5);
  Env env(32, 4 << 10, cfg);
  auto& client = env.sys->add_client();

  bool done = false;
  env.sim.spawn([](Env& e, Client& cl, bool& flag) -> Task<void> {
    auto& s = e.sim;
    auto& victim = e.sys->replica(0, 2);
    for (int round = 0; round < 3; ++round) {
      co_await cl.submit(amcast::dst_of(0), kTouchAll, {});
      co_await s.sleep(sim::ms(1));
    }
    for (int i = 0;
         i < 60000 && victim.checkpoint_watermark() < victim.last_executed();
         ++i) {
      co_await s.sleep(sim::ms(1));
    }
    EXPECT_TRUE(victim.durable_store()->has_checkpoint());

    e.sys->amcast().endpoint(0, 2).node().crash();
    // Kill both superblock slots: no checkpoint chain can validate, so
    // the rejoin must fall back to a full Algorithm 3 transfer.
    victim.durable_store()->device().corrupt_page(0);
    victim.durable_store()->device().corrupt_page(1);
    co_await s.sleep(sim::ms(1));

    e.sys->restart_replica(0, 2);
    co_await await_caught_up(*e.sys);

    EXPECT_FALSE(victim.rejoining());
    EXPECT_FALSE(victim.restored_from_checkpoint());
    EXPECT_GT(victim.xfer_applied_full_bytes(), 0u);
    EXPECT_GE(victim.durable_store()->device().crc_failures(), 1u);
    flag = true;
  }(env, client, done));
  env.drive(done);
  expect_stores_converged(*env.sys);
}

TEST(CheckpointRecovery, EvictedSessionRetryGetsStaleReplyNotReexecution) {
  HeronConfig cfg;
  cfg.durable.checkpoint_interval = sim::us(500);
  cfg.durable.session_ttl = sim::ms(2);
  Env env(8, 128, cfg);
  auto& a = env.sys->add_client();
  auto& b = env.sys->add_client();

  // Executions per (amcast client id, session_seq) across all replicas.
  std::map<std::pair<std::uint32_t, std::uint64_t>, int> execs;
  env.sys->set_exec_observer([&execs](GroupId, int, std::uint32_t client,
                                      std::uint64_t seq, MsgUid, Tmp) {
    execs[{client, seq}]++;
  });

  bool done = false;
  env.sim.spawn([](Env& e, Client& a_cl, Client& b_cl,
                   std::map<std::pair<std::uint32_t, std::uint64_t>, int>& ex,
                   bool& flag) -> Task<void> {
    auto& s = e.sim;
    co_await submit_put(a_cl, 1);  // a's session_seq 1
    EXPECT_EQ(a_cl.session_seq(), 1u);

    // Keep the watermark moving with b so checkpoints (and with them the
    // TTL sweep) keep firing while a sits idle past its TTL.
    auto all_evicted = [&e] {
      for (int r = 0; r < 3; ++r) {
        if (e.sys->replica(0, r).sessions_evicted() == 0) return false;
      }
      return true;
    };
    for (int k = 0; k < 2000 && !all_evicted(); ++k) {
      co_await submit_put(b_cl, 2);
      co_await s.sleep(sim::us(200));
    }
    EXPECT_TRUE(all_evicted());

    const int executed_before = ex[{a_cl.id(), 1}];
    EXPECT_GT(executed_before, 0);

    // a retries its first command after server-side eviction: the reply
    // must be a distinguishable stale-session verdict, and no replica may
    // execute the command a second time.
    a_cl.rewind_session(0);
    const Client::Result res = co_await submit_put(a_cl, 1);
    EXPECT_EQ(res.status, SubmitStatus::kOk);
    EXPECT_EQ(res.reply.status, kStatusStaleSession);
    const int executed_after = ex[{a_cl.id(), 1}];
    EXPECT_EQ(executed_after, executed_before);

    std::uint64_t stale = 0;
    for (int r = 0; r < 3; ++r) {
      stale += e.sys->replica(0, r).stale_session_replies();
    }
    EXPECT_GE(stale, 1u);
    flag = true;
  }(env, a, b, execs, done));
  env.drive(done);
}

// Regression: a delta checkpoint snapshotting a session whose cached
// reply is paged out but whose last_tmp already advanced (session_mark
// runs at dispatch, before note_executed re-caches the reply) must fetch
// the paged-out payload back from the device before encoding. Otherwise
// the re-encoded record — which supersedes the one holding the real
// payload under newest-wins indexing — carries an empty payload, and a
// later retry of the cached seq is answered with an empty success reply.
TEST(CheckpointRecovery, DeltaCheckpointPreservesPagedOutReplyPayload) {
  HeronConfig cfg;
  cfg.durable.checkpoint_interval = sim::ms(1);
  Env env(8, 128, cfg);
  auto& a = env.sys->add_client();
  auto& b = env.sys->add_client();

  bool done = false;
  env.sim.spawn([](Env& e, Client& a_cl, Client& b_cl,
                   bool& flag) -> Task<void> {
    auto& s = e.sim;
    std::vector<std::byte> magic(32);
    for (std::size_t i = 0; i < magic.size(); ++i) {
      magic[i] = static_cast<std::byte>(0xA0 + i);
    }
    const Client::Result first =
        co_await a_cl.submit(amcast::dst_of(0), kEcho, magic);
    EXPECT_EQ(first.status, SubmitStatus::kOk);
    EXPECT_EQ(first.reply.payload, magic);

    // b keeps the watermark moving so checkpoints fire and page a's
    // cached reply out to the device on every replica.
    auto all_paged = [&e, &a_cl] {
      for (int r = 0; r < 3; ++r) {
        const auto& sess = e.sys->replica(0, r).sessions();
        const auto it = sess.find(a_cl.id());
        if (it == sess.end() || !it->second.reply_paged_out) return false;
      }
      return true;
    };
    for (int k = 0; k < 2000 && !all_paged(); ++k) {
      co_await submit_put(b_cl, 1);
      co_await s.sleep(sim::us(200));
    }
    EXPECT_TRUE(all_paged());

    // Dirty a's session while its reply is still paged out, then drive
    // delta checkpoints that must re-encode it.
    std::vector<std::uint64_t> ck(3);
    for (int r = 0; r < 3; ++r) {
      auto& rep = e.sys->replica(0, r);
      rep.test_touch_session(a_cl.id(), rep.last_executed() + 1'000'000);
      ck[r] = rep.checkpoints_completed();
    }
    auto all_checkpointed = [&e, &ck] {
      for (int r = 0; r < 3; ++r) {
        if (e.sys->replica(0, r).checkpoints_completed() <=
            ck[static_cast<std::size_t>(r)]) {
          return false;
        }
      }
      return true;
    };
    for (int k = 0; k < 2000 && !all_checkpointed(); ++k) {
      co_await submit_put(b_cl, 2);
      co_await s.sleep(sim::us(200));
    }
    EXPECT_TRUE(all_checkpointed());

    // Retry of the paged-out command: the reply must be the original
    // payload, paged back in from the device — never an empty success.
    a_cl.rewind_session(0);
    const Client::Result again =
        co_await a_cl.submit(amcast::dst_of(0), kEcho, magic);
    EXPECT_EQ(again.status, SubmitStatus::kOk);
    EXPECT_EQ(again.reply.status, first.reply.status);
    EXPECT_EQ(again.reply.payload, magic);
    flag = true;
  }(env, a, b, done));
  env.drive(done);
}

TEST(CheckpointRecovery, SoakKeepsLogSessionsAndDeviceBounded) {
  HeronConfig cfg;
  cfg.durable.checkpoint_interval = sim::us(500);
  cfg.durable.session_ttl = sim::ms(2);
  cfg.durable.device.page_count = 128;  // small device: compaction must fire
  Env env(16, 128, cfg);
  auto& a = env.sys->add_client();
  auto& b = env.sys->add_client();

  bool done = false;
  env.sim.spawn([](Env& e, Client& a_cl, Client& b_cl,
                   bool& flag) -> Task<void> {
    auto& s = e.sim;
    sim::Rng rng(99);
    // Phase 1: both clients churn.
    for (int k = 0; k < 300; ++k) {
      co_await submit_put(a_cl, rng.bounded(16) + 1);
      co_await submit_put(b_cl, rng.bounded(16) + 1);
      co_await s.sleep(sim::us(50));
    }
    // Phase 2: a goes idle past its TTL while b keeps the system (and its
    // checkpoint cadence) busy for a long virtual stretch.
    for (int k = 0; k < 600; ++k) {
      co_await submit_put(b_cl, rng.bounded(16) + 1);
      co_await s.sleep(sim::us(50));
    }
    flag = true;
  }(env, a, b, done));
  env.drive(done);

  for (int r = 0; r < 3; ++r) {
    auto& rep = env.sys->replica(0, r);
    SCOPED_TRACE("replica rank " + std::to_string(r));
    // ~1200 commands executed, but checkpoint truncation keeps only the
    // tail since the previous checkpoint in memory.
    EXPECT_GT(rep.executed_count(), 1000u);
    EXPECT_LT(rep.update_log_size(), 300u);
    EXPECT_TRUE(rep.log_truncated());
    // a's idle session was TTL-evicted; b's live one survives.
    EXPECT_EQ(rep.session_count(), 1u);
    EXPECT_GE(rep.sessions_evicted(), 1u);
    // The device chain was compacted (full checkpoints past the first)
    // and never approached capacity.
    auto* store = rep.durable_store();
    ASSERT_NE(store, nullptr);
    EXPECT_GE(store->full_checkpoints(), 2u);
    EXPECT_GT(store->checkpoints_written(), 10u);
    EXPECT_LT(store->chain_pages(), 128u);
  }
}

}  // namespace
}  // namespace heron::core
