// Robust client lifecycle end to end: retries with session dedup
// (at-least-once delivery, at-most-once execution), BUSY shedding under
// admission control, explicit timeouts when a group stalls, the
// overlapping-submit guard, and session recovery via Algorithm 3 state
// transfer after a crash.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "core/system.hpp"
#include "faultlab/bank.hpp"
#include "faultlab/history.hpp"
#include "faultlab/injector.hpp"
#include "faultlab/plan.hpp"
#include "rdma/fabric.hpp"

namespace heron::faultlab {
namespace {

constexpr std::uint64_t kAccounts = 8;

/// Aggregate outcome of a retry-enabled bank run, for assertions and
/// determinism comparison.
struct RetryCellResult {
  std::uint64_t completed = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t shed_replies = 0;
  std::vector<std::uint64_t> digests;
  std::vector<Violation> violations;
};

/// Bank run with the robust lifecycle and a deliberately tight attempt
/// timeout, so retries (and hence replica-side dedup) actually happen.
RetryCellResult run_retry_cell(std::uint64_t seed, int partitions,
                               int clients, int ops,
                               std::uint32_t admission_window,
                               const std::string& plan_text = "") {
  constexpr int kReplicas = 3;

  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, seed);
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  cfg.client_attempt_timeout = sim::us(20);  // tighter than a typical op
  cfg.client_max_retries = 12;
  cfg.client_retry_backoff = sim::us(10);
  cfg.client_retry_backoff_max = sim::us(200);
  cfg.client_deadline = sim::ms(50);
  amcast::Config acfg;
  acfg.admission_window = admission_window;
  core::System sys(
      fabric, partitions, kReplicas,
      [partitions] {
        return std::make_unique<BankApp>(partitions, kAccounts);
      },
      cfg, acfg);
  HistoryRecorder history;
  history.attach(sys);
  sys.start();

  for (int c = 0; c < clients; ++c) {
    sim.spawn(bank_client_loop(sys, sys.add_client(),
                               seed * 1000 + static_cast<std::uint64_t>(c),
                               ops, kAccounts));
  }
  Injector injector(sys);
  injector.run(FaultPlan::parse("plan", plan_text));
  sim.run_for(sim::ms(400));

  RetryCellResult out;
  for (std::uint32_t c = 0; c < sys.client_count(); ++c) {
    auto& cl = sys.client(c);
    out.completed += cl.completed();
    out.retries += cl.retries();
    out.timeouts += cl.timeouts();
    out.overloaded += cl.overloaded();
    EXPECT_FALSE(cl.in_flight()) << "client " << c << " hung";
  }
  for (core::GroupId g = 0; g < partitions; ++g) {
    for (int r = 0; r < kReplicas; ++r) {
      out.dedup_hits += sys.replica(g, r).dedup_hits();
      out.shed_replies += sys.replica(g, r).shed_replies();
      if (!sys.replica(g, r).node().alive()) continue;
      out.digests.push_back(store_digest(sys.replica(g, r)));
    }
  }
  out.violations =
      check_amcast_properties(history, sys, injector.ever_crashed());
  check_exactly_once(history, out.violations);
  check_store_convergence(sys, out.violations);

  // Bank conservation: transfers move money, never create it. Retried
  // commands must not execute twice anywhere.
  const std::int64_t want = static_cast<std::int64_t>(partitions) *
                            static_cast<std::int64_t>(kAccounts) * 1000;
  for (int r = 0; r < kReplicas; ++r) {
    if (!sys.replica(0, r).node().alive()) continue;
    EXPECT_EQ(bank_total(sys, r, kAccounts), want) << "rank " << r;
  }
  return out;
}

TEST(ClientRobustness, RetriesAreDedupedAndConserveMoney) {
  const auto res = run_retry_cell(31, /*partitions=*/2, /*clients=*/3,
                                  /*ops=*/20, /*admission_window=*/0);
  // Every command eventually succeeded despite the tight attempt timeout.
  EXPECT_EQ(res.completed, 3u * 20u);
  EXPECT_EQ(res.timeouts, 0u);
  EXPECT_EQ(res.overloaded, 0u);
  // The timeout was tight enough to force retries, and some retried
  // attempts reached replicas after the original executed.
  EXPECT_GT(res.retries, 0u);
  EXPECT_GT(res.dedup_hits, 0u);
  for (const auto& v : res.violations) {
    ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
  }
}

TEST(ClientRobustness, RetryLifecycleIsDeterministic) {
  const auto a = run_retry_cell(47, 2, 3, 15, 0);
  const auto b = run_retry_cell(47, 2, 3, 15, 0);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.dedup_hits, b.dedup_hits);
  EXPECT_EQ(a.digests, b.digests);
}

TEST(ClientRobustness, AdmissionWindowShedsAndClientsRecover) {
  // A tiny admission window under 8 concurrent clients on one group:
  // leaders shed, replicas answer BUSY without executing, clients back
  // off and either finish or give up explicitly — never hang — and the
  // shed commands leave no trace in the balances.
  const auto res = run_retry_cell(13, /*partitions=*/1, /*clients=*/8,
                                  /*ops=*/10, /*admission_window=*/2);
  EXPECT_GT(res.shed_replies, 0u);
  EXPECT_EQ(res.completed + res.timeouts + res.overloaded, 8u * 10u);
  for (const auto& v : res.violations) {
    ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
  }
}

TEST(ClientRobustness, StalledGroupYieldsExplicitTimeout) {
  // Failover off + dead leader: the group can never order the command.
  // The legacy client would hang forever; the robust client burns its
  // retry budget and reports kTimeout within the deadline.
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, 3);
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  cfg.client_attempt_timeout = sim::us(200);
  cfg.client_max_retries = 3;
  cfg.client_retry_backoff = sim::us(20);
  cfg.client_deadline = sim::ms(5);
  amcast::Config acfg;
  acfg.enable_failover = false;
  core::System sys(
      fabric, 1, 3, [] { return std::make_unique<BankApp>(1, kAccounts); },
      cfg, acfg);
  sys.start();
  core::Client& client = sys.add_client();

  core::Client::Result result;
  bool finished = false;
  sim.spawn([](core::System& s, core::Client& c, core::Client::Result& out,
               bool& done) -> sim::Task<void> {
    // Submit only after the leader is gone, so no attempt sneaks through.
    co_await s.simulator().sleep(sim::us(100));
    DepositReq req{0, 5};
    out = co_await c.submit(amcast::dst_of(0), kDeposit,
                            std::as_bytes(std::span(&req, 1)));
    done = true;
  }(sys, client, result, finished));

  Injector injector(sys);
  injector.run(FaultPlan::parse("dead-leader", "crash g0.r0 @ 10us"));
  sim.run_for(sim::ms(20));

  ASSERT_TRUE(finished) << "submit never terminated";
  EXPECT_EQ(result.status, core::SubmitStatus::kTimeout);
  EXPECT_EQ(result.attempts, 4);  // 1 + client_max_retries
  EXPECT_LE(result.latency, cfg.client_deadline);
  EXPECT_EQ(client.completed(), 0u);
  EXPECT_EQ(client.timeouts(), 1u);
}

TEST(ClientRobustness, OverlappingSubmitThrows) {
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, 5);
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  core::System sys(
      fabric, 1, 3, [] { return std::make_unique<BankApp>(1, kAccounts); },
      cfg);
  sys.start();
  core::Client& client = sys.add_client();

  bool first_done = false;
  bool threw = false;
  sim.spawn([](core::Client& c, bool& done) -> sim::Task<void> {
    DepositReq req{0, 1};
    co_await c.submit(amcast::dst_of(0), kDeposit,
                      std::as_bytes(std::span(&req, 1)));
    done = true;
  }(client, first_done));
  sim.spawn([](core::Client& c, bool& t) -> sim::Task<void> {
    DepositReq req{1, 1};
    try {
      co_await c.submit(amcast::dst_of(0), kDeposit,
                        std::as_bytes(std::span(&req, 1)));
    } catch (const std::logic_error&) {
      t = true;
    }
  }(client, threw));
  sim.run_for(sim::ms(10));

  EXPECT_TRUE(first_done);
  EXPECT_TRUE(threw) << "second concurrent submit must fail loudly";
  EXPECT_EQ(client.completed(), 1u);
}

TEST(ClientRobustness, SessionsSurviveCrashViaStateTransfer) {
  // Follower crashes mid-workload and restarts only after the workload
  // quiesced: every session entry it holds afterwards arrived via the
  // Algorithm 3 rejoin transfer, so the table must match the donor's
  // exactly — the rejoined replica keeps deduplicating retried commands.
  const auto res =
      run_retry_cell(61, /*partitions=*/2, /*clients=*/3, /*ops=*/20,
                     /*admission_window=*/0,
                     "crash g0.r1 @ 1ms; restart g0.r1 @ 80ms");
  EXPECT_EQ(res.completed, 3u * 20u);
  for (const auto& v : res.violations) {
    ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
  }

  // Re-run the same cell inline to inspect the session tables (the
  // helper tears its system down); cheaper: assert on a fresh run.
  sim::Simulator sim;
  rdma::Fabric fabric(sim, rdma::LatencyModel{}, 61);
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  cfg.client_attempt_timeout = sim::us(20);
  cfg.client_max_retries = 12;
  cfg.client_retry_backoff = sim::us(10);
  cfg.client_retry_backoff_max = sim::us(200);
  cfg.client_deadline = sim::ms(50);
  core::System sys(
      fabric, 2, 3, [] { return std::make_unique<BankApp>(2, kAccounts); },
      cfg);
  sys.start();
  for (int c = 0; c < 3; ++c) {
    sim.spawn(bank_client_loop(sys, sys.add_client(),
                               61 * 1000 + static_cast<std::uint64_t>(c), 20,
                               kAccounts));
  }
  Injector injector(sys);
  injector.run(
      FaultPlan::parse("plan", "crash g0.r1 @ 1ms; restart g0.r1 @ 80ms"));
  sim.run_for(sim::ms(400));

  const auto& donor = sys.replica(0, 0).sessions();
  const auto& rejoined = sys.replica(0, 1).sessions();
  ASSERT_FALSE(donor.empty());
  ASSERT_EQ(rejoined.size(), donor.size());
  for (const auto& [client, s] : donor) {
    const auto it = rejoined.find(client);
    ASSERT_NE(it, rejoined.end()) << "client " << client;
    EXPECT_EQ(it->second.watermark, s.watermark) << "client " << client;
    EXPECT_EQ(it->second.above, s.above) << "client " << client;
    EXPECT_EQ(it->second.cached_seq, s.cached_seq) << "client " << client;
  }
}

}  // namespace
}  // namespace heron::faultlab
