// Tests for the §III-D1 extension: multi-threaded execution of
// non-conflicting single-partition requests. Correctness (conflicting
// requests serialize, replicas converge, multi-partition requests act as
// barriers) and effectiveness (throughput scales with worker cores for a
// CPU-bound app).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/system.hpp"
#include "rdma/fabric.hpp"
#include "sim/random.hpp"
#include "test_app.hpp"

namespace heron::core {
namespace {

using sim::Task;
using testapp::BankApp;

struct Cluster {
  sim::Simulator sim;
  rdma::Fabric fabric{sim, rdma::LatencyModel{}, 11};
  std::unique_ptr<System> sys;

  Cluster(int partitions, int threads, std::uint64_t accounts = 16) {
    HeronConfig cfg;
    cfg.exec_threads = threads;
    cfg.object_region_bytes = 1u << 20;
    sys = std::make_unique<System>(
        fabric, partitions, 3,
        [partitions, accounts] {
          return std::make_unique<BankApp>(partitions, accounts);
        },
        cfg);
    sys->start();
  }
};

Task<void> deposit_loop(Client& client, std::uint64_t account, int n,
                        int partitions) {
  for (int i = 0; i < n; ++i) {
    testapp::DepositReq req{account, 1};
    const auto dst = amcast::dst_of(static_cast<amcast::GroupId>(
        account % static_cast<std::uint64_t>(partitions)));
    co_await client.submit(dst, testapp::kDeposit,
                           std::as_bytes(std::span(&req, 1)));
  }
}

TEST(MultiThreadExec, ConflictingDepositsStaySequential) {
  // Two clients hammer the SAME account: with 4 worker cores, conflict
  // keys must still serialize them — no lost updates.
  Cluster c(1, /*threads=*/4);
  for (int i = 0; i < 2; ++i) {
    auto& client = c.sys->add_client();
    c.sim.spawn(deposit_loop(client, /*account=*/0, 40, 1));
  }
  c.sim.run_for(sim::sec(1));
  ASSERT_EQ(c.sys->total_completed(), 80u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(testapp::stored_balance(c.sys->replica(0, r), 0), 1000 + 80)
        << "rank " << r;
  }
}

TEST(MultiThreadExec, DisjointDepositsAllApply) {
  Cluster c(1, /*threads=*/4);
  constexpr int kClients = 8;
  for (int i = 0; i < kClients; ++i) {
    auto& client = c.sys->add_client();
    c.sim.spawn(deposit_loop(client, static_cast<std::uint64_t>(i), 25, 1));
  }
  c.sim.run_for(sim::sec(1));
  ASSERT_EQ(c.sys->total_completed(), kClients * 25u);
  for (int a = 0; a < kClients; ++a) {
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(testapp::stored_balance(c.sys->replica(0, r),
                                        static_cast<Oid>(a)),
                1000 + 25);
    }
  }
}

TEST(MultiThreadExec, MultiPartitionRequestsBarrierCorrectly) {
  // Mix concurrent single-partition deposits with cross-partition
  // transfers; conservation must hold on every replica.
  Cluster c(2, /*threads=*/3);
  sim::Rng rng(5);
  for (int i = 0; i < 4; ++i) {
    auto& client = c.sys->add_client();
    c.sim.spawn([](System& s, Client& cl, int idx) -> Task<void> {
      sim::Rng r(100 + static_cast<std::uint64_t>(idx));
      for (int k = 0; k < 25; ++k) {
        if (r.chance(0.3)) {
          const std::uint64_t a = r.bounded(32);
          std::uint64_t b = r.bounded(32);
          if (b == a) b = (a + 1) % 32;
          testapp::TransferReq req{a, b, 7};
          const auto dst = amcast::dst_of(static_cast<amcast::GroupId>(a % 2)) |
                           amcast::dst_of(static_cast<amcast::GroupId>(b % 2));
          co_await cl.submit(dst, testapp::kTransfer,
                             std::as_bytes(std::span(&req, 1)));
        } else {
          testapp::DepositReq req{r.bounded(32), 3};
          const auto dst = amcast::dst_of(
              static_cast<amcast::GroupId>(req.account % 2));
          co_await cl.submit(dst, testapp::kDeposit,
                             std::as_bytes(std::span(&req, 1)));
        }
      }
      (void)s;
    }(*c.sys, client, i));
  }
  c.sim.run_for(sim::sec(2));
  ASSERT_EQ(c.sys->total_completed(), 100u);

  // Deposits added a deterministic amount; recompute from replica 0 and
  // demand all replicas agree account by account.
  for (std::uint64_t a = 0; a < 32; ++a) {
    const int p = static_cast<int>(a % 2);
    const auto expected = testapp::stored_balance(c.sys->replica(p, 0), a);
    for (int r = 1; r < 3; ++r) {
      EXPECT_EQ(testapp::stored_balance(c.sys->replica(p, r), a), expected)
          << "account " << a << " rank " << r;
    }
  }
}

// CPU-heavy variant of the bank: enough per-request work that execution,
// not ordering, is the bottleneck at one worker core.
class HeavyBankApp : public BankApp {
 public:
  using BankApp::BankApp;
  Reply execute(const Request& r, ExecContext& ctx) override {
    ctx.charge(sim::us(12));
    return BankApp::execute(r, ctx);
  }
};

TEST(MultiThreadExec, ThroughputScalesWithWorkerCores) {
  auto measure = [](int threads) {
    sim::Simulator sim;
    rdma::Fabric fabric(sim, rdma::LatencyModel{}, 11);
    HeronConfig cfg;
    cfg.exec_threads = threads;
    cfg.object_region_bytes = 1u << 20;
    System sys(
        fabric, 1, 3,
        [] { return std::make_unique<HeavyBankApp>(1, std::uint64_t{64}); },
        cfg);
    sys.start();
    for (int i = 0; i < 16; ++i) {
      auto& client = sys.add_client();
      sim.spawn([](Client& cl, std::uint64_t account) -> Task<void> {
        while (true) {
          testapp::DepositReq req{account, 1};
          co_await cl.submit(amcast::dst_of(0), testapp::kDeposit,
                             std::as_bytes(std::span(&req, 1)));
        }
      }(client, static_cast<std::uint64_t>(i)));
    }
    sim.run_for(sim::ms(20));
    sys.reset_stats();
    const auto before = sys.total_completed();
    sim.run_for(sim::ms(60));
    return static_cast<double>(sys.total_completed() - before);
  };

  const double t1 = measure(1);
  const double t4 = measure(4);
  EXPECT_GT(t4, t1 * 1.25) << "worker cores provided no speedup";
}

TEST(MultiThreadExec, SingleThreadConfigMatchesBaselineSemantics) {
  Cluster c(2, /*threads=*/1);
  auto& client = c.sys->add_client();
  c.sim.spawn(deposit_loop(client, 0, 10, 2));
  c.sim.run_for(sim::sec(1));
  EXPECT_EQ(c.sys->total_completed(), 10u);
  EXPECT_EQ(testapp::stored_balance(c.sys->replica(0, 0), 0), 1010);
}

}  // namespace
}  // namespace heron::core
