// Focused tests for Algorithm 3 (state transfer): the protocol floor,
// correctness of transferred state, handler selection and its timeout
// fallback when the first candidate has crashed, full transfers after
// log truncation, and the serialized/non-serialized cost asymmetry.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/system.hpp"
#include "rdma/fabric.hpp"

namespace heron::core {
namespace {

using sim::Nanos;
using sim::Task;

enum Kind : std::uint32_t { kNoop = 0, kTouch = 1, kTouchOne = 2, kPut = 3 };

/// Synthetic app over `count` fixed-size objects.
class SyncApp : public Application {
 public:
  SyncApp(std::uint64_t count, std::uint32_t size, bool serialized)
      : count_(count), size_(size), serialized_(serialized) {}

  GroupId partition_of(Oid) const override { return 0; }
  std::vector<Oid> read_set(const Request&, GroupId) const override {
    return {};
  }
  Reply execute(const Request& r, ExecContext& ctx) override {
    if (r.header.kind == kTouch) {
      std::vector<std::byte> value(size_);
      std::memcpy(value.data(), &r.tmp, sizeof(r.tmp));
      for (std::uint64_t i = 0; i < count_; ++i) ctx.write(i + 1, value);
    } else if (r.header.kind == kTouchOne) {
      std::vector<std::byte> value(size_);
      std::memcpy(value.data(), &r.tmp, sizeof(r.tmp));
      ctx.write(1, value);
    } else if (r.header.kind == kPut) {
      Oid oid = 0;
      std::memcpy(&oid, r.payload.data(), sizeof(oid));
      std::vector<std::byte> value(size_);
      std::memcpy(value.data(), &r.tmp, sizeof(r.tmp));
      ctx.write(oid, value);
    }
    return Reply{};
  }
  void bootstrap(GroupId, ObjectStore& store) override {
    std::vector<std::byte> init(size_);
    for (std::uint64_t i = 0; i < count_; ++i) {
      store.create(i + 1, init, serialized_);
    }
  }

 private:
  std::uint64_t count_;
  std::uint32_t size_;
  bool serialized_;
};

struct Env {
  sim::Simulator sim;
  rdma::Fabric fabric{sim, rdma::LatencyModel{}, 3};
  std::unique_ptr<System> sys;
  Client* client = nullptr;

  Env(std::uint64_t count, std::uint32_t size, bool serialized,
      HeronConfig cfg = {}) {
    cfg.object_region_bytes =
        static_cast<std::size_t>(count + 4) * (2 * size + 64) + (1u << 20);
    sys = std::make_unique<System>(
        fabric, 1, 3,
        [count, size, serialized] {
          return std::make_unique<SyncApp>(count, size, serialized);
        },
        cfg);
    sys->start();
    client = &sys->add_client();
  }

  void submit(std::uint32_t kind) {
    sim.spawn([](Client& c, std::uint32_t k) -> Task<void> {
      co_await c.submit(amcast::dst_of(0), k, {});
    }(*client, kind));
    sim.run_for(sim::ms(2));
  }

  /// Submits a kPut touching exactly `oid` (distinct tmps, distinct oids
  /// — the shape the truncation-boundary tests need).
  void submit_put(Oid oid) {
    sim.spawn([](Client& c, Oid o) -> Task<void> {
      std::vector<std::byte> payload(sizeof(o));
      std::memcpy(payload.data(), &o, sizeof(o));
      co_await c.submit(amcast::dst_of(0), kPut, payload);
    }(*client, oid));
    sim.run_for(sim::ms(2));
  }

  /// Forces a transfer at replica (0,2) covering everything from `from`,
  /// returning the measured duration. `held` requests delta semantics
  /// (the requester certifies state held through `from` inclusive).
  Nanos force(Tmp from, bool held = false) {
    Nanos duration = -1;
    sim.spawn([](sim::Simulator& s, Replica& lagger, Tmp f, bool h,
                 Nanos& out) -> Task<void> {
      const Nanos t0 = s.now();
      co_await lagger.force_state_transfer(f, h);
      out = s.now() - t0;
    }(sim, sys->replica(0, 2), from, held, duration));
    sim.run_for(sim::ms(50));
    return duration;
  }
};

TEST(StateTransfer, ProtocolOnlyIsTwoWritesFast) {
  Env env(4, 64, false);
  env.submit(kNoop);
  const Tmp from = env.sys->replica(0, 2).last_req();
  const Nanos d = env.force(from + 1 > from ? from : from);
  ASSERT_GE(d, 0) << "transfer never completed";
  // Two RDMA writes + handler turnaround: a handful of microseconds.
  EXPECT_LT(d, sim::us(50));
  EXPECT_EQ(env.sys->replica(0, 2).state_transfers(), 1u);
}

TEST(StateTransfer, TransfersLoggedObjectsExactly) {
  Env env(16, 128, false);
  env.submit(kTouch);  // all 16 objects written at tmp T
  auto& lagger = env.sys->replica(0, 2);
  auto& donor = env.sys->replica(0, 0);

  // Wipe the lagger's view of object 5 to prove the transfer restores it.
  std::vector<std::byte> garbage(128, std::byte{0xee});
  lagger.store().install_version(5, garbage, 1, false);

  const Nanos d = env.force(donor.last_req());
  ASSERT_GE(d, 0);
  // Object 5 now equals the donor's state, including the version tag.
  auto [donor_tmp, donor_val] = donor.store().get(5);
  auto [lag_tmp, lag_val] = lagger.store().get(5);
  EXPECT_EQ(lag_tmp, donor_tmp);
  EXPECT_TRUE(std::equal(donor_val.begin(), donor_val.end(), lag_val.begin()));
}

TEST(StateTransfer, LargerDataTakesProportionallyLonger) {
  Env small(8, 8 << 10, true);
  small.submit(kTouch);
  const Nanos d_small = small.force(small.sys->replica(0, 0).last_req());

  Env big(80, 8 << 10, true);
  big.submit(kTouch);
  const Nanos d_big = big.force(big.sys->replica(0, 0).last_req());

  ASSERT_GE(d_small, 0);
  ASSERT_GE(d_big, 0);
  // 10x the data: several times longer (bandwidth-bound path).
  EXPECT_GT(d_big, 4 * d_small);
  EXPECT_LT(d_big, 40 * d_small);
}

TEST(StateTransfer, NonSerializedCostsMoreThanSerialized) {
  Env ser(64, 8 << 10, /*serialized=*/true);
  ser.submit(kTouch);
  const Nanos d_ser = ser.force(ser.sys->replica(0, 0).last_req());

  Env raw(64, 8 << 10, /*serialized=*/false);
  raw.submit(kTouch);
  const Nanos d_raw = raw.force(raw.sys->replica(0, 0).last_req());

  ASSERT_GE(d_ser, 0);
  ASSERT_GE(d_raw, 0);
  // The non-serialized path pays serialize + deserialize (§V-E2).
  EXPECT_GT(d_raw, d_ser + sim::us(100));
}

TEST(StateTransfer, HandlerFallsBackWhenFirstCandidateCrashed) {
  HeronConfig cfg;
  cfg.statesync_timeout = sim::us(200);
  Env env(8, 256, false, cfg);
  env.submit(kTouch);

  // Candidate order for lagger rank 2 is (rank 0, rank 1). Crash rank 0:
  // rank 1 must take over after the suspicion timeout.
  env.sys->replica(0, 0).node().crash();
  const Tmp from = env.sys->replica(0, 1).last_req();
  const Nanos d = env.force(from);
  ASSERT_GE(d, 0) << "no fallback handler served the transfer";
  EXPECT_EQ(env.sys->replica(0, 1).transfers_served(), 1u);
  // The fallback waited at least one suspicion timeout.
  EXPECT_GE(d, cfg.statesync_timeout);
}

TEST(StateTransfer, FullTransferAfterLogTruncation) {
  HeronConfig cfg;
  cfg.update_log_capacity = 4;  // tiny log: most updates fall out
  Env env(16, 128, false, cfg);
  for (int i = 0; i < 3; ++i) env.submit(kTouch);  // 48 log entries > 4

  // Corrupt several objects at the lagger; a log-ranged transfer from a
  // truncated log could miss them — the full-transfer path must not.
  auto& lagger = env.sys->replica(0, 2);
  std::vector<std::byte> garbage(128, std::byte{0x11});
  for (Oid oid = 1; oid <= 16; ++oid) {
    lagger.store().install_version(oid, garbage, 1, false);
  }

  const Nanos d = env.force(2);  // far older than the log tail
  ASSERT_GE(d, 0);
  auto& donor = env.sys->replica(0, 0);
  for (Oid oid = 1; oid <= 16; ++oid) {
    auto [dt, dv] = donor.store().get(oid);
    auto [lt, lv] = lagger.store().get(oid);
    EXPECT_EQ(lt, dt) << "oid " << oid;
  }
}

TEST(StateTransfer, TruncationBoundaries) {
  // Exercises log_objects_since at the truncated-log head H and the drop
  // floor F (highest tmp ever popped, F < H) under both request
  // semantics: plain/failed-request (status 1: full iff floor >= from,
  // ships >= from) and delta/held-through (status 2: full iff
  // floor > from, ships > from).
  HeronConfig cfg;
  cfg.update_log_capacity = 4;
  Env env(8, 128, false, cfg);
  for (Oid oid = 1; oid <= 8; ++oid) env.submit_put(oid);

  auto& donor = env.sys->replica(0, 0);
  auto& lagger = env.sys->replica(0, 2);
  ASSERT_EQ(donor.update_log().size(), 4u);  // oids 5..8 survive
  const Tmp head = donor.update_log().front().tmp;
  const Tmp floor = donor.log_floor();  // tmp of the 4th put
  ASSERT_GT(floor, 0u);
  ASSERT_LT(floor, head);

  // Runs one forced transfer and returns {full, delta} applied-byte
  // deltas at the lagger — which arm moved classifies the transfer.
  auto run = [&](Tmp from, bool held) {
    const auto full0 = lagger.xfer_applied_full_bytes();
    const auto delta0 = lagger.xfer_applied_delta_bytes();
    const Nanos d = env.force(from, held);
    EXPECT_GE(d, 0) << "transfer from " << from << " never completed";
    return std::pair{lagger.xfer_applied_full_bytes() - full0,
                     lagger.xfer_applied_delta_bytes() - delta0};
  };

  // Plain: exactly at the head is serveable (ships >= H)...
  auto [f_at, d_at] = run(head, false);
  EXPECT_EQ(f_at, 0u);
  EXPECT_GT(d_at, 0u);
  // ...one above ships one object fewer...
  auto [f_above, d_above] = run(head + 1, false);
  EXPECT_EQ(f_above, 0u);
  EXPECT_GT(d_above, 0u);
  EXPECT_LT(d_above, d_at);
  // ...and at the floor (below the retained window) the donor cannot
  // prove coverage of `from` itself: full transfer.
  auto [f_floor, d_floor] = run(floor, false);
  EXPECT_GT(f_floor, 0u);
  EXPECT_EQ(d_floor, 0u);

  // Delta: holding through the floor inclusive is exactly enough...
  auto [f_held, d_held] = run(floor, true);
  EXPECT_EQ(f_held, 0u);
  EXPECT_GT(d_held, 0u);
  // ...one below it is not...
  auto [f_low, d_low] = run(floor - 1, true);
  EXPECT_GT(f_low, 0u);
  EXPECT_EQ(d_low, 0u);
  // ...and at the head the donor ships strictly-newer entries only.
  auto [f_h2, d_h2] = run(head, true);
  EXPECT_EQ(f_h2, 0u);
  EXPECT_GT(d_h2, 0u);
  EXPECT_LT(d_h2, d_at);
}

TEST(StateTransfer, LaggerSkipsCoveredRequests) {
  Env env(8, 128, false);
  env.submit(kTouchOne);
  auto& lagger = env.sys->replica(0, 2);
  const Tmp before = lagger.last_req();

  const Nanos d = env.force(before);
  ASSERT_GE(d, 0);
  // last_req advanced to (at least) the handler's rid; the lagger would
  // skip any delivery at or below it.
  EXPECT_GE(lagger.last_req(), before);
  env.submit(kTouchOne);  // a new request still executes normally
  auto [t0, v0] = env.sys->replica(0, 0).store().get(1);
  auto [t2, v2] = lagger.store().get(1);
  EXPECT_EQ(t0, t2);
}

}  // namespace
}  // namespace heron::core
