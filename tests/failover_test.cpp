// Full-stack failure injection: crash replicas (including the atomic
// multicast leader) while Heron executes the bank workload, and verify
// the system keeps completing requests, stays conservative, and the
// surviving replicas converge. Complements the amcast-level failover
// tests by exercising the whole stack.
#include <gtest/gtest.h>

#include <memory>

#include "core/system.hpp"
#include "rdma/fabric.hpp"
#include "sim/random.hpp"
#include "test_app.hpp"

namespace heron::core {
namespace {

using sim::Task;
using testapp::BankApp;

struct Cluster {
  sim::Simulator sim;
  rdma::Fabric fabric{sim, rdma::LatencyModel{}, 17};
  std::unique_ptr<System> sys;
  int partitions;

  explicit Cluster(int parts) : partitions(parts) {
    HeronConfig cfg;
    cfg.object_region_bytes = 1u << 20;
    sys = std::make_unique<System>(
        fabric, parts, 3,
        [parts] { return std::make_unique<BankApp>(parts, 8); }, cfg);
    sys->start();
  }

  Task<void> client_loop(Client& client, std::uint64_t seed, int ops) {
    sim::Rng rng(seed);
    const auto total = static_cast<std::uint64_t>(partitions) * 8;
    for (int k = 0; k < ops; ++k) {
      const std::uint64_t a = rng.bounded(total);
      std::uint64_t b = rng.bounded(total);
      if (b == a) b = (a + 1) % total;
      testapp::TransferReq req{a, b, 2};
      const auto dst =
          amcast::dst_of(static_cast<amcast::GroupId>(
              a % static_cast<std::uint64_t>(partitions))) |
          amcast::dst_of(static_cast<amcast::GroupId>(
              b % static_cast<std::uint64_t>(partitions)));
      co_await client.submit(dst, testapp::kTransfer,
                             std::as_bytes(std::span(&req, 1)));
    }
  }

  std::int64_t total_balance(int rank) {
    std::int64_t total = 0;
    for (int p = 0; p < partitions; ++p) {
      for (std::uint64_t k = 0; k < 8; ++k) {
        const Oid oid =
            static_cast<Oid>(p) + k * static_cast<Oid>(partitions);
        total += testapp::stored_balance(sys->replica(p, rank), oid);
      }
    }
    return total;
  }
};

TEST(FullStackFailover, AmcastLeaderCrashMidLoad) {
  // Rank 0 is the initial multicast leader of its group; crashing it
  // forces a leader change in the ordering layer while Heron clients keep
  // submitting. Everything submitted must still complete.
  Cluster c(2);
  constexpr int kClients = 3;
  constexpr int kOps = 25;
  for (int i = 0; i < kClients; ++i) {
    c.sim.spawn(c.client_loop(c.sys->add_client(),
                              400 + static_cast<std::uint64_t>(i), kOps));
  }
  c.sim.schedule(sim::ms(1), [&c] { c.sys->replica(0, 0).node().crash(); });
  c.sim.run_for(sim::sec(2));

  EXPECT_EQ(c.sys->total_completed(),
            static_cast<std::uint64_t>(kClients) * kOps);
  // Conservation on the surviving replicas.
  for (int rank = 1; rank < 3; ++rank) {
    EXPECT_EQ(c.total_balance(rank), 2 * 8 * 1000) << "rank " << rank;
  }
  // A new leader took over the crashed group's ordering.
  const bool l1 = c.sys->amcast().endpoint(0, 1).is_leader();
  const bool l2 = c.sys->amcast().endpoint(0, 2).is_leader();
  EXPECT_TRUE(l1 || l2);
}

TEST(FullStackFailover, FollowerCrashesInEveryPartition) {
  Cluster c(3);
  constexpr int kClients = 3;
  constexpr int kOps = 20;
  for (int i = 0; i < kClients; ++i) {
    c.sim.spawn(c.client_loop(c.sys->add_client(),
                              500 + static_cast<std::uint64_t>(i), kOps));
  }
  // One follower per partition dies mid-run; majorities survive.
  c.sim.schedule(sim::ms(1), [&c] {
    for (int p = 0; p < 3; ++p) c.sys->replica(p, 2).node().crash();
  });
  c.sim.run_for(sim::sec(2));

  EXPECT_EQ(c.sys->total_completed(),
            static_cast<std::uint64_t>(kClients) * kOps);
  for (int rank = 0; rank < 2; ++rank) {
    EXPECT_EQ(c.total_balance(rank), 3 * 8 * 1000) << "rank " << rank;
  }
}

TEST(FullStackFailover, CrashBeforeAnyTraffic) {
  // Failure before the first request: ordering must elect a leader and
  // the system must serve from a cold start with f failures.
  Cluster c(2);
  c.sys->replica(0, 0).node().crash();
  c.sys->replica(1, 1).node().crash();
  auto& client = c.sys->add_client();
  c.sim.spawn(c.client_loop(client, 77, 10));
  c.sim.run_for(sim::sec(2));
  EXPECT_EQ(client.completed(), 10u);
}

TEST(FullStackFailover, RemoteReadFailsOverToAnotherReplica) {
  // Crash one replica of the *remote* partition right before a transfer
  // that must read from it; Algorithm 2's RDMA-exception path retries on
  // another replica.
  Cluster c(2);
  auto& client = c.sys->add_client();
  c.sim.spawn([](Cluster& cl, Client& cli) -> Task<void> {
    // Warm up the address cache so reads may target any rank.
    testapp::TransferReq warm{0, 1, 1};
    co_await cli.submit(amcast::dst_of(0) | amcast::dst_of(1),
                        testapp::kTransfer,
                        std::as_bytes(std::span(&warm, 1)));
    cl.sys->replica(1, 1).node().crash();
    for (int i = 0; i < 10; ++i) {
      testapp::TransferReq req{0, 1, 1};
      co_await cli.submit(amcast::dst_of(0) | amcast::dst_of(1),
                          testapp::kTransfer,
                          std::as_bytes(std::span(&req, 1)));
    }
  }(c, client));
  c.sim.run_for(sim::sec(2));
  EXPECT_EQ(client.completed(), 11u);
  EXPECT_EQ(testapp::stored_balance(c.sys->replica(1, 0), 1), 1000 + 11);
}

}  // namespace
}  // namespace heron::core
