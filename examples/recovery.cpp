// Recovery demo: laggers and the state-transfer protocol (§III, Alg. 3).
//
// A replica's CPU is hogged for a while (as if hit by GC or contention).
// The rest of the system keeps executing multi-partition transfers using
// majority coordination. When the slow replica resumes and executes an
// old request, its remote reads find only post-dated versions — it
// requests a state transfer from its partition peers, skips the covered
// requests and rejoins, converged.
#include <cstdio>
#include <cstring>
#include <memory>

#include "core/system.hpp"
#include "rdma/fabric.hpp"
#include "sim/random.hpp"

using namespace heron;

namespace {

enum Kind : std::uint32_t { kTransfer = 1 };
struct TransferReq {
  std::uint64_t from;
  std::uint64_t to;
  std::int64_t amount;
};

class MiniBank : public core::Application {
 public:
  explicit MiniBank(int partitions) : partitions_(partitions) {}
  core::GroupId partition_of(core::Oid oid) const override {
    return static_cast<core::GroupId>(oid % partitions_);
  }
  std::vector<core::Oid> read_set(const core::Request& r,
                                  core::GroupId) const override {
    TransferReq req;
    std::memcpy(&req, r.payload.data(), sizeof(req));
    return {req.from, req.to};
  }
  core::Reply execute(const core::Request& r,
                      core::ExecContext& ctx) override {
    TransferReq req;
    std::memcpy(&req, r.payload.data(), sizeof(req));
    const auto from = ctx.value_as<std::int64_t>(req.from);
    const auto to = ctx.value_as<std::int64_t>(req.to);
    if (partition_of(req.from) == ctx.my_partition()) {
      ctx.write_as(req.from, from - req.amount);
    }
    if (partition_of(req.to) == ctx.my_partition()) {
      ctx.write_as(req.to, to + req.amount);
    }
    return core::Reply{};
  }
  void bootstrap(core::GroupId partition,
                 core::ObjectStore& store) override {
    const std::int64_t init = 1'000;
    for (core::Oid oid = 0; oid < 8; ++oid) {
      if (partition_of(oid) == partition) {
        store.create(oid, std::as_bytes(std::span(&init, 1)));
      }
    }
  }

 private:
  int partitions_;
};

}  // namespace

int main() {
  sim::Simulator sim;
  rdma::Fabric fabric(sim);
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  core::System sys(fabric, /*partitions=*/2, /*replicas=*/3,
                   [] { return std::make_unique<MiniBank>(2); }, cfg);
  sys.start();

  // Hog replica (0, 2) for 3 ms: it falls far behind its peers.
  sim.spawn([](core::System& s) -> sim::Task<void> {
    std::printf("[%7.1f us] hogging replica (0,2) for 3 ms\n",
                sim::to_us(s.simulator().now()));
    co_await s.replica(0, 2).node().cpu().use(sim::ms(3));
    std::printf("[%7.1f us] replica (0,2) resumes\n",
                sim::to_us(s.simulator().now()));
  }(sys));

  // Meanwhile, clients keep moving money across the two partitions,
  // repeatedly updating the same objects.
  auto& client = sys.add_client();
  sim.spawn([](core::Client& c) -> sim::Task<void> {
    for (int i = 0; i < 60; ++i) {
      TransferReq req{0, 1, 1};
      co_await c.submit(amcast::dst_of(0) | amcast::dst_of(1), kTransfer,
                        std::as_bytes(std::span(&req, 1)));
      TransferReq back{1, 0, 1};
      co_await c.submit(amcast::dst_of(0) | amcast::dst_of(1), kTransfer,
                        std::as_bytes(std::span(&back, 1)));
    }
  }(client));

  sim.run_for(sim::ms(50));

  auto& lagger = sys.replica(0, 2);
  std::printf("\nlagger (0,2): %llu state transfer(s), %llu request(s) "
              "skipped after sync\n",
              static_cast<unsigned long long>(lagger.state_transfers()),
              static_cast<unsigned long long>(lagger.skipped_count()));
  std::printf("transfers served by peers: (0,0)=%llu (0,1)=%llu\n",
              static_cast<unsigned long long>(
                  sys.replica(0, 0).transfers_served()),
              static_cast<unsigned long long>(
                  sys.replica(0, 1).transfers_served()));

  // Convergence check: all replicas of partition 0 agree on object 0.
  for (int r = 0; r < 3; ++r) {
    auto [tmp, bytes] = sys.replica(0, r).store().get(0);
    std::int64_t v;
    std::memcpy(&v, bytes.data(), sizeof(v));
    std::printf("replica (0,%d): object 0 = %lld (version tmp %llu)\n", r,
                static_cast<long long>(v),
                static_cast<unsigned long long>(tmp));
  }
  return 0;
}
