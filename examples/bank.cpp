// Bank: multi-partition requests under concurrency.
//
// Accounts are sharded across partitions; transfers between accounts in
// different partitions are multi-partition requests — each involved
// partition reads both accounts (one remotely over the simulated RDMA
// fabric) and updates only its local one, coordinated by Heron's
// Phase 2 / Phase 4 barriers. Conservation of the total balance is the
// linearizability canary.
#include <cstdio>
#include <cstring>
#include <memory>

#include "core/system.hpp"
#include "rdma/fabric.hpp"
#include "sim/random.hpp"

using namespace heron;

namespace {

constexpr int kPartitions = 4;
constexpr std::uint64_t kAccountsPerPartition = 16;
constexpr std::int64_t kInitialBalance = 1'000;

enum Kind : std::uint32_t { kTransfer = 1 };

struct TransferReq {
  std::uint64_t from;
  std::uint64_t to;
  std::int64_t amount;
};

class BankApp : public core::Application {
 public:
  core::GroupId partition_of(core::Oid oid) const override {
    return static_cast<core::GroupId>(oid % kPartitions);
  }
  std::vector<core::Oid> read_set(const core::Request& r,
                                  core::GroupId) const override {
    TransferReq req;
    std::memcpy(&req, r.payload.data(), sizeof(req));
    return {req.from, req.to};
  }
  core::Reply execute(const core::Request& r,
                      core::ExecContext& ctx) override {
    TransferReq req;
    std::memcpy(&req, r.payload.data(), sizeof(req));
    const auto from = ctx.value_as<std::int64_t>(req.from);
    const auto to = ctx.value_as<std::int64_t>(req.to);
    if (partition_of(req.from) == ctx.my_partition()) {
      ctx.write_as(req.from, from - req.amount);
    }
    if (partition_of(req.to) == ctx.my_partition()) {
      ctx.write_as(req.to, to + req.amount);
    }
    return core::Reply{};
  }
  void bootstrap(core::GroupId partition,
                 core::ObjectStore& store) override {
    for (std::uint64_t k = 0; k < kAccountsPerPartition; ++k) {
      const core::Oid oid = static_cast<core::Oid>(partition) +
                            k * static_cast<core::Oid>(kPartitions);
      store.create(oid, std::as_bytes(std::span(&kInitialBalance, 1)));
    }
  }
};

sim::Task<void> client_loop(core::Client& client, std::uint64_t seed,
                            sim::LatencyRecorder& multi_lat) {
  sim::Rng rng(seed);
  constexpr std::uint64_t kTotal = kPartitions * kAccountsPerPartition;
  for (int i = 0; i < 200; ++i) {
    TransferReq req;
    req.from = rng.bounded(kTotal);
    req.to = rng.bounded(kTotal);
    if (req.to == req.from) req.to = (req.from + 1) % kTotal;
    req.amount = rng.uniform_int(1, 20);
    const amcast::DstMask dst =
        amcast::dst_of(static_cast<amcast::GroupId>(req.from % kPartitions)) |
        amcast::dst_of(static_cast<amcast::GroupId>(req.to % kPartitions));
    auto result = co_await client.submit(dst, kTransfer,
                                         std::as_bytes(std::span(&req, 1)));
    if (amcast::dst_count(dst) > 1) multi_lat.record(result.latency);
  }
}

}  // namespace

int main() {
  sim::Simulator sim;
  rdma::Fabric fabric(sim);
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  core::System sys(fabric, kPartitions, 3,
                   [] { return std::make_unique<BankApp>(); }, cfg);
  sys.start();

  sim::LatencyRecorder multi_lat;
  constexpr int kClients = 6;
  for (int c = 0; c < kClients; ++c) {
    sim.spawn(client_loop(sys.add_client(), 1000 + c, multi_lat));
  }
  sim.run_for(sim::sec(1));

  std::uint64_t done = sys.total_completed();
  std::printf("completed %llu transfers (%d clients)\n",
              static_cast<unsigned long long>(done), kClients);
  std::printf("multi-partition transfers: %zu, avg latency %.1f us, p99 %.1f us\n",
              multi_lat.count(), multi_lat.mean() / 1000.0,
              static_cast<double>(multi_lat.percentile(99)) / 1000.0);

  // Conservation: the global balance is unchanged on every replica.
  for (int rank = 0; rank < 3; ++rank) {
    std::int64_t total = 0;
    for (int p = 0; p < kPartitions; ++p) {
      for (std::uint64_t k = 0; k < kAccountsPerPartition; ++k) {
        const core::Oid oid = static_cast<core::Oid>(p) +
                              k * static_cast<core::Oid>(kPartitions);
        auto [tmp, bytes] = sys.replica(p, rank).store().get(oid);
        std::int64_t v;
        std::memcpy(&v, bytes.data(), sizeof(v));
        total += v;
      }
    }
    std::printf("replica rank %d: total balance = %lld (expected %lld) %s\n",
                rank, static_cast<long long>(total),
                static_cast<long long>(kPartitions * kAccountsPerPartition *
                                       kInitialBalance),
                total == static_cast<std::int64_t>(
                             kPartitions * kAccountsPerPartition *
                             kInitialBalance)
                    ? "OK"
                    : "VIOLATION");
  }
  return 0;
}
