// TPC-C demo: the paper's evaluation workload end to end.
//
// Runs the standard TPC-C mix (45% NewOrder, 43% Payment, 4% each
// OrderStatus / Delivery / StockLevel) on a 4-partition Heron deployment
// (one warehouse per partition) and prints throughput plus per-type
// latencies — a miniature of the paper's §V-C/§V-D experiments.
#include <cstdio>

#include "harness/runner.hpp"

using namespace heron;

int main() {
  tpcc::TpccScale scale{.factor = 0.02, .initial_orders_per_district = 10};
  harness::TpccCluster cluster(/*partitions=*/4, /*replicas=*/3, scale);

  tpcc::WorkloadConfig workload;  // standard mix & remote probabilities
  cluster.add_clients(/*per_partition=*/4, workload);

  auto result = cluster.run(/*warmup=*/sim::ms(10), /*window=*/sim::ms(100));

  std::printf("TPC-C on Heron: 4 warehouses, 3 replicas each, 16 clients\n\n");
  std::printf("throughput:            %10.0f tps\n", result.throughput_tps);
  std::printf("avg latency:           %10.1f us\n",
              result.latency.mean() / 1000.0);
  std::printf("single-partition:      %10.1f us  (%zu requests)\n",
              result.latency_single.mean() / 1000.0,
              result.latency_single.count());
  std::printf("multi-partition:       %10.1f us  (%zu requests)\n",
              result.latency_multi.mean() / 1000.0,
              result.latency_multi.count());

  const char* names[] = {"", "NewOrder", "Payment", "OrderStatus", "Delivery",
                         "StockLevel"};
  std::printf("\n%-12s %10s %12s %12s\n", "type", "count", "avg(us)",
              "p99(us)");
  for (std::uint32_t kind = 1; kind <= 5; ++kind) {
    auto it = result.latency_by_kind.find(kind);
    if (it == result.latency_by_kind.end()) continue;
    std::printf("%-12s %10zu %12.1f %12.1f\n", names[kind], it->second.count(),
                it->second.mean() / 1000.0,
                static_cast<double>(it->second.percentile(99)) / 1000.0);
  }
  return 0;
}
