// Quickstart: a replicated key-value counter service on Heron.
//
// Shows the minimal steps to run an application on the library:
//   1. implement core::Application (partitioning, read sets, execution);
//   2. build a core::System on a simulated RDMA fabric;
//   3. submit requests from closed-loop clients and read replies.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <cstring>
#include <memory>

#include "core/system.hpp"
#include "rdma/fabric.hpp"

using namespace heron;

namespace {

// Requests: increment a counter (kIncr) or read it (kGet). Counters are
// partitioned by key modulo the partition count.
enum Kind : std::uint32_t { kIncr = 1, kGet = 2 };

struct CounterReq {
  std::uint64_t key;
  std::int64_t delta;
};

class CounterApp : public core::Application {
 public:
  explicit CounterApp(int partitions) : partitions_(partitions) {}

  core::GroupId partition_of(core::Oid oid) const override {
    return static_cast<core::GroupId>(oid % partitions_);
  }

  std::vector<core::Oid> read_set(const core::Request& r,
                                  core::GroupId) const override {
    CounterReq req;
    std::memcpy(&req, r.payload.data(), sizeof(req));
    return {req.key};
  }

  core::Reply execute(const core::Request& r,
                      core::ExecContext& ctx) override {
    CounterReq req;
    std::memcpy(&req, r.payload.data(), sizeof(req));
    auto value = ctx.value_as<std::int64_t>(req.key);
    if (r.header.kind == kIncr) {
      value += req.delta;
      ctx.write_as(req.key, value);
    }
    core::Reply reply;
    reply.payload.resize(sizeof(value));
    std::memcpy(reply.payload.data(), &value, sizeof(value));
    return reply;
  }

  void bootstrap(core::GroupId partition,
                 core::ObjectStore& store) override {
    const std::int64_t zero = 0;
    for (core::Oid key = 0; key < 64; ++key) {
      if (partition_of(key) == partition) {
        store.create(key, std::as_bytes(std::span(&zero, 1)));
      }
    }
  }

 private:
  int partitions_;
};

sim::Task<void> client_script(core::System& sys, core::Client& client) {
  // Ten increments on key 7, then a read.
  for (int i = 0; i < 10; ++i) {
    CounterReq req{7, 5};
    auto result = co_await client.submit(
        amcast::dst_of(sys.replica(0, 0).app().partition_of(7)), kIncr,
        std::as_bytes(std::span(&req, 1)));
    std::int64_t v;
    std::memcpy(&v, result.reply.payload.data(), sizeof(v));
    std::printf("incr key=7 +5 -> %lld   (%.1f us)\n",
                static_cast<long long>(v), sim::to_us(result.latency));
  }
  CounterReq req{7, 0};
  auto result = co_await client.submit(
      amcast::dst_of(sys.replica(0, 0).app().partition_of(7)), kGet,
      std::as_bytes(std::span(&req, 1)));
  std::int64_t v;
  std::memcpy(&v, result.reply.payload.data(), sizeof(v));
  std::printf("get  key=7 -> %lld\n", static_cast<long long>(v));
}

}  // namespace

int main() {
  constexpr int kPartitions = 2;
  constexpr int kReplicas = 3;

  sim::Simulator sim;
  rdma::Fabric fabric(sim);  // the simulated RDMA fabric
  core::HeronConfig cfg;
  cfg.object_region_bytes = 1u << 20;
  core::System sys(
      fabric, kPartitions, kReplicas,
      [p = kPartitions] { return std::make_unique<CounterApp>(p); }, cfg);
  sys.start();

  auto& client = sys.add_client();
  sim.spawn(client_script(sys, client));
  sim.run_for(sim::ms(10));

  // Every replica of the key's partition converged on the same value.
  const auto home = sys.replica(0, 0).app().partition_of(7);
  for (int r = 0; r < kReplicas; ++r) {
    auto [tmp, bytes] = sys.replica(home, r).store().get(7);
    std::int64_t v;
    std::memcpy(&v, bytes.data(), sizeof(v));
    std::printf("replica %d stores key=7 -> %lld\n", r,
                static_cast<long long>(v));
  }
  return 0;
}
