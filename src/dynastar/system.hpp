// DynaStar baseline: message-passing partitioned state machine
// replication with a location oracle and move-based multi-partition
// execution (Le et al., ICDCS'19; the comparison system of Fig. 5).
//
// Request flow:
//   * every request goes through the location oracle, which resolves the
//     partitions currently holding the request's objects;
//   * single-partition requests are forwarded to that partition, ordered
//     by its leader (one accept round to a majority), executed by all its
//     replicas, and answered to the client;
//   * multi-partition requests trigger object moves: each source
//     partition orders a move command, extracts the rows and ships them
//     to the executing partition, which orders the request together with
//     the moved bytes, executes the whole transaction and replies. The
//     oracle updates its mapping, so moved rows live at the executor
//     afterwards (DynaStar's dynamic repartitioning — and the source of
//     its multi-partition costs on TPC-C-style workloads).
//
// The transport charges kernel-path costs per message (see msgnet.hpp);
// execution reuses the same Application (TPC-C) as Heron, scaled by a
// Java-prototype factor.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/app.hpp"
#include "core/system.hpp"
#include "dynastar/msgnet.hpp"
#include "sim/stats.hpp"

namespace heron::dynastar {

struct Config {
  NetConfig net{};
  sim::Nanos oracle_proc = sim::us(40);   // mapping lookup + route
  sim::Nanos leader_proc = sim::us(60);   // ordering bookkeeping per msg
  sim::Nanos apply_proc = sim::us(30);    // follower apply
  /// Latency of one Multi-Ring-Paxos-style ordered delivery. Every
  /// ordered step pays it: routing at the oracle partition, move commands
  /// at source partitions, and the request at the executor. (DynaStar
  /// orders everything through atomic multicast; this is the bulk of its
  /// ~1 ms single-partition latency.)
  sim::Nanos order_latency = sim::us(300);
  double exec_factor = 3.0;               // Java prototype vs Heron's path
  double msg_cpu_ns_per_byte = 1.0;       // (de)serialize message bodies
  std::size_t store_bytes = 96u << 20;    // per-replica object memory
};

/// Message types.
enum MsgType : std::uint32_t {
  kClientReq = 1,
  kRouteExec = 2,   // oracle -> executor leader
  kMoveCmd = 3,     // oracle -> source leader
  kObjectData = 4,  // source leader -> executor leader
  kAccept = 5,      // leader -> followers
  kAck = 6,         // follower -> leader
  kReply = 7,       // executor leader -> client
};

class DynastarSystem;

/// One partition replica (leader if rank 0; no failover modeled).
class Replica {
 public:
  Replica(DynastarSystem& sys, int partition, int rank);
  ~Replica();  // out of line: PendingReq is defined in the .cpp

  void start();
  [[nodiscard]] core::ObjectStore& store() { return *store_; }
  [[nodiscard]] std::int32_t addr() const { return addr_; }
  [[nodiscard]] rdma::Node& node();
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  friend class DynastarSystem;
  struct PendingReq;

  sim::Task<void> loop();
  sim::Task<void> handle_move(Message m);    // source leader: move-out
  sim::Task<void> drive(std::uint64_t rid);  // leader: move-wait + order + exec
  sim::Task<void> order_and_execute(std::uint64_t rid);
  void execute_locally(std::uint64_t seq, std::span<const std::byte> blob);

  DynastarSystem* sys_;
  int partition_;
  int rank_;
  std::int32_t addr_ = -1;
  std::unique_ptr<core::Application> app_;
  std::unique_ptr<core::ObjectStore> store_;
  std::set<core::Oid> tombstones_;  // rows moved away

  // Leader ordering state.
  std::uint64_t next_seq_ = 1;
  std::uint64_t applied_seq_ = 0;
  std::map<std::uint64_t, std::uint64_t> acks_;  // seq -> ack count
  std::unique_ptr<sim::Notifier> ack_notifier_;

  // Leader per-request assembly state.
  std::map<std::uint64_t, PendingReq> pending_;
  std::unique_ptr<sim::Notifier> pending_notifier_;

  // Outputs of the most recent execute_locally (leader uses them to
  // charge CPU and reply; execution is synchronous per request).
  sim::Nanos last_exec_cpu_ = 0;
  core::Reply last_reply_;

  std::uint64_t executed_ = 0;
};

class Client {
 public:
  Client(DynastarSystem& sys, std::uint32_t id);

  struct Result {
    core::Reply reply;
    sim::Nanos latency = 0;
  };
  sim::Task<Result> submit(amcast::DstMask dst_hint, std::uint32_t kind,
                           std::span<const std::byte> payload);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] std::int32_t addr() const { return addr_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] sim::LatencyRecorder& latencies() { return latencies_; }
  void reset_stats() {
    completed_ = 0;
    latencies_.clear();
  }

 private:
  friend class DynastarSystem;
  DynastarSystem* sys_;
  std::uint32_t id_;
  std::int32_t addr_ = -1;
  std::uint64_t next_req_ = 0;
  std::uint64_t completed_ = 0;
  sim::LatencyRecorder latencies_;
  std::unique_ptr<sim::Notifier> reply_notifier_;
  std::map<std::uint64_t, core::Reply> replies_;
};

class DynastarSystem {
 public:
  DynastarSystem(sim::Simulator& sim, int partitions, int replicas,
                 core::AppFactory factory, Config cfg = {});

  void start();

  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  [[nodiscard]] Net& net() { return *net_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] int partitions() const { return partitions_; }
  [[nodiscard]] int replicas() const { return replicas_; }
  [[nodiscard]] Replica& replica(int p, int r) {
    return *replicas_store_[static_cast<std::size_t>(p * replicas_ + r)];
  }
  [[nodiscard]] core::AppFactory& app_factory() { return factory_; }

  Client& add_client();
  [[nodiscard]] Client& client(std::uint32_t id) { return *clients_[id]; }
  [[nodiscard]] std::uint64_t total_completed() const;
  void reset_stats();

  /// Current partition of an object per the oracle's mapping.
  [[nodiscard]] int mapped_partition(core::Oid oid) const;

 private:
  friend class Replica;
  friend class Client;

  sim::Task<void> oracle_loop();
  sim::Task<void> route_request(Message m);

  sim::Simulator* sim_;
  Config cfg_;
  int partitions_;
  int replicas_;
  core::AppFactory factory_;
  std::unique_ptr<Net> net_;
  std::unique_ptr<core::Application> oracle_app_;  // read-set resolution
  std::int32_t oracle_addr_ = -1;
  rdma::Node* oracle_node_ = nullptr;
  std::unordered_map<core::Oid, int> mapping_override_;
  std::vector<std::unique_ptr<Replica>> replicas_store_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::unique_ptr<rdma::Fabric> node_owner_;  // owns the simulated hosts
};

}  // namespace heron::dynastar
