// Kernel-path message transport for the DynaStar baseline.
//
// DynaStar communicates through ordinary sockets: each message pays the
// testbed's network latency (0.1 ms RTT => 50 us one way), a bandwidth
// term, and sender/receiver software costs (syscalls, TCP stack, Java
// (de)serialization). These constants are the architectural difference
// Figure 5 measures against Heron's one-sided RDMA verbs.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "rdma/node.hpp"
#include "sim/notifier.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace heron::dynastar {

struct NetConfig {
  sim::Nanos one_way = sim::us(50);       // 0.1 ms RTT testbed link
  sim::Nanos send_cpu = sim::us(20);      // syscall + marshal
  sim::Nanos recv_cpu = sim::us(20);      // interrupt + unmarshal
  double bandwidth_bytes_per_ns = 3.125;  // same 25 Gbps fabric
};

struct Message {
  std::int32_t from = -1;
  std::uint32_t type = 0;
  std::vector<std::byte> body;

  template <typename T>
  void set(const T& v) {
    body.resize(sizeof(T));
    std::memcpy(body.data(), &v, sizeof(T));
  }
  template <typename T>
  [[nodiscard]] T as() const {
    T out;
    std::memcpy(&out, body.data(), sizeof(T));
    return out;
  }
};

/// Message-passing endpoint bound to a node; delivery is reliable and
/// FIFO per sender (TCP-like).
class Mailbox {
 public:
  Mailbox(sim::Simulator& sim, rdma::Node& node)
      : sim_(&sim), node_(&node), notifier_(sim) {}

  [[nodiscard]] rdma::Node& node() { return *node_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

  void push(Message m) {
    queue_.push_back(std::move(m));
    notifier_.notify_all();
  }

  /// Awaits the next message, charging the receive-side CPU cost.
  sim::Task<Message> recv(const NetConfig& cfg) {
    co_await sim::wait_until(notifier_, [this] { return !queue_.empty(); });
    co_await node_->cpu().use(cfg.recv_cpu);
    Message m = std::move(queue_.front());
    queue_.pop_front();
    co_return m;
  }

 private:
  sim::Simulator* sim_;
  rdma::Node* node_;
  sim::Notifier notifier_;
  std::deque<Message> queue_;
};

class Net {
 public:
  Net(sim::Simulator& sim, NetConfig cfg = {}) : sim_(&sim), cfg_(cfg) {}

  [[nodiscard]] const NetConfig& config() const { return cfg_; }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }

  /// Registers a mailbox for `node`; the returned id addresses it.
  std::int32_t attach(rdma::Node& node) {
    mailboxes_.push_back(std::make_unique<Mailbox>(*sim_, node));
    return static_cast<std::int32_t>(mailboxes_.size() - 1);
  }

  [[nodiscard]] Mailbox& mailbox(std::int32_t id) {
    return *mailboxes_.at(static_cast<std::size_t>(id));
  }

  /// Sends a message: charges the sender's CPU, then delivers after the
  /// propagation + bandwidth delay. FIFO per (sender, receiver) pair.
  sim::Task<void> send(std::int32_t from, std::int32_t to, Message m) {
    m.from = from;
    co_await mailbox(from).node().cpu().use(cfg_.send_cpu);
    const sim::Nanos transfer = static_cast<sim::Nanos>(
        static_cast<double>(m.body.size()) / cfg_.bandwidth_bytes_per_ns);
    sim::Nanos arrive = sim_->now() + cfg_.one_way + transfer;
    auto& fifo = last_arrival_[{from, to}];
    arrive = std::max(arrive, fifo);
    fifo = arrive;
    ++messages_;
    bytes_ += m.body.size();
    sim_->schedule_at(arrive, [this, to, m = std::move(m)]() mutable {
      if (mailbox(to).node().alive()) mailbox(to).push(std::move(m));
    });
  }

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

 private:
  sim::Simulator* sim_;
  NetConfig cfg_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::map<std::pair<std::int32_t, std::int32_t>, sim::Nanos> last_arrival_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace heron::dynastar
