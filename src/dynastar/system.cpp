#include "dynastar/system.hpp"

#include <cassert>

#include "rdma/pod.hpp"

namespace heron::dynastar {

namespace {

/// Fixed header of a request as it travels between nodes.
struct ReqWire {
  std::uint64_t rid = 0;
  std::int32_t client_addr = -1;
  std::uint32_t kind = 0;
  std::uint32_t home = 0;            // executor partition
  std::uint32_t moves_expected = 0;  // only meaningful in kRouteExec
  std::uint32_t payload_len = 0;
};
static_assert(std::is_trivially_copyable_v<ReqWire>);

struct MoveWire {
  std::uint64_t rid = 0;
  std::int32_t executor_addr = -1;
  std::uint32_t count = 0;
};
static_assert(std::is_trivially_copyable_v<MoveWire>);

struct AcceptWire {
  std::uint64_t seq = 0;
  std::uint32_t op = 0;  // 1 = execute request, 2 = move-out (erase rows)
  std::uint32_t blob_len = 0;
};
static_assert(std::is_trivially_copyable_v<AcceptWire>);

struct ObjectRecord {
  core::Oid oid = 0;
  std::uint32_t len = 0;
  std::uint32_t serialized = 0;
};
static_assert(std::is_trivially_copyable_v<ObjectRecord>);

template <typename T>
void append_pod(std::vector<std::byte>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

void append_bytes(std::vector<std::byte>& out, std::span<const std::byte> b) {
  out.insert(out.end(), b.begin(), b.end());
}

template <typename T>
T read_pod(std::span<const std::byte> in, std::size_t& off) {
  T out;
  std::memcpy(&out, in.data() + off, sizeof(T));
  off += sizeof(T);
  return out;
}

core::Request decode_request(std::span<const std::byte> body,
                             std::size_t& off, ReqWire& wire) {
  wire = read_pod<ReqWire>(body, off);
  core::Request r;
  r.uid = wire.rid;
  r.header.kind = wire.kind;
  r.payload.assign(body.begin() + static_cast<std::ptrdiff_t>(off),
                   body.begin() + static_cast<std::ptrdiff_t>(off) +
                       wire.payload_len);
  off += wire.payload_len;
  return r;
}

}  // namespace

// Leader state for a request being assembled (route + moved objects).
struct Replica::PendingReq {
  std::vector<std::byte> route_body;  // the kRouteExec message body
  std::uint32_t moves_expected = 0;
  std::vector<std::vector<std::byte>> object_blobs;
  bool routed = false;
};

// ---------------------------------------------------------------------
// System wiring.
// ---------------------------------------------------------------------

DynastarSystem::DynastarSystem(sim::Simulator& sim, int partitions,
                               int replicas, core::AppFactory factory,
                               Config cfg)
    : sim_(&sim),
      cfg_(cfg),
      partitions_(partitions),
      replicas_(replicas),
      factory_(std::move(factory)) {
  node_owner_ = std::make_unique<rdma::Fabric>(sim);
  net_ = std::make_unique<Net>(sim, cfg.net);
  oracle_app_ = factory_();
  oracle_node_ = &node_owner_->add_node();
  oracle_addr_ = net_->attach(*oracle_node_);
  for (int p = 0; p < partitions; ++p) {
    for (int r = 0; r < replicas; ++r) {
      replicas_store_.push_back(std::make_unique<Replica>(*this, p, r));
    }
  }
}

void DynastarSystem::start() {
  sim_->spawn(oracle_loop());
  for (auto& r : replicas_store_) r->start();
}

Client& DynastarSystem::add_client() {
  clients_.push_back(std::make_unique<Client>(
      *this, static_cast<std::uint32_t>(clients_.size())));
  return *clients_.back();
}

std::uint64_t DynastarSystem::total_completed() const {
  std::uint64_t total = 0;
  for (const auto& c : clients_) total += c->completed();
  return total;
}

void DynastarSystem::reset_stats() {
  for (auto& c : clients_) c->reset_stats();
}

int DynastarSystem::mapped_partition(core::Oid oid) const {
  auto it = mapping_override_.find(oid);
  if (it != mapping_override_.end()) return it->second;
  return oracle_app_->partition_of(oid);
}

sim::Task<void> DynastarSystem::oracle_loop() {
  auto& mbox = net_->mailbox(oracle_addr_);
  while (true) {
    Message m = co_await mbox.recv(cfg_.net);
    if (m.type != kClientReq) continue;
    // Routing is pipelined: many requests ride the oracle's ordering ring
    // concurrently; only the CPU work serializes.
    sim_->spawn(route_request(std::move(m)));
  }
}

sim::Task<void> DynastarSystem::route_request(Message m) {
  co_await oracle_node_->cpu().use(
      cfg_.oracle_proc +
      static_cast<sim::Nanos>(static_cast<double>(m.body.size()) *
                              cfg_.msg_cpu_ns_per_byte));

  // Ordered delivery of the routing decision in the oracle's ring.
  co_await sim_->sleep(cfg_.order_latency);

  std::size_t off = 0;
  ReqWire wire{};
  core::Request r = decode_request(m.body, off, wire);
  const int home = static_cast<int>(wire.home);

  // Resolve the request's objects against the current mapping and update
  // the mapping in the same step (no awaits in between: the decision is
  // atomic in the oracle's replicated state).
  const auto read_set =
      oracle_app_->read_set(r, static_cast<core::GroupId>(home));
  std::map<int, std::vector<core::Oid>> moves;  // source -> oids
  for (core::Oid oid : read_set) {
    const int at = mapped_partition(oid);
    if (at != home) {
      moves[at].push_back(oid);
      mapping_override_[oid] = home;
    }
  }

  // A mapping update is itself an ordered write to the oracle's
  // replicated state.
  if (!moves.empty()) co_await sim_->sleep(cfg_.order_latency);

  Replica& exec_leader = replica(home, 0);
  for (const auto& [src, oids] : moves) {
    std::vector<std::byte> body;
    MoveWire mw{wire.rid, exec_leader.addr(),
                static_cast<std::uint32_t>(oids.size())};
    append_pod(body, mw);
    for (core::Oid oid : oids) append_pod(body, oid);
    Message cmd;
    cmd.type = kMoveCmd;
    cmd.body = std::move(body);
    co_await net_->send(oracle_addr_, replica(src, 0).addr(), std::move(cmd));
  }

  // Route the request itself to the executor leader.
  ReqWire routed = wire;
  routed.moves_expected = static_cast<std::uint32_t>(moves.size());
  std::vector<std::byte> body;
  append_pod(body, routed);
  append_bytes(body, r.payload);
  Message fwd;
  fwd.type = kRouteExec;
  fwd.body = std::move(body);
  co_await net_->send(oracle_addr_, exec_leader.addr(), std::move(fwd));
}

// ---------------------------------------------------------------------
// Replica.
// ---------------------------------------------------------------------

Replica::Replica(DynastarSystem& sys, int partition, int rank)
    : sys_(&sys), partition_(partition), rank_(rank) {
  auto& node = sys.node_owner_->add_node();
  addr_ = sys.net_->attach(node);
  app_ = sys.app_factory()();
  // DynaStar stores the same database; region sized by config.
  store_ = std::make_unique<core::ObjectStore>(node, sys.config().store_bytes);
  ack_notifier_ = std::make_unique<sim::Notifier>(sys.simulator());
  pending_notifier_ = std::make_unique<sim::Notifier>(sys.simulator());
}

Replica::~Replica() = default;

rdma::Node& Replica::node() { return sys_->net().mailbox(addr_).node(); }

void Replica::start() {
  app_->bootstrap(static_cast<core::GroupId>(partition_), *store_);
  sys_->simulator().spawn(loop());
}

sim::Task<void> Replica::loop() {
  auto& mbox = sys_->net().mailbox(addr_);
  const Config& cfg = sys_->config();

  while (true) {
    Message m = co_await mbox.recv(cfg.net);
    co_await node().cpu().use(static_cast<sim::Nanos>(
        static_cast<double>(m.body.size()) * cfg.msg_cpu_ns_per_byte));

    switch (m.type) {
      case kRouteExec: {
        std::size_t off = 0;
        ReqWire wire = read_pod<ReqWire>(m.body, off);
        PendingReq& p = pending_[wire.rid];
        p.route_body = m.body;
        p.moves_expected = wire.moves_expected;
        p.routed = true;
        sys_->simulator().spawn(drive(wire.rid));
        pending_notifier_->notify_all();
        break;
      }
      case kObjectData: {
        std::size_t off = 0;
        const auto rid = read_pod<std::uint64_t>(m.body, off);
        PendingReq& p = pending_[rid];
        p.object_blobs.emplace_back(m.body.begin() + static_cast<std::ptrdiff_t>(off),
                                    m.body.end());
        pending_notifier_->notify_all();
        break;
      }
      case kMoveCmd: {
        // Handled in its own coroutine: it blocks on follower acks, which
        // arrive through this very loop.
        sys_->simulator().spawn(handle_move(std::move(m)));
        break;
      }
      case kAccept: {
        std::size_t off = 0;
        AcceptWire aw = read_pod<AcceptWire>(m.body, off);
        co_await node().cpu().use(cfg.apply_proc);
        applied_seq_ = aw.seq;
        const auto blob = std::span<const std::byte>(m.body).subspan(
            off, aw.blob_len);
        if (aw.op == 2) {
          std::size_t boff = 0;
          const auto count = read_pod<std::uint32_t>(blob, boff);
          for (std::uint32_t i = 0; i < count; ++i) {
            tombstones_.insert(read_pod<core::Oid>(blob, boff));
          }
        } else {
          execute_locally(aw.seq, blob);
          co_await node().cpu().use(cfg.apply_proc);
        }
        Message ack;
        ack.type = kAck;
        ack.set(aw.seq);
        co_await sys_->net().send(addr_, sys_->replica(partition_, 0).addr(),
                                  std::move(ack));
        break;
      }
      case kAck: {
        const auto seq = m.as<std::uint64_t>();
        acks_[seq] += 1;
        ack_notifier_->notify_all();
        break;
      }
      default:
        break;
    }
  }
}

sim::Task<void> Replica::handle_move(Message m) {
  const Config& cfg = sys_->config();
  co_await node().cpu().use(cfg.leader_proc);
  std::size_t off = 0;
  MoveWire mw = read_pod<MoveWire>(m.body, off);
  std::vector<core::Oid> oids(mw.count);
  for (auto& oid : oids) oid = read_pod<core::Oid>(m.body, off);

  // The move command is delivered through the partition's multicast ring.
  co_await sys_->simulator().sleep(cfg.order_latency);

  // Rows being moved may still be in flight *to* this partition (the
  // oracle updated the mapping when it issued the earlier move); wait
  // briefly for them to land before extracting.
  const sim::Nanos deadline = sys_->simulator().now() + sim::ms(20);
  for (core::Oid oid : oids) {
    while ((!store_->exists(oid) || tombstones_.contains(oid)) &&
           sys_->simulator().now() < deadline) {
      co_await sys_->simulator().sleep(sim::us(50));
    }
  }

  // Order the move-out in this partition, then ship the rows.
  std::vector<std::byte> blob;
  append_pod(blob, static_cast<std::uint32_t>(oids.size()));
  std::vector<std::byte> data_blob;
  append_pod(data_blob, static_cast<std::uint32_t>(oids.size()));
  for (core::Oid oid : oids) {
    append_pod(blob, oid);
    ObjectRecord rec{oid, 0, 0};
    if (store_->exists(oid) && !tombstones_.contains(oid)) {
      auto [tmp, bytes] = store_->get(oid);
      rec.len = static_cast<std::uint32_t>(bytes.size());
      rec.serialized = store_->is_serialized(oid) ? 1 : 0;
      append_pod(data_blob, rec);
      append_bytes(data_blob, bytes);
    } else {
      append_pod(data_blob, rec);  // vanished: len 0
    }
  }

  const std::uint64_t seq = next_seq_++;
  AcceptWire aw{seq, /*op=*/2, static_cast<std::uint32_t>(blob.size())};
  std::vector<std::byte> body;
  append_pod(body, aw);
  append_bytes(body, blob);
  for (int r = 1; r < sys_->replicas(); ++r) {
    Message acc;
    acc.type = kAccept;
    acc.body = body;
    co_await sys_->net().send(addr_, sys_->replica(partition_, r).addr(),
                              Message(acc));
  }
  co_await sim::wait_until(*ack_notifier_, [this, seq] {
    return acks_[seq] + 1 >=
           static_cast<std::uint64_t>(sys_->replicas() / 2 + 1);
  });
  // Apply locally: drop the rows.
  for (core::Oid oid : oids) tombstones_.insert(oid);

  Message data;
  data.type = kObjectData;
  std::vector<std::byte> dbody;
  append_pod(dbody, mw.rid);
  append_bytes(dbody, data_blob);
  data.body = std::move(dbody);
  co_await sys_->net().send(addr_, mw.executor_addr, std::move(data));
}

sim::Task<void> Replica::drive(std::uint64_t rid) {
  // Wait until all expected object moves arrived, then order + execute.
  co_await sim::wait_until(*pending_notifier_, [this, rid] {
    auto it = pending_.find(rid);
    return it != pending_.end() && it->second.routed &&
           it->second.object_blobs.size() >= it->second.moves_expected;
  });
  co_await order_and_execute(rid);
}

sim::Task<void> Replica::order_and_execute(std::uint64_t rid) {
  const Config& cfg = sys_->config();
  co_await node().cpu().use(cfg.leader_proc);
  // Ordered delivery of the request in this partition's ring; a request
  // that waited for moved objects is delivered again once they arrived
  // (DynaStar's miss-and-retry shape).
  co_await sys_->simulator().sleep(cfg.order_latency);

  PendingReq p = std::move(pending_.at(rid));
  pending_.erase(rid);
  if (p.moves_expected > 0) {
    co_await sys_->simulator().sleep(cfg.order_latency);
  }

  // Build the replicated command: request + all moved objects.
  std::vector<std::byte> blob;
  std::size_t off = 0;
  ReqWire wire = read_pod<ReqWire>(p.route_body, off);
  append_bytes(blob, p.route_body);  // includes ReqWire + payload
  append_pod(blob, static_cast<std::uint32_t>(p.object_blobs.size()));
  for (const auto& ob : p.object_blobs) {
    append_pod(blob, static_cast<std::uint32_t>(ob.size()));
    append_bytes(blob, ob);
  }

  const std::uint64_t seq = next_seq_++;
  AcceptWire aw{seq, /*op=*/1, static_cast<std::uint32_t>(blob.size())};
  std::vector<std::byte> body;
  append_pod(body, aw);
  append_bytes(body, blob);
  for (int r = 1; r < sys_->replicas(); ++r) {
    Message acc;
    acc.type = kAccept;
    acc.body = body;
    co_await sys_->net().send(addr_, sys_->replica(partition_, r).addr(),
                              Message(acc));
  }
  co_await sim::wait_until(*ack_notifier_, [this, seq] {
    return acks_[seq] + 1 >=
           static_cast<std::uint64_t>(sys_->replicas() / 2 + 1);
  });

  execute_locally(seq, blob);
  const sim::Nanos exec_cpu = last_exec_cpu_;
  if (exec_cpu > 0) co_await node().cpu().use(exec_cpu);

  // Reply to the client.
  Message reply;
  reply.type = kReply;
  std::vector<std::byte> rbody;
  append_pod(rbody, rid);
  append_pod(rbody, static_cast<std::uint32_t>(last_reply_.status));
  append_pod(rbody, static_cast<std::uint32_t>(last_reply_.payload.size()));
  append_bytes(rbody, last_reply_.payload);
  reply.body = std::move(rbody);
  co_await sys_->net().send(addr_, wire.client_addr, std::move(reply));
}

void Replica::execute_locally(std::uint64_t seq,
                              std::span<const std::byte> blob) {
  std::size_t off = 0;
  ReqWire wire{};
  core::Request r = decode_request(blob, off, wire);
  // Moved-object installs and the transaction's own writes must carry
  // distinct store timestamps, or the dual-version get() ties.
  const std::uint64_t install_tmp = 2 * seq;
  r.tmp = 2 * seq + 1;

  // Install moved objects (and lift tombstones).
  const auto blob_count = read_pod<std::uint32_t>(blob, off);
  for (std::uint32_t b = 0; b < blob_count; ++b) {
    const auto len = read_pod<std::uint32_t>(blob, off);
    const auto sub = blob.subspan(off, len);
    off += len;
    std::size_t soff = 0;
    const auto count = read_pod<std::uint32_t>(sub, soff);
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto rec = read_pod<ObjectRecord>(sub, soff);
      if (rec.len == 0) continue;
      const auto bytes = sub.subspan(soff, rec.len);
      soff += rec.len;
      tombstones_.erase(rec.oid);
      if (!store_->exists(rec.oid)) {
        store_->create(rec.oid, bytes, rec.serialized != 0);
      }
      store_->set(rec.oid, bytes, install_tmp);
    }
  }

  // Execute the transaction for every statically involved partition
  // identity (the single active partition runs the whole request,
  // §III-D2 of the Heron paper).
  const int home = static_cast<int>(wire.home);
  const auto read_set =
      app_->read_set(r, static_cast<core::GroupId>(home));
  std::set<int> identities{home};
  for (core::Oid oid : read_set) identities.insert(app_->partition_of(oid));

  sim::Nanos exec_cpu = 0;
  core::Reply home_reply;
  for (int identity : identities) {
    core::ExecContext ctx(static_cast<core::GroupId>(identity), *store_);
    bool missing = false;
    for (core::Oid oid : read_set) {
      if (store_->exists(oid) && !tombstones_.contains(oid)) {
        auto [tmp, bytes] = store_->get(oid);
        ctx.mutable_values()[oid].assign(bytes.begin(), bytes.end());
      } else {
        missing = true;  // row lost in a migration race; see handle_move
      }
    }
    if (missing) continue;  // skip this identity rather than crash
    core::Reply reply = app_->execute(r, ctx);
    if (identity == home) home_reply = std::move(reply);
    exec_cpu += static_cast<sim::Nanos>(
        static_cast<double>(ctx.cpu_cost()) * sys_->config().exec_factor);
    for (const auto& c : ctx.creates()) {
      if (!store_->exists(c.oid)) store_->create(c.oid, c.bytes, c.serialized);
      store_->set(c.oid, c.bytes, r.tmp);
    }
    for (const auto& [oid, bytes] : ctx.writes()) {
      if (!store_->exists(oid)) {
        store_->create(oid, bytes, false);
      }
      store_->set(oid, bytes, r.tmp);
    }
  }
  last_exec_cpu_ = exec_cpu;
  last_reply_ = std::move(home_reply);
  ++executed_;
}

// ---------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------

Client::Client(DynastarSystem& sys, std::uint32_t id) : sys_(&sys), id_(id) {
  auto& node = sys.node_owner_->add_node();
  addr_ = sys.net_->attach(node);
  reply_notifier_ = std::make_unique<sim::Notifier>(sys.simulator());
  sys.simulator().spawn([](Client& self) -> sim::Task<void> {
    auto& mbox = self.sys_->net().mailbox(self.addr_);
    while (true) {
      Message m = co_await mbox.recv(self.sys_->config().net);
      if (m.type != kReply) continue;
      std::size_t off = 0;
      const auto rid = read_pod<std::uint64_t>(m.body, off);
      core::Reply reply;
      reply.status = read_pod<std::uint32_t>(m.body, off);
      const auto len = read_pod<std::uint32_t>(m.body, off);
      reply.payload.assign(m.body.begin() + static_cast<std::ptrdiff_t>(off),
                           m.body.begin() + static_cast<std::ptrdiff_t>(off) +
                               len);
      self.replies_[rid] = std::move(reply);
      self.reply_notifier_->notify_all();
    }
  }(*this));
}

sim::Task<Client::Result> Client::submit(amcast::DstMask dst_hint,
                                         std::uint32_t kind,
                                         std::span<const std::byte> payload) {
  const sim::Nanos start = sys_->simulator().now();
  const std::uint64_t rid =
      (static_cast<std::uint64_t>(id_) << 32) | ++next_req_;

  // Home = lowest partition in the destination hint whose... the home
  // warehouse is encoded as the first payload word by every TPC-C
  // request type (w_id), which the generator guarantees.
  std::uint32_t home = 0;
  std::memcpy(&home, payload.data(), sizeof(home));

  ReqWire wire{rid, addr_, kind, home, 0,
               static_cast<std::uint32_t>(payload.size())};
  std::vector<std::byte> body;
  append_pod(body, wire);
  append_bytes(body, payload);
  Message m;
  m.type = kClientReq;
  m.body = std::move(body);
  co_await sys_->net().send(addr_, sys_->oracle_addr_, std::move(m));
  (void)dst_hint;

  co_await sim::wait_until(*reply_notifier_, [this, rid] {
    return replies_.contains(rid);
  });
  Result out;
  out.reply = std::move(replies_.at(rid));
  replies_.erase(rid);
  out.latency = sys_->simulator().now() - start;
  ++completed_;
  latencies_.record(out.latency);
  co_return out;
}

}  // namespace heron::dynastar
