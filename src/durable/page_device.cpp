#include "durable/page_device.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace heron::durable {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::byte b : bytes) {
    c = table[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

PageDevice::PageDevice(sim::Simulator& sim, telemetry::Hub* hub,
                       const DeviceConfig& cfg, const std::string& label)
    : sim_(&sim), cfg_(cfg), pages_(cfg.page_count) {
  if (hub != nullptr) {
    auto& m = hub->metrics;
    ctr_pages_written_ = &m.counter("durable", "pages_written", label);
    ctr_bytes_written_ = &m.counter("durable", "bytes_written", label);
    ctr_pages_read_ = &m.counter("durable", "pages_read", label);
    ctr_bytes_read_ = &m.counter("durable", "bytes_read", label);
    ctr_crc_failures_ = &m.counter("durable", "crc_failures", label);
  }
}

sim::Task<void> PageDevice::charge(sim::Nanos base, double bw_bytes_per_ns,
                                   std::size_t bytes) {
  const auto cost =
      base + static_cast<sim::Nanos>(static_cast<double>(bytes) /
                                     bw_bytes_per_ns);
  const sim::Nanos start = std::max(sim_->now(), free_at_);
  free_at_ = start + cost;
  if (free_at_ > sim_->now()) co_await sim_->sleep(free_at_ - sim_->now());
}

sim::Task<void> PageDevice::write_page(std::uint64_t page,
                                       std::span<const std::byte> payload) {
  if (page >= cfg_.page_count) {
    throw std::out_of_range("durable: page index past device capacity");
  }
  if (payload.size() > cfg_.page_bytes) {
    throw std::invalid_argument("durable: payload larger than a page");
  }
  co_await charge(cfg_.write_base, cfg_.write_bw_bytes_per_ns, payload.size());

  // Committed at completion time: an operation still queued when the
  // owner crashes simply never happened (the caller's abort predicate
  // stops the stream before the next submission).
  Page& p = pages_[page];
  p.crc = crc32(payload);  // CRC of the *intended* payload
  if (tear_next_) {
    tear_next_ = false;
    const std::size_t half = payload.size() / 2;
    p.data.assign(payload.begin(),
                  payload.begin() + static_cast<std::ptrdiff_t>(half));
  } else {
    p.data.assign(payload.begin(), payload.end());
  }
  p.written = true;
  ++pages_written_;
  bytes_written_ += payload.size();
  if (ctr_pages_written_ != nullptr) {
    ctr_pages_written_->inc();
    ctr_bytes_written_->inc(payload.size());
  }
}

sim::Task<bool> PageDevice::read_page(std::uint64_t page,
                                      std::vector<std::byte>& out) {
  if (page >= cfg_.page_count) {
    throw std::out_of_range("durable: page index past device capacity");
  }
  co_await charge(cfg_.read_base, cfg_.read_bw_bytes_per_ns, cfg_.page_bytes);
  ++pages_read_;
  bytes_read_ += cfg_.page_bytes;
  if (ctr_pages_read_ != nullptr) {
    ctr_pages_read_->inc();
    ctr_bytes_read_->inc(cfg_.page_bytes);
  }

  const Page& p = pages_[page];
  if (!p.written || crc32(p.data) != p.crc) {
    ++crc_failures_;
    if (ctr_crc_failures_ != nullptr) ctr_crc_failures_->inc();
    co_return false;
  }
  out.assign(p.data.begin(), p.data.end());
  co_return true;
}

void PageDevice::corrupt_page(std::uint64_t page) {
  if (page >= cfg_.page_count) return;
  Page& p = pages_[page];
  if (!p.written || p.data.empty()) return;
  p.data[p.data.size() / 2] ^= std::byte{0xFF};
}

}  // namespace heron::durable
