// Knobs for the simulated durable subsystem (paged checkpoint backend).
//
// Kept in a leaf header (sim/time.hpp only) so core/types.hpp can embed a
// DurableConfig in HeronConfig without pulling the device or checkpoint
// machinery into every translation unit.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace heron::durable {

/// Cost/shape model of the simulated persistent medium. Defaults are
/// persistent-memory-flavoured (the paper's deployment target is a
/// shared-memory machine): reads stream much faster than writes, and
/// every page operation pays a small fixed submission cost on top of
/// bandwidth.
struct DeviceConfig {
  /// Fixed page size. Records never span pages, so the largest object
  /// (plus record header) must fit in one page payload.
  std::uint32_t page_bytes = 64u << 10;
  /// Device capacity in pages. Pages are materialized lazily, so a large
  /// logical device costs little host memory.
  std::uint64_t page_count = 1u << 18;

  sim::Nanos write_base = sim::us(4);   // per-page submission cost
  double write_bw_bytes_per_ns = 2.0;   // ~2 GB/s sustained writes
  sim::Nanos read_base = sim::us(1);
  double read_bw_bytes_per_ns = 10.0;   // ~10 GB/s sequential reads
};

/// Configuration of checkpointing + log compaction (heron::durable).
struct DurableConfig {
  /// Target period between checkpoints. 0 disables the whole subsystem
  /// (seed behaviour: no device, no checkpoint coroutine, restarts keep
  /// the legacy semantics).
  sim::Nanos checkpoint_interval = 0;

  DeviceConfig device;

  /// Model restarts as losing all volatile memory even without
  /// checkpointing (the recovery bench's baseline arm): the replica
  /// rejoins from scratch via a full Algorithm 3 transfer. Implied when
  /// checkpointing is enabled.
  bool volatile_restart = false;

  /// Evict sessions idle longer than this at checkpoint time (satellite:
  /// bounding the session table). 0 disables eviction. An evicted
  /// client's floor is remembered as a tombstone; retries of commands at
  /// or below it get kStatusStaleSession instead of re-executing.
  sim::Nanos session_ttl = 0;

  /// Drop cached session-reply payloads once the session is covered by a
  /// committed checkpoint; retries page the reply back in from the
  /// device. Bounds reply-cache memory at the cost of a device read on a
  /// (rare) late retry.
  bool page_out_replies = true;

  /// Device utilization above which the next checkpoint is written as a
  /// full one, after which all pages of the previous chain are freed
  /// (log-structured compaction).
  double compact_utilization = 0.6;

  /// Throttling against foreground load: defer a due checkpoint while the
  /// ordering propose queue is deeper than this, or the replica CPU has
  /// more than `throttle_cpu_backlog` of queued work. Re-check after
  /// `throttle_backoff`.
  std::size_t throttle_queue_depth = 16;
  sim::Nanos throttle_cpu_backlog = sim::us(50);
  sim::Nanos throttle_backoff = sim::us(200);

  [[nodiscard]] bool enabled() const { return checkpoint_interval > 0; }
};

}  // namespace heron::durable
