// Checkpoint store: incremental snapshots on the paged device, committed
// atomically through a manifest chain.
//
// Layout (all in PageDevice pages):
//   * pages 0 and 1 — two superblock slots, written alternately with an
//     increasing sequence number. A reader takes the valid superblock
//     with the highest seq; writing the superblock is the commit point.
//   * data pages — packed state records (objects, sessions, tombstones).
//   * manifest pages — one manifest per checkpoint, spanning a chain of
//     pages. The manifest carries {watermark, lease epoch/expiry, the
//     data-page list with per-page checksums, a link to the previous
//     checkpoint's manifest}. A delta checkpoint links back to its
//     predecessor; a full checkpoint links to nothing and, once its
//     superblock lands, frees every page of the older chain (compaction).
//
// Commit order is data pages -> manifest -> superblock, so a crash at any
// point leaves the previous checkpoint fully intact. Loading walks the
// chain head-to-base verifying every CRC (device-level and
// manifest-recorded); any failure invalidates the whole candidate and the
// loader falls back to the other superblock, then to "no checkpoint"
// (the caller recovers via a full state transfer instead).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "durable/page_device.hpp"

namespace heron::durable {

/// Record kinds inside a checkpoint. Ids are oids (objects) or client
/// ids (sessions, tombstones); `tmp` is the object version, the session's
/// last executed command timestamp, or the tombstone's evicted floor.
constexpr std::uint32_t kRecordObject = 0;
constexpr std::uint32_t kRecordSession = 1;
constexpr std::uint32_t kRecordTombstone = 2;

/// Object flag bit: value stored in serialized form.
constexpr std::uint32_t kRecordFlagSerialized = 1u << 0;

struct Record {
  std::uint32_t kind = kRecordObject;
  std::uint32_t flags = 0;
  std::uint64_t id = 0;
  std::uint64_t tmp = 0;
  std::vector<std::byte> bytes;
};

/// Decoded newest-wins state of a checkpoint chain.
struct Image {
  std::uint64_t watermark = 0;
  std::uint64_t lease_epoch = 0;
  std::int64_t lease_expiry = 0;
  /// Partition-layout epoch (heron::reconfig) the owner served under
  /// when the checkpoint committed; a rejoining replica rejects images
  /// from a superseded layout (objects may have migrated away since).
  std::uint64_t layout_epoch = 0;
  std::vector<Record> records;  // deduped by (kind, id), newest wins
  std::uint64_t chain_length = 0;  // checkpoints walked (incl. the base)
  std::uint64_t pages_read = 0;
};

class CheckpointStore {
 public:
  CheckpointStore(sim::Simulator& sim, telemetry::Hub* hub,
                  const DurableConfig& cfg, const std::string& label);

  /// Persists one checkpoint and commits it atomically. `full` replaces
  /// the whole chain (and frees the old one); otherwise `records` is the
  /// dirty delta since the previous commit. `abort` is polled between
  /// page writes — when it returns true (owner crashed) the checkpoint is
  /// abandoned with the previous commit intact. Returns false when
  /// aborted or out of pages.
  sim::Task<bool> write_checkpoint(std::uint64_t watermark,
                                   std::uint64_t lease_epoch,
                                   std::int64_t lease_expiry, bool full,
                                   const std::vector<Record>& records,
                                   std::function<bool()> abort = {},
                                   std::uint64_t layout_epoch = 0);

  /// Re-reads the newest valid checkpoint chain from the device (restart
  /// path) and resets the in-memory commit state to it. nullopt when no
  /// chain validates end-to-end.
  sim::Task<std::optional<Image>> load_latest();

  /// Reads back the newest persisted record for (kind, id) — the paging
  /// path for evicted session replies. nullopt when absent or the page
  /// fails its CRC.
  sim::Task<std::optional<Record>> fetch_record(std::uint32_t kind,
                                                std::uint64_t id);

  [[nodiscard]] bool has_checkpoint() const { return head_page_ != kNoPage; }
  [[nodiscard]] std::uint64_t watermark() const { return watermark_; }
  [[nodiscard]] std::uint64_t checkpoints_written() const {
    return checkpoints_;
  }
  [[nodiscard]] std::uint64_t full_checkpoints() const { return fulls_; }
  [[nodiscard]] std::uint64_t aborted_checkpoints() const { return aborted_; }
  [[nodiscard]] std::uint64_t chain_pages() const {
    return chain_pages_.size();
  }
  /// Pages on the allocator's free list (tests / diagnostics).
  [[nodiscard]] std::size_t free_pages() const { return free_.size(); }
  /// Fraction of device pages held by the committed chain.
  [[nodiscard]] double utilization() const;
  [[nodiscard]] bool should_compact() const {
    return utilization() > cfg_.compact_utilization;
  }

  [[nodiscard]] PageDevice& device() { return dev_; }

 private:
  static constexpr std::uint64_t kNoPage = ~0ull;

  struct RecordLoc {
    std::uint64_t page = 0;
    std::uint32_t offset = 0;  // of the record header within the payload
    std::uint32_t flags = 0;
    std::uint64_t tmp = 0;
  };

  std::uint64_t alloc_page();
  void free_page(std::uint64_t page);
  [[nodiscard]] std::uint32_t page_payload_capacity() const;

  sim::Simulator* sim_;
  DurableConfig cfg_;
  PageDevice dev_;

  // Committed chain state (mirrors what the superblock + manifests say).
  std::uint64_t super_seq_ = 0;
  std::uint64_t head_page_ = kNoPage;  // first manifest page of the head
  std::uint32_t head_crc_ = 0;
  std::uint64_t watermark_ = 0;
  std::vector<std::uint64_t> chain_pages_;  // every live page of the chain
  std::map<std::pair<std::uint32_t, std::uint64_t>, RecordLoc> index_;

  // Page allocator: bump + free list; pages 0/1 are the superblocks.
  std::uint64_t next_page_ = 2;
  std::vector<std::uint64_t> free_;

  std::uint64_t checkpoints_ = 0;
  std::uint64_t fulls_ = 0;
  std::uint64_t aborted_ = 0;

  telemetry::Counter* ctr_checkpoints_ = nullptr;
  telemetry::Counter* ctr_full_checkpoints_ = nullptr;
  telemetry::Counter* ctr_aborted_ = nullptr;
  telemetry::Counter* ctr_pages_freed_ = nullptr;
};

}  // namespace heron::durable
