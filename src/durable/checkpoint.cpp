#include "durable/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <set>
#include <stdexcept>

namespace heron::durable {

namespace {

constexpr std::uint64_t kSuperMagic = 0x4845524F4E535550ull;     // "HERONSUP"
constexpr std::uint64_t kManifestMagic = 0x4845524F4E4D414Eull;  // "HERONMAN"
constexpr std::uint64_t kMPageMagic = 0x4845524F4E4D5047ull;     // "HERONMPG"
constexpr std::uint64_t kDataMagic = 0x4845524F4E444154ull;      // "HERONDAT"

/// Commit point of a checkpoint: one of the two alternating slots at
/// pages 0/1. Highest valid seq wins.
struct Superblock {
  std::uint64_t magic = 0;
  std::uint64_t seq = 0;
  std::uint64_t head_page = 0;  // first manifest page of the head chain
  std::uint32_t head_crc = 0;   // CRC of that page's payload
  std::uint32_t pad = 0;
  std::uint64_t watermark = 0;
};
static_assert(std::is_trivially_copyable_v<Superblock>);

/// A manifest blob spans a chain of pages, each prefixed with this.
struct MPageHeader {
  std::uint64_t magic = 0;
  std::uint64_t next_page = 0;  // kNoPage at the end of the blob
  std::uint32_t used = 0;       // blob bytes in this page
  std::uint32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<MPageHeader>);

/// Reassembled manifest blob: this header, then `data_page_count`
/// PageEntry records.
struct ManifestHeader {
  std::uint64_t magic = 0;
  std::uint64_t seq = 0;
  std::uint64_t watermark = 0;
  std::uint64_t lease_epoch = 0;
  std::int64_t lease_expiry = 0;
  std::uint64_t layout_epoch = 0;  // partition-layout epoch at commit
  std::uint64_t prev_page = 0;  // previous checkpoint's first manifest page
  std::uint32_t prev_crc = 0;
  std::uint32_t full = 0;
  std::uint32_t data_page_count = 0;
  std::uint32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<ManifestHeader>);

struct PageEntry {
  std::uint64_t page = 0;
  std::uint32_t crc = 0;            // manifest-recorded payload checksum
  std::uint32_t payload_bytes = 0;
};
static_assert(std::is_trivially_copyable_v<PageEntry>);

/// Data pages are self-describing: this header, then `record_count`
/// packed (RecHeader, bytes) pairs.
struct DPageHeader {
  std::uint64_t magic = 0;
  std::uint32_t record_count = 0;
  std::uint32_t used = 0;
};
static_assert(std::is_trivially_copyable_v<DPageHeader>);

struct RecHeader {
  std::uint32_t kind = 0;
  std::uint32_t flags = 0;
  std::uint64_t id = 0;
  std::uint64_t tmp = 0;
  std::uint32_t len = 0;
  std::uint32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<RecHeader>);

template <typename T>
T load_pod(std::span<const std::byte> s, std::uint64_t off) {
  T out{};
  if (off + sizeof(T) > s.size()) return out;
  std::memcpy(&out, s.data() + off, sizeof(T));
  return out;
}

template <typename T>
void store_pod(std::span<std::byte> s, std::uint64_t off, const T& v) {
  std::memcpy(s.data() + off, &v, sizeof(T));
}

template <typename T>
void append_pod(std::vector<std::byte>& buf, const T& v) {
  const std::size_t off = buf.size();
  buf.resize(off + sizeof(T));
  std::memcpy(buf.data() + off, &v, sizeof(T));
}

}  // namespace

CheckpointStore::CheckpointStore(sim::Simulator& sim, telemetry::Hub* hub,
                                 const DurableConfig& cfg,
                                 const std::string& label)
    : sim_(&sim), cfg_(cfg), dev_(sim, hub, cfg.device, label) {
  if (hub != nullptr) {
    auto& m = hub->metrics;
    ctr_checkpoints_ = &m.counter("durable", "checkpoints", label);
    ctr_full_checkpoints_ = &m.counter("durable", "full_checkpoints", label);
    ctr_aborted_ = &m.counter("durable", "aborted_checkpoints", label);
    ctr_pages_freed_ = &m.counter("durable", "pages_freed", label);
  }
}

std::uint32_t CheckpointStore::page_payload_capacity() const {
  return dev_.page_bytes();
}

std::uint64_t CheckpointStore::alloc_page() {
  if (!free_.empty()) {
    const std::uint64_t p = free_.back();
    free_.pop_back();
    return p;
  }
  if (next_page_ < dev_.page_count()) return next_page_++;
  return kNoPage;
}

void CheckpointStore::free_page(std::uint64_t page) {
  if (page >= 2 && page != kNoPage) free_.push_back(page);
}

double CheckpointStore::utilization() const {
  return static_cast<double>(chain_pages_.size() + 2) /
         static_cast<double>(dev_.page_count());
}

sim::Task<bool> CheckpointStore::write_checkpoint(
    std::uint64_t watermark, std::uint64_t lease_epoch,
    std::int64_t lease_expiry, bool full, const std::vector<Record>& records,
    std::function<bool()> abort, std::uint64_t layout_epoch) {
  const auto aborted = [&abort] { return abort && abort(); };
  std::vector<std::uint64_t> fresh;
  const auto give_up = [&](bool count_abort) {
    for (const std::uint64_t p : fresh) free_page(p);
    if (count_abort) {
      ++aborted_;
      if (ctr_aborted_ != nullptr) ctr_aborted_->inc();
    }
  };

  // --- pack records into data-page payloads ----------------------------
  const std::uint32_t cap = page_payload_capacity();
  struct PendingLoc {
    std::pair<std::uint32_t, std::uint64_t> key;
    std::uint32_t offset = 0;
    std::uint32_t flags = 0;
    std::uint64_t tmp = 0;
  };
  std::vector<std::vector<std::byte>> payloads;
  std::vector<std::vector<PendingLoc>> payload_locs;
  std::vector<std::uint32_t> payload_counts;
  const auto open_page = [&] {
    payloads.emplace_back(sizeof(DPageHeader));
    payload_locs.emplace_back();
    payload_counts.push_back(0);
  };
  for (const Record& r : records) {
    const std::size_t rec_len = sizeof(RecHeader) + r.bytes.size();
    if (sizeof(DPageHeader) + rec_len > cap) {
      throw std::runtime_error("durable: record larger than a page");
    }
    if (payloads.empty() || payloads.back().size() + rec_len > cap) {
      open_page();
    }
    auto& page = payloads.back();
    payload_locs.back().push_back(PendingLoc{
        {r.kind, r.id}, static_cast<std::uint32_t>(page.size()), r.flags,
        r.tmp});
    append_pod(page, RecHeader{r.kind, r.flags, r.id, r.tmp,
                               static_cast<std::uint32_t>(r.bytes.size()), 0});
    page.insert(page.end(), r.bytes.begin(), r.bytes.end());
    ++payload_counts.back();
  }

  // --- write data pages ------------------------------------------------
  std::vector<PageEntry> entries;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    auto& payload = payloads[i];
    store_pod(std::span(payload), 0,
              DPageHeader{kDataMagic, payload_counts[i],
                          static_cast<std::uint32_t>(payload.size())});
    const std::uint64_t page = alloc_page();
    if (page == kNoPage || aborted()) {
      free_page(page);  // not yet in `fresh`; no-op for kNoPage
      give_up(page != kNoPage);
      co_return false;
    }
    fresh.push_back(page);
    co_await dev_.write_page(page, payload);
    entries.push_back(PageEntry{page, crc32(payload),
                                static_cast<std::uint32_t>(payload.size())});
  }

  // --- serialize + write the manifest chain ----------------------------
  std::vector<std::byte> blob;
  append_pod(blob, ManifestHeader{
                       kManifestMagic, super_seq_ + 1, watermark, lease_epoch,
                       lease_expiry, layout_epoch, full ? kNoPage : head_page_,
                       full ? 0u : head_crc_, full ? 1u : 0u,
                       static_cast<std::uint32_t>(entries.size()), 0});
  for (const PageEntry& e : entries) append_pod(blob, e);

  const std::uint32_t mcap =
      dev_.page_bytes() - static_cast<std::uint32_t>(sizeof(MPageHeader));
  const std::size_t mpage_count = std::max<std::size_t>(
      1, (blob.size() + mcap - 1) / mcap);
  std::vector<std::uint64_t> mpages;
  for (std::size_t i = 0; i < mpage_count; ++i) {
    const std::uint64_t page = alloc_page();
    if (page == kNoPage) {
      give_up(false);
      co_return false;
    }
    fresh.push_back(page);
    mpages.push_back(page);
  }
  std::uint32_t head_crc_new = 0;
  for (std::size_t i = 0; i < mpage_count; ++i) {
    const std::size_t off = i * mcap;
    const std::size_t part =
        std::min<std::size_t>(mcap, blob.size() - off);
    std::vector<std::byte> payload;
    append_pod(payload,
               MPageHeader{kMPageMagic,
                           i + 1 < mpage_count ? mpages[i + 1] : kNoPage,
                           static_cast<std::uint32_t>(part), 0});
    payload.insert(payload.end(), blob.begin() + static_cast<std::ptrdiff_t>(off),
                   blob.begin() + static_cast<std::ptrdiff_t>(off + part));
    if (i == 0) head_crc_new = crc32(payload);
    if (aborted()) {
      give_up(true);
      co_return false;
    }
    co_await dev_.write_page(mpages[i], payload);
  }

  // --- commit: the superblock write is the atomic switch ---------------
  if (aborted()) {
    give_up(true);
    co_return false;
  }
  const std::uint64_t seq = super_seq_ + 1;
  std::vector<std::byte> sb;
  append_pod(sb, Superblock{kSuperMagic, seq, mpages[0], head_crc_new, 0,
                            watermark});
  co_await dev_.write_page(seq % 2, sb);

  // In-memory mirror of the now-durable state.
  super_seq_ = seq;
  head_page_ = mpages[0];
  head_crc_ = head_crc_new;
  watermark_ = watermark;
  if (full) {
    std::uint64_t freed = 0;
    for (const std::uint64_t p : chain_pages_) {
      free_page(p);
      ++freed;
    }
    if (ctr_pages_freed_ != nullptr) ctr_pages_freed_->inc(freed);
    chain_pages_.clear();
    index_.clear();
  }
  chain_pages_.insert(chain_pages_.end(), fresh.begin(), fresh.end());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    for (const PendingLoc& l : payload_locs[i]) {
      index_[l.key] = RecordLoc{entries[i].page, l.offset, l.flags, l.tmp};
    }
  }
  ++checkpoints_;
  if (ctr_checkpoints_ != nullptr) ctr_checkpoints_->inc();
  if (full) {
    ++fulls_;
    if (ctr_full_checkpoints_ != nullptr) ctr_full_checkpoints_->inc();
  }
  co_return true;
}

sim::Task<std::optional<Image>> CheckpointStore::load_latest() {
  // Candidate superblocks, newest first.
  std::vector<Superblock> cands;
  std::vector<std::byte> buf;
  for (const std::uint64_t slot : {0ull, 1ull}) {
    const bool ok = co_await dev_.read_page(slot, buf);
    if (!ok || buf.size() < sizeof(Superblock)) continue;
    const auto sb = load_pod<Superblock>(buf, 0);
    if (sb.magic == kSuperMagic) cands.push_back(sb);
  }
  std::sort(cands.begin(), cands.end(),
            [](const Superblock& a, const Superblock& b) {
              return a.seq > b.seq;
            });

  for (const Superblock& sb : cands) {
    Image img;
    img.pages_read = 2;
    std::set<std::pair<std::uint32_t, std::uint64_t>> have;
    std::map<std::pair<std::uint32_t, std::uint64_t>, RecordLoc> new_index;
    std::set<std::uint64_t> seen_set;  // cycle guard + live-page collector
    bool ok = true;
    bool first_manifest = true;

    std::uint64_t mpage = sb.head_page;
    std::uint32_t expect_crc = sb.head_crc;
    while (ok) {
      // Reassemble one manifest blob from its page chain.
      std::vector<std::byte> blob;
      std::uint64_t page = mpage;
      bool first_page = true;
      while (page != kNoPage) {
        if (!seen_set.insert(page).second) {
          ok = false;  // cycle / reused page
          break;
        }
        const bool read_ok = co_await dev_.read_page(page, buf);
        ++img.pages_read;
        if (!read_ok) {
          ok = false;
          break;
        }
        if (first_page && crc32(std::span<const std::byte>(buf)) != expect_crc) {
          ok = false;  // chain link points at a stale/reused page
          break;
        }
        first_page = false;
        const auto mh = load_pod<MPageHeader>(buf, 0);
        if (mh.magic != kMPageMagic ||
            sizeof(MPageHeader) + mh.used > buf.size()) {
          ok = false;
          break;
        }
        blob.insert(blob.end(), buf.begin() + sizeof(MPageHeader),
                    buf.begin() + sizeof(MPageHeader) + mh.used);
        page = mh.next_page;
      }
      if (!ok) break;

      const auto man = load_pod<ManifestHeader>(blob, 0);
      if (man.magic != kManifestMagic ||
          blob.size() < sizeof(ManifestHeader) +
                            man.data_page_count * sizeof(PageEntry)) {
        ok = false;
        break;
      }
      if (first_manifest) {
        img.watermark = man.watermark;
        img.lease_epoch = man.lease_epoch;
        img.lease_expiry = man.lease_expiry;
        img.layout_epoch = man.layout_epoch;
        first_manifest = false;
      }
      ++img.chain_length;

      // Data pages: verify the manifest-recorded checksum, then decode
      // records newest-wins (this walk goes newest manifest first).
      for (std::uint32_t e = 0; e < man.data_page_count; ++e) {
        const auto entry = load_pod<PageEntry>(
            blob, sizeof(ManifestHeader) + e * sizeof(PageEntry));
        if (!seen_set.insert(entry.page).second) {
          ok = false;
          break;
        }
        const bool read_ok = co_await dev_.read_page(entry.page, buf);
        ++img.pages_read;
        if (!read_ok || buf.size() != entry.payload_bytes ||
            crc32(std::span<const std::byte>(buf)) != entry.crc) {
          ok = false;
          break;
        }
        const auto dh = load_pod<DPageHeader>(buf, 0);
        if (dh.magic != kDataMagic || dh.used > buf.size()) {
          ok = false;
          break;
        }
        std::uint64_t off = sizeof(DPageHeader);
        for (std::uint32_t r = 0; r < dh.record_count; ++r) {
          const auto rec = load_pod<RecHeader>(buf, off);
          if (off + sizeof(RecHeader) + rec.len > dh.used) {
            ok = false;
            break;
          }
          const auto key = std::pair{rec.kind, rec.id};
          if (have.insert(key).second) {
            Record out;
            out.kind = rec.kind;
            out.flags = rec.flags;
            out.id = rec.id;
            out.tmp = rec.tmp;
            out.bytes.assign(buf.begin() + static_cast<std::ptrdiff_t>(
                                               off + sizeof(RecHeader)),
                             buf.begin() + static_cast<std::ptrdiff_t>(
                                               off + sizeof(RecHeader) +
                                               rec.len));
            img.records.push_back(std::move(out));
            new_index[key] = RecordLoc{entry.page,
                                       static_cast<std::uint32_t>(off),
                                       rec.flags, rec.tmp};
          }
          off += sizeof(RecHeader) + rec.len;
        }
        if (!ok) break;
      }
      if (!ok) break;

      if (man.full != 0) break;  // reached the chain base
      if (man.prev_page == kNoPage) {
        ok = false;  // a delta with no base: incomplete chain
        break;
      }
      mpage = man.prev_page;
      expect_crc = man.prev_crc;
    }
    if (!ok) continue;  // try the older superblock

    // Reset the in-memory commit state to what the device holds, so the
    // next checkpoint continues this chain.
    super_seq_ = sb.seq;
    head_page_ = sb.head_page;
    head_crc_ = sb.head_crc;
    watermark_ = sb.watermark;
    chain_pages_.assign(seen_set.begin(), seen_set.end());
    index_ = std::move(new_index);
    free_.clear();
    next_page_ = 2;
    for (const std::uint64_t p : chain_pages_) {
      next_page_ = std::max(next_page_, p + 1);
    }
    // Pages below next_page_ that the recovered chain does not reference
    // (the other superblock's chain, aborted in-flight writes) would
    // otherwise be unallocatable forever — reclaim them. Reusing a stale
    // page is safe: chain walks validate head_crc/prev_crc and manifest
    // checksums, so a superseded superblock can no longer resolve it.
    for (std::uint64_t p = 2; p < next_page_; ++p) {
      if (!seen_set.contains(p)) free_.push_back(p);
    }
    co_return img;
  }
  co_return std::nullopt;
}

sim::Task<std::optional<Record>> CheckpointStore::fetch_record(
    std::uint32_t kind, std::uint64_t id) {
  const auto it = index_.find({kind, id});
  if (it == index_.end()) co_return std::nullopt;
  const RecordLoc loc = it->second;
  std::vector<std::byte> buf;
  const bool ok = co_await dev_.read_page(loc.page, buf);
  if (!ok) co_return std::nullopt;
  const auto dh = load_pod<DPageHeader>(buf, 0);
  if (dh.magic != kDataMagic) co_return std::nullopt;
  const auto rec = load_pod<RecHeader>(buf, loc.offset);
  if (rec.kind != kind || rec.id != id ||
      loc.offset + sizeof(RecHeader) + rec.len > buf.size()) {
    co_return std::nullopt;
  }
  Record out;
  out.kind = rec.kind;
  out.flags = rec.flags;
  out.id = rec.id;
  out.tmp = rec.tmp;
  out.bytes.assign(
      buf.begin() + static_cast<std::ptrdiff_t>(loc.offset + sizeof(RecHeader)),
      buf.begin() +
          static_cast<std::ptrdiff_t>(loc.offset + sizeof(RecHeader) + rec.len));
  co_return out;
}

}  // namespace heron::durable
