// Simulated paged persistent medium.
//
// Fixed-size pages, each stamped with a CRC32 of its payload at write
// time and verified on every read. Write/read latency and bandwidth are
// charged through the simulator on a single device channel (operations
// queue behind each other, like one NVMe submission queue), so durability
// costs show up in virtual time instead of being free.
//
// Fault-injection hooks model the two classic failure shapes:
//   * corrupt_page — medium corruption: payload bits flip, the stored CRC
//     does not, so the next read fails its check;
//   * tear_next_write — a torn write: the next write persists only half
//     its payload but records the CRC of the intended full payload
//     (exactly what a power cut mid-write leaves behind).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "durable/config.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "telemetry/hub.hpp"

namespace heron::durable {

/// Standard CRC-32 (reflected, poly 0xEDB88320), e.g. crc32("123456789")
/// == 0xCBF43926.
std::uint32_t crc32(std::span<const std::byte> bytes);

class PageDevice {
 public:
  /// `hub` may be null (unit tests); `label` keys the telemetry series.
  PageDevice(sim::Simulator& sim, telemetry::Hub* hub,
             const DeviceConfig& cfg, const std::string& label);

  /// Persists `payload` (<= page_bytes) into `page`, charging base +
  /// bandwidth cost on the device channel. The payload is committed at
  /// completion time, not submission time.
  sim::Task<void> write_page(std::uint64_t page,
                             std::span<const std::byte> payload);

  /// Reads `page` into `out` (resized to the stored payload length).
  /// Returns false — with `out` untouched beyond a resize — when the page
  /// was never written or its payload no longer matches the stored CRC.
  sim::Task<bool> read_page(std::uint64_t page, std::vector<std::byte>& out);

  // --- fault-injection hooks (faultlab / tests) ------------------------
  void corrupt_page(std::uint64_t page);
  void tear_next_write() { tear_next_ = true; }

  [[nodiscard]] std::uint32_t page_bytes() const { return cfg_.page_bytes; }
  [[nodiscard]] std::uint64_t page_count() const { return cfg_.page_count; }
  [[nodiscard]] std::uint64_t pages_written() const { return pages_written_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t pages_read() const { return pages_read_; }
  [[nodiscard]] std::uint64_t crc_failures() const { return crc_failures_; }

 private:
  struct Page {
    std::vector<std::byte> data;
    std::uint32_t crc = 0;
    bool written = false;
  };

  /// Occupies the device channel for base + bytes/bw, queueing behind
  /// earlier operations (same shape as sim::Cpu).
  sim::Task<void> charge(sim::Nanos base, double bw_bytes_per_ns,
                         std::size_t bytes);

  sim::Simulator* sim_;
  DeviceConfig cfg_;
  std::vector<Page> pages_;
  sim::Nanos free_at_ = 0;
  bool tear_next_ = false;

  std::uint64_t pages_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t pages_read_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t crc_failures_ = 0;

  telemetry::Counter* ctr_pages_written_ = nullptr;
  telemetry::Counter* ctr_bytes_written_ = nullptr;
  telemetry::Counter* ctr_pages_read_ = nullptr;
  telemetry::Counter* ctr_bytes_read_ = nullptr;
  telemetry::Counter* ctr_crc_failures_ = nullptr;
};

}  // namespace heron::durable
