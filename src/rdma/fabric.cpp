#include "rdma/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "sim/log.hpp"

namespace heron::rdma {

namespace {

bool in_bounds(const MemoryRegion& region, std::uint64_t offset,
               std::uint64_t len) {
  return offset + len <= region.size() && offset + len >= offset;
}

}  // namespace

sim::Nanos Fabric::jitter(sim::Nanos base) {
  double scaled = static_cast<double>(base);
  if (model_.oversub_nodes != 0 && nodes_.size() > model_.oversub_nodes) {
    scaled *= model_.oversub_factor;
  }
  if (model_.jitter_sigma > 0.0) {
    scaled *= rng_.lognormal_mean(1.0, model_.jitter_sigma);
  }
  return static_cast<sim::Nanos>(scaled);
}

sim::Nanos Fabric::depart(std::int32_t initiator) {
  const sim::Nanos now = sim_->now();
  sim::Nanos& free_at = nic_free_at_[initiator];
  const sim::Nanos at = std::max(now + model_.post_overhead, free_at);
  free_at = at;
  return at;
}

sim::Nanos Fabric::arrival_on_channel(std::int32_t initiator,
                                      std::int32_t target,
                                      sim::Nanos proposed) {
  Channel& ch = channels_[{initiator, target}];
  const sim::Nanos at = std::max(proposed, ch.last_arrival);
  ch.last_arrival = at;
  return at;
}

sim::Task<Completion> Fabric::read(std::int32_t initiator, RAddr addr,
                                   std::span<std::byte> out) {
  ++stats_.reads;
  stats_.read_bytes += out.size();

  Node& target = node(addr.node);
  if (!in_bounds(target.region(addr.mr), addr.offset, out.size())) {
    ++stats_.failures;
    co_return Completion{Status::kBadAddress};
  }

  const sim::Nanos departed = depart(initiator);
  nic_free_at_[initiator] = departed;  // read request itself is tiny
  if (departed > sim_->now()) co_await sim_->sleep(departed - sim_->now());

  // Request propagates to the remote NIC; value is sampled there.
  const sim::Nanos arrive = arrival_on_channel(
      initiator, addr.node, departed + jitter(model_.read_base / 2));
  if (arrive > sim_->now()) co_await sim_->sleep(arrive - sim_->now());

  if (!target.alive()) {
    ++stats_.failures;
    const sim::Nanos err_at = departed + model_.failure_detect;
    if (err_at > sim_->now()) co_await sim_->sleep(err_at - sim_->now());
    co_return Completion{Status::kRemoteFailure};
  }

  // Atomic sample at arrival time (one event = one atomic step).
  const auto src = target.region(addr.mr).bytes().subspan(addr.offset, out.size());
  std::memcpy(out.data(), src.data(), out.size());

  // Response carries the payload back to the initiator.
  const sim::Nanos done_at =
      arrive + jitter(model_.read_base / 2) + model_.transfer_time(out.size());
  if (done_at > sim_->now()) co_await sim_->sleep(done_at - sim_->now());
  co_return Completion{Status::kOk};
}

void Fabric::deliver_write(std::int32_t target_id, RAddr addr,
                           std::vector<std::byte> data) {
  Node& target = node(target_id);
  if (!target.alive()) {
    ++stats_.failures;
    return;  // payload dropped; initiator (if waiting) sees the WC error
  }
  auto& region = target.region(addr.mr);
  auto dst = region.bytes().subspan(addr.offset, data.size());
  std::memcpy(dst.data(), data.data(), data.size());
  region.on_write().notify_all();
}

sim::Task<Completion> Fabric::write(std::int32_t initiator, RAddr addr,
                                    std::span<const std::byte> data) {
  ++stats_.writes;
  stats_.write_bytes += data.size();

  Node& target = node(addr.node);
  if (!in_bounds(target.region(addr.mr), addr.offset, data.size())) {
    ++stats_.failures;
    co_return Completion{Status::kBadAddress};
  }

  const sim::Nanos departed = depart(initiator);
  // Large payloads occupy the send NIC for their transfer duration.
  nic_free_at_[initiator] = departed + model_.transfer_time(data.size());
  if (departed > sim_->now()) co_await sim_->sleep(departed - sim_->now());

  const sim::Nanos arrive = arrival_on_channel(
      initiator, addr.node, departed + jitter(model_.write_base) +
                                model_.transfer_time(data.size()));
  if (arrive > sim_->now()) co_await sim_->sleep(arrive - sim_->now());

  if (!target.alive()) {
    ++stats_.failures;
    const sim::Nanos err_at = departed + model_.failure_detect;
    if (err_at > sim_->now()) co_await sim_->sleep(err_at - sim_->now());
    co_return Completion{Status::kRemoteFailure};
  }

  auto dst = target.region(addr.mr).bytes().subspan(addr.offset, data.size());
  std::memcpy(dst.data(), data.data(), data.size());
  target.region(addr.mr).on_write().notify_all();
  co_return Completion{Status::kOk};
}

void Fabric::write_async(std::int32_t initiator, RAddr addr,
                         std::span<const std::byte> data) {
  ++stats_.writes;
  stats_.write_bytes += data.size();

  Node& target = node(addr.node);
  if (!in_bounds(target.region(addr.mr), addr.offset, data.size())) {
    ++stats_.failures;
    return;
  }

  const sim::Nanos departed = depart(initiator);
  nic_free_at_[initiator] = departed + model_.transfer_time(data.size());
  const sim::Nanos arrive = arrival_on_channel(
      initiator, addr.node, departed + jitter(model_.write_base) +
                                model_.transfer_time(data.size()));

  std::vector<std::byte> payload(data.begin(), data.end());
  const std::int32_t target_id = addr.node;
  sim_->schedule_at(arrive, [this, target_id, addr,
                             payload = std::move(payload)]() mutable {
    deliver_write(target_id, addr, std::move(payload));
  });
}

}  // namespace heron::rdma
