#include "rdma/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "sim/log.hpp"

namespace heron::rdma {

namespace {

bool in_bounds(const MemoryRegion& region, std::uint64_t offset,
               std::uint64_t len) {
  return offset + len <= region.size() && offset + len >= offset;
}

}  // namespace

Fabric::Fabric(sim::Simulator& sim, LatencyModel model, std::uint64_t seed)
    : sim_(&sim),
      model_(model),
      seed_(seed),
      rng_(seed),
      hub_(std::make_unique<telemetry::Hub>(sim)) {
  auto& m = hub_->metrics;
  ctr_reads_ = &m.counter("rdma", "read_ops");
  ctr_writes_ = &m.counter("rdma", "write_ops");
  ctr_writes_async_ = &m.counter("rdma", "write_async_ops");
  ctr_read_bytes_ = &m.counter("rdma", "read_bytes");
  ctr_write_bytes_ = &m.counter("rdma", "write_bytes");
  ctr_errors_ = &m.counter("rdma", "completion_errors");
  ctr_bad_addr_ = &m.counter("rdma", "bad_address");
  hist_queue_wait_ = &m.histogram("rdma", "nic_queue_wait_ns");
}

sim::Nanos Fabric::jitter(sim::Nanos base) {
  double scaled = static_cast<double>(base);
  if (model_.oversub_nodes != 0 && nodes_.size() > model_.oversub_nodes) {
    scaled *= model_.oversub_factor;
  }
  if (latency_factor_ != 1.0) scaled *= latency_factor_;
  if (model_.jitter_sigma > 0.0) {
    scaled *= rng_.lognormal_mean(1.0, model_.jitter_sigma);
  }
  return static_cast<sim::Nanos>(scaled);
}

sim::Nanos Fabric::xfer_time(std::uint64_t bytes) const {
  sim::Nanos t = model_.transfer_time(bytes);
  if (bandwidth_factor_ > 0.0 && bandwidth_factor_ != 1.0) {
    t = static_cast<sim::Nanos>(static_cast<double>(t) / bandwidth_factor_);
  }
  return t;
}

void Fabric::partition(std::vector<std::int32_t> nodes, sim::Nanos heal_at) {
  std::sort(nodes.begin(), nodes.end());
  partitioned_ = std::move(nodes);
  partition_heal_at_ = heal_at;
}

bool Fabric::crosses_partition(std::int32_t a, std::int32_t b) const {
  const bool a_in = std::binary_search(partitioned_.begin(),
                                       partitioned_.end(), a);
  const bool b_in = std::binary_search(partitioned_.begin(),
                                       partitioned_.end(), b);
  return a_in != b_in;
}

sim::Nanos Fabric::depart(std::int32_t initiator) {
  const sim::Nanos now = sim_->now();
  sim::Nanos& free_at = nic_free_at_[initiator];
  const sim::Nanos at = std::max(now + model_.post_overhead, free_at);
  // Send-side serialization wait: how long the verb sat behind earlier
  // posts before the NIC picked it up.
  hist_queue_wait_->observe(at - (now + model_.post_overhead));
  free_at = at;
  return at;
}

sim::Nanos Fabric::arrival_on_channel(std::int32_t initiator,
                                      std::int32_t target,
                                      sim::Nanos proposed) {
  // Traffic crossing an active partition stalls until the cut heals; the
  // channel's last_arrival then keeps the queued packets in order.
  if (partition_active() && crosses_partition(initiator, target)) {
    proposed = std::max(proposed, partition_heal_at_);
  }
  Channel& ch = channels_[{initiator, target}];
  const sim::Nanos at = std::max(proposed, ch.last_arrival);
  ch.last_arrival = at;
  return at;
}

sim::Task<Completion> Fabric::read(std::int32_t initiator, RAddr addr,
                                   std::span<std::byte> out) {
  ++stats_.reads;
  stats_.read_bytes += out.size();
  ctr_reads_->inc();
  ctr_read_bytes_->inc(out.size());
  auto span = hub_->tracer.span("rdma", "read", initiator);
  span.arg("target", static_cast<std::uint64_t>(addr.node));
  span.arg("bytes", out.size());

  Node& target = node(addr.node);
  if (!in_bounds(target.region(addr.mr), addr.offset, out.size())) {
    ++stats_.failures;
    ctr_bad_addr_->inc();
    span.arg("bad_address", 1);
    co_return Completion{Status::kBadAddress};
  }

  const sim::Nanos departed = depart(initiator);
  nic_free_at_[initiator] = departed;  // read request itself is tiny
  if (departed > sim_->now()) co_await sim_->sleep(departed - sim_->now());

  // Request propagates to the remote NIC; value is sampled there.
  const sim::Nanos arrive = arrival_on_channel(
      initiator, addr.node, departed + jitter(model_.read_base / 2));
  if (arrive > sim_->now()) co_await sim_->sleep(arrive - sim_->now());

  if (!target.alive()) {
    ++stats_.failures;
    ctr_errors_->inc();
    span.arg("wc_error", 1);
    const sim::Nanos err_at = departed + model_.failure_detect;
    if (err_at > sim_->now()) co_await sim_->sleep(err_at - sim_->now());
    co_return Completion{Status::kRemoteFailure};
  }

  // Atomic sample at arrival time (one event = one atomic step).
  const auto src = target.region(addr.mr).bytes().subspan(addr.offset, out.size());
  std::memcpy(out.data(), src.data(), out.size());

  // Response carries the payload back to the initiator.
  const sim::Nanos done_at =
      arrive + jitter(model_.read_base / 2) + xfer_time(out.size());
  if (done_at > sim_->now()) co_await sim_->sleep(done_at - sim_->now());
  co_return Completion{Status::kOk};
}

void Fabric::deliver_write(std::int32_t target_id, RAddr addr,
                           std::vector<std::byte> data) {
  Node& target = node(target_id);
  if (!target.alive()) {
    ++stats_.failures;
    ctr_errors_->inc();
    hub_->tracer.instant(
        "rdma", "write_dropped", target_id,
        {telemetry::Arg{"mr", static_cast<std::uint64_t>(addr.mr.value)},
         telemetry::Arg{"bytes", data.size()}});
    return;  // payload dropped; initiator (if waiting) sees the WC error
  }
  auto& region = target.region(addr.mr);
  auto dst = region.bytes().subspan(addr.offset, data.size());
  std::memcpy(dst.data(), data.data(), data.size());
  region.on_write().notify_all();
}

sim::Task<Completion> Fabric::write(std::int32_t initiator, RAddr addr,
                                    std::span<const std::byte> data) {
  ++stats_.writes;
  stats_.write_bytes += data.size();
  ctr_writes_->inc();
  ctr_write_bytes_->inc(data.size());
  auto span = hub_->tracer.span("rdma", "write", initiator);
  span.arg("target", static_cast<std::uint64_t>(addr.node));
  span.arg("bytes", data.size());

  Node& target = node(addr.node);
  if (!in_bounds(target.region(addr.mr), addr.offset, data.size())) {
    ++stats_.failures;
    ctr_bad_addr_->inc();
    span.arg("bad_address", 1);
    co_return Completion{Status::kBadAddress};
  }

  const sim::Nanos departed = depart(initiator);
  // Large payloads occupy the send NIC for their transfer duration.
  nic_free_at_[initiator] = departed + xfer_time(data.size());
  if (departed > sim_->now()) co_await sim_->sleep(departed - sim_->now());

  const sim::Nanos arrive = arrival_on_channel(
      initiator, addr.node, departed + jitter(model_.write_base) +
                                xfer_time(data.size()));
  if (arrive > sim_->now()) co_await sim_->sleep(arrive - sim_->now());

  if (!target.alive()) {
    ++stats_.failures;
    ctr_errors_->inc();
    span.arg("wc_error", 1);
    const sim::Nanos err_at = departed + model_.failure_detect;
    if (err_at > sim_->now()) co_await sim_->sleep(err_at - sim_->now());
    co_return Completion{Status::kRemoteFailure};
  }

  auto dst = target.region(addr.mr).bytes().subspan(addr.offset, data.size());
  std::memcpy(dst.data(), data.data(), data.size());
  target.region(addr.mr).on_write().notify_all();
  co_return Completion{Status::kOk};
}

void Fabric::write_async(std::int32_t initiator, RAddr addr,
                         std::span<const std::byte> data) {
  ++stats_.writes;
  stats_.write_bytes += data.size();
  ctr_writes_async_->inc();
  ctr_write_bytes_->inc(data.size());

  Node& target = node(addr.node);
  if (!in_bounds(target.region(addr.mr), addr.offset, data.size())) {
    ++stats_.failures;
    ctr_bad_addr_->inc();
    hub_->tracer.instant("rdma", "write_async_bad_address", initiator,
                         {telemetry::Arg{"target",
                                         static_cast<std::uint64_t>(addr.node)},
                          telemetry::Arg{"bytes", data.size()}});
    return;
  }

  const sim::Nanos departed = depart(initiator);
  nic_free_at_[initiator] = departed + xfer_time(data.size());
  const sim::Nanos arrive = arrival_on_channel(
      initiator, addr.node, departed + jitter(model_.write_base) +
                                xfer_time(data.size()));

  // The arrival instant is known synchronously, so the span covers the
  // wire flight of the fire-and-forget write.
  {
    auto span = hub_->tracer.span("rdma", "write_async", initiator);
    span.arg("target", static_cast<std::uint64_t>(addr.node));
    span.arg("bytes", data.size());
    span.finish_at(arrive);
  }

  std::vector<std::byte> payload(data.begin(), data.end());
  const std::int32_t target_id = addr.node;
  sim_->schedule_at(arrive, [this, target_id, addr,
                             payload = std::move(payload)]() mutable {
    deliver_write(target_id, addr, std::move(payload));
  });
}

}  // namespace heron::rdma
