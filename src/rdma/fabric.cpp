#include "rdma/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "sim/log.hpp"

namespace heron::rdma {

namespace {

bool in_bounds(const MemoryRegion& region, std::uint64_t offset,
               std::uint64_t len) {
  return offset + len <= region.size() && offset + len >= offset;
}

/// Wire footprint charged for the request half of a READ (header +
/// addressing); the payload rides the response.
constexpr std::uint64_t kVerbHeaderBytes = 64;

}  // namespace

Fabric::Fabric(sim::Simulator& sim, LatencyModel model, std::uint64_t seed)
    : sim_(&sim),
      model_(model),
      seed_(seed),
      rng_(seed),
      hub_(std::make_unique<telemetry::Hub>(sim)) {
  auto& m = hub_->metrics;
  ctr_reads_ = &m.counter("rdma", "read_ops");
  ctr_writes_ = &m.counter("rdma", "write_ops");
  ctr_writes_async_ = &m.counter("rdma", "write_async_ops");
  ctr_read_bytes_ = &m.counter("rdma", "read_bytes");
  ctr_write_bytes_ = &m.counter("rdma", "write_bytes");
  ctr_errors_ = &m.counter("rdma", "completion_errors");
  ctr_bad_addr_ = &m.counter("rdma", "bad_address");
  ctr_credit_stalls_ = &m.counter("rdma", "credit_stalls");
  ctr_uplink_queued_ = &m.counter("rdma", "uplink_queued");
  ctr_priority_ops_ = &m.counter("rdma", "priority_ops");
  ctr_injected_ = &m.counter("rdma", "injected_ops");
  hist_queue_wait_ = &m.histogram("rdma", "nic_queue_wait_ns");
  hist_credit_wait_ = &m.histogram("rdma", "credit_wait_ns");
  hist_uplink_wait_ = &m.histogram("rdma", "uplink_wait_ns");
}

void Fabric::reset_stats() {
  stats_ = {};
  hist_queue_wait_->reset();
  hist_credit_wait_->reset();
  hist_uplink_wait_->reset();
  for (RackLink& link : racks_) {
    link.bytes = 0;
    link.busy_ns = 0;
  }
  std::fill(credit_stalls_by_node_.begin(), credit_stalls_by_node_.end(),
            std::uint64_t{0});
}

sim::Nanos Fabric::jitter(sim::Nanos base) {
  double scaled = static_cast<double>(base);
  // The flat oversubscription scalar only applies when the structural
  // topology is off: with racks configured, crossing traffic pays the
  // shared-uplink FIFO instead.
  if (model_.rack_size == 0 && model_.oversub_nodes != 0 &&
      nodes_.size() > model_.oversub_nodes) {
    scaled *= model_.oversub_factor;
  }
  if (latency_factor_ != 1.0) scaled *= latency_factor_;
  if (model_.jitter_sigma > 0.0) {
    scaled *= rng_.lognormal_mean(1.0, model_.jitter_sigma);
  }
  return static_cast<sim::Nanos>(scaled);
}

sim::Nanos Fabric::xfer_time(std::uint64_t bytes) const {
  sim::Nanos t = model_.transfer_time(bytes);
  if (bandwidth_factor_ > 0.0 && bandwidth_factor_ != 1.0) {
    t = static_cast<sim::Nanos>(static_cast<double>(t) / bandwidth_factor_);
  }
  return t;
}

sim::Nanos Fabric::uplink_time(std::uint64_t bytes) const {
  if (bytes == 0) return 0;
  double bw = model_.uplink_bytes_per_ns();
  if (bandwidth_factor_ > 0.0) bw *= bandwidth_factor_;
  const double t = static_cast<double>(bytes) / bw;
  const auto whole = static_cast<sim::Nanos>(t);
  const sim::Nanos up = (static_cast<double>(whole) < t) ? whole + 1 : whole;
  return up > 0 ? up : 1;
}

void Fabric::partition(std::vector<std::int32_t> nodes, sim::Nanos heal_at) {
  std::sort(nodes.begin(), nodes.end());
  partitioned_ = std::move(nodes);
  partition_heal_at_ = heal_at;
}

bool Fabric::crosses_partition(std::int32_t a, std::int32_t b) const {
  const bool a_in = std::binary_search(partitioned_.begin(),
                                       partitioned_.end(), a);
  const bool b_in = std::binary_search(partitioned_.begin(),
                                       partitioned_.end(), b);
  return a_in != b_in;
}

sim::Nanos Fabric::depart(std::int32_t initiator) {
  const sim::Nanos now = sim_->now();
  sim::Nanos& free_at = nic_free_at_[initiator];
  const sim::Nanos at = std::max(now + model_.post_overhead, free_at);
  // Send-side serialization wait: how long the verb sat behind earlier
  // posts before the NIC picked it up.
  hist_queue_wait_->observe(at - (now + model_.post_overhead));
  free_at = at;
  return at;
}

Fabric::RackLink& Fabric::rack_link(int rack) {
  if (racks_.size() <= static_cast<std::size_t>(rack)) {
    racks_.resize(static_cast<std::size_t>(rack) + 1);
  }
  return racks_[static_cast<std::size_t>(rack)];
}

sim::Nanos Fabric::link_transit(std::int32_t initiator, std::int32_t target,
                                std::uint64_t bytes, sim::Nanos ready,
                                Lane lane) {
  if (model_.rack_size == 0) return ready;
  const int src = rack_of(initiator);
  const int dst = rack_of(target);
  if (src == dst) return ready;  // intra-rack: ToR not crossed
  const sim::Nanos hop = jitter(model_.tor_hop);
  if (model_.priority_lanes && lane == Lane::kControl) {
    // QoS class: skips the FIFO, pays only the switch hop.
    ++stats_.priority_ops;
    ctr_priority_ops_->inc();
    return ready + hop;
  }
  // Size the vector before taking both references: the second rack_link
  // call would otherwise reallocate and dangle the first.
  rack_link(std::max(src, dst));
  RackLink& su = racks_[static_cast<std::size_t>(src)];
  RackLink& du = racks_[static_cast<std::size_t>(dst)];
  const sim::Nanos start = std::max({ready, su.free_at, du.free_at});
  const sim::Nanos wait = start - ready;
  if (wait > 0) {
    ++stats_.uplink_queued;
    ctr_uplink_queued_->inc();
    hist_uplink_wait_->observe(wait);
  }
  const sim::Nanos occupy = uplink_time(bytes);
  // The transfer crosses the source uplink and the destination downlink
  // back-to-back; both rack links are held for its duration, so incast
  // converging on one rack serializes there no matter where it started.
  su.free_at = du.free_at = start + occupy;
  su.bytes += bytes;
  du.bytes += bytes;
  su.busy_ns += static_cast<std::uint64_t>(occupy);
  du.busy_ns += static_cast<std::uint64_t>(occupy);
  return start + occupy + hop;
}

sim::Nanos Fabric::arrival_on_channel(std::int32_t initiator,
                                      std::int32_t target, Lane lane,
                                      sim::Nanos proposed) {
  // Traffic crossing an active partition stalls until the cut heals; the
  // channel's last_arrival then keeps the queued packets in order.
  if (partition_active() && crosses_partition(initiator, target)) {
    proposed = std::max(proposed, partition_heal_at_);
  }
  Qp& qp = qp_for(initiator, target, lane);
  const sim::Nanos at = std::max(proposed, qp.last_arrival);
  qp.last_arrival = at;
  return at;
}

sim::Nanos Fabric::uplink_backlog(std::int32_t node_id) const {
  const int rack = rack_of(node_id);
  if (rack < 0 || racks_.size() <= static_cast<std::size_t>(rack)) return 0;
  const sim::Nanos free_at = racks_[static_cast<std::size_t>(rack)].free_at;
  const sim::Nanos now = sim_->now();
  return free_at > now ? free_at - now : 0;
}

std::uint64_t Fabric::uplink_bytes(int rack) const {
  if (rack < 0 || racks_.size() <= static_cast<std::size_t>(rack)) return 0;
  return racks_[static_cast<std::size_t>(rack)].bytes;
}

std::uint64_t Fabric::uplink_busy_ns(int rack) const {
  if (rack < 0 || racks_.size() <= static_cast<std::size_t>(rack)) return 0;
  return racks_[static_cast<std::size_t>(rack)].busy_ns;
}

std::uint64_t Fabric::credit_stalls(std::int32_t node_id) const {
  const auto i = static_cast<std::size_t>(node_id);
  return i < credit_stalls_by_node_.size() ? credit_stalls_by_node_[i] : 0;
}

std::size_t Fabric::credit_queue_depth(std::int32_t node_id) const {
  std::size_t depth = 0;
  for (const auto& [key, qp] : qps_) {
    if (std::get<0>(key) == node_id) depth += qp.waiters.size();
  }
  return depth;
}

void Fabric::note_credit_stall(std::int32_t initiator) {
  ++stats_.credit_stalls;
  ctr_credit_stalls_->inc();
  const auto i = static_cast<std::size_t>(initiator);
  if (credit_stalls_by_node_.size() <= i) {
    credit_stalls_by_node_.resize(i + 1, 0);
  }
  ++credit_stalls_by_node_[i];
}

void Fabric::with_credit(Qp& qp, bool gated, std::int32_t initiator,
                         std::function<void()> post) {
  if (!gated) {
    post();
    return;
  }
  if (qp.waiters.empty() && qp.outstanding < model_.credit_window) {
    ++qp.outstanding;
    post();
    return;
  }
  note_credit_stall(initiator);
  qp.waiters.emplace_back(sim_->now(), std::move(post));
}

void Fabric::release_credit(Qp& qp, bool gated) {
  if (!gated) return;
  if (!qp.waiters.empty()) {
    // Hand the credit straight to the head of the software queue;
    // `outstanding` stays constant across the transfer. Resume as a fresh
    // event so the releaser's frame never re-enters the waiter.
    auto [queued_at, go] = std::move(qp.waiters.front());
    qp.waiters.pop_front();
    hist_credit_wait_->observe(sim_->now() - queued_at);
    sim_->schedule(0, std::move(go));
    return;
  }
  assert(qp.outstanding > 0);
  if (qp.outstanding > 0) --qp.outstanding;
}

sim::Task<Completion> Fabric::read(std::int32_t initiator, RAddr addr,
                                   std::span<std::byte> out, Lane lane) {
  ++stats_.reads;
  stats_.read_bytes += out.size();
  ctr_reads_->inc();
  ctr_read_bytes_->inc(out.size());
  auto span = hub_->tracer.span("rdma", "read", initiator);
  span.arg("target", static_cast<std::uint64_t>(addr.node));
  span.arg("bytes", out.size());

  Node& target = node(addr.node);
  if (!in_bounds(target.region(addr.mr), addr.offset, out.size())) {
    ++stats_.failures;
    ctr_bad_addr_->inc();
    span.arg("bad_address", 1);
    co_return Completion{Status::kBadAddress};
  }

  const bool gated = credit_gated(lane);
  co_await CreditGate{this, &qp_for(initiator, addr.node, lane), initiator,
                      gated};

  const sim::Nanos departed = depart(initiator);
  nic_free_at_[initiator] = departed;  // read request itself is tiny
  if (departed > sim_->now()) co_await sim_->sleep(departed - sim_->now());

  // Request propagates to the remote NIC; value is sampled there.
  const sim::Nanos arrive = arrival_on_channel(
      initiator, addr.node, lane,
      link_transit(initiator, addr.node, kVerbHeaderBytes,
                   departed + jitter(model_.read_base / 2), lane));
  if (arrive > sim_->now()) co_await sim_->sleep(arrive - sim_->now());

  if (!target.alive()) {
    ++stats_.failures;
    ctr_errors_->inc();
    span.arg("wc_error", 1);
    const sim::Nanos err_at = departed + model_.failure_detect;
    if (err_at > sim_->now()) co_await sim_->sleep(err_at - sim_->now());
    release_credit(qp_for(initiator, addr.node, lane), gated);
    co_return Completion{Status::kRemoteFailure};
  }

  // Atomic sample at arrival time (one event = one atomic step).
  const auto src = target.region(addr.mr).bytes().subspan(addr.offset, out.size());
  std::memcpy(out.data(), src.data(), out.size());

  // Response carries the payload back to the initiator.
  const sim::Nanos done_at = link_transit(
      addr.node, initiator, out.size(),
      arrive + jitter(model_.read_base / 2) + xfer_time(out.size()), lane);
  if (done_at > sim_->now()) co_await sim_->sleep(done_at - sim_->now());
  release_credit(qp_for(initiator, addr.node, lane), gated);
  co_return Completion{Status::kOk};
}

sim::Task<Completion> Fabric::cas(std::int32_t initiator, RAddr addr,
                                  std::uint64_t expected,
                                  std::uint64_t desired,
                                  std::uint64_t* observed, Lane lane) {
  // Atomics ride the READ timing path: tiny request out, old value back.
  ++stats_.reads;
  stats_.read_bytes += sizeof(std::uint64_t);
  ctr_reads_->inc();
  ctr_read_bytes_->inc(sizeof(std::uint64_t));
  auto span = hub_->tracer.span("rdma", "cas", initiator);
  span.arg("target", static_cast<std::uint64_t>(addr.node));

  Node& target = node(addr.node);
  if (!in_bounds(target.region(addr.mr), addr.offset,
                 sizeof(std::uint64_t))) {
    ++stats_.failures;
    ctr_bad_addr_->inc();
    span.arg("bad_address", 1);
    co_return Completion{Status::kBadAddress};
  }

  const bool gated = credit_gated(lane);
  co_await CreditGate{this, &qp_for(initiator, addr.node, lane), initiator,
                      gated};

  const sim::Nanos departed = depart(initiator);
  nic_free_at_[initiator] = departed;  // atomic request is tiny
  if (departed > sim_->now()) co_await sim_->sleep(departed - sim_->now());

  const sim::Nanos arrive = arrival_on_channel(
      initiator, addr.node, lane,
      link_transit(initiator, addr.node, kVerbHeaderBytes,
                   departed + jitter(model_.read_base / 2), lane));
  if (arrive > sim_->now()) co_await sim_->sleep(arrive - sim_->now());

  if (!target.alive()) {
    ++stats_.failures;
    ctr_errors_->inc();
    span.arg("wc_error", 1);
    const sim::Nanos err_at = departed + model_.failure_detect;
    if (err_at > sim_->now()) co_await sim_->sleep(err_at - sim_->now());
    release_credit(qp_for(initiator, addr.node, lane), gated);
    co_return Completion{Status::kRemoteFailure};
  }

  // Compare-and-swap at arrival time (one event = one atomic step).
  auto word = target.region(addr.mr).bytes().subspan(addr.offset,
                                                     sizeof(std::uint64_t));
  std::uint64_t old = 0;
  std::memcpy(&old, word.data(), sizeof(old));
  if (observed != nullptr) *observed = old;
  if (old == expected) {
    std::memcpy(word.data(), &desired, sizeof(desired));
    target.region(addr.mr).on_write().notify_all();
  } else {
    span.arg("cas_miss", 1);
  }

  // Response carries the pre-op value back to the initiator.
  const sim::Nanos done_at = link_transit(
      addr.node, initiator, sizeof(std::uint64_t),
      arrive + jitter(model_.read_base / 2) + xfer_time(sizeof(std::uint64_t)),
      lane);
  if (done_at > sim_->now()) co_await sim_->sleep(done_at - sim_->now());
  release_credit(qp_for(initiator, addr.node, lane), gated);
  co_return Completion{Status::kOk};
}

void Fabric::deliver_write(std::int32_t target_id, RAddr addr,
                           std::vector<std::byte> data) {
  Node& target = node(target_id);
  if (!target.alive()) {
    ++stats_.failures;
    ctr_errors_->inc();
    hub_->tracer.instant(
        "rdma", "write_dropped", target_id,
        {telemetry::Arg{"mr", static_cast<std::uint64_t>(addr.mr.value)},
         telemetry::Arg{"bytes", data.size()}});
    return;  // payload dropped; initiator (if waiting) sees the WC error
  }
  auto& region = target.region(addr.mr);
  auto dst = region.bytes().subspan(addr.offset, data.size());
  std::memcpy(dst.data(), data.data(), data.size());
  region.on_write().notify_all();
}

sim::Task<Completion> Fabric::write(std::int32_t initiator, RAddr addr,
                                    std::span<const std::byte> data,
                                    Lane lane) {
  ++stats_.writes;
  stats_.write_bytes += data.size();
  ctr_writes_->inc();
  ctr_write_bytes_->inc(data.size());
  auto span = hub_->tracer.span("rdma", "write", initiator);
  span.arg("target", static_cast<std::uint64_t>(addr.node));
  span.arg("bytes", data.size());

  Node& target = node(addr.node);
  if (!in_bounds(target.region(addr.mr), addr.offset, data.size())) {
    ++stats_.failures;
    ctr_bad_addr_->inc();
    span.arg("bad_address", 1);
    co_return Completion{Status::kBadAddress};
  }

  const bool gated = credit_gated(lane);
  co_await CreditGate{this, &qp_for(initiator, addr.node, lane), initiator,
                      gated};

  const sim::Nanos departed = depart(initiator);
  // Large payloads occupy the send NIC for their transfer duration.
  nic_free_at_[initiator] = departed + xfer_time(data.size());
  if (departed > sim_->now()) co_await sim_->sleep(departed - sim_->now());

  const sim::Nanos arrive = arrival_on_channel(
      initiator, addr.node, lane,
      link_transit(initiator, addr.node, data.size(),
                   departed + jitter(model_.write_base) +
                       xfer_time(data.size()),
                   lane));
  if (arrive > sim_->now()) co_await sim_->sleep(arrive - sim_->now());
  release_credit(qp_for(initiator, addr.node, lane), gated);

  if (!target.alive()) {
    ++stats_.failures;
    ctr_errors_->inc();
    span.arg("wc_error", 1);
    const sim::Nanos err_at = departed + model_.failure_detect;
    if (err_at > sim_->now()) co_await sim_->sleep(err_at - sim_->now());
    co_return Completion{Status::kRemoteFailure};
  }

  auto dst = target.region(addr.mr).bytes().subspan(addr.offset, data.size());
  std::memcpy(dst.data(), data.data(), data.size());
  target.region(addr.mr).on_write().notify_all();
  co_return Completion{Status::kOk};
}

void Fabric::write_async(std::int32_t initiator, RAddr addr,
                         std::span<const std::byte> data, Lane lane) {
  ++stats_.writes;
  stats_.write_bytes += data.size();
  ctr_writes_async_->inc();
  ctr_write_bytes_->inc(data.size());

  Node& target = node(addr.node);
  if (!in_bounds(target.region(addr.mr), addr.offset, data.size())) {
    ++stats_.failures;
    ctr_bad_addr_->inc();
    hub_->tracer.instant("rdma", "write_async_bad_address", initiator,
                         {telemetry::Arg{"target",
                                         static_cast<std::uint64_t>(addr.node)},
                          telemetry::Arg{"bytes", data.size()}});
    return;
  }

  const bool gated = credit_gated(lane);
  std::vector<std::byte> payload(data.begin(), data.end());
  // The post body runs when a credit is available — immediately when the
  // QP is uncontended, otherwise later from the FIFO software queue (which
  // preserves post order, and so RC in-order delivery).
  with_credit(
      qp_for(initiator, addr.node, lane), gated, initiator,
      [this, initiator, addr, lane, gated,
       payload = std::move(payload)]() mutable {
        const sim::Nanos departed = depart(initiator);
        nic_free_at_[initiator] = departed + xfer_time(payload.size());
        const sim::Nanos arrive = arrival_on_channel(
            initiator, addr.node, lane,
            link_transit(initiator, addr.node, payload.size(),
                         departed + jitter(model_.write_base) +
                             xfer_time(payload.size()),
                         lane));

        // The arrival instant is known synchronously, so the span covers
        // the wire flight of the fire-and-forget write.
        {
          auto span = hub_->tracer.span("rdma", "write_async", initiator);
          span.arg("target", static_cast<std::uint64_t>(addr.node));
          span.arg("bytes", payload.size());
          span.finish_at(arrive);
        }

        const std::int32_t target_id = addr.node;
        sim_->schedule_at(arrive, [this, initiator, target_id, addr, lane,
                                   gated,
                                   payload = std::move(payload)]() mutable {
          release_credit(qp_for(initiator, target_id, lane), gated);
          deliver_write(target_id, addr, std::move(payload));
        });
      });
}

void Fabric::inject_flow(std::int32_t initiator, std::int32_t target,
                         std::uint64_t bytes, Lane lane) {
  ++stats_.injected_ops;
  stats_.injected_bytes += bytes;
  ctr_injected_->inc();

  const bool gated = credit_gated(lane);
  with_credit(qp_for(initiator, target, lane), gated, initiator,
              [this, initiator, target, bytes, lane, gated] {
                post_flow(initiator, target, bytes, lane, gated);
              });
}

void Fabric::post_flow(std::int32_t initiator, std::int32_t target,
                       std::uint64_t bytes, Lane lane, bool gated) {
  const sim::Nanos departed = depart(initiator);
  nic_free_at_[initiator] = departed + xfer_time(bytes);
  const sim::Nanos arrive = arrival_on_channel(
      initiator, target, lane,
      link_transit(initiator, target, bytes,
                   departed + jitter(model_.write_base) + xfer_time(bytes),
                   lane));
  sim_->schedule_at(arrive, [this, initiator, target, lane, gated] {
    release_credit(qp_for(initiator, target, lane), gated);
  });
}

}  // namespace heron::rdma
