// Helpers to move trivially-copyable records in and out of registered
// memory regions. All protocol state that crosses the fabric is a POD
// record stored at a computed offset.
#pragma once

#include <cassert>
#include <cstring>
#include <span>
#include <type_traits>

namespace heron::rdma {

template <typename T>
  requires std::is_trivially_copyable_v<T>
T load_pod(std::span<const std::byte> region, std::uint64_t offset) {
  assert(offset + sizeof(T) <= region.size());
  T out;
  std::memcpy(&out, region.data() + offset, sizeof(T));
  return out;
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
void store_pod(std::span<std::byte> region, std::uint64_t offset,
               const T& value) {
  assert(offset + sizeof(T) <= region.size());
  std::memcpy(region.data() + offset, &value, sizeof(T));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::span<const std::byte> pod_bytes(const T& value) {
  return {reinterpret_cast<const std::byte*>(&value), sizeof(T)};
}

}  // namespace heron::rdma
