// RDMA-registered memory regions.
//
// A simulated host (Node) registers byte regions; remote peers address
// them as (node, region, offset). Each region carries a Notifier that
// fires whenever a remote write lands, standing in for the busy-poll loop
// a real Heron replica runs over its registered memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/notifier.hpp"

namespace heron::rdma {

/// Handle to a registered memory region (index within its node).
struct MrId {
  std::uint32_t value = UINT32_MAX;

  [[nodiscard]] bool valid() const { return value != UINT32_MAX; }
  bool operator==(const MrId&) const = default;
};

/// A remote (or local) RDMA address: node + region + byte offset.
struct RAddr {
  std::int32_t node = -1;
  MrId mr{};
  std::uint64_t offset = 0;

  bool operator==(const RAddr&) const = default;
};

/// One registered region: owned bytes + wake-on-write notifier.
class MemoryRegion {
 public:
  MemoryRegion(sim::Simulator& sim, std::size_t size)
      : bytes_(size), notifier_(sim) {}

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] std::span<std::byte> bytes() { return bytes_; }
  [[nodiscard]] std::span<const std::byte> bytes() const { return bytes_; }

  /// Fired after every remote write into this region.
  [[nodiscard]] sim::Notifier& on_write() { return notifier_; }

 private:
  std::vector<std::byte> bytes_;
  sim::Notifier notifier_;
};

}  // namespace heron::rdma
