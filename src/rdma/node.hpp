// A simulated host process attached to the RDMA fabric.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "rdma/memory.hpp"
#include "sim/cpu.hpp"
#include "sim/simulator.hpp"

namespace heron::rdma {

class Node {
 public:
  Node(sim::Simulator& sim, std::int32_t id)
      : sim_(&sim), id_(id), cpu_(sim) {}

  [[nodiscard]] std::int32_t id() const { return id_; }
  [[nodiscard]] bool alive() const { return alive_; }

  /// Crash-stop: the node stops executing and all in-flight / future
  /// one-sided operations targeting it complete with kRemoteFailure.
  void crash() { alive_ = false; }

  /// Rejoins the fabric (used by recovery experiments). Registered memory
  /// survives the crash (the paper's laggers are slow, not wiped).
  void restart() { alive_ = true; }

  /// Registers `size` bytes and returns the region handle.
  MrId register_region(std::size_t size) {
    regions_.push_back(std::make_unique<MemoryRegion>(*sim_, size));
    return MrId{static_cast<std::uint32_t>(regions_.size() - 1)};
  }

  [[nodiscard]] MemoryRegion& region(MrId mr) {
    assert(mr.valid() && mr.value < regions_.size());
    return *regions_[mr.value];
  }
  [[nodiscard]] const MemoryRegion& region(MrId mr) const {
    assert(mr.valid() && mr.value < regions_.size());
    return *regions_[mr.value];
  }

  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }

  /// The node's (single) core; protocol handling and request execution
  /// charge their CPU time here and therefore serialize.
  [[nodiscard]] sim::Cpu& cpu() { return cpu_; }

 private:
  sim::Simulator* sim_;
  std::int32_t id_;
  sim::Cpu cpu_;
  bool alive_ = true;
  std::vector<std::unique_ptr<MemoryRegion>> regions_;
};

}  // namespace heron::rdma
