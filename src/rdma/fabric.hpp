// The simulated RDMA fabric: nodes + reliable-connection verbs.
//
// Semantics modeled after libibverbs RC queue pairs, which is all Heron
// relies on (§II-C of the paper):
//   * one-sided READ / WRITE that never involve the remote CPU;
//   * reliable, in-order delivery per (initiator, target, lane) channel;
//   * remote crash surfaces as a work-completion error (the paper's
//     RDMA_EXCEPTION) after a detection delay;
//   * 8-byte aligned accesses are atomic. The simulator is stricter: an
//     entire op lands in one event, so any span is observed atomically.
//
// The latency model is calibrated against the paper's testbed (ConnectX-4,
// 25 Gbps): a per-verb base cost, a bandwidth term, and optional
// multiplicative jitter. Congestion is modeled at three points:
//   * the initiator NIC — verbs posted back-to-back serialize on the send
//     side;
//   * per-QP credit windows (`credit_window`) — a bounded number of
//     outstanding verbs per (initiator, target, lane); further posts queue
//     FIFO in software until a completion returns a credit, instead of
//     charging latency independently;
//   * a two-level ToR topology (`rack_size` / `oversub_ratio`) — traffic
//     crossing racks serializes through a shared uplink FIFO whose
//     bandwidth is the rack's aggregate NIC rate divided by the
//     oversubscription ratio. This replaces the flat `oversub_factor`
//     scalar of §V-C1 with a model under which congestion collapse,
//     leader incast and victim-flow interference are reproducible.
//
// Control traffic (lease renewals, epoch markers, failure-detector probes)
// can be posted on Lane::kControl: a priority lane that bypasses credit
// gating and the shared-uplink FIFO — the simulated analogue of a
// dedicated QoS queue pair on a lossless priority class.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <tuple>
#include <vector>

#include "rdma/memory.hpp"
#include "rdma/node.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "telemetry/hub.hpp"

namespace heron::rdma {

enum class Status : std::uint8_t {
  kOk = 0,
  kRemoteFailure = 1,  // target crashed: WC error on the initiator QP
  kBadAddress = 2,     // out-of-bounds access (programming error guard)
};

/// Traffic class of a verb. Data is the default; control marks small
/// latency-critical messages that must not queue behind bulk data.
enum class Lane : std::uint8_t {
  kData = 0,
  kControl = 1,
};

/// Outcome of a one-sided verb.
struct Completion {
  Status status = Status::kOk;

  [[nodiscard]] bool ok() const { return status == Status::kOk; }
};

/// Latency knobs; defaults approximate the paper's XL170 testbed.
struct LatencyModel {
  sim::Nanos read_base = sim::us(1.6);    // one-sided READ round trip
  sim::Nanos write_base = sim::us(0.9);   // one-sided WRITE until remote visibility
  sim::Nanos post_overhead = sim::us(0.15);  // CPU cost to post a verb
  double bandwidth_bytes_per_ns = 3.125;  // 25 Gbps
  sim::Nanos failure_detect = sim::us(400);  // WC error latency on dead peer
  double jitter_sigma = 0.0;  // lognormal sigma on the network component

  /// Legacy testbed oversubscription (§V-C1: beyond 40 XL170 nodes,
  /// traffic crosses the top-of-rack switch with no bandwidth guarantee).
  /// When the fabric has more than `oversub_nodes` nodes, network
  /// components are scaled by `oversub_factor`. 0 disables the model.
  /// Superseded by the structural topology below when `rack_size` > 0.
  std::size_t oversub_nodes = 0;
  double oversub_factor = 1.3;

  // --- two-level ToR topology ------------------------------------------
  /// Nodes per rack; node id / rack_size is the rack index. 0 keeps the
  /// flat single-switch fabric (seed behavior).
  std::size_t rack_size = 0;
  /// Rack uplink oversubscription: uplink bandwidth is
  /// rack_size * bandwidth_bytes_per_ns / oversub_ratio. 1.0 = full
  /// bisection; 2.0 = classic 2:1 ToR oversubscription.
  double oversub_ratio = 1.0;
  /// Extra one-way latency for crossing the ToR switch.
  sim::Nanos tor_hop = sim::us(0.3);

  // --- flow control ----------------------------------------------------
  /// Max outstanding verbs per (initiator, target, lane) QP. Further
  /// posts queue FIFO in software until a completion returns a credit.
  /// 0 = unlimited (seed behavior).
  std::uint32_t credit_window = 0;
  /// When true, Lane::kControl verbs bypass credit gating and the shared
  /// uplink FIFO (they still pay NIC post/serialization and base
  /// latency). Disable to model a fabric without QoS separation — used
  /// by the fail-on-pre-fix priority-lane tests.
  bool priority_lanes = true;

  /// NIC-rate serialization time. Rounds up: any non-empty transfer costs
  /// at least 1 ns (truncation used to charge 0 ns for sub-byte-time
  /// transfers, letting e.g. 1-byte writes pipeline for free).
  [[nodiscard]] sim::Nanos transfer_time(std::uint64_t bytes) const {
    if (bytes == 0) return 0;
    const double t =
        static_cast<double>(bytes) / bandwidth_bytes_per_ns;
    const auto whole = static_cast<sim::Nanos>(t);
    const sim::Nanos up = (static_cast<double>(whole) < t) ? whole + 1 : whole;
    return up > 0 ? up : 1;
  }

  /// Shared rack-uplink bandwidth under the configured oversubscription.
  [[nodiscard]] double uplink_bytes_per_ns() const {
    return bandwidth_bytes_per_ns * static_cast<double>(rack_size) /
           oversub_ratio;
  }
};

/// Counters for substrate-level reporting.
struct FabricStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t failures = 0;
  std::uint64_t credit_stalls = 0;    // verbs that queued for a credit
  std::uint64_t uplink_queued = 0;    // transfers that waited in a rack FIFO
  std::uint64_t priority_ops = 0;     // control-lane verbs that bypassed queuing
  std::uint64_t injected_ops = 0;     // faultlab phantom flows
  std::uint64_t injected_bytes = 0;
};

class Fabric {
 public:
  Fabric(sim::Simulator& sim, LatencyModel model = {},
         std::uint64_t seed = 42);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  /// The seed this fabric was constructed with; layers deriving their own
  /// RNG streams (e.g. client retry jitter) mix it with a local salt.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const LatencyModel& model() const { return model_; }
  [[nodiscard]] LatencyModel& model() { return model_; }
  [[nodiscard]] const FabricStats& stats() const { return stats_; }
  /// Clears the counters AND the fabric-owned telemetry series (queue-wait
  /// / credit-wait / uplink-wait histograms, per-rack byte and busy
  /// accumulators) so a bench that resets between warmup and measurement
  /// reports only the measured window. Live queuing state (NIC free
  /// times, uplink FIFOs, outstanding credits) is untouched.
  void reset_stats();

  /// The telemetry hub shared by every layer attached to this fabric
  /// (amcast endpoints, core replicas, the harness). Disabled by default.
  [[nodiscard]] telemetry::Hub& telemetry() { return *hub_; }

  /// Creates a node attached to this fabric.
  Node& add_node() {
    const auto id = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(std::make_unique<Node>(*sim_, id));
    hub_->tracer.set_tid_name(id, "node" + std::to_string(id));
    return *nodes_.back();
  }

  [[nodiscard]] Node& node(std::int32_t id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// One-sided RDMA READ: copies `out.size()` bytes from (addr) on the
  /// remote node into `out`. The value is sampled at the instant the read
  /// reaches the remote NIC. Initiator blocks until the completion (which
  /// includes any credit-queue wait when flow control is enabled).
  sim::Task<Completion> read(std::int32_t initiator, RAddr addr,
                             std::span<std::byte> out,
                             Lane lane = Lane::kData);

  /// One-sided RDMA WRITE: copies `data` into (addr) on the remote node.
  /// Data becomes remotely visible at arrival time; the region's on_write
  /// notifier fires then. Initiator blocks until the completion.
  sim::Task<Completion> write(std::int32_t initiator, RAddr addr,
                              std::span<const std::byte> data,
                              Lane lane = Lane::kData);

  /// Fire-and-forget WRITE: posts the verb and returns after the post
  /// overhead only. Used where Heron does not wait for the WC (e.g.
  /// coordination-message fan-out, Algorithm 1 line 9). With flow control
  /// enabled the post may queue in software behind earlier verbs of the
  /// same QP; queued posts keep FIFO order, so RC in-order delivery per
  /// channel is preserved.
  void write_async(std::int32_t initiator, RAddr addr,
                   std::span<const std::byte> data,
                   Lane lane = Lane::kData);

  /// One-sided atomic compare-and-swap on an 8-byte word (RC masked
  /// atomics): at arrival the remote word is sampled and, iff it equals
  /// `expected`, replaced by `desired` in the same event; the sampled
  /// value travels back in `observed`. Success of the swap is
  /// `*observed == expected` on an ok() completion. Costs a READ round
  /// trip (request out, old value back). Used by the fast-write path to
  /// take a slot's INVALIDATE lock without clobbering a replica-side
  /// write-phase bracket that opened after the client sampled the word.
  sim::Task<Completion> cas(std::int32_t initiator, RAddr addr,
                            std::uint64_t expected, std::uint64_t desired,
                            std::uint64_t* observed,
                            Lane lane = Lane::kData);

  /// Injects a phantom transfer (heron::faultlab congestion scenarios):
  /// charges the initiator NIC, credit window, uplink FIFO and channel
  /// exactly like a `bytes`-sized write, but touches no memory region, so
  /// the target needs no registered MR and may even be a bare phantom
  /// node. Fire-and-forget.
  void inject_flow(std::int32_t initiator, std::int32_t target,
                   std::uint64_t bytes, Lane lane = Lane::kData);

  // --- topology / backpressure observability ------------------------------

  /// Rack index of a node, or -1 on a flat fabric.
  [[nodiscard]] int rack_of(std::int32_t node_id) const {
    if (model_.rack_size == 0) return -1;
    return static_cast<int>(static_cast<std::size_t>(node_id) /
                            model_.rack_size);
  }
  /// Nanoseconds of transfer already queued on the node's rack uplink —
  /// the backpressure signal sampled by adaptive admission control and
  /// background-copy throttling. 0 on a flat fabric.
  [[nodiscard]] sim::Nanos uplink_backlog(std::int32_t node_id) const;
  /// Cumulative bytes carried by a rack's uplink (since last reset_stats).
  [[nodiscard]] std::uint64_t uplink_bytes(int rack) const;
  /// Cumulative occupancy of a rack's uplink in ns (utilization =
  /// busy_ns / window).
  [[nodiscard]] std::uint64_t uplink_busy_ns(int rack) const;
  /// Credit-queue stalls charged to verbs initiated by `node_id` (since
  /// last reset_stats) — the starvation half of the backpressure signal.
  [[nodiscard]] std::uint64_t credit_stalls(std::int32_t node_id) const;
  /// Verbs currently waiting in software credit queues out of `node_id`.
  [[nodiscard]] std::size_t credit_queue_depth(std::int32_t node_id) const;

  // --- perturbation hook (heron::faultlab) --------------------------------
  // Transient network chaos, separate from the calibrated LatencyModel so a
  // fault plan can open and close windows without touching the baseline.

  /// Scales the latency component of every verb (1.0 = nominal).
  void set_latency_factor(double f) { latency_factor_ = f; }
  [[nodiscard]] double latency_factor() const { return latency_factor_; }

  /// Scales effective bandwidth (0.5 = half bandwidth, transfers take 2x).
  void set_bandwidth_factor(double f) { bandwidth_factor_ = f; }
  [[nodiscard]] double bandwidth_factor() const { return bandwidth_factor_; }

  /// Partitions `nodes` from the rest of the fabric until virtual time
  /// `heal_at`. Traffic crossing the cut is stalled until the heal instant,
  /// never dropped: RC queue pairs retransmit through transient partitions
  /// (crash faults are modeled separately via Node::crash()). In-order
  /// channel delivery is preserved across the stall.
  void partition(std::vector<std::int32_t> nodes, sim::Nanos heal_at);
  /// Lifts a partition before its scheduled heal time.
  void heal_partition() { partitioned_.clear(); }
  [[nodiscard]] bool partition_active() const {
    return !partitioned_.empty() && sim_->now() < partition_heal_at_;
  }

 private:
  /// Per-(initiator, target, lane) queue-pair state: RC ordering plus the
  /// software credit queue. Waiters are resumed in FIFO order so queued
  /// posts stay ordered; a released credit transfers to the head waiter
  /// without going through `outstanding`.
  struct Qp {
    sim::Nanos last_arrival = 0;  // enforces RC in-order delivery
    std::uint32_t outstanding = 0;
    std::deque<std::pair<sim::Nanos, std::function<void()>>> waiters;
  };

  /// Shared rack uplink: a FIFO pipe at the oversubscribed rate.
  struct RackLink {
    sim::Nanos free_at = 0;
    std::uint64_t bytes = 0;    // cumulative, cleared by reset_stats
    std::uint64_t busy_ns = 0;  // cumulative occupancy
  };

  // Awaitable credit acquisition for the blocking verbs. Members are kept
  // trivial (see the GCC 12 note in sim/notifier.hpp).
  struct CreditGate {
    Fabric* f;
    Qp* qp;
    std::int32_t initiator;
    bool gated;
    bool await_ready() const noexcept {
      if (!gated) return true;
      if (qp->waiters.empty() && qp->outstanding < f->model_.credit_window) {
        ++qp->outstanding;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      f->note_credit_stall(initiator);
      qp->waiters.emplace_back(f->sim_->now(), [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] Lane effective_lane(Lane lane) const {
    return model_.priority_lanes ? lane : Lane::kData;
  }
  [[nodiscard]] bool credit_gated(Lane lane) const {
    return model_.credit_window > 0 &&
           !(model_.priority_lanes && lane == Lane::kControl);
  }
  Qp& qp_for(std::int32_t initiator, std::int32_t target, Lane lane) {
    return qps_[{initiator, target,
                 static_cast<std::uint8_t>(effective_lane(lane))}];
  }
  void note_credit_stall(std::int32_t initiator);
  /// Runs `post` when a credit is available on the QP (immediately when
  /// uncontended). Callback form used by the fire-and-forget verbs.
  void with_credit(Qp& qp, bool gated, std::int32_t initiator,
                   std::function<void()> post);
  /// Returns a credit; hands it to the head waiter if one is queued.
  void release_credit(Qp& qp, bool gated);

  sim::Nanos jitter(sim::Nanos base);
  sim::Nanos xfer_time(std::uint64_t bytes) const;
  sim::Nanos uplink_time(std::uint64_t bytes) const;
  sim::Nanos depart(std::int32_t initiator);
  /// Routes a transfer through the two-level topology: when initiator and
  /// target sit in different racks, the transfer serializes through both
  /// racks' shared uplink FIFOs (control-lane traffic bypasses the queue
  /// but still pays the hop). Returns the instant the transfer clears the
  /// fabric toward the target. Identity on a flat fabric.
  sim::Nanos link_transit(std::int32_t initiator, std::int32_t target,
                          std::uint64_t bytes, sim::Nanos ready, Lane lane);
  sim::Nanos arrival_on_channel(std::int32_t initiator, std::int32_t target,
                                Lane lane, sim::Nanos proposed);
  [[nodiscard]] bool crosses_partition(std::int32_t a, std::int32_t b) const;
  RackLink& rack_link(int rack);
  void post_flow(std::int32_t initiator, std::int32_t target,
                 std::uint64_t bytes, Lane lane, bool gated);
  void deliver_write(std::int32_t target, RAddr addr,
                     std::vector<std::byte> data);

  sim::Simulator* sim_;
  LatencyModel model_;
  std::uint64_t seed_;
  sim::Rng rng_;
  FabricStats stats_;
  std::unique_ptr<telemetry::Hub> hub_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<std::tuple<std::int32_t, std::int32_t, std::uint8_t>, Qp> qps_;
  std::map<std::int32_t, sim::Nanos> nic_free_at_;  // send-side serialization
  std::vector<RackLink> racks_;                     // lazily sized
  std::vector<std::uint64_t> credit_stalls_by_node_;

  // Perturbation state (see the faultlab hook above).
  double latency_factor_ = 1.0;
  double bandwidth_factor_ = 1.0;
  std::vector<std::int32_t> partitioned_;  // sorted node set; one side of the cut
  sim::Nanos partition_heal_at_ = 0;

  // Telemetry handles (registered once; recording is branch-guarded).
  telemetry::Counter* ctr_reads_;
  telemetry::Counter* ctr_writes_;
  telemetry::Counter* ctr_writes_async_;
  telemetry::Counter* ctr_read_bytes_;
  telemetry::Counter* ctr_write_bytes_;
  telemetry::Counter* ctr_errors_;
  telemetry::Counter* ctr_bad_addr_;
  telemetry::Counter* ctr_credit_stalls_;
  telemetry::Counter* ctr_uplink_queued_;
  telemetry::Counter* ctr_priority_ops_;
  telemetry::Counter* ctr_injected_;
  telemetry::Histogram* hist_queue_wait_;
  telemetry::Histogram* hist_credit_wait_;
  telemetry::Histogram* hist_uplink_wait_;
};

}  // namespace heron::rdma
