// The simulated RDMA fabric: nodes + reliable-connection verbs.
//
// Semantics modeled after libibverbs RC queue pairs, which is all Heron
// relies on (§II-C of the paper):
//   * one-sided READ / WRITE that never involve the remote CPU;
//   * reliable, in-order delivery per (initiator, target) channel;
//   * remote crash surfaces as a work-completion error (the paper's
//     RDMA_EXCEPTION) after a detection delay;
//   * 8-byte aligned accesses are atomic. The simulator is stricter: an
//     entire op lands in one event, so any span is observed atomically.
//
// The latency model is calibrated against the paper's testbed (ConnectX-4,
// 25 Gbps): a per-verb base cost, a bandwidth term, and optional
// multiplicative jitter. Congestion is modeled per initiator NIC: verbs
// posted back-to-back serialize on the send side.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "rdma/memory.hpp"
#include "rdma/node.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "telemetry/hub.hpp"

namespace heron::rdma {

enum class Status : std::uint8_t {
  kOk = 0,
  kRemoteFailure = 1,  // target crashed: WC error on the initiator QP
  kBadAddress = 2,     // out-of-bounds access (programming error guard)
};

/// Outcome of a one-sided verb.
struct Completion {
  Status status = Status::kOk;

  [[nodiscard]] bool ok() const { return status == Status::kOk; }
};

/// Latency knobs; defaults approximate the paper's XL170 testbed.
struct LatencyModel {
  sim::Nanos read_base = sim::us(1.6);    // one-sided READ round trip
  sim::Nanos write_base = sim::us(0.9);   // one-sided WRITE until remote visibility
  sim::Nanos post_overhead = sim::us(0.15);  // CPU cost to post a verb
  double bandwidth_bytes_per_ns = 3.125;  // 25 Gbps
  sim::Nanos failure_detect = sim::us(400);  // WC error latency on dead peer
  double jitter_sigma = 0.0;  // lognormal sigma on the network component

  /// Testbed oversubscription (§V-C1: beyond 40 XL170 nodes, traffic
  /// crosses the top-of-rack switch with no bandwidth guarantee). When
  /// the fabric has more than `oversub_nodes` nodes, network components
  /// are scaled by `oversub_factor`. 0 disables the model.
  std::size_t oversub_nodes = 0;
  double oversub_factor = 1.3;

  [[nodiscard]] sim::Nanos transfer_time(std::uint64_t bytes) const {
    return static_cast<sim::Nanos>(static_cast<double>(bytes) /
                                   bandwidth_bytes_per_ns);
  }
};

/// Counters for substrate-level reporting.
struct FabricStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t failures = 0;
};

class Fabric {
 public:
  Fabric(sim::Simulator& sim, LatencyModel model = {},
         std::uint64_t seed = 42);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  /// The seed this fabric was constructed with; layers deriving their own
  /// RNG streams (e.g. client retry jitter) mix it with a local salt.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const LatencyModel& model() const { return model_; }
  [[nodiscard]] LatencyModel& model() { return model_; }
  [[nodiscard]] const FabricStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// The telemetry hub shared by every layer attached to this fabric
  /// (amcast endpoints, core replicas, the harness). Disabled by default.
  [[nodiscard]] telemetry::Hub& telemetry() { return *hub_; }

  /// Creates a node attached to this fabric.
  Node& add_node() {
    const auto id = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(std::make_unique<Node>(*sim_, id));
    hub_->tracer.set_tid_name(id, "node" + std::to_string(id));
    return *nodes_.back();
  }

  [[nodiscard]] Node& node(std::int32_t id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// One-sided RDMA READ: copies `out.size()` bytes from (addr) on the
  /// remote node into `out`. The value is sampled at the instant the read
  /// reaches the remote NIC. Initiator blocks until the completion.
  sim::Task<Completion> read(std::int32_t initiator, RAddr addr,
                             std::span<std::byte> out);

  /// One-sided RDMA WRITE: copies `data` into (addr) on the remote node.
  /// Data becomes remotely visible at arrival time; the region's on_write
  /// notifier fires then. Initiator blocks until the completion.
  sim::Task<Completion> write(std::int32_t initiator, RAddr addr,
                              std::span<const std::byte> data);

  /// Fire-and-forget WRITE: posts the verb and returns after the post
  /// overhead only. Used where Heron does not wait for the WC (e.g.
  /// coordination-message fan-out, Algorithm 1 line 9).
  void write_async(std::int32_t initiator, RAddr addr,
                   std::span<const std::byte> data);

  // --- perturbation hook (heron::faultlab) --------------------------------
  // Transient network chaos, separate from the calibrated LatencyModel so a
  // fault plan can open and close windows without touching the baseline.

  /// Scales the latency component of every verb (1.0 = nominal).
  void set_latency_factor(double f) { latency_factor_ = f; }
  [[nodiscard]] double latency_factor() const { return latency_factor_; }

  /// Scales effective bandwidth (0.5 = half bandwidth, transfers take 2x).
  void set_bandwidth_factor(double f) { bandwidth_factor_ = f; }
  [[nodiscard]] double bandwidth_factor() const { return bandwidth_factor_; }

  /// Partitions `nodes` from the rest of the fabric until virtual time
  /// `heal_at`. Traffic crossing the cut is stalled until the heal instant,
  /// never dropped: RC queue pairs retransmit through transient partitions
  /// (crash faults are modeled separately via Node::crash()). In-order
  /// channel delivery is preserved across the stall.
  void partition(std::vector<std::int32_t> nodes, sim::Nanos heal_at);
  /// Lifts a partition before its scheduled heal time.
  void heal_partition() { partitioned_.clear(); }
  [[nodiscard]] bool partition_active() const {
    return !partitioned_.empty() && sim_->now() < partition_heal_at_;
  }

 private:
  struct Channel {
    sim::Nanos last_arrival = 0;  // enforces RC in-order delivery
  };

  sim::Nanos jitter(sim::Nanos base);
  sim::Nanos xfer_time(std::uint64_t bytes) const;
  sim::Nanos depart(std::int32_t initiator);
  sim::Nanos arrival_on_channel(std::int32_t initiator, std::int32_t target,
                                sim::Nanos proposed);
  [[nodiscard]] bool crosses_partition(std::int32_t a, std::int32_t b) const;
  void deliver_write(std::int32_t target, RAddr addr,
                     std::vector<std::byte> data);

  sim::Simulator* sim_;
  LatencyModel model_;
  std::uint64_t seed_;
  sim::Rng rng_;
  FabricStats stats_;
  std::unique_ptr<telemetry::Hub> hub_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<std::pair<std::int32_t, std::int32_t>, Channel> channels_;
  std::map<std::int32_t, sim::Nanos> nic_free_at_;  // send-side serialization

  // Perturbation state (see the faultlab hook above).
  double latency_factor_ = 1.0;
  double bandwidth_factor_ = 1.0;
  std::vector<std::int32_t> partitioned_;  // sorted node set; one side of the cut
  sim::Nanos partition_heal_at_ = 0;

  // Telemetry handles (registered once; recording is branch-guarded).
  telemetry::Counter* ctr_reads_;
  telemetry::Counter* ctr_writes_;
  telemetry::Counter* ctr_writes_async_;
  telemetry::Counter* ctr_read_bytes_;
  telemetry::Counter* ctr_write_bytes_;
  telemetry::Counter* ctr_errors_;
  telemetry::Counter* ctr_bad_addr_;
  telemetry::Histogram* hist_queue_wait_;
};

}  // namespace heron::rdma
