// Closed-loop benchmark harness: builds a Heron cluster running TPC-C,
// attaches closed-loop clients (the paper's measurement methodology,
// §V-B), and measures throughput/latency over a virtual-time window
// after a warmup.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "rdma/fabric.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "tpcc/app.hpp"
#include "tpcc/gen.hpp"

namespace heron::harness {

struct RunResult {
  double throughput_tps = 0;
  sim::LatencyRecorder latency;          // all requests
  sim::LatencyRecorder latency_single;   // single-partition
  sim::LatencyRecorder latency_multi;    // multi-partition
  std::map<std::uint32_t, sim::LatencyRecorder> latency_by_kind;
  std::map<std::uint32_t, sim::LatencyRecorder> latency_by_kind_multi;
  std::uint64_t completed = 0;
  sim::Nanos window = 0;
};

class TpccCluster {
 public:
  TpccCluster(int partitions, int replicas, tpcc::TpccScale scale,
              core::HeronConfig heron_cfg = {},
              amcast::Config amcast_cfg = {}, std::uint64_t seed = 99,
              rdma::LatencyModel fabric_model = {});

  /// Adds `per_partition` closed-loop clients homed at each partition.
  void add_clients(int per_partition, tpcc::WorkloadConfig workload);

  /// Adds one closed-loop client homed at `partition`.
  void add_client_at(int partition, tpcc::WorkloadConfig workload);

  /// Runs warmup, clears stats, runs the measurement window and returns
  /// aggregated results. Callable repeatedly (windows accumulate).
  RunResult run(sim::Nanos warmup, sim::Nanos duration);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] core::System& system() { return *sys_; }
  [[nodiscard]] rdma::Fabric& fabric() { return fabric_; }
  /// The cluster-wide telemetry hub (owned by the fabric). Disabled by
  /// default; call telemetry().enable_all() before run() to collect.
  [[nodiscard]] telemetry::Hub& telemetry() { return fabric_.telemetry(); }
  [[nodiscard]] int partitions() const { return partitions_; }
  [[nodiscard]] int replicas() const { return replicas_; }

 private:
  sim::Task<void> client_loop(core::Client& client,
                              std::unique_ptr<tpcc::WorkloadGen> gen);

  struct Sample {
    std::uint32_t kind;
    bool multi;
    sim::Nanos latency;
  };

  sim::Simulator sim_;
  rdma::Fabric fabric_;
  std::unique_ptr<core::System> sys_;
  int partitions_;
  int replicas_;
  tpcc::TpccScale scale_;
  std::uint64_t seed_;
  std::uint64_t next_client_seed_ = 1;
  bool recording_ = false;
  std::vector<Sample> samples_;
};

/// Formats microseconds with two decimals (report printing helper).
std::string fmt_us(double ns);
std::string fmt_us(sim::Nanos ns);

}  // namespace heron::harness
