// Machine-readable benchmark reports: serializes RunResult (and an
// optional telemetry snapshot) as JSON so plots/dashboards consume the
// bench output directly instead of scraping stdout.
#pragma once

#include <functional>
#include <string>

#include "harness/runner.hpp"
#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"

namespace heron::harness {

/// Writes one RunResult as a JSON object:
///   {"throughput_tps":..., "completed":..., "window_ns":...,
///    "latency_us":{...}, "latency_single_us":{...},
///    "latency_multi_us":{...},
///    "by_kind":{"new_order":{...}, ...}}
/// Latency summaries carry count/mean/min/p50/p90/p99/max in
/// microseconds. Kinds are named via tpcc::kind_name.
void write_run_result(telemetry::JsonWriter& w, const RunResult& r);

/// Full report document for one bench invocation: a named list of runs
/// plus (optionally) the metrics-registry snapshot taken after the last
/// window. Rows are appended via `row`; `finish` closes the document.
class ReportWriter {
 public:
  /// `bench` names the producing benchmark (e.g. "fig4_throughput").
  explicit ReportWriter(std::string bench);

  /// Appends one result row with caller-chosen identifying fields.
  /// `extra` is a callback that writes extra keys into the row object
  /// (may be null).
  void row(const std::string& name, const RunResult& r,
           const std::function<void(telemetry::JsonWriter&)>& extra = {});

  /// Closes the document, optionally embedding a metrics snapshot, and
  /// returns the JSON text.
  std::string finish(const telemetry::MetricsRegistry* metrics = nullptr);

  /// finish() + write to `path`. Returns false on I/O error.
  bool finish_to_file(const std::string& path,
                      const telemetry::MetricsRegistry* metrics = nullptr);

 private:
  telemetry::JsonWriter w_;
  bool finished_ = false;
};

}  // namespace heron::harness
