#include "harness/report.hpp"

#include <cstdio>

#include "tpcc/requests.hpp"

namespace heron::harness {

namespace {

double us(double ns) { return ns / 1000.0; }
double us(sim::Nanos ns) { return static_cast<double>(ns) / 1000.0; }

void write_latency(telemetry::JsonWriter& w, std::string_view k,
                   const sim::LatencyRecorder& lat) {
  w.key(k).begin_object();
  w.kv("count", static_cast<std::uint64_t>(lat.count()));
  w.kv("mean_us", us(lat.mean()));
  w.kv("min_us", us(lat.min()));
  w.kv("p50_us", us(lat.percentile(50)));
  w.kv("p90_us", us(lat.percentile(90)));
  w.kv("p99_us", us(lat.percentile(99)));
  w.kv("max_us", us(lat.max()));
  w.end_object();
}

}  // namespace

void write_run_result(telemetry::JsonWriter& w, const RunResult& r) {
  w.begin_object();
  w.kv("throughput_tps", r.throughput_tps);
  w.kv("completed", r.completed);
  w.kv("window_ns", static_cast<std::int64_t>(r.window));
  write_latency(w, "latency_us", r.latency);
  write_latency(w, "latency_single_us", r.latency_single);
  write_latency(w, "latency_multi_us", r.latency_multi);
  w.key("by_kind").begin_object();
  for (const auto& [kind, lat] : r.latency_by_kind) {
    write_latency(w, tpcc::kind_name(kind), lat);
  }
  w.end_object();
  w.end_object();
}

ReportWriter::ReportWriter(std::string bench) {
  w_.begin_object();
  w_.kv("bench", bench);
  w_.key("runs").begin_array();
}

void ReportWriter::row(const std::string& name, const RunResult& r,
                       const std::function<void(telemetry::JsonWriter&)>& extra) {
  w_.begin_object();
  w_.kv("name", name);
  if (extra) extra(w_);
  w_.key("result");
  write_run_result(w_, r);
  w_.end_object();
}

std::string ReportWriter::finish(const telemetry::MetricsRegistry* metrics) {
  if (!finished_) {
    w_.end_array();
    if (metrics != nullptr) {
      w_.key("metrics");
      metrics->write_json(w_);
    }
    w_.end_object();
    finished_ = true;
  }
  return w_.str() + "\n";
}

bool ReportWriter::finish_to_file(const std::string& path,
                                  const telemetry::MetricsRegistry* metrics) {
  const std::string text = finish(metrics);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace heron::harness
