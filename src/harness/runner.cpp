#include "harness/runner.hpp"

#include <cstdio>

namespace heron::harness {

TpccCluster::TpccCluster(int partitions, int replicas, tpcc::TpccScale scale,
                         core::HeronConfig heron_cfg, amcast::Config amcast_cfg,
                         std::uint64_t seed, rdma::LatencyModel fabric_model)
    : fabric_(sim_, fabric_model, seed),
      partitions_(partitions),
      replicas_(replicas),
      scale_(scale),
      seed_(seed) {
  // Bootstrap footprint plus headroom for rows created at runtime
  // (orders, order lines, history grow throughout a bench window).
  heron_cfg.object_region_bytes = scale.region_bytes(1.4) + (32u << 20);
  sys_ = std::make_unique<core::System>(
      fabric_, partitions, replicas,
      [partitions, scale, seed] {
        return std::make_unique<tpcc::TpccApp>(partitions, scale, seed);
      },
      heron_cfg, amcast_cfg);
  sys_->start();
}

void TpccCluster::add_clients(int per_partition, tpcc::WorkloadConfig workload) {
  for (int p = 0; p < partitions_; ++p) {
    for (int c = 0; c < per_partition; ++c) {
      add_client_at(p, workload);
    }
  }
}

void TpccCluster::add_client_at(int partition, tpcc::WorkloadConfig workload) {
  workload.partitions = partitions_;
  workload.scale = scale_;
  auto& client = sys_->add_client();
  auto gen = std::make_unique<tpcc::WorkloadGen>(
      workload, static_cast<std::uint32_t>(partition),
      seed_ * 7919 + next_client_seed_++);
  sim_.spawn(client_loop(client, std::move(gen)));
}

sim::Task<void> TpccCluster::client_loop(
    core::Client& client, std::unique_ptr<tpcc::WorkloadGen> gen) {
  while (true) {
    tpcc::GeneratedRequest req = gen->next();
    const bool multi = amcast::dst_count(req.dst) > 1;
    auto result = co_await client.submit(req.dst, req.kind, req.payload);
    if (recording_) {
      samples_.push_back(Sample{req.kind, multi, result.latency});
    }
  }
}

RunResult TpccCluster::run(sim::Nanos warmup, sim::Nanos duration) {
  sim_.run_for(warmup);
  sys_->reset_stats();
  // Telemetry measures the same window as the latency samples: drop
  // whatever accumulated during warmup (or a previous window).
  fabric_.telemetry().metrics.reset_values();
  fabric_.telemetry().tracer.clear();
  samples_.clear();
  recording_ = true;
  const std::uint64_t before = sys_->total_completed();
  sim_.run_for(duration);
  recording_ = false;

  RunResult out;
  out.window = duration;
  out.completed = sys_->total_completed() - before;
  out.throughput_tps = static_cast<double>(out.completed) /
                       sim::to_sec(duration);
  for (const auto& s : samples_) {
    out.latency.record(s.latency);
    (s.multi ? out.latency_multi : out.latency_single).record(s.latency);
    out.latency_by_kind[s.kind].record(s.latency);
    if (s.multi) out.latency_by_kind_multi[s.kind].record(s.latency);
  }
  return out;
}

std::string fmt_us(double ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", ns / 1000.0);
  return buf;
}

std::string fmt_us(sim::Nanos ns) { return fmt_us(static_cast<double>(ns)); }

}  // namespace heron::harness
