#include "faultlab/linear.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace heron::faultlab {

void LinearChecker::note_write(core::Oid key, std::uint32_t client,
                               std::uint64_t seq, sim::Nanos invoked_at,
                               sim::Nanos completed_at,
                               core::SubmitStatus status) {
  writes_[key].push_back(WriteOp{client, seq, invoked_at, completed_at,
                                 status});
}

void LinearChecker::note_fast_write(core::Oid key, core::Tmp tmp,
                                    core::Tmp base, sim::Nanos invoked_at,
                                    sim::Nanos completed_at) {
  fast_writes_[key].push_back(FastWriteOp{tmp, base, invoked_at,
                                          completed_at});
}

void LinearChecker::note_read(core::Oid key, core::Tmp tmp,
                              sim::Nanos invoked_at, sim::Nanos completed_at,
                              bool fast) {
  reads_[key].push_back(ReadOp{tmp, invoked_at, completed_at, fast});
}

std::size_t LinearChecker::read_count() const {
  std::size_t n = 0;
  for (const auto& [key, ops] : reads_) n += ops.size();
  return n;
}

std::size_t LinearChecker::write_count() const {
  std::size_t n = 0;
  for (const auto& [key, ops] : writes_) n += ops.size();
  for (const auto& [key, ops] : fast_writes_) n += ops.size();
  return n;
}

std::vector<Violation> LinearChecker::check(
    const HistoryRecorder& history) const {
  std::vector<Violation> out;

  // (client, seq) -> executed version timestamp. Session dedup plus total
  // order guarantee every replica executes the same attempt of a command,
  // so the first recorded tmp is THE tmp (exactly-once is checked by its
  // own oracle).
  std::map<CommandKey, core::Tmp> tmp_of;
  for (const auto& e : history.execs()) {
    tmp_of.try_emplace({e.client, e.seq}, e.tmp);
  }

  auto describe = [](core::Oid key, const ReadOp& r) {
    std::ostringstream os;
    os << (r.fast ? "fast" : "ordered") << " read of oid " << key
       << " at [" << r.invoked_at << ", " << r.completed_at << "] returned tmp "
       << r.tmp;
    return os.str();
  };

  // Version order key (see the header comment): plain tmp t -> [t]; a
  // fast write chained on base b -> ordkey(b) ++ [completed_at], compared
  // lexicographically.
  using OrdKey = std::vector<std::uint64_t>;

  for (const auto& [key, key_reads] : reads_) {
    // Fast writes by version tmp. The same numeric fast tmp CAN recur on
    // one key: the chain counter restarts whenever an ordered write wipes
    // the slot back to a plain version, so a client's first fast write
    // after each wipe reuses the same tmp. `resolve` disambiguates by
    // picking the latest instance invoked before the observation point.
    std::map<core::Tmp, std::vector<const FastWriteOp*>> fast_of;
    if (const auto it = fast_writes_.find(key); it != fast_writes_.end()) {
      for (const FastWriteOp& f : it->second) fast_of[f.tmp].push_back(&f);
      for (auto& [tmp, ops] : fast_of) {
        std::sort(ops.begin(), ops.end(),
                  [](const FastWriteOp* a, const FastWriteOp* b) {
                    return a->invoked_at < b->invoked_at;
                  });
      }
    }
    auto resolve = [&fast_of](core::Tmp tmp,
                              sim::Nanos before) -> const FastWriteOp* {
      const auto it = fast_of.find(tmp);
      if (it == fast_of.end()) return nullptr;
      const FastWriteOp* best = nullptr;
      for (const FastWriteOp* f : it->second) {
        if (f->invoked_at < before) best = f;
      }
      return best != nullptr ? best : it->second.front();
    };
    // `before` anchors disambiguation: the time the version was observed
    // (a read's completion, or the dependent fast write's invocation).
    // A fast tmp with no note resolves to itself — membership flags it.
    auto ordkey = [&resolve](core::Tmp tmp, sim::Nanos before) {
      OrdKey k;
      core::Tmp t = tmp;
      sim::Nanos at = before;
      for (int guard = 0; core::is_fast_tmp(t) && guard < 64; ++guard) {
        const FastWriteOp* f = resolve(t, at);
        if (f == nullptr) break;
        k.push_back(static_cast<std::uint64_t>(f->completed_at));
        t = f->base;
        at = f->invoked_at;
      }
      k.push_back(t);
      std::reverse(k.begin(), k.end());
      return k;
    };

    // Resolve this key's writes once: every write with a recorded
    // execution (membership set), and the kOk-completed subset (staleness
    // lower bound). Fast commits join both — the client only reports
    // them on success, and their version is known directly.
    struct ResolvedWrite {
      core::Tmp tmp = 0;  // for violation messages
      OrdKey key;
      sim::Nanos invoked_at = 0;
      sim::Nanos completed_at = 0;
      bool completed_ok = false;
    };
    std::vector<ResolvedWrite> writes;
    if (const auto it = writes_.find(key); it != writes_.end()) {
      for (const WriteOp& w : it->second) {
        const auto t = tmp_of.find({w.client, w.seq});
        if (t == tmp_of.end()) continue;  // never executed anywhere
        writes.push_back(ResolvedWrite{
            t->second, OrdKey{t->second}, w.invoked_at, w.completed_at,
            w.status == core::SubmitStatus::kOk});
      }
    }
    if (const auto it = fast_writes_.find(key); it != fast_writes_.end()) {
      for (const FastWriteOp& f : it->second) {
        OrdKey k = ordkey(f.base, f.invoked_at);
        k.push_back(static_cast<std::uint64_t>(f.completed_at));
        writes.push_back(ResolvedWrite{f.tmp, std::move(k), f.invoked_at,
                                       f.completed_at, true});
      }
    }

    struct ResolvedRead {
      const ReadOp* op = nullptr;
      OrdKey key;
    };
    std::vector<ResolvedRead> resolved_reads;
    resolved_reads.reserve(key_reads.size());
    for (const ReadOp& r : key_reads) {
      resolved_reads.push_back({&r, ordkey(r.tmp, r.completed_at)});
    }
    std::vector<const ResolvedRead*> by_invoked;
    by_invoked.reserve(resolved_reads.size());
    for (const ResolvedRead& r : resolved_reads) by_invoked.push_back(&r);
    std::sort(by_invoked.begin(), by_invoked.end(),
              [](const ResolvedRead* a, const ResolvedRead* b) {
                return a->op->invoked_at < b->op->invoked_at;
              });
    auto by_completed = by_invoked;
    std::sort(by_completed.begin(), by_completed.end(),
              [](const ResolvedRead* a, const ResolvedRead* b) {
                return a->op->completed_at < b->op->completed_at;
              });

    // Staleness + read order: sweep reads in invocation order, folding in
    // writes/reads that completed strictly before each invocation.
    std::vector<const ResolvedWrite*> w_by_completed;
    for (const ResolvedWrite& w : writes) {
      if (w.completed_ok) w_by_completed.push_back(&w);
    }
    std::sort(w_by_completed.begin(), w_by_completed.end(),
              [](const ResolvedWrite* a, const ResolvedWrite* b) {
                return a->completed_at < b->completed_at;
              });
    OrdKey write_floor;  // empty = below every version
    OrdKey read_floor;
    core::Tmp write_floor_tmp = 0;
    core::Tmp read_floor_tmp = 0;
    std::size_t wi = 0, rj = 0;
    for (const ResolvedRead* r : by_invoked) {
      while (wi < w_by_completed.size() &&
             w_by_completed[wi]->completed_at < r->op->invoked_at) {
        if (write_floor < w_by_completed[wi]->key) {
          write_floor = w_by_completed[wi]->key;
          write_floor_tmp = w_by_completed[wi]->tmp;
        }
        ++wi;
      }
      while (rj < by_completed.size() &&
             by_completed[rj]->op->completed_at < r->op->invoked_at) {
        if (read_floor < by_completed[rj]->key) {
          read_floor = by_completed[rj]->key;
          read_floor_tmp = by_completed[rj]->op->tmp;
        }
        ++rj;
      }
      if (r->key < write_floor) {
        out.push_back(Violation{
            "linearizability",
            describe(key, *r->op) + " but a write with tmp " +
                std::to_string(write_floor_tmp) + " completed before it"});
      }
      if (r->key < read_floor) {
        out.push_back(Violation{
            "linearizability",
            describe(key, *r->op) + " but an earlier read already returned tmp " +
                std::to_string(read_floor_tmp) + " (read inversion)"});
      }
    }

    // Membership: sweep reads in completion order, folding in writes
    // invoked strictly before each completion.
    std::vector<const ResolvedWrite*> w_by_invoked;
    for (const ResolvedWrite& w : writes) w_by_invoked.push_back(&w);
    std::sort(w_by_invoked.begin(), w_by_invoked.end(),
              [](const ResolvedWrite* a, const ResolvedWrite* b) {
                return a->invoked_at < b->invoked_at;
              });
    std::set<OrdKey> known{OrdKey{0}};  // [0] = the bootstrap value
    std::size_t wk = 0;
    for (const ResolvedRead* r : by_completed) {
      while (wk < w_by_invoked.size() &&
             w_by_invoked[wk]->invoked_at < r->op->completed_at) {
        known.insert(w_by_invoked[wk]->key);
        ++wk;
      }
      if (!known.contains(r->key)) {
        out.push_back(Violation{
            "linearizability",
            describe(key, *r->op) +
                " which is no write invoked before the read completed"});
      }
    }
  }
  return out;
}

}  // namespace heron::faultlab
