#include "faultlab/linear.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace heron::faultlab {

void LinearChecker::note_write(core::Oid key, std::uint32_t client,
                               std::uint64_t seq, sim::Nanos invoked_at,
                               sim::Nanos completed_at,
                               core::SubmitStatus status) {
  writes_[key].push_back(WriteOp{client, seq, invoked_at, completed_at,
                                 status});
}

void LinearChecker::note_read(core::Oid key, core::Tmp tmp,
                              sim::Nanos invoked_at, sim::Nanos completed_at,
                              bool fast) {
  reads_[key].push_back(ReadOp{tmp, invoked_at, completed_at, fast});
}

std::size_t LinearChecker::read_count() const {
  std::size_t n = 0;
  for (const auto& [key, ops] : reads_) n += ops.size();
  return n;
}

std::size_t LinearChecker::write_count() const {
  std::size_t n = 0;
  for (const auto& [key, ops] : writes_) n += ops.size();
  return n;
}

std::vector<Violation> LinearChecker::check(
    const HistoryRecorder& history) const {
  std::vector<Violation> out;

  // (client, seq) -> executed version timestamp. Session dedup plus total
  // order guarantee every replica executes the same attempt of a command,
  // so the first recorded tmp is THE tmp (exactly-once is checked by its
  // own oracle).
  std::map<CommandKey, core::Tmp> tmp_of;
  for (const auto& e : history.execs()) {
    tmp_of.try_emplace({e.client, e.seq}, e.tmp);
  }

  auto describe = [](core::Oid key, const ReadOp& r) {
    std::ostringstream os;
    os << (r.fast ? "fast" : "ordered") << " read of oid " << key
       << " at [" << r.invoked_at << ", " << r.completed_at << "] returned tmp "
       << r.tmp;
    return os.str();
  };

  for (const auto& [key, key_reads] : reads_) {
    // Resolve this key's writes once: every write with a recorded
    // execution (membership set), and the kOk-completed subset (staleness
    // lower bound).
    struct ResolvedWrite {
      core::Tmp tmp = 0;
      sim::Nanos invoked_at = 0;
      sim::Nanos completed_at = 0;
      bool completed_ok = false;
    };
    std::vector<ResolvedWrite> writes;
    if (const auto it = writes_.find(key); it != writes_.end()) {
      for (const WriteOp& w : it->second) {
        const auto t = tmp_of.find({w.client, w.seq});
        if (t == tmp_of.end()) continue;  // never executed anywhere
        writes.push_back(ResolvedWrite{
            t->second, w.invoked_at, w.completed_at,
            w.status == core::SubmitStatus::kOk});
      }
    }

    std::vector<const ReadOp*> by_invoked;
    by_invoked.reserve(key_reads.size());
    for (const ReadOp& r : key_reads) by_invoked.push_back(&r);
    std::sort(by_invoked.begin(), by_invoked.end(),
              [](const ReadOp* a, const ReadOp* b) {
                return a->invoked_at < b->invoked_at;
              });
    auto by_completed = by_invoked;
    std::sort(by_completed.begin(), by_completed.end(),
              [](const ReadOp* a, const ReadOp* b) {
                return a->completed_at < b->completed_at;
              });

    // Staleness + read order: sweep reads in invocation order, folding in
    // writes/reads that completed strictly before each invocation.
    std::vector<const ResolvedWrite*> w_by_completed;
    for (const ResolvedWrite& w : writes) {
      if (w.completed_ok) w_by_completed.push_back(&w);
    }
    std::sort(w_by_completed.begin(), w_by_completed.end(),
              [](const ResolvedWrite* a, const ResolvedWrite* b) {
                return a->completed_at < b->completed_at;
              });
    core::Tmp write_floor = 0;
    core::Tmp read_floor = 0;
    std::size_t wi = 0, rj = 0;
    for (const ReadOp* r : by_invoked) {
      while (wi < w_by_completed.size() &&
             w_by_completed[wi]->completed_at < r->invoked_at) {
        write_floor = std::max(write_floor, w_by_completed[wi]->tmp);
        ++wi;
      }
      while (rj < by_completed.size() &&
             by_completed[rj]->completed_at < r->invoked_at) {
        read_floor = std::max(read_floor, by_completed[rj]->tmp);
        ++rj;
      }
      if (r->tmp < write_floor) {
        out.push_back(Violation{
            "linearizability",
            describe(key, *r) + " but a write with tmp " +
                std::to_string(write_floor) + " completed before it"});
      }
      if (r->tmp < read_floor) {
        out.push_back(Violation{
            "linearizability",
            describe(key, *r) + " but an earlier read already returned tmp " +
                std::to_string(read_floor) + " (read inversion)"});
      }
    }

    // Membership: sweep reads in completion order, folding in writes
    // invoked strictly before each completion.
    std::vector<const ResolvedWrite*> w_by_invoked;
    for (const ResolvedWrite& w : writes) w_by_invoked.push_back(&w);
    std::sort(w_by_invoked.begin(), w_by_invoked.end(),
              [](const ResolvedWrite* a, const ResolvedWrite* b) {
                return a->invoked_at < b->invoked_at;
              });
    std::set<core::Tmp> known{0};  // 0 = the bootstrap value
    std::size_t wk = 0;
    for (const ReadOp* r : by_completed) {
      while (wk < w_by_invoked.size() &&
             w_by_invoked[wk]->invoked_at < r->completed_at) {
        known.insert(w_by_invoked[wk]->tmp);
        ++wk;
      }
      if (!known.contains(r->tmp)) {
        out.push_back(Violation{
            "linearizability",
            describe(key, *r) +
                " which is no write invoked before the read completed"});
      }
    }
  }
  return out;
}

}  // namespace heron::faultlab
