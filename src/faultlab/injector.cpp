#include "faultlab/injector.hpp"

#include <algorithm>
#include <vector>

#include "sim/log.hpp"

namespace heron::faultlab {

void Injector::run(FaultPlan plan) {
  sys_->simulator().spawn(execute(std::move(plan)));
}

sim::Task<void> Injector::execute(FaultPlan plan) {
  auto& sim = sys_->simulator();
  for (const auto& ev : plan.events()) {
    if (ev.at > sim.now()) co_await sim.sleep(ev.at - sim.now());
    apply(ev);
  }
}

void Injector::apply(const FaultEvent& ev) {
  auto& sim = sys_->simulator();
  auto& tracer = sys_->fabric().telemetry().tracer;

  switch (ev.kind) {
    case FaultKind::kCrash: {
      auto& node = sys_->amcast().endpoint(ev.target.group, ev.target.rank).node();
      tracer.instant("faultlab", "crash", node.id(),
                     {{"group", static_cast<std::uint64_t>(ev.target.group)},
                      {"rank", static_cast<std::uint64_t>(ev.target.rank)}});
      HSIM_LOG(sim, kInfo, "faultlab: crash g" << ev.target.group << ".r"
                                               << ev.target.rank);
      node.crash();
      crashed_.insert({ev.target.group, ev.target.rank});
      break;
    }
    case FaultKind::kRestart: {
      auto& node = sys_->amcast().endpoint(ev.target.group, ev.target.rank).node();
      tracer.instant("faultlab", "restart", node.id(),
                     {{"group", static_cast<std::uint64_t>(ev.target.group)},
                      {"rank", static_cast<std::uint64_t>(ev.target.rank)}});
      HSIM_LOG(sim, kInfo, "faultlab: restart g" << ev.target.group << ".r"
                                                 << ev.target.rank);
      sys_->restart_replica(ev.target.group, ev.target.rank);
      break;
    }
    case FaultKind::kLatency: {
      tracer.instant("faultlab", "latency", 0,
                     {{"factor_x1000",
                       static_cast<std::uint64_t>(ev.factor * 1000)},
                      {"duration_ns", static_cast<std::uint64_t>(ev.duration)}});
      sys_->fabric().set_latency_factor(ev.factor);
      sim.spawn(restore_latency(ev.duration));
      break;
    }
    case FaultKind::kBandwidth: {
      tracer.instant("faultlab", "bandwidth", 0,
                     {{"factor_x1000",
                       static_cast<std::uint64_t>(ev.factor * 1000)},
                      {"duration_ns", static_cast<std::uint64_t>(ev.duration)}});
      sys_->fabric().set_bandwidth_factor(ev.factor);
      sim.spawn(restore_bandwidth(ev.duration));
      break;
    }
    case FaultKind::kPartition: {
      std::vector<std::int32_t> nodes;
      for (const auto& ref : ev.targets) {
        if (ref.rank >= 0) {
          nodes.push_back(
              sys_->amcast().endpoint(ref.group, ref.rank).node().id());
          continue;
        }
        for (int q = 0; q < sys_->replicas_per_partition(); ++q) {
          nodes.push_back(sys_->amcast().endpoint(ref.group, q).node().id());
        }
      }
      tracer.instant("faultlab", "partition", 0,
                     {{"nodes", nodes.size()},
                      {"duration_ns", static_cast<std::uint64_t>(ev.duration)}});
      // heal_at makes the cut self-expiring; traffic crossing it is
      // stalled (never dropped) until then.
      sys_->fabric().partition(std::move(nodes), sim.now() + ev.duration);
      break;
    }
    case FaultKind::kJitter: {
      tracer.instant("faultlab", "jitter", 0,
                     {{"prob_x1000",
                       static_cast<std::uint64_t>(ev.hiccup_prob * 1000)},
                      {"duration_ns", static_cast<std::uint64_t>(ev.duration)}});
      auto& cfg = sys_->mutable_config();
      const double old_prob = cfg.hiccup_prob;
      const sim::Nanos old_dur = cfg.hiccup_duration;
      cfg.hiccup_prob = ev.hiccup_prob;
      cfg.hiccup_duration = ev.hiccup_duration;
      sim.spawn(restore_jitter(ev.duration, old_prob, old_dur));
      break;
    }
    case FaultKind::kIncast:
    case FaultKind::kVictim: {
      tracer.instant(
          "faultlab", fault_kind_name(ev.kind),
          sys_->amcast().endpoint(ev.target.group, ev.target.rank).node().id(),
          {{"fanin", static_cast<std::uint64_t>(std::max(ev.fanin, 1))},
           {"bytes", ev.bytes},
           {"duration_ns", static_cast<std::uint64_t>(ev.duration)}});
      HSIM_LOG(sim, kInfo, "faultlab: " << fault_kind_name(ev.kind) << " g"
                                        << ev.target.group << ".r"
                                        << ev.target.rank);
      sim.spawn(run_inflow(ev));
      break;
    }
    case FaultKind::kCreditBurst: {
      tracer.instant(
          "faultlab", "creditburst",
          sys_->amcast().endpoint(ev.target.group, ev.target.rank).node().id(),
          {{"count", static_cast<std::uint64_t>(ev.fanin)},
           {"bytes", ev.bytes},
           {"duration_ns", static_cast<std::uint64_t>(ev.duration)}});
      HSIM_LOG(sim, kInfo, "faultlab: creditburst g" << ev.target.group
                                                     << ".r" << ev.target.rank);
      sim.spawn(run_credit_burst(ev));
      break;
    }
  }
}

std::vector<std::int32_t> Injector::phantom_senders(int count) {
  auto& fabric = sys_->fabric();
  while (phantoms_.size() < static_cast<std::size_t>(count)) {
    auto& node = fabric.add_node();
    fabric.telemetry().tracer.set_tid_name(
        node.id(), "phantom" + std::to_string(phantoms_.size()));
    phantoms_.push_back(node.id());
  }
  return {phantoms_.begin(), phantoms_.begin() + count};
}

sim::Task<void> Injector::run_inflow(FaultEvent ev) {
  auto& sim = sys_->simulator();
  auto& fabric = sys_->fabric();
  const std::int32_t target =
      sys_->amcast().endpoint(ev.target.group, ev.target.rank).node().id();
  // Phantom senders land in fresh racks past the real cluster, so their
  // flows converge on the target rack's shared link — a victim flow is
  // just an incast of one bulk aggressor.
  const auto senders = phantom_senders(std::max(ev.fanin, 1));
  const sim::Nanos end = sim.now() + ev.duration;
  while (sim.now() < end) {
    for (const std::int32_t s : senders) {
      fabric.inject_flow(s, target, ev.bytes);
    }
    co_await sim.sleep(ev.period);
  }
  fabric.telemetry().tracer.instant("faultlab", "inflow_done", target);
}

sim::Task<void> Injector::run_credit_burst(FaultEvent ev) {
  auto& sim = sys_->simulator();
  auto& fabric = sys_->fabric();
  auto& ep = sys_->amcast().endpoint(ev.target.group, ev.target.rank);
  const std::int32_t self = ep.node().id();
  const sim::Nanos end = sim.now() + ev.duration;
  while (sim.now() < end) {
    for (int r = 0; r < sys_->replicas_per_partition(); ++r) {
      if (r == ev.target.rank) continue;
      const std::int32_t peer =
          sys_->amcast().endpoint(ev.target.group, r).node().id();
      for (int i = 0; i < ev.fanin; ++i) {
        fabric.inject_flow(self, peer, ev.bytes);
      }
    }
    co_await sim.sleep(ev.period);
  }
  fabric.telemetry().tracer.instant("faultlab", "creditburst_done", self);
}

sim::Task<void> Injector::restore_latency(sim::Nanos after) {
  co_await sys_->simulator().sleep(after);
  sys_->fabric().set_latency_factor(1.0);
  sys_->fabric().telemetry().tracer.instant("faultlab", "latency_restored", 0);
}

sim::Task<void> Injector::restore_bandwidth(sim::Nanos after) {
  co_await sys_->simulator().sleep(after);
  sys_->fabric().set_bandwidth_factor(1.0);
  sys_->fabric().telemetry().tracer.instant("faultlab", "bandwidth_restored",
                                            0);
}

sim::Task<void> Injector::restore_jitter(sim::Nanos after, double prob,
                                         sim::Nanos duration) {
  co_await sys_->simulator().sleep(after);
  auto& cfg = sys_->mutable_config();
  cfg.hiccup_prob = prob;
  cfg.hiccup_duration = duration;
  sys_->fabric().telemetry().tracer.instant("faultlab", "jitter_restored", 0);
}

}  // namespace heron::faultlab
