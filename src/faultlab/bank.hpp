// Replicated bank used by faultlab tests and the chaos explorer: one
// account object per key, partitioned by key modulo partition count.
// Deposits are single-partition; transfers touch up to two partitions.
// Conservation of the total balance is the application-level oracle on
// top of the generic multicast/convergence checks.
#pragma once

#include <cstdint>
#include <cstring>

#include "core/app.hpp"
#include "core/system.hpp"
#include "faultlab/history.hpp"
#include "sim/random.hpp"

namespace heron::faultlab {

enum BankKind : std::uint32_t { kDeposit = 1, kTransfer = 2, kSet = 3 };

/// kDeposit: amount is a delta. kSet: amount is the absolute balance — a
/// blind write whose outcome is independent of the state it clobbers,
/// which makes it the ordered-stream twin of a leased fast write (the
/// fast path may only carry ops with exactly this property).
struct DepositReq {
  std::uint64_t account;
  std::int64_t amount;
};
struct TransferReq {
  std::uint64_t from;
  std::uint64_t to;
  std::int64_t amount;
};
struct Account {
  std::int64_t balance;
};

class BankApp : public core::Application {
 public:
  BankApp(int partitions, std::uint64_t accounts_per_partition,
          std::int64_t initial_balance = 1000)
      : partitions_(partitions),
        per_partition_(accounts_per_partition),
        initial_(initial_balance) {}

  [[nodiscard]] core::GroupId partition_of(core::Oid oid) const override {
    return static_cast<core::GroupId>(oid %
                                      static_cast<std::uint64_t>(partitions_));
  }

  [[nodiscard]] std::vector<core::Oid> read_set(
      const core::Request& r, core::GroupId) const override {
    switch (r.header.kind) {
      case kDeposit:
      case kSet:
        return {decode<DepositReq>(r).account};
      case kTransfer: {
        const auto t = decode<TransferReq>(r);
        return {t.from, t.to};
      }
      default:
        return {};
    }
  }

  core::Reply execute(const core::Request& r,
                      core::ExecContext& ctx) override {
    ctx.charge(sim::us(1));
    switch (r.header.kind) {
      case kDeposit: {
        const auto req = decode<DepositReq>(r);
        auto acct = ctx.value_as<Account>(req.account);
        acct.balance += req.amount;
        ctx.write_as(req.account, acct);
        return core::Reply{};
      }
      case kSet: {
        const auto req = decode<DepositReq>(r);
        ctx.write_as(req.account, Account{req.amount});
        return core::Reply{};
      }
      case kTransfer: {
        const auto req = decode<TransferReq>(r);
        const auto from = ctx.value_as<Account>(req.from);
        const auto to = ctx.value_as<Account>(req.to);
        if (partition_of(req.from) == ctx.my_partition()) {
          Account nf{from.balance - req.amount};
          ctx.write_as(req.from, nf);
        }
        if (partition_of(req.to) == ctx.my_partition()) {
          Account nt{to.balance + req.amount};
          ctx.write_as(req.to, nt);
        }
        return core::Reply{};
      }
      default:
        return core::Reply{.status = 1};
    }
  }

  void bootstrap(core::GroupId partition, core::ObjectStore& store) override {
    const Account init{initial_};
    for (std::uint64_t k = 0; k < per_partition_; ++k) {
      const core::Oid oid = static_cast<std::uint64_t>(partition) +
                            k * static_cast<std::uint64_t>(partitions_);
      store.create(oid, std::as_bytes(std::span(&init, 1)));
    }
  }

  template <typename T>
  static T decode(const core::Request& r) {
    T out;
    std::memcpy(&out, r.payload.data(), sizeof(T));
    return out;
  }

 private:
  int partitions_;
  std::uint64_t per_partition_;
  std::int64_t initial_;
};

/// Total balance across all partitions as stored at replica `rank` of
/// each group. Conservation: transfers keep it constant; deposits add.
inline std::int64_t bank_total(core::System& sys, int rank,
                               std::uint64_t accounts_per_partition) {
  std::int64_t total = 0;
  for (core::GroupId g = 0; g < sys.partitions(); ++g) {
    for (std::uint64_t k = 0; k < accounts_per_partition; ++k) {
      const core::Oid oid = static_cast<core::Oid>(g) +
                            k * static_cast<core::Oid>(sys.partitions());
      auto [tmp, bytes] = sys.replica(g, rank).store().get(oid);
      Account a;
      std::memcpy(&a, bytes.data(), sizeof(a));
      total += a.balance;
    }
  }
  return total;
}

/// Closed-loop transfer workload. History is captured by the observers
/// a HistoryRecorder attaches to the system — the loop itself records
/// nothing, so attempts (including retries) and outcomes are seen even
/// for requests wedged by a fault.
inline sim::Task<void> bank_client_loop(core::System& sys,
                                        core::Client& client,
                                        std::uint64_t seed, int ops,
                                        std::uint64_t accounts_per_partition) {
  sim::Rng rng(seed);
  const auto partitions = static_cast<std::uint64_t>(sys.partitions());
  const auto total = partitions * accounts_per_partition;
  for (int k = 0; k < ops; ++k) {
    const std::uint64_t a = rng.bounded(total);
    std::uint64_t b = rng.bounded(total);
    if (b == a) b = (a + 1) % total;
    TransferReq req{a, b, 2};
    const auto dst =
        amcast::dst_of(static_cast<amcast::GroupId>(a % partitions)) |
        amcast::dst_of(static_cast<amcast::GroupId>(b % partitions));
    co_await client.submit(dst, kTransfer, std::as_bytes(std::span(&req, 1)));
  }
}

}  // namespace heron::faultlab
