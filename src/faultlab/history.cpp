#include "faultlab/history.hpp"

#include <algorithm>
#include <sstream>

namespace heron::faultlab {

namespace {

std::string uid_str(amcast::MsgUid uid) {
  std::ostringstream os;
  os << "c" << amcast::uid_client(uid) << "#" << amcast::uid_seq(uid);
  return os.str();
}

std::string cmd_str(std::uint32_t client, std::uint64_t seq) {
  std::ostringstream os;
  os << "c" << client << "/s" << seq;
  return os.str();
}

}  // namespace

void HistoryRecorder::attach(core::System& sys) {
  sys_ = &sys;
  for (core::GroupId g = 0; g < sys.partitions(); ++g) {
    for (int r = 0; r < sys.replicas_per_partition(); ++r) {
      sys.amcast().endpoint(g, r).set_delivery_observer(
          [this, g, r](const amcast::Delivery& d) {
            deliveries_.push_back(DeliveryEvent{g, r, d.uid, d.tmp, d.dst,
                                                d.lease, d.epoch,
                                                sys_->simulator().now()});
          });
    }
  }
  sys.set_attempt_observer([this](std::uint32_t client, std::uint64_t seq,
                                  amcast::MsgUid uid, amcast::DstMask dst,
                                  int attempt) {
    invokes_.push_back(
        InvokeEvent{client, seq, uid, dst, attempt, sys_->simulator().now()});
  });
  sys.set_outcome_observer([this](std::uint32_t client, std::uint64_t seq,
                                  core::SubmitStatus status, int attempts) {
    outcomes_[{client, seq}] =
        OutcomeEvent{status, attempts, sys_->simulator().now()};
  });
  sys.set_exec_observer([this](core::GroupId g, int r, std::uint32_t client,
                               std::uint64_t seq, amcast::MsgUid uid,
                               core::Tmp tmp) {
    execs_.push_back(ExecEvent{g, r, client, seq, uid, tmp});
  });
}

std::vector<Violation> check_amcast_properties(const HistoryRecorder& history,
                                               core::System& sys,
                                               const CrashSet& ever_crashed) {
  std::vector<Violation> out;
  auto violation = [&out](const char* oracle, const std::string& detail) {
    out.push_back(Violation{oracle, detail});
  };

  // Every attempt uid is a legitimate message; multiple uids may carry
  // the same logical command.
  std::set<amcast::MsgUid> invoked;
  for (const auto& inv : history.invokes()) invoked.insert(inv.uid);

  // Per-replica delivery sequences + global uid <-> timestamp maps.
  std::map<std::pair<std::int32_t, int>, std::vector<const DeliveryEvent*>>
      per_replica;
  std::map<amcast::MsgUid, std::uint64_t> uid_tmp;
  std::map<std::uint64_t, amcast::MsgUid> tmp_uid;
  // uid -> groups that delivered it, and per (group, replica) dedupe.
  std::map<amcast::MsgUid, std::set<std::int32_t>> delivered_groups;
  std::map<amcast::MsgUid, std::map<std::int32_t, std::set<int>>>
      delivered_by;

  for (const auto& d : history.deliveries()) {
    per_replica[{d.group, d.rank}].push_back(&d);

    // Integrity: only invoked messages (when invocations were recorded),
    // only at destination groups, at most once per replica. Lease-grant
    // markers come from internal endpoints that fire no attempt observer,
    // so they are exempt from the uninvoked check (but not from the
    // order, timestamp and agreement checks below).
    if (!d.lease && !d.epoch && !invoked.empty() && !invoked.contains(d.uid)) {
      violation("integrity", "replica g" + std::to_string(d.group) + ".r" +
                                 std::to_string(d.rank) +
                                 " delivered uninvoked " + uid_str(d.uid));
    }
    if (!amcast::dst_contains(d.dst, d.group)) {
      violation("integrity", "g" + std::to_string(d.group) +
                                 " is not a destination of " + uid_str(d.uid));
    }
    if (!delivered_by[d.uid][d.group].insert(d.rank).second) {
      violation("integrity", "g" + std::to_string(d.group) + ".r" +
                                 std::to_string(d.rank) +
                                 " delivered " + uid_str(d.uid) + " twice");
    }
    delivered_groups[d.uid].insert(d.group);

    // Uniform timestamps: all deliveries of a uid agree on tmp; tmps are
    // globally unique across uids.
    if (auto [it, inserted] = uid_tmp.try_emplace(d.uid, d.tmp);
        !inserted && it->second != d.tmp) {
      violation("uniform-timestamps",
                uid_str(d.uid) + " delivered with tmp " +
                    std::to_string(d.tmp) + " and " +
                    std::to_string(it->second));
    }
    if (auto [it, inserted] = tmp_uid.try_emplace(d.tmp, d.uid);
        !inserted && it->second != d.uid) {
      violation("uniform-timestamps",
                "tmp " + std::to_string(d.tmp) + " assigned to both " +
                    uid_str(d.uid) + " and " + uid_str(it->second));
    }
  }

  // Total/prefix order: per-replica delivery timestamps strictly increase.
  // Combined with globally unique timestamps this gives pairwise prefix
  // consistency and acyclicity.
  for (const auto& [key, seq] : per_replica) {
    for (std::size_t i = 1; i < seq.size(); ++i) {
      if (seq[i]->tmp <= seq[i - 1]->tmp) {
        violation("total-order",
                  "g" + std::to_string(key.first) + ".r" +
                      std::to_string(key.second) + " delivered " +
                      uid_str(seq[i]->uid) + " (tmp " +
                      std::to_string(seq[i]->tmp) + ") after tmp " +
                      std::to_string(seq[i - 1]->tmp));
      }
    }
  }

  // Agreement: a delivered message reaches every never-crashed replica of
  // each group that delivered it.
  for (const auto& [uid, by_group] : delivered_by) {
    for (const auto& [g, ranks] : by_group) {
      for (int r = 0; r < sys.replicas_per_partition(); ++r) {
        if (ranks.contains(r)) continue;
        if (ever_crashed.contains({g, r})) continue;
        violation("agreement", "g" + std::to_string(g) + ".r" +
                                   std::to_string(r) + " never delivered " +
                                   uid_str(uid));
      }
    }
  }

  // Validity, per logical command: every submit reaches a terminal
  // outcome (a hung client is a violation), and a successful command is
  // delivered in each destination group under at least one attempt uid.
  // Timed-out / shed commands carry no delivery obligation.
  struct CmdState {
    amcast::DstMask dst = 0;
    std::vector<amcast::MsgUid> uids;
  };
  std::map<CommandKey, CmdState> commands;
  for (const auto& inv : history.invokes()) {
    auto& cmd = commands[{inv.client, inv.seq}];
    cmd.dst |= inv.dst;
    cmd.uids.push_back(inv.uid);
  }
  for (const auto& [key, cmd] : commands) {
    const auto outcome = history.outcomes().find(key);
    if (outcome == history.outcomes().end()) {
      violation("validity",
                cmd_str(key.first, key.second) + " never terminated");
      continue;
    }
    if (outcome->second.status != core::SubmitStatus::kOk) continue;
    for (core::GroupId g = 0; g < sys.partitions(); ++g) {
      if (!amcast::dst_contains(cmd.dst, g)) continue;
      const bool delivered = std::any_of(
          cmd.uids.begin(), cmd.uids.end(), [&](amcast::MsgUid uid) {
            return delivered_groups[uid].contains(g);
          });
      if (!delivered) {
        violation("validity", cmd_str(key.first, key.second) +
                                  " succeeded but no attempt was delivered "
                                  "in g" +
                                  std::to_string(g));
      }
    }
  }

  return out;
}

std::vector<Violation> check_exactly_once(
    const std::vector<ExecEvent>& execs) {
  std::vector<Violation> out;
  std::map<std::pair<std::int32_t, int>, std::set<CommandKey>> seen;
  for (const auto& e : execs) {
    if (e.seq == 0) continue;  // sessionless command: dedup not promised
    if (!seen[{e.group, e.rank}].insert({e.client, e.seq}).second) {
      out.push_back(Violation{
          "exactly-once",
          "g" + std::to_string(e.group) + ".r" + std::to_string(e.rank) +
              " executed " + cmd_str(e.client, e.seq) + " more than once"});
    }
  }
  return out;
}

void check_exactly_once(const HistoryRecorder& history,
                        std::vector<Violation>& violations) {
  auto v = check_exactly_once(history.execs());
  violations.insert(violations.end(), v.begin(), v.end());
}

std::vector<sim::Nanos> command_latencies(const HistoryRecorder& history) {
  std::map<CommandKey, sim::Nanos> first_attempt;
  for (const auto& inv : history.invokes()) {
    auto [it, inserted] = first_attempt.try_emplace({inv.client, inv.seq},
                                                    inv.at);
    if (!inserted && inv.at < it->second) it->second = inv.at;
  }
  std::vector<sim::Nanos> out;
  out.reserve(history.outcomes().size());
  for (const auto& [key, outcome] : history.outcomes()) {
    if (outcome.status != core::SubmitStatus::kOk) continue;
    const auto it = first_attempt.find(key);
    if (it == first_attempt.end()) continue;
    out.push_back(outcome.at - it->second);
  }
  return out;
}

sim::Nanos latency_percentile(std::vector<sim::Nanos> sample, double p) {
  if (sample.empty()) return 0;
  std::sort(sample.begin(), sample.end());
  const auto n = static_cast<double>(sample.size());
  auto rank = static_cast<std::size_t>(p / 100.0 * n);  // nearest-rank, 1-based
  if (rank > 0) --rank;
  if (rank >= sample.size()) rank = sample.size() - 1;
  return sample[rank];
}

void check_tail_latency(const HistoryRecorder& history, sim::Nanos p99_bound,
                        std::vector<Violation>& violations) {
  const auto sample = command_latencies(history);
  if (sample.empty()) {
    violations.push_back(Violation{
        "tail-latency", "no command completed successfully (goodput collapse)"});
    return;
  }
  const sim::Nanos p99 = latency_percentile(sample, 99.0);
  if (p99 > p99_bound) {
    violations.push_back(Violation{
        "tail-latency", "p99 latency " + std::to_string(p99) + "ns exceeds " +
                            std::to_string(p99_bound) + "ns over " +
                            std::to_string(sample.size()) + " commands"});
  }
}

std::uint64_t store_digest(core::Replica& replica) {
  auto& store = replica.store();
  std::vector<core::Oid> oids;
  oids.reserve(store.object_count());
  store.for_each_oid([&oids](core::Oid oid) { oids.push_back(oid); });
  std::sort(oids.begin(), oids.end());

  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](const std::byte* data, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i) {
      h ^= static_cast<std::uint64_t>(data[i]);
      h *= 1099511628211ull;
    }
  };
  for (const core::Oid oid : oids) {
    mix(reinterpret_cast<const std::byte*>(&oid), sizeof(oid));
    // Digest the *current* version only: a restarted replica received it
    // via install_version (which fills both slots), while survivors still
    // hold a stale older version in the second slot.
    const auto [tmp, value] = store.get(oid);
    mix(reinterpret_cast<const std::byte*>(&tmp), sizeof(tmp));
    mix(value.data(), value.size());
  }
  return h;
}

std::uint64_t session_digest(core::Replica& replica) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](const void* data, std::size_t len) {
    const auto* p = static_cast<const std::byte*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= static_cast<std::uint64_t>(p[i]);
      h *= 1099511628211ull;
    }
  };
  for (const auto& [client, s] : replica.sessions()) {
    mix(&client, sizeof(client));
    mix(&s.watermark, sizeof(s.watermark));
    mix(&s.cached_seq, sizeof(s.cached_seq));
    mix(&s.last_tmp, sizeof(s.last_tmp));
    mix(&s.cached_reply.status, sizeof(s.cached_reply.status));
    for (const std::uint64_t e : s.above) mix(&e, sizeof(e));
  }
  return h;
}

void check_session_convergence(core::System& sys,
                               std::vector<Violation>& violations) {
  for (core::GroupId g = 0; g < sys.partitions(); ++g) {
    std::uint64_t want = 0;
    int want_rank = -1;
    for (int r = 0; r < sys.replicas_per_partition(); ++r) {
      core::Replica& rep = sys.replica(g, r);
      if (!rep.node().alive()) continue;
      const std::uint64_t d = session_digest(rep);
      if (want_rank < 0) {
        want = d;
        want_rank = r;
        continue;
      }
      if (d != want) {
        violations.push_back(Violation{
            "session-convergence",
            "g" + std::to_string(g) + ".r" + std::to_string(r) +
                " session digest differs from r" + std::to_string(want_rank)});
      }
    }
  }
}

void check_store_convergence(core::System& sys,
                             std::vector<Violation>& violations) {
  for (core::GroupId g = 0; g < sys.partitions(); ++g) {
    std::uint64_t want = 0;
    int want_rank = -1;
    for (int r = 0; r < sys.replicas_per_partition(); ++r) {
      core::Replica& rep = sys.replica(g, r);
      if (!rep.node().alive()) continue;
      const std::uint64_t d = store_digest(rep);
      if (want_rank < 0) {
        want = d;
        want_rank = r;
        continue;
      }
      if (d != want) {
        violations.push_back(Violation{
            "convergence",
            "g" + std::to_string(g) + ".r" + std::to_string(r) +
                " store digest differs from r" + std::to_string(want_rank)});
      }
    }
  }
}

}  // namespace heron::faultlab
