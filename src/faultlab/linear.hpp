// Linearizability oracle for reads interleaved with writes (and crashes).
//
// The workload reports every read and write operation on a per-object
// register history; check() verifies the reads against the version
// timestamps the writes were executed with (resolved through the
// HistoryRecorder's execution stream — the multicast timestamp doubles as
// the version number, so real-time order and version order must agree):
//
//   * staleness   — a read must return a version at least as new as the
//                   newest write to the same key that COMPLETED (kOk at
//                   the client) before the read was invoked;
//   * membership  — the returned version must be 0 (the bootstrap value)
//                   or the timestamp of a write to the same key that was
//                   invoked before the read completed (no reads from the
//                   future, no invented versions);
//   * read order  — two non-overlapping reads of the same key must see
//                   non-decreasing versions (the read-inversion check the
//                   fast-read write gate exists to uphold).
//
// Writes that timed out at the client are excluded from the staleness
// lower bound (they may or may not have executed) but still count for
// membership when an execution was recorded.
//
// Fast (leased one-sided) writes commit outside the ordered execution
// stream, with version tmps that carry the fast tag (bit 63) and are NOT
// numerically comparable to multicast timestamps: a fast tmp always
// compares above every plain tmp, yet the ordered write that later wipes
// the slot is newer. The checker therefore compares versions by an
// *order key* — plain tmp t maps to the one-element vector [t]; a fast
// write chained on base b maps to ordkey(b) ++ [completed_at] — under
// lexicographic order. That matches the protocol's structure: committed
// fast writes on one key form chains off a plain version (the CAS on the
// seqlock word serialises them), and an interleaved ordered write aborts
// any in-flight fast attempt, so its (higher) plain timestamp correctly
// dominates the whole chain it wiped.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/types.hpp"
#include "faultlab/history.hpp"

namespace heron::faultlab {

class LinearChecker {
 public:
  /// Reports a write of `key` submitted as logical command (client, seq).
  /// `invoked_at`/`completed_at` bracket the whole submit (all attempts);
  /// `status` is the client's terminal verdict.
  void note_write(core::Oid key, std::uint32_t client, std::uint64_t seq,
                  sim::Nanos invoked_at, sim::Nanos completed_at,
                  core::SubmitStatus status);

  /// Reports a committed fast (leased one-sided) write of `key`: version
  /// `tmp` (WriteResult::tmp) chained on the sampled base version `base`
  /// (WriteResult::base_tmp). Fast commits never appear in the ordered
  /// execution stream, so the version is reported directly instead of
  /// being resolved through the HistoryRecorder. Aborted fast attempts
  /// retry on the ordered stream and are reported via note_write.
  void note_fast_write(core::Oid key, core::Tmp tmp, core::Tmp base,
                       sim::Nanos invoked_at, sim::Nanos completed_at);

  /// Reports a read of `key` that returned version `tmp` (0 = bootstrap
  /// value). `fast` tags one-sided reads in violation messages.
  void note_read(core::Oid key, core::Tmp tmp, sim::Nanos invoked_at,
                 sim::Nanos completed_at, bool fast);

  [[nodiscard]] std::size_t read_count() const;
  [[nodiscard]] std::size_t write_count() const;

  /// Runs the three per-key checks. `history` resolves (client, seq) to
  /// the executed version timestamp.
  [[nodiscard]] std::vector<Violation> check(
      const HistoryRecorder& history) const;

 private:
  struct WriteOp {
    std::uint32_t client = 0;
    std::uint64_t seq = 0;
    sim::Nanos invoked_at = 0;
    sim::Nanos completed_at = 0;
    core::SubmitStatus status = core::SubmitStatus::kOk;
  };
  struct FastWriteOp {
    core::Tmp tmp = 0;
    core::Tmp base = 0;
    sim::Nanos invoked_at = 0;
    sim::Nanos completed_at = 0;
  };
  struct ReadOp {
    core::Tmp tmp = 0;
    sim::Nanos invoked_at = 0;
    sim::Nanos completed_at = 0;
    bool fast = false;
  };
  std::map<core::Oid, std::vector<WriteOp>> writes_;
  std::map<core::Oid, std::vector<FastWriteOp>> fast_writes_;
  std::map<core::Oid, std::vector<ReadOp>> reads_;
};

}  // namespace heron::faultlab
