// History recording + checking oracles for chaos runs.
//
// The recorder captures four event streams during a run, all via
// observers so workloads need no bookkeeping of their own:
//   * client attempts — every multicast performed by a submit (retries
//     appear as extra attempts of the same logical command);
//   * client outcomes — the terminal verdict of each submit
//     (ok / timeout / overloaded);
//   * executions — a replica completed executing a command (the
//     exactly-once evidence stream);
//   * atomic multicast deliveries at every replica, via the endpoint's
//     delivery observer.
//
// The oracles check the captured history against the multicast properties
// Heron consumes (§II-B) plus SMR convergence of the object stores:
//   * integrity      — each replica delivers a message at most once, only
//                      if invoked, and only if its group is a destination;
//   * uniform timestamps — every delivery of m carries the same final
//                      timestamp, and no two messages share one;
//   * total/prefix order — per-replica delivery timestamps strictly
//                      increase (with unique global timestamps this
//                      implies pairwise prefix consistency);
//   * agreement      — a message delivered in group g is delivered by
//                      every replica of g that never crashed;
//   * validity       — every submitted command reaches a terminal outcome
//                      (no hung clients), and every successful command is
//                      delivered in each destination group under at least
//                      one of its attempt uids;
//   * exactly-once   — no replica executes the same logical command
//                      (client, session seq) more than once, no matter
//                      how many retry attempts were multicast;
//   * convergence    — all live replicas of a group hold byte-identical
//                      current object state (checked via store digests).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "amcast/types.hpp"
#include "core/system.hpp"

namespace heron::faultlab {

struct DeliveryEvent {
  std::int32_t group = 0;
  int rank = 0;
  amcast::MsgUid uid = 0;
  std::uint64_t tmp = 0;
  amcast::DstMask dst = 0;
  /// Lease-grant marker injected by an internal endpoint (no matching
  /// invoke event); still subject to order/timestamp/agreement checks.
  bool lease = false;
  /// Layout-epoch marker (heron::reconfig), same exemption as lease.
  bool epoch = false;
  sim::Nanos at = 0;
};

/// One multicast attempt of a logical command (client, seq). Retries
/// record additional attempts with fresh uids.
struct InvokeEvent {
  std::uint32_t client = 0;
  std::uint64_t seq = 0;  // client session sequence number
  amcast::MsgUid uid = 0;
  amcast::DstMask dst = 0;
  int attempt = 0;
  sim::Nanos at = 0;
};

/// Terminal verdict of a submit.
struct OutcomeEvent {
  core::SubmitStatus status = core::SubmitStatus::kOk;
  int attempts = 1;
  sim::Nanos at = 0;
};

/// A replica completed executing a command (writes applied).
struct ExecEvent {
  std::int32_t group = 0;
  int rank = 0;
  std::uint32_t client = 0;
  std::uint64_t seq = 0;
  amcast::MsgUid uid = 0;
  std::uint64_t tmp = 0;
};

/// Logical command identity: (client id, session seq).
using CommandKey = std::pair<std::uint32_t, std::uint64_t>;

class HistoryRecorder {
 public:
  /// Installs delivery observers on every endpoint of `sys` plus the
  /// system's client-attempt / client-outcome / execution observers. The
  /// recorder must outlive the system's protocol activity, and only one
  /// recorder can be attached to a system at a time.
  void attach(core::System& sys);

  [[nodiscard]] const std::vector<DeliveryEvent>& deliveries() const {
    return deliveries_;
  }
  [[nodiscard]] const std::vector<InvokeEvent>& invokes() const {
    return invokes_;
  }
  [[nodiscard]] const std::map<CommandKey, OutcomeEvent>& outcomes() const {
    return outcomes_;
  }
  [[nodiscard]] const std::vector<ExecEvent>& execs() const { return execs_; }

 private:
  core::System* sys_ = nullptr;
  std::vector<DeliveryEvent> deliveries_;
  std::vector<InvokeEvent> invokes_;
  std::map<CommandKey, OutcomeEvent> outcomes_;
  std::vector<ExecEvent> execs_;
};

struct Violation {
  std::string oracle;  // which property failed
  std::string detail;  // human-readable description
};

/// Replicas excluded from the agreement check (crashed at least once —
/// recovery catches up via state transfer, not re-delivery).
using CrashSet = std::set<std::pair<std::int32_t, int>>;

/// Runs the multicast-property oracles over the recorded history.
/// Validity is only checked when invocations were recorded.
std::vector<Violation> check_amcast_properties(const HistoryRecorder& history,
                                               core::System& sys,
                                               const CrashSet& ever_crashed);

/// Exactly-once oracle over an execution-event stream: no (group, rank)
/// executes the same (client, seq) more than once. Exposed on raw events
/// so tests can feed synthetic histories.
std::vector<Violation> check_exactly_once(const std::vector<ExecEvent>& execs);

/// Convenience wrapper: appends exactly-once violations from `history`.
void check_exactly_once(const HistoryRecorder& history,
                        std::vector<Violation>& violations);

/// FNV-1a digest over the store's current object versions in oid order:
/// (oid, version timestamp, value bytes). Two replicas executing the same
/// request sequence produce identical digests.
std::uint64_t store_digest(core::Replica& replica);

/// Appends a violation for every group whose live replicas disagree on
/// their store digest. Crashed (not restarted) replicas are skipped.
void check_store_convergence(core::System& sys,
                             std::vector<Violation>& violations);

/// End-to-end latency of every successfully completed command: terminal
/// outcome time minus the command's *first* attempt time (retries are
/// inside the latency, as a real client would experience them).
std::vector<sim::Nanos> command_latencies(const HistoryRecorder& history);

/// Nearest-rank percentile of a latency sample (p in (0, 100]); the
/// sample is taken by value because it is sorted in place. Empty -> 0.
sim::Nanos latency_percentile(std::vector<sim::Nanos> sample, double p);

/// Tail-latency oracle for congestion runs: appends a violation when the
/// p99 end-to-end command latency exceeds `p99_bound`, or when no command
/// completed at all (goodput collapse). Hung clients are caught by the
/// validity oracle, so together these bound both tails of degradation.
void check_tail_latency(const HistoryRecorder& history, sim::Nanos p99_bound,
                        std::vector<Violation>& violations);

/// FNV-1a digest over the replica's session-dedup state in client order:
/// (client, watermark, above-set, cached_seq, last_tmp, cached status).
/// The cached reply *payload* and the paged-out flag are excluded —
/// checkpoint-driven reply page-out timing legitimately differs across
/// replicas; dedup correctness rests on the fields digested here.
std::uint64_t session_digest(core::Replica& replica);

/// Appends a violation for every group whose live replicas disagree on
/// their session digest. Only valid with session_ttl disabled: TTL
/// eviction happens at each replica's own checkpoint cadence, so evicted
/// sets legitimately diverge (retries still get a stale-session or cached
/// reply, never a re-execution — covered by the exactly-once oracle).
void check_session_convergence(core::System& sys,
                               std::vector<Violation>& violations);

}  // namespace heron::faultlab
