// History recording + checking oracles for chaos runs.
//
// The recorder captures three event streams during a run:
//   * client invocations (uid, destination set) — recorded by the
//     workload driver *before* submitting, so stalled requests are seen;
//   * client responses (uid);
//   * atomic multicast deliveries at every replica, via the endpoint's
//     delivery observer.
//
// The oracles check the captured history against the multicast properties
// Heron consumes (§II-B) plus SMR convergence of the object stores:
//   * integrity      — each replica delivers a message at most once, only
//                      if invoked, and only if its group is a destination;
//   * uniform timestamps — every delivery of m carries the same final
//                      timestamp, and no two messages share one;
//   * total/prefix order — per-replica delivery timestamps strictly
//                      increase (with unique global timestamps this
//                      implies pairwise prefix consistency);
//   * agreement      — a message delivered in group g is delivered by
//                      every replica of g that never crashed;
//   * validity       — every invoked message is delivered in every
//                      destination group, and its client got a response.
//   * convergence    — all live replicas of a group hold byte-identical
//                      current object state (checked via store digests).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "amcast/types.hpp"
#include "core/system.hpp"

namespace heron::faultlab {

struct DeliveryEvent {
  std::int32_t group = 0;
  int rank = 0;
  amcast::MsgUid uid = 0;
  std::uint64_t tmp = 0;
  amcast::DstMask dst = 0;
  sim::Nanos at = 0;
};

struct InvokeEvent {
  amcast::MsgUid uid = 0;
  amcast::DstMask dst = 0;
  sim::Nanos at = 0;
};

class HistoryRecorder {
 public:
  /// Installs delivery observers on every endpoint of `sys`. The recorder
  /// must outlive the system's protocol activity.
  void attach(core::System& sys);

  /// Workload drivers call these around each submit. Invokes must be
  /// recorded *before* the submit so a request wedged by a fault is
  /// visible to the validity oracle.
  void record_invoke(amcast::MsgUid uid, amcast::DstMask dst);
  void record_response(amcast::MsgUid uid);

  [[nodiscard]] const std::vector<DeliveryEvent>& deliveries() const {
    return deliveries_;
  }
  [[nodiscard]] const std::vector<InvokeEvent>& invokes() const {
    return invokes_;
  }
  [[nodiscard]] const std::set<amcast::MsgUid>& responses() const {
    return responses_;
  }

 private:
  core::System* sys_ = nullptr;
  std::vector<DeliveryEvent> deliveries_;
  std::vector<InvokeEvent> invokes_;
  std::set<amcast::MsgUid> responses_;
};

struct Violation {
  std::string oracle;  // which property failed
  std::string detail;  // human-readable description
};

/// Replicas excluded from the agreement check (crashed at least once —
/// recovery catches up via state transfer, not re-delivery).
using CrashSet = std::set<std::pair<std::int32_t, int>>;

/// Runs the multicast-property oracles over the recorded history.
/// Validity is only checked when invocations were recorded.
std::vector<Violation> check_amcast_properties(const HistoryRecorder& history,
                                               core::System& sys,
                                               const CrashSet& ever_crashed);

/// FNV-1a digest over the store's current object versions in oid order:
/// (oid, version timestamp, value bytes). Two replicas executing the same
/// request sequence produce identical digests.
std::uint64_t store_digest(core::Replica& replica);

/// Appends a violation for every group whose live replicas disagree on
/// their store digest. Crashed (not restarted) replicas are skipped.
void check_store_convergence(core::System& sys,
                             std::vector<Violation>& violations);

}  // namespace heron::faultlab
