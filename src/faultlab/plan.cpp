#include "faultlab/plan.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>
#include <stdexcept>

namespace heron::faultlab {

namespace {

[[noreturn]] void fail(std::string_view stmt, const std::string& why) {
  throw std::runtime_error("faultlab plan: " + why + " in \"" +
                           std::string(stmt) + "\"");
}

std::vector<std::string_view> split_statements(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ';' || text[i] == '\n') {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> tokenize(std::string_view stmt) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < stmt.size()) {
    while (i < stmt.size() && std::isspace(static_cast<unsigned char>(stmt[i]))) {
      ++i;
    }
    if (i >= stmt.size() || stmt[i] == '#') break;  // comment to end of stmt
    std::size_t j = i;
    while (j < stmt.size() &&
           !std::isspace(static_cast<unsigned char>(stmt[j])) &&
           stmt[j] != '#') {
      ++j;
    }
    out.push_back(stmt.substr(i, j - i));
    i = j;
  }
  return out;
}

double parse_double(std::string_view stmt, std::string_view tok) {
  double v = 0;
  const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (res.ec != std::errc{} || res.ptr != tok.data() + tok.size()) {
    fail(stmt, "bad number \"" + std::string(tok) + "\"");
  }
  return v;
}

sim::Nanos parse_time(std::string_view stmt, std::string_view tok) {
  double scale = 0;
  std::string_view num = tok;
  auto ends_with = [&tok](std::string_view suffix) {
    return tok.size() > suffix.size() &&
           tok.substr(tok.size() - suffix.size()) == suffix;
  };
  if (ends_with("ns")) {
    scale = 1.0;
    num = tok.substr(0, tok.size() - 2);
  } else if (ends_with("us")) {
    scale = 1e3;
    num = tok.substr(0, tok.size() - 2);
  } else if (ends_with("ms")) {
    scale = 1e6;
    num = tok.substr(0, tok.size() - 2);
  } else if (ends_with("s")) {
    scale = 1e9;
    num = tok.substr(0, tok.size() - 1);
  } else {
    fail(stmt, "time \"" + std::string(tok) + "\" needs a ns/us/ms/s suffix");
  }
  return static_cast<sim::Nanos>(parse_double(stmt, num) * scale);
}

ReplicaRef parse_ref(std::string_view stmt, std::string_view tok) {
  // g<group> or g<group>.r<rank>
  if (tok.empty() || tok[0] != 'g') fail(stmt, "expected g<id>[.r<id>]");
  ReplicaRef ref;
  const auto dot = tok.find('.');
  const std::string_view gpart = tok.substr(1, dot == std::string_view::npos
                                                   ? std::string_view::npos
                                                   : dot - 1);
  ref.group = static_cast<std::int32_t>(parse_double(stmt, gpart));
  if (dot != std::string_view::npos) {
    const std::string_view rpart = tok.substr(dot + 1);
    if (rpart.size() < 2 || rpart[0] != 'r') {
      fail(stmt, "expected .r<rank> after group");
    }
    ref.rank = static_cast<int>(parse_double(stmt, rpart.substr(1)));
  }
  return ref;
}

std::vector<ReplicaRef> parse_ref_list(std::string_view stmt,
                                       std::string_view tok) {
  std::vector<ReplicaRef> out;
  std::size_t start = 0;
  while (start <= tok.size()) {
    const auto comma = tok.find(',', start);
    const auto piece = tok.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start);
    if (!piece.empty()) out.push_back(parse_ref(stmt, piece));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (out.empty()) fail(stmt, "empty replica list");
  return out;
}

/// Finds "@ <time>" and optional "for <duration>"; returns the number of
/// leading tokens before the '@'.
std::size_t parse_schedule(std::string_view stmt,
                           const std::vector<std::string_view>& toks,
                           FaultEvent& ev) {
  std::size_t at_pos = toks.size();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i] == "@") {
      at_pos = i;
      break;
    }
  }
  if (at_pos == toks.size()) fail(stmt, "missing \"@ <time>\"");
  if (at_pos + 1 >= toks.size()) fail(stmt, "missing time after @");
  ev.at = parse_time(stmt, toks[at_pos + 1]);
  if (at_pos + 2 < toks.size()) {
    if (toks[at_pos + 2] != "for" || at_pos + 3 >= toks.size()) {
      fail(stmt, "expected \"for <duration>\"");
    }
    ev.duration = parse_time(stmt, toks[at_pos + 3]);
  }
  return at_pos;
}

std::string time_str(sim::Nanos t) {
  std::ostringstream os;
  if (t % 1'000'000 == 0) {
    os << t / 1'000'000 << "ms";
  } else if (t % 1'000 == 0) {
    os << t / 1'000 << "us";
  } else {
    os << t << "ns";
  }
  return os.str();
}

std::string ref_str(const ReplicaRef& ref) {
  std::ostringstream os;
  os << 'g' << ref.group;
  if (ref.rank >= 0) os << ".r" << ref.rank;
  return os.str();
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kLatency: return "latency";
    case FaultKind::kBandwidth: return "bandwidth";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kJitter: return "jitter";
    case FaultKind::kIncast: return "incast";
    case FaultKind::kVictim: return "victim";
    case FaultKind::kCreditBurst: return "creditburst";
  }
  return "?";
}

FaultPlan::FaultPlan(std::string name, std::vector<FaultEvent> events)
    : name_(std::move(name)), events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

FaultPlan FaultPlan::parse(std::string name, std::string_view text) {
  std::vector<FaultEvent> events;
  for (const auto stmt : split_statements(text)) {
    const auto toks = tokenize(stmt);
    if (toks.empty()) continue;
    FaultEvent ev;
    const std::size_t head = parse_schedule(stmt, toks, ev);
    const std::string_view kw = toks[0];

    if (kw == "crash" || kw == "restart") {
      ev.kind = kw == "crash" ? FaultKind::kCrash : FaultKind::kRestart;
      if (head != 2) fail(stmt, "expected one g<g>.r<r> target");
      ev.target = parse_ref(stmt, toks[1]);
      if (ev.target.rank < 0) fail(stmt, "crash/restart needs an .r<rank>");
    } else if (kw == "latency" || kw == "bandwidth") {
      ev.kind = kw == "latency" ? FaultKind::kLatency : FaultKind::kBandwidth;
      if (head != 2 || toks[1].empty() || toks[1][0] != 'x') {
        fail(stmt, "expected x<factor>");
      }
      ev.factor = parse_double(stmt, toks[1].substr(1));
      if (ev.factor <= 0) fail(stmt, "factor must be positive");
      if (ev.duration <= 0) fail(stmt, "needs \"for <duration>\"");
    } else if (kw == "partition") {
      ev.kind = FaultKind::kPartition;
      if (head != 2) fail(stmt, "expected a replica list");
      ev.targets = parse_ref_list(stmt, toks[1]);
      if (ev.duration <= 0) fail(stmt, "needs \"for <duration>\"");
    } else if (kw == "jitter") {
      ev.kind = FaultKind::kJitter;
      if (head != 3 || toks[1].empty() || toks[1][0] != 'p') {
        fail(stmt, "expected p<prob> <hiccup-duration>");
      }
      ev.hiccup_prob = parse_double(stmt, toks[1].substr(1));
      ev.hiccup_duration = parse_time(stmt, toks[2]);
      if (ev.duration <= 0) fail(stmt, "needs \"for <duration>\"");
    } else if (kw == "incast") {
      ev.kind = FaultKind::kIncast;
      if (head != 5 || toks[2].empty() || toks[2][0] != 'f' ||
          toks[3].empty() || toks[3][0] != 'b' || toks[4].empty() ||
          toks[4][0] != 'p') {
        fail(stmt, "expected g<g>.r<r> f<fanin> b<bytes> p<period>");
      }
      ev.target = parse_ref(stmt, toks[1]);
      if (ev.target.rank < 0) fail(stmt, "incast needs an .r<rank>");
      ev.fanin = static_cast<int>(parse_double(stmt, toks[2].substr(1)));
      if (ev.fanin <= 0) fail(stmt, "fanin must be positive");
      ev.bytes =
          static_cast<std::uint64_t>(parse_double(stmt, toks[3].substr(1)));
      ev.period = parse_time(stmt, toks[4].substr(1));
      if (ev.period <= 0) fail(stmt, "period must be positive");
      if (ev.duration <= 0) fail(stmt, "needs \"for <duration>\"");
    } else if (kw == "victim") {
      ev.kind = FaultKind::kVictim;
      if (head != 4 || toks[2].empty() || toks[2][0] != 'b' ||
          toks[3].empty() || toks[3][0] != 'p') {
        fail(stmt, "expected g<g>.r<r> b<bytes> p<period>");
      }
      ev.target = parse_ref(stmt, toks[1]);
      if (ev.target.rank < 0) fail(stmt, "victim needs an .r<rank>");
      ev.bytes =
          static_cast<std::uint64_t>(parse_double(stmt, toks[2].substr(1)));
      ev.period = parse_time(stmt, toks[3].substr(1));
      if (ev.period <= 0) fail(stmt, "period must be positive");
      if (ev.duration <= 0) fail(stmt, "needs \"for <duration>\"");
    } else if (kw == "creditburst") {
      ev.kind = FaultKind::kCreditBurst;
      if (head != 5 || toks[2].empty() || toks[2][0] != 'n' ||
          toks[3].empty() || toks[3][0] != 'b' || toks[4].empty() ||
          toks[4][0] != 'p') {
        fail(stmt, "expected g<g>.r<r> n<count> b<bytes> p<period>");
      }
      ev.target = parse_ref(stmt, toks[1]);
      if (ev.target.rank < 0) fail(stmt, "creditburst needs an .r<rank>");
      ev.fanin = static_cast<int>(parse_double(stmt, toks[2].substr(1)));
      if (ev.fanin <= 0) fail(stmt, "count must be positive");
      ev.bytes =
          static_cast<std::uint64_t>(parse_double(stmt, toks[3].substr(1)));
      ev.period = parse_time(stmt, toks[4].substr(1));
      if (ev.period <= 0) fail(stmt, "period must be positive");
      if (ev.duration <= 0) fail(stmt, "needs \"for <duration>\"");
    } else {
      fail(stmt, "unknown fault \"" + std::string(kw) + "\"");
    }
    events.push_back(std::move(ev));
  }
  return FaultPlan(std::move(name), std::move(events));
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  for (const auto& ev : events_) {
    os << fault_kind_name(ev.kind) << ' ';
    switch (ev.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRestart:
        os << ref_str(ev.target) << ' ';
        break;
      case FaultKind::kLatency:
      case FaultKind::kBandwidth:
        os << 'x' << ev.factor << ' ';
        break;
      case FaultKind::kPartition:
        for (std::size_t i = 0; i < ev.targets.size(); ++i) {
          os << (i ? "," : "") << ref_str(ev.targets[i]);
        }
        os << ' ';
        break;
      case FaultKind::kJitter:
        os << 'p' << ev.hiccup_prob << ' ' << time_str(ev.hiccup_duration)
           << ' ';
        break;
      case FaultKind::kIncast:
        os << ref_str(ev.target) << " f" << ev.fanin << " b" << ev.bytes
           << " p" << time_str(ev.period) << ' ';
        break;
      case FaultKind::kVictim:
        os << ref_str(ev.target) << " b" << ev.bytes << " p"
           << time_str(ev.period) << ' ';
        break;
      case FaultKind::kCreditBurst:
        os << ref_str(ev.target) << " n" << ev.fanin << " b" << ev.bytes
           << " p" << time_str(ev.period) << ' ';
        break;
    }
    os << "@ " << time_str(ev.at);
    if (ev.duration > 0) os << " for " << time_str(ev.duration);
    os << '\n';
  }
  return os.str();
}

}  // namespace heron::faultlab
