// heron::faultlab — declarative, seedable fault schedules.
//
// A FaultPlan is a list of timed fault events executed against a running
// cluster by the injector (injector.hpp). Plans are written in a tiny
// text DSL so a failing (seed, plan) pair reported by the chaos explorer
// can be replayed verbatim:
//
//   crash g0.r1 @ 5ms          # crash-stop replica rank 1 of group 0
//   restart g0.r1 @ 20ms       # bring it back (rejoin via Algorithm 3)
//   latency x8 @ 10ms for 5ms  # multiply all link latency by 8
//   bandwidth x0.25 @ 1ms for 2ms   # divide transfer bandwidth by 4
//   partition g0.r2 @ 2ms for 150us # cut the named replicas off
//   jitter p0.3 25us @ 4ms for 3ms  # service-time hiccup burst
//
// Statements are separated by ';' or newlines; '#' starts a comment.
// Times accept ns / us / ms / s suffixes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace heron::faultlab {

enum class FaultKind : std::uint32_t {
  kCrash,      // crash-stop a replica's node
  kRestart,    // restart + rejoin a crashed replica
  kLatency,    // scale all link latency by `factor` for `duration`
  kBandwidth,  // scale transfer bandwidth by `factor` for `duration`
  kPartition,  // stall traffic crossing {targets | rest} for `duration`
  kJitter,     // service-time hiccup burst for `duration`
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

/// A replica reference; rank == -1 means "every replica of the group".
struct ReplicaRef {
  std::int32_t group = 0;
  int rank = -1;
};

struct FaultEvent {
  sim::Nanos at = 0;
  FaultKind kind = FaultKind::kCrash;
  ReplicaRef target;                  // crash / restart
  std::vector<ReplicaRef> targets;    // partition side
  double factor = 1.0;                // latency / bandwidth
  sim::Nanos duration = 0;            // window of the perturbation
  double hiccup_prob = 0.0;           // jitter burst
  sim::Nanos hiccup_duration = 0;     // jitter burst stall per hiccup
};

class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(std::string name, std::vector<FaultEvent> events);

  /// Parses the DSL described above. Throws std::runtime_error with the
  /// offending statement on malformed input. Events are sorted by time.
  static FaultPlan parse(std::string name, std::string_view text);

  /// Round-trips the plan back into DSL form (one statement per line).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

 private:
  std::string name_;
  std::vector<FaultEvent> events_;
};

}  // namespace heron::faultlab
