// heron::faultlab — declarative, seedable fault schedules.
//
// A FaultPlan is a list of timed fault events executed against a running
// cluster by the injector (injector.hpp). Plans are written in a tiny
// text DSL so a failing (seed, plan) pair reported by the chaos explorer
// can be replayed verbatim:
//
//   crash g0.r1 @ 5ms          # crash-stop replica rank 1 of group 0
//   restart g0.r1 @ 20ms       # bring it back (rejoin via Algorithm 3)
//   latency x8 @ 10ms for 5ms  # multiply all link latency by 8
//   bandwidth x0.25 @ 1ms for 2ms   # divide transfer bandwidth by 4
//   partition g0.r2 @ 2ms for 150us # cut the named replicas off
//   jitter p0.3 25us @ 4ms for 3ms  # service-time hiccup burst
//
// Congestion scenarios (meaningful with the fabric's ToR topology and/or
// credit windows configured; see rdma::LatencyModel):
//
//   incast g0.r0 f8 b32768 p20us @ 2ms for 5ms
//       # 8 phantom senders each blast a 32 KiB flow at g0.r0's node
//       # every 20us — converging on its rack downlink (leader incast)
//   victim g0.r1 b65536 p40us @ 2ms for 5ms
//       # one bulk phantom flow into g0.r1's node: protocol traffic
//       # sharing that rack's uplink becomes the victim flow
//   creditburst g0.r0 n64 b64 p10us @ 2ms for 3ms
//       # 64 tiny verbs from g0.r0's own node to each group peer per
//       # period: exhausts the replica's per-QP credit windows so its
//       # replication verbs queue (credit starvation)
//
// Statements are separated by ';' or newlines; '#' starts a comment.
// Times accept ns / us / ms / s suffixes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace heron::faultlab {

enum class FaultKind : std::uint32_t {
  kCrash,      // crash-stop a replica's node
  kRestart,    // restart + rejoin a crashed replica
  kLatency,    // scale all link latency by `factor` for `duration`
  kBandwidth,  // scale transfer bandwidth by `factor` for `duration`
  kPartition,  // stall traffic crossing {targets | rest} for `duration`
  kJitter,     // service-time hiccup burst for `duration`
  kIncast,       // fanin phantom flows converge on the target's node
  kVictim,       // one bulk phantom flow shares the target's rack uplink
  kCreditBurst,  // small-verb bursts from the target's node to its peers
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

/// A replica reference; rank == -1 means "every replica of the group".
struct ReplicaRef {
  std::int32_t group = 0;
  int rank = -1;
};

struct FaultEvent {
  sim::Nanos at = 0;
  FaultKind kind = FaultKind::kCrash;
  ReplicaRef target;                  // crash / restart
  std::vector<ReplicaRef> targets;    // partition side
  double factor = 1.0;                // latency / bandwidth
  sim::Nanos duration = 0;            // window of the perturbation
  double hiccup_prob = 0.0;           // jitter burst
  sim::Nanos hiccup_duration = 0;     // jitter burst stall per hiccup
  int fanin = 0;                      // incast: phantom senders; creditburst: verbs per burst
  std::uint64_t bytes = 0;            // congestion: bytes per injected flow
  sim::Nanos period = 0;              // congestion: interval between bursts
};

class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(std::string name, std::vector<FaultEvent> events);

  /// Parses the DSL described above. Throws std::runtime_error with the
  /// offending statement on malformed input. Events are sorted by time.
  static FaultPlan parse(std::string name, std::string_view text);

  /// Round-trips the plan back into DSL form (one statement per line).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

 private:
  std::string name_;
  std::vector<FaultEvent> events_;
};

}  // namespace heron::faultlab
