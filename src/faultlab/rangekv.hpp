// Layout-partitioned counter store used by the reconfiguration tests and
// reconfig_bench: one u64 cell per key in [0, keys), partitioned by the
// epoch-versioned range layout (bind_layout) instead of a static modulo.
// The only write is a non-idempotent increment, so a command executed
// twice (e.g. once on each side of a range move) is visible both in the
// exec-observer stream and in the final sum.
//
// Oracles layered on top of the generic faultlab checks:
//   - ExecTracker:     no (client, seq) session-marked by two groups —
//                      exactly-once across a split.
//   - placement check: every key exists on exactly one group (no lost,
//                      no duplicated objects) and on the owner under the
//                      final layout (no misplaced objects).
//   - sum check:       total of all cells == delta x distinct executed
//                      increments (conservation under migration).
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "core/app.hpp"
#include "core/system.hpp"
#include "faultlab/history.hpp"
#include "reconfig/layout.hpp"
#include "sim/random.hpp"

namespace heron::faultlab {

/// kKvAdd increments by delta; kKvSet blind-writes delta as the absolute
/// cell value (the ordered-stream twin of a leased fast write — the sum
/// oracle does not apply to workloads that use it).
enum RangeKvKind : std::uint32_t { kKvAdd = 1, kKvSet = 2 };

struct KvAddReq {
  std::uint64_t key;
  std::int64_t delta;
};
struct KvCell {
  std::int64_t value;
};

class RangeKv : public core::Application {
 public:
  explicit RangeKv(std::uint64_t keys) : keys_(keys) {}

  void bind_layout(const reconfig::Layout* layout) override {
    layout_ = layout;
  }

  [[nodiscard]] core::GroupId partition_of(core::Oid oid) const override {
    return layout_->owner_of(oid);
  }

  [[nodiscard]] std::vector<core::Oid> read_set(
      const core::Request& r, core::GroupId) const override {
    if (r.header.kind == kKvAdd || r.header.kind == kKvSet) {
      return {decode<KvAddReq>(r).key};
    }
    return {};
  }

  core::Reply execute(const core::Request& r,
                      core::ExecContext& ctx) override {
    ctx.charge(sim::us(1));
    if (r.header.kind != kKvAdd && r.header.kind != kKvSet) {
      return core::Reply{.status = 1};
    }
    const auto req = decode<KvAddReq>(r);
    auto cell = ctx.value_as<KvCell>(req.key);
    if (r.header.kind == kKvSet) {
      cell.value = req.delta;
    } else {
      cell.value += req.delta;
    }
    ctx.write_as(req.key, cell);
    core::Reply reply;
    reply.payload.resize(sizeof(cell.value));
    std::memcpy(reply.payload.data(), &cell.value, sizeof(cell.value));
    return reply;
  }

  void bootstrap(core::GroupId partition, core::ObjectStore& store) override {
    const KvCell zero{0};
    for (std::uint64_t k = 0; k < keys_; ++k) {
      if (layout_->owner_of(k) != partition) continue;
      store.create(k, std::as_bytes(std::span(&zero, 1)));
    }
  }

  template <typename T>
  static T decode(const core::Request& r) {
    T out;
    std::memcpy(&out, r.payload.data(), sizeof(T));
    return out;
  }

 private:
  std::uint64_t keys_;
  const reconfig::Layout* layout_ = nullptr;  // bound before bootstrap
};

/// Exactly-once-across-a-split oracle: records which groups session-mark
/// each (client, seq). Every RangeKv command is single-partition, so a
/// command marked by two distinct groups was executed on both sides of a
/// range move — the client's same-seq WrongEpoch retry landed on a
/// replica whose migrated session state failed to dedup it.
class ExecTracker {
 public:
  /// Chains the system's existing exec observer (e.g. a HistoryRecorder's)
  /// so both see every session mark, regardless of attach order.
  void attach(core::System& sys) {
    auto prev = sys.exec_observer();
    sys.set_exec_observer([this, prev](core::GroupId g, int rank,
                                       std::uint32_t client,
                                       std::uint64_t seq, core::MsgUid uid,
                                       core::Tmp tmp) {
      if (prev) prev(g, rank, client, seq, uid, tmp);
      groups_[{client, seq}].insert(g);
    });
  }

  /// Distinct commands that executed somewhere (the sum oracle's count).
  [[nodiscard]] std::uint64_t distinct_executed() const {
    return groups_.size();
  }

  void check(std::vector<Violation>& out) const {
    for (const auto& [key, groups] : groups_) {
      if (groups.size() <= 1) continue;
      std::ostringstream msg;
      msg << "command (client " << key.first << ", seq " << key.second
          << ") executed by " << groups.size() << " groups:";
      for (auto g : groups) msg << " g" << g;
      out.push_back(Violation{"kv-exactly-once-across-split", msg.str()});
    }
  }

 private:
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::set<core::GroupId>>
      groups_;
};

/// No-lost-object / no-duplicated-object / no-misplaced-object oracle:
/// scans rank `rank` of every group for each key in [0, keys) and checks
/// it exists on exactly one group — the owner under `layout` (the
/// controller's final cluster layout).
inline void check_kv_placement(core::System& sys, int rank,
                               std::uint64_t keys,
                               const reconfig::Layout& layout,
                               std::vector<Violation>& out) {
  for (std::uint64_t k = 0; k < keys; ++k) {
    int holders = 0;
    core::GroupId holder = -1;
    for (core::GroupId g = 0; g < sys.partitions(); ++g) {
      if (!sys.replica(g, rank).store().exists(k)) continue;
      ++holders;
      holder = g;
    }
    const auto owner = layout.owner_of(k);
    if (holders == 0) {
      out.push_back(Violation{"kv-no-lost-object",
                              "key " + std::to_string(k) + " lost (owner g" +
                                  std::to_string(owner) + ")"});
    } else if (holders > 1) {
      out.push_back(Violation{"kv-no-duplicated-object",
                              "key " + std::to_string(k) + " held by " +
                                  std::to_string(holders) + " groups"});
    } else if (holder != owner) {
      out.push_back(Violation{"kv-no-misplaced-object",
                              "key " + std::to_string(k) + " held by g" +
                                  std::to_string(holder) + ", owner is g" +
                                  std::to_string(owner)});
    }
  }
}

/// Conservation oracle: with a fixed per-op delta, the total across all
/// cells (read at rank `rank` of whichever single group holds each key)
/// equals delta x distinct executed commands. A double-applied increment
/// inflates the sum even when the duplicate landed on the same group.
inline void check_kv_sum(core::System& sys, int rank, std::uint64_t keys,
                         std::int64_t delta, std::uint64_t executed,
                         std::vector<Violation>& out) {
  std::int64_t total = 0;
  for (std::uint64_t k = 0; k < keys; ++k) {
    for (core::GroupId g = 0; g < sys.partitions(); ++g) {
      auto& store = sys.replica(g, rank).store();
      if (!store.exists(k)) continue;
      auto [tmp, bytes] = store.get(k);
      KvCell cell{};
      std::memcpy(&cell, bytes.data(), sizeof(cell));
      total += cell.value;
      break;  // placement oracle reports duplicates
    }
  }
  const auto expect = delta * static_cast<std::int64_t>(executed);
  if (total != expect) {
    out.push_back(Violation{
        "kv-sum-conservation",
        "sum " + std::to_string(total) + " != " + std::to_string(delta) +
            " x " + std::to_string(executed) + " executed commands"});
  }
}

/// Closed-loop layout-routed increment workload. Keys are drawn uniformly
/// from [0, keys); the destination partition comes from the client's
/// cached layout on every attempt (submit_routed), so the loop exercises
/// WrongEpoch re-routing across epoch bumps without any test plumbing.
inline sim::Task<void> rangekv_client_loop(core::System& sys,
                                           core::Client& client,
                                           std::uint64_t seed, int ops,
                                           std::uint64_t keys,
                                           std::int64_t delta = 1) {
  sim::Rng rng(seed);
  const auto partitions = static_cast<std::uint64_t>(sys.partitions());
  for (int k = 0; k < ops; ++k) {
    const core::Oid key = rng.bounded(keys);
    KvAddReq req{key, delta};
    const auto fallback = static_cast<core::GroupId>(key % partitions);
    co_await client.submit_routed(key, fallback, kKvAdd,
                                  std::as_bytes(std::span(&req, 1)));
  }
}

}  // namespace heron::faultlab
