// Executes a FaultPlan against a running Heron cluster as a simulation
// task, mirroring every applied event into the telemetry trace as a
// "faultlab" instant so fault timing lines up with protocol spans.
#pragma once

#include <set>
#include <utility>

#include "core/system.hpp"
#include "faultlab/plan.hpp"
#include "sim/task.hpp"

namespace heron::faultlab {

class Injector {
 public:
  explicit Injector(core::System& sys) : sys_(&sys) {}

  /// Spawns the plan executor; events fire at their virtual times.
  /// The plan is copied — the caller's plan may go out of scope.
  void run(FaultPlan plan);

  /// Replicas that were crashed at least once (restarted or not). The
  /// oracles exempt them from the delivery-agreement check: a recovered
  /// replica catches up via state transfer, not by re-delivering.
  [[nodiscard]] const std::set<std::pair<std::int32_t, int>>& ever_crashed()
      const {
    return crashed_;
  }

 private:
  sim::Task<void> execute(FaultPlan plan);
  sim::Task<void> restore_latency(sim::Nanos after);
  sim::Task<void> restore_bandwidth(sim::Nanos after);
  sim::Task<void> restore_jitter(sim::Nanos after, double prob,
                                 sim::Nanos duration);
  /// Incast / victim-flow generator: every `period`, each of `fanin`
  /// phantom senders injects a `bytes` flow at the target node until the
  /// window closes.
  sim::Task<void> run_inflow(FaultEvent ev);
  /// Credit-starvation generator: every `period`, the target replica's
  /// own node posts `fanin` small verbs to each group peer, exhausting
  /// its per-QP credit windows.
  sim::Task<void> run_credit_burst(FaultEvent ev);
  /// Bare fabric nodes used as congestion traffic sources; grown on
  /// demand, shared across scenarios of one injector.
  std::vector<std::int32_t> phantom_senders(int count);
  void apply(const FaultEvent& ev);

  core::System* sys_;
  std::set<std::pair<std::int32_t, int>> crashed_;
  std::vector<std::int32_t> phantoms_;
};

}  // namespace heron::faultlab
