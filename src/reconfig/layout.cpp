#include "reconfig/layout.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace heron::reconfig {

namespace {

// Fixed-width wire structs; serialized with memcpy field order below, so
// in-memory padding never reaches the wire.
struct MarkerHead {
  std::uint64_t epoch = 0;
  std::uint32_t phase = 0;
  std::uint32_t range_count = 0;
  std::uint64_t mig_lo = 0;
  std::uint64_t mig_hi = 0;
  std::int32_t mig_from = -1;
  std::int32_t mig_to = -1;
};
constexpr std::size_t kHeadBytes = 8 + 4 + 4 + 8 + 8 + 4 + 4;   // 40
constexpr std::size_t kRangeBytes = 8 + 4;                      // 12

template <typename T>
void put(std::vector<std::byte>& out, T v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
bool take(std::span<const std::byte>& in, T& v) {
  if (in.size() < sizeof(T)) return false;
  std::memcpy(&v, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return true;
}

}  // namespace

GroupId Layout::owner_of(Oid oid) const {
  assert(!ranges.empty());
  // Last range with lo <= oid.
  auto it = std::upper_bound(
      ranges.begin(), ranges.end(), oid,
      [](Oid o, const Range& r) { return o < r.lo; });
  assert(it != ranges.begin());
  return std::prev(it)->owner;
}

void Layout::range_of(Oid oid, Oid& lo, Oid& hi) const {
  assert(!ranges.empty());
  auto it = std::upper_bound(
      ranges.begin(), ranges.end(), oid,
      [](Oid o, const Range& r) { return o < r.lo; });
  assert(it != ranges.begin());
  lo = std::prev(it)->lo;
  hi = it == ranges.end() ? 0 : it->lo;  // 0 == wraps to 2^64
}

void Layout::apply_move(Oid lo, Oid hi, GroupId to, std::uint64_t new_epoch) {
  assert(!ranges.empty());
  assert(hi == 0 || lo < hi);
  // Owner of the keyspace just past the moved range, needed to restore
  // the tail of a split source range.
  const GroupId after = hi == 0 ? to : owner_of(hi);
  std::vector<Range> next;
  next.reserve(ranges.size() + 2);
  for (const Range& r : ranges) {
    if (r.lo < lo || (hi != 0 && r.lo >= hi)) next.push_back(r);
  }
  next.push_back(Range{lo, to});
  if (hi != 0) next.push_back(Range{hi, after});
  std::sort(next.begin(), next.end(),
            [](const Range& a, const Range& b) { return a.lo < b.lo; });
  // Merge adjacent ranges with the same owner.
  std::vector<Range> merged;
  for (const Range& r : next) {
    if (!merged.empty() && merged.back().owner == r.owner) continue;
    merged.push_back(r);
  }
  ranges = std::move(merged);
  epoch = std::max(epoch, new_epoch);
  migration = Migration{};
}

Layout Layout::uniform(int partitions, Oid keys) {
  Layout l;
  l.epoch = 1;
  const auto p = static_cast<Oid>(partitions);
  const Oid stride = keys / p == 0 ? 1 : keys / p;
  for (Oid g = 0; g < p; ++g) {
    l.ranges.push_back(Range{g * stride, static_cast<GroupId>(g)});
  }
  return l;
}

std::size_t marker_bytes(std::size_t ranges) {
  return kHeadBytes + ranges * kRangeBytes;
}

bool encode_marker(const Layout& layout, std::uint32_t phase,
                   std::vector<std::byte>& out) {
  if (layout.ranges.empty() || layout.ranges.size() > kMaxWireRanges) {
    return false;
  }
  put(out, layout.epoch);
  put(out, phase);
  put(out, static_cast<std::uint32_t>(layout.ranges.size()));
  put(out, layout.migration.lo);
  put(out, layout.migration.hi);
  put(out, layout.migration.from);
  put(out, layout.migration.to);
  for (const Range& r : layout.ranges) {
    put(out, r.lo);
    put(out, r.owner);
  }
  return true;
}

bool decode_marker(std::span<const std::byte> in, Layout& layout,
                   std::uint32_t& phase) {
  MarkerHead h;
  if (!take(in, h.epoch) || !take(in, h.phase) || !take(in, h.range_count) ||
      !take(in, h.mig_lo) || !take(in, h.mig_hi) || !take(in, h.mig_from) ||
      !take(in, h.mig_to)) {
    return false;
  }
  if (h.range_count == 0 || h.range_count > kMaxWireRanges) return false;
  if (in.size() < h.range_count * kRangeBytes) return false;
  layout.epoch = h.epoch;
  layout.migration = Migration{h.mig_lo, h.mig_hi, h.mig_from, h.mig_to};
  layout.ranges.clear();
  for (std::uint32_t i = 0; i < h.range_count; ++i) {
    Range r;
    if (!take(in, r.lo) || !take(in, r.owner)) return false;
    layout.ranges.push_back(r);
  }
  if (layout.ranges.front().lo != 0) return false;
  for (std::size_t i = 1; i < layout.ranges.size(); ++i) {
    if (layout.ranges[i].lo <= layout.ranges[i - 1].lo) return false;
  }
  phase = h.phase;
  return true;
}

}  // namespace heron::reconfig
