// Epoch-versioned partition layouts for elastic repartitioning.
//
// A Layout maps the object-id keyspace [0, 2^64) onto partition groups
// through a sorted list of split points; each epoch bump installs a new
// layout at the same atomic-multicast stream position on every replica
// (kWireFlagEpoch markers, see DESIGN.md "Reconfiguration"). A migration
// moves one contiguous range between groups in two ordered markers:
//
//   PREPARE  epoch E   ownership unchanged, Migration{lo,hi,from,to} set;
//                      source ranks start the background copy machine.
//   FLIP     epoch E+1 ranges rewritten so [lo,hi) -> to, migration
//                      cleared; the source sends its final delta and
//                      retires the range.
//
// The wire form of a marker (layout + phase) must fit one multicast
// payload (amcast::kMaxPayload - sizeof(core::RequestHeader)), which
// bounds the number of ranges a layout may carry (kMaxWireRanges).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/time.hpp"

namespace heron::reconfig {

using Oid = std::uint64_t;
using GroupId = std::int32_t;

/// Half-open keyspace slice [lo, next range's lo) owned by one group.
struct Range {
  Oid lo = 0;
  GroupId owner = 0;
};

/// One in-flight range move; from < 0 means no migration is active.
struct Migration {
  Oid lo = 0;
  Oid hi = 0;  // exclusive
  GroupId from = -1;
  GroupId to = -1;

  [[nodiscard]] bool active() const { return from >= 0; }
  [[nodiscard]] bool contains(Oid oid) const { return oid >= lo && oid < hi; }
};

/// Marker phases carried next to the layout on the wire.
constexpr std::uint32_t kEpochPrepare = 1;
constexpr std::uint32_t kEpochFlip = 2;

/// Upper bound on ranges in a wire-encodable layout (payload budget).
constexpr std::size_t kMaxWireRanges = 12;

struct Layout {
  std::uint64_t epoch = 0;          // 0 = reconfiguration disabled
  std::vector<Range> ranges;        // sorted by lo; ranges[0].lo == 0
  Migration migration;              // set between PREPARE and FLIP

  [[nodiscard]] bool enabled() const { return epoch != 0 && !ranges.empty(); }
  [[nodiscard]] GroupId owner_of(Oid oid) const;
  /// The covering range of `oid` as [lo, hi) (hi of the last range wraps
  /// to 0 meaning 2^64). Requires enabled().
  void range_of(Oid oid, Oid& lo, Oid& hi) const;

  /// Rewrites the split points so [lo, hi) belongs to `to`, merging
  /// neighbours that end up with the same owner, and bumps the epoch.
  void apply_move(Oid lo, Oid hi, GroupId to, std::uint64_t new_epoch);

  /// Equal keyspace split of [0, keys) over `partitions` groups, epoch 1.
  /// Oids >= keys map to their owner by the last range.
  static Layout uniform(int partitions, Oid keys);
};

/// Tuning + fault knobs for the copy machine. Throttle knobs mirror the
/// durable checkpoint ones (PR 6): the copier defers while the foreground
/// propose queue or CPU backlog is high.
struct ReconfigConfig {
  std::uint32_t copy_chunk_bytes = 8u << 10;   // payload per copy chunk
  std::uint32_t copy_ring_slots = 64;          // per source-rank ring
  std::uint32_t throttle_queue_depth = 16;     // defer above this backlog
  sim::Nanos throttle_cpu_backlog = sim::us(50);
  /// Fabric-backpressure half of the throttle: defer copy chunks while
  /// the source's rack uplink holds more than this many ns of queued
  /// transfer, yielding the shared link (and its credits) to foreground
  /// traffic. 0 on a flat fabric is never exceeded.
  sim::Nanos throttle_uplink_backlog = sim::us(50);
  sim::Nanos throttle_backoff = sim::us(200);
  sim::Nanos delta_pass_interval = sim::us(100);  // sleep between passes
  std::uint32_t seal_dirty_threshold = 64;     // caught-up when dirty <=
  sim::Nanos pull_timeout = sim::ms(2);        // dest starvation -> pull
  double chunk_corrupt_rate = 0.0;             // torn copy-chunk injection
};

/// A scheduled range move, driven by the System's controller coroutine.
struct Plan {
  sim::Nanos at = 0;
  Oid lo = 0;
  Oid hi = 0;
  GroupId from = -1;
  GroupId to = -1;
};

/// Serialized marker size for a layout with `ranges` ranges.
[[nodiscard]] std::size_t marker_bytes(std::size_t ranges);

/// Encodes {layout, phase} into `out` (appends). Returns false if the
/// layout has too many ranges to fit a marker payload.
bool encode_marker(const Layout& layout, std::uint32_t phase,
                   std::vector<std::byte>& out);

/// Decodes a marker payload. Returns false on malformed input.
bool decode_marker(std::span<const std::byte> in, Layout& layout,
                   std::uint32_t& phase);

}  // namespace heron::reconfig
