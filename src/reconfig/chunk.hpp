// Copy-machine wire framing: CRC'd chunks of object/session records
// pushed over the fabric into a per-source-rank staging ring at the
// destination, plus one pull word per destination rank through which a
// starved receiver requests an idempotent full resend from a source.
//
// The machinery is modeled on the copy-machine/copy-packet design of
// cortx-motr (cm/ + sns/): a source-side pump emits bounded "copy
// packets" (chunks) under a throttle window, the destination applies
// them out of a sliding ring, and a SEAL packet closes the stream once
// the final delta has been shipped.
#pragma once

#include <cstddef>
#include <cstdint>

#include "durable/page_device.hpp"  // durable::crc32
#include "reconfig/layout.hpp"

namespace heron::reconfig {

/// Chunk header, written ahead of the payload in a ring slot. `seq` is a
/// per (source rank -> dest rank) counter starting at 1; the receiver
/// drains slots in seq order. `crc` covers the payload bytes only, so a
/// torn fabric write is detected and the chunk discarded.
struct CopyChunkHeader {
  std::uint64_t seq = 0;
  std::uint64_t epoch = 0;       // migration (PREPARE) epoch
  std::uint32_t record_count = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t flags = 0;
  std::uint32_t crc = 0;
};

/// Final chunk of a copy stream: the receiver may seal the migration
/// once it lands, provided no earlier chunk in the stream was corrupt.
constexpr std::uint32_t kCopyFlagSeal = 1u << 0;

/// Per-record header inside a chunk payload, followed by `size` bytes.
struct CopyRecord {
  std::uint64_t oid = 0;   // object id, or client id for sessions
  std::uint64_t tmp = 0;   // version timestamp (objects), floor (tombstones)
  std::uint32_t size = 0;
  std::uint32_t serialized = 0;
  std::uint32_t kind = 0;
  std::uint32_t pad = 0;
};

constexpr std::uint32_t kCopyObject = 0;
constexpr std::uint32_t kCopySession = 1;
constexpr std::uint32_t kCopyTombstone = 2;

/// Pull word a starved destination rank writes into a source replica's
/// reconfig region. `serial` increases per request; the source answers
/// any serial above the last one it handled with a full-range resend
/// (objects + sessions + SEAL), which is idempotent at the receiver.
struct PullWord {
  std::uint64_t serial = 0;
  std::int32_t requester = -1;  // dest rank to send to
  std::uint32_t pad = 0;
};

/// Bytes per ring slot (header + payload budget).
[[nodiscard]] inline std::size_t copy_slot_bytes(const ReconfigConfig& cfg) {
  return sizeof(CopyChunkHeader) + cfg.copy_chunk_bytes;
}

/// Offset of sender rank `from_rank`'s slot for chunk `seq` inside the
/// reconfig region (rings first, pull words after).
[[nodiscard]] inline std::uint64_t copy_slot_offset(const ReconfigConfig& cfg,
                                                    int from_rank,
                                                    std::uint64_t seq) {
  const auto slot = (seq - 1) % cfg.copy_ring_slots;
  return (static_cast<std::uint64_t>(from_rank) * cfg.copy_ring_slots + slot) *
         copy_slot_bytes(cfg);
}

/// Offset of the pull word for requester rank `rank`.
[[nodiscard]] inline std::uint64_t copy_pull_offset(const ReconfigConfig& cfg,
                                                    int replicas, int rank) {
  return static_cast<std::uint64_t>(replicas) * cfg.copy_ring_slots *
             copy_slot_bytes(cfg) +
         static_cast<std::uint64_t>(rank) * sizeof(PullWord);
}

/// Total reconfig region size for a group of `replicas` ranks.
[[nodiscard]] inline std::size_t copy_region_bytes(const ReconfigConfig& cfg,
                                                   int replicas) {
  return static_cast<std::size_t>(replicas) * cfg.copy_ring_slots *
             copy_slot_bytes(cfg) +
         static_cast<std::size_t>(replicas) * sizeof(PullWord);
}

/// CRC used for chunk payloads (shared with the durable page device).
[[nodiscard]] inline std::uint32_t copy_crc(std::span<const std::byte> bytes) {
  return durable::crc32(bytes);
}

}  // namespace heron::reconfig
