#include "core/replica.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>
#include <string>

#include "core/system.hpp"
#include "rdma/pod.hpp"
#include "sim/log.hpp"
#include "sim/notifier.hpp"

namespace heron::core {

namespace {

constexpr std::uint64_t kCoordSlot = sizeof(CoordEntry);
constexpr std::uint64_t kSyncSlot = sizeof(StateSyncEntry);
constexpr std::uint64_t kAddrQSlot = sizeof(AddrQuery);
constexpr std::uint64_t kAddrASlot = sizeof(AddrAnswer);
constexpr std::uint32_t kAddrSlots = 256;  // per stripe

/// Header of a state-transfer chunk written into the staging ring.
struct ChunkHeader {
  std::uint64_t seq = 0;
  std::uint32_t record_count = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t flags = 0;  // kChunkFlag* bits
  std::uint32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<ChunkHeader>);

/// ChunkHeader::flags bit 0: this chunk belongs to a full (whole-store)
/// transfer rather than a delta catch-up. The receiver splits its
/// applied-bytes accounting on it (full vs delta restart cost).
constexpr std::uint32_t kChunkFlagFull = 1u << 0;

/// Per-record kinds inside a chunk: application objects, per-client
/// session entries (the dedup state must travel with the store, or a
/// rejoined replica would re-execute retried commands) and session-TTL
/// tombstones (evicted floors; without them a rejoined replica could
/// re-execute a retry the donor had already answered as stale).
constexpr std::uint32_t kRecObject = 0;
constexpr std::uint32_t kRecSession = 1;
constexpr std::uint32_t kRecTombstone = 2;
/// Donor layout + seal knowledge (heron::reconfig): payload is a u64
/// seal_epoch_seen_ followed by an encoded layout marker. Shipped with
/// every transfer when reconfiguration is enabled, so a rejoining replica
/// that missed epoch markers while down adopts the donor's layout.
constexpr std::uint32_t kRecLayout = 3;

/// Per-record header inside a chunk, followed by the record's bytes. For
/// kRecObject: the current version (receiver installs it as the object's
/// whole state), oid = object id. For kRecSession: a SessionWire blob,
/// oid = client id.
struct ChunkRecord {
  Oid oid = 0;
  Tmp tmp = 0;
  std::uint32_t size = 0;
  std::uint32_t serialized = 0;
  std::uint32_t kind = kRecObject;
  std::uint32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<ChunkRecord>);

/// Wire form of a Replica::Session: fixed header, then `cached_len` reply
/// payload bytes, then `extra_count` u64 executed-seqs above the
/// watermark.
struct SessionWire {
  std::uint64_t watermark = 0;
  std::uint64_t cached_seq = 0;
  std::uint64_t last_tmp = 0;    // tmp of the session's last executed cmd
  std::uint32_t cached_status = 0;
  std::uint32_t cached_len = 0;
  std::uint32_t extra_count = 0;
  std::uint32_t paged_out = 0;   // cached payload lives on the device
};
static_assert(std::is_trivially_copyable_v<SessionWire>);

/// Session <-> wire blob, shared by state transfer (chunk records) and
/// the checkpoint writer (kRecordSession records). `last_active` is a
/// local clock and stays off the wire; installers re-stamp it.
std::vector<std::byte> encode_session(const Replica::Session& s) {
  std::vector<std::byte> out(sizeof(SessionWire));
  const SessionWire wire{
      s.watermark,
      s.cached_seq,
      s.last_tmp,
      s.cached_reply.status,
      static_cast<std::uint32_t>(s.cached_reply.payload.size()),
      static_cast<std::uint32_t>(s.above.size()),
      s.reply_paged_out ? 1u : 0u};
  std::memcpy(out.data(), &wire, sizeof(wire));
  out.insert(out.end(), s.cached_reply.payload.begin(),
             s.cached_reply.payload.end());
  for (const std::uint64_t e : s.above) {
    const std::size_t off = out.size();
    out.resize(off + sizeof(e));
    std::memcpy(out.data() + off, &e, sizeof(e));
  }
  return out;
}

Replica::Session decode_session(std::span<const std::byte> bytes) {
  Replica::Session s;
  if (bytes.size() < sizeof(SessionWire)) return s;  // malformed
  SessionWire wire{};
  std::memcpy(&wire, bytes.data(), sizeof(wire));
  // Validate the declared lengths against the blob before slicing: a
  // truncated or corrupt blob must yield an empty session, not OOB reads.
  const std::size_t need =
      sizeof(SessionWire) + static_cast<std::size_t>(wire.cached_len) +
      static_cast<std::size_t>(wire.extra_count) * sizeof(std::uint64_t);
  if (bytes.size() < need) return s;
  s.watermark = wire.watermark;
  s.cached_seq = wire.cached_seq;
  s.last_tmp = wire.last_tmp;
  s.cached_reply.status = wire.cached_status;
  s.reply_paged_out = wire.paged_out != 0;
  auto rest = bytes.subspan(sizeof(SessionWire));
  s.cached_reply.payload.assign(rest.begin(), rest.begin() + wire.cached_len);
  rest = rest.subspan(wire.cached_len);
  for (std::uint32_t e = 0; e < wire.extra_count; ++e) {
    std::uint64_t v = 0;
    std::memcpy(&v, rest.data() + static_cast<std::size_t>(e) * sizeof(v),
                sizeof(v));
    s.above.insert(v);
  }
  return s;
}

}  // namespace

Replica::Replica(System& system, GroupId group, int rank)
    : system_(&system),
      group_(group),
      rank_(rank),
      rng_(0x9e3779b9u ^ (static_cast<std::uint64_t>(group) << 16) ^
           static_cast<std::uint64_t>(rank)) {
  const HeronConfig& cfg = system.config();
  auto& n = node();
  store_ = std::make_unique<ObjectStore>(n, cfg.object_region_bytes);
  app_ = system.app_factory()();

  const auto parts = static_cast<std::uint64_t>(system.partitions());
  const auto reps = static_cast<std::uint64_t>(system.replicas_per_partition());
  const auto stripes = static_cast<std::uint64_t>(system.amcast().total_replicas());

  coord_mr_ = n.register_region(parts * reps * kCoordSlot);
  statesync_mr_ = n.register_region(reps * kSyncSlot);
  addrq_mr_ = n.register_region(stripes * kAddrSlots * kAddrQSlot);
  addra_mr_ = n.register_region(stripes * kAddrSlots * kAddrASlot);
  staging_mr_ = n.register_region(
      reps * cfg.statesync_ring_slots *
      (sizeof(ChunkHeader) + cfg.statesync_chunk_bytes));
  fastread_mr_ = n.register_region(fastread_region_bytes(static_cast<int>(reps)));
  if (cfg.reconfig_keys != 0) {
    reconfig_mr_ = n.register_region(
        reconfig::copy_region_bytes(cfg.reconfig, static_cast<int>(reps)));
    layout_ = system.initial_layout();
  }
  app_->bind_layout(&layout_);
  copy_seq_.assign(reps, 0);
  pull_seen_.assign(reps, 0);
  copy_next_.assign(reps, 0);

  exec_done_ = std::make_unique<sim::Notifier>(system.simulator());
  for (int t = 0; t < std::max(1, cfg.exec_threads); ++t) {
    exec_cpus_.push_back(std::make_unique<sim::Cpu>(system.simulator()));
  }
  slot_busy_.assign(exec_cpus_.size(), false);

  addrq_sent_.assign(stripes, 0);
  addrq_next_.assign(stripes, 0);
  addra_next_.assign(stripes, 0);
  staging_next_.assign(reps, 0);
  staging_sent_.assign(reps, 0);

  hub_ = &system.fabric().telemetry();
  const std::string label =
      "g" + std::to_string(group) + ".r" + std::to_string(rank);
  auto& m = hub_->metrics;
  ctr_executed_ = &m.counter("core", "executed", label);
  ctr_skipped_ = &m.counter("core", "skipped", label);
  ctr_addr_hits_ = &m.counter("core", "addr_cache_hits", label);
  ctr_addr_misses_ = &m.counter("core", "addr_cache_misses", label);
  ctr_remote_reads_ = &m.counter("core", "remote_reads", label);
  ctr_remote_retries_ = &m.counter("core", "remote_read_retries", label);
  ctr_lagging_ = &m.counter("core", "lagging_detected", label);
  ctr_state_transfers_ = &m.counter("core", "state_transfers", label);
  ctr_transfers_served_ = &m.counter("core", "transfers_served", label);
  ctr_xfer_bytes_sent_ = &m.counter("core", "transfer_bytes_sent", label);
  ctr_xfer_bytes_applied_ = &m.counter("core", "transfer_bytes_applied", label);
  ctr_xfer_bytes_applied_full_ =
      &m.counter("core", "transfer_bytes_applied_full", label);
  ctr_xfer_bytes_applied_delta_ =
      &m.counter("core", "transfer_bytes_applied_delta", label);
  ctr_checkpoints_ = &m.counter("durable", "replica_checkpoints", label);
  ctr_ckpt_deferred_ = &m.counter("durable", "checkpoints_deferred", label);
  ctr_sessions_evicted_ = &m.counter("durable", "sessions_evicted", label);
  ctr_stale_session_ = &m.counter("durable", "stale_session_replies", label);
  gauge_restart_delta_ = &m.gauge("durable", "restart_delta_bytes", label);
  ctr_dedup_hits_ = &m.counter("core", "session_dedup_hits", label);
  ctr_shed_replies_ = &m.counter("core", "shed_replies", label);
  ctr_lease_grants_ = &m.counter("core", "lease_grants", label);
  ctr_gate_waits_ = &m.counter("core", "gate_waits", label);
  ctr_ordered_reads_ = &m.counter("core", "ordered_reads", label);
  ctr_fast_fence_ = &m.counter("core", "fastwrite_fence_waits", label);
  ctr_fast_discards_ = &m.counter("core", "fastwrite_discards", label);
  ctr_fast_repairs_ = &m.counter("core", "fastwrite_repairs", label);
  ctr_copy_chunks_ = &m.counter("reconfig", "copy_chunks", label);
  ctr_copy_corrupt_ = &m.counter("reconfig", "copy_chunks_corrupt", label);
  ctr_copy_deferred_ = &m.counter("reconfig", "copy_deferred", label);
  ctr_copy_pulls_ = &m.counter("reconfig", "copy_pulls", label);
  ctr_wrong_epoch_ = &m.counter("reconfig", "wrong_epoch_replies", label);
  ctr_quiesce_ = &m.counter("reconfig", "quiesce_deferred", label);
  hist_exec_ = &m.histogram("core", "exec_ns", label);
  hist_coord_ = &m.histogram("core", "coord_ns", label);
  hist_gate_wait_ = &m.histogram("core", "gate_wait_ns", label);

  if (cfg.durable.enabled()) {
    ckpt_ = std::make_unique<durable::CheckpointStore>(
        system.simulator(), hub_, cfg.durable, label);
  }
}

rdma::Node& Replica::node() {
  return system_->amcast().endpoint(group_, rank_).node();
}

void Replica::start() {
  app_->bootstrap(group_, *store_);
  auto& sim = system_->simulator();
  sim.spawn(main_loop());
  sim.spawn(addr_query_loop());
  sim.spawn(statesync_watch_loop());
  sim.spawn(staging_apply_loop());
  if (ckpt_ != nullptr) sim.spawn(checkpoint_loop());
  if (reconfig_enabled()) {
    publish_epoch_word();
    sim.spawn(copy_recv_loop());
    sim.spawn(pull_watch_loop());
  }
}

void Replica::reset_stats() {
  coord_stats_ = {};
  ordering_lat_.clear();
  coord_lat_.clear();
  exec_lat_.clear();
  // Satellite audit (PR 10): every counter added since PR 5 must reset
  // here too, or post-warmup bench reports carry warmup-inflated values.
  // Only counters are cleared — watermarks, sessions, lease/layout state
  // and cursors are runtime state, not statistics.
  dedup_hits_ = 0;
  shed_replies_ = 0;
  executed_ = 0;
  skipped_ = 0;
  state_transfers_ = 0;
  transfers_served_ = 0;
  lease_grants_ = 0;
  gate_waits_ = 0;
  checkpoints_ = 0;
  ckpt_deferred_ = 0;
  sessions_evicted_ = 0;
  stale_session_replies_ = 0;
  copy_chunks_sent_ = 0;
  copy_chunks_received_ = 0;
  copy_chunks_corrupt_ = 0;
  copy_deferred_ = 0;
  copy_pulls_ = 0;
  copy_pulls_served_ = 0;
  wrong_epoch_replies_ = 0;
  quiesce_deferred_ = 0;
  migrated_out_ = 0;
  migrated_in_ = 0;
  ckpt_rejected_layout_ = 0;
  fast_fence_waits_ = 0;
  fast_discards_ = 0;
  fast_repairs_ = 0;
  fast_adopted_ = 0;
  fast_rediscarded_ = 0;
}

std::uint64_t Replica::coord_offset(GroupId h, int q) const {
  return (static_cast<std::uint64_t>(h) *
              static_cast<std::uint64_t>(system_->replicas_per_partition()) +
          static_cast<std::uint64_t>(q)) *
         kCoordSlot;
}

std::uint64_t Replica::statesync_offset(int q) const {
  return static_cast<std::uint64_t>(q) * kSyncSlot;
}

std::uint64_t Replica::addrq_offset(std::uint32_t stripe,
                                    std::uint64_t seq) const {
  return (static_cast<std::uint64_t>(stripe) * kAddrSlots +
          seq % kAddrSlots) *
         kAddrQSlot;
}

std::uint64_t Replica::addra_offset(std::uint32_t stripe,
                                    std::uint64_t seq) const {
  return (static_cast<std::uint64_t>(stripe) * kAddrSlots +
          seq % kAddrSlots) *
         kAddrASlot;
}

std::uint64_t Replica::staging_offset(int sender_rank,
                                      std::uint64_t seq) const {
  const HeronConfig& cfg = system_->config();
  const std::uint64_t slot_size =
      sizeof(ChunkHeader) + cfg.statesync_chunk_bytes;
  return (static_cast<std::uint64_t>(sender_rank) * cfg.statesync_ring_slots +
          seq % cfg.statesync_ring_slots) *
         slot_size;
}

// ---------------------------------------------------------------------
// Algorithm 1: main loop + coordination phases.
// ---------------------------------------------------------------------

sim::Task<void> Replica::main_loop() {
  const std::uint64_t inc = incarnation_;
  auto& ep = system_->amcast().endpoint(group_, rank_);
  while (!stale(inc)) {
    // Consume committed messages as a span: one wakeup (and one deliver
    // hand-off charge) covers everything the ordering layer has ready,
    // so the execution loop stops paying per-message wakeups under load.
    // With a single client the span has one entry and the path is
    // identical to the per-message one.
    std::vector<amcast::Delivery> span = co_await ep.next_deliveries();
    if (stale(inc)) co_return;
    for (amcast::Delivery& d : span) {
      if (d.uid == 0) continue;  // stale-waiter sentinel from the endpoint

      Request r;
      r.uid = d.uid;
      r.tmp = d.tmp;
      r.dst = d.dst;
      r.shed = d.shed;
      auto payload = d.payload_view();
      if (payload.size() < sizeof(RequestHeader)) continue;  // malformed
      std::memcpy(&r.header, payload.data(), sizeof(RequestHeader));
      r.payload.assign(payload.begin() + sizeof(RequestHeader), payload.end());

      // Lines 3-4: skip requests already covered by a state transfer.
      if (r.tmp <= last_req_) {
        ++skipped_;
        ctr_skipped_->inc();
        continue;
      }
      last_req_ = r.tmp;

      // A state transfer served from this replica pauses execution at a
      // request boundary.
      while (in_state_transfer_) {
        co_await system_->simulator().sleep(sim::us(2));
        if (stale(inc)) co_return;
      }

      // Lease-grant marker (kWireFlagLease): ordered like any command but
      // replica-internal — no session, no reply (the lease manager is a
      // raw multicast endpoint with no reply slot). A shed marker is
      // dropped identically everywhere: the shed bit is set by the
      // ordering leader before delivery, so no replica installs a grant
      // the others skipped.
      if (d.lease) {
        if (!r.shed) {
          // Fast-write arming rides on the grant marker, so every replica
          // of the partition arms at the same stream position: a client
          // can only hold a fast-write-capable lease whose grant armed the
          // whole partition. Set BEFORE apply_lease_grant so the lease
          // word it publishes advertises the new arming state.
          fast_write_armed_ = d.fast_write;
          apply_lease_grant(r);
        }
        last_executed_ = std::max(last_executed_, r.tmp);
        if (leases_enabled()) push_applied();
        continue;
      }

      // Layout-epoch marker (kWireFlagEpoch): ordered like a command but
      // replica-internal. Unlike lease grants, a marker is multicast
      // exactly once, so the ordering leader exempts kWireFlagEpoch from
      // admission shedding (the !shed guard below is defense in depth —
      // were a marker ever shed, it is shed identically everywhere).
      // Every replica switches layouts at this exact stream position; the
      // FLIP handoff (final delta + retirement) runs inline, so execution
      // pauses for the marker — the paper-level "brief quiesce".
      if (d.epoch) {
        if (!r.shed) {
          co_await apply_epoch_marker(r);
          if (stale(inc)) co_return;
        }
        last_executed_ = std::max(last_executed_, r.tmp);
        if (leases_enabled()) push_applied();
        continue;
      }

      // Shed by admission control: still totally ordered (so every replica
      // of every destination takes this exact branch for this uid), but
      // answered BUSY and never executed.
      if (r.shed) {
        ++shed_replies_;
        ctr_shed_replies_->inc();
        last_executed_ = std::max(last_executed_, r.tmp);
        co_await send_reply(r, Reply{kStatusBusy, {}});
        if (stale(inc)) co_return;
        continue;
      }

      // Session-TTL tombstone: this client's session was evicted and the
      // command is at or below the evicted floor. Its original execution
      // (if any) happened before eviction; answering a distinguishable
      // kStatusStaleSession — and never re-executing — preserves
      // at-most-once without the session state.
      if (r.header.session_seq != 0) {
        const auto tomb = evicted_sessions_.find(amcast::uid_client(r.uid));
        if (tomb != evicted_sessions_.end() &&
            r.header.session_seq <= tomb->second) {
          ++stale_session_replies_;
          ctr_stale_session_->inc();
          last_executed_ = std::max(last_executed_, r.tmp);
          co_await send_reply(r, Reply{kStatusStaleSession, {}});
          if (stale(inc)) co_return;
          continue;
        }
      }

      // Session dedup: a retry of a command that already executed (or is
      // executing right now) here must not run again. Answer from the reply
      // cache when it holds exactly this command; stay silent for in-flight
      // or stale duplicates — the live attempt owns the reply slot.
      if (session_executed(r)) {
        ++dedup_hits_;
        ctr_dedup_hits_->inc();
        last_executed_ = std::max(last_executed_, r.tmp);
        if (const Reply* cached = session_cached(r)) {
          co_await send_reply(r, *cached);
          if (stale(inc)) co_return;
        } else if (session_reply_paged_out(r)) {
          // The cached payload was paged out to the durable device after a
          // covering checkpoint; fetch it back and answer from there.
          co_await answer_paged_reply(r);
          if (stale(inc)) co_return;
        }
        continue;
      }
      // Reconfiguration serving checks, ordered before session_mark so a
      // re-routed retry still dedups at the new owner.
      if (layout_.enabled()) {
        const std::vector<Oid> roids = request_oids(r);
        // (a) Quiesce: the request touches an inbound migration range
        // whose copy stream has not sealed — defer until the SEAL lands
        // (or a pull resend re-seals). Checked regardless of ownership so
        // a pre-flip misroute defers here instead of ping-ponging
        // kStatusWrongEpoch between source and destination.
        if (touches_unsealed_inbound(roids)) {
          ++quiesce_deferred_;
          ctr_quiesce_->inc();
          while (touches_unsealed_inbound(roids)) {
            co_await system_->simulator().sleep(sim::us(20));
            if (stale(inc)) co_return;
          }
        }
        // (b) Foreign range: a single-partition command or core read whose
        // keys this group no longer owns under the installed layout. The
        // request is NOT executed; the reply re-seeds the client's layout
        // and cache. Multi-partition requests are exempt — their read
        // sets legitimately span foreign oids.
        if (r.single_partition() || (r.header.flags & kReqFlagRead) != 0) {
          Oid foreign = 0;
          bool have_foreign = false;
          for (const Oid oid : roids) {
            if (layout_.owner_of(oid) != group_) {
              foreign = oid;
              have_foreign = true;
              break;
            }
          }
          if (have_foreign) {
            ++wrong_epoch_replies_;
            ctr_wrong_epoch_->inc();
            last_executed_ = std::max(last_executed_, r.tmp);
            if (leases_enabled()) push_applied();
            co_await send_reply(r, make_wrong_epoch_reply(foreign));
            if (stale(inc)) co_return;
            continue;
          }
        }
      }

      // Mark at dispatch, before execution completes: with exec_threads > 1
      // a duplicate can be delivered while the first copy is mid-execution.
      session_mark(r);

      const HeronConfig& cfg = system_->config();
      // Concurrent dispatch is off under leases: the write gate's applied
      // watermark (last_executed_) only means "everything up to tmp is
      // applied" when requests apply in timestamp order. Core-level reads
      // also stay on the sequential path (their payload is not an
      // application command, so conflict_keys cannot parse it).
      if (cfg.exec_threads > 1 && cfg.mode == Mode::kApp &&
          r.single_partition() && !leases_enabled() &&
          (r.header.flags & kReqFlagRead) == 0) {
        // §III-D1 extension: run non-conflicting single-partition requests
        // on idle worker cores.
        auto keys = app_->conflict_keys(r, group_);
        co_await sim::wait_until(*exec_done_, [this, &keys] {
          return inflight_ < static_cast<int>(exec_cpus_.size()) &&
                 keys_free(keys);
        });
        if (stale(inc)) co_return;
        int slot = 0;
        while (slot_busy_[static_cast<std::size_t>(slot)]) ++slot;
        slot_busy_[static_cast<std::size_t>(slot)] = true;
        for (Oid k : keys) locked_keys_.insert(k);
        ++inflight_;
        system_->simulator().spawn(
            exec_concurrent(std::move(r), slot, std::move(keys)));
        continue;
      }
      if (cfg.exec_threads > 1) {
        // Multi-partition requests (and other modes) form a barrier: they
        // run alone, after all in-flight executions drained.
        co_await sim::wait_until(*exec_done_,
                                 [this] { return inflight_ == 0; });
        if (stale(inc)) co_return;
      }

      co_await handle_request(std::move(r));
      if (stale(inc)) co_return;
    }
  }
}

bool Replica::keys_free(const std::vector<Oid>& keys) const {
  for (Oid k : keys) {
    if (locked_keys_.contains(k)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// Sessions: at-most-once execution per (client, session_seq).
// ---------------------------------------------------------------------

bool Replica::session_executed(const Request& r) const {
  if (r.header.session_seq == 0) return false;  // sessionless client
  const auto it = sessions_.find(amcast::uid_client(r.uid));
  return it != sessions_.end() && it->second.executed(r.header.session_seq);
}

void Replica::session_mark(const Request& r) {
  if (r.header.session_seq == 0) return;
  Session& s = sessions_[amcast::uid_client(r.uid)];
  s.mark(r.header.session_seq);
  s.last_tmp = std::max(s.last_tmp, r.tmp);
  s.last_active = system_->simulator().now();
}

void Replica::session_cache_reply(const Request& r, const Reply& reply) {
  if (r.header.session_seq == 0) return;
  Session& s = sessions_[amcast::uid_client(r.uid)];
  s.cached_seq = r.header.session_seq;
  s.cached_reply.status = reply.status;
  // Mirror what the reply slot carries: the payload truncated to the slot
  // size, so a cached answer is byte-identical to the original one.
  const std::size_t len = std::min(reply.payload.size(), kMaxReplyPayload);
  s.cached_reply.payload.assign(reply.payload.begin(),
                                reply.payload.begin() +
                                    static_cast<std::ptrdiff_t>(len));
  s.reply_paged_out = false;  // the in-memory copy is authoritative again
}

const Reply* Replica::session_cached(const Request& r) const {
  if (r.header.session_seq == 0) return nullptr;
  const auto it = sessions_.find(amcast::uid_client(r.uid));
  if (it == sessions_.end()) return nullptr;
  if (it->second.cached_seq != r.header.session_seq) return nullptr;
  if (it->second.reply_paged_out) return nullptr;  // see answer_paged_reply
  return &it->second.cached_reply;
}

bool Replica::session_reply_paged_out(const Request& r) const {
  if (r.header.session_seq == 0) return false;
  const auto it = sessions_.find(amcast::uid_client(r.uid));
  return it != sessions_.end() &&
         it->second.cached_seq == r.header.session_seq &&
         it->second.reply_paged_out;
}

sim::Task<void> Replica::answer_paged_reply(const Request& r) {
  const std::uint32_t client = amcast::uid_client(r.uid);
  // Fallback when the fetch fails (CRC, compacted away): the command DID
  // execute (session_executed passed), only its reply payload is gone —
  // exactly the contract kStatusStaleSession carries.
  Reply reply{kStatusStaleSession, {}};
  if (ckpt_ != nullptr) {
    const auto rec =
        co_await ckpt_->fetch_record(durable::kRecordSession, client);
    if (rec.has_value()) {
      Session persisted = decode_session(rec->bytes);
      // A persisted record that is itself marked paged-out carries no
      // payload (a dirty-while-paged-out session snapshotted by a delta
      // checkpoint); treat it like a failed fetch — the stale-session
      // fallback — never as an empty success.
      if (persisted.cached_seq == r.header.session_seq &&
          !persisted.reply_paged_out) {
        reply = persisted.cached_reply;
        // Re-cache: further retries answer from memory again.
        const auto it = sessions_.find(client);
        if (it != sessions_.end() &&
            it->second.cached_seq == r.header.session_seq) {
          it->second.cached_reply = reply;
          it->second.reply_paged_out = false;
        }
      }
    }
  }
  co_await send_reply(r, reply);
}

void Replica::note_executed(const Request& r, const Reply& reply) {
  if (r.header.session_seq == 0) return;
  session_cache_reply(r, reply);
  if (system_->exec_observer()) {
    system_->exec_observer()(group_, rank_, amcast::uid_client(r.uid),
                             r.header.session_seq, r.uid, r.tmp);
  }
}

sim::Task<void> Replica::exec_concurrent(Request r, int slot,
                                         std::vector<Oid> keys) {
  const std::uint64_t inc = incarnation_;
  const sim::Nanos t0 = system_->simulator().now();
  ExecOutcome out = co_await execute_on(r, *exec_cpus_[static_cast<std::size_t>(slot)]);
  // restart() resets the slot bookkeeping wholesale, so a stale execution
  // must not release anything — it just disappears.
  if (stale(inc)) co_return;
  const sim::Nanos exec_ns = system_->simulator().now() - t0;
  exec_lat_.record(exec_ns);
  hist_exec_->observe(exec_ns);
  ++executed_;
  ctr_executed_->inc();
  last_executed_ = std::max(last_executed_, r.tmp);
  note_executed(r, out.reply);
  co_await send_reply(r, out.reply);
  if (stale(inc)) co_return;

  slot_busy_[static_cast<std::size_t>(slot)] = false;
  for (Oid k : keys) locked_keys_.erase(k);
  --inflight_;
  exec_done_->notify_all();
}

sim::Task<void> Replica::handle_request(Request r) {
  const std::uint64_t inc = incarnation_;
  const HeronConfig& cfg = system_->config();
  ordering_lat_.record(system_->simulator().now() - r.header.sent_at);

  if (cfg.mode == Mode::kOrderOnly) {
    ++executed_;
    ctr_executed_->inc();
    last_executed_ = std::max(last_executed_, r.tmp);
    note_executed(r, Reply{});
    co_await send_reply(r, Reply{});
    co_return;
  }

  // Core-level ordered read (kReqFlagRead): answered from the store
  // without invoking the application. It is the fast-read fallback and
  // the address-resolution vehicle for the client's fast-read cache. No
  // write gate is needed here: this replica executes the stream
  // sequentially, so every earlier write's gate already completed before
  // the read runs.
  if ((r.header.flags & kReqFlagRead) != 0 && cfg.mode == Mode::kApp) {
    co_await node().cpu().use(cfg.exec_dispatch_proc);
    if (stale(inc)) co_return;
    if (fast_writes_enabled()) {
      // Resolve any pending one-sided INVALIDATE before answering: an
      // ordered read must never serve the pre-image of a fast write that
      // some fast reader elsewhere has already observed committed.
      co_await fast_write_fence(r);
      if (stale(inc)) co_return;
    }
    Reply reply = make_read_reply(r);
    ++executed_;
    ctr_executed_->inc();
    last_executed_ = std::max(last_executed_, r.tmp);
    if (leases_enabled()) push_applied();
    note_executed(r, reply);
    co_await send_reply(r, reply);
    co_return;
  }

  // Lines 5-7: single-partition requests skip coordination.
  if (r.single_partition()) {
    Reply reply;
    std::vector<Oid> locked;
    if (cfg.mode == Mode::kApp) {
      const sim::Nanos t0 = system_->simulator().now();
      ExecOutcome out = co_await execute(r);
      if (stale(inc)) co_return;
      const sim::Nanos exec_ns = system_->simulator().now() - t0;
      exec_lat_.record(exec_ns);
      hist_exec_->observe(exec_ns);
      // Single-partition requests only touch local objects; they cannot
      // observe remote progress, hence cannot detect lagging.
      reply = std::move(out.reply);
      locked = std::move(out.locked);
    }
    ++executed_;
    ctr_executed_->inc();
    last_executed_ = std::max(last_executed_, r.tmp);
    if (leases_enabled()) {
      push_applied();
      co_await write_gate(r, locked);
      if (stale(inc)) co_return;
    }
    note_executed(r, reply);
    co_await send_reply(r, reply);
    co_return;
  }

  // Phase 2 (lines 8-10).
  const sim::Nanos c0 = system_->simulator().now();
  co_await coordinate(r, 1, cfg.extra_delay_in_phase2);
  if (stale(inc)) co_return;
  const sim::Nanos phase2 = system_->simulator().now() - c0;

  // Phase 3 (lines 11-13).
  Reply reply;
  std::vector<Oid> locked;
  if (cfg.mode == Mode::kApp) {
    const sim::Nanos t0 = system_->simulator().now();
    ExecOutcome out = co_await execute(r);
    if (stale(inc)) co_return;
    const sim::Nanos exec_ns = system_->simulator().now() - t0;
    exec_lat_.record(exec_ns);
    hist_exec_->observe(exec_ns);
    if (out.lagging) {
      // Lagging is detected in the read phase, before any seqlock bracket
      // is taken, so there is nothing to release here.
      co_await request_state_transfer(r.tmp);
      co_return;  // no reply from this replica; others answer the client
    }
    reply = std::move(out.reply);
    locked = std::move(out.locked);
  }

  // Phase 4 (lines 14-16); carries the wait-for-all statistics.
  const sim::Nanos c1 = system_->simulator().now();
  co_await coordinate(r, 2, /*collect_stats=*/true);
  if (stale(inc)) co_return;
  const sim::Nanos coord_ns = phase2 + (system_->simulator().now() - c1);
  coord_lat_.record(coord_ns);
  hist_coord_->observe(coord_ns);
  ++coord_stats_.multi_partition;

  ++executed_;
  ctr_executed_->inc();
  last_executed_ = std::max(last_executed_, r.tmp);
  if (leases_enabled()) {
    push_applied();
    co_await write_gate(r, locked);
    if (stale(inc)) co_return;
  }
  note_executed(r, reply);
  co_await send_reply(r, reply);  // Phase 5 (line 17)
}

void Replica::write_coord(const Request& r, std::uint32_t phase) {
  // In partition-id order, then replica-id order — the paper notes this
  // write order is what shapes Table I's per-partition trend.
  const CoordEntry entry{r.tmp, phase, 0};
  for (GroupId h = 0; h < system_->partitions(); ++h) {
    if (!amcast::dst_contains(r.dst, h)) continue;
    for (int q = 0; q < system_->replicas_per_partition(); ++q) {
      Replica& peer = system_->replica(h, q);
      if (h == group_ && q == rank_) {
        rdma::store_pod(node().region(coord_mr_).bytes(),
                        coord_offset(group_, rank_), entry);
        node().region(coord_mr_).on_write().notify_all();
        continue;
      }
      system_->fabric().write_async(
          node().id(),
          rdma::RAddr{peer.node().id(), peer.coord_mr(),
                      peer.coord_offset(group_, rank_)},
          rdma::pod_bytes(entry));
    }
  }
}

bool Replica::coord_satisfied(const Request& r, std::uint32_t phase,
                              bool require_all) const {
  const auto region =
      const_cast<Replica*>(this)->node().region(coord_mr_).bytes();
  const int reps = system_->replicas_per_partition();
  const int needed = require_all ? reps : reps / 2 + 1;
  for (GroupId h = 0; h < system_->partitions(); ++h) {
    if (!amcast::dst_contains(r.dst, h)) continue;
    int count = 0;
    for (int q = 0; q < reps; ++q) {
      const auto e = rdma::load_pod<CoordEntry>(region, coord_offset(h, q));
      // Line 10/16: caught up to r in this phase, or already past r.
      if ((e.tmp == r.tmp && e.state >= phase) || e.tmp > r.tmp) ++count;
    }
    if (count < needed) return false;
  }
  return true;
}

sim::Task<void> Replica::coordinate(const Request& r, std::uint32_t phase,
                                    bool collect_stats) {
  const std::uint64_t inc = incarnation_;
  const HeronConfig& cfg = system_->config();
  auto span = hub_->tracer.span("core", "coordinate", node().id());
  span.arg("uid", r.uid);
  span.arg("phase", phase);
  co_await node().cpu().use(cfg.coord_check_proc);
  if (stale(inc)) co_return;
  write_coord(r, phase);

  auto& notifier = node().region(coord_mr_).on_write();
  co_await sim::wait_until(notifier, [this, &r, phase] {
    return coord_satisfied(r, phase, /*require_all=*/false);
  });
  if (stale(inc)) co_return;

  if (!collect_stats) co_return;

  // Wait-for-all heuristic (§III-A last paragraph; Table I): after the
  // majority is in, tentatively wait for all replicas up to the cutoff.
  if (coord_satisfied(r, phase, /*require_all=*/true)) co_return;
  ++coord_stats_.delayed;
  if (cfg.coord_extra_delay <= 0) {
    ++coord_stats_.gave_up;
    co_return;
  }
  const sim::Nanos t0 = system_->simulator().now();
  const bool all = co_await sim::wait_until_timeout(
      notifier,
      [this, &r, phase] { return coord_satisfied(r, phase, true); },
      cfg.coord_extra_delay);
  coord_stats_.delay_sum += system_->simulator().now() - t0;
  if (!all) ++coord_stats_.gave_up;
}

sim::Task<void> Replica::send_reply(const Request& r, const Reply& reply) {
  const HeronConfig& cfg = system_->config();
  co_await node().cpu().use(cfg.reply_proc);

  // Amcast client ids also cover internal endpoints (lease managers),
  // which have no reply slot; replies to them are dropped here.
  Client* client = system_->client_by_amcast_id(amcast::uid_client(r.uid));
  if (client == nullptr) co_return;
  ReplySlot slot;
  slot.uid = r.uid;
  slot.status = reply.status;
  slot.payload_len = static_cast<std::uint32_t>(
      std::min(reply.payload.size(), kMaxReplyPayload));
  if (slot.payload_len > 0) {
    std::memcpy(slot.payload.data(), reply.payload.data(), slot.payload_len);
  }

  system_->fabric().write_async(
      node().id(),
      rdma::RAddr{client->node().id(), client->reply_mr(),
                  static_cast<std::uint64_t>(group_) * sizeof(ReplySlot)},
      rdma::pod_bytes(slot));
}

// ---------------------------------------------------------------------
// Algorithm 2: execution.
// ---------------------------------------------------------------------

sim::Task<Replica::ExecOutcome> Replica::execute(const Request& r) {
  return execute_on(r, node().cpu());
}

sim::Task<Replica::ExecOutcome> Replica::execute_on(const Request& r,
                                                    sim::Cpu& cpu) {
  const HeronConfig& cfg = system_->config();
  auto span = hub_->tracer.span("core", "execute", node().id());
  span.arg("uid", r.uid);
  span.arg("kind", r.header.kind);
  if (cfg.hiccup_prob > 0 && rng_.chance(cfg.hiccup_prob)) {
    co_await cpu.use(cfg.hiccup_duration);
  }
  co_await cpu.use(cfg.exec_dispatch_proc);

  ExecContext ctx(group_, *store_);
  sim::Nanos read_cpu = 0;

  for (Oid oid : app_->read_set(r, group_)) {
    const GroupId h = app_->partition_of(oid);
    if (h == group_) {
      if (fast_writes_enabled() && store_->exists(oid) &&
          store_->fast_pending(oid)) {
        // Fence right at the read: no suspension separates the check from
        // the get() below, so a validated-elsewhere fast write cannot slip
        // past this replica's ordered read (read inversion).
        co_await fence_slot(oid);
      }
      // Lines 4-7: local read of the current version.
      const auto [tmp, value] = store_->get(oid);
      ctx.mutable_values()[oid].assign(value.begin(), value.end());
      read_cpu += static_cast<sim::Nanos>(
          static_cast<double>(value.size()) *
          (store_->is_serialized(oid) ? cfg.serialize_ns_per_byte
                                      : cfg.memcpy_ns_per_byte));
      continue;
    }
    // Lines 8-28: remote read.
    RemoteRead rr = co_await read_remote(r, oid, h);
    if (rr.lagging) co_return ExecOutcome{.lagging = true};
    ctx.mutable_values()[oid] = std::move(rr.value);
    const auto& loc = object_map_.at(oid)[0];
    (void)loc;
  }
  // Service-time jitter. The dominant component is per (partition,
  // request) — replicas of one partition execute the same sequence on
  // near-identical machines and stay tightly synced, while different
  // partitions drift apart (queues, request mixes). A small per-replica
  // component adds the intra-partition spread that creates stragglers.
  double jitter = 1.0;
  if (cfg.exec_jitter_sigma > 0) {
    sim::Rng part_rng((static_cast<std::uint64_t>(group_) << 48) ^ r.tmp ^
                      0x517cc1b727220a95ULL);
    jitter = part_rng.lognormal_mean(1.0, cfg.exec_jitter_sigma) *
             rng_.lognormal_mean(1.0, cfg.exec_jitter_sigma / 4.0);
  }
  if (read_cpu > 0) {
    co_await cpu.use(
        static_cast<sim::Nanos>(static_cast<double>(read_cpu) * jitter));
  }

  Reply reply = app_->execute(r, ctx);

  ExecOutcome out;
  if (leases_enabled()) {
    // Seqlock bracket: every overwritten slot goes odd for the whole
    // write phase AND the write gate that follows — a fast reader must
    // not observe r's value until every lease holder can serve it, or two
    // fast reads against different replicas could see r then not-r (read
    // inversion). Fresh creates need no bracket: a fast reader can only
    // learn their address from an ordered read, which is itself ordered
    // (and gated) after the create. The brackets are released by
    // write_gate.
    auto lock_for_write = [&](Oid oid) {
      if (!store_->exists(oid)) return;
      if (std::find(out.locked.begin(), out.locked.end(), oid) !=
          out.locked.end()) {
        return;
      }
      store_->begin_write(oid);
      open_brackets_.insert(oid);
      out.locked.push_back(oid);
    };
    for (const auto& c : ctx.creates()) lock_for_write(c.oid);
    for (const auto& [oid, bytes] : ctx.writes()) lock_for_write(oid);
  }

  // Writing phase: charge the application cost plus write serialization,
  // then apply all writes at one instant (the store is never observed
  // mid-write-phase).
  sim::Nanos write_cpu = ctx.cpu_cost();
  for (const auto& [oid, bytes] : ctx.writes()) {
    write_cpu += static_cast<sim::Nanos>(
        static_cast<double>(bytes.size()) *
        (store_->is_serialized(oid) ? cfg.serialize_ns_per_byte
                                    : cfg.memcpy_ns_per_byte));
  }
  for (const auto& c : ctx.creates()) {
    write_cpu += static_cast<sim::Nanos>(static_cast<double>(c.bytes.size()) *
                                         cfg.memcpy_ns_per_byte);
  }
  if (write_cpu > 0) {
    co_await cpu.use(
        static_cast<sim::Nanos>(static_cast<double>(write_cpu) * jitter));
  }
  apply_writes(r, ctx);
  out.lagging = false;
  out.reply = std::move(reply);
  co_return out;
}

void Replica::apply_writes(const Request& r, ExecContext& ctx) {
  // Coalesce duplicate writes to the same object (e.g. a NewOrder with
  // the same item twice): a request must produce at most one version per
  // object, or both dual-version slots would carry r.tmp and remote
  // readers of r would false-detect lagging.
  std::map<Oid, std::span<const std::byte>> final_value;
  for (const auto& c : ctx.creates()) {
    if (!store_->exists(c.oid)) {
      store_->create(c.oid, c.bytes, c.serialized);
    }
    final_value[c.oid] = c.bytes;
  }
  for (const auto& [oid, bytes] : ctx.writes()) {
    final_value[oid] = bytes;
  }
  for (const auto& [oid, bytes] : final_value) {
    if (system_->config().fast_writes && store_->has_fast_trace(oid)) {
      // Ordered wipe: the slot carries fast-write residue (a committed
      // fast version, or the headers of an aborted one). set() would keep
      // that residue in the sibling slot, and replicas that missed the
      // one-sided traffic would diverge from those that saw it. Install
      // r.tmp as the object's entire state instead and strip the lock tag
      // (parity preserved — we are inside this request's seqlock bracket),
      // so every replica converges on {r.tmp, r.tmp} regardless of which
      // fast-write bytes reached it. This doubles as the repair path for
      // the fast writer's own ordered fallback.
      store_->install_version(oid, bytes, r.tmp, store_->is_serialized(oid));
      store_->clear_fast_lock(oid);
      ++fast_repairs_;
      ctr_fast_repairs_->inc();
    } else {
      store_->set(oid, bytes, r.tmp);
    }
    log_update(r.tmp, oid);
  }
}

// ---------------------------------------------------------------------
// Fast-read leases: grant markers, applied watermarks, the write gate
// and the ordered-read fallback.
// ---------------------------------------------------------------------

bool Replica::leases_enabled() const {
  return system_->config().lease_duration > 0;
}

void Replica::publish_lease_word() {
  std::uint64_t epoch_word = lease_epoch_;
  // Fast-write disarm advertisement (kLeaseFastWriteDisarmedBit): probes
  // must fall back while the arming marker hasn't been delivered or an
  // outbound migration's copy machine is live — one-sided commits bypass
  // its dirty tracking and would be lost at the destination after FLIP.
  if (epoch_word != 0 && system_->config().fast_writes &&
      (!fast_write_armed_ || outbound_active_)) {
    epoch_word |= kLeaseFastWriteDisarmedBit;
  }
  const LeaseWord w{epoch_word, lease_expiry_};
  rdma::store_pod(node().region(fastread_mr_).bytes(), kFastReadLeaseOffset, w);
  node().region(fastread_mr_).on_write().notify_all();
}

void Replica::apply_lease_grant(const Request& r) {
  if (r.payload.size() < sizeof(LeaseGrantWire)) return;  // malformed
  LeaseGrantWire wire{};
  std::memcpy(&wire, r.payload.data(), sizeof(wire));
  ++lease_grants_;
  ctr_lease_grants_->inc();
  lease_epoch_ = r.tmp;
  // Monotone: expiry = submit time + duration and the manager submits
  // sequentially, so grants carry non-decreasing expiries; max() guards
  // the invariant the write gate's timeout cap leans on.
  lease_expiry_ = std::max(lease_expiry_, wire.expiry);
  publish_lease_word();
  hub_->tracer.instant(
      "core", "lease_grant", node().id(),
      {telemetry::Arg{"epoch", lease_epoch_},
       telemetry::Arg{"expiry", static_cast<std::uint64_t>(lease_expiry_)}});
}

void Replica::push_applied() {
  const AppliedWord w{last_executed_, system_->simulator().now()};
  // Own slot first (keeps the gate's region scan uniform across ranks),
  // then one-sided writes into every peer's fast-read region.
  rdma::store_pod(node().region(fastread_mr_).bytes(),
                  fastread_applied_offset(rank_), w);
  node().region(fastread_mr_).on_write().notify_all();
  for (int q = 0; q < system_->replicas_per_partition(); ++q) {
    if (q == rank_) continue;
    Replica& peer = system_->replica(group_, q);
    system_->fabric().write_async(
        node().id(),
        rdma::RAddr{peer.node().id(), peer.fastread_mr(),
                    fastread_applied_offset(rank_)},
        rdma::pod_bytes(w));
  }
}

sim::Task<void> Replica::write_gate(const Request& r,
                                    const std::vector<Oid>& locked) {
  const std::uint64_t inc = incarnation_;
  const sim::Nanos now = system_->simulator().now();
  // Nothing to wait for without locked slots or an active lease: fast
  // reads are impossible (no lease) or cannot observe r's writes (no
  // overwritten slot).
  if (!locked.empty() && leases_enabled() && lease_expiry_ > now) {
    const int reps = system_->replicas_per_partition();
    auto all_applied = [this, reps, &r] {
      const auto region = node().region(fastread_mr_).bytes();
      for (int q = 0; q < reps; ++q) {
        const auto w =
            rdma::load_pod<AppliedWord>(region, fastread_applied_offset(q));
        if (w.tmp < r.tmp) return false;
      }
      return true;
    };
    if (!all_applied()) {
      ++gate_waits_;
      ctr_gate_waits_->inc();
      // Capped by the expiry of the lease active NOW: any grant still
      // valid after that instant is ordered after r in the stream, so its
      // holder has already applied r — a fast read it authorizes cannot
      // miss r's writes even if a crashed peer never catches up.
      co_await sim::wait_until_timeout(node().region(fastread_mr_).on_write(),
                                       all_applied, lease_expiry_ - now);
      if (!stale(inc)) {
        hist_gate_wait_->observe(system_->simulator().now() - now);
      }
    }
  }
  // Release the brackets even when the incarnation went stale mid-wait: a
  // takeover (incarnation bump without a node restart) that early-returned
  // here used to strand the seqlocks permanently odd, walling every future
  // fast read off these slots. release_bracket only ends brackets this
  // incarnation still owns — restart() clears open_brackets_ and runs its
  // own sweep, so a crash+restart cannot double-release a slot the new
  // incarnation re-bracketed.
  for (Oid oid : locked) release_bracket(oid);
}

void Replica::release_bracket(Oid oid) {
  const auto it = open_brackets_.find(oid);
  if (it == open_brackets_.end()) return;  // swept by restart or epoch flip
  open_brackets_.erase(it);
  if (store_->exists(oid)) store_->end_write(oid);
}

// ---------------------------------------------------------------------
// Fast writes: the replica-side fence and restart reconciliation.
// ---------------------------------------------------------------------

bool Replica::fast_writes_enabled() const {
  return leases_enabled() && system_->config().fast_writes;
}

sim::Task<void> Replica::fast_write_fence(const Request& r) {
  for (const Oid oid : request_oids(r)) {
    if (!store_->exists(oid) || !store_->fast_pending(oid)) continue;
    co_await fence_slot(oid);
    if (stale(incarnation_)) co_return;
  }
}

sim::Task<void> Replica::fence_slot(Oid oid) {
  const std::uint64_t inc = incarnation_;
  ++fast_fence_waits_;
  ctr_fast_fence_->inc();
  while (store_->fast_pending(oid)) {
    const sim::Nanos now = system_->simulator().now();
    if (lease_expiry_ <= now) {
      // The lease (including any renewal) has run out and the slot is
      // still pending: the writer never posted its VALIDATE — clients
      // only validate while more than fast_write_val_margin of lease
      // remains, and the margin dwarfs the fabric's delivery latency, so
      // a posted VALIDATE would have landed by now. Every replica reaches
      // this same verdict at its own expiry; discard restores the
      // surviving version.
      store_->discard_pending(oid);
      ++fast_discards_;
      ctr_fast_discards_->inc();
      co_return;
    }
    // Wake on any write into the object region (the VALIDATE/discard
    // paths notify it); re-check the expiry each round — a renewal grant
    // can extend it while we wait.
    co_await sim::wait_until_timeout(
        node().region(store_->mr()).on_write(),
        [this, oid] { return !store_->fast_pending(oid); },
        lease_expiry_ - now);
    if (stale(inc)) co_return;
  }
}

Reply Replica::make_read_reply(const Request& r) const {
  ctr_ordered_reads_->inc();
  if (r.payload.size() < sizeof(Oid)) return Reply{kStatusReadNotFound, {}};
  Oid oid = 0;
  std::memcpy(&oid, r.payload.data(), sizeof(oid));
  if (!store_->exists(oid)) return Reply{kStatusReadNotFound, {}};
  const auto [tmp, value] = store_->get(oid);
  // The rank field's high bit flags serialized rows: fast writers must
  // skip them (a one-sided value write cannot re-serialize), and the
  // client records the flag alongside the cached address.
  ReadAnswerWire wire{tmp, store_->offset_of(oid), store_->size_of(oid),
                      static_cast<std::uint32_t>(rank_) |
                          (store_->is_serialized(oid)
                               ? kReadAnswerSerializedBit
                               : 0u)};
  Reply reply;
  const std::size_t inline_len = std::min(value.size(), kMaxReadInline);
  if (value.size() > kMaxReadInline) reply.status = kStatusReadTruncated;
  reply.payload.resize(sizeof(wire) + inline_len);
  std::memcpy(reply.payload.data(), &wire, sizeof(wire));
  std::memcpy(reply.payload.data() + sizeof(wire), value.data(), inline_len);
  return reply;
}

sim::Task<Replica::RemoteRead> Replica::read_remote(const Request& r, Oid oid,
                                                    GroupId h) {
  const std::uint64_t inc = incarnation_;
  ctr_remote_reads_->inc();
  auto span = hub_->tracer.span("core", "remote_read", node().id());
  span.arg("oid", oid);
  span.arg("home", static_cast<std::uint64_t>(h));
  const bool resolved = co_await resolve_addr(oid, h);
  if (!resolved) co_return RemoteRead{};  // unreachable partition

  auto& locs = object_map_.at(oid);
  const int reps = system_->replicas_per_partition();
  auto coord_region = node().region(coord_mr_).bytes();

  while (true) {
    // Line 15: choose among processes that coordinated in Phase 2 for r
    // (their coord entry carries r.tmp) and whose address we know. A
    // process whose entry is already *past* r also qualifies: it executed
    // everything up to r, and dual-versioning either still exposes the
    // right version or reveals that we lag (line 23).
    std::vector<int> candidates;
    for (int q = 0; q < reps; ++q) {
      if (!locs[static_cast<std::size_t>(q)].known) continue;
      const auto e =
          rdma::load_pod<CoordEntry>(coord_region, coord_offset(h, q));
      if ((e.tmp == r.tmp && e.state >= 1) || e.tmp > r.tmp) {
        candidates.push_back(q);
      }
    }
    if (candidates.empty()) {
      // Coordination messages may still be in flight; re-check on the
      // next write into coordination memory.
      co_await node().region(coord_mr_).on_write().wait();
      if (stale(inc)) co_return RemoteRead{};
      continue;
    }
    const int q = candidates[rng_.bounded(candidates.size())];
    const auto& loc = locs[static_cast<std::size_t>(q)];

    Replica& peer = system_->replica(h, q);
    std::vector<std::byte> buf(SlotView::header_bytes() + 2ull * loc.size);
    const auto cc = co_await system_->fabric().read(
        node().id(), rdma::RAddr{peer.node().id(), peer.store().mr(), loc.offset},
        buf);
    if (stale(inc)) co_return RemoteRead{};
    if (!cc.ok()) {
      // Line 20-21: RDMA exception — the peer failed; pick another.
      ctr_remote_retries_->inc();
      locs[static_cast<std::size_t>(q)].known = false;
      continue;
    }

    const auto view = SlotView::parse(buf);
    const auto version = view.version_before(r.tmp);
    if (!version) {
      // Line 23-25: both versions postdate r — we lag behind our group.
      ctr_lagging_->inc();
      co_return RemoteRead{.lagging = true};
    }
    RemoteRead out;
    out.ok = true;
    out.value.assign(version->second.begin(), version->second.end());
    if (view.is_serialized_slot()) {
      co_await node().cpu().use(static_cast<sim::Nanos>(
          static_cast<double>(view.size) *
          system_->config().serialize_ns_per_byte));
    }
    co_return out;
  }
}

sim::Task<bool> Replica::resolve_addr(Oid oid, GroupId h) {
  const std::uint64_t inc = incarnation_;
  const int reps = system_->replicas_per_partition();
  const int majority = reps / 2 + 1;

  auto known_count = [this, oid, reps] {
    auto it = object_map_.find(oid);
    if (it == object_map_.end()) return 0;
    int known = 0;
    for (int q = 0; q < reps; ++q) {
      if (it->second[static_cast<std::size_t>(q)].known) ++known;
    }
    return known;
  };

  // Consume any answers that already arrived (including strays from
  // earlier queries).
  auto drain = [this] {
    const auto region = node().region(addra_mr_).bytes();
    const auto stripes = system_->amcast().total_replicas();
    const int reps2 = system_->replicas_per_partition();
    for (std::uint32_t s = 0; s < stripes; ++s) {
      while (true) {
        // `>` tolerated: answers dropped across a crash+restart leave a
        // gap; the ring continues at the producer's counter.
        const auto ans = rdma::load_pod<AddrAnswer>(
            region, addra_offset(s, addra_next_[s] + 1));
        if (ans.seq < addra_next_[s] + 1) break;
        addra_next_[s] = ans.seq;
        if (ans.found == 0) continue;
        auto [it, inserted] = object_map_.try_emplace(
            ans.oid, std::vector<RemoteLoc>(static_cast<std::size_t>(reps2)));
        const int q = static_cast<int>(s) % reps2;
        it->second[static_cast<std::size_t>(q)] =
            RemoteLoc{ans.offset, ans.size, true};
      }
    }
  };

  drain();
  if (known_count() >= majority) {
    ctr_addr_hits_->inc();
    co_return true;
  }
  ctr_addr_misses_->inc();

  // Lines 8-13: query every replica of h, wait for a majority.
  for (int q = 0; q < reps; ++q) {
    Replica& peer = system_->replica(h, q);
    const auto stripe = system_->amcast().stripe_of(h, q);
    const auto my_stripe = system_->amcast().stripe_of(group_, rank_);
    AddrQuery query{++addrq_sent_[stripe], oid};
    system_->fabric().write_async(
        node().id(),
        rdma::RAddr{peer.node().id(), peer.addrq_mr(),
                    peer.addrq_offset(my_stripe, query.seq)},
        rdma::pod_bytes(query));
  }
  co_await sim::wait_until(node().region(addra_mr_).on_write(),
                           [&drain, &known_count, majority] {
                             drain();
                             return known_count() >= majority;
                           });
  if (stale(inc)) co_return false;
  co_return true;
}

sim::Task<void> Replica::addr_query_loop() {
  const std::uint64_t inc = incarnation_;
  auto& region = node().region(addrq_mr_);
  const auto stripes = system_->amcast().total_replicas();
  const HeronConfig& cfg = system_->config();

  // `>` tolerated (see resolve_addr's drain): gaps appear when queries
  // were dropped while this replica was down.
  auto have_new = [this, &region, stripes] {
    for (std::uint32_t s = 0; s < stripes; ++s) {
      const auto q = rdma::load_pod<AddrQuery>(
          region.bytes(), addrq_offset(s, addrq_next_[s] + 1));
      if (q.seq >= addrq_next_[s] + 1) return true;
    }
    return false;
  };

  while (true) {
    co_await sim::wait_until(region.on_write(), have_new);
    if (stale(inc)) co_return;
    for (std::uint32_t s = 0; s < stripes; ++s) {
      while (true) {
        const auto q = rdma::load_pod<AddrQuery>(
            region.bytes(), addrq_offset(s, addrq_next_[s] + 1));
        if (q.seq < addrq_next_[s] + 1) break;
        addrq_next_[s] = q.seq;
        co_await node().cpu().use(cfg.coord_check_proc);
        if (stale(inc)) co_return;

        AddrAnswer ans;
        ans.seq = q.seq;
        ans.oid = q.oid;
        if (store_->exists(q.oid)) {
          ans.offset = store_->offset_of(q.oid);
          ans.size = store_->size_of(q.oid);
          ans.found = 1;
        }
        // Answer into the asker's answer region, striped by *us*.
        const auto asker_group = static_cast<GroupId>(
            s / static_cast<std::uint32_t>(system_->replicas_per_partition()));
        const auto asker_rank = static_cast<int>(
            s % static_cast<std::uint32_t>(system_->replicas_per_partition()));
        Replica& asker = system_->replica(asker_group, asker_rank);
        const auto my_stripe = system_->amcast().stripe_of(group_, rank_);
        system_->fabric().write_async(
            node().id(),
            rdma::RAddr{asker.node().id(), asker.addra_mr(),
                        asker.addra_offset(my_stripe, ans.seq)},
            rdma::pod_bytes(ans));
      }
    }
  }
}

// ---------------------------------------------------------------------
// heron::reconfig: epoch-versioned layouts, dual-epoch serving and the
// throttled background copy machine (see DESIGN.md "Reconfiguration";
// the copy machine is modeled on cortx-motr's cm/sns copy-packet pump).
// ---------------------------------------------------------------------

bool Replica::reconfig_enabled() const {
  return system_->config().reconfig_keys != 0;
}

void Replica::publish_epoch_word() {
  rdma::store_pod(node().region(fastread_mr_).bytes(), kFastReadEpochOffset,
                  layout_.epoch);
  node().region(fastread_mr_).on_write().notify_all();
}

std::vector<Oid> Replica::request_oids(const Request& r) const {
  if ((r.header.flags & kReqFlagRead) != 0) {
    if (r.payload.size() < sizeof(Oid)) return {};
    Oid oid = 0;
    std::memcpy(&oid, r.payload.data(), sizeof(oid));
    return {oid};
  }
  if (system_->config().mode == Mode::kApp) return app_->read_set(r, group_);
  return {};  // order-only payloads carry no parseable keys
}

bool Replica::touches_unsealed_inbound(const std::vector<Oid>& oids) const {
  if (inbound_sealed()) return false;
  for (const Oid oid : oids) {
    if (inbound_.contains(oid)) return true;
  }
  return false;
}

Reply Replica::make_wrong_epoch_reply(Oid oid) const {
  WrongEpochWire wire;
  wire.epoch = layout_.epoch;
  layout_.range_of(oid, wire.lo, wire.hi);
  wire.owner = layout_.owner_of(oid);
  Reply reply;
  reply.status = kStatusWrongEpoch;
  reply.payload.resize(sizeof(wire));
  std::memcpy(reply.payload.data(), &wire, sizeof(wire));
  return reply;
}

sim::Task<void> Replica::apply_epoch_marker(const Request& r) {
  const std::uint64_t inc = incarnation_;
  reconfig::Layout incoming;
  std::uint32_t phase = 0;
  if (!reconfig::decode_marker(r.payload, incoming, phase)) co_return;
  if (incoming.epoch <= layout_.epoch) co_return;  // superseded/duplicate

  if (phase == reconfig::kEpochPrepare) {
    layout_ = incoming;
    publish_epoch_word();
    const reconfig::Migration& mig = layout_.migration;
    if (!mig.active()) co_return;
    if (mig.from == group_) {
      outbound_active_ = true;
      outbound_flipped_ = false;
      outbound_ = mig;
      outbound_epoch_ = layout_.epoch;
      migration_dirty_.clear();
      pass_pending_.clear();
      copy_caught_up_ = false;
      final_image_.clear();
      // Disarm fast writes for the whole partition before the copy
      // machine's first pass: re-publish the lease word with
      // kLeaseFastWriteDisarmedBit so in-flight probes/verifies abort
      // (one-sided commits bypass migration_dirty_).
      if (leases_enabled()) publish_lease_word();
      system_->simulator().spawn(copy_machine(layout_.epoch));
    }
    if (mig.to == group_) {
      inbound_epoch_ = layout_.epoch;
      inbound_ = mig;
      inbound_stream_dirty_ = false;
      inbound_progress_at_ = system_->simulator().now();
      system_->simulator().spawn(inbound_watch_loop(layout_.epoch));
    }
    co_return;
  }

  // FLIP: ownership moves at this exact stream position on every replica.
  const bool was_source = outbound_active_ && !outbound_flipped_;
  const reconfig::Migration mig = layout_.migration;
  layout_ = incoming;  // ranges rewritten, migration cleared
  publish_epoch_word();
  if (!was_source || !mig.active() || mig.from != group_) co_return;

  // (1) Fast-read cutoff FIRST, before any suspension: zero the lease
  // word so no one-sided reader trusts this replica for the handed-off
  // range between the destination's seal and the retirement below
  // (satellite fix: lease words zeroed on ownership transfer, not only
  // on restart()).
  outbound_flipped_ = true;
  copy_caught_up_ = true;
  lease_epoch_ = 0;
  lease_expiry_ = 0;
  publish_lease_word();

  // (2) Final image: full range snapshot + every session + tombstones,
  // retained in memory to serve idempotent pull resends after the live
  // slots are retired.
  std::vector<Oid> range_oids;
  store_->for_each_oid([&](Oid oid) {
    if (mig.contains(oid)) range_oids.push_back(oid);
  });
  std::sort(range_oids.begin(), range_oids.end());
  final_image_.clear();
  for (const Oid oid : range_oids) {
    // A slot still fast-pending here snapshots as its pre-image
    // (SlotView::current skips the pending version). That is the right
    // value: the PREPARE disarm stopped new fast commits long before this
    // FLIP, so a pending that lingered this long was abandoned by its
    // writer — no VALIDATE is coming — and step (4) discards it below.
    const auto [tmp, val] = store_->get(oid);
    reconfig::CopyRecord rec;
    rec.oid = oid;
    rec.tmp = tmp;
    rec.size = static_cast<std::uint32_t>(val.size());
    rec.serialized = store_->is_serialized(oid) ? 1u : 0u;
    rec.kind = reconfig::kCopyObject;
    final_image_.emplace_back(rec,
                              std::vector<std::byte>(val.begin(), val.end()));
  }
  for (const auto& [client, s] : sessions_) {
    std::vector<std::byte> blob = encode_session(s);
    reconfig::CopyRecord rec;
    rec.oid = client;
    rec.tmp = s.last_tmp;
    rec.size = static_cast<std::uint32_t>(blob.size());
    rec.kind = reconfig::kCopySession;
    final_image_.emplace_back(rec, std::move(blob));
  }
  for (const auto& [client, floor] : evicted_sessions_) {
    reconfig::CopyRecord rec;
    rec.oid = client;
    rec.tmp = floor;
    rec.kind = reconfig::kCopyTombstone;
    final_image_.emplace_back(rec, std::vector<std::byte>{});
  }

  // (3) Final delta: objects written (or collected but not yet on the
  // wire — pass_pending_) since the last drained pass, plus all session
  // state, sealed. Unthrottled: this is the flip's quiesce window and
  // should be as short as possible.
  std::set<Oid> delta = migration_dirty_;
  delta.insert(pass_pending_.begin(), pass_pending_.end());
  migration_dirty_.clear();
  pass_pending_.clear();
  std::vector<CopyItem> items;
  for (const CopyItem& it : final_image_) {
    if (it.first.kind == reconfig::kCopyObject &&
        !delta.contains(it.first.oid)) {
      continue;
    }
    items.push_back(it);
  }
  co_await copy_send(std::move(items), outbound_epoch_, mig.to, rank_,
                     /*seal=*/true, /*throttle=*/false, inc);
  if (stale(inc)) co_return;

  // (4) Retirement: normalize any odd seqlock (satellite fix — this sweep
  // previously only ran on restart()), poison the size word so stale
  // fast readers fail their size check, and purge the range from the
  // update log so later delta checkpoints/transfers skip retired oids.
  for (const Oid oid : range_oids) {
    if (!store_->exists(oid)) continue;
    // A pending INVALIDATE on a migrating-away slot resolves as aborted:
    // the final delta above shipped the committed version, and the writer's
    // VERIFY against this retired slot (poisoned size) fails, sending it
    // down the ordered fallback — which the new owner answers.
    if (store_->fast_pending(oid)) store_->discard_pending(oid);
    if (store_->seqlock(oid) & 1) store_->end_write(oid);
    store_->retire(oid);
    ++migrated_out_;
  }
  std::erase_if(update_log_,
                [&mig](const LogEntry& e) { return mig.contains(e.oid); });
  outbound_active_ = false;  // outbound_/outbound_epoch_ kept for pulls
}

sim::Task<void> Replica::copy_machine(std::uint64_t mig_epoch) {
  const std::uint64_t inc = incarnation_;
  const reconfig::ReconfigConfig& rcfg = system_->config().reconfig;
  auto& sim = system_->simulator();
  const reconfig::Migration mig = outbound_;
  int pass = 0;
  while (true) {
    if (stale(inc) || !outbound_active_ || outbound_flipped_ ||
        outbound_epoch_ != mig_epoch) {
      co_return;
    }
    // Pass 0 snapshots the whole range; later passes drain the objects
    // foreground writes dirtied since. Collected oids sit in
    // pass_pending_ until their chunk is on the wire, so a FLIP that
    // interrupts a pass still covers them in its final delta.
    std::vector<Oid> oids;
    if (pass == 0) {
      store_->for_each_oid([&](Oid oid) {
        if (mig.contains(oid)) oids.push_back(oid);
      });
      std::sort(oids.begin(), oids.end());
    } else {
      oids.assign(migration_dirty_.begin(), migration_dirty_.end());
      migration_dirty_.clear();
    }
    pass_pending_.insert(oids.begin(), oids.end());
    std::vector<CopyItem> items;
    items.reserve(oids.size());
    for (const Oid oid : oids) {
      if (!store_->exists(oid)) continue;
      if (store_->fast_pending(oid)) {
        // A pending invalidation may still receive its VALIDATE (posted
        // before the PREPARE disarm propagated to the writer); shipping
        // the pre-image now would miss that commit, and one-sided traffic
        // never touches migration_dirty_. Defer the oid to a later pass —
        // by then the slot has validated or been discarded.
        migration_dirty_.insert(oid);
        pass_pending_.erase(oid);
        ++copy_deferred_;
        ctr_copy_deferred_->inc();
        continue;
      }
      const auto [tmp, val] = store_->get(oid);
      reconfig::CopyRecord rec;
      rec.oid = oid;
      rec.tmp = tmp;
      rec.size = static_cast<std::uint32_t>(val.size());
      rec.serialized = store_->is_serialized(oid) ? 1u : 0u;
      rec.kind = reconfig::kCopyObject;
      items.emplace_back(rec, std::vector<std::byte>(val.begin(), val.end()));
    }
    const bool ok = co_await copy_send(std::move(items), mig_epoch, mig.to,
                                       rank_, /*seal=*/false,
                                       /*throttle=*/true, inc);
    if (!ok || stale(inc) || !outbound_active_ || outbound_flipped_) co_return;
    ++pass;
    copy_caught_up_ = migration_dirty_.size() + pass_pending_.size() <=
                      rcfg.seal_dirty_threshold;
    co_await sim.sleep(rcfg.delta_pass_interval);
  }
}

sim::Task<bool> Replica::copy_send(std::vector<CopyItem> items,
                                   std::uint64_t mig_epoch, GroupId dest_group,
                                   int dest_rank, bool seal, bool throttle,
                                   std::uint64_t inc) {
  const HeronConfig& cfg = system_->config();
  const reconfig::ReconfigConfig& rcfg = cfg.reconfig;
  auto& sim = system_->simulator();
  auto& ep = system_->amcast().endpoint(group_, rank_);
  Replica& dest = system_->replica(dest_group, dest_rank);
  std::vector<std::byte> chunk(reconfig::copy_slot_bytes(rcfg));
  std::uint32_t fill = 0;
  std::uint32_t count = 0;
  std::vector<Oid> chunk_oids;

  auto flush = [&](bool seal_flag) -> sim::Task<bool> {
    if (count == 0 && !seal_flag) co_return true;
    if (throttle) {
      // Same backpressure discipline as the checkpoint writer — defer
      // while the ordering propose queue is deep or the replica CPU has
      // a backlog of queued foreground work — plus the fabric signal:
      // copy chunks yield the congested rack uplink (and its credits) to
      // foreground traffic.
      auto& fabric = system_->fabric();
      while (ep.propose_backlog() > rcfg.throttle_queue_depth ||
             node().cpu().free_at() > sim.now() + rcfg.throttle_cpu_backlog ||
             (rcfg.throttle_uplink_backlog > 0 &&
              fabric.uplink_backlog(node().id()) >
                  rcfg.throttle_uplink_backlog)) {
        ++copy_deferred_;
        ctr_copy_deferred_->inc();
        co_await sim.sleep(rcfg.throttle_backoff);
        if (stale(inc)) co_return false;
      }
    }
    if (fill > 0) {
      co_await node().cpu().use(static_cast<sim::Nanos>(
          static_cast<double>(fill) * cfg.memcpy_ns_per_byte));
      if (stale(inc)) co_return false;
    }
    reconfig::CopyChunkHeader hdr;
    hdr.seq = ++copy_seq_[static_cast<std::size_t>(dest_rank)];
    hdr.epoch = mig_epoch;
    hdr.record_count = count;
    hdr.payload_bytes = fill;
    hdr.flags = seal_flag ? reconfig::kCopyFlagSeal : 0u;
    hdr.crc = reconfig::copy_crc(std::span<const std::byte>(chunk).subspan(
        sizeof(reconfig::CopyChunkHeader), fill));
    // Fault injection: corrupt one payload byte AFTER the CRC was
    // computed — the receiver must detect the mismatch and recover
    // through the pull path.
    if (rcfg.chunk_corrupt_rate > 0 && fill > 0 &&
        rng_.chance(rcfg.chunk_corrupt_rate)) {
      chunk[sizeof(hdr) + rng_.bounded(fill)] ^= std::byte{0x40};
    }
    rdma::store_pod(std::span(chunk), 0, hdr);
    // A failed write (dest down) is tolerated: the dest recovers through
    // a pull resend once it rejoins.
    co_await system_->fabric().write(
        node().id(),
        rdma::RAddr{dest.node().id(), dest.reconfig_mr(),
                    reconfig::copy_slot_offset(rcfg, rank_, hdr.seq)},
        std::span<const std::byte>(chunk).first(sizeof(hdr) + fill));
    if (stale(inc)) co_return false;
    ++copy_chunks_sent_;
    ctr_copy_chunks_->inc();
    for (const Oid oid : chunk_oids) pass_pending_.erase(oid);
    chunk_oids.clear();
    fill = 0;
    count = 0;
    co_return true;
  };

  for (CopyItem& item : items) {
    const auto len = static_cast<std::uint32_t>(sizeof(reconfig::CopyRecord) +
                                                item.second.size());
    if (len > rcfg.copy_chunk_bytes) {
      throw std::runtime_error("reconfig: record larger than copy chunk");
    }
    if (fill + len > rcfg.copy_chunk_bytes) {
      if (!co_await flush(false)) co_return false;
    }
    const std::uint64_t off = sizeof(reconfig::CopyChunkHeader) + fill;
    rdma::store_pod(std::span(chunk), off, item.first);
    std::memcpy(chunk.data() + off + sizeof(reconfig::CopyRecord),
                item.second.data(), item.second.size());
    fill += len;
    ++count;
    if (item.first.kind == reconfig::kCopyObject) {
      chunk_oids.push_back(item.first.oid);
    }
  }
  co_return co_await flush(seal);
}

sim::Task<void> Replica::copy_recv_loop() {
  const std::uint64_t inc = incarnation_;
  auto& region = node().region(reconfig_mr_);
  const HeronConfig& cfg = system_->config();
  const reconfig::ReconfigConfig& rcfg = cfg.reconfig;
  const int reps = system_->replicas_per_partition();

  auto have_new = [this, &region, &rcfg, reps] {
    for (int s = 0; s < reps; ++s) {
      const auto next = copy_next_[static_cast<std::size_t>(s)] + 1;
      const auto hdr = rdma::load_pod<reconfig::CopyChunkHeader>(
          region.bytes(), reconfig::copy_slot_offset(rcfg, s, next));
      if (hdr.seq >= next) return true;
    }
    return false;
  };

  while (true) {
    co_await sim::wait_until(region.on_write(), have_new);
    if (stale(inc)) co_return;
    for (int s = 0; s < reps; ++s) {
      while (true) {
        const std::uint64_t next = copy_next_[static_cast<std::size_t>(s)] + 1;
        const std::uint64_t base = reconfig::copy_slot_offset(rcfg, s, next);
        const auto hdr =
            rdma::load_pod<reconfig::CopyChunkHeader>(region.bytes(), base);
        if (hdr.seq < next) break;
        if (hdr.seq > next) {
          // Ring overrun while this rank lagged (or was down): the slots
          // between next and hdr.seq were overwritten and their records
          // lost — taint the stream so no SEAL lands until a pull resend.
          inbound_stream_dirty_ = true;
          copy_next_[static_cast<std::size_t>(s)] = hdr.seq - 1;
          continue;
        }
        copy_next_[static_cast<std::size_t>(s)] = hdr.seq;
        inbound_progress_at_ = system_->simulator().now();
        // A torn/garbage header must never size the payload view past the
        // ring slot: treat an oversized payload_bytes as a corrupt chunk
        // (cursor already advanced; the pull path re-ships it) instead of
        // an out-of-range subspan.
        if (hdr.payload_bytes > rcfg.copy_chunk_bytes) {
          ++copy_chunks_corrupt_;
          ctr_copy_corrupt_->inc();
          inbound_stream_dirty_ = true;
          continue;
        }
        const auto payload = region.bytes().subspan(
            base + sizeof(reconfig::CopyChunkHeader), hdr.payload_bytes);
        if (reconfig::copy_crc(payload) != hdr.crc) {
          ++copy_chunks_corrupt_;
          ctr_copy_corrupt_->inc();
          inbound_stream_dirty_ = true;
          continue;
        }
        ++copy_chunks_received_;
        sim::Nanos apply_cpu = 0;
        std::uint64_t off = 0;
        bool malformed = false;
        for (std::uint32_t i = 0; i < hdr.record_count; ++i) {
          if (off + sizeof(reconfig::CopyRecord) > payload.size()) {
            malformed = true;
            break;
          }
          const auto rec = rdma::load_pod<reconfig::CopyRecord>(payload, off);
          off += sizeof(reconfig::CopyRecord);
          if (rec.size > payload.size() - off) {
            malformed = true;
            break;
          }
          const auto value = payload.subspan(off, rec.size);
          off += rec.size;
          if (rec.kind == reconfig::kCopySession) {
            merge_session(static_cast<std::uint32_t>(rec.oid),
                          decode_session(value));
            apply_cpu += static_cast<sim::Nanos>(
                static_cast<double>(rec.size) * cfg.memcpy_ns_per_byte);
            continue;
          }
          if (rec.kind == reconfig::kCopyTombstone) {
            auto& floor =
                evicted_sessions_[static_cast<std::uint32_t>(rec.oid)];
            floor = std::max(floor, rec.tmp);
            continue;
          }
          // Object record, newest-wins: later passes and idempotent pull
          // resends may re-ship versions this rank already applied.
          if (store_->exists(rec.oid)) {
            if (store_->get(rec.oid).first >= rec.tmp) continue;
          } else {
            ++migrated_in_;
          }
          store_->install_version(rec.oid, value, rec.tmp,
                                  rec.serialized != 0);
          apply_cpu += static_cast<sim::Nanos>(
              static_cast<double>(rec.size) *
              (rec.serialized != 0 ? cfg.memcpy_ns_per_byte
                                   : cfg.serialize_ns_per_byte));
        }
        if (malformed) {
          // A record overran the CRC'd payload: sender bug or a torn-write
          // mode the CRC missed. Same recovery as a corrupt chunk — taint
          // the stream so the seal is withheld until a pull resend.
          ++copy_chunks_corrupt_;
          ctr_copy_corrupt_->inc();
          inbound_stream_dirty_ = true;
          continue;
        }
        if ((hdr.flags & reconfig::kCopyFlagSeal) != 0) {
          if (!inbound_stream_dirty_) {
            seal_epoch_seen_ = std::max(seal_epoch_seen_, hdr.epoch);
          }
          // A dirty stream drops the seal: the starvation watcher sees no
          // further progress and pulls a full resend, which carries its
          // own SEAL over a fresh clean stream.
          inbound_stream_dirty_ = false;
        }
        if (apply_cpu > 0) {
          co_await node().cpu().use(apply_cpu);
          if (stale(inc)) co_return;
        }
      }
    }
  }
}

sim::Task<void> Replica::inbound_watch_loop(std::uint64_t mig_epoch) {
  const std::uint64_t inc = incarnation_;
  const reconfig::ReconfigConfig& rcfg = system_->config().reconfig;
  auto& sim = system_->simulator();
  const int reps = system_->replicas_per_partition();
  while (true) {
    co_await sim.sleep(rcfg.pull_timeout / 2);
    if (stale(inc)) co_return;
    if (inbound_epoch_ != mig_epoch) co_return;    // superseded migration
    if (seal_epoch_seen_ >= mig_epoch) co_return;  // sealed: done
    if (sim.now() - inbound_progress_at_ <= rcfg.pull_timeout) continue;
    // Starved: ask the next source rank (pair rank first, then
    // round-robin) for an idempotent full resend.
    const int src = static_cast<int>(
        (static_cast<std::uint64_t>(rank_) + pull_rr_++) %
        static_cast<std::uint64_t>(reps));
    Replica& donor = system_->replica(inbound_.from, src);
    const reconfig::PullWord pw{++pull_serial_, rank_, 0};
    system_->fabric().write_async(
        node().id(),
        rdma::RAddr{donor.node().id(), donor.reconfig_mr(),
                    reconfig::copy_pull_offset(rcfg, reps, rank_)},
        rdma::pod_bytes(pw));
    ++copy_pulls_;
    ctr_copy_pulls_->inc();
    inbound_progress_at_ = sim.now();
  }
}

sim::Task<void> Replica::pull_watch_loop() {
  const std::uint64_t inc = incarnation_;
  auto& region = node().region(reconfig_mr_);
  const reconfig::ReconfigConfig& rcfg = system_->config().reconfig;
  const int reps = system_->replicas_per_partition();
  while (true) {
    co_await region.on_write().wait();
    if (stale(inc)) co_return;
    for (int q = 0; q < reps; ++q) {
      const auto pw = rdma::load_pod<reconfig::PullWord>(
          region.bytes(), reconfig::copy_pull_offset(rcfg, reps, q));
      if (pw.serial <= pull_seen_[static_cast<std::size_t>(q)] ||
          pw.requester != q) {
        continue;
      }
      pull_seen_[static_cast<std::size_t>(q)] = pw.serial;
      // Serve only once flipped, from the retained final image. A
      // restarted source whose image is gone marks the pull handled and
      // stays silent; the starved destination round-robins to the next
      // source rank. (Every source crashing after the FLIP but before
      // any dest rank sealed is out of scope — see DESIGN.md.)
      if (!outbound_flipped_ || final_image_.empty()) continue;
      ++copy_pulls_served_;
      std::vector<CopyItem> items = final_image_;
      co_await copy_send(std::move(items), outbound_epoch_, outbound_.to, q,
                         /*seal=*/true, /*throttle=*/false, inc);
      if (stale(inc)) co_return;
    }
  }
}

void Replica::merge_session(std::uint32_t client, Session&& incoming) {
  incoming.last_active = system_->simulator().now();
  auto it = sessions_.find(client);
  if (it == sessions_.end()) {
    sessions_[client] = std::move(incoming);
    return;
  }
  // Union-merge: both sides may have executed disjoint command sets (the
  // source pre-flip, this group post-flip). The cached reply follows the
  // higher cached_seq; a paged-out incoming payload stays paged out and
  // degrades to kStatusStaleSession on retry (this group's device never
  // persisted it).
  Session& s = it->second;
  if (incoming.cached_seq > s.cached_seq) {
    s.cached_seq = incoming.cached_seq;
    s.cached_reply = std::move(incoming.cached_reply);
    s.reply_paged_out = incoming.reply_paged_out;
  }
  s.last_tmp = std::max(s.last_tmp, incoming.last_tmp);
  s.last_active = incoming.last_active;
  const std::uint64_t w = std::max(s.watermark, incoming.watermark);
  s.above.insert(incoming.above.begin(), incoming.above.end());
  s.watermark = w;
  while (!s.above.empty() && *s.above.begin() <= w) {
    s.above.erase(s.above.begin());
  }
  while (s.above.contains(s.watermark + 1)) {
    s.above.erase(s.watermark + 1);
    ++s.watermark;
  }
}

void Replica::adopt_layout_record(std::span<const std::byte> payload) {
  if (payload.size() < sizeof(std::uint64_t)) return;
  const auto donor_seal = rdma::load_pod<std::uint64_t>(payload, 0);
  reconfig::Layout donor;
  std::uint32_t phase = 0;
  if (!reconfig::decode_marker(payload.subspan(sizeof(std::uint64_t)), donor,
                               phase)) {
    return;
  }
  if (donor.epoch > layout_.epoch) {
    layout_ = donor;
    publish_epoch_word();
  }
  // Donor seal knowledge is transplantable: the same transfer ships the
  // donor's store, which already includes everything its sealed copy
  // stream carried.
  seal_epoch_seen_ = std::max(seal_epoch_seen_, donor_seal);
}

sim::Task<void> Replica::resume_migration_roles(std::uint64_t inc) {
  if (!layout_.enabled() || !layout_.migration.active()) co_return;
  const reconfig::Migration mig = layout_.migration;
  const reconfig::ReconfigConfig& rcfg = system_->config().reconfig;
  const int reps = system_->replicas_per_partition();
  auto& sim = system_->simulator();

  if (mig.from == group_) {
    // Source crashed mid-copy: recover per-dest send counters from the
    // surviving dest rings (a fresh stream restarting at seq 1 would be
    // silently ignored by the dest's cursor), then restart the copier
    // from a full pass.
    for (int q = 0; q < reps; ++q) {
      Replica& dest = system_->replica(mig.to, q);
      std::uint64_t max_seq = copy_seq_[static_cast<std::size_t>(q)];
      for (std::uint32_t i = 0; i < rcfg.copy_ring_slots; ++i) {
        std::vector<std::byte> buf(sizeof(reconfig::CopyChunkHeader));
        const auto cc = co_await system_->fabric().read(
            node().id(),
            rdma::RAddr{dest.node().id(), dest.reconfig_mr(),
                        (static_cast<std::uint64_t>(rank_) *
                             rcfg.copy_ring_slots +
                         i) *
                            reconfig::copy_slot_bytes(rcfg)},
            buf);
        if (stale(inc)) co_return;
        if (!cc.ok()) break;  // dest down; counter stays, stream resumes
        max_seq = std::max(
            max_seq,
            rdma::load_pod<reconfig::CopyChunkHeader>(std::span(buf), 0).seq);
      }
      copy_seq_[static_cast<std::size_t>(q)] = max_seq;
    }
    outbound_active_ = true;
    outbound_flipped_ = false;
    outbound_ = mig;
    outbound_epoch_ = layout_.epoch;
    migration_dirty_.clear();
    pass_pending_.clear();
    copy_caught_up_ = false;
    sim.spawn(copy_machine(layout_.epoch));
  }
  if (mig.to == group_ && seal_epoch_seen_ < layout_.epoch) {
    inbound_epoch_ = layout_.epoch;
    inbound_ = mig;
    // Chunks streamed while this rank was down are gone; force the first
    // SEAL attempt to fail so a pull resend re-ships the whole range.
    inbound_stream_dirty_ = true;
    inbound_progress_at_ = sim.now();
    sim.spawn(inbound_watch_loop(layout_.epoch));
  }
}

// ---------------------------------------------------------------------
// Algorithm 3: state transfer.
// ---------------------------------------------------------------------

void Replica::log_update(Tmp tmp, Oid oid) {
  // Copy-machine dirty tracking: a foreground write into the outbound
  // range re-marks the object for the next delta pass (or the FLIP's
  // final delta).
  if (outbound_active_ && !outbound_flipped_ && outbound_.contains(oid)) {
    migration_dirty_.insert(oid);
  }
  update_log_.push_back(LogEntry{tmp, oid});
  if (update_log_.size() > system_->config().update_log_capacity) {
    // A capacity pop loses dirty-tracking: remember the highest tmp ever
    // dropped this way, so a delta checkpoint whose base is older is
    // forced full. Checkpoint truncation (entries the checkpoint covers)
    // does NOT update this — those entries are durably recorded.
    log_dropped_max_ = std::max(log_dropped_max_, update_log_.front().tmp);
    log_floor_ = std::max(log_floor_, update_log_.front().tmp);
    update_log_.pop_front();
    log_truncated_ = true;
  }
}

std::vector<Oid> Replica::log_objects_since(Tmp from_tmp, bool held_through,
                                            bool& full_transfer) const {
  // from_tmp == 0 is a from-scratch restart (no checkpoint, volatile
  // memory lost): by definition a full transfer, whatever the log holds.
  //
  // Otherwise the requester needs every update at/above from_tmp
  // (failed-request semantics) or strictly above it (held_through: a
  // delta request certifies from_tmp itself is applied). A delta
  // suffices exactly when no entry the requester needs was ever dropped:
  // log_floor_ is the highest tmp dropped by any path (capacity pops,
  // checkpoint truncation, restart wipe).
  full_transfer = from_tmp == 0 || (held_through ? log_floor_ > from_tmp
                                                 : log_floor_ >= from_tmp);
  std::vector<Oid> out;
  std::set<Oid> seen;
  if (full_transfer) return out;
  // Entries are appended in execution order => sorted by tmp.
  auto it =
      held_through
          ? std::upper_bound(update_log_.begin(), update_log_.end(), from_tmp,
                             [](Tmp t, const LogEntry& e) { return t < e.tmp; })
          : std::lower_bound(update_log_.begin(), update_log_.end(), from_tmp,
                             [](const LogEntry& e, Tmp t) { return e.tmp < t; });
  for (; it != update_log_.end(); ++it) {
    if (seen.insert(it->oid).second) out.push_back(it->oid);
  }
  return out;
}

sim::Task<void> Replica::request_state_transfer(Tmp failed_tmp,
                                                bool have_sessions) {
  const std::uint64_t inc = incarnation_;
  ++state_transfers_;
  ctr_state_transfers_->inc();
  auto span = hub_->tracer.span("core", "state_transfer", node().id());
  span.arg("from_tmp", failed_tmp);
  const StateSyncEntry entry{failed_tmp, have_sessions ? 2ull : 1ull, 0,
                             ++statesync_serial_};

  // Lines 2-4: write the request into every group member's statesync
  // memory (and our own, so candidates and our waiter see one source).
  rdma::store_pod(node().region(statesync_mr_).bytes(),
                  statesync_offset(rank_), entry);
  node().region(statesync_mr_).on_write().notify_all();
  for (int q = 0; q < system_->replicas_per_partition(); ++q) {
    if (q == rank_) continue;
    Replica& peer = system_->replica(group_, q);
    system_->fabric().write_async(
        node().id(),
        rdma::RAddr{peer.node().id(), peer.statesync_mr(),
                    peer.statesync_offset(rank_)},
        rdma::pod_bytes(entry));
  }

  // Line 5: wait until the handler flips our status back to 0, then wait
  // for the staging applier to drain the shipped chunks.
  auto& region = node().region(statesync_mr_);
  co_await sim::wait_until(region.on_write(), [this, &region] {
    const auto e = rdma::load_pod<StateSyncEntry>(region.bytes(),
                                                  statesync_offset(rank_));
    return e.status == 0 && e.rid != 0;
  });
  if (stale(inc)) co_return;
  co_await sim::wait_until(node().region(staging_mr_).on_write(),
                           [this] { return staging_pending() == 0; });
  if (stale(inc)) co_return;

  // Line 6.
  const auto done = rdma::load_pod<StateSyncEntry>(region.bytes(),
                                                   statesync_offset(rank_));
  last_req_ = std::max(last_req_, done.rid);
  last_executed_ = std::max(last_executed_, done.rid);
}

std::uint64_t Replica::staging_pending() const {
  const auto region =
      const_cast<Replica*>(this)->node().region(staging_mr_).bytes();
  std::uint64_t pending = 0;
  for (int s = 0; s < system_->replicas_per_partition(); ++s) {
    const auto hdr = rdma::load_pod<ChunkHeader>(
        region, staging_offset(s, staging_next_[static_cast<std::size_t>(s)] + 1));
    if (hdr.seq >= staging_next_[static_cast<std::size_t>(s)] + 1) ++pending;
  }
  return pending;
}

sim::Task<void> Replica::statesync_watch_loop() {
  const std::uint64_t inc = incarnation_;
  auto& region = node().region(statesync_mr_);
  const int reps = system_->replicas_per_partition();
  std::vector<std::uint64_t> handled(static_cast<std::size_t>(reps), 0);

  while (true) {
    co_await region.on_write().wait();
    if (stale(inc)) co_return;
    for (int q = 0; q < reps; ++q) {
      if (q == rank_) continue;
      const auto e = rdma::load_pod<StateSyncEntry>(region.bytes(),
                                                    statesync_offset(q));
      if ((e.status != 1 && e.status != 2) ||
          e.serial == handled[static_cast<std::size_t>(q)]) {
        continue;
      }
      handled[static_cast<std::size_t>(q)] = e.serial;
      system_->simulator().spawn(
          [](Replica& self, int lagger, Tmp from, bool sessions_delta,
             std::uint64_t serial, std::uint64_t inc2) -> sim::Task<void> {
            // Line 9-11: deterministic handler selection — candidates in
            // cyclic rank order after the lagger; candidate k starts after
            // k suspicion timeouts unless someone finished first.
            const int n = self.system_->replicas_per_partition();
            int k = 0;
            for (int step = 1; step < n; ++step) {
              const int cand = (lagger + step) % n;
              if (cand == self.rank_) break;
              ++k;
            }
            if (k > 0) {
              co_await self.system_->simulator().sleep(
                  k * self.system_->config().statesync_timeout);
              if (self.stale(inc2)) co_return;
              const auto now_e = rdma::load_pod<StateSyncEntry>(
                  self.node().region(self.statesync_mr_).bytes(),
                  self.statesync_offset(lagger));
              // Lines 19-22: someone else completed it (status back to 0)
              // or a newer request superseded this one.
              if ((now_e.status != 1 && now_e.status != 2) ||
                  now_e.serial != serial) {
                co_return;
              }
            }
            co_await self.perform_transfer(lagger, from, sessions_delta);
          }(*this, q, e.req_tmp, e.status == 2, e.serial, inc));
    }
  }
}

sim::Task<void> Replica::perform_transfer(int lagger_rank, Tmp from_tmp,
                                          bool sessions_delta) {
  const std::uint64_t inc = incarnation_;
  const HeronConfig& cfg = system_->config();

  // Only transfer a state that already covers the failed request — and
  // that has actually been *executed*: last_req_ advances at delivery,
  // before execution, and a transfer snapshot must reflect applied writes.
  while (last_executed_ < from_tmp) {
    co_await system_->simulator().sleep(sim::us(5));
    if (stale(inc)) co_return;
  }

  // Pause execution at a request boundary: the replica is single-threaded,
  // so serving the transfer and executing requests are mutually exclusive.
  in_state_transfer_ = true;
  ++transfers_served_;
  ctr_transfers_served_->inc();
  auto span = hub_->tracer.span("core", "serve_transfer", node().id());
  span.arg("lagger", static_cast<std::uint64_t>(lagger_rank));
  span.arg("from_tmp", from_tmp);
  // A restarted replica can serve a transfer before executing anything;
  // the requester's waiter treats rid==0 as "not done yet", so clamp to 1
  // (real tmps are pack_ts(clock >= 1, group), i.e. >= 64).
  const Tmp rid = std::max<Tmp>(last_executed_, 1);

  bool full = false;
  std::vector<Oid> oids = log_objects_since(from_tmp, sessions_delta, full);
  if (full) {
    oids.clear();
    oids.reserve(store_->object_count());
    store_->for_each_oid([&oids](Oid oid) { oids.push_back(oid); });
  }

  Replica& lagger = system_->replica(group_, lagger_rank);
  const std::uint32_t chunk_capacity = cfg.statesync_chunk_bytes;
  std::vector<std::byte> chunk(sizeof(ChunkHeader) + chunk_capacity);
  std::uint32_t fill = 0;
  std::uint32_t count = 0;
  sim::Nanos serialize_cpu = 0;

  auto flush = [&]() -> sim::Task<void> {
    if (count == 0) co_return;
    if (serialize_cpu > 0) {
      co_await node().cpu().use(serialize_cpu);
      serialize_cpu = 0;
    }
    const std::uint64_t seq =
        ++staging_sent_[static_cast<std::size_t>(lagger_rank)];
    ctr_xfer_bytes_sent_->inc(sizeof(ChunkHeader) + fill);
    ChunkHeader hdr{seq, count, fill, full ? kChunkFlagFull : 0u, 0};
    rdma::store_pod(std::span(chunk), 0, hdr);
    // Flow control: never run more than ring_slots-2 chunks ahead of the
    // applier (its cursor is mirrored into our statesync ack word below).
    co_await system_->fabric().write(
        node().id(),
        rdma::RAddr{lagger.node().id(), lagger.staging_mr(),
                    lagger.staging_offset(rank_, seq)},
        std::span(chunk).first(sizeof(ChunkHeader) + fill));
    fill = 0;
    count = 0;
  };

  for (Oid oid : oids) {
    if (!store_->exists(oid)) continue;  // retired (migrated away)
    const auto [tmp, value] = store_->get(oid);
    const auto record_len =
        static_cast<std::uint32_t>(sizeof(ChunkRecord) + value.size());
    if (record_len > chunk_capacity) {
      throw std::runtime_error("state transfer: object larger than chunk");
    }
    if (fill + record_len > chunk_capacity) {
      co_await flush();
      // Crashed (or restarted) mid-transfer: abandon. restart() resets
      // in_state_transfer_; the lagger's timeout picks the next handler.
      if (stale(inc)) co_return;
    }

    ChunkRecord rec;
    rec.oid = oid;
    rec.tmp = tmp;
    rec.size = static_cast<std::uint32_t>(value.size());
    rec.serialized = store_->is_serialized(oid) ? 1 : 0;
    rec.kind = kRecObject;
    rdma::store_pod(std::span(chunk), sizeof(ChunkHeader) + fill, rec);
    std::memcpy(chunk.data() + sizeof(ChunkHeader) + fill + sizeof(ChunkRecord),
                value.data(), value.size());
    fill += record_len;
    ++count;
    // Serialized tables ship as stored (memcpy); others pay serialization.
    serialize_cpu += static_cast<sim::Nanos>(
        static_cast<double>(value.size()) *
        (store_->is_serialized(oid) ? cfg.memcpy_ns_per_byte
                                    : cfg.serialize_ns_per_byte));
  }

  // Session table: the dedup state must travel with the store — the
  // receiver replaces whole entries, which is safe because this snapshot
  // waited for last_executed_ >= from_tmp, so per covered client its
  // session is a superset of anything the lagger executed. A delta
  // request (status 2) certifies the requester already holds session
  // state through from_tmp inclusive — a restored checkpoint chain is
  // complete up to its watermark — so sessions idle at or before
  // from_tmp are skipped.
  for (const auto& [client, s] : sessions_) {
    if (sessions_delta && s.last_tmp <= from_tmp) continue;
    const std::vector<std::byte> blob = encode_session(s);
    const auto payload_len = static_cast<std::uint32_t>(blob.size());
    const auto record_len =
        static_cast<std::uint32_t>(sizeof(ChunkRecord) + payload_len);
    if (record_len > chunk_capacity) {
      throw std::runtime_error("state transfer: session larger than chunk");
    }
    if (fill + record_len > chunk_capacity) {
      co_await flush();
      if (stale(inc)) co_return;
    }

    ChunkRecord rec;
    rec.oid = client;
    rec.tmp = s.last_tmp;
    rec.size = payload_len;
    rec.kind = kRecSession;
    const std::uint64_t off = sizeof(ChunkHeader) + fill;
    rdma::store_pod(std::span(chunk), off, rec);
    std::memcpy(chunk.data() + off + sizeof(ChunkRecord), blob.data(),
                blob.size());
    fill += record_len;
    ++count;
    serialize_cpu += static_cast<sim::Nanos>(
        static_cast<double>(payload_len) * cfg.memcpy_ns_per_byte);
  }

  // Session-TTL tombstones: always shipped whole (a handful of u64 pairs);
  // the receiver merges by max floor.
  for (const auto& [client, floor] : evicted_sessions_) {
    const auto record_len = static_cast<std::uint32_t>(sizeof(ChunkRecord));
    if (fill + record_len > chunk_capacity) {
      co_await flush();
      if (stale(inc)) co_return;
    }
    ChunkRecord rec;
    rec.oid = client;
    rec.tmp = floor;
    rec.size = 0;
    rec.kind = kRecTombstone;
    rdma::store_pod(std::span(chunk), sizeof(ChunkHeader) + fill, rec);
    fill += record_len;
    ++count;
  }

  // Donor layout + seal knowledge (heron::reconfig): a rejoining replica
  // that missed epoch markers while down adopts the donor's installed
  // layout, and may adopt its seal too — the donor's store (shipped in
  // this very transfer) already contains everything its sealed copy
  // stream carried.
  if (layout_.enabled()) {
    std::vector<std::byte> blob(sizeof(std::uint64_t));
    rdma::store_pod(std::span(blob), 0, seal_epoch_seen_);
    if (reconfig::encode_marker(layout_, 0, blob)) {
      const auto payload_len = static_cast<std::uint32_t>(blob.size());
      const auto record_len =
          static_cast<std::uint32_t>(sizeof(ChunkRecord) + payload_len);
      if (fill + record_len > chunk_capacity) {
        co_await flush();
        if (stale(inc)) co_return;
      }
      ChunkRecord rec;
      rec.oid = 0;
      rec.tmp = layout_.epoch;
      rec.size = payload_len;
      rec.kind = kRecLayout;
      const std::uint64_t off = sizeof(ChunkHeader) + fill;
      rdma::store_pod(std::span(chunk), off, rec);
      std::memcpy(chunk.data() + off + sizeof(ChunkRecord), blob.data(),
                  blob.size());
      fill += record_len;
      ++count;
    }
  }
  co_await flush();
  if (stale(inc)) co_return;

  // Lines 16-17: completion notice to every member (including ourselves
  // and the lagger).
  StateSyncEntry done{from_tmp, 0, rid, statesync_serial_ + 1};
  for (int q = 0; q < system_->replicas_per_partition(); ++q) {
    Replica& peer = system_->replica(group_, q);
    if (q == rank_) {
      rdma::store_pod(node().region(statesync_mr_).bytes(),
                      statesync_offset(lagger_rank), done);
      node().region(statesync_mr_).on_write().notify_all();
      continue;
    }
    system_->fabric().write_async(
        node().id(),
        rdma::RAddr{peer.node().id(), peer.statesync_mr(),
                    peer.statesync_offset(lagger_rank)},
        rdma::pod_bytes(done));
  }
  in_state_transfer_ = false;
}

sim::Task<void> Replica::staging_apply_loop() {
  const std::uint64_t inc = incarnation_;
  auto& region = node().region(staging_mr_);
  const HeronConfig& cfg = system_->config();
  const int reps = system_->replicas_per_partition();

  // `>=` tolerated: a chunk written while this replica was down leaves a
  // gap; the abandoned transfer is superseded by the fresh one the rejoin
  // path requests, so skipping straight to the producer's counter is safe.
  auto have_new = [this, &region, reps] {
    for (int s = 0; s < reps; ++s) {
      const auto hdr = rdma::load_pod<ChunkHeader>(
          region.bytes(),
          staging_offset(s, staging_next_[static_cast<std::size_t>(s)] + 1));
      if (hdr.seq >= staging_next_[static_cast<std::size_t>(s)] + 1) {
        return true;
      }
    }
    return false;
  };

  while (true) {
    co_await sim::wait_until(region.on_write(), have_new);
    if (stale(inc)) co_return;
    for (int s = 0; s < reps; ++s) {
      while (true) {
        const std::uint64_t next =
            staging_next_[static_cast<std::size_t>(s)] + 1;
        const std::uint64_t base = staging_offset(s, next);
        const auto hdr = rdma::load_pod<ChunkHeader>(region.bytes(), base);
        if (hdr.seq < next) break;

        sim::Nanos apply_cpu = 0;
        std::uint64_t off = base + sizeof(ChunkHeader);
        for (std::uint32_t i = 0; i < hdr.record_count; ++i) {
          const auto rec = rdma::load_pod<ChunkRecord>(region.bytes(), off);
          off += sizeof(ChunkRecord);
          const auto value = region.bytes().subspan(off, rec.size);
          if (rec.kind == kRecSession) {
            Session s = decode_session(value);
            s.last_active = system_->simulator().now();
            sessions_[static_cast<std::uint32_t>(rec.oid)] = std::move(s);
            off += rec.size;
            apply_cpu += static_cast<sim::Nanos>(
                static_cast<double>(rec.size) * cfg.memcpy_ns_per_byte);
            continue;
          }
          if (rec.kind == kRecTombstone) {
            auto& floor =
                evicted_sessions_[static_cast<std::uint32_t>(rec.oid)];
            floor = std::max(floor, rec.tmp);
            off += rec.size;
            continue;
          }
          if (rec.kind == kRecLayout) {
            adopt_layout_record(value);
            off += rec.size;
            continue;
          }
          store_->install_version(rec.oid, value, rec.tmp,
                                  rec.serialized != 0);
          off += rec.size;
          // Receiver-side cost: serialized data lands in place (memcpy);
          // non-serialized data must be deserialized into the app state.
          apply_cpu += static_cast<sim::Nanos>(
              static_cast<double>(rec.size) *
              (rec.serialized != 0 ? cfg.memcpy_ns_per_byte
                                   : cfg.serialize_ns_per_byte));
        }
        staging_next_[static_cast<std::size_t>(s)] = hdr.seq;
        ctr_xfer_bytes_applied_->inc(hdr.payload_bytes);
        if ((hdr.flags & kChunkFlagFull) != 0) {
          xfer_applied_full_bytes_ += hdr.payload_bytes;
          ctr_xfer_bytes_applied_full_->inc(hdr.payload_bytes);
        } else {
          xfer_applied_delta_bytes_ += hdr.payload_bytes;
          ctr_xfer_bytes_applied_delta_->inc(hdr.payload_bytes);
        }
        if (apply_cpu > 0) {
          co_await node().cpu().use(apply_cpu);
          if (stale(inc)) co_return;
        }
        region.on_write().notify_all();  // progress signal for the waiter
      }
    }
  }
}

// ---------------------------------------------------------------------
// Durability: background checkpoint writer + image restore
// (heron::durable). The writer drives off the applied watermark
// (last_executed_), throttles against foreground load, and compacts the
// update log and session caches behind each committed checkpoint.
// ---------------------------------------------------------------------

sim::Task<void> Replica::checkpoint_loop() {
  const std::uint64_t inc = incarnation_;
  const durable::DurableConfig& dcfg = system_->config().durable;
  auto& sim = system_->simulator();
  auto& ep = system_->amcast().endpoint(group_, rank_);
  while (true) {
    co_await sim.sleep(dcfg.checkpoint_interval);
    if (stale(inc)) co_return;
    // Throttle: defer while the foreground is hot — the ordering propose
    // queue is deep, or the replica CPU has a backlog of queued work.
    while (ep.propose_backlog() > dcfg.throttle_queue_depth ||
           node().cpu().free_at() > sim.now() + dcfg.throttle_cpu_backlog) {
      ++ckpt_deferred_;
      ctr_ckpt_deferred_->inc();
      co_await sim.sleep(dcfg.throttle_backoff);
      if (stale(inc)) co_return;
    }
    co_await write_checkpoint_once(inc);
    if (stale(inc)) co_return;
  }
}

sim::Task<void> Replica::write_checkpoint_once(std::uint64_t inc) {
  const HeronConfig& cfg = system_->config();
  const durable::DurableConfig& dcfg = cfg.durable;
  const bool full = !ckpt_->has_checkpoint() || ckpt_->should_compact() ||
                    ckpt_watermark_ < log_dropped_max_;

  // Paged-out reply payloads live only on the device, so any session
  // about to be re-encoded — every session on a full checkpoint, dirty
  // ones (last_tmp above the watermark) on a delta — must fetch them
  // back first: the new kRecordSession record supersedes the old one
  // under newest-wins indexing (and compaction frees it), so encoding
  // without the payload would persist an empty reply in its place.
  // Awaits here are fine — the snapshot below re-reads live state.
  std::map<std::uint32_t, Reply> paged_replies;
  {
    std::vector<std::uint32_t> paged_clients;
    for (const auto& [client, s] : sessions_) {
      if (s.reply_paged_out && (full || s.last_tmp > ckpt_watermark_)) {
        paged_clients.push_back(client);
      }
    }
    for (const std::uint32_t client : paged_clients) {
      const auto rec =
          co_await ckpt_->fetch_record(durable::kRecordSession, client);
      if (stale(inc)) co_return;
      if (rec.has_value()) {
        Session persisted = decode_session(rec->bytes);
        // A record that is itself paged-out holds no payload; using it
        // would launder an empty reply into a paged_out=0 record.
        if (!persisted.reply_paged_out) {
          paged_replies[client] = std::move(persisted.cached_reply);
        }
      }
    }
  }

  // Synchronous snapshot (no suspension between reading the watermark and
  // collecting records, so the image is consistent as of `w`).
  const Tmp w = last_executed_;
  if (w == 0) co_return;
  if (!full && w == ckpt_watermark_) co_return;  // nothing new to persist

  auto span = hub_->tracer.span("durable", "checkpoint", node().id());
  span.arg("watermark", w);
  span.arg("full", full ? 1u : 0u);

  std::vector<durable::Record> records;
  std::uint64_t snap_bytes = 0;
  const auto add_object = [&](Oid oid, Tmp tmp, std::span<const std::byte> val,
                              bool serialized) {
    durable::Record rec;
    rec.kind = durable::kRecordObject;
    rec.flags = serialized ? durable::kRecordFlagSerialized : 0u;
    rec.id = oid;
    rec.tmp = tmp;
    rec.bytes.assign(val.begin(), val.end());
    snap_bytes += rec.bytes.size();
    records.push_back(std::move(rec));
  };
  if (full) {
    store_->for_each_object(add_object);
  } else {
    // Dirty set: objects written since the previous checkpoint. Entries
    // are tmp-sorted; capacity pops above ckpt_watermark_ force `full`,
    // so the log is complete over (ckpt_watermark_, w].
    std::set<Oid> dirty;
    auto it = std::lower_bound(
        update_log_.begin(), update_log_.end(), ckpt_watermark_ + 1,
        [](const LogEntry& e, Tmp t) { return e.tmp < t; });
    for (; it != update_log_.end(); ++it) dirty.insert(it->oid);
    for (const Oid oid : dirty) {
      if (!store_->exists(oid)) continue;  // retired (migrated away)
      const auto [tmp, val] = store_->get(oid);
      add_object(oid, tmp, val, store_->is_serialized(oid));
    }
  }
  for (const auto& [client, s] : sessions_) {
    if (!full && s.last_tmp <= ckpt_watermark_) continue;
    durable::Record rec;
    rec.kind = durable::kRecordSession;
    rec.id = client;
    rec.tmp = s.last_tmp;
    if (s.reply_paged_out && paged_replies.contains(client)) {
      Session copy = s;
      copy.cached_reply = paged_replies[client];
      copy.reply_paged_out = false;
      rec.bytes = encode_session(copy);
    } else {
      rec.bytes = encode_session(s);
    }
    snap_bytes += rec.bytes.size();
    records.push_back(std::move(rec));
  }
  for (const auto& [client, floor] : evicted_sessions_) {
    durable::Record rec;
    rec.kind = durable::kRecordTombstone;
    rec.id = client;
    rec.tmp = floor;
    records.push_back(std::move(rec));
  }

  // Snapshotting is memcpy-class CPU work on the replica's core.
  const auto snap_cpu = static_cast<sim::Nanos>(
      static_cast<double>(snap_bytes) * cfg.memcpy_ns_per_byte);
  if (snap_cpu > 0) {
    co_await node().cpu().use(snap_cpu);
    if (stale(inc)) co_return;
  }

  const bool ok = co_await ckpt_->write_checkpoint(
      w, lease_epoch_, lease_expiry_, full, records,
      [this, inc] { return stale(inc); }, layout_.epoch);
  if (stale(inc)) co_return;
  if (!ok) co_return;  // aborted or out of pages; previous commit intact

  ++checkpoints_;
  ctr_checkpoints_->inc();
  const Tmp prev_w = ckpt_watermark_;
  ckpt_watermark_ = w;

  // Log compaction: entries covered by the *previous* checkpoint are
  // dropped (bounding memory). Truncation lags one checkpoint so a peer
  // that restored a checkpoint as recent as our previous one can still
  // be served an O(delta) transfer from the log; anything older falls
  // back to a full snapshot via log_floor_.
  while (!update_log_.empty() && update_log_.front().tmp <= prev_w) {
    log_floor_ = std::max(log_floor_, update_log_.front().tmp);
    update_log_.pop_front();
    log_truncated_ = true;
  }

  // Session TTL: evict idle sessions now durably covered by this commit,
  // leaving a tombstone floor ("everything <= floor was executed before
  // eviction"; safe for sequential clients, which never resubmit an
  // abandoned seq).
  const sim::Nanos now = system_->simulator().now();
  if (dcfg.session_ttl > 0) {
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      const Session& s = it->second;
      if (s.last_tmp <= w && now - s.last_active > dcfg.session_ttl) {
        std::uint64_t floor = std::max(s.watermark, s.cached_seq);
        if (!s.above.empty()) floor = std::max(floor, *s.above.rbegin());
        auto& tomb = evicted_sessions_[it->first];
        tomb = std::max(tomb, floor);
        ++sessions_evicted_;
        ctr_sessions_evicted_->inc();
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Reply page-out: cached payloads now persisted in the chain can be
  // dropped from memory; a late retry pages them back in.
  if (dcfg.page_out_replies) {
    for (auto& [client, s] : sessions_) {
      if (s.last_tmp <= w && !s.reply_paged_out &&
          !s.cached_reply.payload.empty()) {
        s.cached_reply.payload.clear();
        s.cached_reply.payload.shrink_to_fit();
        s.reply_paged_out = true;
      }
    }
  }
}

sim::Task<void> Replica::apply_checkpoint_image(const durable::Image& img) {
  const HeronConfig& cfg = system_->config();
  const sim::Nanos now = system_->simulator().now();
  std::uint64_t bytes = 0;
  for (const durable::Record& rec : img.records) {
    bytes += rec.bytes.size() + sizeof(durable::Record);
    switch (rec.kind) {
      case durable::kRecordObject:
        store_->install_version(
            rec.id, rec.bytes, rec.tmp,
            (rec.flags & durable::kRecordFlagSerialized) != 0);
        break;
      case durable::kRecordSession: {
        Session s = decode_session(rec.bytes);
        s.last_active = now;
        sessions_[static_cast<std::uint32_t>(rec.id)] = std::move(s);
        break;
      }
      case durable::kRecordTombstone: {
        auto& floor = evicted_sessions_[static_cast<std::uint32_t>(rec.id)];
        floor = std::max(floor, rec.tmp);
        break;
      }
      default:
        break;  // unknown kinds from future formats: ignore
    }
  }
  // Installing the image is memcpy-class work; the device read itself was
  // charged by load_latest() on the device channel.
  const auto cpu = static_cast<sim::Nanos>(static_cast<double>(bytes) *
                                           cfg.memcpy_ns_per_byte);
  if (cpu > 0) co_await node().cpu().use(cpu);

  last_req_ = std::max(last_req_, img.watermark);
  last_executed_ = std::max(last_executed_, img.watermark);
  ckpt_watermark_ = img.watermark;
  // Leases: restore only the expiry floor (the monotonicity invariant the
  // write gate leans on). The epoch stays 0 — no fast read is served from
  // this replica until a grant ordered after its rejoin arrives.
  lease_expiry_ = std::max(lease_expiry_, img.lease_expiry);
}

// ---------------------------------------------------------------------
// Restart path. Called by System::restart_replica after the amcast
// endpoint has restarted the node. The object store lives in registered
// memory and survives; everything request-scoped is rebuilt.
// ---------------------------------------------------------------------

void Replica::restart() {
  ++incarnation_;

  // Volatile runtime state. last_req_ / last_executed_ / statesync_serial_
  // are kept: they describe the surviving object-store contents, standing
  // in for the small stable-storage record a real deployment would keep
  // (keeping the serial is load-bearing — peers dedupe transfer requests
  // by serial, so a reset serial would be silently ignored).
  in_state_transfer_ = false;
  object_map_.clear();
  locked_keys_.clear();
  inflight_ = 0;
  slot_busy_.assign(exec_cpus_.size(), false);

  // The session table is volatile; the rejoin state transfer reinstalls
  // it from the donor (which, having executed at least as far, holds a
  // superset for every covered command).
  sessions_.clear();

  // With the durable subsystem on (or volatile_restart modeling), losing
  // power means losing the volatile watermarks too: rejoin() restarts
  // from the newest checkpoint (or zero) and pays the recovery honestly —
  // checkpoint read + delta transfer, or a full transfer. Legacy restarts
  // keep the watermarks, standing in for a small stable-storage record.
  // The registered object region survives either way; its stale bytes are
  // never observable (see DESIGN.md: a restarted replica is only a remote
  // -read candidate for requests it coordinated, whose slots it wrote).
  const durable::DurableConfig& dcfg0 = system_->config().durable;
  // Everything we had applied is gone from the log (cleared below): any
  // peer asking for a delta older than our pre-crash watermark must get a
  // full snapshot. Capture before the watermark reset.
  log_floor_ = std::max(log_floor_, last_executed_);
  if (dcfg0.enabled() || dcfg0.volatile_restart) {
    last_req_ = 0;
    last_executed_ = 0;
    ckpt_watermark_ = 0;
    log_dropped_max_ = 0;
    evicted_sessions_.clear();
  }
  restored_from_checkpoint_ = false;
  restart_catchup_bytes_ = 0;
  rejoining_ = true;

  // Reconfiguration role state is volatile (its coroutines died with the
  // node); rejoin()'s resume_migration_roles re-arms whatever the adopted
  // layout still shows active. Cursors and counters (copy_seq_,
  // copy_next_, pull_seen_, pull_serial_, seal_epoch_seen_) survive with
  // the registered region they describe. A flipped source loses its
  // retained final image and can no longer serve pulls — destinations
  // round-robin to a surviving source rank instead.
  outbound_active_ = false;
  outbound_flipped_ = false;
  outbound_epoch_ = 0;
  outbound_ = {};
  migration_dirty_.clear();
  pass_pending_.clear();
  copy_caught_up_ = false;
  final_image_.clear();
  inbound_epoch_ = 0;
  inbound_stream_dirty_ = false;

  // Fast-read lease state is volatile: a restarted replica must not serve
  // fast reads until a grant ordered after its rejoin transfer arrives.
  // Zero the published lease word first, then normalize any seqlock left
  // odd by a write phase in flight at crash time — no fast reader acts on
  // these slots while the lease word reads "no lease".
  lease_epoch_ = 0;
  lease_expiry_ = 0;
  fast_write_armed_ = false;
  open_brackets_.clear();
  publish_lease_word();
  fast_pending_at_restart_.clear();
  store_->for_each_oid([this](Oid oid) {
    if (store_->fast_pending(oid)) {
      // A one-sided fast write was in flight at crash time. Its outcome
      // was decided at the peers (the writer may have validated there
      // after our ack): blindly evening the lock here could resurrect an
      // uncommitted value or orphan a committed one. Leave the slot
      // pending — no fast reader acts on it while the lease word reads
      // "no lease", and rejoin() reconciles against live peers before
      // execution resumes.
      fast_pending_at_restart_.push_back(oid);
      return;
    }
    if (store_->seqlock(oid) & 1) store_->end_write(oid);
  });

  // The in-memory update log is gone; mark it truncated so a later
  // transfer served *by* this replica correctly falls back to a full
  // snapshot instead of claiming an empty delta.
  update_log_.clear();
  log_truncated_ = true;

  // Rebuild consumer cursors from the surviving rings: resume at the
  // highest sequence number actually stored. Writes dropped while dead
  // leave gaps the `>=` drain tolerance heals.
  const auto stripes = system_->amcast().total_replicas();
  const auto addrq = node().region(addrq_mr_).bytes();
  const auto addra = node().region(addra_mr_).bytes();
  for (std::uint32_t s = 0; s < stripes; ++s) {
    addrq_next_[s] = 0;
    addra_next_[s] = 0;
    for (std::uint32_t i = 0; i < kAddrSlots; ++i) {
      const auto q = rdma::load_pod<AddrQuery>(
          addrq, (static_cast<std::uint64_t>(s) * kAddrSlots + i) * kAddrQSlot);
      addrq_next_[s] = std::max(addrq_next_[s], q.seq);
      const auto a = rdma::load_pod<AddrAnswer>(
          addra, (static_cast<std::uint64_t>(s) * kAddrSlots + i) * kAddrASlot);
      addra_next_[s] = std::max(addra_next_[s], a.seq);
    }
  }
  const HeronConfig& cfg = system_->config();
  const auto staging = node().region(staging_mr_).bytes();
  for (int s = 0; s < system_->replicas_per_partition(); ++s) {
    staging_next_[static_cast<std::size_t>(s)] = 0;
    for (std::uint32_t i = 0; i < cfg.statesync_ring_slots; ++i) {
      const auto hdr = rdma::load_pod<ChunkHeader>(staging, staging_offset(s, i));
      staging_next_[static_cast<std::size_t>(s)] =
          std::max(staging_next_[static_cast<std::size_t>(s)], hdr.seq);
    }
  }

  system_->simulator().spawn(rejoin());
}

sim::Task<void> Replica::rejoin() {
  const std::uint64_t inc = incarnation_;
  hub_->tracer.instant("core", "rejoin", node().id(),
                       {telemetry::Arg{"group", static_cast<std::uint64_t>(group_)},
                        telemetry::Arg{"rank", static_cast<std::uint64_t>(rank_)}});
  HSIM_LOG(system_->simulator(), kInfo,
           "core g" << group_ << ".r" << rank_ << " rejoin: catching up from tmp "
                    << last_executed_);

  // Receive-side loops first: the staging applier must be draining before
  // the state transfer below ships chunks, or its waiter never completes.
  auto& sim = system_->simulator();
  sim.spawn(addr_query_loop());
  sim.spawn(statesync_watch_loop());
  sim.spawn(staging_apply_loop());
  if (reconfig_enabled()) {
    sim.spawn(copy_recv_loop());
    sim.spawn(pull_watch_loop());
  }

  // Recover send-side counters by reading back the rings our past writes
  // landed in, so fresh sends continue the surviving sequence instead of
  // overwriting live slots with duplicate numbers.
  const auto my_stripe = system_->amcast().stripe_of(group_, rank_);
  for (GroupId h = 0; h < system_->partitions(); ++h) {
    if (h == group_) continue;  // address queries only target remote homes
    for (int q = 0; q < system_->replicas_per_partition(); ++q) {
      Replica& peer = system_->replica(h, q);
      const auto stripe = system_->amcast().stripe_of(h, q);
      std::vector<std::byte> buf(kAddrSlots * kAddrQSlot);
      const auto cc = co_await system_->fabric().read(
          node().id(),
          rdma::RAddr{peer.node().id(), peer.addrq_mr(),
                      peer.addrq_offset(my_stripe, 0)},
          buf);
      if (stale(inc)) co_return;
      if (!cc.ok()) continue;  // peer down; counter stays 0, ring restarts
      for (std::uint32_t i = 0; i < kAddrSlots; ++i) {
        const auto qr = rdma::load_pod<AddrQuery>(std::span(buf), i * kAddrQSlot);
        addrq_sent_[stripe] = std::max(addrq_sent_[stripe], qr.seq);
      }
    }
  }
  const HeronConfig& cfg = system_->config();
  for (int q = 0; q < system_->replicas_per_partition(); ++q) {
    if (q == rank_) continue;
    Replica& peer = system_->replica(group_, q);
    std::uint64_t max_seq = 0;
    for (std::uint32_t i = 0; i < cfg.statesync_ring_slots; ++i) {
      std::vector<std::byte> buf(sizeof(ChunkHeader));
      const auto cc = co_await system_->fabric().read(
          node().id(),
          rdma::RAddr{peer.node().id(), peer.staging_mr(),
                      peer.staging_offset(rank_, i)},
          buf);
      if (stale(inc)) co_return;
      if (!cc.ok()) break;
      max_seq = std::max(max_seq,
                         rdma::load_pod<ChunkHeader>(std::span(buf), 0).seq);
    }
    staging_sent_[static_cast<std::size_t>(q)] = max_seq;
  }

  // O(delta) restart: load the newest valid checkpoint chain from the
  // device and install it, then catch up only the tail via Algorithm 3.
  // Any CRC/manifest failure falls through to restored==false and the
  // legacy full transfer below.
  bool have_sessions = false;
  if (ckpt_ != nullptr) {
    auto img = co_await ckpt_->load_latest();
    if (stale(inc)) co_return;
    if (img.has_value() && reconfig_enabled()) {
      // Reject checkpoints committed under a superseded layout: objects
      // may have migrated away (or in) since, and replaying the image
      // would resurrect retired state. Peers publish their installed
      // epoch in the fast-read region; one one-sided READ per peer tells
      // us whether the cluster moved on while we were down. Rejecting
      // falls back to a full transfer, which ships the donor's layout.
      std::uint64_t peer_epoch = layout_.epoch;
      for (int q = 0; q < system_->replicas_per_partition(); ++q) {
        if (q == rank_) continue;
        Replica& peer = system_->replica(group_, q);
        std::vector<std::byte> buf(sizeof(std::uint64_t));
        const auto cc = co_await system_->fabric().read(
            node().id(),
            rdma::RAddr{peer.node().id(), peer.fastread_mr(),
                        kFastReadEpochOffset},
            buf);
        if (stale(inc)) co_return;
        if (!cc.ok()) continue;
        peer_epoch = std::max(
            peer_epoch, rdma::load_pod<std::uint64_t>(std::span(buf), 0));
      }
      if (peer_epoch > img->layout_epoch) {
        ++ckpt_rejected_layout_;
        HSIM_LOG(system_->simulator(), kInfo,
                 "core g" << group_ << ".r" << rank_
                          << " checkpoint rejected: layout_epoch="
                          << img->layout_epoch << " < cluster epoch "
                          << peer_epoch);
        img.reset();
      }
    }
    if (img.has_value()) {
      co_await apply_checkpoint_image(*img);
      if (stale(inc)) co_return;
      restored_from_checkpoint_ = true;
      have_sessions = true;
      HSIM_LOG(system_->simulator(), kInfo,
               "core g" << group_ << ".r" << rank_
                        << " restored checkpoint: watermark=" << img->watermark
                        << " records=" << img->records.size()
                        << " chain=" << img->chain_length);
    }
  }
  hub_->tracer.instant(
      "durable", "restart_source", node().id(),
      {telemetry::Arg{"from_checkpoint", restored_from_checkpoint_ ? 1ull : 0ull},
       telemetry::Arg{"watermark", last_executed_}});

  // Algorithm 3 as the rejoin vehicle: everything delivered while we were
  // down (or since the checkpoint watermark) is folded into a state
  // transfer from the surviving members. A delta request (have_sessions)
  // tells the donor we hold everything through last_executed_ inclusive,
  // so only strictly newer updates ship; a plain request keeps the
  // failed-request semantics (donor re-ships from_tmp itself).
  const std::uint64_t applied_before =
      xfer_applied_full_bytes_ + xfer_applied_delta_bytes_;
  co_await request_state_transfer(last_executed_, have_sessions);
  if (stale(inc)) co_return;
  restart_catchup_bytes_ =
      xfer_applied_full_bytes_ + xfer_applied_delta_bytes_ - applied_before;
  gauge_restart_delta_->set(
      static_cast<std::int64_t>(restart_catchup_bytes_));

  if (layout_.enabled()) {
    // Owner sweep: the store index survives the crash, so objects this
    // group handed off under a layout adopted above (transfer kRecLayout
    // record or surviving epoch word) may still be present. Retire them —
    // except inbound migration state still being copied *to* us.
    std::vector<Oid> foreign;
    store_->for_each_oid([&](Oid oid) {
      if (layout_.owner_of(oid) == group_) return;
      if (layout_.migration.active() && layout_.migration.to == group_ &&
          layout_.migration.contains(oid)) {
        return;
      }
      foreign.push_back(oid);
    });
    for (const Oid oid : foreign) {
      if (store_->fast_pending(oid)) store_->discard_pending(oid);
      if (store_->seqlock(oid) & 1) store_->end_write(oid);
      store_->retire(oid);
    }
    co_await resume_migration_roles(inc);
    if (stale(inc)) co_return;
  }

  // Resolve fast writes left pending at crash time against the surviving
  // peers' slots — before execution (and with it the fence and fast reads)
  // resumes. Safe to run here: the lease word is still zeroed and the main
  // loop is not running, so nothing serves these slots concurrently.
  if (system_->config().fast_writes) {
    co_await reconcile_fast_slots(inc);
    if (stale(inc)) co_return;
  }

  HSIM_LOG(system_->simulator(), kInfo,
           "core g" << group_ << ".r" << rank_
                    << " rejoin complete: last_executed=" << last_executed_);
  // Peers' write gates may be waiting on this rank's applied watermark;
  // push it now that the transferred state covers it.
  if (leases_enabled()) push_applied();
  // Only now resume execution: the store reflects the survivors' state and
  // deliveries with tmp <= last_req_ are skipped by the main loop.
  rejoining_ = false;
  sim.spawn(main_loop());
  if (ckpt_ != nullptr) sim.spawn(checkpoint_loop());
}

sim::Task<void> Replica::reconcile_fast_slots(std::uint64_t inc) {
  if (fast_pending_at_restart_.empty()) co_return;
  const int reps = system_->replicas_per_partition();
  for (const Oid oid : fast_pending_at_restart_) {
    if (stale(inc)) co_return;
    // The rejoin transfer (or an epoch sweep) may already have rewritten
    // or retired the slot; only still-pending slots need a verdict.
    if (!store_->exists(oid) || !store_->fast_pending(oid)) continue;
    const Tmp pending = store_->seqlock(oid) & ~std::uint64_t{1};
    bool resolved = false;
    // Replicas of one partition build their stores in the same order, so
    // the slot offset is identical at every rank — the same symmetry the
    // fast-write client leans on.
    const std::uint64_t off = store_->offset_of(oid);
    const sim::Nanos deadline = system_->simulator().now() + sim::ms(2);
    while (!resolved) {
      bool peer_pending = false;
      for (int q = 0; q < reps && !resolved; ++q) {
        if (q == rank_) continue;
        Replica& peer = system_->replica(group_, q);
        if (!peer.node().alive()) continue;
        std::vector<std::byte> buf(sizeof(std::uint64_t));
        const auto cc = co_await system_->fabric().read(
            node().id(),
            rdma::RAddr{peer.node().id(), peer.store().mr(), off}, buf);
        if (stale(inc)) co_return;
        if (!cc.ok()) continue;
        const auto peer_lock =
            rdma::load_pod<std::uint64_t>(std::span(buf), 0);
        if (peer_lock == pending) {
          // The peer holds the validated tmp: the writer committed. Our
          // own copy of the value landed before the crash — the writer
          // only validates after its verify READ observed our completed
          // phase-A traffic — so validating locally adopts the same
          // version, not a torn one.
          store_->validate_fast(oid, pending);
          ++fast_adopted_;
          resolved = true;
        } else if (peer_lock == (pending | 1)) {
          peer_pending = true;  // undecided there too — ask again later
        } else {
          // The peer moved past this write (discarded it at lease expiry,
          // wiped it with an ordered write, or committed a later fast
          // write): our pending version is dead either way.
          store_->discard_pending(oid);
          ++fast_rediscarded_;
          resolved = true;
        }
      }
      if (resolved) break;
      if (!peer_pending || system_->simulator().now() >= deadline) {
        // No live peer carries evidence for this write (all discarded
        // windows closed, or the whole partition is reconciling). Discard:
        // if every replica is in this state the writer cannot have
        // validated — a VALIDATE requires a verify round against ALL
        // replicas, and its trace would survive as a validated lock.
        store_->discard_pending(oid);
        ++fast_rediscarded_;
        break;
      }
      co_await system_->simulator().sleep(sim::us(50));
      if (stale(inc)) co_return;
    }
  }
  fast_pending_at_restart_.clear();
}

}  // namespace heron::core
