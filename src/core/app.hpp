// Application interface: what a service must provide to run on Heron.
//
// Heron assumes (§III-A) that the objects a request reads and writes can
// be estimated before execution, and that execution has a reading phase
// followed by a writing phase. The interface mirrors that: read_set() is
// queried up front, then execute() runs with all read values materialised
// and may only emit local writes.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "core/object_store.hpp"
#include "core/types.hpp"
#include "sim/time.hpp"

namespace heron::core {

/// Values materialised by the reading phase plus the write collector for
/// the writing phase.
class ExecContext {
 public:
  ExecContext(GroupId my_partition, ObjectStore& store)
      : partition_(my_partition), store_(&store) {}

  [[nodiscard]] GroupId my_partition() const { return partition_; }

  /// True if the reading phase obtained a value for `oid`.
  [[nodiscard]] bool has(Oid oid) const { return values_.contains(oid); }

  /// Value read for `oid` (local or remote). Precondition: has(oid).
  [[nodiscard]] std::span<const std::byte> value(Oid oid) const {
    return values_.at(oid);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T value_as(Oid oid) const {
    T out;
    auto v = value(oid);
    std::memcpy(&out, v.data(), sizeof(T));
    return out;
  }

  /// Queues a local write (applied in the writing phase with the
  /// request's timestamp). Only objects of this partition may be written.
  void write(Oid oid, std::span<const std::byte> bytes) {
    writes_.emplace_back(oid, std::vector<std::byte>(bytes.begin(), bytes.end()));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_as(Oid oid, const T& value) {
    write(oid, std::span(reinterpret_cast<const std::byte*>(&value),
                         sizeof(T)));
  }

  /// Queues creation of a new local object (e.g. a TPC-C order row).
  void create(Oid oid, std::span<const std::byte> bytes,
              bool serialized = false) {
    creates_.push_back(Create{
        oid, std::vector<std::byte>(bytes.begin(), bytes.end()), serialized});
  }

  /// Charges application CPU time (the execution-cost model).
  void charge(sim::Nanos cost) { cpu_cost_ += cost; }

  /// Direct read-only access to the local store (for existence checks and
  /// scans over local data that need no remote consistency).
  [[nodiscard]] const ObjectStore& local_store() const { return *store_; }

  // --- runtime-facing side ---------------------------------------------
  struct Create {
    Oid oid;
    std::vector<std::byte> bytes;
    bool serialized;
  };

  std::map<Oid, std::vector<std::byte>>& mutable_values() { return values_; }
  [[nodiscard]] const std::vector<std::pair<Oid, std::vector<std::byte>>>&
  writes() const {
    return writes_;
  }
  [[nodiscard]] const std::vector<Create>& creates() const { return creates_; }
  [[nodiscard]] sim::Nanos cpu_cost() const { return cpu_cost_; }

 private:
  GroupId partition_;
  ObjectStore* store_;
  std::map<Oid, std::vector<std::byte>> values_;
  std::vector<std::pair<Oid, std::vector<std::byte>>> writes_;
  std::vector<Create> creates_;
  sim::Nanos cpu_cost_ = 0;
};

/// The replicated service. One instance per replica; instances must be
/// deterministic functions of the delivered request sequence.
class Application {
 public:
  virtual ~Application() = default;

  /// Partition that stores `oid` (the paper's query_mapping).
  [[nodiscard]] virtual GroupId partition_of(Oid oid) const = 0;

  /// Objects the request reads when executed at `at_partition` (local and
  /// remote). Must be a deterministic function of the request.
  [[nodiscard]] virtual std::vector<Oid> read_set(
      const Request& r, GroupId at_partition) const = 0;

  /// Executes the request at this replica's partition: reads come from
  /// `ctx`, writes/creates go through `ctx` (local objects only). Returns
  /// the reply sent to the client (replicas of every involved partition
  /// reply; the client takes one per partition).
  virtual Reply execute(const Request& r, ExecContext& ctx) = 0;

  /// Populates the replica's store at startup (initial database load).
  virtual void bootstrap(GroupId partition, ObjectStore& store) = 0;

  /// §III-D1 extension (multi-threaded execution): keys two requests may
  /// contend on. Two single-partition requests run concurrently iff their
  /// key sets are disjoint. Must cover every object the request reads or
  /// writes (including reads through local_store()); the default assumes
  /// read_set() is complete. Only consulted when exec_threads > 1.
  [[nodiscard]] virtual std::vector<Oid> conflict_keys(
      const Request& r, GroupId at_partition) const {
    return read_set(r, at_partition);
  }

  /// heron::reconfig hook: layout-partitioned applications (partition_of
  /// derived from an epoch-versioned range layout instead of a static
  /// function) receive a pointer to their hosting replica's installed
  /// layout before bootstrap. The pointer stays valid for the replica's
  /// lifetime and tracks epoch bumps in place. Default: ignore (static
  /// partitioning, seed behaviour).
  virtual void bind_layout(const reconfig::Layout* layout) {
    (void)layout;
  }
};

}  // namespace heron::core
