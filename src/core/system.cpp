#include "core/system.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>
#include <string>

#include "rdma/pod.hpp"
#include "sim/log.hpp"
#include "sim/notifier.hpp"

namespace heron::core {

System::System(rdma::Fabric& fabric, int partitions, int replicas,
               AppFactory factory, HeronConfig config,
               amcast::Config amcast_config)
    : config_(config), factory_(std::move(factory)) {
  amcast_ =
      std::make_unique<amcast::System>(fabric, partitions, replicas,
                                       amcast_config);
  // The epoch-1 layout must exist before any Replica is constructed —
  // the replica ctor copies it (heron::reconfig).
  if (config_.reconfig_keys != 0) {
    layout0_ = reconfig::Layout::uniform(partitions, config_.reconfig_keys);
    layout_ = layout0_;
  }
  for (GroupId g = 0; g < partitions; ++g) {
    for (int r = 0; r < replicas; ++r) {
      replicas_.push_back(std::make_unique<Replica>(*this, g, r));
    }
  }
}

void System::start() {
  amcast_->start();
  for (auto& r : replicas_) r->start();
  if (config_.lease_duration > 0) {
    for (GroupId g = 0; g < partitions(); ++g) {
      auto& ep = amcast_->add_client();
      if (by_id_.size() <= ep.client_id()) {
        by_id_.resize(ep.client_id() + 1, nullptr);
      }
      by_id_[ep.client_id()] = nullptr;  // internal: no reply slot
      simulator().spawn(lease_manager_loop(ep, g));
    }
  }
}

sim::Task<void> System::lease_manager_loop(amcast::ClientEndpoint& ep,
                                           GroupId g) {
  auto& sim = simulator();
  // Renew at half the duration so a healthy partition always holds a
  // valid lease; the grant carries the absolute expiry computed at submit
  // time, so every replica installs the identical value. The floor guards
  // against pathological durations: see kMinLeaseRenewPeriod.
  const sim::Nanos period =
      std::max(kMinLeaseRenewPeriod, config_.lease_duration / 2);
  auto* ctr_skipped = &fabric().telemetry().metrics.counter(
      "core", "lease_renewals_skipped", "g" + std::to_string(g));
  for (;;) {
    // Backpressure gate: while the partition's fabric neighborhood is
    // congested, stop feeding it lease markers. The current lease rides
    // out its remaining duration; fast reads then fall back to the
    // ordered path until the fabric drains (see
    // HeronConfig::lease_backpressure_threshold).
    if (config_.lease_backpressure_threshold > 0) {
      sim::Nanos worst = 0;
      for (int r = 0; r < replicas_per_partition(); ++r) {
        auto& node = amcast_->endpoint(g, r).node();
        if (!node.alive()) continue;
        worst = std::max(worst, fabric().uplink_backlog(node.id()));
      }
      if (worst > config_.lease_backpressure_threshold) {
        ++lease_renewals_skipped_;
        ctr_skipped->inc();
        co_await sim.sleep(period);
        continue;
      }
    }
    const RequestHeader header{sim.now(), 0, 0, 0};
    const LeaseGrantWire grant{sim.now() + config_.lease_duration};
    std::array<std::byte, sizeof(RequestHeader) + sizeof(LeaseGrantWire)>
        wire{};
    std::memcpy(wire.data(), &header, sizeof(header));
    std::memcpy(wire.data() + sizeof(header), &grant, sizeof(grant));
    // With fast writes on, every grant also (re-)arms the partition's
    // invalidate/validate machinery at an ordered stream position.
    co_await ep.multicast(amcast::dst_of(g), wire,
                          amcast::kWireFlagLease |
                              (config_.fast_writes ? amcast::kWireFlagFastWrite
                                                   : 0u));
    co_await sim.sleep(period);
  }
}

void System::schedule_migration(const reconfig::Plan& plan) {
  if (config_.reconfig_keys == 0) {
    throw std::logic_error(
        "core::System::schedule_migration: reconfig_keys == 0 "
        "(reconfiguration disabled)");
  }
  auto& ep = amcast_->add_client();
  if (by_id_.size() <= ep.client_id()) {
    by_id_.resize(ep.client_id() + 1, nullptr);
  }
  by_id_[ep.client_id()] = nullptr;  // internal: no reply slot
  simulator().spawn(
      reconfig_controller_loop(ep, plan, reconfig_tickets_issued_++));
}

sim::Task<void> System::multicast_marker(amcast::ClientEndpoint& ep,
                                         DstMask dst,
                                         const reconfig::Layout& layout,
                                         std::uint32_t phase) {
  const RequestHeader header{simulator().now(), 0, 0, 0};
  std::vector<std::byte> wire(sizeof(RequestHeader));
  std::memcpy(wire.data(), &header, sizeof(header));
  if (!reconfig::encode_marker(layout, phase, wire)) {
    throw std::runtime_error(
        "reconfig: layout has too many ranges for one marker payload");
  }
  co_await ep.multicast(dst, wire, amcast::kWireFlagEpoch);
}

sim::Task<void> System::reconfig_controller_loop(amcast::ClientEndpoint& ep,
                                                 reconfig::Plan plan,
                                                 std::uint64_t ticket) {
  auto& sim = simulator();
  if (plan.at > sim.now()) co_await sim.sleep(plan.at - sim.now());

  // Serialize migrations in schedule order: Migration is a single slot
  // (in the layout wire form and in the replicas' source/dest role
  // state), so a controller whose window overlaps an in-flight move
  // would copy layout_ mid-migration and clobber the first move's state.
  while (reconfig_tickets_done_ != ticket) co_await sim.sleep(sim::us(50));

  // Markers go to EVERY group, not just the two involved: the layout
  // epoch is a cluster-wide version, and non-involved groups must install
  // it at an ordered position too (their wrong-epoch replies and epoch
  // words stay consistent, and a later move touching them starts from the
  // same layout).
  DstMask all = 0;
  for (GroupId g = 0; g < partitions(); ++g) all |= amcast::dst_of(g);

  MigrationTimes times;
  times.plan = plan;

  // PREPARE: ownership unchanged, migration armed, epoch bumped. Source
  // ranks spawn their copy machines when the marker is delivered.
  reconfig::Layout prep = layout_;
  prep.epoch += 1;
  prep.migration =
      reconfig::Migration{plan.lo, plan.hi, plan.from, plan.to};
  co_await multicast_marker(ep, all, prep, reconfig::kEpochPrepare);
  layout_ = prep;
  times.prepare = sim.now();
  migration_times_.push_back(times);
  const std::size_t slot = migration_times_.size() - 1;

  // Wait until every alive source rank reports its copier caught up
  // (dirty backlog below the seal threshold), so the flip's unthrottled
  // final delta — the quiesce window — stays brief. Crashed ranks are
  // skipped: they re-arm via resume_migration_roles on rejoin.
  for (;;) {
    bool ready = true;
    for (int q = 0; q < replicas_per_partition(); ++q) {
      Replica& src = replica(plan.from, q);
      if (src.node().alive() && !src.copy_caught_up()) {
        ready = false;
        break;
      }
    }
    if (ready) break;
    co_await sim.sleep(sim::us(50));
  }

  // FLIP: rewrite ownership (migration cleared inside apply_move), epoch
  // bumped again. Sources run their handoff inline at delivery.
  reconfig::Layout flip = layout_;
  flip.apply_move(plan.lo, plan.hi, plan.to, flip.epoch + 1);
  co_await multicast_marker(ep, all, flip, reconfig::kEpochFlip);
  layout_ = flip;
  migration_times_[slot].flip = sim.now();

  // Completion: every alive destination rank sealed its inbound stream
  // (ranks down right now seal later through the pull path).
  for (;;) {
    bool sealed = true;
    for (int q = 0; q < replicas_per_partition(); ++q) {
      Replica& dst = replica(plan.to, q);
      if (dst.node().alive() && !dst.inbound_sealed()) {
        sealed = false;
        break;
      }
    }
    if (sealed) break;
    co_await sim.sleep(sim::us(50));
  }
  migration_times_[slot].sealed = sim.now();
  ++reconfig_tickets_done_;
  HSIM_LOG(sim, kInfo, "reconfig: migration [" << plan.lo << "," << plan.hi
                                               << ") g" << plan.from << "->g"
                                               << plan.to << " sealed");
}

void System::restart_replica(GroupId g, int rank) {
  // Order matters: the endpoint brings the node back up and re-enters the
  // multicast protocol; the replica's rejoin then relies on deliveries and
  // peer reads working again.
  amcast_->endpoint(g, rank).restart();
  replica(g, rank).restart();
}

Client& System::add_client() {
  auto& ep = amcast_->add_client();
  clients_.push_back(std::make_unique<Client>(*this, ep));
  if (by_id_.size() <= ep.client_id()) {
    by_id_.resize(ep.client_id() + 1, nullptr);
  }
  by_id_[ep.client_id()] = clients_.back().get();
  return *clients_.back();
}

std::uint64_t System::total_completed() const {
  std::uint64_t total = 0;
  for (const auto& c : clients_) total += c->completed();
  return total;
}

void System::reset_stats() {
  for (auto& r : replicas_) r->reset_stats();
  for (auto& c : clients_) c->reset_stats();
  // System-level accumulators are part of the same warm-up window as the
  // per-replica/per-client stats (missing this one skewed every
  // backpressure report that reset after a warm-up phase).
  lease_renewals_skipped_ = 0;
}

Client::Client(System& system, amcast::ClientEndpoint& ep)
    : system_(&system),
      ep_(&ep),
      rng_(system.fabric().seed() ^
           (0x9e3779b97f4a7c15ULL * (ep.client_id() + 1))),
      layout_(system.initial_layout()) {
  reply_mr_ = ep.node().register_region(
      static_cast<std::size_t>(system.partitions()) * sizeof(ReplySlot));
  auto& hub = system.fabric().telemetry();
  const std::string label = "c" + std::to_string(ep.client_id());
  ctr_retries_ = &hub.metrics.counter("client", "retries", label);
  ctr_timeouts_ = &hub.metrics.counter("client", "timeouts", label);
  ctr_busy_ = &hub.metrics.counter("client", "busy_replies", label);
  ctr_fast_hits_ = &hub.metrics.counter("core", "fastread_hits", label);
  ctr_fast_torn_ = &hub.metrics.counter("core", "fastread_torn_retries", label);
  ctr_fast_fallbacks_ =
      &hub.metrics.counter("core", "fastread_fallbacks", label);
  ctr_fast_lease_rejects_ =
      &hub.metrics.counter("core", "fastread_lease_rejects", label);
  ctr_fastw_commits_ = &hub.metrics.counter("core", "fastwrite_commits", label);
  ctr_fastw_conflicts_ =
      &hub.metrics.counter("core", "fastwrite_conflicts", label);
  ctr_fastw_fallbacks_ =
      &hub.metrics.counter("core", "fastwrite_fallbacks", label);
  ctr_fastw_lease_rejects_ =
      &hub.metrics.counter("core", "fastwrite_lease_rejects", label);
  ctr_wrong_epoch_ =
      &hub.metrics.counter("reconfig", "client_wrong_epoch", label);
}

bool Client::apply_wrong_epoch(const Reply& reply) {
  if (reply.payload.size() < sizeof(WrongEpochWire)) return false;
  WrongEpochWire wire{};
  std::memcpy(&wire, reply.payload.data(), sizeof(wire));
  // >= , not >: a client that slept through several migrations jumps to
  // the newest epoch on its FIRST wrong-epoch reply (for the range that
  // faulted); replies for other stale ranges then arrive carrying that
  // same — now current — epoch and must still patch their range, or the
  // client keeps routing them to the old owner until the hop budget runs
  // out. apply_move is idempotent and max-merges the epoch, so replaying
  // a same-epoch slice is safe; only strictly older replies are dropped.
  if (wire.epoch >= layout_.epoch && wire.owner >= 0) {
    layout_.apply_move(wire.lo, wire.hi, wire.owner, wire.epoch);
  }
  // One wrong-epoch reply invalidates EVERY cache entry seeded under an
  // older layout (satellite fix): they all potentially point at replicas
  // that handed their range off, and each would otherwise fail only
  // after its own round trip.
  std::erase_if(fastread_cache_, [this](const auto& kv) {
    return kv.second.epoch < layout_.epoch;
  });
  return true;
}

sim::Task<Client::Result> Client::submit_routed(
    Oid oid, GroupId fallback, std::uint32_t kind,
    std::span<const std::byte> payload, std::uint32_t flags) {
  constexpr int kMaxHops = 4;
  Result result;
  for (int hop = 0;; ++hop) {
    const GroupId home = layout_.enabled() ? layout_.owner_of(oid) : fallback;
    result = co_await submit(amcast::dst_of(home), kind, payload, flags);
    if (result.status != SubmitStatus::kOk ||
        result.reply.status != kStatusWrongEpoch || hop >= kMaxHops) {
      co_return result;
    }
    // The rejecting replica neither executed nor session-marked the
    // command, so replaying it under the SAME session_seq against the
    // new owner preserves exactly-once (and dedups if the range's old
    // owner executed it before the flip — the session migrated too).
    // The bounced hop is not a completed command; undo submit's count.
    --completed_;
    apply_wrong_epoch(result.reply);
    ++wrong_epoch_retries_;
    ctr_wrong_epoch_->inc();
    session_seq_ = result.session_seq - 1;
  }
}

sim::Task<Client::Result> Client::submit(DstMask dst, std::uint32_t kind,
                                         std::span<const std::byte> payload,
                                         std::uint32_t flags) {
  if (in_flight_) {
    throw std::logic_error(
        "core::Client::submit: overlapping submit on client " +
        std::to_string(id()) +
        " — concurrent requests alias the per-partition reply slots; "
        "serialize submits or use one Client per in-flight request");
  }
  in_flight_ = true;

  const HeronConfig& cfg = system_->config();
  auto& sim = system_->simulator();
  const sim::Nanos start = sim.now();
  const std::uint64_t seq = ++session_seq_;

  RequestHeader header{start, seq, kind, flags};
  std::vector<std::byte> wire(sizeof(RequestHeader) + payload.size());
  std::memcpy(wire.data() + sizeof(header), payload.data(), payload.size());

  // attempt_timeout == 0 selects the legacy closed-loop behaviour: one
  // attempt, wait forever. The deadline only binds in retry mode.
  const bool retry_mode = cfg.client_attempt_timeout > 0;
  const sim::Nanos deadline =
      retry_mode && cfg.client_deadline > 0 ? start + cfg.client_deadline : 0;

  auto& region = ep_->node().region(reply_mr_);
  auto slot_at = [this, &region](GroupId g) {
    return rdma::load_pod<ReplySlot>(
        region.bytes(), static_cast<std::uint64_t>(g) * sizeof(ReplySlot));
  };

  std::vector<amcast::MsgUid> attempt_uids;
  Result result;
  result.session_seq = seq;
  bool done = false;
  bool last_was_busy = false;
  int attempt = 0;

  for (;; ++attempt) {
    header.sent_at = sim.now();
    std::memcpy(wire.data(), &header, sizeof(header));
    const amcast::MsgUid uid = co_await ep_->multicast(dst, wire);
    attempt_uids.push_back(uid);
    if (attempt > 0) {
      ++retries_;
      ctr_retries_->inc();
    }
    if (system_->attempt_observer()) {
      system_->attempt_observer()(id(), seq, uid, dst, attempt);
    }

    // A partition has answered this command when its slot holds the
    // latest attempt's uid (any status), or an earlier attempt's uid with
    // a non-BUSY status (executed or answered from the session cache). A
    // stale BUSY must not complete a retried command: the retry may still
    // be admitted.
    auto answered = [this, &slot_at, &attempt_uids, uid, dst] {
      for (GroupId g = 0; g < system_->partitions(); ++g) {
        if (!amcast::dst_contains(dst, g)) continue;
        const auto slot = slot_at(g);
        if (slot.uid == uid) continue;
        const bool older_attempt =
            std::find(attempt_uids.begin(), attempt_uids.end(), slot.uid) !=
            attempt_uids.end();
        if (!(older_attempt && slot.status != kStatusBusy)) return false;
      }
      return true;
    };

    bool got_answer;
    if (!retry_mode) {
      co_await sim::wait_until(region.on_write(), answered);
      got_answer = true;
    } else {
      sim::Nanos budget = cfg.client_attempt_timeout;
      if (deadline != 0) budget = std::min(budget, deadline - sim.now());
      got_answer = budget > 0 && co_await sim::wait_until_timeout(
                                     region.on_write(), answered, budget);
    }

    if (got_answer) {
      // Success iff some involved partition holds a non-BUSY reply for
      // any attempt of this command; otherwise every slot is a BUSY for
      // the latest attempt (the shed verdict is uniform per uid).
      last_was_busy = true;
      for (GroupId g = 0; g < system_->partitions(); ++g) {
        if (!amcast::dst_contains(dst, g)) continue;
        const auto slot = slot_at(g);
        if (slot.status == kStatusBusy) continue;
        result.reply.status = slot.status;
        result.reply.payload.assign(slot.payload.begin(),
                                    slot.payload.begin() + slot.payload_len);
        last_was_busy = false;
        done = true;
        break;  // lowest-id partition's reply
      }
      if (done) break;
      ++busy_replies_;
      ctr_busy_->inc();
    } else {
      last_was_busy = false;
    }

    // Retry budget: attempts and deadline.
    if (attempt >= cfg.client_max_retries) break;
    if (deadline != 0 && sim.now() >= deadline) break;

    // Seeded exponential backoff with jitter, capped at the deadline.
    const int shift = std::min(attempt, 20);
    sim::Nanos delay =
        std::min(cfg.client_retry_backoff_max, cfg.client_retry_backoff << shift);
    delay = delay / 2 + static_cast<sim::Nanos>(
                            rng_.bounded(static_cast<std::uint64_t>(delay / 2 + 1)));
    if (deadline != 0) delay = std::min(delay, deadline - sim.now());
    if (delay > 0) co_await sim.sleep(delay);
    if (deadline != 0 && sim.now() >= deadline) break;
  }

  result.attempts = attempt + 1;
  result.latency = sim.now() - start;
  if (done) {
    result.status = SubmitStatus::kOk;
    ++completed_;
    latencies_.record(result.latency);
  } else if (last_was_busy) {
    result.status = SubmitStatus::kOverloaded;
    ++overloaded_;
    ctr_timeouts_->inc();
  } else {
    result.status = SubmitStatus::kTimeout;
    ++timeouts_;
    ctr_timeouts_->inc();
  }
  if (system_->outcome_observer()) {
    system_->outcome_observer()(id(), seq, result.status, result.attempts);
  }
  in_flight_ = false;
  co_return result;
}

sim::Task<Client::ReadResult> Client::read(GroupId home, Oid oid) {
  const HeronConfig& cfg = system_->config();
  auto& sim = system_->simulator();
  const sim::Nanos start = sim.now();
  constexpr int kMaxHops = 4;
  bool truncated_retry = false;

  for (int hop = 0;; ++hop) {
  // Layout routing (heron::reconfig): the caller's home is overridden by
  // the layout owner; a wrong-epoch reply below re-seeds the layout and
  // loops to retry against the new owner.
  if (layout_.enabled()) home = layout_.owner_of(oid);

  if (cfg.lease_duration > 0) {
    const auto it = fastread_cache_.find(oid);
    // Entries seeded under a superseded layout are skipped (satellite
    // fix): the cached replica may have handed the range off, and its
    // retired slot (or a live lease on unrelated ranges) must not serve
    // this oid. The ordered fallback re-seeds under the current epoch.
    if (it != fastread_cache_.end() &&
        (!layout_.enabled() || it->second.epoch == layout_.epoch)) {
      const FastLoc loc = it->second;
      Replica& target = system_->replica(home, loc.rank);
      const auto target_node = target.node().id();
      bool cache_bad = false;

      // READ 1: the lease word. The per-(initiator, target) in-order
      // channel guarantees this samples strictly before the slot READ
      // below, so a lease valid here covers the slot sample.
      std::vector<std::byte> lease_buf(sizeof(LeaseWord));
      const auto cc1 = co_await system_->fabric().read(
          node().id(),
          rdma::RAddr{target_node, target.fastread_mr(), kFastReadLeaseOffset},
          lease_buf);
      if (!cc1.ok()) {
        cache_bad = true;
      } else {
        const auto lease = rdma::load_pod<LeaseWord>(
            std::span<const std::byte>(lease_buf), 0);
        if (lease.epoch == 0 || lease.expiry <= sim.now()) {
          ++fastread_lease_rejects_;
          ctr_fast_lease_rejects_->inc();
        } else {
          // READ 2 (+ retries): the object slot. A torn (odd) seqlock
          // means a write phase or its write gate is in flight there.
          std::vector<std::byte> slot_buf(SlotView::header_bytes() +
                                          2ull * loc.size);
          for (int attempt = 0; attempt <= cfg.fastread_torn_retries;
               ++attempt) {
            const auto cc2 = co_await system_->fabric().read(
                node().id(),
                rdma::RAddr{target_node, target.store().mr(), loc.offset},
                slot_buf);
            if (!cc2.ok() ||
                rdma::load_pod<std::uint32_t>(std::span<const std::byte>(
                                                  slot_buf),
                                              24) != loc.size) {
              cache_bad = true;
              break;
            }
            const SlotView view = SlotView::parse(slot_buf);
            if (view.torn()) {
              ++fastread_torn_retries_;
              ctr_fast_torn_->inc();
              continue;
            }
            const auto [tmp, value] = view.current();
            ++fastread_hits_;
            ctr_fast_hits_->inc();
            ReadResult res;
            res.fast = true;
            res.tmp = tmp;
            res.value.assign(value.begin(), value.end());
            res.latency = sim.now() - start;
            co_return res;
          }
        }
      }
      if (cache_bad) fastread_cache_.erase(oid);
    }
  }

  // Ordered fallback: a core-level read through the multicast stream.
  // Linearizable because the replica answers it in stream order, after
  // every earlier write's gate completed. The reply carries the slot
  // address and re-seeds the fast-read cache.
  ++fastread_fallbacks_;
  ctr_fast_fallbacks_->inc();
  ReadResult res;
  Result sub =
      co_await submit(amcast::dst_of(home), 0, rdma::pod_bytes(oid),
                      kReqFlagRead);
  res.submit_status = sub.status;
  res.latency = sim.now() - start;
  if (sub.status != SubmitStatus::kOk) co_return res;
  if (sub.reply.status == kStatusWrongEpoch) {
    res.status = sub.reply.status;
    if (hop >= kMaxHops) co_return res;
    // Hops left: the targeted group no longer owns the oid. Adopt the
    // newer layout slice from the reply, rewind the session counter (the
    // replica never executed or marked the read), and retry against the
    // new owner. On exhaustion we return above instead of falling
    // through: the 32-byte WrongEpochWire would pass the ReadAnswerWire
    // size check and seed a garbage FastLoc into the cache.
    apply_wrong_epoch(sub.reply);
    ++wrong_epoch_retries_;
    ctr_wrong_epoch_->inc();
    session_seq_ = sub.session_seq - 1;
    continue;
  }
  res.status = sub.reply.status;
  if (sub.reply.status == kStatusReadNotFound ||
      sub.reply.payload.size() < sizeof(ReadAnswerWire)) {
    co_return res;
  }
  ReadAnswerWire wire{};
  std::memcpy(&wire, sub.reply.payload.data(), sizeof(wire));
  res.tmp = wire.tmp;
  res.value.assign(sub.reply.payload.begin() +
                       static_cast<std::ptrdiff_t>(sizeof(wire)),
                   sub.reply.payload.end());
  const bool serialized = (wire.rank & kReadAnswerSerializedBit) != 0;
  const std::uint32_t rank = wire.rank & ~kReadAnswerSerializedBit;
  bool seeded = false;
  if (cfg.lease_duration > 0 &&
      rank < static_cast<std::uint32_t>(system_->replicas_per_partition())) {
    fastread_cache_[oid] = FastLoc{static_cast<int>(rank), wire.offset,
                                   wire.size, layout_.epoch, serialized};
    seeded = true;
  }
  if (res.status == kStatusReadTruncated && seeded && !truncated_retry) {
    // The ordered reply clipped the value to the reply-slot budget, but it
    // just seeded the address cache — loop back into the fast path once,
    // whose slot READ has no such cap and returns the whole value. Before
    // this, the FIRST read of a large object handed the caller a
    // truncated value despite leases being on. One retry only: if the
    // fast path can't serve it either (lease churn), the truncated reply
    // is still an honest, correctly-flagged answer.
    truncated_retry = true;
    continue;
  }
  co_return res;
  }  // hop loop
}

// ---------------------------------------------------------------------
// Client::write — the leased one-sided fast write (Hermes-style
// invalidate/validate; see the declaration for the state machine).
// ---------------------------------------------------------------------

/// Shared state of one attempt's per-replica fan-out. Lives on write()'s
/// frame; helpers hold a raw pointer, which stays valid because write()
/// stays suspended on `done` until every helper finished.
struct Client::FastWriteRound {
  struct PerRank {
    std::uint64_t lock = 0;       // sampled even seqlock word (CAS expected)
    Tmp base = 0;                 // current version tmp at this replica
    int overwrite_idx = 0;        // version slot the new value goes into
    sim::Nanos lease_expiry = 0;  // freshest sampled lease expiry
  };
  explicit FastWriteRound(sim::Simulator& s) : done(s) {}

  std::vector<PerRank> ranks;
  int pending = 0;
  bool failed = false;
  std::uint32_t reason = kFastWriteNone;  // first failure's reason wins
  sim::Notifier done;

  void fail(std::uint32_t why) {
    failed = true;
    if (reason == kFastWriteNone) reason = why;
  }
  void finish_one() {
    if (--pending == 0) done.notify_all();
  }
};

namespace {

/// A lease word that authorizes fast WRITES: live, and not carrying the
/// migration/arming disarm bit (fast reads only need "live").
bool fast_write_lease_ok(const LeaseWord& lease, sim::Nanos now) {
  return lease.epoch != 0 &&
         (lease.epoch & kLeaseFastWriteDisarmedBit) == 0 && lease.expiry > now;
}

}  // namespace

sim::Task<void> Client::fast_write_probe(GroupId home, int rank, Oid oid,
                                         FastLoc loc, FastWriteRound* st) {
  auto& sim = system_->simulator();
  Replica& target = system_->replica(home, rank);
  const auto target_node = target.node().id();

  // Lease word first: the in-order channel makes this sample strictly
  // older than the header sample, so a lease live here covers it.
  std::vector<std::byte> lease_buf(sizeof(LeaseWord));
  const auto cc1 = co_await system_->fabric().read(
      node().id(),
      rdma::RAddr{target_node, target.fastread_mr(), kFastReadLeaseOffset},
      lease_buf);
  if (!cc1.ok()) {
    st->fail(kFastWriteReplicaFail);
    st->finish_one();
    co_return;
  }
  const auto lease =
      rdma::load_pod<LeaseWord>(std::span<const std::byte>(lease_buf), 0);
  if (!fast_write_lease_ok(lease, sim.now())) {
    st->fail(kFastWriteNoLease);
    st->finish_one();
    co_return;
  }

  std::vector<std::byte> hdr(SlotView::header_bytes());
  const auto cc2 = co_await system_->fabric().read(
      node().id(), rdma::RAddr{target_node, target.store().mr(), loc.offset},
      hdr);
  if (!cc2.ok()) {
    st->fail(kFastWriteReplicaFail);
    st->finish_one();
    co_return;
  }
  const auto raw = std::span<const std::byte>(hdr);
  const auto lock = rdma::load_pod<std::uint64_t>(raw, 0);
  const auto tmp_a = rdma::load_pod<Tmp>(raw, 8);
  const auto tmp_b = rdma::load_pod<Tmp>(raw, 16);
  const auto size = rdma::load_pod<std::uint32_t>(raw, 24);
  const auto word = rdma::load_pod<std::uint32_t>(raw, 28);
  // Identity and eligibility: the slot must be THIS oid (offsets can
  // diverge across replicas after a lagger re-created objects; a retire
  // also poisons the size), the row must be raw, and the lock must be
  // even — not an ordered write phase, not someone else's invalidation.
  if (size != loc.size || (word >> 1) != SlotView::oid_tag(oid) ||
      (word & 1) != 0 || (lock & 1) != 0) {
    st->fail(kFastWriteConflict);
    st->finish_one();
    co_return;
  }
  // SlotView::current() on the header words alone (values not needed):
  // among valid versions the higher tmp wins; the loser is overwritten.
  const bool va = !is_fast_tmp(tmp_a) || lock == tmp_a;
  const bool vb = !is_fast_tmp(tmp_b) || lock == tmp_b;
  const bool a_current = va != vb ? va : tmp_a >= tmp_b;
  auto& pr = st->ranks[static_cast<std::size_t>(rank)];
  pr.lock = lock;
  pr.base = a_current ? tmp_a : tmp_b;
  pr.overwrite_idx = a_current ? 1 : 0;
  pr.lease_expiry = lease.expiry;
  st->finish_one();
}

sim::Task<void> Client::fast_write_install(GroupId home, int rank,
                                           FastLoc loc, Tmp fast_tmp,
                                           std::span<const std::byte> value,
                                           FastWriteRound* st) {
  Replica& target = system_->replica(home, rank);
  const auto target_node = target.node().id();
  const auto mr = target.store().mr();
  const auto& pr = st->ranks[static_cast<std::size_t>(rank)];

  // INVALIDATE: take the slot's lock word with a CAS against the probed
  // even value. A miss means the slot moved under us — an ordered write
  // phase opened, another fast writer invalidated first, or a wipe
  // resolved the generation — and the attempt aborts WITHOUT having
  // disturbed the replica (a blind write here could clobber an open
  // seqlock bracket).
  std::uint64_t observed = 0;
  const auto cc = co_await system_->fabric().cas(
      node().id(), rdma::RAddr{target_node, mr, loc.offset}, pr.lock,
      static_cast<std::uint64_t>(fast_tmp) | 1, &observed);
  if (!cc.ok()) {
    st->fail(kFastWriteReplicaFail);
    st->finish_one();
    co_return;
  }
  if (observed != pr.lock) {
    st->fail(kFastWriteConflict);
    st->finish_one();
    co_return;
  }

  // New version into the non-current slot: tag, then body. The
  // per-(initiator, target) FIFO channel keeps CAS -> tag -> body ordered
  // at the replica, so the blocking body write's completion acks all
  // three.
  const std::uint64_t tmp_off =
      loc.offset + 8 + 8ull * static_cast<std::uint64_t>(pr.overwrite_idx);
  system_->fabric().write_async(node().id(),
                                rdma::RAddr{target_node, mr, tmp_off},
                                rdma::pod_bytes(fast_tmp));
  const std::uint64_t val_off =
      loc.offset + SlotView::header_bytes() +
      static_cast<std::uint64_t>(pr.overwrite_idx) * loc.size;
  const auto cc2 = co_await system_->fabric().write(
      node().id(), rdma::RAddr{target_node, mr, val_off}, value);
  if (!cc2.ok()) {
    st->fail(kFastWriteReplicaFail);
    st->finish_one();
    co_return;
  }
  st->finish_one();
}

sim::Task<void> Client::fast_write_verify(GroupId home, int rank, Oid oid,
                                          FastLoc loc, Tmp fast_tmp, Tmp base,
                                          FastWriteRound* st) {
  auto& sim = system_->simulator();
  Replica& target = system_->replica(home, rank);
  const auto target_node = target.node().id();

  std::vector<std::byte> hdr(SlotView::header_bytes());
  const auto cc = co_await system_->fabric().read(
      node().id(), rdma::RAddr{target_node, target.store().mr(), loc.offset},
      hdr);
  if (!cc.ok()) {
    st->fail(kFastWriteReplicaFail);
    st->finish_one();
    co_return;
  }
  const auto raw = std::span<const std::byte>(hdr);
  const auto lock = rdma::load_pod<std::uint64_t>(raw, 0);
  const auto tmp_a = rdma::load_pod<Tmp>(raw, 8);
  const auto tmp_b = rdma::load_pod<Tmp>(raw, 16);
  const auto size = rdma::load_pod<std::uint32_t>(raw, 24);
  const auto word = rdma::load_pod<std::uint32_t>(raw, 28);
  // The slot must hold exactly our pending invalidation over the agreed
  // base: lock still fast_tmp|1 (nothing resolved or clobbered it) and
  // the version pair exactly {fast_tmp, base}. Anything else — an
  // ordered wipe, a retire, an ABA'd lock generation — aborts before
  // VALIDATE, so the pending version dies unobserved.
  const bool pair_ok = (tmp_a == fast_tmp && tmp_b == base) ||
                       (tmp_a == base && tmp_b == fast_tmp);
  if (lock != (static_cast<std::uint64_t>(fast_tmp) | 1) || !pair_ok ||
      size != loc.size || (word >> 1) != SlotView::oid_tag(oid)) {
    st->fail(kFastWriteConflict);
    st->finish_one();
    co_return;
  }
  // Fresh lease sample: the VALIDATE margin check runs against the
  // tightest expiry across replicas as of this phase, and a disarm that
  // landed since the probe (a PREPARE marker) must abort the commit.
  std::vector<std::byte> lease_buf(sizeof(LeaseWord));
  const auto cc2 = co_await system_->fabric().read(
      node().id(),
      rdma::RAddr{target_node, target.fastread_mr(), kFastReadLeaseOffset},
      lease_buf);
  if (!cc2.ok()) {
    st->fail(kFastWriteReplicaFail);
    st->finish_one();
    co_return;
  }
  const auto lease =
      rdma::load_pod<LeaseWord>(std::span<const std::byte>(lease_buf), 0);
  if (!fast_write_lease_ok(lease, sim.now())) {
    st->fail(kFastWriteNoLease);
    st->finish_one();
    co_return;
  }
  st->ranks[static_cast<std::size_t>(rank)].lease_expiry = lease.expiry;
  st->finish_one();
}

sim::Task<Client::WriteResult> Client::write(
    GroupId home, Oid oid, std::span<const std::byte> value,
    std::uint32_t kind, std::span<const std::byte> ordered_payload) {
  const HeronConfig& cfg = system_->config();
  auto& sim = system_->simulator();
  const sim::Nanos start = sim.now();
  const int nreplicas = system_->replicas_per_partition();

  WriteResult res;
  std::uint32_t reason = kFastWriteNone;
  FastLoc loc{};
  if (!cfg.fast_writes || cfg.lease_duration <= 0) {
    reason = kFastWriteDisabled;
  } else {
    if (layout_.enabled()) home = layout_.owner_of(oid);
    const auto it = fastread_cache_.find(oid);
    if (it == fastread_cache_.end() ||
        (layout_.enabled() && it->second.epoch != layout_.epoch)) {
      reason = kFastWriteColdCache;
    } else if (it->second.serialized) {
      reason = kFastWriteSerialized;
    } else if (value.size() != it->second.size) {
      reason = kFastWriteSizeMismatch;
    } else {
      loc = it->second;
    }
  }

  do {  // single pass; `break` = abort the attempt to the ordered fallback
    if (reason != kFastWriteNone) break;
    FastWriteRound st(sim);
    st.ranks.resize(static_cast<std::size_t>(nreplicas));

    // PROBE every replica of the partition in parallel.
    st.pending = nreplicas;
    for (int r = 0; r < nreplicas; ++r) {
      sim.spawn(fast_write_probe(home, r, oid, loc, &st));
    }
    co_await sim::wait_until(st.done, [&st] { return st.pending == 0; });
    if (st.failed) {
      reason = st.reason;
      break;
    }

    // Client-side join: the partition must agree on one current version
    // (the base this write chains on) and leave enough lease runway.
    const Tmp base = st.ranks[0].base;
    sim::Nanos min_expiry = st.ranks[0].lease_expiry;
    bool agree = true;
    for (const auto& pr : st.ranks) {
      agree = agree && pr.base == base;
      min_expiry = std::min(min_expiry, pr.lease_expiry);
    }
    if (!agree) {
      reason = kFastWriteConflict;
      break;
    }
    if (min_expiry - sim.now() <= cfg.fast_write_val_margin) {
      reason = kFastWriteNoLease;
      break;
    }
    const Tmp fast_tmp = next_fast_tmp(base, id());

    // INVALIDATE + install the new version at every replica.
    st.pending = nreplicas;
    for (int r = 0; r < nreplicas; ++r) {
      sim.spawn(fast_write_install(home, r, loc, fast_tmp, value, &st));
    }
    co_await sim::wait_until(st.done, [&st] { return st.pending == 0; });
    if (st.failed) {
      reason = st.reason;
      break;
    }

    // VERIFY at every replica.
    st.pending = nreplicas;
    for (int r = 0; r < nreplicas; ++r) {
      sim.spawn(fast_write_verify(home, r, oid, loc, fast_tmp, base, &st));
    }
    co_await sim::wait_until(st.done, [&st] { return st.pending == 0; });
    if (st.failed) {
      reason = st.reason;
      break;
    }

    // VALIDATE. Replicas discard a still-pending invalidation at lease
    // expiry, so the VALIDATEs may only be posted while every sampled
    // lease outlives the margin: then the writes land long before any
    // expiry (margin >> fabric latency), and had we NOT posted, every
    // replica would discard. Either way the outcome is uniform. No
    // suspension between this check and the posts.
    min_expiry = st.ranks[0].lease_expiry;
    for (const auto& pr : st.ranks) {
      min_expiry = std::min(min_expiry, pr.lease_expiry);
    }
    if (min_expiry - sim.now() <= cfg.fast_write_val_margin) {
      reason = kFastWriteNoLease;
      break;
    }
    for (int r = 0; r < nreplicas; ++r) {
      Replica& target = system_->replica(home, r);
      system_->fabric().write_async(
          node().id(),
          rdma::RAddr{target.node().id(), target.store().mr(), loc.offset},
          rdma::pod_bytes(static_cast<std::uint64_t>(fast_tmp)));
    }

    ++fastwrite_commits_;
    ctr_fastw_commits_->inc();
    ++completed_;
    res.fast = true;
    res.tmp = fast_tmp;
    res.base_tmp = base;
    res.latency = sim.now() - start;
    latencies_.record(res.latency);
    co_return res;
  } while (false);

  // Ordered fallback. The stream's apply-side wipe (install_version +
  // clear_fast_lock on slots with fast residue) converges every replica —
  // including any this attempt's partial one-sided traffic reached —
  // before the new value commits.
  res.fallback_reason = reason;
  ++fastwrite_fallbacks_;
  ctr_fastw_fallbacks_->inc();
  if (reason == kFastWriteConflict) {
    ++fastwrite_conflicts_;
    ctr_fastw_conflicts_->inc();
  } else if (reason == kFastWriteNoLease) {
    ++fastwrite_lease_rejects_;
    ctr_fastw_lease_rejects_->inc();
  }
  const Result sub = co_await submit_routed(oid, home, kind, ordered_payload);
  res.status = sub.status;
  res.reply_status = sub.reply.status;
  res.session_seq = sub.session_seq;
  res.latency = sim.now() - start;
  co_return res;
}

}  // namespace heron::core
