#include "core/system.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "rdma/pod.hpp"
#include "sim/notifier.hpp"

namespace heron::core {

System::System(rdma::Fabric& fabric, int partitions, int replicas,
               AppFactory factory, HeronConfig config,
               amcast::Config amcast_config)
    : config_(config), factory_(std::move(factory)) {
  amcast_ =
      std::make_unique<amcast::System>(fabric, partitions, replicas,
                                       amcast_config);
  for (GroupId g = 0; g < partitions; ++g) {
    for (int r = 0; r < replicas; ++r) {
      replicas_.push_back(std::make_unique<Replica>(*this, g, r));
    }
  }
}

void System::start() {
  amcast_->start();
  for (auto& r : replicas_) r->start();
}

void System::restart_replica(GroupId g, int rank) {
  // Order matters: the endpoint brings the node back up and re-enters the
  // multicast protocol; the replica's rejoin then relies on deliveries and
  // peer reads working again.
  amcast_->endpoint(g, rank).restart();
  replica(g, rank).restart();
}

Client& System::add_client() {
  auto& ep = amcast_->add_client();
  clients_.push_back(std::make_unique<Client>(*this, ep));
  return *clients_.back();
}

std::uint64_t System::total_completed() const {
  std::uint64_t total = 0;
  for (const auto& c : clients_) total += c->completed();
  return total;
}

void System::reset_stats() {
  for (auto& r : replicas_) r->reset_stats();
  for (auto& c : clients_) c->reset_stats();
}

Client::Client(System& system, amcast::ClientEndpoint& ep)
    : system_(&system),
      ep_(&ep),
      rng_(system.fabric().seed() ^
           (0x9e3779b97f4a7c15ULL * (ep.client_id() + 1))) {
  reply_mr_ = ep.node().register_region(
      static_cast<std::size_t>(system.partitions()) * sizeof(ReplySlot));
  auto& hub = system.fabric().telemetry();
  const std::string label = "c" + std::to_string(ep.client_id());
  ctr_retries_ = &hub.metrics.counter("client", "retries", label);
  ctr_timeouts_ = &hub.metrics.counter("client", "timeouts", label);
  ctr_busy_ = &hub.metrics.counter("client", "busy_replies", label);
}

sim::Task<Client::Result> Client::submit(DstMask dst, std::uint32_t kind,
                                         std::span<const std::byte> payload) {
  if (in_flight_) {
    throw std::logic_error(
        "core::Client::submit: overlapping submit on client " +
        std::to_string(id()) +
        " — concurrent requests alias the per-partition reply slots; "
        "serialize submits or use one Client per in-flight request");
  }
  in_flight_ = true;

  const HeronConfig& cfg = system_->config();
  auto& sim = system_->simulator();
  const sim::Nanos start = sim.now();
  const std::uint64_t seq = ++session_seq_;

  RequestHeader header{start, seq, kind, 0};
  std::vector<std::byte> wire(sizeof(RequestHeader) + payload.size());
  std::memcpy(wire.data() + sizeof(header), payload.data(), payload.size());

  // attempt_timeout == 0 selects the legacy closed-loop behaviour: one
  // attempt, wait forever. The deadline only binds in retry mode.
  const bool retry_mode = cfg.client_attempt_timeout > 0;
  const sim::Nanos deadline =
      retry_mode && cfg.client_deadline > 0 ? start + cfg.client_deadline : 0;

  auto& region = ep_->node().region(reply_mr_);
  auto slot_at = [this, &region](GroupId g) {
    return rdma::load_pod<ReplySlot>(
        region.bytes(), static_cast<std::uint64_t>(g) * sizeof(ReplySlot));
  };

  std::vector<amcast::MsgUid> attempt_uids;
  Result result;
  result.session_seq = seq;
  bool done = false;
  bool last_was_busy = false;
  int attempt = 0;

  for (;; ++attempt) {
    header.sent_at = sim.now();
    std::memcpy(wire.data(), &header, sizeof(header));
    const amcast::MsgUid uid = co_await ep_->multicast(dst, wire);
    attempt_uids.push_back(uid);
    if (attempt > 0) {
      ++retries_;
      ctr_retries_->inc();
    }
    if (system_->attempt_observer()) {
      system_->attempt_observer()(id(), seq, uid, dst, attempt);
    }

    // A partition has answered this command when its slot holds the
    // latest attempt's uid (any status), or an earlier attempt's uid with
    // a non-BUSY status (executed or answered from the session cache). A
    // stale BUSY must not complete a retried command: the retry may still
    // be admitted.
    auto answered = [this, &slot_at, &attempt_uids, uid, dst] {
      for (GroupId g = 0; g < system_->partitions(); ++g) {
        if (!amcast::dst_contains(dst, g)) continue;
        const auto slot = slot_at(g);
        if (slot.uid == uid) continue;
        const bool older_attempt =
            std::find(attempt_uids.begin(), attempt_uids.end(), slot.uid) !=
            attempt_uids.end();
        if (!(older_attempt && slot.status != kStatusBusy)) return false;
      }
      return true;
    };

    bool got_answer;
    if (!retry_mode) {
      co_await sim::wait_until(region.on_write(), answered);
      got_answer = true;
    } else {
      sim::Nanos budget = cfg.client_attempt_timeout;
      if (deadline != 0) budget = std::min(budget, deadline - sim.now());
      got_answer = budget > 0 && co_await sim::wait_until_timeout(
                                     region.on_write(), answered, budget);
    }

    if (got_answer) {
      // Success iff some involved partition holds a non-BUSY reply for
      // any attempt of this command; otherwise every slot is a BUSY for
      // the latest attempt (the shed verdict is uniform per uid).
      last_was_busy = true;
      for (GroupId g = 0; g < system_->partitions(); ++g) {
        if (!amcast::dst_contains(dst, g)) continue;
        const auto slot = slot_at(g);
        if (slot.status == kStatusBusy) continue;
        result.reply.status = slot.status;
        result.reply.payload.assign(slot.payload.begin(),
                                    slot.payload.begin() + slot.payload_len);
        last_was_busy = false;
        done = true;
        break;  // lowest-id partition's reply
      }
      if (done) break;
      ++busy_replies_;
      ctr_busy_->inc();
    } else {
      last_was_busy = false;
    }

    // Retry budget: attempts and deadline.
    if (attempt >= cfg.client_max_retries) break;
    if (deadline != 0 && sim.now() >= deadline) break;

    // Seeded exponential backoff with jitter, capped at the deadline.
    const int shift = std::min(attempt, 20);
    sim::Nanos delay =
        std::min(cfg.client_retry_backoff_max, cfg.client_retry_backoff << shift);
    delay = delay / 2 + static_cast<sim::Nanos>(
                            rng_.bounded(static_cast<std::uint64_t>(delay / 2 + 1)));
    if (deadline != 0) delay = std::min(delay, deadline - sim.now());
    if (delay > 0) co_await sim.sleep(delay);
    if (deadline != 0 && sim.now() >= deadline) break;
  }

  result.attempts = attempt + 1;
  result.latency = sim.now() - start;
  if (done) {
    result.status = SubmitStatus::kOk;
    ++completed_;
    latencies_.record(result.latency);
  } else if (last_was_busy) {
    result.status = SubmitStatus::kOverloaded;
    ++overloaded_;
    ctr_timeouts_->inc();
  } else {
    result.status = SubmitStatus::kTimeout;
    ++timeouts_;
    ctr_timeouts_->inc();
  }
  if (system_->outcome_observer()) {
    system_->outcome_observer()(id(), seq, result.status, result.attempts);
  }
  in_flight_ = false;
  co_return result;
}

}  // namespace heron::core
