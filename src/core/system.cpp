#include "core/system.hpp"

#include <stdexcept>

#include "rdma/pod.hpp"

namespace heron::core {

System::System(rdma::Fabric& fabric, int partitions, int replicas,
               AppFactory factory, HeronConfig config,
               amcast::Config amcast_config)
    : config_(config), factory_(std::move(factory)) {
  amcast_ =
      std::make_unique<amcast::System>(fabric, partitions, replicas,
                                       amcast_config);
  for (GroupId g = 0; g < partitions; ++g) {
    for (int r = 0; r < replicas; ++r) {
      replicas_.push_back(std::make_unique<Replica>(*this, g, r));
    }
  }
}

void System::start() {
  amcast_->start();
  for (auto& r : replicas_) r->start();
}

void System::restart_replica(GroupId g, int rank) {
  // Order matters: the endpoint brings the node back up and re-enters the
  // multicast protocol; the replica's rejoin then relies on deliveries and
  // peer reads working again.
  amcast_->endpoint(g, rank).restart();
  replica(g, rank).restart();
}

Client& System::add_client() {
  auto& ep = amcast_->add_client();
  clients_.push_back(std::make_unique<Client>(*this, ep));
  return *clients_.back();
}

std::uint64_t System::total_completed() const {
  std::uint64_t total = 0;
  for (const auto& c : clients_) total += c->completed();
  return total;
}

void System::reset_stats() {
  for (auto& r : replicas_) r->reset_stats();
  for (auto& c : clients_) c->reset_stats();
}

Client::Client(System& system, amcast::ClientEndpoint& ep)
    : system_(&system), ep_(&ep) {
  reply_mr_ = ep.node().register_region(
      static_cast<std::size_t>(system.partitions()) * sizeof(ReplySlot));
}

sim::Task<Client::Result> Client::submit(DstMask dst, std::uint32_t kind,
                                         std::span<const std::byte> payload) {
  const sim::Nanos start = system_->simulator().now();

  std::vector<std::byte> wire(sizeof(RequestHeader) + payload.size());
  RequestHeader header{start, kind, 0};
  std::memcpy(wire.data(), &header, sizeof(header));
  std::memcpy(wire.data() + sizeof(header), payload.data(), payload.size());

  const amcast::MsgUid uid = co_await ep_->multicast(dst, wire);

  // Wait for one reply per involved partition (any replica of each).
  auto& region = ep_->node().region(reply_mr_);
  auto all_replied = [this, &region, uid, dst] {
    for (GroupId g = 0; g < system_->partitions(); ++g) {
      if (!amcast::dst_contains(dst, g)) continue;
      const auto slot = rdma::load_pod<ReplySlot>(
          region.bytes(), static_cast<std::uint64_t>(g) * sizeof(ReplySlot));
      if (slot.uid != uid) return false;
    }
    return true;
  };
  co_await sim::wait_until(region.on_write(), all_replied);

  Result result;
  result.latency = system_->simulator().now() - start;
  for (GroupId g = 0; g < system_->partitions(); ++g) {
    if (!amcast::dst_contains(dst, g)) continue;
    const auto slot = rdma::load_pod<ReplySlot>(
        region.bytes(), static_cast<std::uint64_t>(g) * sizeof(ReplySlot));
    result.reply.status = slot.status;
    result.reply.payload.assign(slot.payload.begin(),
                                slot.payload.begin() + slot.payload_len);
    break;  // lowest-id partition's reply
  }
  ++completed_;
  latencies_.record(result.latency);
  co_return result;
}

}  // namespace heron::core
