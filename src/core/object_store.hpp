// Dual-versioned object store backed by one RDMA-registered region.
//
// Implements the paper's object_list (§III-A, Algorithm 1 "Variables"):
// every object keeps two versions, each tagged with the timestamp of the
// request that created it.
//   * get()  returns the version with the higher timestamp;
//   * set()  overwrites the version with the lower timestamp and tags it;
//   * remote readers fetch the whole slot in one RDMA read and pick the
//     version with the highest timestamp smaller than their request's
//     (Algorithm 2 line 22) — finding none means they lag.
//
// Slot layout (so one read returns both versions, as in the paper):
//   [ lock : u64 | tmp_a : u64 | tmp_b : u64 | size : u32 | serialized : u32
//     | val_a : size bytes | val_b : size bytes ]
//
// `lock` is a per-object seqlock word for the one-sided fast-read path:
// the replica makes it odd (begin_write) for the duration of a request's
// write phase and even again (end_write) once the new version is applied
// and acknowledged safe, so a remote reader that samples the slot with a
// single RDMA READ can detect a torn/in-flight value and retry or fall
// back to the ordered path. Algorithm 2 remote readers (which want a
// *historical* version via version_before) ignore the lock on purpose.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "rdma/node.hpp"

namespace heron::core {

/// Parsed view of a raw object slot (also used by remote readers on the
/// bytes an RDMA read returned).
struct SlotView {
  std::uint64_t lock = 0;
  Tmp tmp_a = 0;
  Tmp tmp_b = 0;
  std::uint32_t size = 0;
  /// Packed word: bit 0 = stored serialized; bits 1-31 = oid_tag() of the
  /// owning object. The tag makes a slot self-describing to one-sided
  /// readers: a fast writer whose cached offset diverged from a replica's
  /// actual layout (possible after a lagger re-created objects during a
  /// state transfer) fails the tag check instead of corrupting whatever
  /// slot happens to live at that offset.
  std::uint32_t serialized = 0;
  std::span<const std::byte> val_a;
  std::span<const std::byte> val_b;

  [[nodiscard]] bool is_serialized_slot() const {
    return (serialized & 1) != 0;
  }
  [[nodiscard]] std::uint32_t tag() const { return serialized >> 1; }
  /// 31-bit identity tag. Exact for oids below 2^31 (every workload in
  /// this repo); a fold keeps larger oids distinguishable in practice.
  static constexpr std::uint32_t oid_tag(Oid oid) {
    return static_cast<std::uint32_t>((oid ^ (oid >> 31)) & 0x7FFFFFFFu);
  }

  /// Odd seqlock word: a write phase (or a fast write's INVALIDATE) is in
  /// flight; a fast reader must retry or fall back.
  [[nodiscard]] bool torn() const { return (lock & 1) != 0; }

  /// A fast write's INVALIDATE is pending on this slot: the lock word is
  /// odd AND carries the fast-tmp tag. The pending version's tmp is
  /// `lock & ~1`; it commits when the writer's VALIDATE lands (lock
  /// becomes that tmp, even) and is discarded otherwise.
  [[nodiscard]] bool fast_pending() const {
    return (lock & kFastTmpBit) != 0 && (lock & 1) != 0;
  }

  /// Version validity: a fast-tagged version only counts while the lock
  /// word equals its tmp exactly (the writer's VALIDATE). Plain
  /// (stream-ordered) versions are always valid. Remnants of aborted or
  /// superseded fast writes fail this test and are skipped by current().
  [[nodiscard]] bool valid(Tmp t) const {
    return !is_fast_tmp(t) || lock == t;
  }

  /// Version with the highest tmp strictly smaller than `before`
  /// (Algorithm 2 line 22). nullopt => the reader lags.
  [[nodiscard]] std::optional<std::pair<Tmp, std::span<const std::byte>>>
  version_before(Tmp before) const {
    const bool a_ok = tmp_a < before;
    const bool b_ok = tmp_b < before;
    if (a_ok && (!b_ok || tmp_a >= tmp_b)) return {{tmp_a, val_a}};
    if (b_ok) return {{tmp_b, val_b}};
    return std::nullopt;
  }

  /// Current committed version; used for local reads. Among the valid()
  /// versions the higher tmp wins. When exactly one version is valid (the
  /// other is a pending/aborted fast remnant) that one is served
  /// regardless of tmp order. When neither is valid — a checkpoint or
  /// copy-stream install of a committed fast version under a plain lock
  /// tags BOTH slots with the fast tmp — fall back to the higher tmp:
  /// such installs hold one value in both slots, so the answer is right.
  /// A pending INVALIDATE never counts as current: unfenced local readers
  /// (checkpoint writer, copy machine) must keep serving the pre-image
  /// until the writer's VALIDATE lands, even when the pre-image is itself
  /// a committed fast version (both tmps fail valid() in that window, so
  /// the plain max-tmp fallback would leak the uncommitted value).
  [[nodiscard]] std::pair<Tmp, std::span<const std::byte>> current() const {
    if (fast_pending()) {
      const Tmp pend = lock & ~std::uint64_t{1};
      if (tmp_a == pend) return {tmp_b, val_b};
      if (tmp_b == pend) return {tmp_a, val_a};
      // Pending body never landed: the slot still holds its pre-INV
      // versions; fall through.
    }
    const bool a_ok = valid(tmp_a);
    if (a_ok != valid(tmp_b)) {
      return a_ok ? std::pair{tmp_a, val_a} : std::pair{tmp_b, val_b};
    }
    return tmp_a >= tmp_b ? std::pair{tmp_a, val_a} : std::pair{tmp_b, val_b};
  }

  static constexpr std::uint64_t header_bytes() { return 32; }
  [[nodiscard]] std::uint64_t slot_bytes() const {
    return header_bytes() + 2ull * size;
  }
  static SlotView parse(std::span<const std::byte> raw);
};

class ObjectStore {
 public:
  /// Registers `region_bytes` of object memory on `node`.
  ObjectStore(rdma::Node& node, std::size_t region_bytes);

  /// Creates an object with fixed payload size. `serialized` marks rows
  /// stored in serialized form (TPC-C Stock/Customer): their state
  /// transfers skip receiver-side deserialization cost. Both versions are
  /// initialised to `init` at timestamp 0. Returns the slot offset.
  std::uint64_t create(Oid oid, std::span<const std::byte> init,
                       bool serialized = false);

  [[nodiscard]] bool exists(Oid oid) const { return index_.contains(oid); }

  /// Local read of the current version.
  [[nodiscard]] std::pair<Tmp, std::span<const std::byte>> get(Oid oid) const;

  /// Parsed slot (both versions), e.g. for version_before().
  [[nodiscard]] SlotView view(Oid oid) const;

  /// Dual-versioned update (Algorithm 2 lines 29-31): overwrites the
  /// older version and tags it with `tmp`. Does not touch the seqlock
  /// word; the caller brackets write phases with begin/end_write.
  void set(Oid oid, std::span<const std::byte> value, Tmp tmp);

  /// Seqlock bracket around a request's write phase: begin_write makes
  /// the slot's lock word odd (fast readers see a torn slot), end_write
  /// makes it even again with a new generation count.
  void begin_write(Oid oid);
  void end_write(Oid oid);
  [[nodiscard]] std::uint64_t seqlock(Oid oid) const;

  // --- fast-write state machine (see SlotView::fast_pending) -----------
  /// An INVALIDATE is pending on the slot (lock odd + fast-tagged).
  [[nodiscard]] bool fast_pending(Oid oid) const;
  /// Any fast-write residue on the slot: a fast-tagged lock word OR a
  /// fast-tagged version tmp. The ordered write path wipes such slots via
  /// install_version instead of set() so every replica converges on the
  /// same current version whether or not the one-sided traffic reached it.
  [[nodiscard]] bool has_fast_trace(Oid oid) const;
  /// Resolves a pending INVALIDATE as aborted: restores the lock word so
  /// the slot's surviving version (the pre-image, or an earlier committed
  /// fast version) is valid again. No-op if the slot is not pending.
  void discard_pending(Oid oid);
  /// Resolves a pending INVALIDATE as committed (rejoin reconciliation:
  /// a peer proves the writer validated): lock <- tmp, even.
  void validate_fast(Oid oid, Tmp tmp);
  /// Strips the fast tag from the lock word, preserving bracket parity
  /// (odd stays odd). Used by the ordered wipe, which runs inside a
  /// begin_write/end_write bracket.
  void clear_fast_lock(Oid oid);

  /// Raw in-place slot overwrite (both versions + tags).
  void install_slot(Oid oid, std::span<const std::byte> slot_bytes,
                    std::uint32_t size, bool serialized);

  /// Installs a single version as the object's entire state (both slots
  /// set to it). Used by state transfer: the sender ships only the
  /// current version, the paper's "missing data" (§V-E2).
  void install_version(Oid oid, std::span<const std::byte> value, Tmp tmp,
                       bool serialized);

  /// Removes a migrated-away object and poisons its slot: the size word
  /// is overwritten with kRetiredSize so a stale fast reader (one-sided
  /// READ against a cached {offset, size}) fails its size check and
  /// falls back to the ordered path, which answers kStatusWrongEpoch.
  /// The slot space itself is leaked — the region is a bump allocator
  /// and reconfiguration is rare relative to region capacity.
  void retire(Oid oid);
  static constexpr std::uint32_t kRetiredSize = 0xFFFFFFFFu;

  /// Slot offset / size for the address-query protocol.
  [[nodiscard]] std::uint64_t offset_of(Oid oid) const;
  [[nodiscard]] std::uint32_t size_of(Oid oid) const;
  [[nodiscard]] bool is_serialized(Oid oid) const;
  [[nodiscard]] std::uint64_t slot_bytes_of(Oid oid) const;
  [[nodiscard]] std::span<const std::byte> raw_slot(Oid oid) const;

  [[nodiscard]] rdma::MrId mr() const { return mr_; }
  [[nodiscard]] std::size_t object_count() const { return index_.size(); }
  [[nodiscard]] std::uint64_t bytes_used() const { return bump_; }

  /// Visits every object id (iteration order unspecified); used by
  /// full-state transfers.
  template <typename Fn>
  void for_each_oid(Fn&& fn) const {
    for (const auto& [oid, entry] : index_) fn(oid);
  }

  /// Visits every object's current version as
  /// fn(oid, tmp, value_span, serialized); used by the checkpoint writer
  /// to snapshot the store without per-object index lookups. Iteration
  /// order unspecified (checkpoint records are order-independent).
  template <typename Fn>
  void for_each_object(Fn&& fn) const {
    for (const auto& [oid, entry] : index_) {
      const SlotView v = SlotView::parse(slot_span(entry));
      const auto [tmp, val] = v.current();
      fn(oid, tmp, val, entry.serialized);
    }
  }

 private:
  struct Entry {
    std::uint64_t offset;
    std::uint32_t size;
    bool serialized;
  };

  [[nodiscard]] std::span<std::byte> slot_span(const Entry& e);
  [[nodiscard]] std::span<const std::byte> slot_span(const Entry& e) const;

  rdma::Node* node_;
  rdma::MrId mr_;
  std::uint64_t bump_ = 0;
  std::unordered_map<Oid, Entry> index_;
};

}  // namespace heron::core
