// Heron deployment wiring: an atomic multicast system plus one Replica
// per multicast endpoint and client handles with reply memory.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "amcast/system.hpp"
#include "core/replica.hpp"
#include "core/types.hpp"
#include "sim/stats.hpp"

namespace heron::core {

/// Factory producing one Application instance per replica.
using AppFactory = std::function<std::unique_ptr<Application>()>;

/// Client handle: submits requests and awaits one reply per involved
/// partition (the paper's closed-loop client).
class Client {
 public:
  Client(System& system, amcast::ClientEndpoint& ep);

  struct Result {
    Reply reply;            // reply from the lowest-id involved partition
    sim::Nanos latency = 0; // submit -> all partitions replied
  };

  /// Submits a request to the partitions in `dst` and awaits replies.
  sim::Task<Result> submit(DstMask dst, std::uint32_t kind,
                           std::span<const std::byte> payload);

  [[nodiscard]] std::uint32_t id() const { return ep_->client_id(); }
  [[nodiscard]] rdma::Node& node() { return ep_->node(); }
  [[nodiscard]] rdma::MrId reply_mr() const { return reply_mr_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] sim::LatencyRecorder& latencies() { return latencies_; }
  void reset_stats() {
    completed_ = 0;
    latencies_.clear();
  }

 private:
  System* system_;
  amcast::ClientEndpoint* ep_;
  rdma::MrId reply_mr_{};
  std::uint64_t completed_ = 0;
  sim::LatencyRecorder latencies_;
};

class System {
 public:
  /// Builds a Heron deployment with `partitions` groups of `replicas`
  /// members each. `factory` creates the application for every replica.
  System(rdma::Fabric& fabric, int partitions, int replicas,
         AppFactory factory, HeronConfig config = {},
         amcast::Config amcast_config = {});

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Starts multicast endpoints and replica runtimes.
  void start();

  /// Restarts a crashed replica: brings the amcast endpoint (and its
  /// node) back up, then runs the replica's rejoin path, which catches up
  /// via Algorithm 3 state transfer before resuming execution.
  void restart_replica(GroupId g, int rank);

  /// Fault-injection hook: lets heron::faultlab toggle runtime knobs
  /// (e.g. hiccup bursts) mid-run.
  [[nodiscard]] HeronConfig& mutable_config() { return config_; }

  [[nodiscard]] rdma::Fabric& fabric() { return amcast_->fabric(); }
  [[nodiscard]] sim::Simulator& simulator() {
    return fabric().simulator();
  }
  [[nodiscard]] amcast::System& amcast() { return *amcast_; }
  [[nodiscard]] const HeronConfig& config() const { return config_; }
  [[nodiscard]] int partitions() const { return amcast_->group_count(); }
  [[nodiscard]] int replicas_per_partition() const {
    return amcast_->replicas_per_group();
  }

  [[nodiscard]] Replica& replica(GroupId g, int rank) {
    return *replicas_[static_cast<std::size_t>(g) *
                          static_cast<std::size_t>(replicas_per_partition()) +
                      static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] AppFactory& app_factory() { return factory_; }

  Client& add_client();
  [[nodiscard]] Client& client(std::uint32_t id) { return *clients_[id]; }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }

  /// Total completions across clients (throughput accounting).
  [[nodiscard]] std::uint64_t total_completed() const;
  void reset_stats();

 private:
  std::unique_ptr<amcast::System> amcast_;
  HeronConfig config_;
  AppFactory factory_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace heron::core
