// Heron deployment wiring: an atomic multicast system plus one Replica
// per multicast endpoint and client handles with reply memory.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "amcast/system.hpp"
#include "core/replica.hpp"
#include "core/types.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "telemetry/hub.hpp"

namespace heron::core {

/// Factory producing one Application instance per replica.
using AppFactory = std::function<std::unique_ptr<Application>()>;

/// Client handle: submits requests and awaits one reply per involved
/// partition (the paper's closed-loop client).
///
/// With `HeronConfig::client_attempt_timeout > 0` the submit path runs the
/// robust lifecycle: bounded retries under fresh multicast uids (the
/// logical command is identified by the header's session_seq, which
/// replicas deduplicate), seeded exponential backoff with jitter, an
/// optional overall deadline, and BUSY-aware backoff under admission
/// control. With the default of 0 it behaves like the paper's closed-loop
/// client: one attempt, wait forever.
class Client {
 public:
  Client(System& system, amcast::ClientEndpoint& ep);

  struct Result {
    Reply reply;            // reply from the lowest-id involved partition
    sim::Nanos latency = 0; // submit -> all partitions replied
    SubmitStatus status = SubmitStatus::kOk;
    int attempts = 1;            // multicasts performed (1 = no retries)
    std::uint64_t session_seq = 0;  // logical command number
  };

  /// Submits a request to the partitions in `dst` and awaits replies (or
  /// a terminal timeout/overload verdict under the retry lifecycle).
  /// Throws std::logic_error on an overlapping submit on the same client:
  /// concurrent requests would alias the per-partition reply slots.
  /// `flags` lands in RequestHeader::flags (kReqFlag* bits).
  sim::Task<Result> submit(DstMask dst, std::uint32_t kind,
                           std::span<const std::byte> payload,
                           std::uint32_t flags = 0);

  /// Outcome of a linearizable read (Client::read).
  struct ReadResult {
    /// 0 = value returned; kStatusReadNotFound / kStatusReadTruncated
    /// otherwise (fast reads always return the full value).
    std::uint32_t status = 0;
    /// Transport verdict of the ordered fallback; kOk for fast reads.
    SubmitStatus submit_status = SubmitStatus::kOk;
    bool fast = false;  // served by one-sided RDMA READs
    Tmp tmp = 0;        // version timestamp of the returned value
    std::vector<std::byte> value;
    sim::Nanos latency = 0;
  };

  /// Layout-routed submit (heron::reconfig): the destination partition is
  /// recomputed from the client's cached layout on every attempt, and a
  /// kStatusWrongEpoch reply re-seeds the layout and retries the SAME
  /// logical command (same session_seq — the rejecting replica never
  /// executed or session-marked it) against the new owner. Falls back to
  /// plain submit against `fallback` when reconfiguration is disabled.
  sim::Task<Result> submit_routed(Oid oid, GroupId fallback,
                                  std::uint32_t kind,
                                  std::span<const std::byte> payload,
                                  std::uint32_t flags = 0);

  /// Linearizable read of `oid` homed in partition `home`.
  ///
  /// Fast path (lease_duration > 0 and the per-oid address cache is warm):
  /// two one-sided RDMA READs against one replica — the lease word, then
  /// the object slot. The in-order per-(initiator, target) channel makes
  /// the lease sample strictly older than the slot sample, so a lease
  /// valid at the first READ plus an even (untorn) seqlock at the second
  /// proves the value is write-gate-complete: every other lease holder
  /// can already serve it, which is what makes the read linearizable.
  ///
  /// Falls back to an ordered read through the multicast stream
  /// (kReqFlagRead) on a cold cache, an absent/expired lease, a slot that
  /// stays torn after fastread_torn_retries, or remote failure. The
  /// fallback's reply carries the slot address and re-seeds the cache.
  sim::Task<ReadResult> read(GroupId home, Oid oid);

  /// Outcome of a single-object blind write (Client::write).
  struct WriteResult {
    /// Transport verdict of the ordered fallback; kOk for fast commits.
    SubmitStatus status = SubmitStatus::kOk;
    /// Replica reply status of the ordered fallback; 0 for fast commits.
    std::uint32_t reply_status = 0;
    bool fast = false;      // committed on the leased one-sided path
    Tmp tmp = 0;            // fast: the committed fast tmp (0 otherwise)
    Tmp base_tmp = 0;       // fast: the version tmp the write chained on
    /// kFastWriteNone on a fast commit; otherwise why the ordered stream
    /// was taken (kFastWrite* in types.hpp).
    std::uint32_t fallback_reason = kFastWriteNone;
    /// Session sequence number of the ordered fallback submit (0 for fast
    /// commits), so callers can resolve the executed version through a
    /// HistoryRecorder just like a plain submit().
    std::uint64_t session_seq = 0;
    sim::Nanos latency = 0;
  };

  /// Blind (absolute-value) write of `oid` homed in partition `home`.
  ///
  /// Fast path (fast_writes + leases on, warm current-epoch address
  /// cache): Hermes-style leased invalidate/validate, all one-sided.
  ///   PROBE      per replica: READ the lease word, then the 32-byte slot
  ///              header; require a live lease, an even untorn lock, the
  ///              oid's identity tag, and the cached size. All replicas
  ///              must agree on the current version tmp (the base).
  ///   INVALIDATE per replica: CAS the seqlock word from the sampled even
  ///              value to fast_tmp|1 (odd: readers see a torn slot and
  ///              fence), then write the new version tagged
  ///              next_fast_tmp(base, id()) over the non-current slot.
  ///   VERIFY     per replica: re-READ the header (lock still fast_tmp|1,
  ///              versions exactly {fast_tmp, base}) and the lease word.
  ///   VALIDATE   posted only while every sampled lease still has more
  ///              than fast_write_val_margin left: one-sided writes set
  ///              each lock word to fast_tmp (even — the version is now
  ///              valid everywhere). Replicas discard a still-pending
  ///              invalidation at lease expiry, so the margin makes the
  ///              outcome uniform: all replicas commit or all discard.
  ///
  /// Any probe/CAS/verify/lease failure aborts the attempt and submits
  /// `ordered_payload` with `kind` on the ordered stream (submit_routed),
  /// whose apply-side wipe clears one-sided residue on every replica.
  /// `value` must be the full slot value (size() == the object's size);
  /// RMW ops must use the ordered stream — a blind overwrite is the only
  /// op whose outcome is independent of the base it clobbers.
  sim::Task<WriteResult> write(GroupId home, Oid oid,
                               std::span<const std::byte> value,
                               std::uint32_t kind,
                               std::span<const std::byte> ordered_payload);

  [[nodiscard]] std::uint32_t id() const { return ep_->client_id(); }
  [[nodiscard]] rdma::Node& node() { return ep_->node(); }
  [[nodiscard]] rdma::MrId reply_mr() const { return reply_mr_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] sim::LatencyRecorder& latencies() { return latencies_; }

  // Lifecycle stats (kept outside telemetry so tests can read them
  // without enabling the metrics registry).
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t overloaded() const { return overloaded_; }
  [[nodiscard]] std::uint64_t busy_replies() const { return busy_replies_; }
  [[nodiscard]] bool in_flight() const { return in_flight_; }

  // Fast-read path stats.
  /// Test hook: the replica rank a fast read of `oid` would target, or
  /// nullopt when the address cache is cold.
  [[nodiscard]] std::optional<int> fastread_cached_rank(Oid oid) const {
    const auto it = fastread_cache_.find(oid);
    if (it == fastread_cache_.end()) return std::nullopt;
    return it->second.rank;
  }
  [[nodiscard]] std::uint64_t fastread_hits() const { return fastread_hits_; }
  [[nodiscard]] std::uint64_t fastread_torn_retries() const {
    return fastread_torn_retries_;
  }
  [[nodiscard]] std::uint64_t fastread_fallbacks() const {
    return fastread_fallbacks_;
  }
  [[nodiscard]] std::uint64_t fastread_lease_rejects() const {
    return fastread_lease_rejects_;
  }

  // Fast-write path stats.
  [[nodiscard]] std::uint64_t fastwrite_commits() const {
    return fastwrite_commits_;
  }
  [[nodiscard]] std::uint64_t fastwrite_conflicts() const {
    return fastwrite_conflicts_;
  }
  [[nodiscard]] std::uint64_t fastwrite_fallbacks() const {
    return fastwrite_fallbacks_;
  }
  [[nodiscard]] std::uint64_t fastwrite_lease_rejects() const {
    return fastwrite_lease_rejects_;
  }

  // Reconfiguration-side stats / hooks (heron::reconfig).
  /// Layout this client routes by (seeded from the system's initial
  /// layout, advanced by kStatusWrongEpoch replies).
  [[nodiscard]] const reconfig::Layout& layout() const { return layout_; }
  [[nodiscard]] std::uint64_t wrong_epoch_retries() const {
    return wrong_epoch_retries_;
  }
  /// Test hook: the layout epoch a cached fast-read entry was seeded
  /// under (nullopt when cold).
  [[nodiscard]] std::optional<std::uint64_t> fastread_cached_epoch(
      Oid oid) const {
    const auto it = fastread_cache_.find(oid);
    if (it == fastread_cache_.end()) return std::nullopt;
    return it->second.epoch;
  }

  /// Clears every accumulated statistic; configuration-like state (the
  /// cached layout, the fast-read address cache, session_seq_) survives —
  /// resetting those would change behaviour, not accounting.
  void reset_stats() {
    completed_ = 0;
    retries_ = timeouts_ = overloaded_ = busy_replies_ = 0;
    fastread_hits_ = fastread_torn_retries_ = fastread_fallbacks_ =
        fastread_lease_rejects_ = 0;
    fastwrite_commits_ = fastwrite_conflicts_ = fastwrite_fallbacks_ =
        fastwrite_lease_rejects_ = 0;
    wrong_epoch_retries_ = 0;
    latencies_.clear();
  }

  /// Test hook: rewinds the session counter so the next submit reuses an
  /// already-issued session_seq — models a client resending an old
  /// command (e.g. after its session was TTL-evicted server-side).
  void rewind_session(std::uint64_t seq) { session_seq_ = seq; }
  [[nodiscard]] std::uint64_t session_seq() const { return session_seq_; }

 private:
  System* system_;
  amcast::ClientEndpoint* ep_;
  rdma::MrId reply_mr_{};
  bool in_flight_ = false;
  std::uint64_t session_seq_ = 0;  // last issued logical command number
  sim::Rng rng_;                   // backoff jitter, forked off the fabric seed
  std::uint64_t completed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;     // kTimeout outcomes
  std::uint64_t overloaded_ = 0;   // kOverloaded outcomes
  std::uint64_t busy_replies_ = 0; // BUSY answers observed (pre-backoff)
  sim::LatencyRecorder latencies_;

  /// Per-oid fast-read address cache, seeded by ordered-read replies.
  /// Per-rank coherent: slot offsets can diverge across replicas after a
  /// state transfer, so the cached offset is only used against the rank
  /// that answered.
  struct FastLoc {
    int rank = 0;
    std::uint64_t offset = 0;
    std::uint32_t size = 0;
    /// Layout epoch the entry was seeded under (satellite fix): an entry
    /// from a superseded layout may point at a replica that handed the
    /// range off, so the fast path skips it and the next wrong-epoch
    /// reply purges all such entries at once.
    std::uint64_t epoch = 0;
    /// The object is stored serialized (ReadAnswerWire rank bit 31): the
    /// fast-write path skips it — a one-sided overwrite of the raw value
    /// cannot re-serialize. Fast reads are unaffected.
    bool serialized = false;
  };
  std::unordered_map<Oid, FastLoc> fastread_cache_;
  std::uint64_t fastread_hits_ = 0;
  std::uint64_t fastread_torn_retries_ = 0;
  std::uint64_t fastread_fallbacks_ = 0;
  std::uint64_t fastread_lease_rejects_ = 0;

  /// Shared state of one fast-write attempt's per-replica fan-out
  /// (defined in system.cpp; the helpers below each own one replica).
  struct FastWriteRound;
  sim::Task<void> fast_write_probe(GroupId home, int rank, Oid oid,
                                   FastLoc loc, FastWriteRound* st);
  sim::Task<void> fast_write_install(GroupId home, int rank, FastLoc loc,
                                     Tmp fast_tmp,
                                     std::span<const std::byte> value,
                                     FastWriteRound* st);
  sim::Task<void> fast_write_verify(GroupId home, int rank, Oid oid,
                                    FastLoc loc, Tmp fast_tmp, Tmp base,
                                    FastWriteRound* st);
  std::uint64_t fastwrite_commits_ = 0;
  std::uint64_t fastwrite_conflicts_ = 0;
  std::uint64_t fastwrite_fallbacks_ = 0;
  std::uint64_t fastwrite_lease_rejects_ = 0;

  /// Applies a kStatusWrongEpoch reply: advances layout_ (when the wire
  /// epoch is newer) and evicts every fast-read cache entry seeded under
  /// an older layout. Returns false on a malformed payload.
  bool apply_wrong_epoch(const Reply& reply);
  reconfig::Layout layout_;
  std::uint64_t wrong_epoch_retries_ = 0;

  telemetry::Counter* ctr_retries_;
  telemetry::Counter* ctr_timeouts_;
  telemetry::Counter* ctr_busy_;
  telemetry::Counter* ctr_fast_hits_;
  telemetry::Counter* ctr_fast_torn_;
  telemetry::Counter* ctr_fast_fallbacks_;
  telemetry::Counter* ctr_fast_lease_rejects_;
  telemetry::Counter* ctr_fastw_commits_;
  telemetry::Counter* ctr_fastw_conflicts_;
  telemetry::Counter* ctr_fastw_fallbacks_;
  telemetry::Counter* ctr_fastw_lease_rejects_;
  telemetry::Counter* ctr_wrong_epoch_;
};

class System {
 public:
  /// Builds a Heron deployment with `partitions` groups of `replicas`
  /// members each. `factory` creates the application for every replica.
  System(rdma::Fabric& fabric, int partitions, int replicas,
         AppFactory factory, HeronConfig config = {},
         amcast::Config amcast_config = {});

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Starts multicast endpoints and replica runtimes.
  void start();

  /// Restarts a crashed replica: brings the amcast endpoint (and its
  /// node) back up, then runs the replica's rejoin path, which catches up
  /// via Algorithm 3 state transfer before resuming execution.
  void restart_replica(GroupId g, int rank);

  /// Fault-injection hook: lets heron::faultlab toggle runtime knobs
  /// (e.g. hiccup bursts) mid-run.
  [[nodiscard]] HeronConfig& mutable_config() { return config_; }

  [[nodiscard]] rdma::Fabric& fabric() { return amcast_->fabric(); }
  [[nodiscard]] sim::Simulator& simulator() {
    return fabric().simulator();
  }
  [[nodiscard]] amcast::System& amcast() { return *amcast_; }
  [[nodiscard]] const HeronConfig& config() const { return config_; }
  [[nodiscard]] int partitions() const { return amcast_->group_count(); }
  [[nodiscard]] int replicas_per_partition() const {
    return amcast_->replicas_per_group();
  }

  [[nodiscard]] Replica& replica(GroupId g, int rank) {
    return *replicas_[static_cast<std::size_t>(g) *
                          static_cast<std::size_t>(replicas_per_partition()) +
                      static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] AppFactory& app_factory() { return factory_; }

  Client& add_client();
  /// Ordinal access: the i-th add_client() call. NOT the amcast client id
  /// — internal endpoints (lease managers) consume amcast ids too.
  [[nodiscard]] Client& client(std::uint32_t id) { return *clients_[id]; }
  /// Client owning the given amcast client id; nullptr for internal
  /// endpoints (lease managers) and unknown ids. Replicas route replies
  /// through this so internal commands never dereference a client.
  [[nodiscard]] Client* client_by_amcast_id(std::uint32_t id) {
    return id < by_id_.size() ? by_id_[id] : nullptr;
  }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }

  /// Total completions across clients (throughput accounting).
  [[nodiscard]] std::uint64_t total_completed() const;
  /// Lease renewal periods skipped by the backpressure gate (see
  /// HeronConfig::lease_backpressure_threshold).
  [[nodiscard]] std::uint64_t lease_renewals_skipped() const {
    return lease_renewals_skipped_;
  }
  void reset_stats();

  // --- heron::reconfig: elastic repartitioning --------------------------

  /// The epoch-1 layout built from `HeronConfig::reconfig_keys` before any
  /// replica is constructed (replicas and clients seed their own copies
  /// from it). Disabled (epoch 0) when reconfig_keys == 0.
  [[nodiscard]] const reconfig::Layout& initial_layout() const {
    return layout0_;
  }
  /// The controller's view of the current cluster layout (advances at
  /// each marker it multicasts).
  [[nodiscard]] const reconfig::Layout& cluster_layout() const {
    return layout_;
  }

  /// Wall-clock milestones of one completed (or in-flight) migration.
  struct MigrationTimes {
    reconfig::Plan plan;
    sim::Nanos prepare = 0;  // PREPARE marker multicast
    sim::Nanos flip = 0;     // FLIP marker multicast (0 = not yet)
    sim::Nanos sealed = 0;   // every alive dest rank sealed (0 = not yet)
  };
  [[nodiscard]] const std::vector<MigrationTimes>& migration_times() const {
    return migration_times_;
  }

  /// Schedules one range move: at `plan.at` the controller multicasts a
  /// PREPARE marker (kWireFlagEpoch) to every group, waits for the alive
  /// source ranks to report their copy machines caught up, multicasts the
  /// FLIP, and records milestones until every alive destination rank
  /// seals. Requires reconfig_keys != 0. Call after start().
  void schedule_migration(const reconfig::Plan& plan);

  // --- lifecycle observers (heron::faultlab's history recorder) -------
  // System-level so clients added after attach are covered. Must not
  // re-enter the system.

  /// Fired right after each multicast attempt of a submit.
  using ClientAttemptObserver =
      std::function<void(std::uint32_t client, std::uint64_t session_seq,
                         MsgUid uid, DstMask dst, int attempt)>;
  /// Fired when a submit reaches its terminal outcome.
  using ClientOutcomeObserver =
      std::function<void(std::uint32_t client, std::uint64_t session_seq,
                         SubmitStatus status, int attempts)>;
  /// Fired when a replica commits to executing a command (session mark).
  using ExecObserver =
      std::function<void(GroupId group, int rank, std::uint32_t client,
                         std::uint64_t session_seq, MsgUid uid, Tmp tmp)>;

  void set_attempt_observer(ClientAttemptObserver obs) {
    attempt_observer_ = std::move(obs);
  }
  void set_outcome_observer(ClientOutcomeObserver obs) {
    outcome_observer_ = std::move(obs);
  }
  void set_exec_observer(ExecObserver obs) {
    exec_observer_ = std::move(obs);
  }
  [[nodiscard]] const ClientAttemptObserver& attempt_observer() const {
    return attempt_observer_;
  }
  [[nodiscard]] const ClientOutcomeObserver& outcome_observer() const {
    return outcome_observer_;
  }
  [[nodiscard]] const ExecObserver& exec_observer() const {
    return exec_observer_;
  }

 private:
  /// One per partition when lease_duration > 0: multicasts a lease-grant
  /// marker (kWireFlagLease) every lease_duration / 2 so replicas renew
  /// before expiry. A raw multicast endpoint, not a core::Client — it
  /// never reads a reply.
  sim::Task<void> lease_manager_loop(amcast::ClientEndpoint& ep, GroupId g);

  /// One per scheduled migration: drives the PREPARE / FLIP marker pair
  /// through an internal multicast endpoint and records milestones.
  /// Controllers are serialized by `ticket`: Migration is a single slot
  /// in the layout and in replica role state, so an overlapping plan
  /// would clobber the in-flight move.
  sim::Task<void> reconfig_controller_loop(amcast::ClientEndpoint& ep,
                                           reconfig::Plan plan,
                                           std::uint64_t ticket);
  /// Multicasts one epoch marker (layout + phase) to `dst`.
  sim::Task<void> multicast_marker(amcast::ClientEndpoint& ep, DstMask dst,
                                   const reconfig::Layout& layout,
                                   std::uint32_t phase);

  std::unique_ptr<amcast::System> amcast_;
  HeronConfig config_;
  AppFactory factory_;
  reconfig::Layout layout0_;  // immutable epoch-1 layout
  reconfig::Layout layout_;   // controller's current layout
  std::uint64_t reconfig_tickets_issued_ = 0;  // migration serialization
  std::uint64_t reconfig_tickets_done_ = 0;
  std::uint64_t lease_renewals_skipped_ = 0;  // backpressure-gated renewals
  std::vector<MigrationTimes> migration_times_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<Client*> by_id_;  // amcast client id -> Client (or nullptr)
  ClientAttemptObserver attempt_observer_;
  ClientOutcomeObserver outcome_observer_;
  ExecObserver exec_observer_;
};

}  // namespace heron::core
